package repro

import (
	"context"

	"repro/internal/bench"
	"repro/internal/coflow"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/timegrid"
	"repro/internal/topo"
	"repro/internal/validate"
	"repro/internal/workload"
)

// Re-exported problem types.
type (
	// Instance is a coflow scheduling problem: a capacitated network
	// plus weighted coflows.
	Instance = coflow.Instance
	// Coflow is a weighted group of flows sharing a completion time.
	Coflow = coflow.Coflow
	// Flow is a single transfer demand.
	Flow = coflow.Flow
	// Graph is a directed capacitated network.
	Graph = graph.Graph
	// NodeID identifies a graph node.
	NodeID = graph.NodeID
	// EdgeID identifies a directed edge.
	EdgeID = graph.EdgeID
	// TransmissionModel selects single path or free path routing.
	TransmissionModel = coflow.Model
	// Result is a full pipeline outcome (LP bound, heuristic, Stretch).
	Result = core.Result
	// Evaluated is a verified schedule with its metrics.
	Evaluated = core.Evaluated
	// WorkloadConfig parameterizes synthetic workload generation.
	WorkloadConfig = workload.Config
	// WorkloadKind selects one of the paper's four workloads.
	WorkloadKind = workload.Kind
	// SchedulerResult is the uniform outcome type of the scheduler
	// engine: every registered algorithm (Stretch pipeline, λ=1
	// heuristic, Terra, Jahanjou, Sincronia greedy, …) reports through
	// it, so algorithms compare side by side.
	SchedulerResult = engine.Result
	// SimOptions tune the online discrete-event simulator: the policy
	// name, the epoch re-planning period, and the knobs handed down to
	// wrapped engine schedulers.
	SimOptions = sim.Options
	// SimResult reports an online simulation: per-coflow completion
	// times, weighted/average CCT, makespan, and the event trace.
	SimResult = sim.Result
	// Topology is a generated network plus the endpoints workload
	// flows may use (internal/topo).
	Topology = topo.Topology
	// ValidationReport lists every invariant a scheduler output broke
	// (internal/validate); an empty report means the output is valid.
	ValidationReport = validate.Report
	// BenchConfig parameterizes the benchmark-regression harness
	// (internal/bench): the instance-size tier and seeds.
	BenchConfig = bench.Config
	// BenchReport is the machine-readable outcome of a harness run —
	// the BENCH_sim.json format at the repo root.
	BenchReport = bench.Report
	// BenchRegression is one metric that moved past the comparison
	// tolerance between two benchmark reports.
	BenchRegression = bench.Regression
)

// Transmission models (Section 2 of the paper). MultiPath is the
// intermediate model the paper sketches: a fixed candidate path set
// per flow, used concurrently at scheduler-chosen rates.
const (
	SinglePath = coflow.SinglePath
	FreePath   = coflow.FreePath
	MultiPath  = coflow.MultiPath
)

// The paper's four evaluation workloads.
const (
	BigBench = workload.BigBench
	TPCDS    = workload.TPCDS
	TPCH     = workload.TPCH
	FB       = workload.FB
)

// NewGraph returns an empty network.
func NewGraph() *Graph { return graph.New() }

// NewSWAN returns Microsoft's SWAN inter-datacenter WAN (5 DCs, 7
// links) with the given per-link capacity.
func NewSWAN(capacity float64) *Graph { return graph.SWAN(capacity) }

// NewGScale returns Google's G-Scale/B4 WAN (12 DCs, 19 links) with
// the given per-link capacity.
func NewGScale(capacity float64) *Graph { return graph.GScale(capacity) }

// GenerateWorkload builds a reproducible synthetic instance standing
// in for the paper's BigBench/TPC-DS/TPC-H/FB workloads.
func GenerateWorkload(cfg WorkloadConfig) (*Instance, error) {
	return workload.Generate(cfg)
}

// SchedOptions tune the scheduling pipeline. The zero value uses
// sensible defaults: an automatically sized uniform grid capped at
// MaxSlots (default 48) and 20 Stretch samples.
type SchedOptions struct {
	// MaxSlots caps the uniform time grid (0 = 48).
	MaxSlots int
	// Trials is the number of randomized Stretch roundings (0 = 20;
	// negative disables Stretch and keeps only the λ=1 heuristic).
	Trials int
	// Seed drives the λ sampling. Each trial derives its own RNG from
	// the seed and its index, so a fixed seed reproduces identical
	// results at any worker count.
	Seed int64
	// Workers bounds the goroutines used for Stretch trials (0 =
	// GOMAXPROCS; 1 forces serial execution). Results do not depend
	// on the worker count.
	Workers int
	// DisableCompaction turns off the Section 6.1 idle-slot pass.
	DisableCompaction bool
}

// specOptions maps the legacy knobs onto Spec options; the engine
// applies the same defaults normalize always did (48-slot cap, 20
// trials, negative trials disable).
func (o SchedOptions) specOptions() SpecOptions {
	return SpecOptions{
		MaxSlots:          o.MaxSlots,
		Trials:            o.Trials,
		Seed:              o.Seed,
		Workers:           o.Workers,
		DisableCompaction: o.DisableCompaction,
	}
}

// ScheduleSinglePath runs the full pipeline in the single path model:
// every flow must carry a fixed Path (see
// Instance.AssignRandomShortestPaths).
//
// Deprecated: build a Spec with Scheduler "stretch" and call Run; this
// facade is a thin wrapper over it and cannot be cancelled.
func ScheduleSinglePath(inst *Instance, opt SchedOptions) (*Result, error) {
	return run(inst, coflow.SinglePath, opt)
}

// ScheduleFreePath runs the full pipeline in the free path model.
//
// Deprecated: build a Spec with Scheduler "stretch" and call Run.
func ScheduleFreePath(inst *Instance, opt SchedOptions) (*Result, error) {
	return run(inst, coflow.FreePath, opt)
}

// ScheduleMultiPath runs the full pipeline in the intermediate
// multi path model: every flow must carry a candidate path set (see
// Instance.AssignKShortestPaths).
//
// Deprecated: build a Spec with Scheduler "stretch" and call Run.
func ScheduleMultiPath(inst *Instance, opt SchedOptions) (*Result, error) {
	return run(inst, coflow.MultiPath, opt)
}

// run compiles the legacy facade call down to a Spec and executes it
// through the unified front door. The "stretch" engine scheduler is
// the same pipeline the facades always ran (LP + λ=1 heuristic + k
// roundings over DefaultGrid), with one improvement: a horizon that
// proves too short now doubles adaptively instead of failing.
func run(inst *Instance, mode coflow.Model, opt SchedOptions) (*Result, error) {
	rep, err := Run(context.Background(), Spec{
		Instance:  inst,
		Model:     spec.ModelName(mode),
		Scheduler: "stretch",
		Options:   opt.specOptions(),
	})
	if err != nil {
		return nil, err
	}
	return rep.Engine.Core, nil
}

// Schedulers lists the names registered with the scheduler engine,
// sorted: "heuristic", "jahanjou", "sincronia-greedy", "stretch",
// "terra", plus any the caller registered.
func Schedulers() []string { return engine.Names() }

// ScheduleWith runs the named engine scheduler on the instance in the
// given transmission model. Unlike the Schedule* pipeline facades,
// ScheduleWith reaches every registered algorithm — baselines
// included — through one call. Cancellation via ctx is best-effort:
// it is checked before dispatch and between Stretch trials, but a
// long-running LP solve or baseline simulation is not interrupted
// mid-flight.
//
// Deprecated: build a Spec with the scheduler name and call Run; the
// returned report's Engine field is this function's result.
func ScheduleWith(ctx context.Context, name string, inst *Instance, mode TransmissionModel, opt SchedOptions) (*SchedulerResult, error) {
	rep, err := Run(ctx, Spec{
		Instance:  inst,
		Model:     spec.ModelName(mode),
		Scheduler: name,
		Options:   opt.specOptions(),
	})
	if err != nil {
		return nil, err
	}
	return rep.Engine, nil
}

// UniformGrid exposes grid construction for callers that size the time
// expansion themselves.
func UniformGrid(slots int) timegrid.Grid { return timegrid.Uniform(slots) }

// Simulate runs the online discrete-event simulator (internal/sim) on
// the instance in the single path model: coflows are revealed at their
// release times, the policy's rate allocation is refreshed at every
// event (arrivals, flow completions, epoch ticks), and planning
// policies recompute their priority order at arrivals and epoch
// ticks. Unlike the Schedule* facades —
// which hand the whole instance to a clairvoyant offline algorithm —
// Simulate measures what a scheduler can do without knowing the
// future. Results are in the same slot units as offline schedules, so
// the two compare directly.
//
// Deprecated: build a Spec with the policy name and call Run; the
// returned report's Sim field is this function's result.
func Simulate(ctx context.Context, inst *Instance, opt SimOptions) (*SimResult, error) {
	policy := opt.Policy
	if policy == "" {
		policy = sim.NameLAS // the simulator's historical default
	}
	rep, err := Run(ctx, Spec{
		Instance: inst,
		Policy:   policy,
		Options: SpecOptions{
			MaxSlots:    opt.MaxSlots,
			Trials:      opt.Trials,
			Seed:        opt.Seed,
			Workers:     opt.Workers,
			Epoch:       opt.Epoch,
			Clairvoyant: opt.Clairvoyant,
			CheckEvery:  opt.CheckEvery,
			MaxEvents:   opt.MaxEvents,
			WarmLP:      opt.WarmLP,
		},
	})
	if err != nil {
		return nil, err
	}
	return rep.Sim, nil
}

// SimPolicies lists the online policy names Simulate accepts:
// "fair", "fifo", "las", "sincronia-online", and one
// "epoch:<scheduler>" re-planning adapter per compatible engine
// scheduler.
func SimPolicies() []string { return sim.Names() }

// Topologies lists the topology generator families of internal/topo:
// "big-switch", "erdos-renyi", "fat-tree", "leaf-spine", "line",
// "ring", "random-regular", "star".
func Topologies() []string { return topo.Families() }

// NewTopology builds a network from a generator spec such as
// "fat-tree:k=4" or "erdos-renyi:n=10,p=0.3,seed=7,hetero=1". The spec
// fully determines the graph; see internal/topo for the grammar and
// the per-family parameters. Use the returned Topology's Endpoints as
// WorkloadConfig.Endpoints so flows stay on hosts in switched fabrics.
func NewTopology(spec string) (*Topology, error) { return topo.New(spec) }

// Validate replays a scheduler result against the instance with the
// independent oracle (internal/validate): per-edge capacity in every
// slot, full demand along model-admissible routes, release times, and
// reported completions and aggregates versus the replayed schedule.
// It returns nil when every invariant holds.
func Validate(inst *Instance, res *SchedulerResult) error {
	return validate.Result(inst, res).Err()
}

// ValidateSim replays an online simulation result against the
// instance: trace shape and ordering, completion events versus
// reported completions, aggregates, trivial lower bounds, and per-edge
// volume versus each edge's active window. Pass the SimOptions the run
// used so the oracle knows the reveal convention (Clairvoyant).
func ValidateSim(inst *Instance, res *SimResult, opt SimOptions) error {
	return validate.SimResult(inst, res, opt.Clairvoyant).Err()
}

// RunBenchmarks executes the benchmark-regression suite
// (internal/bench) at the tier named in cfg: simulator throughput
// over the policy × topology × size grid, the headline
// BenchmarkSimulateFB ref-vs-optimized speedup, and the scheduler/LP
// micro-benchmarks. The report serializes to BENCH_sim.json via its
// WriteFile method; cmd/coflowsim's -bench flag drives this end to
// end.
// Deprecated: RunBenchmarks cannot be cancelled; use
// RunBenchmarksContext.
func RunBenchmarks(cfg BenchConfig) (*BenchReport, error) {
	return RunBenchmarksContext(context.Background(), cfg)
}

// RunBenchmarksContext is RunBenchmarks with cancellation: ctx is
// checked between benchmark cells.
func RunBenchmarksContext(ctx context.Context, cfg BenchConfig) (*BenchReport, error) {
	return bench.Run(ctx, cfg)
}

// LoadBenchReport reads a previously written BENCH_sim.json.
func LoadBenchReport(path string) (*BenchReport, error) { return bench.Load(path) }

// CompareBenchmarks diffs cur against the prev baseline and returns
// every regression beyond the relative tolerance (0 = 0.25): a
// benchmark's events/sec dropping by more than tol, or its allocs/op
// growing by more than tol. Missing counterparts and cross-tier
// reports are skipped, so a fresh machine's first run never fails.
func CompareBenchmarks(prev, cur *BenchReport, tol float64) []BenchRegression {
	return bench.Compare(prev, cur, tol)
}
