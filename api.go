package repro

import (
	"math/rand"

	"repro/internal/coflow"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/timegrid"
	"repro/internal/workload"
)

// Re-exported problem types.
type (
	// Instance is a coflow scheduling problem: a capacitated network
	// plus weighted coflows.
	Instance = coflow.Instance
	// Coflow is a weighted group of flows sharing a completion time.
	Coflow = coflow.Coflow
	// Flow is a single transfer demand.
	Flow = coflow.Flow
	// Graph is a directed capacitated network.
	Graph = graph.Graph
	// NodeID identifies a graph node.
	NodeID = graph.NodeID
	// EdgeID identifies a directed edge.
	EdgeID = graph.EdgeID
	// TransmissionModel selects single path or free path routing.
	TransmissionModel = coflow.Model
	// Result is a full pipeline outcome (LP bound, heuristic, Stretch).
	Result = core.Result
	// Evaluated is a verified schedule with its metrics.
	Evaluated = core.Evaluated
	// WorkloadConfig parameterizes synthetic workload generation.
	WorkloadConfig = workload.Config
	// WorkloadKind selects one of the paper's four workloads.
	WorkloadKind = workload.Kind
)

// Transmission models (Section 2 of the paper). MultiPath is the
// intermediate model the paper sketches: a fixed candidate path set
// per flow, used concurrently at scheduler-chosen rates.
const (
	SinglePath = coflow.SinglePath
	FreePath   = coflow.FreePath
	MultiPath  = coflow.MultiPath
)

// The paper's four evaluation workloads.
const (
	BigBench = workload.BigBench
	TPCDS    = workload.TPCDS
	TPCH     = workload.TPCH
	FB       = workload.FB
)

// NewGraph returns an empty network.
func NewGraph() *Graph { return graph.New() }

// NewSWAN returns Microsoft's SWAN inter-datacenter WAN (5 DCs, 7
// links) with the given per-link capacity.
func NewSWAN(capacity float64) *Graph { return graph.SWAN(capacity) }

// NewGScale returns Google's G-Scale/B4 WAN (12 DCs, 19 links) with
// the given per-link capacity.
func NewGScale(capacity float64) *Graph { return graph.GScale(capacity) }

// GenerateWorkload builds a reproducible synthetic instance standing
// in for the paper's BigBench/TPC-DS/TPC-H/FB workloads.
func GenerateWorkload(cfg WorkloadConfig) (*Instance, error) {
	return workload.Generate(cfg)
}

// SchedOptions tune the scheduling pipeline. The zero value uses
// sensible defaults: an automatically sized uniform grid capped at
// MaxSlots (default 48) and 20 Stretch samples.
type SchedOptions struct {
	// MaxSlots caps the uniform time grid (0 = 48).
	MaxSlots int
	// Trials is the number of randomized Stretch roundings (0 = 20;
	// negative disables Stretch and keeps only the λ=1 heuristic).
	Trials int
	// Seed drives the λ sampling.
	Seed int64
	// DisableCompaction turns off the Section 6.1 idle-slot pass.
	DisableCompaction bool
}

func (o SchedOptions) normalize() SchedOptions {
	if o.MaxSlots == 0 {
		o.MaxSlots = 48
	}
	if o.Trials == 0 {
		o.Trials = 20
	}
	if o.Trials < 0 {
		o.Trials = 0
	}
	return o
}

// ScheduleSinglePath runs the full pipeline in the single path model:
// every flow must carry a fixed Path (see
// Instance.AssignRandomShortestPaths).
func ScheduleSinglePath(inst *Instance, opt SchedOptions) (*Result, error) {
	return run(inst, coflow.SinglePath, opt)
}

// ScheduleFreePath runs the full pipeline in the free path model.
func ScheduleFreePath(inst *Instance, opt SchedOptions) (*Result, error) {
	return run(inst, coflow.FreePath, opt)
}

// ScheduleMultiPath runs the full pipeline in the intermediate
// multi path model: every flow must carry a candidate path set (see
// Instance.AssignKShortestPaths).
func ScheduleMultiPath(inst *Instance, opt SchedOptions) (*Result, error) {
	return run(inst, coflow.MultiPath, opt)
}

func run(inst *Instance, mode coflow.Model, opt SchedOptions) (*Result, error) {
	opt = opt.normalize()
	grid := core.DefaultGrid(inst, mode, opt.MaxSlots)
	var rng *rand.Rand
	if opt.Trials > 0 {
		rng = rand.New(rand.NewSource(opt.Seed))
	}
	return core.Run(inst, mode, opt.Trials, rng, core.Options{
		Grid:              grid,
		DisableCompaction: opt.DisableCompaction,
	})
}

// UniformGrid exposes grid construction for callers that size the time
// expansion themselves.
func UniformGrid(slots int) timegrid.Grid { return timegrid.Uniform(slots) }
