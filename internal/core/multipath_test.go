package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/coflow"
	"repro/internal/timegrid"
)

// TestMultiPathEndToEnd exercises the intermediate model through the
// whole pipeline: LP, heuristic, randomized Stretch, compaction and
// verification.
func TestMultiPathEndToEnd(t *testing.T) {
	in := figure2Instance(false)
	if err := in.AssignKShortestPaths(3); err != nil {
		t.Fatal(err)
	}
	opt := Options{Grid: timegrid.Uniform(6), Trials: 10, Seed: 4}
	res, err := Run(context.Background(), in, coflow.MultiPath, opt)
	if err != nil {
		t.Fatal(err)
	}
	// With all three s→t paths available this instance behaves like
	// free path: optimum 5.
	if res.LowerBound > 5+1e-6 {
		t.Fatalf("multi-path LP bound %v above 5", res.LowerBound)
	}
	if res.Heuristic.Weighted < 5-1e-9 {
		t.Fatalf("heuristic %v beats optimum 5", res.Heuristic.Weighted)
	}
	if res.Heuristic.Weighted > 7+1e-9 {
		t.Fatalf("heuristic %v far above optimum 5", res.Heuristic.Weighted)
	}
	if res.Stretch == nil || math.IsInf(res.Stretch.BestWeighted, 1) {
		t.Fatal("stretch stats missing for multi path")
	}
	// Every sampled schedule was verified inside Run; double-check the
	// heuristic carries path rates.
	if res.Heuristic.Schedule.PathFrac == nil {
		t.Fatal("multi-path schedule lost its path rates")
	}
}

// TestMultiPathStretchFeasibility verifies stretched multi-path
// schedules for many λ, including truncation scaling of path rates.
func TestMultiPathStretchFeasibility(t *testing.T) {
	in := figure2Instance(false)
	if err := in.AssignKShortestPaths(2); err != nil {
		t.Fatal(err)
	}
	opt := Options{Grid: timegrid.Uniform(8)}
	sol, err := SolveLP(context.Background(), in, coflow.MultiPath, opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		lambda := 0.2 + 0.8*rng.Float64()
		ev, err := StretchOnce(sol, lambda, opt)
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		if ev.Weighted < sol.LowerBound-1e-6 {
			t.Fatalf("λ=%v: objective %v below LP bound %v", lambda, ev.Weighted, sol.LowerBound)
		}
	}
}
