package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/simplex"
	"repro/internal/workload"
)

func warmTestInstance(t *testing.T, n int, seed int64) *coflow.Instance {
	t.Helper()
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: graph.SWAN(1), NumCoflows: n, Seed: seed,
		MeanInterarrival: 1, AssignPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func lbClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

// TestWarmBasisPerturbedInstance solves an instance cold, perturbs the
// flow demands slightly, and re-solves warm from the exported basis:
// the warm solve must reach the same LP optimum the cold solve of the
// perturbed instance finds — the warm start may only change the path,
// never the answer.
func TestWarmBasisPerturbedInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 3; trial++ {
		in := warmTestInstance(t, 6, int64(10+trial))
		opt := Options{Grid: DefaultGrid(in, coflow.SinglePath, 24)}
		base, err := SolveLP(context.Background(), in, coflow.SinglePath, opt)
		if err != nil {
			t.Fatalf("trial %d: base solve: %v", trial, err)
		}
		if base.Basis == nil {
			t.Fatalf("trial %d: base solve exported no basis", trial)
		}

		// Perturb demands by ±1%; the model keeps the same variables
		// and constraints, only coefficients move.
		pert := *in
		pert.Coflows = append([]coflow.Coflow(nil), in.Coflows...)
		for j := range pert.Coflows {
			pert.Coflows[j].Flows = append([]coflow.Flow(nil), in.Coflows[j].Flows...)
			for i := range pert.Coflows[j].Flows {
				pert.Coflows[j].Flows[i].Demand *= 1 + 0.01*rng.NormFloat64()
			}
		}

		cold, err := SolveLP(context.Background(), &pert, coflow.SinglePath, opt)
		if err != nil {
			t.Fatalf("trial %d: cold solve of perturbed instance: %v", trial, err)
		}
		wopt := opt
		wopt.WarmBasis = base.Basis
		warm, err := SolveLP(context.Background(), &pert, coflow.SinglePath, wopt)
		if err != nil {
			t.Fatalf("trial %d: warm solve of perturbed instance: %v", trial, err)
		}
		if !lbClose(cold.LowerBound, warm.LowerBound) {
			t.Fatalf("trial %d: cold LP bound %v, warm LP bound %v",
				trial, cold.LowerBound, warm.LowerBound)
		}
		for j := range cold.CStar {
			// Completion variables are driven by the (unique) optimal
			// objective through the weighted sum; individual values may
			// differ between optimal vertices, so compare the bound
			// they induce rather than the raw vector.
			if math.IsNaN(warm.CStar[j]) {
				t.Fatalf("trial %d: warm CStar[%d] is NaN", trial, j)
			}
		}
	}
}

// TestWarmBasisResidualInstance mimics an epoch re-plan: drop the first
// coflow (it "finished") and warm-start the residual solve from the
// full instance's basis. The name-keyed remap keeps the surviving
// coflows' variables; the answer must match the cold solve.
func TestWarmBasisResidualInstance(t *testing.T) {
	in := warmTestInstance(t, 6, 3)
	opt := Options{Grid: DefaultGrid(in, coflow.SinglePath, 24)}
	base, err := SolveLP(context.Background(), in, coflow.SinglePath, opt)
	if err != nil {
		t.Fatalf("base solve: %v", err)
	}
	if base.Basis == nil {
		t.Fatal("base solve exported no basis")
	}

	res := *in
	res.Coflows = append([]coflow.Coflow(nil), in.Coflows[1:]...)
	ropt := Options{Grid: DefaultGrid(&res, coflow.SinglePath, 24)}

	cold, err := SolveLP(context.Background(), &res, coflow.SinglePath, ropt)
	if err != nil {
		t.Fatalf("cold residual solve: %v", err)
	}
	wopt := ropt
	wopt.WarmBasis = base.Basis
	warm, err := SolveLP(context.Background(), &res, coflow.SinglePath, wopt)
	if err != nil {
		t.Fatalf("warm residual solve: %v", err)
	}
	if !lbClose(cold.LowerBound, warm.LowerBound) {
		t.Fatalf("cold LP bound %v, warm LP bound %v", cold.LowerBound, warm.LowerBound)
	}
}

// TestWarmBasisSameInstanceFewerIterations checks warm-starting is
// actually doing something: re-solving the identical instance from its
// own optimal basis must use far fewer simplex iterations.
func TestWarmBasisSameInstanceFewerIterations(t *testing.T) {
	in := warmTestInstance(t, 8, 6)
	opt := Options{Grid: DefaultGrid(in, coflow.SinglePath, 24)}
	cold, err := SolveLP(context.Background(), in, coflow.SinglePath, opt)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if cold.Basis == nil {
		t.Fatal("cold solve exported no basis")
	}
	wopt := opt
	wopt.WarmBasis = cold.Basis
	warm, err := SolveLP(context.Background(), in, coflow.SinglePath, wopt)
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if !lbClose(cold.LowerBound, warm.LowerBound) {
		t.Fatalf("cold LP bound %v, warm LP bound %v", cold.LowerBound, warm.LowerBound)
	}
	if warm.Iterations > cold.Iterations/4 {
		t.Fatalf("warm resolve took %d iterations vs %d cold: warm start not engaging",
			warm.Iterations, cold.Iterations)
	}
	if cold.WarmStart != simplex.WarmNone {
		t.Fatalf("cold solve reports warm outcome %v, want none", cold.WarmStart)
	}
	if warm.WarmStart != simplex.WarmAccepted {
		t.Fatalf("warm resolve reports outcome %v, want accepted", warm.WarmStart)
	}
}
