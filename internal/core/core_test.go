package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/simplex"
	"repro/internal/timegrid"
)

// figure2Instance builds the Section 2 running example with the
// Figure 3 path assignment when paths is true.
func figure2Instance(paths bool) *coflow.Instance {
	g := graph.Figure2()
	s, tt := g.MustNode("s"), g.MustNode("t")
	direct := func(from, to graph.NodeID) []graph.EdgeID {
		for _, eid := range g.OutEdges(from) {
			if g.Edge(eid).To == to {
				return []graph.EdgeID{eid}
			}
		}
		panic("no direct edge")
	}
	v := []graph.NodeID{g.MustNode("v1"), g.MustNode("v2"), g.MustNode("v3")}
	in := &coflow.Instance{Graph: g}
	for i := 0; i < 3; i++ {
		f := coflow.Flow{Source: v[i], Sink: tt, Demand: 1}
		if paths {
			f.Path = direct(v[i], tt)
		}
		in.Coflows = append(in.Coflows, coflow.Coflow{ID: i, Weight: 1, Flows: []coflow.Flow{f}})
	}
	big := coflow.Flow{Source: s, Sink: tt, Demand: 3}
	if paths {
		big.Path = append(direct(s, v[1]), direct(v[1], tt)...)
	}
	in.Coflows = append(in.Coflows, coflow.Coflow{ID: 3, Weight: 1, Flows: []coflow.Flow{big}})
	return in
}

func TestRunFigure2SinglePath(t *testing.T) {
	in := figure2Instance(true)
	opt := Options{Grid: timegrid.Uniform(6), Trials: 10, Seed: 1}
	res, err := Run(context.Background(), in, coflow.SinglePath, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Integral optimum is 7 (Figure 3). The LP bound is below it; the
	// heuristic can do no better than 7; Stretch averages stay within
	// the 2-approximation of the bound.
	if res.LowerBound > 7+1e-6 {
		t.Fatalf("LP bound %v above optimum 7", res.LowerBound)
	}
	if res.Heuristic.Weighted < 7-1e-9 {
		t.Fatalf("heuristic %v beats integral optimum 7", res.Heuristic.Weighted)
	}
	if res.Heuristic.Weighted > 9+1e-9 {
		t.Fatalf("heuristic objective %v far from optimum 7", res.Heuristic.Weighted)
	}
	if res.Stretch == nil {
		t.Fatal("stretch stats missing")
	}
	if res.Stretch.BestWeighted > res.Stretch.AvgWeighted+1e-9 {
		t.Fatal("best λ worse than average")
	}
	if res.Stretch.AvgWeighted > 2.5*res.LowerBound {
		t.Fatalf("average stretch %v suspiciously above 2×LP %v",
			res.Stretch.AvgWeighted, 2*res.LowerBound)
	}
}

func TestRunFigure2FreePath(t *testing.T) {
	in := figure2Instance(false)
	opt := Options{Grid: timegrid.Uniform(6), Trials: 5, Seed: 2}
	res, err := Run(context.Background(), in, coflow.FreePath, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Free-path optimum is 5 (Figure 4).
	if res.LowerBound > 5+1e-6 {
		t.Fatalf("LP bound %v above optimum 5", res.LowerBound)
	}
	if res.Heuristic.Weighted < 5-1e-9 {
		t.Fatalf("heuristic %v beats optimum 5", res.Heuristic.Weighted)
	}
	// The LP heuristic is near-optimal here.
	if res.Heuristic.Weighted > 7+1e-9 {
		t.Fatalf("heuristic %v far above optimum 5", res.Heuristic.Weighted)
	}
}

func TestHeuristicDominatesLowerBound(t *testing.T) {
	// Random small instances on SWAN, both models.
	rng := rand.New(rand.NewSource(11))
	g := graph.SWAN(2)
	for trial := 0; trial < 4; trial++ {
		in := &coflow.Instance{Graph: g}
		nc := 2 + rng.Intn(3)
		for j := 0; j < nc; j++ {
			c := coflow.Coflow{ID: j, Weight: 1 + rng.Float64()*9, Release: float64(rng.Intn(3))}
			nf := 1 + rng.Intn(2)
			for i := 0; i < nf; i++ {
				src := graph.NodeID(rng.Intn(g.NumNodes()))
				dst := graph.NodeID(rng.Intn(g.NumNodes()))
				for dst == src {
					dst = graph.NodeID(rng.Intn(g.NumNodes()))
				}
				c.Flows = append(c.Flows, coflow.Flow{
					Source: src, Sink: dst, Demand: 1 + rng.Float64()*5,
				})
			}
			in.Coflows = append(in.Coflows, c)
		}
		if err := in.AssignRandomShortestPaths(rng); err != nil {
			t.Fatal(err)
		}
		opt := Options{Grid: DefaultGrid(in, coflow.SinglePath, 30), Trials: 3, Seed: int64(trial)}
		for _, mode := range []coflow.Model{coflow.SinglePath, coflow.FreePath} {
			res, err := Run(context.Background(), in, mode, opt)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, mode, err)
			}
			if res.Heuristic.Weighted < res.LowerBound-1e-6 {
				t.Fatalf("trial %d %v: heuristic %v below LP bound %v",
					trial, mode, res.Heuristic.Weighted, res.LowerBound)
			}
			if res.Stretch != nil && res.Stretch.BestWeighted < res.LowerBound-1e-6 {
				t.Fatalf("trial %d %v: stretch best %v below LP bound %v",
					trial, mode, res.Stretch.BestWeighted, res.LowerBound)
			}
		}
	}
}

func TestStretchTrialsValidation(t *testing.T) {
	in := figure2Instance(true)
	opt := Options{Grid: timegrid.Uniform(6)}
	sol, err := SolveLP(context.Background(), in, coflow.SinglePath, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StretchTrials(context.Background(), sol, 0, opt); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestRunUnknownModel(t *testing.T) {
	in := figure2Instance(true)
	opt := Options{Grid: timegrid.Uniform(6)}
	if _, err := SolveLP(context.Background(), in, coflow.Model(9), opt); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestGeometricGridHeuristicOnly(t *testing.T) {
	in := figure2Instance(true)
	opt := Options{Grid: timegrid.Geometric(8, 0.5), Trials: 5, Seed: 3}
	res, err := Run(context.Background(), in, coflow.SinglePath, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stretch != nil {
		t.Fatal("stretch should be skipped on geometric grids")
	}
	if res.Heuristic == nil || res.Heuristic.Weighted < res.LowerBound-1e-6 {
		t.Fatalf("heuristic %+v vs bound %v", res.Heuristic, res.LowerBound)
	}
}

func TestCompactionAblation(t *testing.T) {
	in := figure2Instance(true)
	grid := timegrid.Uniform(8)
	solved, err := SolveLP(context.Background(), in, coflow.SinglePath, Options{Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		lambda := 0.3 + 0.69*rng.Float64()
		with, err := StretchOnce(solved, lambda, Options{Grid: grid})
		if err != nil {
			t.Fatal(err)
		}
		without, err := StretchOnce(solved, lambda, Options{Grid: grid, DisableCompaction: true})
		if err != nil {
			t.Fatal(err)
		}
		if with.Weighted > without.Weighted+1e-9 {
			t.Fatalf("λ=%v: compaction hurt: %v → %v", lambda, without.Weighted, with.Weighted)
		}
	}
}

func TestDefaultGrid(t *testing.T) {
	in := figure2Instance(true)
	g := DefaultGrid(in, coflow.SinglePath, 100)
	if !g.IsUniform() {
		t.Fatal("default grid must be uniform")
	}
	// Horizon must cover the sequential bound (total demand 6 at unit
	// rate, plus slack).
	if g.Horizon() < 6 {
		t.Fatalf("horizon %v too small", g.Horizon())
	}
	capped := DefaultGrid(in, coflow.SinglePath, 4)
	if capped.NumSlots() != 4 {
		t.Fatalf("cap not applied: %d slots", capped.NumSlots())
	}
}

func TestTheorem44EmpiricalTwoApprox(t *testing.T) {
	// Average of many Stretch samples stays ≤ 2×LP (Theorem 4.4), on
	// an instance with nontrivial congestion.
	in := figure2Instance(true)
	opt := Options{Grid: timegrid.Uniform(8), Simplex: simplex.Options{}, Seed: 5}
	sol, err := SolveLP(context.Background(), in, coflow.SinglePath, opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := StretchTrials(context.Background(), sol, 300, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st.AvgWeighted > 2*sol.LowerBound*(1+0.05) {
		t.Fatalf("E[obj]=%v > 2×LP=%v", st.AvgWeighted, 2*sol.LowerBound)
	}
	if math.IsInf(st.BestWeighted, 1) {
		t.Fatal("no finite best objective")
	}
}

// TestStretchTrialsDeterministicAcrossWorkers: a fixed seed must give
// bit-identical Best/Average λ stats at any worker count, because each
// trial's RNG is derived from (seed, index) and aggregation happens in
// trial order.
func TestStretchTrialsDeterministicAcrossWorkers(t *testing.T) {
	in := figure2Instance(true)
	base := Options{Grid: timegrid.Uniform(8), Seed: 99}
	sol, err := SolveLP(context.Background(), in, coflow.SinglePath, base)
	if err != nil {
		t.Fatal(err)
	}
	var ref *StretchStats
	for _, workers := range []int{1, 4, 8} {
		opt := base
		opt.Workers = workers
		st, err := StretchTrials(context.Background(), sol, 12, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = st
			continue
		}
		if st.BestWeighted != ref.BestWeighted || st.AvgWeighted != ref.AvgWeighted ||
			st.BestLambda != ref.BestLambda || st.BestTotal != ref.BestTotal ||
			st.AvgTotal != ref.AvgTotal || st.BestTotalLmbda != ref.BestTotalLmbda {
			t.Fatalf("workers=%d: stats diverge from serial:\n%+v\nvs\n%+v", workers, st, ref)
		}
		for i := range st.Samples {
			if st.Samples[i].Lambda != ref.Samples[i].Lambda ||
				st.Samples[i].Weighted != ref.Samples[i].Weighted ||
				st.Samples[i].Total != ref.Samples[i].Total {
				t.Fatalf("workers=%d: sample %d diverges", workers, i)
			}
		}
	}
}

// TestTrialLambdaPureFunction: λ for a trial depends only on (seed,
// index), never on evaluation order.
func TestTrialLambdaPureFunction(t *testing.T) {
	for i := 0; i < 50; i++ {
		a, b := TrialLambda(3, i), TrialLambda(3, i)
		if a != b {
			t.Fatalf("trial %d: %v != %v", i, a, b)
		}
		if a <= 0 || a >= 1 {
			t.Fatalf("trial %d: λ=%v outside (0,1)", i, a)
		}
	}
	if TrialLambda(3, 0) == TrialLambda(4, 0) {
		t.Fatal("different seeds gave the same λ")
	}
}
