// Package core implements the paper's primary contribution: the
// randomized 2-approximation "Stretch" pipeline for coflow scheduling
// in general networks (Sections 3–4), in both the single path and the
// free path transmission models.
//
// The pipeline is
//
//	build time-indexed LP  →  solve (internal/simplex)  →
//	round: take the LP schedule directly (λ=1 heuristic, §6.2)
//	       or stretch it by 1/λ with λ ~ f(v)=2v (§4.1)      →
//	compact idle slots (§6.1)  →  verify feasibility  →  evaluate.
//
// Every schedule this package returns has passed the feasibility
// verifier in internal/schedule.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/coflow"
	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/schedule"
	"repro/internal/simplex"
	"repro/internal/stats"
	"repro/internal/timegrid"
)

// Options configure the pipeline.
type Options struct {
	// Grid is the time expansion. Required.
	Grid timegrid.Grid
	// Simplex tunes the LP solver; the zero value uses defaults.
	Simplex simplex.Options
	// DisableCompaction turns off the idle-slot optimization of
	// Section 6.1 (used by the ablation benchmarks).
	DisableCompaction bool
	// Trials is the number of randomized Stretch roundings Run
	// performs on uniform grids (0 disables Stretch).
	Trials int
	// Seed drives the λ sampling. Each trial derives its own RNG from
	// Seed and the trial index, so results are reproducible at any
	// worker count.
	Seed int64
	// Workers bounds the goroutines used for Stretch trials (≤ 0 =
	// GOMAXPROCS).
	Workers int
	// WarmBasis, when non-nil, warm-starts the LP solve from a basis
	// exported by a previous related solve (Result.Basis). The solver
	// validates the basis and falls back to a cold start when it does
	// not fit, so the computed optimum is unaffected.
	WarmBasis *lp.Basis
	// Obs, when non-nil, receives pipeline telemetry (simplex counters,
	// grid retries). Recording is observational only: results are
	// bit-identical with or without a registry.
	Obs *obs.Registry
}

// Evaluated is a feasibility-verified schedule with its metrics.
type Evaluated struct {
	Schedule    *schedule.Schedule
	Completions []float64 // per-coflow completion times (slot units)
	Weighted    float64   // Σ w_j C_j
	Total       float64   // Σ C_j
	Lambda      float64   // the λ that produced this schedule
}

// evaluate compacts (optionally), verifies and measures a schedule.
func evaluate(s *schedule.Schedule, lambda float64, compact bool) (*Evaluated, error) {
	if compact {
		s.Compact()
	}
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("core: produced infeasible schedule: %w", err)
	}
	ct := s.CompletionTimes()
	ev := &Evaluated{Schedule: s, Completions: ct, Lambda: lambda}
	for j, c := range ct {
		ev.Weighted += s.Inst.Coflows[j].Weight * c
		ev.Total += c
	}
	return ev, nil
}

// SolveLP builds and solves the relaxation for the given model.
func SolveLP(ctx context.Context, inst *coflow.Instance, mode coflow.Model, opt Options) (*model.Solution, error) {
	var l *model.LP
	var err error
	switch mode {
	case coflow.SinglePath:
		l, err = model.BuildSinglePath(inst, opt.Grid)
	case coflow.FreePath:
		l, err = model.BuildFreePath(inst, opt.Grid)
	case coflow.MultiPath:
		l, err = model.BuildMultiPath(inst, opt.Grid)
	default:
		return nil, fmt.Errorf("core: unknown model %v", mode)
	}
	if err != nil {
		return nil, err
	}
	sopt := opt.Simplex
	if sopt.Obs == nil {
		sopt.Obs = opt.Obs
	}
	return l.SolveWarm(ctx, sopt, opt.WarmBasis)
}

// Heuristic converts the LP solution directly into a schedule — the
// λ=1.0 LP-based heuristic the paper finds strongest in practice.
func Heuristic(sol *model.Solution, opt Options) (*Evaluated, error) {
	return evaluate(schedule.FromLP(sol), 1.0, !opt.DisableCompaction)
}

// StretchOnce applies the Stretch rounding with a fixed λ.
func StretchOnce(sol *model.Solution, lambda float64, opt Options) (*Evaluated, error) {
	s, err := schedule.Stretch(sol, lambda)
	if err != nil {
		return nil, err
	}
	return evaluate(s, lambda, !opt.DisableCompaction)
}

// StretchStats aggregates repeated randomized Stretch runs the way the
// paper reports them: "Best λ" (minimum objective over samples) and
// "Average λ" (mean objective, the empirical counterpart of the
// 2-approximation guarantee).
type StretchStats struct {
	Samples        []Evaluated
	BestWeighted   float64
	BestLambda     float64
	AvgWeighted    float64
	BestTotal      float64
	AvgTotal       float64
	BestTotalLmbda float64
}

// TrialLambda returns the λ drawn for trial i under the given base
// seed: each trial owns an RNG derived from (seed, i) with a
// splitmix64-style finalizer, so the sample sequence is a pure
// function of the seed and index, independent of execution order.
func TrialLambda(seed int64, i int) float64 {
	rng := rand.New(rand.NewSource(stats.SubSeed(seed, uint64(i))))
	return schedule.SampleLambda(rng)
}

// StretchTrials samples k values of λ from the f(v)=2v density
// (paper: k=20), rounds with each, and aggregates. Trials run on a
// worker pool of opt.Workers goroutines; per-trial RNGs are derived
// deterministically from opt.Seed, and aggregation happens in trial
// order after the pool drains, so a fixed seed yields bit-identical
// stats at any worker count.
func StretchTrials(ctx context.Context, sol *model.Solution, k int, opt Options) (*StretchStats, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: StretchTrials needs k ≥ 1, got %d", k)
	}
	type trial struct {
		lambda float64
		ev     *Evaluated
	}
	trials, err := pool.Map(ctx, k, opt.Workers, func(i int) (trial, error) {
		lambda := TrialLambda(opt.Seed, i)
		ev, err := StretchOnce(sol, lambda, opt)
		if err != nil {
			return trial{}, err
		}
		return trial{lambda: lambda, ev: ev}, nil
	})
	if err != nil {
		return nil, err
	}
	st := &StretchStats{
		BestWeighted: math.Inf(1),
		BestTotal:    math.Inf(1),
	}
	for _, tr := range trials {
		ev := tr.ev
		st.Samples = append(st.Samples, *ev)
		st.AvgWeighted += ev.Weighted
		st.AvgTotal += ev.Total
		if ev.Weighted < st.BestWeighted {
			st.BestWeighted = ev.Weighted
			st.BestLambda = tr.lambda
		}
		if ev.Total < st.BestTotal {
			st.BestTotal = ev.Total
			st.BestTotalLmbda = tr.lambda
		}
	}
	st.AvgWeighted /= float64(k)
	st.AvgTotal /= float64(k)
	return st, nil
}

// Result bundles a full pipeline run on one instance.
type Result struct {
	Mode       coflow.Model
	LowerBound float64   // LP objective Σ w_j C*_j
	CStar      []float64 // per-coflow LP completion variables
	Heuristic  *Evaluated
	Stretch    *StretchStats // nil if trials == 0 or grid non-uniform
	Iterations int           // simplex iterations for the LP solve
	// Basis is the LP's exported optimal basis (nil when not
	// exportable); feed it to Options.WarmBasis on a related instance.
	Basis *lp.Basis
	// WarmStart reports what became of Options.WarmBasis: accepted, or
	// the validation check that rejected it (WarmNone when no basis was
	// supplied).
	WarmStart simplex.WarmOutcome
}

// Run executes the complete pipeline: solve the LP, evaluate the λ=1
// heuristic, and (on uniform grids) run opt.Trials randomized Stretch
// roundings on the worker pool.
func Run(ctx context.Context, inst *coflow.Instance, mode coflow.Model, opt Options) (*Result, error) {
	sol, err := SolveLP(ctx, inst, mode, opt)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Mode:       mode,
		LowerBound: sol.LowerBound,
		CStar:      sol.CStar,
		Iterations: sol.Iterations,
		Basis:      sol.Basis,
		WarmStart:  sol.WarmStart,
	}
	if res.Heuristic, err = Heuristic(sol, opt); err != nil {
		return nil, err
	}
	if opt.Trials > 0 && opt.Grid.IsUniform() {
		if res.Stretch, err = StretchTrials(ctx, sol, opt.Trials, opt); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// RetryableLP reports whether err is an LP failure cured by a longer
// time grid: infeasible (horizon too short for the demands) or over
// its iteration budget.
func RetryableLP(err error) bool {
	var se *model.StatusError
	return errors.As(err, &se) &&
		(se.Status == simplex.Infeasible || se.Status == simplex.IterLimit)
}

// RunAdaptive runs the pipeline on a uniform grid sized by
// DefaultGrid, doubling the slot count (up to 4× maxSlots) when the
// horizon proves too short for the instance's demands. logf, when
// non-nil, receives a line per retry. This is the shared retry policy
// of the engine schedulers and the experiment harnesses.
func RunAdaptive(ctx context.Context, inst *coflow.Instance, mode coflow.Model, maxSlots int, opt Options, logf func(format string, args ...any)) (*Result, timegrid.Grid, error) {
	grid := DefaultGrid(inst, mode, maxSlots)
	slots := grid.NumSlots()
	// A horizon below the certified makespan lower bound is infeasible
	// without solving: skip those grid sizes instead of burning tens of
	// thousands of simplex pivots on a doomed phase 1. The last allowed
	// size always solves, so a genuinely unschedulable instance still
	// reports its infeasibility through the LP.
	lower := inst.HorizonLowerBound(mode)
	for {
		if float64(slots) < lower-1e-9 && slots < 4*maxSlots {
			if logf != nil {
				logf("horizon %d slots provably short (makespan lower bound %.3g); doubling without solving", slots, lower)
			}
			opt.Obs.Counter("core_grid_retries_total").Inc()
			opt.Obs.Counter("core_grid_preskips_total").Inc()
			slots *= 2
			continue
		}
		grid = timegrid.Uniform(slots)
		opt.Grid = grid
		res, err := Run(ctx, inst, mode, opt)
		if err == nil {
			return res, grid, nil
		}
		if RetryableLP(err) && slots < 4*maxSlots {
			if logf != nil {
				logf("horizon %d slots too short (%v); doubling", slots, err)
			}
			opt.Obs.Counter("core_grid_retries_total").Inc()
			slots *= 2
			continue
		}
		return nil, grid, err
	}
}

// DefaultGrid returns a uniform grid sized from the instance's horizon
// upper bound, capped at maxSlots (the LP grows linearly in the slot
// count, so the cap bounds solver work; instances that genuinely need
// more slots are rejected at build time by the release-time check).
func DefaultGrid(inst *coflow.Instance, mode coflow.Model, maxSlots int) timegrid.Grid {
	h := int(math.Ceil(inst.HorizonUpperBound(mode))) + 1
	if h > maxSlots {
		h = maxSlots
	}
	// The cap must never cut the grid below the release horizon: the
	// last-released flow still needs slots to run in.
	if minH := int(math.Ceil(inst.MaxRelease())) + 2; h < minH {
		h = minH
	}
	if h < 1 {
		h = 1
	}
	return timegrid.Uniform(h)
}
