package maxflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestMaxFlowLine(t *testing.T) {
	g := graph.Line(4, 5)
	r := Max(g, g.MustNode("v0"), g.MustNode("v3"))
	if math.Abs(r.Value-5) > 1e-9 {
		t.Fatalf("value = %v, want 5", r.Value)
	}
	for _, e := range g.Edges() {
		if math.Abs(r.Flow[e.ID]-5) > 1e-9 {
			t.Fatalf("edge %d flow = %v, want 5", e.ID, r.Flow[e.ID])
		}
	}
}

func TestMaxFlowParallelPaths(t *testing.T) {
	// Figure2: three disjoint 2-hop paths of capacity 1 → max flow 3.
	g := graph.Figure2()
	r := Max(g, g.MustNode("s"), g.MustNode("t"))
	if math.Abs(r.Value-3) > 1e-9 {
		t.Fatalf("value = %v, want 3", r.Value)
	}
}

func TestMaxFlowClassic(t *testing.T) {
	// Classic CLRS-style network with known max flow 23.
	g := graph.New()
	s := g.AddNode("s")
	v1 := g.AddNode("v1")
	v2 := g.AddNode("v2")
	v3 := g.AddNode("v3")
	v4 := g.AddNode("v4")
	tt := g.AddNode("t")
	g.AddEdge(s, v1, 16)
	g.AddEdge(s, v2, 13)
	g.AddEdge(v1, v3, 12)
	g.AddEdge(v2, v1, 4)
	g.AddEdge(v2, v4, 14)
	g.AddEdge(v3, v2, 9)
	g.AddEdge(v3, tt, 20)
	g.AddEdge(v4, v3, 7)
	g.AddEdge(v4, tt, 4)
	r := Max(g, s, tt)
	if math.Abs(r.Value-23) > 1e-9 {
		t.Fatalf("value = %v, want 23", r.Value)
	}
}

func TestMaxFlowUnreachable(t *testing.T) {
	g := graph.Gadget(2)
	x0, _ := graph.GadgetPair(g, 0)
	_, y1 := graph.GadgetPair(g, 1)
	r := Max(g, x0, y1)
	if r.Value != 0 {
		t.Fatalf("value = %v, want 0", r.Value)
	}
	if mt := MinCompletionTime(g, x0, y1, 5, nil); !math.IsInf(mt, 1) {
		t.Fatalf("completion time = %v, want +Inf", mt)
	}
}

func TestFlowConservation(t *testing.T) {
	g := graph.GScale(3)
	s, d := g.MustNode("DC1"), g.MustNode("DC12")
	r := Max(g, s, d)
	// Conservation at every internal node; net outflow at s equals value.
	for v := graph.NodeID(0); v < graph.NodeID(g.NumNodes()); v++ {
		var net float64
		for _, eid := range g.OutEdges(v) {
			net += r.Flow[eid]
		}
		for _, eid := range g.InEdges(v) {
			net -= r.Flow[eid]
		}
		switch v {
		case s:
			if math.Abs(net-r.Value) > 1e-9 {
				t.Fatalf("source net %v, value %v", net, r.Value)
			}
		case d:
			if math.Abs(net+r.Value) > 1e-9 {
				t.Fatalf("sink net %v, value %v", net, r.Value)
			}
		default:
			if math.Abs(net) > 1e-9 {
				t.Fatalf("node %d violates conservation: %v", v, net)
			}
		}
	}
	// Capacity respected.
	for _, e := range g.Edges() {
		if r.Flow[e.ID] > e.Capacity+1e-9 {
			t.Fatalf("edge %d over capacity", e.ID)
		}
	}
}

func TestMaxFlowEqualsMinCutProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(8)
		g := graph.New()
		nodes := make([]graph.NodeID, n)
		for i := range nodes {
			nodes[i] = g.AddNode(string(rune('a' + i)))
		}
		// Random edges.
		for k := 0; k < 3*n; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			g.AddEdge(nodes[u], nodes[v], 1+float64(r.Intn(9)))
		}
		s, d := nodes[0], nodes[n-1]
		mf := Max(g, s, d)
		cutVal, cutEdges, side := MinCut(g, s, d)
		if math.Abs(mf.Value-cutVal) > 1e-6 {
			return false
		}
		// The cut edges' capacities sum to the cut value.
		var sum float64
		for _, eid := range cutEdges {
			sum += g.Edge(eid).Capacity
		}
		if math.Abs(sum-cutVal) > 1e-6 {
			return false
		}
		return side[s] && (cutVal == 0 || !side[d])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxWithCapacitiesOverride(t *testing.T) {
	g := graph.Line(3, 10)
	caps := []float64{10, 2}
	r := MaxWithCapacities(g, g.MustNode("v0"), g.MustNode("v2"), caps)
	if math.Abs(r.Value-2) > 1e-9 {
		t.Fatalf("value = %v, want 2", r.Value)
	}
	// Zero capacity removes the edge.
	caps = []float64{10, 0}
	r = MaxWithCapacities(g, g.MustNode("v0"), g.MustNode("v2"), caps)
	if r.Value != 0 {
		t.Fatalf("value = %v, want 0", r.Value)
	}
}

func TestMinCompletionTime(t *testing.T) {
	g := graph.Figure1()
	ny, ba := g.MustNode("NY"), g.MustNode("BA")
	// NY→BA free-path max flow: direct 6 + via FL min(5,4)=4 ... plus
	// longer detours; at least 9 as used in the paper's example.
	mt := MinCompletionTime(g, ny, ba, 18, nil)
	if mt > 2+1e-9 {
		t.Fatalf("NY→BA completion for 18 units = %v, want ≤ 2", mt)
	}
}

func BenchmarkMaxFlowGScale(b *testing.B) {
	g := graph.GScale(10)
	s, d := g.MustNode("DC1"), g.MustNode("DC12")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Max(g, s, d)
	}
}
