// Package maxflow implements Dinic's maximum-flow algorithm with
// real-valued capacities on top of internal/graph. It is used for
// standalone flow completion-time bounds, for the Terra baseline's
// residual-capacity scheduling, and as an independent oracle in tests
// (max-flow = min-cut).
package maxflow

import (
	"math"

	"repro/internal/graph"
)

const eps = 1e-9

// Result holds a maximum flow.
type Result struct {
	Value float64
	// Flow[e] is the flow on graph edge e (same indexing as g.Edges()).
	Flow []float64
}

type arc struct {
	to    int
	cap   float64 // remaining capacity
	rev   int     // index of reverse arc in adj[to]
	edge  int     // originating graph edge id, or -1 for residual arcs
	isRev bool
}

type dinic struct {
	n     int
	adj   [][]arc
	level []int
	iter  []int
}

func newDinic(n int) *dinic {
	return &dinic{
		n:     n,
		adj:   make([][]arc, n),
		level: make([]int, n),
		iter:  make([]int, n),
	}
}

func (d *dinic) addEdge(from, to int, capacity float64, edgeID int) {
	d.adj[from] = append(d.adj[from], arc{to: to, cap: capacity, rev: len(d.adj[to]), edge: edgeID})
	d.adj[to] = append(d.adj[to], arc{to: from, cap: 0, rev: len(d.adj[from]) - 1, edge: edgeID, isRev: true})
}

func (d *dinic) bfs(s, t int) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	queue := make([]int, 0, d.n)
	d.level[s] = 0
	queue = append(queue, s)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for i := range d.adj[v] {
			a := &d.adj[v][i]
			if a.cap > eps && d.level[a.to] < 0 {
				d.level[a.to] = d.level[v] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return d.level[t] >= 0
}

func (d *dinic) dfs(v, t int, f float64) float64 {
	if v == t {
		return f
	}
	for ; d.iter[v] < len(d.adj[v]); d.iter[v]++ {
		a := &d.adj[v][d.iter[v]]
		if a.cap > eps && d.level[v] < d.level[a.to] {
			got := d.dfs(a.to, t, math.Min(f, a.cap))
			if got > eps {
				a.cap -= got
				d.adj[a.to][a.rev].cap += got
				return got
			}
		}
	}
	return 0
}

func (d *dinic) run(s, t int) float64 {
	var total float64
	for d.bfs(s, t) {
		for i := range d.iter {
			d.iter[i] = 0
		}
		for {
			f := d.dfs(s, t, math.Inf(1))
			if f <= eps {
				break
			}
			total += f
		}
	}
	return total
}

// Max computes a maximum s→t flow using the graph's edge capacities.
func Max(g *graph.Graph, s, t graph.NodeID) Result {
	caps := make([]float64, g.NumEdges())
	for _, e := range g.Edges() {
		caps[e.ID] = e.Capacity
	}
	return MaxWithCapacities(g, s, t, caps)
}

// MaxWithCapacities computes a maximum s→t flow with the per-edge
// capacity overrides in caps (indexed by EdgeID). Edges with capacity
// ≤ 0 are treated as absent.
func MaxWithCapacities(g *graph.Graph, s, t graph.NodeID, caps []float64) Result {
	d := newDinic(g.NumNodes())
	for _, e := range g.Edges() {
		if caps[e.ID] > eps {
			d.addEdge(int(e.From), int(e.To), caps[e.ID], int(e.ID))
		}
	}
	value := d.run(int(s), int(t))
	flow := make([]float64, g.NumEdges())
	for v := range d.adj {
		for _, a := range d.adj[v] {
			if !a.isRev && a.edge >= 0 {
				flow[a.edge] += caps[a.edge] - a.cap
			}
		}
	}
	// Clamp tiny negatives from float arithmetic.
	for i, f := range flow {
		if f < 0 {
			flow[i] = 0
		}
	}
	return Result{Value: value, Flow: flow}
}

// MinCut returns the value of the minimum s→t cut, the cut edges, and
// the source-side membership mask. By max-flow/min-cut duality the
// value equals Max(g, s, t).Value.
func MinCut(g *graph.Graph, s, t graph.NodeID) (float64, []graph.EdgeID, []bool) {
	caps := make([]float64, g.NumEdges())
	for _, e := range g.Edges() {
		caps[e.ID] = e.Capacity
	}
	d := newDinic(g.NumNodes())
	for _, e := range g.Edges() {
		if caps[e.ID] > eps {
			d.addEdge(int(e.From), int(e.To), caps[e.ID], int(e.ID))
		}
	}
	value := d.run(int(s), int(t))
	// Source side: reachable in the residual graph.
	side := make([]bool, g.NumNodes())
	queue := []int{int(s)}
	side[s] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range d.adj[v] {
			if a.cap > eps && !side[a.to] {
				side[a.to] = true
				queue = append(queue, a.to)
			}
		}
	}
	var cut []graph.EdgeID
	for _, e := range g.Edges() {
		if side[e.From] && !side[e.To] {
			cut = append(cut, e.ID)
		}
	}
	return value, cut, side
}

// MinCompletionTime returns the minimum time to ship demand units from
// s to t when the flow may use the whole (residual) network, i.e.
// demand divided by the s→t max-flow rate. Returns +Inf when t is
// unreachable.
func MinCompletionTime(g *graph.Graph, s, t graph.NodeID, demand float64, caps []float64) float64 {
	var r Result
	if caps == nil {
		r = Max(g, s, t)
	} else {
		r = MaxWithCapacities(g, s, t, caps)
	}
	if r.Value <= eps {
		return math.Inf(1)
	}
	return demand / r.Value
}
