package lp

import (
	"math"

	"repro/internal/simplex"
)

// Basis is a name-keyed snapshot of an optimal simplex basis. Keying
// by variable and constraint name makes the basis portable across
// model rebuilds: a model for a perturbed instance, a longer time
// grid, or the next epoch's residual instance can import it even when
// its variables appear in a different order or only partially overlap
// — entities present in both models take their recorded status, new
// entities default to the cold-start state, and vanished entities are
// dropped. The simplex layer then validates the assembled basis and
// falls back to a cold start when it does not fit.
type Basis struct {
	// Vars maps variable name → simplex status
	// (simplex.VarBasic/VarLower/VarUpper/VarFree).
	Vars map[string]int8
	// Cons maps inequality constraint name → the status of that
	// constraint's slack variable in the standard-form problem.
	Cons map[string]int8
}

// defaultState mirrors the solver's cold-start placement: nonbasic on
// the nearest finite bound, free when both bounds are infinite.
func defaultState(l, u float64) int8 {
	switch {
	case math.IsInf(l, -1) && math.IsInf(u, 1):
		return simplex.VarFree
	case math.IsInf(l, -1):
		return simplex.VarUpper
	case math.IsInf(u, 1):
		return simplex.VarLower
	case math.Abs(l) <= math.Abs(u):
		return simplex.VarLower
	default:
		return simplex.VarUpper
	}
}

// remapBasis assembles the positional simplex basis for this model's
// standard form (n structural variables followed by one slack per
// inequality row) from a name-keyed snapshot.
func (m *Model) remapBasis(w *Basis, total int) *simplex.Basis {
	n := len(m.varNames)
	sb := &simplex.Basis{M: len(m.conNames), N: total, State: make([]int8, total)}
	for j := 0; j < n; j++ {
		if st, ok := w.Vars[m.varNames[j]]; ok {
			sb.State[j] = st
		} else {
			sb.State[j] = defaultState(m.lb[j], m.ub[j])
		}
	}
	sj := n
	for i, sense := range m.senses {
		if sense == EQ {
			continue
		}
		if st, ok := w.Cons[m.conNames[i]]; ok {
			sb.State[sj] = st
		} else if sense == LE {
			sb.State[sj] = simplex.VarLower // slack in [0, +Inf)
		} else {
			sb.State[sj] = simplex.VarUpper // GE slack in (-Inf, 0]
		}
		sj++
	}
	return sb
}

// exportBasis converts a positional simplex basis back to the
// name-keyed form.
func (m *Model) exportBasis(sb *simplex.Basis) *Basis {
	if sb == nil {
		return nil
	}
	n := len(m.varNames)
	b := &Basis{
		Vars: make(map[string]int8, n),
		Cons: make(map[string]int8),
	}
	for j := 0; j < n; j++ {
		b.Vars[m.varNames[j]] = sb.State[j]
	}
	sj := n
	for i, sense := range m.senses {
		if sense == EQ {
			continue
		}
		b.Cons[m.conNames[i]] = sb.State[sj]
		sj++
	}
	return b
}
