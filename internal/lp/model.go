// Package lp provides a small modeling layer over the revised simplex
// solver in internal/simplex: named variables with bounds and
// objective coefficients, linear constraints with ≤ / = / ≥ senses,
// and solution objects that map primal values, duals and reduced costs
// back to the modeling entities. It plays the role of the Gurobi
// modeling API in the paper's tool chain.
//
// The package also implements a minimal LP text format (see format.go)
// used by cmd/lpsolve.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/simplex"
	"repro/internal/sparse"
)

// Sense is the relational sense of a constraint.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // a·x ≤ b
	GE              // a·x ≥ b
	EQ              // a·x = b
)

// String renders the sense as its operator.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "?"
	}
}

// VarID identifies a variable within a Model.
type VarID int

// ConstrID identifies a constraint within a Model.
type ConstrID int

// Model is a linear program under construction. The zero value is not
// usable; call NewModel.
type Model struct {
	name string

	varNames []string
	lb, ub   []float64
	obj      []float64

	conNames []string
	senses   []Sense
	rhs      []float64

	// coefficient triplets
	rows []int32
	cols []int32
	vals []float64

	maximize bool
}

// NewModel returns an empty minimization model.
func NewModel(name string) *Model {
	return &Model{name: name}
}

// Name returns the model name.
func (m *Model) Name() string { return m.name }

// SetMaximize switches the objective direction to maximization.
func (m *Model) SetMaximize(max bool) { m.maximize = max }

// NumVars reports the number of variables added so far.
func (m *Model) NumVars() int { return len(m.varNames) }

// NumConstrs reports the number of constraints added so far.
func (m *Model) NumConstrs() int { return len(m.conNames) }

// NumNonzeros reports the number of coefficient entries added so far.
func (m *Model) NumNonzeros() int { return len(m.vals) }

// AddVar adds a variable with the given bounds and objective
// coefficient and returns its id. Use math.Inf for unbounded sides.
func (m *Model) AddVar(name string, lb, ub, obj float64) VarID {
	m.varNames = append(m.varNames, name)
	m.lb = append(m.lb, lb)
	m.ub = append(m.ub, ub)
	m.obj = append(m.obj, obj)
	return VarID(len(m.varNames) - 1)
}

// SetObj overwrites the objective coefficient of v.
func (m *Model) SetObj(v VarID, obj float64) { m.obj[v] = obj }

// Obj returns the objective coefficient of v.
func (m *Model) Obj(v VarID) float64 { return m.obj[v] }

// Bounds returns the bounds of v.
func (m *Model) Bounds(v VarID) (lb, ub float64) { return m.lb[v], m.ub[v] }

// SetBounds overwrites the bounds of v.
func (m *Model) SetBounds(v VarID, lb, ub float64) { m.lb[v], m.ub[v] = lb, ub }

// VarName returns the name of v.
func (m *Model) VarName(v VarID) string { return m.varNames[v] }

// AddConstr adds an empty constraint (sense, rhs) and returns its id.
// Populate it with AddTerm.
func (m *Model) AddConstr(name string, sense Sense, rhs float64) ConstrID {
	m.conNames = append(m.conNames, name)
	m.senses = append(m.senses, sense)
	m.rhs = append(m.rhs, rhs)
	return ConstrID(len(m.conNames) - 1)
}

// AddTerm adds coef·v to constraint c. Terms for the same (c, v) pair
// accumulate.
func (m *Model) AddTerm(c ConstrID, v VarID, coef float64) {
	if coef == 0 {
		return
	}
	m.rows = append(m.rows, int32(c))
	m.cols = append(m.cols, int32(v))
	m.vals = append(m.vals, coef)
}

// ConstrName returns the name of c.
func (m *Model) ConstrName(c ConstrID) string { return m.conNames[c] }

// ConstrSense returns the relational sense of c.
func (m *Model) ConstrSense(c ConstrID) Sense { return m.senses[c] }

// Solution maps solver output back to model entities.
type Solution struct {
	Status  simplex.Status
	Obj     float64
	x       []float64
	y       []float64
	d       []float64
	iters   int
	numVars int
	// Basis is the name-keyed optimal basis, present when the solve
	// ended Optimal with an exportable basis. Pass it to SolveWarm on a
	// related model to skip phase 1.
	Basis *Basis
	// WarmStart reports what became of the warm basis passed to
	// SolveWarm: accepted, or which validation check rejected it.
	WarmStart simplex.WarmOutcome
}

// Value returns the primal value of v.
func (s *Solution) Value(v VarID) float64 { return s.x[v] }

// Dual returns the dual multiplier of constraint c.
func (s *Solution) Dual(c ConstrID) float64 { return s.y[c] }

// ReducedCost returns the reduced cost of v.
func (s *Solution) ReducedCost(v VarID) float64 { return s.d[v] }

// Iterations reports the simplex iteration count.
func (s *Solution) Iterations() int { return s.iters }

// X returns a copy of the primal vector in variable order.
func (s *Solution) X() []float64 { return append([]float64(nil), s.x[:s.numVars]...) }

// Solve converts the model to standard computational form (adding one
// slack per inequality row) and runs the simplex solver.
func (m *Model) Solve(ctx context.Context, opt simplex.Options) (*Solution, error) {
	return m.SolveWarm(ctx, opt, nil)
}

// SolveWarm is Solve with an optional warm-start basis from a previous
// solve of a related model. The basis is remapped by name onto this
// model's variables and constraints; the solver validates the result
// and falls back to a cold start when it does not fit, so SolveWarm
// never returns a worse answer than Solve — only, usually, a faster
// one.
func (m *Model) SolveWarm(ctx context.Context, opt simplex.Options, warm *Basis) (*Solution, error) {
	n := len(m.varNames)
	mm := len(m.conNames)
	if n == 0 {
		return nil, errors.New("lp: model has no variables")
	}
	slacks := 0
	for _, s := range m.senses {
		if s != EQ {
			slacks++
		}
	}
	total := n + slacks
	bld := sparse.NewBuilder(mm, total)
	for k := range m.vals {
		bld.Add(int(m.rows[k]), int(m.cols[k]), m.vals[k])
	}
	c := make([]float64, total)
	l := make([]float64, total)
	u := make([]float64, total)
	dirSign := 1.0
	if m.maximize {
		dirSign = -1
	}
	for j := 0; j < n; j++ {
		c[j] = dirSign * m.obj[j]
		l[j] = m.lb[j]
		u[j] = m.ub[j]
	}
	sj := n
	for i, s := range m.senses {
		switch s {
		case LE:
			bld.Add(i, sj, 1)
			l[sj], u[sj] = 0, math.Inf(1)
			sj++
		case GE:
			bld.Add(i, sj, 1)
			l[sj], u[sj] = math.Inf(-1), 0
			sj++
		}
	}
	prob := &simplex.Problem{
		A: bld.Build(),
		B: append([]float64(nil), m.rhs...),
		C: c, L: l, U: u,
	}
	if warm != nil {
		opt.WarmStart = m.remapBasis(warm, total)
	}
	raw, err := simplex.Solve(ctx, prob, opt)
	if err != nil {
		return nil, fmt.Errorf("lp: solving %q: %w", m.name, err)
	}
	sol := &Solution{
		Status:  raw.Status,
		Obj:     dirSign * raw.Obj,
		x:       raw.X[:n:n],
		y:       raw.Y,
		d:       raw.D[:n:n],
		iters:   raw.Iterations,
		numVars: n,
		Basis:   m.exportBasis(raw.Basis),
	}
	sol.WarmStart = raw.WarmStart
	if m.maximize {
		for i := range sol.y {
			sol.y[i] = -sol.y[i]
		}
		for j := range sol.d {
			sol.d[j] = -sol.d[j]
		}
	}
	return sol, nil
}
