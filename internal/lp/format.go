package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements a minimal LP text format, in the spirit of the
// lp_solve format, used by cmd/lpsolve and by tests:
//
//	// comments start with // or #
//	min: 2 x + 3 y;            // or "max:"
//	c1: x + y >= 4;
//	c2: x - 2 y <= 3;
//	x <= 10;                   // single-variable rows become bounds
//	free y;                    // y ∈ (-inf, +inf)
//
// Variables default to [0, +inf). Statements end with ';'. Terms are
// "[coef] [*] name" with an optional sign.

// WriteLP renders the model in the LP text format.
func WriteLP(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	obj := "min"
	if m.maximize {
		obj = "max"
	}
	fmt.Fprintf(bw, "// model %s\n%s:", m.name, obj)
	wrote := false
	for j, c := range m.obj {
		if c == 0 {
			continue
		}
		writeTerm(bw, c, m.varNames[j], !wrote)
		wrote = true
	}
	if !wrote {
		bw.WriteString(" 0")
	}
	bw.WriteString(";\n")

	// Group coefficients by row.
	type term struct {
		v    int32
		coef float64
	}
	rows := make(map[int32][]term, len(m.conNames))
	for k := range m.vals {
		rows[m.rows[k]] = append(rows[m.rows[k]], term{m.cols[k], m.vals[k]})
	}
	for i := range m.conNames {
		ts := rows[int32(i)]
		sort.SliceStable(ts, func(a, b int) bool { return ts[a].v < ts[b].v })
		fmt.Fprintf(bw, "%s:", m.conNames[i])
		first := true
		for _, t := range ts {
			writeTerm(bw, t.coef, m.varNames[t.v], first)
			first = false
		}
		if first {
			bw.WriteString(" 0")
		}
		fmt.Fprintf(bw, " %s %s;\n", m.senses[i], fmtNum(m.rhs[i]))
	}
	for j := range m.varNames {
		l, u := m.lb[j], m.ub[j]
		switch {
		case math.IsInf(l, -1) && math.IsInf(u, 1):
			fmt.Fprintf(bw, "free %s;\n", m.varNames[j])
		case l == 0 && math.IsInf(u, 1):
			// default; nothing to write
		case math.IsInf(u, 1):
			fmt.Fprintf(bw, "%s >= %s;\n", m.varNames[j], fmtNum(l))
		case math.IsInf(l, -1):
			fmt.Fprintf(bw, "%s <= %s;\n", m.varNames[j], fmtNum(u))
		default:
			fmt.Fprintf(bw, "%s <= %s <= %s;\n", fmtNum(l), m.varNames[j], fmtNum(u))
		}
	}
	return bw.Flush()
}

func writeTerm(w *bufio.Writer, coef float64, name string, first bool) {
	switch {
	case first && coef == 1:
		fmt.Fprintf(w, " %s", name)
	case first:
		fmt.Fprintf(w, " %s %s", fmtNum(coef), name)
	case coef == 1:
		fmt.Fprintf(w, " + %s", name)
	case coef == -1:
		fmt.Fprintf(w, " - %s", name)
	case coef < 0:
		fmt.Fprintf(w, " - %s %s", fmtNum(-coef), name)
	default:
		fmt.Fprintf(w, " + %s %s", fmtNum(coef), name)
	}
}

func fmtNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseLP reads a model in the LP text format.
func ParseLP(r io.Reader) (*Model, error) {
	m := NewModel("parsed")
	varIDs := map[string]VarID{}
	getVar := func(name string) VarID {
		if id, ok := varIDs[name]; ok {
			return id
		}
		id := m.AddVar(name, 0, math.Inf(1), 0)
		varIDs[name] = id
		return id
	}

	// Tokenize into ';'-separated statements, stripping comments.
	var sb strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	sawObjective := false
	autoCon := 0
	for _, stmt := range strings.Split(sb.String(), ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		lower := strings.ToLower(stmt)
		switch {
		case strings.HasPrefix(lower, "min:") || strings.HasPrefix(lower, "max:"):
			if sawObjective {
				return nil, fmt.Errorf("lp: duplicate objective %q", stmt)
			}
			sawObjective = true
			m.SetMaximize(strings.HasPrefix(lower, "max:"))
			terms, err := parseTerms(stmt[4:], getVar)
			if err != nil {
				return nil, fmt.Errorf("lp: objective: %w", err)
			}
			for _, t := range terms {
				m.obj[t.v] += t.coef
			}
		case strings.HasPrefix(lower, "free "):
			for _, name := range strings.Fields(stmt[5:]) {
				v := getVar(strings.TrimSuffix(name, ","))
				m.SetBounds(v, math.Inf(-1), math.Inf(1))
			}
		default:
			if err := parseConstraintOrBound(m, stmt, getVar, &autoCon); err != nil {
				return nil, err
			}
		}
	}
	if !sawObjective {
		return nil, fmt.Errorf("lp: missing objective (min: / max:)")
	}
	return m, nil
}

type parsedTerm struct {
	v    VarID
	coef float64
}

// parseTerms parses "[±] [coef] [*] name ..." sequences.
func parseTerms(s string, getVar func(string) VarID) ([]parsedTerm, error) {
	s = strings.ReplaceAll(s, "*", " ")
	s = strings.ReplaceAll(s, "+", " + ")
	s = strings.ReplaceAll(s, "-", " - ")
	fields := strings.Fields(s)
	var out []parsedTerm
	signVal := 1.0
	coef := math.NaN() // NaN = not seen
	for _, f := range fields {
		switch f {
		case "+":
			continue
		case "-":
			signVal = -signVal
			continue
		}
		if v, err := strconv.ParseFloat(f, 64); err == nil {
			if !math.IsNaN(coef) {
				return nil, fmt.Errorf("two consecutive numbers near %q", f)
			}
			coef = v
			continue
		}
		c := 1.0
		if !math.IsNaN(coef) {
			c = coef
		}
		out = append(out, parsedTerm{getVar(f), signVal * c})
		signVal, coef = 1, math.NaN()
	}
	if !math.IsNaN(coef) {
		return nil, fmt.Errorf("dangling number %g", coef)
	}
	return out, nil
}

// parseConstraintOrBound handles "name: expr OP rhs", "expr OP rhs",
// "lo <= var <= hi".
func parseConstraintOrBound(m *Model, stmt string, getVar func(string) VarID, autoCon *int) error {
	name := ""
	if i := strings.Index(stmt, ":"); i >= 0 {
		name = strings.TrimSpace(stmt[:i])
		stmt = stmt[i+1:]
	}
	parts, ops, err := splitRelations(stmt)
	if err != nil {
		return err
	}
	switch len(ops) {
	case 1:
		// "rhs OP expr" order (e.g. "4 <= x + y") first.
		if lhsNum, errNum := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); errNum == nil {
			terms, err := parseTerms(parts[1], getVar)
			if err != nil {
				return fmt.Errorf("lp: constraint %q: %w", stmt, err)
			}
			return addRow(m, name, terms, flipSense(ops[0]), lhsNum, autoCon)
		}
		lhsTerms, err := parseTerms(parts[0], getVar)
		if err != nil {
			return fmt.Errorf("lp: constraint %q: %w", stmt, err)
		}
		rhs, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return fmt.Errorf("lp: constraint %q: non-numeric rhs", stmt)
		}
		return addRow(m, name, lhsTerms, ops[0], rhs, autoCon)
	case 2:
		// lo <= var <= hi (bounds only; middle must be one identifier)
		lo, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		hi, err2 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		varName := strings.TrimSpace(parts[1])
		if err1 != nil || err2 != nil || ops[0] != LE || ops[1] != LE ||
			len(strings.Fields(varName)) != 1 {
			return fmt.Errorf("lp: unsupported range statement %q", stmt)
		}
		if _, numeric := strconv.ParseFloat(varName, 64); numeric == nil {
			return fmt.Errorf("lp: range statement %q has numeric middle", stmt)
		}
		v := getVar(varName)
		m.SetBounds(v, lo, hi)
		return nil
	default:
		return fmt.Errorf("lp: statement %q has no relation", stmt)
	}
}

func flipSense(s Sense) Sense {
	switch s {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// addRow adds either a constraint or, for single-variable rows with
// unit coefficient, tightens the variable bound.
func addRow(m *Model, name string, terms []parsedTerm, sense Sense, rhs float64, autoCon *int) error {
	if len(terms) == 1 && terms[0].coef == 1 && name == "" {
		v := terms[0].v
		l, u := m.Bounds(v)
		switch sense {
		case LE:
			if rhs < u {
				u = rhs
			}
		case GE:
			if rhs > l {
				l = rhs
			}
		case EQ:
			l, u = rhs, rhs
		}
		m.SetBounds(v, l, u)
		return nil
	}
	if name == "" {
		*autoCon++
		name = fmt.Sprintf("r%d", *autoCon)
	}
	c := m.AddConstr(name, sense, rhs)
	for _, t := range terms {
		m.AddTerm(c, t.v, t.coef)
	}
	return nil
}

// splitRelations splits a statement on <=, >=, =, returning the pieces
// and the senses between them.
func splitRelations(s string) (parts []string, ops []Sense, err error) {
	cur := strings.Builder{}
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '<' || s[i] == '>':
			op := GE
			if s[i] == '<' {
				op = LE
			}
			if i+1 < len(s) && s[i+1] == '=' {
				i++
			}
			parts = append(parts, cur.String())
			cur.Reset()
			ops = append(ops, op)
		case s[i] == '=':
			parts = append(parts, cur.String())
			cur.Reset()
			ops = append(ops, EQ)
		default:
			cur.WriteByte(s[i])
		}
	}
	parts = append(parts, cur.String())
	if len(ops) == 0 {
		return nil, nil, fmt.Errorf("lp: no relation in %q", s)
	}
	return parts, ops, nil
}
