package lp

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/simplex"
)

func TestModelBasicMin(t *testing.T) {
	m := NewModel("basic")
	x := m.AddVar("x", 0, math.Inf(1), -1)
	y := m.AddVar("y", 0, math.Inf(1), -2)
	c1 := m.AddConstr("c1", LE, 4)
	m.AddTerm(c1, x, 1)
	m.AddTerm(c1, y, 1)
	c2 := m.AddConstr("c2", LE, 6)
	m.AddTerm(c2, x, 1)
	m.AddTerm(c2, y, 3)
	sol, err := m.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != simplex.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Obj-(-5)) > 1e-6 {
		t.Fatalf("obj = %v, want -5", sol.Obj)
	}
	if math.Abs(sol.Value(x)-3) > 1e-6 || math.Abs(sol.Value(y)-1) > 1e-6 {
		t.Fatalf("x=%v y=%v", sol.Value(x), sol.Value(y))
	}
}

func TestModelMaximize(t *testing.T) {
	m := NewModel("max")
	x := m.AddVar("x", 0, 5, 3)
	m.SetMaximize(true)
	sol, err := m.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj-15) > 1e-6 || math.Abs(sol.Value(x)-5) > 1e-6 {
		t.Fatalf("obj=%v x=%v", sol.Obj, sol.Value(x))
	}
}

func TestModelGEConstraint(t *testing.T) {
	// min x + y s.t. x + y >= 3 → obj 3.
	m := NewModel("ge")
	x := m.AddVar("x", 0, math.Inf(1), 1)
	y := m.AddVar("y", 0, math.Inf(1), 1)
	c := m.AddConstr("cover", GE, 3)
	m.AddTerm(c, x, 1)
	m.AddTerm(c, y, 1)
	sol, err := m.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != simplex.Optimal || math.Abs(sol.Obj-3) > 1e-6 {
		t.Fatalf("status=%v obj=%v", sol.Status, sol.Obj)
	}
}

func TestModelEquality(t *testing.T) {
	m := NewModel("eq")
	x := m.AddVar("x", 0, math.Inf(1), 2)
	y := m.AddVar("y", 0, math.Inf(1), 1)
	c := m.AddConstr("bal", EQ, 7)
	m.AddTerm(c, x, 1)
	m.AddTerm(c, y, 1)
	sol, err := m.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj-7) > 1e-6 || math.Abs(sol.Value(y)-7) > 1e-6 {
		t.Fatalf("obj=%v y=%v", sol.Obj, sol.Value(y))
	}
}

func TestModelDualsOnMaximize(t *testing.T) {
	// max 3x s.t. x <= 4 (as a row). Dual of the row should be 3.
	m := NewModel("dual")
	x := m.AddVar("x", 0, math.Inf(1), 3)
	m.SetMaximize(true)
	c := m.AddConstr("cap", LE, 4)
	m.AddTerm(c, x, 1)
	sol, err := m.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj-12) > 1e-6 {
		t.Fatalf("obj = %v", sol.Obj)
	}
	if math.Abs(sol.Dual(c)-3) > 1e-5 {
		t.Fatalf("dual = %v, want 3", sol.Dual(c))
	}
}

func TestModelAccessors(t *testing.T) {
	m := NewModel("acc")
	v := m.AddVar("v", 1, 2, 5)
	if m.VarName(v) != "v" || m.Obj(v) != 5 {
		t.Fatal("accessors wrong")
	}
	if l, u := m.Bounds(v); l != 1 || u != 2 {
		t.Fatal("bounds wrong")
	}
	m.SetObj(v, 6)
	if m.Obj(v) != 6 {
		t.Fatal("SetObj failed")
	}
	c := m.AddConstr("row", EQ, 1)
	if m.ConstrName(c) != "row" {
		t.Fatal("ConstrName wrong")
	}
	if m.NumVars() != 1 || m.NumConstrs() != 1 {
		t.Fatal("counts wrong")
	}
	if m.Name() != "acc" {
		t.Fatal("name wrong")
	}
}

func TestModelNoVarsError(t *testing.T) {
	if _, err := NewModel("empty").Solve(context.Background(), simplex.Options{}); err == nil {
		t.Fatal("expected error on empty model")
	}
}

func TestParseLPRoundTrip(t *testing.T) {
	src := `
// a comment
min: 2 x + 3 y - z;
c1: x + y >= 4;
c2: x - 2 y <= 3;    # another comment
c3: x + z = 5;
x <= 10;
0 <= y <= 8;
free z;
`
	m, err := ParseLP(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVars() != 3 || m.NumConstrs() != 3 {
		t.Fatalf("vars=%d constrs=%d", m.NumVars(), m.NumConstrs())
	}
	sol, err := m.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != simplex.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Write, re-parse, re-solve: objective must match.
	var sb strings.Builder
	if err := WriteLP(&sb, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ParseLP(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	sol2, err := m2.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj-sol2.Obj) > 1e-6 {
		t.Fatalf("round-trip obj %v vs %v\n%s", sol.Obj, sol2.Obj, sb.String())
	}
}

func TestParseLPReversedRelation(t *testing.T) {
	m, err := ParseLP(strings.NewReader("min: x;\nc: 4 <= x + y;\n"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != simplex.Optimal || math.Abs(sol.Obj) > 1e-9 {
		// y covers the demand for free, so min x = 0.
		t.Fatalf("status=%v obj=%v", sol.Status, sol.Obj)
	}
}

func TestParseLPErrors(t *testing.T) {
	cases := []string{
		"c1: x + y >= 4;",            // missing objective
		"min: x; min: y;",            // duplicate objective
		"min: x; c: x + >= ;",        // junk
		"min: x; c: 3 4 x >= 1;",     // consecutive numbers
		"min: x; weird statement;",   // no relation
		"min: x; c: x + y >= zebra;", // non-numeric rhs both sides non-numeric? rhs is symbol -> error
		"min: x; 1 <= x + y <= 2;",   // range over expression unsupported
	}
	for _, src := range cases {
		if _, err := ParseLP(strings.NewReader(src)); err == nil {
			t.Errorf("ParseLP(%q) succeeded, want error", src)
		}
	}
}

func TestParseLPMaximize(t *testing.T) {
	m, err := ParseLP(strings.NewReader("max: 2 x;\nx <= 3;\n"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj-6) > 1e-6 {
		t.Fatalf("obj = %v, want 6", sol.Obj)
	}
}

func TestParseLPSingleVarBoundForms(t *testing.T) {
	m, err := ParseLP(strings.NewReader("min: x + y + z;\nx >= 2;\ny = 3;\nz >= 1;\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumConstrs() != 0 {
		t.Fatalf("single-variable rows should become bounds, got %d constraints", m.NumConstrs())
	}
	sol, err := m.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj-6) > 1e-6 {
		t.Fatalf("obj = %v, want 6", sol.Obj)
	}
}

// Fuzz-ish: random models solved through the layer agree with duality.
func TestModelRandomDualityGap(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		m := NewModel("rand")
		n := 2 + rng.Intn(8)
		vars := make([]VarID, n)
		for j := 0; j < n; j++ {
			lb := float64(-rng.Intn(3))
			ub := lb + 1 + float64(rng.Intn(5))
			vars[j] = m.AddVar("", lb, ub, math.Round(rng.NormFloat64()*5))
		}
		rows := 1 + rng.Intn(5)
		for i := 0; i < rows; i++ {
			sense := Sense(rng.Intn(3))
			// rhs chosen from a random feasible point
			var lhsAt float64
			coefs := make([]float64, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.5 {
					coefs[j] = math.Round(rng.NormFloat64() * 3)
				}
				l, u := m.Bounds(vars[j])
				lhsAt += coefs[j] * (l + (u-l)*0.5)
			}
			c := m.AddConstr("", sense, lhsAt)
			for j := 0; j < n; j++ {
				m.AddTerm(c, vars[j], coefs[j])
			}
		}
		sol, err := m.Solve(context.Background(), simplex.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != simplex.Optimal {
			t.Fatalf("trial %d: status %v (midpoint is feasible by construction)", trial, sol.Status)
		}
		// Recompute objective from values; must match sol.Obj.
		var obj float64
		for j := 0; j < n; j++ {
			obj += m.Obj(vars[j]) * sol.Value(vars[j])
		}
		if math.Abs(obj-sol.Obj) > 1e-6*(1+math.Abs(obj)) {
			t.Fatalf("trial %d: obj mismatch %v vs %v", trial, obj, sol.Obj)
		}
	}
}
