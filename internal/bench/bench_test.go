package bench

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyConfig runs the full harness machinery on toy instances so the
// test stays seconds, not minutes.
func tinyConfig() Config {
	return Config{Tier: "1k", Sizes: []int{40}, FBSize: 64}
}

func TestRunProducesCompleteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short")
	}
	rep, err := Run(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.Tier != "1k" || rep.GoVersion == "" {
		t.Fatalf("bad report header: %+v", rep)
	}
	// The four ladder sim cells at n=40, the epoch:stretch and
	// fifo-telemetry hot-path cells (the las/fair hot-path cells
	// collapse into the ladder's at the overridden size), the headline
	// pair, and the five scheduler/LP benches (including the
	// degenerate-LP robustness cell).
	if len(rep.Results) != 13 {
		names := make([]string, len(rep.Results))
		for i, r := range rep.Results {
			names[i] = r.Name
		}
		t.Fatalf("want 13 results, got %d: %v", len(rep.Results), names)
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.Iterations <= 0 {
			t.Fatalf("%s: empty measurement %+v", r.Name, r)
		}
		if strings.HasPrefix(r.Name, "sim/") && r.EventsPerSec <= 0 {
			t.Fatalf("%s: no events/sec", r.Name)
		}
	}
	head := rep.Find("BenchmarkSimulateFB/n=64")
	if head == nil || head.SpeedupVsReference <= 0 {
		t.Fatalf("headline entry missing speedup: %+v", head)
	}
	if rep.PeakRSSBytes <= 0 {
		t.Logf("peak RSS unavailable on this platform (got %d)", rep.PeakRSSBytes)
	}

	// JSON round-trip through the on-disk format.
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) || back.Tier != rep.Tier {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	if got := back.Find("BenchmarkSimulateFB/n=64"); got == nil ||
		got.SpeedupVsReference != head.SpeedupVsReference {
		t.Fatalf("round-trip lost the speedup entry: %+v", got)
	}
}

func TestRunRejectsUnknownTier(t *testing.T) {
	if _, err := Run(context.Background(), Config{Tier: "9000k"}); err == nil ||
		!strings.Contains(err.Error(), "tier") {
		t.Fatalf("want tier error, got %v", err)
	}
}

func report(results ...Result) *Report {
	return &Report{Schema: Schema, Tier: "1k", Results: results}
}

func TestCompareFlagsThroughputDrop(t *testing.T) {
	prev := report(Result{Name: "sim/fifo/x/n=1000", EventsPerSec: 100000, AllocsPerOp: 50})
	cur := report(Result{Name: "sim/fifo/x/n=1000", EventsPerSec: 70000, AllocsPerOp: 50})
	regs := Compare(prev, cur, 0.25)
	if len(regs) != 1 || regs[0].Metric != "events/sec" {
		t.Fatalf("want one events/sec regression, got %v", regs)
	}
	if regs[0].Change > -0.25 {
		t.Fatalf("change %v should be below -0.25", regs[0].Change)
	}
	// Within tolerance: no flag.
	cur.Results[0].EventsPerSec = 80000
	if regs := Compare(prev, cur, 0.25); len(regs) != 0 {
		t.Fatalf("25%% tolerance must absorb a 20%% drop, got %v", regs)
	}
	// Improvements never flag.
	cur.Results[0].EventsPerSec = 500000
	if regs := Compare(prev, cur, 0.25); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestCompareFlagsAllocGrowth(t *testing.T) {
	prev := report(Result{Name: "lp/single-path/n=8", NsPerOp: 1000, AllocsPerOp: 100})
	cur := report(Result{Name: "lp/single-path/n=8", NsPerOp: 5000, AllocsPerOp: 200})
	regs := Compare(prev, cur, 0.25)
	// ns/op noise is deliberately not compared; allocs/op doubling is.
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("want one allocs/op regression, got %v", regs)
	}
}

func TestCompareToleratesMissingAndForeign(t *testing.T) {
	prev := report(Result{Name: "a", EventsPerSec: 100})
	cur := report(Result{Name: "b", EventsPerSec: 1})
	if regs := Compare(prev, cur, 0.25); len(regs) != 0 {
		t.Fatalf("disjoint suites must not flag, got %v", regs)
	}
	if regs := Compare(nil, cur, 0.25); regs != nil {
		t.Fatalf("nil baseline must not flag, got %v", regs)
	}
	other := report(Result{Name: "b", EventsPerSec: 100})
	other.Tier = "10k"
	if regs := Compare(other, cur, 0.25); regs != nil {
		t.Fatalf("cross-tier comparison must not flag, got %v", regs)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"nope/v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

// TestRunCancelled: a cancelled context stops the suite before any
// benchmark cell runs.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, tinyConfig()); err != context.Canceled {
		t.Fatalf("cancelled Run returned %v", err)
	}
}
