package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Load reads a previously written report. A missing file is the "no
// baseline yet" case and is the caller's to branch on via os.IsNotExist.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// WriteFile serializes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Regression is one metric that moved past the tolerance in the bad
// direction between two reports.
type Regression struct {
	// Name is the benchmark, Metric the offending measurement
	// ("events/sec" or "allocs/op").
	Name   string
	Metric string
	// Before and After are the baseline and current values; Change is
	// the signed relative change (After/Before − 1).
	Before float64
	After  float64
	Change float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g → %.4g (%+.1f%%)", r.Name, r.Metric, r.Before, r.After, 100*r.Change)
}

// Compare diffs cur against the prev baseline and returns the
// regressions beyond tol (0 = DefaultTolerance): events/sec that
// dropped by more than tol, and allocs/op that grew by more than tol —
// the metrics that are stable run-to-run on one machine. Benchmarks
// present in only one report are ignored (the suite is allowed to
// grow), as are reports from a different tier (their grids differ).
func Compare(prev, cur *Report, tol float64) []Regression {
	if tol == 0 {
		tol = DefaultTolerance
	}
	if prev == nil || cur == nil || prev.Tier != cur.Tier {
		return nil
	}
	var regs []Regression
	for i := range cur.Results {
		c := &cur.Results[i]
		p := prev.Find(c.Name)
		if p == nil {
			continue
		}
		if p.EventsPerSec > 0 && c.EventsPerSec > 0 {
			change := c.EventsPerSec/p.EventsPerSec - 1
			if change < -tol {
				regs = append(regs, Regression{
					Name: c.Name, Metric: "events/sec",
					Before: p.EventsPerSec, After: c.EventsPerSec, Change: change,
				})
			}
		}
		if p.AllocsPerOp > 0 && c.AllocsPerOp > 0 {
			change := c.AllocsPerOp/p.AllocsPerOp - 1
			if change > tol {
				regs = append(regs, Regression{
					Name: c.Name, Metric: "allocs/op",
					Before: p.AllocsPerOp, After: c.AllocsPerOp, Change: change,
				})
			}
		}
	}
	return regs
}
