// Package bench is the benchmark-regression harness: it runs a
// parameterized suite of simulator, scheduler, and LP micro-benchmarks
// at a chosen instance-size tier (1k / 10k / 100k coflows across
// topology families), collects machine-readable metrics (events/sec,
// ns/op, allocs/op, bytes/op, peak RSS), and compares the fresh report
// against a previous BENCH_sim.json so CI — and the repo's BENCH_*
// trajectory — can flag throughput regressions with a configurable
// tolerance.
//
// The suite runs through testing.Benchmark, so the numbers are the
// exact ones `go test -bench` would report; the harness exists so the
// measurement can be driven from cmd/coflowsim (no test binary
// required), serialized, and diffed. The headline entry is
// BenchmarkSimulateFB/n=2000: the optimized online simulator and the
// retained un-optimized reference loop (sim.SimulateReference) run the
// identical instance and the ratio of their events/sec is recorded as
// the speedup the internal/sim overhaul bought.
//
// Comparisons only fail on the stable metrics: events/sec on a fixed
// instance and allocs/op are reproducible on one machine, while raw
// ns/op of LP solves is noisy across shared runners; Compare therefore
// flags events/sec drops and allocs/op growth beyond the tolerance and
// reports everything else informationally through the Report itself.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/coflow"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simplex"
	"repro/internal/sparse"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Schema identifies the report format.
const Schema = "coflow-bench/v1"

// DefaultTolerance is the relative regression budget Compare applies
// when the caller passes 0 — the >25% events/sec bar the CI job
// enforces.
const DefaultTolerance = 0.25

// Tiers lists the selectable instance-size tiers, smallest first.
var Tiers = []string{"1k", "10k", "100k"}

// tierSizes maps a tier to its coflow-count ladder.
var tierSizes = map[string][]int{
	"1k":   {1000},
	"10k":  {1000, 10000},
	"100k": {1000, 10000, 100000},
}

// Config parameterizes a harness run.
type Config struct {
	// Tier selects the instance-size ladder: "1k", "10k" or "100k"
	// (empty = "1k"). Larger tiers include the smaller sizes.
	Tier string
	// Sizes overrides the tier ladder with explicit coflow counts —
	// the harness's own tests run tiny instances through the full
	// machinery this way.
	Sizes []int
	// Seed drives workload generation (0 = 6, the seed the historical
	// BenchmarkSimulateFB uses).
	Seed int64
	// FBSize overrides the headline BenchmarkSimulateFB instance size
	// (0 = 2000, the acceptance-tracked cell). Tests shrink it.
	FBSize int
	// Logf, when set, receives one progress line per benchmark.
	Logf func(format string, args ...any)
}

func (c Config) normalize() (Config, error) {
	if c.Tier == "" {
		c.Tier = "1k"
	}
	if _, ok := tierSizes[c.Tier]; !ok {
		return c, fmt.Errorf("bench: unknown tier %q (have %v)", c.Tier, Tiers)
	}
	if c.Seed == 0 {
		c.Seed = 6
	}
	if c.FBSize == 0 {
		c.FBSize = 2000
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// Result is one benchmark's measurement.
type Result struct {
	// Name identifies the benchmark, e.g. "sim/fifo/big-switch:n=64/n=10000".
	Name string `json:"name"`
	// Iterations is the b.N testing.Benchmark settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per benchmark operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp come from the runtime's allocation
	// counters.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// EventsPerSec is the simulator throughput (0 for non-sim benches).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// SpeedupVsReference is set on the headline entry only: optimized
	// events/sec over the un-optimized reference loop's on the same
	// instance.
	SpeedupVsReference float64 `json:"speedup_vs_reference,omitempty"`
}

// Report is the serialized outcome of one harness run (BENCH_sim.json).
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Tier      string `json:"tier"`
	// PeakRSSBytes is the process high-water resident set after the
	// run (VmHWM on Linux; 0 where unavailable).
	PeakRSSBytes int64    `json:"peak_rss_bytes"`
	Results      []Result `json:"results"`
}

// Find returns the named result, or nil.
func (r *Report) Find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// simCase is one simulator benchmark cell.
type simCase struct {
	policy string
	spec   string // topology spec ("swan" for the hand-coded WAN)
	inter  float64
	// maxSize gates policies whose per-replan cost is quadratic in the
	// backlog off the largest tiers.
	maxSize int
	// slots, trials, and warmLP configure wrapped engine schedulers
	// for "epoch:<scheduler>" policies (zero values = sim defaults).
	slots  int
	trials int
	warmLP bool
	// telemetry attaches an enabled obs registry, so the cell measures
	// the event loop with the atomic counters live.
	telemetry bool
}

// options builds the simulator options for this cell.
func (sc simCase) options(seed int64) sim.Options {
	o := sim.Options{
		Policy: sc.policy, MaxSlots: sc.slots, Trials: sc.trials,
		WarmLP: sc.warmLP, Seed: seed,
	}
	if sc.telemetry {
		o.Obs = obs.NewRegistry()
	}
	return o
}

// simSuite is the policy × topology matrix the tiers scale over.
var simSuite = []simCase{
	{policy: "fifo", spec: "big-switch:n=64", inter: 0.25, maxSize: 1 << 30},
	{policy: "las", spec: "leaf-spine:leaves=8,spines=4,hosts=4", inter: 0.25, maxSize: 1 << 30},
	{policy: "fair", spec: "big-switch:n=64", inter: 0.25, maxSize: 10000},
	{policy: "sincronia-online", spec: "swan", inter: 1.0, maxSize: 10000},
}

// hotPathSuite pins cells at fixed instance sizes regardless of the
// selected tier, so every harness run (including the 1k CI gate)
// tracks them: the 10k las/fair floors the incremental allocators
// bought, the epoch:stretch cell — one LP re-plan per arrival,
// with the basis carried between re-plans — that the interval-LP
// speedup made runnable at 1k coflows, and a telemetry variant of the
// fifo cell that bounds what an enabled obs registry costs the event
// loop (the >25% events/sec gate is the overhead budget). A cell
// whose name the tier ladder already produced is skipped rather than
// measured twice.
var hotPathSuite = []struct {
	simCase
	n   int
	tag string // name suffix marking a variant of a ladder cell
}{
	{simCase{policy: "las", spec: "leaf-spine:leaves=8,spines=4,hosts=4", inter: 0.25}, 10000, ""},
	{simCase{policy: "fair", spec: "big-switch:n=64", inter: 0.25}, 10000, ""},
	{simCase{policy: "epoch:stretch", spec: "swan", inter: 4.0, slots: 8, trials: 1, warmLP: true}, 1000, ""},
	{simCase{policy: "fifo", spec: "big-switch:n=64", inter: 0.25, telemetry: true}, 1000, "telemetry"},
}

// Run executes the suite for cfg and returns the report. ctx cancels
// between benchmark cells (a single testing.Benchmark invocation is
// not interrupted mid-measurement, so cancellation latency is one
// cell, not one suite).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	sizes := cfg.Sizes
	if len(sizes) == 0 {
		sizes = tierSizes[cfg.Tier]
	}
	rep := &Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Tier:      cfg.Tier,
	}

	// Simulator throughput across the policy × topology × size grid.
	for _, sc := range simSuite {
		for _, n := range sizes {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if n > sc.maxSize {
				cfg.Logf("bench: skipping %s at n=%d (gated above n=%d)", sc.policy, n, sc.maxSize)
				continue
			}
			name := fmt.Sprintf("sim/%s/%s/n=%d", sc.policy, sc.spec, n)
			in, err := benchInstance(sc.spec, n, sc.inter, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", name, err)
			}
			res, err := runSim(cfg, name, in, sim.Options{Policy: sc.policy}, sim.Simulate)
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, res)
		}
	}

	// Fixed-size hot-path cells (skipping any the ladder already ran).
	for _, hc := range hotPathSuite {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := hc.n
		if len(cfg.Sizes) > 0 {
			// Explicit size overrides (harness tests) shrink these cells
			// along with the ladder.
			n = cfg.Sizes[0]
		}
		name := fmt.Sprintf("sim/%s/%s/n=%d", hc.policy, hc.spec, n)
		if hc.tag != "" {
			name += "/" + hc.tag
		}
		if rep.Find(name) != nil {
			continue
		}
		in, err := benchInstance(hc.spec, n, hc.inter, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		res, err := runSim(cfg, name, in, hc.options(cfg.Seed), sim.Simulate)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, res)
	}

	// Headline: the historical BenchmarkSimulateFB cell at n=2000,
	// optimized vs the retained reference loop, with the speedup the
	// indexed event queue + sparse allocations bought.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fbIn, err := benchInstance("swan", cfg.FBSize, 0.5, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: BenchmarkSimulateFB instance: %w", err)
	}
	fbName := fmt.Sprintf("BenchmarkSimulateFB/n=%d", cfg.FBSize)
	opt, err := runSim(cfg, fbName, fbIn,
		sim.Options{Policy: sim.NameSincroniaOnline}, sim.Simulate)
	if err != nil {
		return nil, err
	}
	ref, err := runSim(cfg, fbName+"/reference", fbIn,
		sim.Options{Policy: sim.NameSincroniaOnline}, sim.SimulateReference)
	if err != nil {
		return nil, err
	}
	if ref.EventsPerSec > 0 {
		opt.SpeedupVsReference = opt.EventsPerSec / ref.EventsPerSec
	}
	rep.Results = append(rep.Results, opt, ref)

	// Scheduler and LP micro-benchmarks (fixed small instances: these
	// track per-call cost of the offline pipeline, not scale).
	sched, err := schedulerResults(ctx, cfg)
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, sched...)

	rep.PeakRSSBytes = peakRSS()
	return rep, nil
}

// benchInstance generates the canonical benchmark workload for a
// topology spec at n coflows.
func benchInstance(spec string, n int, inter float64, seed int64) (*coflow.Instance, error) {
	var g *graph.Graph
	var eps []graph.NodeID
	if spec == "swan" {
		g = graph.SWAN(1)
	} else {
		top, err := topo.New(spec)
		if err != nil {
			return nil, err
		}
		g, eps = top.Graph, top.Endpoints
	}
	return workload.Generate(workload.Config{
		Kind: workload.FB, Graph: g, NumCoflows: n, Seed: seed,
		MeanInterarrival: inter, AssignPaths: true, Endpoints: eps,
	})
}

// runSim benchmarks one simulate function on one instance, reporting
// events/sec alongside the standard per-op numbers.
func runSim(cfg Config, name string, in *coflow.Instance,
	opt sim.Options, f func(context.Context, *coflow.Instance, sim.Options) (*sim.Result, error)) (Result, error) {
	var simErr error
	events := 0
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		events = 0
		for i := 0; i < b.N; i++ {
			res, err := f(context.Background(), in, opt)
			if err != nil {
				simErr = err
				b.FailNow()
			}
			events += res.Events
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	})
	if simErr != nil {
		return Result{}, fmt.Errorf("bench: %s: %w", name, simErr)
	}
	r := fromBenchmark(name, br)
	cfg.Logf("bench: %-55s %12.0f events/sec  %10d ns/op", name, r.EventsPerSec, int64(r.NsPerOp))
	return r, nil
}

// schedulerResults runs the offline scheduler and LP micro-benchmarks.
func schedulerResults(ctx context.Context, cfg Config) ([]Result, error) {
	var out []Result
	lpIn, err := benchInstance("swan", 8, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	greedyIn, err := benchInstance("swan", 64, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"scheduler/stretch/n=8", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Schedule(context.Background(), "stretch", lpIn,
					coflow.SinglePath, engine.Options{MaxSlots: 24, Trials: 4, Seed: cfg.Seed}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"scheduler/sincronia-greedy/n=64", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Schedule(context.Background(), "sincronia-greedy", greedyIn,
					coflow.SinglePath, engine.Options{MaxSlots: 48}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"lp/single-path/n=8", func(b *testing.B) {
			opt := core.Options{Grid: core.DefaultGrid(lpIn, coflow.SinglePath, 24)}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveLP(ctx, lpIn, coflow.SinglePath, opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// Resolve-after-perturbation: solve once cold, nudge every
		// demand by ±1%, and measure the warm re-solve from the exported
		// basis — the epoch re-plan pattern the warm start exists for.
		{"lp/warm-start/n=8", func(b *testing.B) {
			opt := core.Options{Grid: core.DefaultGrid(lpIn, coflow.SinglePath, 24)}
			base, err := core.SolveLP(ctx, lpIn, coflow.SinglePath, opt)
			if err != nil {
				b.Fatal(err)
			}
			if base.Basis == nil {
				b.Fatal("cold solve exported no basis")
			}
			rng := rand.New(rand.NewSource(cfg.Seed))
			pert := *lpIn
			pert.Coflows = append([]coflow.Coflow(nil), lpIn.Coflows...)
			for j := range pert.Coflows {
				pert.Coflows[j].Flows = append([]coflow.Flow(nil), lpIn.Coflows[j].Flows...)
				for i := range pert.Coflows[j].Flows {
					pert.Coflows[j].Flows[i].Demand *= 1 + 0.01*rng.NormFloat64()
				}
			}
			wopt := core.Options{
				Grid:      core.DefaultGrid(&pert, coflow.SinglePath, 24),
				WarmBasis: base.Basis,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveLP(ctx, &pert, coflow.SinglePath, wopt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// Numerical-robustness cell: a rank-deficient, tie-riddled LP
		// (every assignment constraint stated twice) that cannot be
		// solved with an all-structural basis, so it exercises the
		// anti-degeneracy and singular-basis handling on every run.
		{"lp/degenerate-robust/m=24", func(b *testing.B) {
			p := degenerateBenchLP(cfg.Seed)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sol, err := simplex.Solve(ctx, p, simplex.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if sol.Status != simplex.Optimal {
					b.Fatalf("degenerate LP status %v, want optimal", sol.Status)
				}
			}
		}},
	}
	for _, c := range cases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		br := testing.Benchmark(c.fn)
		r := fromBenchmark(c.name, br)
		cfg.Logf("bench: %-55s %25d ns/op", c.name, int64(r.NsPerOp))
		out = append(out, r)
	}
	return out, nil
}

// degenerateBenchLP builds a deterministic rank-deficient LP: a 6×6
// assignment polytope with every row- and column-sum constraint
// duplicated (rank 11 out of 24 rows) and small-integer costs full of
// ties. Phase 1 must leave artificials basic on the redundant rows and
// phase 2 walks a heavily degenerate face — the robustness paths this
// cell guards are measured, not just correctness-tested.
func degenerateBenchLP(seed int64) *simplex.Problem {
	const k = 6
	rng := rand.New(rand.NewSource(seed))
	m := 4 * k // row sums twice, column sums twice
	n := k * k
	bld := sparse.NewBuilder(m, n)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			v := i*k + j
			bld.Add(i, v, 1)
			bld.Add(k+i, v, 1)
			bld.Add(2*k+j, v, 1)
			bld.Add(3*k+j, v, 1)
		}
	}
	bvec := make([]float64, m)
	for i := range bvec {
		bvec[i] = 1
	}
	c := make([]float64, n)
	for j := range c {
		c[j] = float64(rng.Intn(3))
	}
	l := make([]float64, n)
	u := make([]float64, n)
	for j := range u {
		u[j] = 1
	}
	return &simplex.Problem{A: bld.Build(), B: bvec, C: c, L: l, U: u}
}

// fromBenchmark converts a testing.BenchmarkResult.
func fromBenchmark(name string, br testing.BenchmarkResult) Result {
	r := Result{
		Name:        name,
		Iterations:  br.N,
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: float64(br.AllocsPerOp()),
		BytesPerOp:  float64(br.AllocedBytesPerOp()),
	}
	if v, ok := br.Extra["events/sec"]; ok {
		r.EventsPerSec = v
	}
	return r
}

// peakRSS reads the process's high-water resident set size (VmHWM)
// from /proc/self/status; 0 where the file or field is unavailable.
func peakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
