// Package topo is the parameterized topology generator: it builds the
// datacenter-style and adversarial network families the paper's "general
// networks" claim must be stressed on, beyond the two hand-coded WANs of
// internal/graph. Every family is selected by a compact spec string
//
//	family[:key=value,key=value,...]
//
// e.g. "fat-tree:k=4" or "erdos-renyi:n=10,p=0.3,seed=7,hetero=1".
// Values are numbers; unknown families or keys fail with a listing of
// what exists. All randomness (random graph wiring, heterogeneous
// capacities) derives from the spec's seed parameter, so a spec string
// is a complete, reproducible description of its network.
//
// A generated Topology carries the capacitated graph plus the designated
// workload endpoints: in switched fabrics (fat-tree, leaf-spine,
// big-switch) only hosts source or sink traffic, while in flat families
// (line, ring, star, random graphs) every node does. Workload generators
// draw flow endpoints from Topology.Endpoints (see
// workload.Config.Endpoints).
//
// Families:
//
//	big-switch     n hosts on one non-blocking switch — the classic
//	               datacenter abstraction of the original coflow papers
//	               (endpoints: hosts)
//	star           hub + n spokes, hub itself an endpoint
//	line           bidirectional path of n nodes
//	ring           bidirectional cycle of n nodes
//	fat-tree       3-tier k-ary fat-tree: (k/2)² cores, k pods of k/2
//	               aggregation + k/2 edge switches, k/2 hosts per edge
//	               switch (endpoints: the k³/4 hosts)
//	leaf-spine     2-tier Clos: every leaf connects to every spine,
//	               hosts hang off leaves (endpoints: hosts)
//	random-regular connected random d-regular graph (pairing model)
//	erdos-renyi    connected Erdős–Rényi: a random Hamiltonian cycle
//	               guarantees connectivity, every remaining pair joins
//	               independently with probability p
//
// Common keys: cap (link capacity, default 1), seed (default 1), and
// hetero (0/1, default 0) which draws every link's capacity
// log-uniformly from [cap/√10, cap·√10] instead of using cap exactly.
// Links are full duplex, as everywhere in this repository: one physical
// link is two directed edges, each with the full capacity.
package topo

import (
	"fmt"
	"maps"
	"math"
	"math/rand"
	"slices"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Topology is a generated network plus its designated endpoints.
type Topology struct {
	// Spec is the spec string the topology was built from.
	Spec string
	// Family is the generator family name.
	Family string
	// Graph is the capacitated network.
	Graph *graph.Graph
	// Endpoints lists the nodes where workload flows may originate or
	// terminate: hosts in switched fabrics, every node otherwise.
	Endpoints []graph.NodeID
}

// family describes one generator: its allowed parameter keys with
// defaults, and the builder. Builders draw all randomness from ctx.rng
// and all link capacities through ctx.link, so determinism and capacity
// heterogeneity are handled uniformly.
type family struct {
	defaults map[string]float64
	build    func(c *buildCtx) ([]graph.NodeID, error)
}

// Common parameter defaults shared by every family.
func common(extra map[string]float64) map[string]float64 {
	d := map[string]float64{"cap": 1, "seed": 1, "hetero": 0}
	for _, k := range slices.Sorted(maps.Keys(extra)) {
		d[k] = extra[k]
	}
	return d
}

var families = map[string]family{
	"big-switch": {
		defaults: common(map[string]float64{"n": 8}),
		build:    buildBigSwitch,
	},
	"star": {
		defaults: common(map[string]float64{"n": 8}),
		build:    buildStar,
	},
	"line": {
		defaults: common(map[string]float64{"n": 4}),
		build:    buildLine,
	},
	"ring": {
		defaults: common(map[string]float64{"n": 6}),
		build:    buildRing,
	},
	"fat-tree": {
		defaults: common(map[string]float64{"k": 4}),
		build:    buildFatTree,
	},
	"leaf-spine": {
		defaults: common(map[string]float64{"leaves": 4, "spines": 2, "hosts": 2, "up": 0}),
		build:    buildLeafSpine,
	},
	"random-regular": {
		defaults: common(map[string]float64{"n": 8, "d": 3}),
		build:    buildRandomRegular,
	},
	"erdos-renyi": {
		defaults: common(map[string]float64{"n": 8, "p": 0.3}),
		build:    buildErdosRenyi,
	},
}

// Families lists the generator family names, sorted.
func Families() []string {
	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// buildCtx bundles what every builder needs: the graph under
// construction, the seeded RNG, and the capacity policy.
type buildCtx struct {
	g      *graph.Graph
	rng    *rand.Rand
	p      map[string]float64
	cap    float64
	hetero bool
}

// capacity draws one link capacity: cap exactly, or log-uniform in
// [cap/√10, cap·√10] under hetero.
func (c *buildCtx) capacity() float64 {
	if !c.hetero {
		return c.cap
	}
	return c.cap * math.Exp((c.rng.Float64()-0.5)*math.Ln10)
}

// link adds a full-duplex link with one drawn capacity for both
// directions.
func (c *buildCtx) link(a, b graph.NodeID) {
	c.g.AddLink(a, b, c.capacity())
}

// intParam reads key as a non-negative integer parameter.
func (c *buildCtx) intParam(key string) (int, error) {
	v := c.p[key]
	if v != math.Trunc(v) || v < 0 || v > 1e6 {
		return 0, fmt.Errorf("topo: parameter %s=%g must be a non-negative integer", key, v)
	}
	return int(v), nil
}

// ParseSpec splits a spec string into its family name and parameter
// map, validating the family, the keys, and the number syntax. It does
// not build the graph; New does.
func ParseSpec(spec string) (string, map[string]float64, error) {
	spec = strings.TrimSpace(spec)
	name, rest, _ := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	fam, ok := families[name]
	if !ok {
		return "", nil, fmt.Errorf("topo: unknown family %q (have %v)", name, Families())
	}
	p := make(map[string]float64, len(fam.defaults))
	for _, k := range slices.Sorted(maps.Keys(fam.defaults)) {
		p[k] = fam.defaults[k]
	}
	if strings.TrimSpace(rest) == "" {
		return name, p, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, vs, found := strings.Cut(kv, "=")
		k = strings.TrimSpace(k)
		if !found || k == "" {
			return "", nil, fmt.Errorf("topo: %q: parameter %q is not key=value", spec, kv)
		}
		if _, known := fam.defaults[k]; !known {
			keys := make([]string, 0, len(fam.defaults))
			for dk := range fam.defaults {
				keys = append(keys, dk)
			}
			sort.Strings(keys)
			return "", nil, fmt.Errorf("topo: %s: unknown parameter %q (have %v)", name, k, keys)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(vs), 64)
		if err != nil {
			return "", nil, fmt.Errorf("topo: %s: parameter %s=%q is not a number", name, k, vs)
		}
		// NaN poisons every downstream comparison (NaN > 0, NaN ≤ 0,
		// NaN != trunc(NaN) are all false in ways that dodge the
		// guards), and ±Inf turns into nonsense capacities and seeds;
		// the fuzzer found both slipping through, so reject them at
		// the grammar.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return "", nil, fmt.Errorf("topo: %s: parameter %s=%q is not finite", name, k, vs)
		}
		p[k] = v
	}
	return name, p, nil
}

// New builds the topology described by spec. The same spec always
// produces the identical graph: node and edge ids depend only on the
// family, the parameters, and the seed.
func New(spec string) (*Topology, error) {
	name, p, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	// !(cap > 0) rather than cap <= 0: the former also rejects NaN
	// when a caller bypasses ParseSpec's finiteness guard. The upper
	// bound keeps hetero's ×√10 draw from overflowing to +Inf.
	if !(p["cap"] > 0) || p["cap"] > 1e100 {
		return nil, fmt.Errorf("topo: %s: cap=%g must be positive (and at most 1e100)", name, p["cap"])
	}
	// Keep seeds in the exactly representable integer range: float→
	// int64 conversion of anything larger is implementation-defined.
	if s := p["seed"]; math.Abs(s) > 1<<53 {
		return nil, fmt.Errorf("topo: %s: seed=%g outside the exact integer range", name, s)
	}
	c := &buildCtx{
		g:      graph.New(),
		rng:    rand.New(rand.NewSource(int64(p["seed"]))),
		p:      p,
		cap:    p["cap"],
		hetero: p["hetero"] != 0,
	}
	eps, err := families[name].build(c)
	if err != nil {
		return nil, err
	}
	return &Topology{
		Spec:      strings.TrimSpace(spec),
		Family:    name,
		Graph:     c.g,
		Endpoints: eps,
	}, nil
}

// allNodes returns every node id of g, the endpoint set of flat
// families.
func allNodes(g *graph.Graph) []graph.NodeID {
	ids := make([]graph.NodeID, g.NumNodes())
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	return ids
}

// buildBigSwitch wires n hosts to one non-blocking central switch: the
// big-switch abstraction every host-pair shares only its own access
// links with. Endpoints are the hosts; the switch never terminates
// traffic.
func buildBigSwitch(c *buildCtx) ([]graph.NodeID, error) {
	n, err := c.intParam("n")
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("topo: big-switch needs n ≥ 1 hosts, got %d", n)
	}
	sw := c.g.AddNode("sw")
	hosts := make([]graph.NodeID, n)
	for i := range hosts {
		hosts[i] = c.g.AddNode(fmt.Sprintf("h%d", i))
		c.link(sw, hosts[i])
	}
	return hosts, nil
}

// buildStar wires n spokes to a hub; unlike big-switch, the hub is a
// datacenter in its own right and an endpoint.
func buildStar(c *buildCtx) ([]graph.NodeID, error) {
	n, err := c.intParam("n")
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("topo: star needs n ≥ 1 spokes, got %d", n)
	}
	hub := c.g.AddNode("hub")
	for i := 0; i < n; i++ {
		c.link(hub, c.g.AddNode(fmt.Sprintf("s%d", i)))
	}
	return allNodes(c.g), nil
}

// buildLine is a bidirectional path v0 — v1 — … — v_{n-1}; the
// worst-case diameter family, and the fixture of the golden traces.
func buildLine(c *buildCtx) ([]graph.NodeID, error) {
	n, err := c.intParam("n")
	if err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("topo: line needs n ≥ 2 nodes, got %d", n)
	}
	prev := c.g.AddNode("v0")
	for i := 1; i < n; i++ {
		v := c.g.AddNode(fmt.Sprintf("v%d", i))
		c.link(prev, v)
		prev = v
	}
	return allNodes(c.g), nil
}

// buildRing is a bidirectional cycle of n nodes.
func buildRing(c *buildCtx) ([]graph.NodeID, error) {
	n, err := c.intParam("n")
	if err != nil {
		return nil, err
	}
	if n < 3 {
		return nil, fmt.Errorf("topo: ring needs n ≥ 3 nodes, got %d", n)
	}
	nodes := make([]graph.NodeID, n)
	for i := range nodes {
		nodes[i] = c.g.AddNode(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < n; i++ {
		c.link(nodes[i], nodes[(i+1)%n])
	}
	return nodes, nil
}

// buildFatTree is the standard 3-tier k-ary fat-tree (Al-Fares et al.):
// (k/2)² core switches; k pods, each with k/2 aggregation and k/2 edge
// switches; k/2 hosts per edge switch (k³/4 hosts total). Aggregation
// switch j of every pod connects to cores j·k/2 … j·k/2+k/2−1. All
// links share one capacity, the non-oversubscribed configuration.
func buildFatTree(c *buildCtx) ([]graph.NodeID, error) {
	k, err := c.intParam("k")
	if err != nil {
		return nil, err
	}
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree needs an even k ≥ 2, got %d", k)
	}
	half := k / 2
	cores := make([]graph.NodeID, half*half)
	for i := range cores {
		cores[i] = c.g.AddNode(fmt.Sprintf("c%d", i))
	}
	var hosts []graph.NodeID
	for pod := 0; pod < k; pod++ {
		agg := make([]graph.NodeID, half)
		edge := make([]graph.NodeID, half)
		for j := 0; j < half; j++ {
			agg[j] = c.g.AddNode(fmt.Sprintf("p%da%d", pod, j))
		}
		for j := 0; j < half; j++ {
			edge[j] = c.g.AddNode(fmt.Sprintf("p%de%d", pod, j))
		}
		for j := 0; j < half; j++ {
			for m := 0; m < half; m++ {
				c.link(edge[j], agg[m])
			}
		}
		for j := 0; j < half; j++ {
			for m := 0; m < half; m++ {
				c.link(agg[j], cores[j*half+m])
			}
		}
		for j := 0; j < half; j++ {
			for m := 0; m < half; m++ {
				h := c.g.AddNode(fmt.Sprintf("p%de%dh%d", pod, j, m))
				c.link(edge[j], h)
				hosts = append(hosts, h)
			}
		}
	}
	return hosts, nil
}

// buildLeafSpine is the 2-tier Clos fabric: every leaf connects to
// every spine with capacity up (default cap), and hosts hang off leaves
// with capacity cap. up < hosts·cap/spines oversubscribes the fabric.
func buildLeafSpine(c *buildCtx) ([]graph.NodeID, error) {
	leaves, err := c.intParam("leaves")
	if err != nil {
		return nil, err
	}
	spines, err := c.intParam("spines")
	if err != nil {
		return nil, err
	}
	hosts, err := c.intParam("hosts")
	if err != nil {
		return nil, err
	}
	if leaves < 2 || spines < 1 || hosts < 1 {
		return nil, fmt.Errorf("topo: leaf-spine needs leaves ≥ 2, spines ≥ 1, hosts ≥ 1, got %d/%d/%d",
			leaves, spines, hosts)
	}
	up := c.p["up"]
	if up < 0 {
		return nil, fmt.Errorf("topo: leaf-spine up=%g must be non-negative", up)
	}
	sp := make([]graph.NodeID, spines)
	for i := range sp {
		sp[i] = c.g.AddNode(fmt.Sprintf("s%d", i))
	}
	var eps []graph.NodeID
	for l := 0; l < leaves; l++ {
		leaf := c.g.AddNode(fmt.Sprintf("l%d", l))
		for _, s := range sp {
			capUp := up
			if capUp == 0 {
				capUp = c.capacity()
			}
			c.g.AddLink(leaf, s, capUp)
		}
		for h := 0; h < hosts; h++ {
			hn := c.g.AddNode(fmt.Sprintf("l%dh%d", l, h))
			c.link(leaf, hn)
			eps = append(eps, hn)
		}
	}
	return eps, nil
}

// undirectedEdge is a normalized node pair for wiring random families.
type undirectedEdge struct{ a, b int }

func normEdge(a, b int) undirectedEdge {
	if a > b {
		a, b = b, a
	}
	return undirectedEdge{a, b}
}

// connected reports whether the undirected edge set spans all n nodes,
// via union-find.
func connected(n int, edges []undirectedEdge) bool {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := n
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		if ra != rb {
			parent[ra] = rb
			comps--
		}
	}
	return comps == 1
}

// buildRandomRegular samples a connected random d-regular graph with
// the pairing (configuration) model: n·d stubs are shuffled and paired,
// rejecting pairings with self-loops, parallel edges, or a disconnected
// result. Rejection sampling keeps the draw uniform over simple
// pairings; the fixed seed keeps it reproducible.
func buildRandomRegular(c *buildCtx) ([]graph.NodeID, error) {
	n, err := c.intParam("n")
	if err != nil {
		return nil, err
	}
	d, err := c.intParam("d")
	if err != nil {
		return nil, err
	}
	if n < 2 || d < 1 || d >= n || n*d%2 != 0 {
		return nil, fmt.Errorf("topo: random-regular needs 1 ≤ d < n and n·d even, got n=%d d=%d", n, d)
	}
	const attempts = 1000
	for try := 0; try < attempts; try++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		c.rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		seen := make(map[undirectedEdge]bool, n*d/2)
		edges := make([]undirectedEdge, 0, n*d/2)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			a, b := stubs[i], stubs[i+1]
			e := normEdge(a, b)
			if a == b || seen[e] {
				ok = false
				break
			}
			seen[e] = true
			edges = append(edges, e)
		}
		if !ok || !connected(n, edges) {
			continue
		}
		nodes := make([]graph.NodeID, n)
		for v := range nodes {
			nodes[v] = c.g.AddNode(fmt.Sprintf("v%d", v))
		}
		for _, e := range edges {
			c.link(nodes[e.a], nodes[e.b])
		}
		return nodes, nil
	}
	return nil, fmt.Errorf("topo: random-regular n=%d d=%d: no simple connected pairing in %d attempts", n, d, attempts)
}

// buildErdosRenyi samples a connected Erdős–Rényi-style graph: a random
// Hamiltonian cycle guarantees connectivity (plain G(n,p) is
// disconnected with constant probability at small n, which no coflow
// instance can use), then every remaining unordered pair joins
// independently with probability p.
func buildErdosRenyi(c *buildCtx) ([]graph.NodeID, error) {
	n, err := c.intParam("n")
	if err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("topo: erdos-renyi needs n ≥ 2 nodes, got %d", n)
	}
	p := c.p["p"]
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topo: erdos-renyi p=%g outside [0, 1]", p)
	}
	nodes := make([]graph.NodeID, n)
	for v := range nodes {
		nodes[v] = c.g.AddNode(fmt.Sprintf("v%d", v))
	}
	perm := c.rng.Perm(n)
	seen := make(map[undirectedEdge]bool, n)
	for i := 0; i < n; i++ {
		a, b := perm[i], perm[(i+1)%n]
		e := normEdge(a, b)
		if seen[e] {
			continue // n=2: the cycle degenerates to one link
		}
		seen[e] = true
		c.link(nodes[a], nodes[b])
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if seen[undirectedEdge{a, b}] {
				continue
			}
			if c.rng.Float64() < p {
				c.link(nodes[a], nodes[b])
			}
		}
	}
	return nodes, nil
}
