package topo

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
)

func mustNew(t *testing.T, spec string) *Topology {
	t.Helper()
	top, err := New(spec)
	if err != nil {
		t.Fatalf("New(%q): %v", spec, err)
	}
	return top
}

func TestFamiliesListed(t *testing.T) {
	fams := Families()
	if len(fams) < 8 {
		t.Fatalf("only %d families: %v", len(fams), fams)
	}
	for _, want := range []string{"big-switch", "star", "line", "ring",
		"fat-tree", "leaf-spine", "random-regular", "erdos-renyi"} {
		found := false
		for _, f := range fams {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("family %q missing from %v", want, fams)
		}
	}
}

// TestFamilySizes pins node/edge/endpoint counts of every family at a
// reference parameterization.
func TestFamilySizes(t *testing.T) {
	cases := []struct {
		spec                   string
		nodes, links, endpoint int // links = physical (full-duplex) links
	}{
		{"big-switch:n=5", 6, 5, 5},
		{"star:n=5", 6, 5, 6},
		{"line:n=4", 4, 3, 4},
		{"ring:n=6", 6, 6, 6},
		// k=4 fat-tree: 4 cores + 4 pods × (2 agg + 2 edge) + 16 hosts;
		// links: 16 edge-agg + 16 agg-core + 16 host.
		{"fat-tree:k=4", 36, 48, 16},
		{"leaf-spine:leaves=3,spines=2,hosts=2", 11, 12, 6},
		{"random-regular:n=8,d=3", 8, 12, 8},
	}
	for _, c := range cases {
		top := mustNew(t, c.spec)
		if got := top.Graph.NumNodes(); got != c.nodes {
			t.Errorf("%s: %d nodes, want %d", c.spec, got, c.nodes)
		}
		if got := top.Graph.NumEdges(); got != 2*c.links {
			t.Errorf("%s: %d directed edges, want %d", c.spec, got, 2*c.links)
		}
		if got := len(top.Endpoints); got != c.endpoint {
			t.Errorf("%s: %d endpoints, want %d", c.spec, got, c.endpoint)
		}
	}
}

// TestDeterministic asserts a spec string fully determines the graph:
// same spec twice gives identical nodes, edges, and capacities, and a
// different seed gives a different random wiring.
func TestDeterministic(t *testing.T) {
	for _, spec := range []string{
		"random-regular:n=10,d=3,seed=4,hetero=1",
		"erdos-renyi:n=9,p=0.4,seed=11,hetero=1",
		"fat-tree:k=4,hetero=1,seed=3",
	} {
		a, b := mustNew(t, spec), mustNew(t, spec)
		if a.Graph.NumEdges() != b.Graph.NumEdges() {
			t.Fatalf("%s: edge counts differ", spec)
		}
		for i, e := range a.Graph.Edges() {
			f := b.Graph.Edge(graph.EdgeID(i))
			if e.From != f.From || e.To != f.To || e.Capacity != f.Capacity {
				t.Fatalf("%s: edge %d differs: %+v vs %+v", spec, i, e, f)
			}
		}
	}
	a := mustNew(t, "erdos-renyi:n=12,p=0.3,seed=1")
	b := mustNew(t, "erdos-renyi:n=12,p=0.3,seed=2")
	same := a.Graph.NumEdges() == b.Graph.NumEdges()
	if same {
		for i, e := range a.Graph.Edges() {
			f := b.Graph.Edge(graph.EdgeID(i))
			if e.From != f.From || e.To != f.To {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed=1 and seed=2 produced identical random graphs")
	}
}

// TestEndpointsConnected asserts every ordered endpoint pair of every
// family is connected — the property workload generation relies on.
func TestEndpointsConnected(t *testing.T) {
	specs := []string{
		"big-switch:n=4", "star:n=4", "line:n=5", "ring:n=5",
		"fat-tree:k=4", "leaf-spine:leaves=3,spines=2,hosts=2",
		"random-regular:n=8,d=3,seed=2", "erdos-renyi:n=8,p=0.2,seed=9",
	}
	for _, spec := range specs {
		top := mustNew(t, spec)
		for _, s := range top.Endpoints {
			for _, d := range top.Endpoints {
				if s == d {
					continue
				}
				if top.Graph.HopDistance(s, d) < 0 {
					t.Fatalf("%s: endpoint %s unreachable from %s", spec,
						top.Graph.NodeName(d), top.Graph.NodeName(s))
				}
			}
		}
	}
}

func TestRegularity(t *testing.T) {
	top := mustNew(t, "random-regular:n=10,d=4,seed=6")
	for v := 0; v < top.Graph.NumNodes(); v++ {
		if got := len(top.Graph.OutEdges(graph.NodeID(v))); got != 4 {
			t.Fatalf("node %d has out-degree %d, want 4", v, got)
		}
	}
}

func TestHeterogeneousCapacities(t *testing.T) {
	top := mustNew(t, "ring:n=8,cap=2,hetero=1,seed=5")
	lo, hi := 2.0, 2.0
	for _, e := range top.Graph.Edges() {
		if e.Capacity < lo {
			lo = e.Capacity
		}
		if e.Capacity > hi {
			hi = e.Capacity
		}
		if e.Capacity < 2/3.17 || e.Capacity > 2*3.17 {
			t.Fatalf("capacity %g outside [cap/√10, cap·√10]", e.Capacity)
		}
	}
	if lo == hi {
		t.Fatal("hetero=1 produced uniform capacities")
	}
	uni := mustNew(t, "ring:n=8,cap=2")
	for _, e := range uni.Graph.Edges() {
		if e.Capacity != 2 {
			t.Fatalf("hetero=0 capacity %g, want 2", e.Capacity)
		}
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"torus:n=4", "unknown family"},
		{"ring:m=4", "unknown parameter"},
		{"ring:n=abc", "not a number"},
		{"ring:n", "not key=value"},
		{"ring:n=2", "n ≥ 3"},
		{"big-switch:n=0", "n ≥ 1"},
		{"fat-tree:k=3", "even k"},
		{"line:n=1", "n ≥ 2"},
		{"random-regular:n=5,d=3", "even"},
		{"random-regular:n=4,d=4", "d < n"},
		{"erdos-renyi:p=1.5", "outside [0, 1]"},
		{"ring:cap=-1", "must be positive"},
		{"leaf-spine:up=-2", "non-negative"},
		{"ring:n=4.5", "integer"},
	}
	for _, c := range cases {
		_, err := New(c.spec)
		if err == nil {
			t.Errorf("New(%q) accepted", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("New(%q) error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

func TestBigSwitchEndpointsExcludeSwitch(t *testing.T) {
	top := mustNew(t, "big-switch:n=3")
	sw := top.Graph.MustNode("sw")
	for _, ep := range top.Endpoints {
		if ep == sw {
			t.Fatal("switch listed as an endpoint")
		}
	}
}

func TestLeafSpineOversubscription(t *testing.T) {
	top := mustNew(t, "leaf-spine:leaves=2,spines=2,hosts=4,cap=1,up=0.5")
	l0 := top.Graph.MustNode("l0")
	s0 := top.Graph.MustNode("s0")
	for _, eid := range top.Graph.OutEdges(l0) {
		e := top.Graph.Edge(eid)
		if e.To == s0 && e.Capacity != 0.5 {
			t.Fatalf("uplink capacity %g, want 0.5", e.Capacity)
		}
	}
}

func ExampleNew() {
	top, _ := New("fat-tree:k=4")
	fmt.Println(top.Family, top.Graph.NumNodes(), top.Graph.NumEdges()/2, len(top.Endpoints))
	// Output: fat-tree 36 48 16
}
