package topo

// Native Go fuzzing for the spec-grammar parser and the generators
// behind it. The contract under fuzz: ParseSpec and New return errors
// on bad input — they never panic, never hang, and never hand back a
// "successful" topology that violates its own invariants (non-finite
// capacities, too few nodes, endpoints off the graph). Seed corpora
// live under testdata/fuzz/<FuzzName>/ next to this file; run with
//
//	go test -fuzz FuzzParseSpec ./internal/topo
//	go test -fuzz FuzzNewTopology ./internal/topo

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseSpec throws arbitrary strings at the grammar: any outcome
// is fine except a panic, and a successful parse must echo a known
// family with fully finite parameters.
func FuzzParseSpec(f *testing.F) {
	for _, s := range []string{
		"big-switch",
		"big-switch:n=4",
		"fat-tree:k=4",
		"leaf-spine:leaves=4,spines=2,hosts=2,up=0.5",
		"erdos-renyi:n=10,p=0.3,seed=7,hetero=1",
		"random-regular:n=8,d=3",
		"line:n=0x4",
		"ring:n=6,cap=2.5",
		"star:n=NaN",
		"star:n=+Inf",
		"star:cap=-1e308",
		"star:seed=1e300",
		"line : n = 4 ",
		"line:n",
		"line:=4",
		"line:n=4,n=5",
		":n=4",
		"",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		name, params, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if _, ok := families[name]; !ok {
			t.Fatalf("ParseSpec(%q) accepted unknown family %q", spec, name)
		}
		for k, v := range params {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("ParseSpec(%q) let non-finite %s=%g through", spec, k, v)
			}
		}
	})
}

// fuzzBuildable reports whether a parsed spec is small enough to
// build inside the fuzzer's time budget: every integer-ish parameter
// capped so no generator touches more than a few thousand nodes. The
// cap only gates the fuzz harness — New itself must stay panic-free at
// any accepted size.
func fuzzBuildable(params map[string]float64) bool {
	for _, k := range []string{"n", "k", "leaves", "spines", "hosts", "d"} {
		if v, ok := params[k]; ok && (v < 0 || v > 64) {
			return false
		}
	}
	return true
}

// FuzzNewTopology drives the full generator path: parse, build, and
// check the invariants every returned Topology promises — a graph with
// at least one node, strictly positive finite edge capacities, and
// endpoints that are in-range nodes of that graph.
func FuzzNewTopology(f *testing.F) {
	for _, s := range []string{
		"big-switch:n=5",
		"star:n=3,hetero=1,seed=9",
		"line:n=2",
		"ring:n=3",
		"fat-tree:k=2",
		"leaf-spine:leaves=2,spines=1,hosts=1",
		"random-regular:n=4,d=3",
		"random-regular:n=5,d=4",
		"erdos-renyi:n=2,p=1",
		"erdos-renyi:n=9,p=0,seed=3",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		name, params, err := ParseSpec(spec)
		if err != nil || !fuzzBuildable(params) {
			return
		}
		top, err := New(spec)
		if err != nil {
			return
		}
		if top.Family != name || top.Graph == nil {
			t.Fatalf("New(%q) returned malformed topology %+v", spec, top)
		}
		if top.Graph.NumNodes() < 1 {
			t.Fatalf("New(%q) built an empty graph", spec)
		}
		for _, e := range top.Graph.Edges() {
			if !(e.Capacity > 0) || math.IsInf(e.Capacity, 0) {
				t.Fatalf("New(%q): edge %d capacity %g", spec, e.ID, e.Capacity)
			}
		}
		for _, ep := range top.Endpoints {
			if ep < 0 || int(ep) >= top.Graph.NumNodes() {
				t.Fatalf("New(%q): endpoint %d outside %d nodes", spec, ep, top.Graph.NumNodes())
			}
		}
		if strings.TrimSpace(spec) != top.Spec {
			t.Fatalf("New(%q) recorded spec %q", spec, top.Spec)
		}
	})
}
