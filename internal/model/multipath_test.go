package model

import (
	"context"
	"math"
	"testing"

	"repro/internal/coflow"
	"repro/internal/simplex"
	"repro/internal/timegrid"
)

// figure2MultiPath gives every flow of the running example its full
// k-shortest path set (each v_i→t has one 1-hop path; s→t has three
// 2-hop paths).
func figure2MultiPath(t *testing.T, k int) *coflow.Instance {
	t.Helper()
	in := figure2FreePath()
	if err := in.AssignKShortestPaths(k); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestMultiPathFigure2AllPaths(t *testing.T) {
	// With all three s→t paths available, the multi path model matches
	// the free path optimum on this instance: LP bound of the free
	// path model (every transfer here is routed on simple paths).
	in := figure2MultiPath(t, 3)
	l, err := BuildMultiPath(in, timegrid.Uniform(6))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := l.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.PathFrac == nil {
		t.Fatal("PathFrac missing")
	}
	lf, err := BuildFreePath(figure2FreePath(), timegrid.Uniform(6))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := lf.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.LowerBound-sf.LowerBound) > 1e-5 {
		t.Fatalf("multi-path LP %v ≠ free-path LP %v (all paths given)",
			sol.LowerBound, sf.LowerBound)
	}
}

func TestMultiPathInterpolatesBetweenModels(t *testing.T) {
	// LP bounds are ordered: single path (most constrained) ≥ multi
	// path with k=3 candidates ≥ free path (least constrained).
	grid := timegrid.Uniform(6)
	ls, err := BuildSinglePath(figure2SinglePath(), grid)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := ls.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := BuildMultiPath(figure2MultiPath(t, 3), grid)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := lm.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lf, err := BuildFreePath(figure2FreePath(), grid)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := lf.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sm.LowerBound > ss.LowerBound+1e-6 {
		t.Fatalf("multi %v above single %v", sm.LowerBound, ss.LowerBound)
	}
	if sf.LowerBound > sm.LowerBound+1e-6 {
		t.Fatalf("free %v above multi %v", sf.LowerBound, sm.LowerBound)
	}
}

func TestMultiPathOnePathMatchesSinglePath(t *testing.T) {
	// Candidate set = exactly the fixed path: the two LPs coincide.
	grid := timegrid.Uniform(6)
	inSingle := figure2SinglePath()
	inMulti := figure2SinglePath()
	for ci := range inMulti.Coflows {
		f := &inMulti.Coflows[ci].Flows[0]
		f.AltPaths = append(f.AltPaths, f.Path)
	}
	ls, err := BuildSinglePath(inSingle, grid)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := ls.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := BuildMultiPath(inMulti, grid)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := lm.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ss.LowerBound-sm.LowerBound) > 1e-5 {
		t.Fatalf("single %v ≠ multi-with-one-path %v", ss.LowerBound, sm.LowerBound)
	}
}

func TestMultiPathPathFracConsistency(t *testing.T) {
	in := figure2MultiPath(t, 3)
	l, err := BuildMultiPath(in, timegrid.Uniform(6))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := l.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for f := range sol.Frac {
		for k := 0; k < l.Grid.NumSlots(); k++ {
			var sum float64
			for _, v := range sol.PathFrac[f][k] {
				sum += v
			}
			if math.Abs(sum-sol.Frac[f][k]) > 1e-6 {
				t.Fatalf("flow %d slot %d: path sum %v ≠ frac %v", f, k, sum, sol.Frac[f][k])
			}
		}
	}
}

func TestMultiPathValidation(t *testing.T) {
	in := figure2FreePath() // no AltPaths assigned
	if _, err := BuildMultiPath(in, timegrid.Uniform(6)); err == nil {
		t.Fatal("expected validation error without AltPaths")
	}
}
