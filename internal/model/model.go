// Package model builds the paper's linear programming relaxations
// (Section 3 and Appendix A) over a time grid:
//
//   - the shared completion-time structure: per-flow schedule
//     fractions x_f(t), coflow completion indicators X_j(t) and
//     completion variables C_j with the lower-bound constraint
//     C_j ≥ 1 + Σ_t len(t)·(1 − X_j(t));
//   - single path capacity constraints (6)/(19);
//   - free path flow conservation and capacity constraints
//     (7)–(10) / (20)–(23).
//
// Two reformulations keep the LP sparse without changing its feasible
// region or objective:
//
//  1. cumulative variables y_f(t) = Σ_{ℓ≤t} x_f(ℓ) are introduced via
//     the recurrence y_f(t) = y_f(t−1) + x_f(t), so every row has O(1)
//     nonzeros instead of O(t);
//  2. source/sink coupling in the free path model uses net flow
//     (outflow − inflow = x_f(t)), which is equivalent to (7)–(8) up
//     to removable circulations.
//
// All times are in slot units (the experiments use 50-second slots,
// matching the paper); demands are in capacity·slot units. Release
// times are snapped up to grid boundaries by the builders.
package model

import (
	"context"
	"fmt"
	"math"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/simplex"
	"repro/internal/timegrid"
)

// LP is a built relaxation, retaining the variable maps needed to
// extract schedules from a solved model.
type LP struct {
	Model *lp.Model
	Inst  *coflow.Instance
	Grid  timegrid.Grid
	Mode  coflow.Model

	flows []coflow.FlowRef
	first []int // first usable slot per flat flow

	x  [][]lp.VarID   // [flat][slot], -1 below first slot
	y  [][]lp.VarID   // cumulative y: [flat][slot], -1 below first slot
	xe [][][]lp.VarID // free path: [flat][slot][edge], nil rows below first
	xp [][][]lp.VarID // multi path: [flat][slot][pathIdx], nil below first
	xj [][]lp.VarID   // X_j: [coflow][slot], -1 where fixed to 0
	cj []lp.VarID     // C_j per coflow
}

// Flows returns the flat flow ordering used by x/frac indexing.
func (l *LP) Flows() []coflow.FlowRef { return l.flows }

// FirstSlot returns the first usable slot of flat flow f.
func (l *LP) FirstSlot(f int) int { return l.first[f] }

// Solution is a solved relaxation: the LP lower bound and the
// fractional schedule.
type Solution struct {
	LP *LP
	// LowerBound is the LP objective Σ_j w_j C*_j, a valid lower bound
	// on the optimal total weighted completion time (in slot units).
	LowerBound float64
	// CStar[j] is the LP completion variable of coflow j.
	CStar []float64
	// Frac[f][k] is the fraction of flat flow f scheduled in slot k.
	Frac [][]float64
	// EdgeFrac[f][k][e] is the per-edge fraction (free path only; nil
	// for single path).
	EdgeFrac [][][]float64
	// PathFrac[f][k][p] is the per-candidate-path fraction (multi
	// path model only; nil otherwise).
	PathFrac [][][]float64
	// Iterations is the simplex iteration count.
	Iterations int
	// Basis is the name-keyed optimal basis for warm-starting the next
	// solve of a related relaxation (nil when not exportable).
	Basis *lp.Basis
	// WarmStart reports what became of the warm basis handed to
	// SolveWarm (accepted, or the validation check that rejected it).
	WarmStart simplex.WarmOutcome
}

// BuildSinglePath constructs the Section 3.1.1 relaxation: every flow
// is routed along its fixed path; constraints (1)–(6) with
// interval-scaled capacities for non-uniform grids (19).
func BuildSinglePath(inst *coflow.Instance, grid timegrid.Grid) (*LP, error) {
	if err := inst.Validate(coflow.SinglePath); err != nil {
		return nil, err
	}
	l, err := buildCommon(inst, grid, coflow.SinglePath)
	if err != nil {
		return nil, err
	}
	m := l.Model
	g := inst.Graph
	k := grid.NumSlots()

	// Capacity rows (6)/(19): one per (edge, slot) with any traffic.
	type rowKey struct{ e, k int }
	rows := make(map[rowKey]lp.ConstrID)
	for f, ref := range l.flows {
		fl := inst.FlowAt(ref)
		for _, eid := range fl.Path {
			for t := l.first[f]; t < k; t++ {
				key := rowKey{int(eid), t}
				row, ok := rows[key]
				if !ok {
					cap := g.Edge(eid).Capacity * grid.Len(t)
					row = m.AddConstr(fmt.Sprintf("cap_e%d_t%d", eid, t), lp.LE, cap)
					rows[key] = row
				}
				m.AddTerm(row, l.x[f][t], fl.Demand)
			}
		}
	}
	return l, nil
}

// BuildFreePath constructs the Section 3.1.2 relaxation: per-edge flow
// variables with conservation, constraints (1)–(5) and (7)–(10), with
// interval-scaled capacities for non-uniform grids (20)–(23).
func BuildFreePath(inst *coflow.Instance, grid timegrid.Grid) (*LP, error) {
	if err := inst.Validate(coflow.FreePath); err != nil {
		return nil, err
	}
	l, err := buildCommon(inst, grid, coflow.FreePath)
	if err != nil {
		return nil, err
	}
	m := l.Model
	g := inst.Graph
	k := grid.NumSlots()
	ne := g.NumEdges()

	l.xe = make([][][]lp.VarID, len(l.flows))
	for f, ref := range l.flows {
		fl := inst.FlowAt(ref)
		l.xe[f] = make([][]lp.VarID, k)
		for t := l.first[f]; t < k; t++ {
			evars := make([]lp.VarID, ne)
			for e := 0; e < ne; e++ {
				evars[e] = m.AddVar(fmt.Sprintf("xe_f%d_t%d_e%d", f, t, e), 0, 1, 0)
			}
			l.xe[f][t] = evars

			// Net outflow at the source equals x_f(t) (7).
			src := m.AddConstr(fmt.Sprintf("src_f%d_t%d", f, t), lp.EQ, 0)
			for _, eid := range g.OutEdges(fl.Source) {
				m.AddTerm(src, evars[eid], 1)
			}
			for _, eid := range g.InEdges(fl.Source) {
				m.AddTerm(src, evars[eid], -1)
			}
			m.AddTerm(src, l.x[f][t], -1)

			// Net inflow at the sink equals x_f(t) (8).
			snk := m.AddConstr(fmt.Sprintf("snk_f%d_t%d", f, t), lp.EQ, 0)
			for _, eid := range g.InEdges(fl.Sink) {
				m.AddTerm(snk, evars[eid], 1)
			}
			for _, eid := range g.OutEdges(fl.Sink) {
				m.AddTerm(snk, evars[eid], -1)
			}
			m.AddTerm(snk, l.x[f][t], -1)

			// Conservation at the other nodes (9).
			for v := 0; v < g.NumNodes(); v++ {
				if v == int(fl.Source) || v == int(fl.Sink) {
					continue
				}
				ins := g.InEdges(graphNode(v))
				outs := g.OutEdges(graphNode(v))
				if len(ins) == 0 && len(outs) == 0 {
					continue
				}
				row := m.AddConstr(fmt.Sprintf("cons_f%d_t%d_v%d", f, t, v), lp.EQ, 0)
				for _, eid := range ins {
					m.AddTerm(row, evars[eid], 1)
				}
				for _, eid := range outs {
					m.AddTerm(row, evars[eid], -1)
				}
			}
		}
	}

	// Capacity rows (10)/(23): Σ_f σ_f · xe_f(t,e) ≤ c(e)·len(t).
	for e := 0; e < ne; e++ {
		capE := g.Edge(graphEdge(e)).Capacity
		for t := 0; t < k; t++ {
			row := lp.ConstrID(-1)
			for f := range l.flows {
				if t < l.first[f] {
					continue
				}
				if row < 0 {
					row = m.AddConstr(fmt.Sprintf("cap_e%d_t%d", e, t), lp.LE, capE*grid.Len(t))
				}
				m.AddTerm(row, l.xe[f][t][e], inst.FlowAt(l.flows[f]).Demand)
			}
		}
	}
	return l, nil
}

// buildCommon creates the variables and constraints shared by both
// models: x, cumulative y, coflow indicators X_j, completion C_j, the
// demand constraint (1) and the completion bound (3)/(16).
func buildCommon(inst *coflow.Instance, grid timegrid.Grid, mode coflow.Model) (*LP, error) {
	k := grid.NumSlots()
	l := &LP{
		Model: lp.NewModel(fmt.Sprintf("coflow-%s", mode)),
		Inst:  inst,
		Grid:  grid,
		Mode:  mode,
		flows: inst.FlattenFlows(),
	}
	m := l.Model
	l.first = make([]int, len(l.flows))
	l.x = make([][]lp.VarID, len(l.flows))

	// Quick infeasibility guard: every flow must fit after release.
	for f, ref := range l.flows {
		first := grid.FirstUsableSlot(inst.ReleaseAt(ref))
		if first >= k {
			return nil, fmt.Errorf("model: flow %v released at %g but horizon is %g slots",
				ref, inst.ReleaseAt(ref), grid.Horizon())
		}
		l.first[f] = first
	}

	// x and cumulative y variables with the recurrence rows.
	l.y = make([][]lp.VarID, len(l.flows))
	yVar := l.y
	for f := range l.flows {
		l.x[f] = make([]lp.VarID, k)
		yVar[f] = make([]lp.VarID, k)
		for t := 0; t < k; t++ {
			l.x[f][t] = -1
			yVar[f][t] = -1
		}
		for t := l.first[f]; t < k; t++ {
			l.x[f][t] = m.AddVar(fmt.Sprintf("x_f%d_t%d", f, t), 0, 1, 0)
			ub := 1.0
			lb := 0.0
			if t == k-1 {
				lb = 1.0 // constraint (1): fully scheduled by the horizon
			}
			yVar[f][t] = m.AddVar(fmt.Sprintf("y_f%d_t%d", f, t), lb, ub, 0)
			row := m.AddConstr(fmt.Sprintf("ycum_f%d_t%d", f, t), lp.EQ, 0)
			m.AddTerm(row, yVar[f][t], 1)
			m.AddTerm(row, l.x[f][t], -1)
			if t > l.first[f] {
				m.AddTerm(row, yVar[f][t-1], -1)
			}
		}
	}

	// Coflow indicators X_j(t) (2) and completion variables C_j (3)/(16).
	nc := len(inst.Coflows)
	l.xj = make([][]lp.VarID, nc)
	l.cj = make([]lp.VarID, nc)
	flowsOf := make([][]int, nc)
	for f, ref := range l.flows {
		flowsOf[ref.Coflow] = append(flowsOf[ref.Coflow], f)
	}
	for j := 0; j < nc; j++ {
		maxFirst := 0
		for _, f := range flowsOf[j] {
			if l.first[f] > maxFirst {
				maxFirst = l.first[f]
			}
		}
		l.xj[j] = make([]lp.VarID, k)
		for t := 0; t < k; t++ {
			l.xj[j][t] = -1
		}
		for t := maxFirst; t < k; t++ {
			xjv := m.AddVar(fmt.Sprintf("X_c%d_t%d", j, t), 0, 1, 0)
			l.xj[j][t] = xjv
			for _, f := range flowsOf[j] {
				row := m.AddConstr(fmt.Sprintf("ind_c%d_f%d_t%d", j, f, t), lp.LE, 0)
				m.AddTerm(row, xjv, 1)
				m.AddTerm(row, yVar[f][t], -1)
			}
		}
		// C_j + Σ_t len(t)·X_j(t) ≥ 1 + Σ_t len(t); X_j(t)=0 terms for
		// t < maxFirst are dropped from the left (they contribute 0).
		cv := m.AddVar(fmt.Sprintf("C_c%d", j), 1, math.Inf(1), inst.Coflows[j].Weight)
		l.cj[j] = cv
		row := m.AddConstr(fmt.Sprintf("comp_c%d", j), lp.GE, 1+grid.Horizon())
		m.AddTerm(row, cv, 1)
		for t := maxFirst; t < k; t++ {
			m.AddTerm(row, l.xj[j][t], grid.Len(t))
		}
	}
	return l, nil
}

// StatusError reports an LP that terminated without an optimum —
// typically Infeasible when the time horizon is too short for the
// demands. Callers can detect it with errors.As and retry with a
// longer grid.
type StatusError struct {
	Status     simplex.Status
	Iterations int
}

// Error describes the termination.
func (e *StatusError) Error() string {
	return fmt.Sprintf("model: LP terminated %v after %d iterations", e.Status, e.Iterations)
}

// Solve optimizes the relaxation and extracts the fractional schedule.
func (l *LP) Solve(ctx context.Context, opt simplex.Options) (*Solution, error) {
	return l.SolveWarm(ctx, opt, nil)
}

// SolveWarm is Solve with an optional warm-start basis carried over
// from a previous relaxation (a perturbed instance, a regridded
// horizon, or the prior epoch's residual). Invalid bases fall back to
// a cold solve inside the solver.
func (l *LP) SolveWarm(ctx context.Context, opt simplex.Options, warm *lp.Basis) (*Solution, error) {
	// With no caller basis, large single path relaxations warm-start
	// from the greedy crash basis (see GreedyBasis): a feasible vertex
	// that skips phase 1 entirely. The solver validates it like any
	// other warm basis, so a rejection only means a cold start.
	if warm == nil && l.Model.NumConstrs() >= greedyWarmMinRows {
		warm = l.GreedyBasis()
	}
	raw, err := l.Model.SolveWarm(ctx, opt, warm)
	if err != nil {
		return nil, err
	}
	if raw.Status != simplex.Optimal {
		return nil, &StatusError{Status: raw.Status, Iterations: raw.Iterations()}
	}
	k := l.Grid.NumSlots()
	sol := &Solution{
		LP:         l,
		LowerBound: raw.Obj,
		CStar:      make([]float64, len(l.Inst.Coflows)),
		Frac:       make([][]float64, len(l.flows)),
		Iterations: raw.Iterations(),
		Basis:      raw.Basis,
		WarmStart:  raw.WarmStart,
	}
	for j, cv := range l.cj {
		sol.CStar[j] = raw.Value(cv)
	}
	for f := range l.flows {
		sol.Frac[f] = make([]float64, k)
		for t := l.first[f]; t < k; t++ {
			if v := raw.Value(l.x[f][t]); v > 1e-9 {
				sol.Frac[f][t] = v
			}
		}
	}
	if l.Mode == coflow.MultiPath {
		sol.PathFrac = make([][][]float64, len(l.flows))
		for f, ref := range l.flows {
			np := len(l.Inst.FlowAt(ref).AltPaths)
			sol.PathFrac[f] = make([][]float64, k)
			for t := 0; t < k; t++ {
				pf := make([]float64, np)
				if t >= l.first[f] && l.xp[f][t] != nil {
					for p := 0; p < np; p++ {
						if v := raw.Value(l.xp[f][t][p]); v > 1e-9 {
							pf[p] = v
						}
					}
				}
				sol.PathFrac[f][t] = pf
			}
		}
	}
	if l.Mode == coflow.FreePath {
		ne := l.Inst.Graph.NumEdges()
		sol.EdgeFrac = make([][][]float64, len(l.flows))
		for f := range l.flows {
			sol.EdgeFrac[f] = make([][]float64, k)
			for t := 0; t < k; t++ {
				ef := make([]float64, ne)
				// LP vertices may carry circulations (cycles with zero
				// net flow); a slot whose total fraction is zero ships
				// nothing, so its edge values are dropped entirely.
				// This keeps "idle slot" detection (schedule
				// compaction, Section 6.1) sound.
				if t >= l.first[f] && l.xe[f][t] != nil && sol.Frac[f][t] > 1e-9 {
					for e := 0; e < ne; e++ {
						if v := raw.Value(l.xe[f][t][e]); v > 1e-9 {
							ef[e] = v
						}
					}
				}
				sol.EdgeFrac[f][t] = ef
			}
		}
	}
	return sol, nil
}

// graphNode converts an int loop index to a graph.NodeID.
func graphNode(v int) graph.NodeID { return graph.NodeID(v) }

// graphEdge converts an int loop index to a graph.EdgeID.
func graphEdge(e int) graph.EdgeID { return graph.EdgeID(e) }
