package model

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/coflow"
	"repro/internal/lp"
	"repro/internal/simplex"
)

// greedyWarmMinRows gates the greedy crash basis: below this
// constraint count the solver's cold start is cheap and every committed
// golden trace stays byte-identical, so the basis is only built for the
// large interval LPs where phase 1 is the dominant cost.
const greedyWarmMinRows = 5000

// GreedyBasis constructs a warm-start basis for the single path
// relaxation from a greedy work-conserving schedule: coflows in
// weight-over-demand (Smith rule) order, each released flow filling the
// earliest slots its path has capacity for. The schedule is feasible by
// construction, so the basis encodes a primal feasible vertex and the
// solver can skip phase 1 outright; because it also ships every flow as
// early as the greedy order allows, phase 2 starts near the optimum
// instead of walking there from an artificial start.
//
// The basis is exact, not heuristic: every fractional quantity is
// basic, every tight capacity row claimed by the flow that saturated
// it, and the basic count equals the row count. Validation stays with
// the solver — a rejected basis only costs the cold start it replaces.
// Returns nil when the model is not single path or the greedy schedule
// does not complete within the horizon.
func (l *LP) GreedyBasis() *lp.Basis {
	if l.Mode != coflow.SinglePath {
		return nil
	}
	inst, g, k := l.Inst, l.Inst.Graph, l.Grid.NumSlots()
	nf := len(l.flows)
	nc := len(inst.Coflows)

	// Remaining capacity per (edge, slot), in demand units.
	ne := g.NumEdges()
	rem := make([][]float64, ne)
	for e := 0; e < ne; e++ {
		rem[e] = make([]float64, k)
		cap := g.Edge(graphEdge(e)).Capacity
		for t := 0; t < k; t++ {
			rem[e][t] = cap * l.Grid.Len(t)
		}
	}

	// Smith-rule coflow priority: weight over total demand, descending,
	// index as the deterministic tie-break.
	order := make([]int, nc)
	for j := range order {
		order[j] = j
	}
	ratio := make([]float64, nc)
	for j := 0; j < nc; j++ {
		c := &inst.Coflows[j]
		if d := c.TotalDemand(); d > 0 {
			ratio[j] = c.Weight / d
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ratio[order[a]] > ratio[order[b]]
	})
	flowsOf := make([][]int, nc)
	for f, ref := range l.flows {
		flowsOf[ref.Coflow] = append(flowsOf[ref.Coflow], f)
	}

	remaining := make([]float64, nf)
	for f, ref := range l.flows {
		remaining[f] = inst.FlowAt(ref).Demand
	}
	frac := make([][]float64, nf) // x_f(t) fractions, lazily sized
	ta := make([]int, nf)         // first shipping slot
	tb := make([]int, nf)         // completion slot
	for f := range ta {
		ta[f], tb[f] = -1, -1
	}
	// claims[(e,t)] = the flow whose shipment saturated edge e in slot
	// t mid-flight; that flow's x_f(t) is basic on the capacity row and
	// the row's slack pinned at zero.
	type edgeSlot struct{ e, t int }
	claims := make(map[edgeSlot]int)

	for t := 0; t < k; t++ {
		for _, j := range order {
			for _, f := range flowsOf[j] {
				if remaining[f] <= 0 || l.first[f] > t {
					continue
				}
				fl := inst.FlowAt(l.flows[f])
				a := remaining[f]
				for _, e := range fl.Path {
					if r := rem[e][t]; r < a {
						a = r
					}
				}
				if a <= 0 {
					continue
				}
				for _, e := range fl.Path {
					rem[e][t] -= a
				}
				if frac[f] == nil {
					frac[f] = make([]float64, k)
				}
				frac[f][t] = a / fl.Demand
				if ta[f] < 0 {
					ta[f] = t
				}
				if a < remaining[f] {
					// Mid-flight shipment: capped by the path bottleneck,
					// which this subtraction drove to exactly zero. A
					// previously claimed edge cannot recur (its remaining
					// capacity was already zero, so a would have been 0).
					for _, e := range fl.Path {
						if rem[e][t] == 0 {
							claims[edgeSlot{int(e), t}] = f
							break
						}
					}
				} else {
					tb[f] = t
				}
				remaining[f] -= a
			}
		}
	}
	for f := range remaining {
		if remaining[f] > 0 {
			return nil // horizon too short for the greedy order
		}
	}

	b := &lp.Basis{
		Vars: make(map[string]int8, l.Model.NumVars()),
		Cons: make(map[string]int8, l.Model.NumConstrs()),
	}
	name := l.Model.VarName

	// Flow variables: x basic on every recurrence row outside the
	// shipping window (value 0) and on the completion slot; y basic —
	// fractional — strictly inside the window; mid-flight x basic on the
	// capacity row they saturated.
	for f := range l.flows {
		for t := l.first[f]; t < k; t++ {
			xs, ys := simplex.VarBasic, int8(simplex.VarUpper)
			switch {
			case t < ta[f]:
				ys = simplex.VarLower
			case t < tb[f]:
				ys = simplex.VarBasic
				if frac[f] == nil || frac[f][t] == 0 {
					xs = simplex.VarLower
				}
			}
			b.Vars[name(l.x[f][t])] = xs
			b.Vars[name(l.y[f][t])] = ys
		}
	}

	// Cumulative fractions, for the completion indicators below.
	yval := make([][]float64, nf)
	for f := range l.flows {
		yval[f] = make([]float64, k)
		c := 0.0
		for t := 0; t < k; t++ {
			if frac[f] != nil {
				c += frac[f][t]
			}
			if t >= tb[f] {
				c = 1 // completion is exact; shed the summation roundoff
			}
			yval[f][t] = c
		}
	}

	// Coflow variables: the completion indicator takes the LP-optimal
	// value for this schedule, X_j(t) = min_f y_f(t) — the fractional
	// "partial completion" credit is where the relaxation's objective
	// lives, so rounding it up front would strand the start far from
	// the optimum. A fractional indicator is basic on the binding
	// flow's indicator row; C_j is basic on the completion row.
	for j := 0; j < nc; j++ {
		for t := 0; t < k; t++ {
			if l.xj[j][t] < 0 {
				continue
			}
			mn, argmin := 2.0, -1
			for _, f := range flowsOf[j] {
				if yval[f][t] < mn {
					mn, argmin = yval[f][t], f
				}
			}
			switch {
			case mn <= 0:
				b.Vars[name(l.xj[j][t])] = simplex.VarLower
			case mn >= 1:
				b.Vars[name(l.xj[j][t])] = simplex.VarUpper
			default:
				b.Vars[name(l.xj[j][t])] = simplex.VarBasic
				// The binding indicator row X_j(t) ≤ y_f(t) is tight.
				b.Cons[fmt.Sprintf("ind_c%d_f%d_t%d", j, argmin, t)] = simplex.VarLower
			}
		}
		b.Vars[name(l.cj[j])] = simplex.VarBasic
	}

	// Slacks: basic everywhere except the claimed capacity rows (tight,
	// their claimer basic instead), the binding indicator rows set
	// above, and the GE completion rows (tight, C_j basic there).
	for c := 0; c < l.Model.NumConstrs(); c++ {
		cid := lp.ConstrID(c)
		nm := l.Model.ConstrName(cid)
		if _, ok := b.Cons[nm]; ok {
			continue
		}
		switch l.Model.ConstrSense(cid) {
		case lp.EQ:
		case lp.GE:
			b.Cons[nm] = simplex.VarUpper
		default:
			b.Cons[nm] = simplex.VarBasic
		}
	}
	// Claimed rows in sorted (edge, slot) order: the basis maps are
	// name-keyed so the order cannot change the result, but iterating a
	// map here would trip the detrange determinism gate — and sorted
	// iteration keeps any future side effects reproducible for free.
	slots := make([]edgeSlot, 0, len(claims))
	for es := range claims {
		slots = append(slots, es)
	}
	slices.SortStableFunc(slots, func(p, q edgeSlot) int {
		if p.e != q.e {
			return p.e - q.e
		}
		return p.t - q.t
	})
	for _, es := range slots {
		f := claims[es]
		b.Cons[fmt.Sprintf("cap_e%d_t%d", es.e, es.t)] = simplex.VarLower
		b.Vars[name(l.x[f][es.t])] = simplex.VarBasic
	}
	return b
}
