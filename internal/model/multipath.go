package model

import (
	"fmt"

	"repro/internal/coflow"
	"repro/internal/lp"
	"repro/internal/timegrid"
)

// BuildMultiPath constructs the LP for the intermediate transmission
// model sketched in Section 2 of the paper: each flow carries a fixed
// candidate path set and the scheduler chooses, per time slot, what
// fraction to send down each path. The completion-time structure
// ((1)–(5)) is shared with the other models; routing is expressed with
// per-path variables
//
//	x_{f,p}(t) ≥ 0,   Σ_p x_{f,p}(t) = x_f(t),
//	Σ_{(f,p): e ∈ p} σ_f · x_{f,p}(t) ≤ c(e)·len(t)   ∀e, t.
//
// Single path is the special case of one candidate path; free path is
// the limit of all paths. Solutions populate Solution.PathFrac.
func BuildMultiPath(inst *coflow.Instance, grid timegrid.Grid) (*LP, error) {
	if err := inst.Validate(coflow.MultiPath); err != nil {
		return nil, err
	}
	l, err := buildCommon(inst, grid, coflow.MultiPath)
	if err != nil {
		return nil, err
	}
	m := l.Model
	g := inst.Graph
	k := grid.NumSlots()

	l.xp = make([][][]lp.VarID, len(l.flows))
	type rowKey struct{ e, k int }
	capRows := make(map[rowKey]lp.ConstrID)
	for f, ref := range l.flows {
		fl := inst.FlowAt(ref)
		l.xp[f] = make([][]lp.VarID, k)
		for t := l.first[f]; t < k; t++ {
			pv := make([]lp.VarID, len(fl.AltPaths))
			link := m.AddConstr(fmt.Sprintf("mp_f%d_t%d", f, t), lp.EQ, 0)
			m.AddTerm(link, l.x[f][t], -1)
			for pi, path := range fl.AltPaths {
				pv[pi] = m.AddVar(fmt.Sprintf("xp_f%d_t%d_p%d", f, t, pi), 0, 1, 0)
				m.AddTerm(link, pv[pi], 1)
				for _, eid := range path {
					key := rowKey{int(eid), t}
					row, ok := capRows[key]
					if !ok {
						cap := g.Edge(eid).Capacity * grid.Len(t)
						row = m.AddConstr(fmt.Sprintf("cap_e%d_t%d", eid, t), lp.LE, cap)
						capRows[key] = row
					}
					m.AddTerm(row, pv[pi], fl.Demand)
				}
			}
			l.xp[f][t] = pv
		}
	}
	return l, nil
}
