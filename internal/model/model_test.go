package model

import (
	"context"
	"math"
	"testing"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/simplex"
	"repro/internal/timegrid"
)

// lineInstance: one coflow, one flow of the given demand over a
// 2-node unit-capacity line.
func lineInstance(demand, release float64) *coflow.Instance {
	g := graph.Line(2, 1)
	in := &coflow.Instance{Graph: g, Coflows: []coflow.Coflow{{
		ID: 0, Weight: 1, Release: release,
		Flows: []coflow.Flow{{
			Source: g.MustNode("v0"), Sink: g.MustNode("v1"), Demand: demand,
			Path: []graph.EdgeID{0},
		}},
	}}}
	return in
}

// figure2SinglePath builds the Section 2 running example with the
// paper's Figure 3 path assignment (green shares v2→t with blue).
func figure2SinglePath() *coflow.Instance {
	g := graph.Figure2()
	s, t := g.MustNode("s"), g.MustNode("t")
	v1, v2, v3 := g.MustNode("v1"), g.MustNode("v2"), g.MustNode("v3")
	pathTo := func(from, to graph.NodeID) []graph.EdgeID {
		// direct edge
		for _, eid := range g.OutEdges(from) {
			if g.Edge(eid).To == to {
				return []graph.EdgeID{eid}
			}
		}
		panic("no direct edge")
	}
	in := &coflow.Instance{Graph: g}
	in.Coflows = []coflow.Coflow{
		{ID: 0, Weight: 1, Flows: []coflow.Flow{{Source: v1, Sink: t, Demand: 1, Path: pathTo(v1, t)}}},
		{ID: 1, Weight: 1, Flows: []coflow.Flow{{Source: v2, Sink: t, Demand: 1, Path: pathTo(v2, t)}}},
		{ID: 2, Weight: 1, Flows: []coflow.Flow{{Source: v3, Sink: t, Demand: 1, Path: pathTo(v3, t)}}},
		{ID: 3, Weight: 1, Flows: []coflow.Flow{{Source: s, Sink: t, Demand: 3,
			Path: append(pathTo(s, v2), pathTo(v2, t)...)}}},
	}
	return in
}

func figure2FreePath() *coflow.Instance {
	in := figure2SinglePath()
	for ci := range in.Coflows {
		for fi := range in.Coflows[ci].Flows {
			in.Coflows[ci].Flows[fi].Path = nil
		}
	}
	return in
}

func TestSinglePathTinyExactLP(t *testing.T) {
	// Demand 2 on a unit line with 4 slots: C* = 1.5 (x = ½, ½).
	in := lineInstance(2, 0)
	l, err := BuildSinglePath(in, timegrid.Uniform(4))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := l.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.LowerBound-1.5) > 1e-6 {
		t.Fatalf("LP bound = %v, want 1.5", sol.LowerBound)
	}
	if math.Abs(sol.CStar[0]-1.5) > 1e-6 {
		t.Fatalf("C* = %v, want 1.5", sol.CStar[0])
	}
	// The schedule must place ½ in each of the first two slots.
	if math.Abs(sol.Frac[0][0]-0.5) > 1e-6 || math.Abs(sol.Frac[0][1]-0.5) > 1e-6 {
		t.Fatalf("frac = %v", sol.Frac[0])
	}
}

func TestSinglePathReleaseTime(t *testing.T) {
	// Unit demand released at time 2 on a 5-slot grid: C* = 3.
	in := lineInstance(1, 2)
	l, err := BuildSinglePath(in, timegrid.Uniform(5))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := l.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.LowerBound-3) > 1e-6 {
		t.Fatalf("LP bound = %v, want 3", sol.LowerBound)
	}
	// Slots before the release must be empty.
	if sol.Frac[0][0] != 0 || sol.Frac[0][1] != 0 {
		t.Fatalf("scheduled before release: %v", sol.Frac[0])
	}
}

func TestSinglePathGeometricGrid(t *testing.T) {
	// Demand 3 on a unit line; geometric grid ε=1 (bounds 0,1,2,4):
	// interval capacities 1,1,2 → x=(1/3,1/3,1/3), C* = 2.
	in := lineInstance(3, 0)
	l, err := BuildSinglePath(in, timegrid.Geometric(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := l.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.LowerBound-2) > 1e-6 {
		t.Fatalf("LP bound = %v, want 2", sol.LowerBound)
	}
}

func TestSinglePathFigure2Bounds(t *testing.T) {
	in := figure2SinglePath()
	l, err := BuildSinglePath(in, timegrid.Uniform(6))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := l.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The optimal integral schedule has value 7 (Figure 3); the LP is a
	// lower bound, and cannot be below the free-path optimum 5.
	if sol.LowerBound > 7+1e-6 {
		t.Fatalf("LP bound %v exceeds integral optimum 7", sol.LowerBound)
	}
	if sol.LowerBound < 5-1e-6 {
		t.Fatalf("LP bound %v below free-path optimum 5", sol.LowerBound)
	}
	// Every flow fully scheduled.
	for f := range sol.Frac {
		var sum float64
		for _, v := range sol.Frac[f] {
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("flow %d total fraction %v", f, sum)
		}
	}
}

func TestFreePathFigure2Bounds(t *testing.T) {
	in := figure2FreePath()
	l, err := BuildFreePath(in, timegrid.Uniform(6))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := l.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4: free-path optimum is 5. LP must be ≤ 5.
	if sol.LowerBound > 5+1e-6 {
		t.Fatalf("free-path LP bound %v exceeds optimum 5", sol.LowerBound)
	}
	if sol.LowerBound < 4-1e-6 {
		// All four coflows need ≥ 1 each.
		t.Fatalf("free-path LP bound %v is implausibly small", sol.LowerBound)
	}
	// Free path is a relaxation of single path: its bound is no larger.
	ls, err := BuildSinglePath(figure2SinglePath(), timegrid.Uniform(6))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := ls.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.LowerBound > ss.LowerBound+1e-6 {
		t.Fatalf("free-path LP %v > single-path LP %v", sol.LowerBound, ss.LowerBound)
	}
}

func TestFreePathConservationInExtraction(t *testing.T) {
	in := figure2FreePath()
	l, err := BuildFreePath(in, timegrid.Uniform(6))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := l.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := in.Graph
	for f, ref := range l.Flows() {
		fl := in.FlowAt(ref)
		for k := 0; k < l.Grid.NumSlots(); k++ {
			// Net flow out of source equals Frac.
			var net float64
			for _, eid := range g.OutEdges(fl.Source) {
				net += sol.EdgeFrac[f][k][eid]
			}
			for _, eid := range g.InEdges(fl.Source) {
				net -= sol.EdgeFrac[f][k][eid]
			}
			if math.Abs(net-sol.Frac[f][k]) > 1e-6 {
				t.Fatalf("flow %d slot %d: net source flow %v ≠ frac %v", f, k, net, sol.Frac[f][k])
			}
			// Conservation elsewhere.
			for v := graph.NodeID(0); v < graph.NodeID(g.NumNodes()); v++ {
				if v == fl.Source || v == fl.Sink {
					continue
				}
				var bal float64
				for _, eid := range g.InEdges(v) {
					bal += sol.EdgeFrac[f][k][eid]
				}
				for _, eid := range g.OutEdges(v) {
					bal -= sol.EdgeFrac[f][k][eid]
				}
				if math.Abs(bal) > 1e-6 {
					t.Fatalf("flow %d slot %d node %d: conservation violated by %v", f, k, v, bal)
				}
			}
		}
	}
	// Edge capacities respected per slot.
	for k := 0; k < l.Grid.NumSlots(); k++ {
		for _, e := range g.Edges() {
			var load float64
			for f, ref := range l.Flows() {
				load += in.FlowAt(ref).Demand * sol.EdgeFrac[f][k][e.ID]
			}
			if load > e.Capacity*l.Grid.Len(k)+1e-6 {
				t.Fatalf("slot %d edge %d: load %v > cap %v", k, e.ID, load, e.Capacity*l.Grid.Len(k))
			}
		}
	}
}

func TestFreePathBeatsSinglePathOnFigure1(t *testing.T) {
	// The paper's Figure 1: free path finishes the coflow in 2 slots,
	// single path needs 3.
	g := graph.Figure1()
	ny, ba := g.MustNode("NY"), g.MustNode("BA")
	hk, fl := g.MustNode("HK"), g.MustNode("FL")
	pathNYBA := g.ShortestPath(ny, ba) // direct, capacity 6
	la := g.MustNode("LA")
	var hkla, lafl graph.EdgeID = -1, -1
	for _, eid := range g.OutEdges(hk) {
		if g.Edge(eid).To == la {
			hkla = eid
		}
	}
	for _, eid := range g.OutEdges(la) {
		if g.Edge(eid).To == fl {
			lafl = eid
		}
	}
	inst := &coflow.Instance{Graph: g, Coflows: []coflow.Coflow{{
		ID: 0, Weight: 1,
		Flows: []coflow.Flow{
			{Source: ny, Sink: ba, Demand: 18, Path: pathNYBA},
			{Source: hk, Sink: fl, Demand: 12, Path: []graph.EdgeID{hkla, lafl}},
		},
	}}}
	lsp, err := BuildSinglePath(inst, timegrid.Uniform(5))
	if err != nil {
		t.Fatal(err)
	}
	ssp, err := lsp.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Single path: NY→BA at rate 6 → 3 slots; C* fractional bound is
	// 1 + (1-1/3) + (1-2/3) = 2 for that flow alone. Both flows need
	// 3 slots → C* = 2. (Fractional completion-time bound.)
	if math.Abs(ssp.LowerBound-2) > 1e-5 {
		t.Fatalf("single-path LP = %v, want 2", ssp.LowerBound)
	}

	inFree := &coflow.Instance{Graph: g, Coflows: []coflow.Coflow{{
		ID: 0, Weight: 1,
		Flows: []coflow.Flow{
			{Source: ny, Sink: ba, Demand: 18},
			{Source: hk, Sink: fl, Demand: 12},
		},
	}}}
	lfp, err := BuildFreePath(inFree, timegrid.Uniform(5))
	if err != nil {
		t.Fatal(err)
	}
	sfp, err := lfp.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Free path: both finish in 2 slots → C* = 1 + (1-1/2) = 1.5.
	if sfp.LowerBound > ssp.LowerBound+1e-6 {
		t.Fatalf("free-path LP %v > single-path LP %v", sfp.LowerBound, ssp.LowerBound)
	}
	if math.Abs(sfp.LowerBound-1.5) > 1e-5 {
		t.Fatalf("free-path LP = %v, want 1.5", sfp.LowerBound)
	}
}

func TestHorizonTooSmallRejected(t *testing.T) {
	in := lineInstance(1, 10)
	if _, err := BuildSinglePath(in, timegrid.Uniform(5)); err == nil {
		t.Fatal("expected error: release beyond horizon")
	}
}

func TestInvalidInstanceRejected(t *testing.T) {
	in := lineInstance(1, 0)
	in.Coflows[0].Flows[0].Path = nil
	if _, err := BuildSinglePath(in, timegrid.Uniform(5)); err == nil {
		t.Fatal("expected validation error for missing path")
	}
	if _, err := BuildFreePath(&coflow.Instance{}, timegrid.Uniform(5)); err == nil {
		t.Fatal("expected validation error for empty instance")
	}
}

func TestWeightsScaleObjective(t *testing.T) {
	in := lineInstance(2, 0)
	in.Coflows[0].Weight = 10
	l, err := BuildSinglePath(in, timegrid.Uniform(4))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := l.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.LowerBound-15) > 1e-6 {
		t.Fatalf("weighted LP bound = %v, want 15", sol.LowerBound)
	}
}

func TestFirstSlotAccessors(t *testing.T) {
	in := lineInstance(1, 2)
	l, err := BuildSinglePath(in, timegrid.Uniform(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Flows()) != 1 {
		t.Fatalf("Flows() len %d", len(l.Flows()))
	}
	if l.FirstSlot(0) != 2 {
		t.Fatalf("FirstSlot = %d, want 2", l.FirstSlot(0))
	}
}
