package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// requireShape asserts the structural invariants every figure must
// satisfy: all series present in every row, finite values, and the LP
// lower bound never above the algorithmic series.
func requireShape(t *testing.T, r *FigureResult, lpSeries string, algoSeries ...string) {
	t.Helper()
	if len(r.Rows) == 0 {
		t.Fatalf("%s: no rows", r.Name)
	}
	for _, row := range r.Rows {
		lp, ok := row.Values[lpSeries]
		if !ok {
			t.Fatalf("%s %s: missing %q", r.Name, row.Label, lpSeries)
		}
		if lp <= 0 {
			t.Fatalf("%s %s: non-positive LP bound %v", r.Name, row.Label, lp)
		}
		for _, s := range algoSeries {
			v, ok := row.Values[s]
			if !ok {
				t.Fatalf("%s %s: missing series %q", r.Name, row.Label, s)
			}
			if v < lp-1e-6 {
				t.Fatalf("%s %s: %q = %v below LP bound %v", r.Name, row.Label, s, v, lp)
			}
		}
	}
}

func TestFigure6Small(t *testing.T) {
	r, err := Figure6(context.Background(), Small())
	if err != nil {
		t.Fatal(err)
	}
	requireShape(t, r, SeriesLP, SeriesHeuristic, SeriesBestLambda, SeriesAvgLambda)
	for _, row := range r.Rows {
		if row.Values[SeriesBestLambda] > row.Values[SeriesAvgLambda]+1e-9 {
			t.Fatalf("%s: best λ above average λ", row.Label)
		}
		// Theorem 4.4 shape: average stays within ~2× LP (slack for
		// sampling noise at 5 trials).
		if row.Values[SeriesAvgLambda] > 2.6*row.Values[SeriesLP] {
			t.Fatalf("%s: average λ %v far above 2×LP %v",
				row.Label, row.Values[SeriesAvgLambda], 2*row.Values[SeriesLP])
		}
	}
}

func TestFigure8Small(t *testing.T) {
	r, err := Figure8(context.Background(), Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per ε)", len(r.Rows))
	}
	for _, row := range r.Rows {
		lp := row.Values["Interval LP(lower bound)"]
		h := row.Values[SeriesHeuristic]
		if h < lp-1e-6 {
			t.Fatalf("%s: heuristic %v below its LP %v", row.Label, h, lp)
		}
	}
}

func TestFigure9Small(t *testing.T) {
	r, err := Figure9(context.Background(), Small())
	if err != nil {
		t.Fatal(err)
	}
	requireShape(t, r, SeriesLP, SeriesHeuristic, SeriesJahanjou, SeriesSincronia)
	for _, row := range r.Rows {
		// Interval heuristic dominates its own interval LP bound.
		if row.Values[SeriesIntervalHeur] < row.Values[SeriesIntervalLP]-1e-6 {
			t.Fatalf("%s: interval heuristic below interval LP", row.Label)
		}
	}
}

// TestParallelFigureMatchesSerial pins down the concurrency contract
// of the experiment harnesses: fanning workloads and Stretch trials
// out over many workers must reproduce the serial tables exactly.
// Running it under -race also exercises the parallel path for data
// races (see .github/workflows/ci.yml).
func TestParallelFigureMatchesSerial(t *testing.T) {
	for _, fig := range []struct {
		name string
		fn   func(context.Context, Config) (*FigureResult, error)
	}{{"figure6", Figure6}, {"figure8", Figure8}, {"figure11", Figure11}} {
		t.Run(fig.name, func(t *testing.T) {
			serial := Small()
			serial.Workers = 1
			want, err := fig.fn(context.Background(), serial)
			if err != nil {
				t.Fatal(err)
			}
			par := Small()
			par.Workers = 4
			par.Logf = t.Logf // exercise concurrent logging too
			got, err := fig.fn(context.Background(), par)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("row count %d != %d", len(got.Rows), len(want.Rows))
			}
			for i, row := range got.Rows {
				if row.Label != want.Rows[i].Label {
					t.Fatalf("row %d label %q != %q", i, row.Label, want.Rows[i].Label)
				}
				for s, v := range row.Values {
					if v != want.Rows[i].Values[s] {
						t.Fatalf("%s %s: %v != %v (serial)", row.Label, s, v, want.Rows[i].Values[s])
					}
				}
			}
		})
	}
}

func TestFigure11Small(t *testing.T) {
	r, err := Figure11(context.Background(), Small())
	if err != nil {
		t.Fatal(err)
	}
	requireShape(t, r, SeriesLP, SeriesHeuristic, SeriesBestLambda, SeriesAvgLambda)
	for _, row := range r.Rows {
		if _, ok := row.Values[SeriesTerra]; !ok {
			t.Fatalf("%s: Terra series missing", row.Label)
		}
		if row.Values[SeriesTerra] <= 0 {
			t.Fatalf("%s: Terra total %v", row.Label, row.Values[SeriesTerra])
		}
	}
}

func TestRenderFormats(t *testing.T) {
	r := &FigureResult{
		Name:   "Test figure",
		Series: []string{"A", "B"},
		Rows: []Row{
			{Label: "w1", Values: map[string]float64{"A": 1.5, "B": 2.5}},
			{Label: "w2", Values: map[string]float64{"A": 3}},
		},
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Test figure") || !strings.Contains(out, "w1") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing value should render as '-':\n%s", out)
	}
	buf.Reset()
	if err := r.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "label,A,B" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[2], ",") {
		t.Fatalf("missing CSV value should be empty: %q", lines[2])
	}
}

func TestConfigDefaults(t *testing.T) {
	var zero Config
	c := zero.withDefaults()
	d := Default()
	if c.SingleCoflows != d.SingleCoflows || c.Trials != d.Trials || c.Seed != d.Seed {
		t.Fatalf("withDefaults did not fill: %+v", c)
	}
}

func TestFiguresRegistry(t *testing.T) {
	for _, n := range []int{6, 7, 8, 9, 10, 11, 12} {
		if Figures[n] == nil {
			t.Fatalf("figure %d missing from registry", n)
		}
	}
	if Figures[5] != nil {
		t.Fatal("unexpected figure 5")
	}
}

func TestUnknownTopology(t *testing.T) {
	if _, err := topologyFor("nope"); err == nil {
		t.Fatal("expected error")
	}
}
