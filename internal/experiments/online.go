package experiments

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/coflow"
	"repro/internal/engine"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Online evaluation ("Figure O1"): the paper's workloads carry Poisson
// release times that the offline figures reveal to the scheduler
// upfront; here the internal/sim simulator reveals them at arrival and
// measures the price of being online. See the figure index in the
// package comment.

// O1Policies are the policies the load sweep compares: the three
// non-clairvoyant baselines, the online Sincronia re-ordering, and the
// epoch re-planning adapter over the LP-free offline greedy (so the
// sweep stays LP-free and fast at default scale).
var O1Policies = []string{
	sim.NameFIFO,
	sim.NameLAS,
	sim.NameFair,
	sim.NameSincroniaOnline,
	"epoch:sincronia-greedy",
}

// O1Offline is the clairvoyant reference scheduler slowdowns are
// measured against in the load sweep.
const O1Offline = "sincronia-greedy"

// SeriesOffline labels the clairvoyant reference column.
const SeriesOffline = "Offline ΣwC"

// OnlineComparison runs each named sim policy on one instance and
// tabulates absolute weighted CCT, average CCT (response time),
// makespan, and — when offline names an engine scheduler — the average
// per-coflow slowdown against a clairvoyant run of that scheduler's
// epoch adapter. The reference runs through the same continuous-time
// simulator (sim.Options.Clairvoyant) so the slowdown isolates the
// cost of not knowing the future instead of mixing in the slot
// quantization of offline schedules; the engine's slotted ΣwC is
// reported alongside for scale.
//
// When check is non-nil it receives every simulation result (the
// clairvoyant reference included, with clairvoyant=true) before it is
// tabulated; a non-nil error aborts the comparison. cmd/coflowsim's
// -validate wires the internal/validate oracle through it.
func OnlineComparison(ctx context.Context, in *coflow.Instance, policies []string, opt sim.Options, offline string, check func(policy string, clairvoyant bool, r *sim.Result) error) (*FigureResult, error) {
	// Normalize here so the offline reference sees sim's lighter trial
	// default (5) rather than the engine's offline default (20).
	opt = opt.Normalize()
	res := &FigureResult{
		Name:   fmt.Sprintf("Online comparison: %d coflows (%d flows), epoch=%g", len(in.Coflows), in.NumFlows(), opt.Epoch),
		Series: []string{"Weighted ΣwC", "Avg CCT", "Makespan", "Replans"},
	}
	var offCompletions []float64
	if offline != "" {
		off, err := engine.Schedule(ctx, offline, in, coflow.SinglePath, engine.Options{
			MaxSlots: opt.MaxSlots, Trials: opt.Trials, Seed: opt.Seed, Workers: opt.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: offline reference %s: %w", offline, err)
		}
		ref, err := clairvoyantReference(ctx, in, offline, opt)
		if err != nil {
			return nil, err
		}
		if check != nil {
			if err := check("epoch:"+offline, true, ref); err != nil {
				return nil, fmt.Errorf("experiments: clairvoyant reference %s: %w", offline, err)
			}
		}
		offCompletions = ref.Completions
		res.Series = append(res.Series, "Slowdown")
		res.Rows = append(res.Rows, Row{
			Label: "offline:" + offline,
			Values: map[string]float64{
				"Weighted ΣwC": ref.WeightedCCT,
				"Avg CCT":      ref.AvgCCT,
				"Makespan":     ref.Makespan,
				"Slowdown":     1,
			},
		})
		res.Rows = append(res.Rows, Row{
			Label: "offline:" + offline + " (slotted)",
			Values: map[string]float64{
				"Weighted ΣwC": off.Weighted,
				"Makespan":     slices.Max(off.Completions),
			},
		})
	}
	for _, name := range policies {
		o := opt
		o.Policy = name
		r, err := sim.Simulate(ctx, in, o)
		if err != nil {
			return nil, fmt.Errorf("experiments: policy %s: %w", name, err)
		}
		if check != nil {
			if err := check(name, false, r); err != nil {
				return nil, fmt.Errorf("experiments: policy %s: %w", name, err)
			}
		}
		row := Row{Label: name, Values: map[string]float64{
			"Weighted ΣwC": r.WeightedCCT,
			"Avg CCT":      r.AvgCCT,
			"Makespan":     r.Makespan,
			"Replans":      float64(r.Replans),
		}}
		if offCompletions != nil {
			s, err := sim.Slowdown(r, offCompletions)
			if err != nil {
				return nil, err
			}
			row.Values["Slowdown"] = s
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// clairvoyantReference runs the epoch adapter of the named engine
// scheduler in clairvoyant mode: the full instance is revealed at t=0
// (service still honors releases) and the run advances in the same
// continuous time as the online policies it is compared against.
func clairvoyantReference(ctx context.Context, in *coflow.Instance, offline string, opt sim.Options) (*sim.Result, error) {
	o := opt
	o.Policy = "epoch:" + offline
	o.Clairvoyant = true
	ref, err := sim.Simulate(ctx, in, o)
	if err != nil {
		return nil, fmt.Errorf("experiments: clairvoyant reference %s: %w", offline, err)
	}
	return ref, nil
}

// FigureO1 is the online load sweep: one cell per (workload,
// arrival-rate) pair on SWAN in the single path model. Each cell
// generates a Poisson-release instance at that load, runs every
// O1Policies member through the online simulator, and reports the
// average per-coflow slowdown against a clairvoyant continuous-time
// run of the O1Offline scheduler's epoch adapter, next to that
// reference's weighted CCT for scale. Cells fan out over the worker
// pool with per-cell derived seeds, so the table is bit-identical at
// any Config.Workers.
func FigureO1(c Config) (*FigureResult, error) {
	c = c.withDefaults()
	g, err := topologyFor("SWAN")
	if err != nil {
		return nil, err
	}
	res := &FigureResult{
		Name:   "Figure O1: online load sweep on SWAN (avg slowdown vs clairvoyant " + O1Offline + ")",
		Series: append([]string{SeriesOffline}, O1Policies...),
	}
	type cell struct {
		kind workload.Kind
		load float64
	}
	var cells []cell
	for _, kind := range workload.Kinds {
		for _, load := range c.Loads {
			cells = append(cells, cell{kind, load})
		}
	}
	rows, err := pool.Map(context.Background(), len(cells), c.Workers, func(i int) (Row, error) {
		kind, load := cells[i].kind, cells[i].load
		label := fmt.Sprintf("%s λ=%.2g", kind, load)
		c.logf("Figure O1: %s", label)
		in, err := workload.Generate(workload.Config{
			Kind: kind, Graph: g, NumCoflows: c.SingleCoflows,
			Seed:             stats.SubSeed(c.Seed, 0xC0F*uint64(i)+1),
			MeanInterarrival: 1 / load,
			AssignPaths:      true,
		})
		if err != nil {
			return Row{}, err
		}
		ctx := context.Background()
		off, err := clairvoyantReference(ctx, in, O1Offline, sim.Options{
			MaxSlots: c.MaxSlots, Seed: c.Seed, Workers: 1,
		})
		if err != nil {
			return Row{}, fmt.Errorf("O1 %s: %w", label, err)
		}
		row := Row{Label: label, Values: map[string]float64{SeriesOffline: off.WeightedCCT}}
		for _, name := range O1Policies {
			r, err := sim.Simulate(ctx, in, sim.Options{
				Policy: name, MaxSlots: c.MaxSlots,
				Seed: stats.SubSeed(c.Seed, uint64(i)), Workers: 1,
			})
			if err != nil {
				return Row{}, fmt.Errorf("O1 %s (%s): %w", label, name, err)
			}
			s, err := sim.Slowdown(r, off.Completions)
			if err != nil {
				return Row{}, err
			}
			row.Values[name] = s
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}
