package experiments

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/coflow"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Online evaluation ("Figure O1"): the paper's workloads carry Poisson
// release times that the offline figures reveal to the scheduler
// upfront; here the internal/sim simulator reveals them at arrival and
// measures the price of being online. See the figure index in the
// package comment.

// O1Policies are the policies the load sweep compares: the three
// non-clairvoyant baselines, the online Sincronia re-ordering, and the
// epoch re-planning adapter over the LP-free offline greedy (so the
// sweep stays LP-free and fast at default scale).
var O1Policies = []string{
	sim.NameFIFO,
	sim.NameLAS,
	sim.NameFair,
	sim.NameSincroniaOnline,
	"epoch:sincronia-greedy",
}

// O1Offline is the clairvoyant reference scheduler slowdowns are
// measured against in the load sweep.
const O1Offline = "sincronia-greedy"

// SeriesOffline labels the clairvoyant reference column.
const SeriesOffline = "Offline ΣwC"

// OnlineComparison runs each named sim policy on one instance and
// tabulates absolute weighted CCT, average CCT (response time),
// makespan, and — when offline names an engine scheduler — the average
// per-coflow slowdown against a clairvoyant run of that scheduler's
// epoch adapter. The reference runs through the same continuous-time
// simulator (sim.Options.Clairvoyant) so the slowdown isolates the
// cost of not knowing the future instead of mixing in the slot
// quantization of offline schedules; the engine's slotted ΣwC is
// reported alongside for scale.
//
// When check is non-nil it receives every simulation result (the
// clairvoyant reference included, with clairvoyant=true) before it is
// tabulated; a non-nil error aborts the comparison. cmd/coflowsim's
// -validate wires the internal/validate oracle through it.
func OnlineComparison(ctx context.Context, in *coflow.Instance, policies []string, opt sim.Options, offline string, check func(policy string, clairvoyant bool, r *sim.Result) error) (*FigureResult, error) {
	// Normalize here so the offline reference sees sim's lighter trial
	// default (5) rather than the engine's offline default (20).
	opt = opt.Normalize()
	res := &FigureResult{
		Name:   fmt.Sprintf("Online comparison: %d coflows (%d flows), epoch=%g", len(in.Coflows), in.NumFlows(), opt.Epoch),
		Series: []string{"Weighted ΣwC", "Avg CCT", "Makespan", "Replans"},
	}
	var offCompletions []float64
	if offline != "" {
		off, err := engine.Schedule(ctx, offline, in, coflow.SinglePath, engine.Options{
			MaxSlots: opt.MaxSlots, Trials: opt.Trials, Seed: opt.Seed, Workers: opt.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: offline reference %s: %w", offline, err)
		}
		ref, err := clairvoyantReference(ctx, in, offline, opt)
		if err != nil {
			return nil, err
		}
		if check != nil {
			if err := check("epoch:"+offline, true, ref); err != nil {
				return nil, fmt.Errorf("experiments: clairvoyant reference %s: %w", offline, err)
			}
		}
		offCompletions = ref.Completions
		res.Series = append(res.Series, "Slowdown")
		res.Rows = append(res.Rows, Row{
			Label: "offline:" + offline,
			Values: map[string]float64{
				"Weighted ΣwC": ref.WeightedCCT,
				"Avg CCT":      ref.AvgCCT,
				"Makespan":     ref.Makespan,
				"Slowdown":     1,
			},
		})
		res.Rows = append(res.Rows, Row{
			Label: "offline:" + offline + " (slotted)",
			Values: map[string]float64{
				"Weighted ΣwC": off.Weighted,
				"Makespan":     slices.Max(off.Completions),
			},
		})
	}
	for _, name := range policies {
		o := opt
		o.Policy = name
		r, err := sim.Simulate(ctx, in, o)
		if err != nil {
			return nil, fmt.Errorf("experiments: policy %s: %w", name, err)
		}
		if check != nil {
			if err := check(name, false, r); err != nil {
				return nil, fmt.Errorf("experiments: policy %s: %w", name, err)
			}
		}
		row := Row{Label: name, Values: map[string]float64{
			"Weighted ΣwC": r.WeightedCCT,
			"Avg CCT":      r.AvgCCT,
			"Makespan":     r.Makespan,
			"Replans":      float64(r.Replans),
		}}
		if offCompletions != nil {
			s, err := sim.Slowdown(r, offCompletions)
			if err != nil {
				return nil, err
			}
			row.Values["Slowdown"] = s
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// clairvoyantReference runs the epoch adapter of the named engine
// scheduler in clairvoyant mode: the full instance is revealed at t=0
// (service still honors releases) and the run advances in the same
// continuous time as the online policies it is compared against.
func clairvoyantReference(ctx context.Context, in *coflow.Instance, offline string, opt sim.Options) (*sim.Result, error) {
	o := opt
	o.Policy = "epoch:" + offline
	o.Clairvoyant = true
	ref, err := sim.Simulate(ctx, in, o)
	if err != nil {
		return nil, fmt.Errorf("experiments: clairvoyant reference %s: %w", offline, err)
	}
	return ref, nil
}

// FigureO1 is the online load sweep: one streamed spec cell per
// (workload, arrival-rate, run) triple on SWAN in the single path
// model — runs are the clairvoyant reference (the O1Offline
// scheduler's epoch adapter with every coflow revealed at t=0) plus
// each O1Policies member. The table reports the average per-coflow
// slowdown of every policy against its instance point's reference,
// next to the reference's weighted CCT for scale. Cells fan out over
// internal/spec's streaming executor with per-cell derived seeds, so
// the table is bit-identical at any Config.Workers.
func FigureO1(ctx context.Context, c Config) (*FigureResult, error) {
	c = c.withDefaults()
	res := &FigureResult{
		Name:   "Figure O1: online load sweep on SWAN (avg slowdown vs clairvoyant " + O1Offline + ")",
		Series: append([]string{SeriesOffline}, O1Policies...),
	}
	type point struct {
		kind workload.Kind
		load float64
	}
	var points []point
	for _, kind := range workload.Kinds {
		for _, load := range c.Loads {
			points = append(points, point{kind, load})
		}
	}
	// Materialize each grid point's instance once — the reference and
	// every policy run share it inline instead of regenerating it per
	// cell. Seeds reproduce the original per-point derivation exactly,
	// so the sweep-backed figure matches the legacy implementation bit
	// for bit.
	runs := 1 + len(O1Policies)
	instances := make([]*coflow.Instance, len(points))
	for pi, p := range points {
		c.logf("Figure O1: %s λ=%.2g", p.kind, p.load)
		in, err := spec.Spec{
			// Any online policy makes Materialize assign single-path
			// routes; nothing runs here.
			Policy: sim.NameFIFO,
			Workload: &spec.Workload{
				Kind:             specKind(p.kind),
				Coflows:          c.SingleCoflows,
				Seed:             stats.SubSeed(c.Seed, 0xC0F*uint64(pi)+1),
				MeanInterarrival: 1 / p.load,
			},
		}.Materialize()
		if err != nil {
			return nil, fmt.Errorf("O1 %s λ=%.2g: %w", p.kind, p.load, err)
		}
		instances[pi] = in
	}
	at := func(i int) spec.Spec {
		pi, r := i/runs, i%runs
		s := spec.Spec{
			Instance: instances[pi],
			Options:  spec.Options{MaxSlots: c.MaxSlots, Workers: 1},
		}
		if r == 0 {
			s.Policy = "epoch:" + O1Offline
			s.Options.Clairvoyant = true
			s.Options.Seed = c.Seed
		} else {
			s.Policy = O1Policies[r-1]
			s.Options.Seed = stats.SubSeed(c.Seed, uint64(pi))
		}
		return s
	}
	reports := make([]*spec.RunReport, len(points)*runs)
	for i, cell := range spec.Stream(ctx, len(reports), c.Workers, at) {
		if cell.Err != nil {
			pi := i / runs
			return nil, fmt.Errorf("O1 %s λ=%.2g (%s): %w",
				points[pi].kind, points[pi].load, cell.Spec.Policy, cell.Err)
		}
		reports[i] = cell.Report
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows := make([]Row, len(points))
	for pi, p := range points {
		off := reports[pi*runs]
		row := Row{
			Label:  fmt.Sprintf("%s λ=%.2g", p.kind, p.load),
			Values: map[string]float64{SeriesOffline: off.Weighted},
		}
		for r, name := range O1Policies {
			s, err := sim.Slowdown(reports[pi*runs+1+r].Sim, off.Sim.Completions)
			if err != nil {
				return nil, err
			}
			row.Values[name] = s
		}
		rows[pi] = row
	}
	res.Rows = rows
	return res, nil
}
