package experiments

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/baselines"
	"repro/internal/coflow"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/simplex"
	"repro/internal/stats"
	"repro/internal/timegrid"
	"repro/internal/topo"
	"repro/internal/workload"
)

// This file pins the Spec/Sweep redesign to the behavior it replaced:
// verbatim copies of the pre-redesign figure harnesses (direct
// workload/engine/sim calls, pool.Map cells) run next to the
// spec.Stream-backed implementations, and the tables must match bit
// for bit at several worker counts. If a seed derivation, a default,
// or an instance-construction detail drifts, these fail first.

// legacyFigureO1 is the pre-redesign FigureO1, verbatim.
func legacyFigureO1(c Config) (*FigureResult, error) {
	c = c.withDefaults()
	g, err := topologyFor("SWAN")
	if err != nil {
		return nil, err
	}
	res := &FigureResult{
		Name:   "Figure O1: online load sweep on SWAN (avg slowdown vs clairvoyant " + O1Offline + ")",
		Series: append([]string{SeriesOffline}, O1Policies...),
	}
	type cell struct {
		kind workload.Kind
		load float64
	}
	var cells []cell
	for _, kind := range workload.Kinds {
		for _, load := range c.Loads {
			cells = append(cells, cell{kind, load})
		}
	}
	rows, err := pool.Map(context.Background(), len(cells), c.Workers, func(i int) (Row, error) {
		kind, load := cells[i].kind, cells[i].load
		label := fmt.Sprintf("%s λ=%.2g", kind, load)
		in, err := workload.Generate(workload.Config{
			Kind: kind, Graph: g, NumCoflows: c.SingleCoflows,
			Seed:             stats.SubSeed(c.Seed, 0xC0F*uint64(i)+1),
			MeanInterarrival: 1 / load,
			AssignPaths:      true,
		})
		if err != nil {
			return Row{}, err
		}
		ctx := context.Background()
		off, err := clairvoyantReference(ctx, in, O1Offline, sim.Options{
			MaxSlots: c.MaxSlots, Seed: c.Seed, Workers: 1,
		})
		if err != nil {
			return Row{}, fmt.Errorf("O1 %s: %w", label, err)
		}
		row := Row{Label: label, Values: map[string]float64{SeriesOffline: off.WeightedCCT}}
		for _, name := range O1Policies {
			r, err := sim.Simulate(ctx, in, sim.Options{
				Policy: name, MaxSlots: c.MaxSlots,
				Seed: stats.SubSeed(c.Seed, uint64(i)), Workers: 1,
			})
			if err != nil {
				return Row{}, fmt.Errorf("O1 %s (%s): %w", label, name, err)
			}
			s, err := sim.Slowdown(r, off.Completions)
			if err != nil {
				return Row{}, err
			}
			row.Values[name] = s
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// legacyFigureT1 is the pre-redesign FigureT1, verbatim.
func legacyFigureT1(c Config) (*FigureResult, error) {
	c = c.withDefaults()
	res := &FigureResult{
		Name:   "Figure T1: topology sweep, single path FB workload (ΣwC / LP bound)",
		Series: append([]string(nil), T1Schedulers...),
	}
	rows, err := pool.Map(context.Background(), len(T1Specs), c.Workers, func(i int) (Row, error) {
		spec := T1Specs[i]
		top, err := topo.New(spec)
		if err != nil {
			return Row{}, fmt.Errorf("T1 %s: %w", spec, err)
		}
		in, err := workload.Generate(workload.Config{
			Kind:             workload.FB,
			Graph:            top.Graph,
			NumCoflows:       c.SingleCoflows,
			Seed:             stats.SubSeed(c.Seed, 0x701+uint64(i)),
			MeanInterarrival: c.MeanInterarrival,
			AssignPaths:      true,
			Endpoints:        top.Endpoints,
		})
		if err != nil {
			return Row{}, fmt.Errorf("T1 %s: %w", spec, err)
		}
		row := Row{Label: spec, Values: map[string]float64{}}
		var bound float64
		for _, name := range T1Schedulers {
			r, err := engine.Schedule(context.Background(), name, in, coflow.SinglePath, engine.Options{
				MaxSlots: c.MaxSlots,
				Trials:   c.Trials,
				Seed:     stats.SubSeed(c.Seed, 0x71A+uint64(i)),
				Workers:  1,
			})
			if err != nil {
				return Row{}, fmt.Errorf("T1 %s (%s): %w", spec, name, err)
			}
			if name == engine.NameHeuristic && r.HasLowerBound {
				bound = r.LowerBound
			}
			row.Values[name] = r.Weighted
		}
		if bound <= 0 {
			return Row{}, fmt.Errorf("T1 %s: no LP lower bound", spec)
		}
		for name, v := range row.Values {
			row.Values[name] = v / bound
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// legacySinglePath is the pre-redesign Figures 9/10 harness, verbatim
// (direct runAdaptive instead of the spec heuristic cell).
func legacySinglePath(c Config, topo, figure string) (*FigureResult, error) {
	c = c.withDefaults()
	g, err := topologyFor(topo)
	if err != nil {
		return nil, err
	}
	n := c.SingleCoflows
	if topo == "G-Scale" {
		n = (n*2 + 2) / 3
	}
	res := &FigureResult{
		Name: figure,
		Series: []string{SeriesLP, SeriesHeuristic, SeriesIntervalLP,
			SeriesIntervalHeur, SeriesJahanjou, SeriesSincronia},
	}
	rows, err := pool.Map(context.Background(), len(workload.Kinds), c.Workers, func(i int) (Row, error) {
		kind := workload.Kinds[i]
		in, err := c.generate(kind, g, n, false, true)
		if err != nil {
			return Row{}, err
		}
		run, grid, err := runAdaptive(context.Background(), c, in, coflow.SinglePath, 0, 0)
		if err != nil {
			return Row{}, fmt.Errorf("%s %v (uniform): %w", figure, kind, err)
		}

		horizon := grid.Horizon()
		var solInt *model.Solution
		var heurInt *core.Evaluated
		var gridInt timegrid.Grid
		for h := horizon; ; h *= 2 {
			gridInt = timegrid.Geometric(h, 0.2)
			lInt, err := model.BuildSinglePath(in, gridInt)
			if err != nil {
				return Row{}, err
			}
			solInt, err = lInt.Solve(context.Background(), simplex.Options{})
			if err != nil {
				if core.RetryableLP(err) && h < 8*horizon {
					continue
				}
				return Row{}, fmt.Errorf("%s %v (interval): %w", figure, kind, err)
			}
			break
		}
		heurInt, err = core.Heuristic(solInt, core.Options{Grid: gridInt})
		if err != nil {
			return Row{}, err
		}

		jr, err := baselines.JahanjouAdaptive(context.Background(), in, horizon, baselines.JahanjouEpsilon, 0.5)
		if err != nil {
			return Row{}, fmt.Errorf("%s %v (jahanjou): %w", figure, kind, err)
		}

		sg, err := baselines.SincroniaAdaptive(in, horizon)
		if err != nil {
			return Row{}, fmt.Errorf("%s %v (sincronia): %w", figure, kind, err)
		}

		return Row{
			Label: kind.String(),
			Values: map[string]float64{
				SeriesLP:           run.LowerBound,
				SeriesHeuristic:    run.Heuristic.Weighted,
				SeriesIntervalLP:   solInt.LowerBound,
				SeriesIntervalHeur: heurInt.Weighted,
				SeriesJahanjou:     jr.Weighted,
				SeriesSincronia:    sg.WeightedCompletion(),
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

func requireEqualTables(t *testing.T, name string, want, got *FigureResult) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("%s: name %q != %q", name, got.Name, want.Name)
	}
	if !reflect.DeepEqual(got.Series, want.Series) {
		t.Fatalf("%s: series %v != %v", name, got.Series, want.Series)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows != %d", name, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if got.Rows[i].Label != want.Rows[i].Label {
			t.Fatalf("%s row %d: label %q != %q", name, i, got.Rows[i].Label, want.Rows[i].Label)
		}
		if !reflect.DeepEqual(got.Rows[i].Values, want.Rows[i].Values) {
			t.Fatalf("%s row %q: values drifted:\nlegacy: %v\nsweep:  %v",
				name, got.Rows[i].Label, want.Rows[i].Values, got.Rows[i].Values)
		}
	}
}

// TestFigureO1MatchesLegacy: the sweep-backed O1 equals the legacy
// harness bit for bit, at several worker counts.
func TestFigureO1MatchesLegacy(t *testing.T) {
	c := Small()
	c.SingleCoflows = 6
	want, err := legacyFigureO1(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		c.Workers = workers
		got, err := FigureO1(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualTables(t, fmt.Sprintf("O1/workers=%d", workers), want, got)
	}
}

// TestFigureT1MatchesLegacy: same guard for the topology sweep.
func TestFigureT1MatchesLegacy(t *testing.T) {
	c := t1Config(1)
	want, err := legacyFigureT1(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		c.Workers = workers
		got, err := FigureT1(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualTables(t, fmt.Sprintf("T1/workers=%d", workers), want, got)
	}
}

// TestFigure9MatchesLegacy: the spec-cell-backed Figures 9/10 harness
// equals the legacy one, including the adaptive-grid horizon handoff
// to the interval LP and the baselines (the Small config is known to
// trigger grid-doubling retries, so the handoff is exercised, not
// vacuous).
func TestFigure9MatchesLegacy(t *testing.T) {
	c := Small()
	want, err := legacySinglePath(c, "SWAN", "Figure 9: single path on SWAN (weighted completion, slot units)")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		c.Workers = workers
		got, err := Figure9(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualTables(t, fmt.Sprintf("fig9/workers=%d", workers), want, got)
	}
}

// TestFigure10MatchesLegacy covers the G-Scale variant (and with it
// the per-topology coflow-count adjustment).
func TestFigure10MatchesLegacy(t *testing.T) {
	c := Small()
	c.SingleCoflows = 4
	want, err := legacySinglePath(c, "G-Scale", "Figure 10: single path on G-Scale (weighted completion, slot units)")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Figure10(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualTables(t, "fig10", want, got)
}
