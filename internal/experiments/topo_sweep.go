package experiments

import (
	"context"
	"fmt"

	"repro/internal/coflow"
	"repro/internal/engine"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Topology sweep ("Figure T1"): the paper's headline claim is
// approximating coflow completion time in *general* networks, but its
// own evaluation runs only the SWAN and G-Scale WANs. This figure
// measures how far each single-path scheduler lands from the LP lower
// bound across the generated topology families of internal/topo — the
// big-switch abstraction the Sincronia-style greedy was designed for,
// oversubscribed datacenter fabrics, and the adversarial flat families.

// T1Specs are the topology specs swept, one row each. All are sized so
// the time-indexed LP stays laptop-friendly at default scale.
var T1Specs = []string{
	"big-switch:n=6",
	"star:n=6",
	"line:n=6",
	"ring:n=6",
	"fat-tree:k=4",
	"leaf-spine:leaves=4,spines=2,hosts=2",
	"random-regular:n=8,d=3,seed=3",
	"erdos-renyi:n=8,p=0.3,seed=5,hetero=1",
}

// T1Schedulers are the engine schedulers compared, one series each;
// all support the single path model the sweep runs in.
var T1Schedulers = []string{
	engine.NameHeuristic,
	engine.NameStretch,
	engine.NameJahanjou,
	engine.NameSincronia,
}

// FigureT1 runs the topology sweep: one streamed spec cell per
// (topology spec, scheduler) pair, each generating an FB workload
// restricted to the topology's endpoints and running in the single
// path model. Reported values are the CCT ratio — weighted completion
// over the topology's time-indexed LP lower bound (from its heuristic
// cell) — so 1.0 is LP-optimal and families where an algorithm's
// big-switch assumptions break show up as inflated ratios. Cells fan
// out over internal/spec's streaming executor; per-cell seeds derive
// from Config.Seed, so the table is identical at any Config.Workers.
func FigureT1(ctx context.Context, c Config) (*FigureResult, error) {
	c = c.withDefaults()
	res := &FigureResult{
		Name:   "Figure T1: topology sweep, single path FB workload (ΣwC / LP bound)",
		Series: append([]string(nil), T1Schedulers...),
	}
	ns := len(T1Schedulers)
	// Materialize each topology's instance once; its scheduler cells
	// share it inline instead of rebuilding topology + workload per
	// cell.
	instances := make([]*coflow.Instance, len(T1Specs))
	for ti, topoSpec := range T1Specs {
		c.logf("Figure T1: topology %s", topoSpec)
		in, err := spec.Spec{
			Topology:  topoSpec,
			Scheduler: T1Schedulers[0], // never run; Materialize only needs the model
			Model:     spec.ModelSingle,
			Workload: &spec.Workload{
				Kind:             specKind(workload.FB),
				Coflows:          c.SingleCoflows,
				Seed:             stats.SubSeed(c.Seed, 0x701+uint64(ti)),
				MeanInterarrival: c.MeanInterarrival,
			},
		}.Materialize()
		if err != nil {
			return nil, fmt.Errorf("T1 %s: %w", topoSpec, err)
		}
		instances[ti] = in
	}
	at := func(i int) spec.Spec {
		ti, si := i/ns, i%ns
		return spec.Spec{
			Instance:  instances[ti],
			Model:     spec.ModelSingle,
			Scheduler: T1Schedulers[si],
			Options: spec.Options{
				MaxSlots: c.MaxSlots,
				Trials:   c.Trials,
				Seed:     stats.SubSeed(c.Seed, 0x71A+uint64(ti)),
				Workers:  1, // cells already fan out; keep trials serial
			},
		}
	}
	reports := make([]*spec.RunReport, len(T1Specs)*ns)
	for i, cell := range spec.Stream(ctx, len(reports), c.Workers, at) {
		if cell.Err != nil {
			return nil, fmt.Errorf("T1 %s (%s): %w", T1Specs[i/ns], T1Schedulers[i%ns], cell.Err)
		}
		reports[i] = cell.Report
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows := make([]Row, len(T1Specs))
	for ti, topoSpec := range T1Specs {
		row := Row{Label: topoSpec, Values: map[string]float64{}}
		var bound float64
		for si, name := range T1Schedulers {
			r := reports[ti*ns+si]
			// The heuristic's time-indexed LP bound is the common
			// denominator; Jahanjou's interval bound differs.
			if name == engine.NameHeuristic && r.HasLowerBound {
				bound = r.LowerBound
			}
			row.Values[name] = r.Weighted
		}
		if bound <= 0 {
			return nil, fmt.Errorf("T1 %s: no LP lower bound", topoSpec)
		}
		for name, v := range row.Values {
			row.Values[name] = v / bound
		}
		rows[ti] = row
	}
	res.Rows = rows
	return res, nil
}
