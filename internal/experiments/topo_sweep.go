package experiments

import (
	"context"
	"fmt"

	"repro/internal/coflow"
	"repro/internal/engine"
	"repro/internal/pool"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Topology sweep ("Figure T1"): the paper's headline claim is
// approximating coflow completion time in *general* networks, but its
// own evaluation runs only the SWAN and G-Scale WANs. This figure
// measures how far each single-path scheduler lands from the LP lower
// bound across the generated topology families of internal/topo — the
// big-switch abstraction the Sincronia-style greedy was designed for,
// oversubscribed datacenter fabrics, and the adversarial flat families.

// T1Specs are the topology specs swept, one row each. All are sized so
// the time-indexed LP stays laptop-friendly at default scale.
var T1Specs = []string{
	"big-switch:n=6",
	"star:n=6",
	"line:n=6",
	"ring:n=6",
	"fat-tree:k=4",
	"leaf-spine:leaves=4,spines=2,hosts=2",
	"random-regular:n=8,d=3,seed=3",
	"erdos-renyi:n=8,p=0.3,seed=5,hetero=1",
}

// T1Schedulers are the engine schedulers compared, one series each;
// all support the single path model the sweep runs in.
var T1Schedulers = []string{
	engine.NameHeuristic,
	engine.NameStretch,
	engine.NameJahanjou,
	engine.NameSincronia,
}

// FigureT1 runs the topology sweep: one cell per topology spec, each
// generating an FB workload restricted to the topology's endpoints and
// running every T1Schedulers member in the single path model. Reported
// values are the CCT ratio — weighted completion over the cell's
// time-indexed LP lower bound — so 1.0 is LP-optimal and families
// where an algorithm's big-switch assumptions break show up as
// inflated ratios. Cells fan out over the worker pool; per-cell seeds
// derive from Config.Seed, so the table is identical at any
// Config.Workers.
func FigureT1(c Config) (*FigureResult, error) {
	c = c.withDefaults()
	res := &FigureResult{
		Name:   "Figure T1: topology sweep, single path FB workload (ΣwC / LP bound)",
		Series: append([]string(nil), T1Schedulers...),
	}
	rows, err := pool.Map(context.Background(), len(T1Specs), c.Workers, func(i int) (Row, error) {
		spec := T1Specs[i]
		c.logf("Figure T1: topology %s", spec)
		top, err := topo.New(spec)
		if err != nil {
			return Row{}, fmt.Errorf("T1 %s: %w", spec, err)
		}
		in, err := workload.Generate(workload.Config{
			Kind:             workload.FB,
			Graph:            top.Graph,
			NumCoflows:       c.SingleCoflows,
			Seed:             stats.SubSeed(c.Seed, 0x701+uint64(i)),
			MeanInterarrival: c.MeanInterarrival,
			AssignPaths:      true,
			Endpoints:        top.Endpoints,
		})
		if err != nil {
			return Row{}, fmt.Errorf("T1 %s: %w", spec, err)
		}
		row := Row{Label: spec, Values: map[string]float64{}}
		var bound float64
		for _, name := range T1Schedulers {
			r, err := engine.Schedule(context.Background(), name, in, coflow.SinglePath, engine.Options{
				MaxSlots: c.MaxSlots,
				Trials:   c.Trials,
				Seed:     stats.SubSeed(c.Seed, 0x71A+uint64(i)),
				Workers:  1, // cells already fan out; keep trials serial
			})
			if err != nil {
				return Row{}, fmt.Errorf("T1 %s (%s): %w", spec, name, err)
			}
			// The heuristic runs first and its time-indexed LP bound is
			// the common denominator; Jahanjou's interval bound differs.
			if name == engine.NameHeuristic && r.HasLowerBound {
				bound = r.LowerBound
			}
			row.Values[name] = r.Weighted
		}
		if bound <= 0 {
			return Row{}, fmt.Errorf("T1 %s: no LP lower bound", spec)
		}
		for name, v := range row.Values {
			row.Values[name] = v / bound
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}
