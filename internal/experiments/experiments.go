// Package experiments regenerates the paper's evaluation (Section 6):
// one harness per figure, each producing the same data series the
// corresponding figure plots. Instances are synthetic stand-ins for
// the paper's workloads (see internal/workload), sizes are scaled to
// what the from-scratch LP solver handles on a laptop, and all results
// are in slot units (the paper plots seconds with 50-second slots; the
// shape of the comparison is unit-invariant).
//
// Each harness fans its independent cells (one per workload, or per ε
// value) out over a bounded worker pool (Config.Workers), and the
// Stretch trials inside each cell share the same bound. Tables are
// identical at any worker count: cells derive their seeds from
// Config.Seed, and rows are collected positionally.
//
// Figure index:
//
//	Figure 6  — free path, SWAN, weighted: LP bound / heuristic(λ=1) /
//	            Best λ / Average λ, per workload
//	Figure 7  — as Figure 6 on G-Scale
//	Figure 8  — free path, SWAN, FB workload: geometric-interval ε
//	            sweep of LP bound and heuristic
//	Figure 9  — single path, SWAN: time-indexed LP + heuristic vs
//	            time-interval LP (ε=0.2) + heuristic vs Jahanjou et al.
//	            vs the Sincronia-style bottleneck greedy
//	Figure 10 — as Figure 9 on G-Scale
//	Figure 11 — free path, SWAN, unit weights: LP / heuristic / Best λ /
//	            Average λ / Terra (total completion time)
//	Figure 12 — as Figure 11 on G-Scale
//	Figure O1 — online load sweep (internal/sim): arrival-rate ×
//	            workload cells on SWAN, avg per-coflow slowdown of each
//	            online policy vs the clairvoyant offline greedy
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"unicode/utf8"

	"repro/internal/baselines"
	"repro/internal/coflow"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/simplex"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/timegrid"
	"repro/internal/workload"
)

// Config scales the experiments. Zero fields take Default values.
type Config struct {
	// SingleCoflows is the coflow count for single path figures (9, 10).
	SingleCoflows int
	// FreeCoflows is the coflow count for free path figures on SWAN
	// (6, 8, 11); G-Scale free path figures use half (its LPs carry
	// ~3× the edges).
	FreeCoflows int
	// MaxSlots caps the uniform grid length.
	MaxSlots int
	// Trials is the number of λ samples for Best/Average λ (paper: 20).
	Trials int
	// Seed drives all randomness.
	Seed int64
	// MeanInterarrival is the release process mean gap in slots.
	MeanInterarrival float64
	// EpsSweep lists the ε values for Figure 8.
	EpsSweep []float64
	// Loads lists the coflow arrival rates (coflows per slot) for the
	// online load sweep (Figure O1).
	Loads []float64
	// Workers bounds the goroutines used to fan instances and Stretch
	// trials out (≤ 0 = GOMAXPROCS). Figure data is identical at any
	// worker count; only wall-clock time changes.
	Workers int
	// Logf, when non-nil, receives progress lines. It may be called
	// from multiple goroutines; calls are serialized by the harness.
	Logf func(format string, args ...any)
}

// Default returns the laptop-scale configuration used by
// cmd/coflowsim. The paper ran 200 jobs per workload on Gurobi; these
// sizes keep every figure under a few minutes with the built-in
// simplex while preserving the qualitative comparisons.
func Default() Config {
	return Config{
		SingleCoflows:    24,
		FreeCoflows:      8,
		MaxSlots:         36,
		Trials:           20,
		Seed:             2019,
		MeanInterarrival: 1.5,
		EpsSweep:         []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		Loads:            []float64{0.25, 0.5, 1.0, 2.0},
	}
}

// Small returns a quick configuration for tests and benchmarks.
func Small() Config {
	c := Default()
	c.SingleCoflows = 6
	c.FreeCoflows = 3
	c.MaxSlots = 16
	c.Trials = 5
	c.MeanInterarrival = 1
	c.EpsSweep = []float64{0.2, 0.5436, 1.0}
	c.Loads = []float64{1.0}
	return c
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.SingleCoflows == 0 {
		c.SingleCoflows = d.SingleCoflows
	}
	if c.FreeCoflows == 0 {
		c.FreeCoflows = d.FreeCoflows
	}
	if c.MaxSlots == 0 {
		c.MaxSlots = d.MaxSlots
	}
	if c.Trials == 0 {
		c.Trials = d.Trials
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.MeanInterarrival == 0 {
		c.MeanInterarrival = d.MeanInterarrival
	}
	if len(c.EpsSweep) == 0 {
		c.EpsSweep = d.EpsSweep
	}
	if len(c.Loads) == 0 {
		c.Loads = d.Loads
	}
	return c
}

// logMu serializes progress lines from concurrent figure cells so
// interleaved output stays line-atomic.
var logMu sync.Mutex

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		logMu.Lock()
		defer logMu.Unlock()
		c.Logf(format, args...)
	}
}

// Row is one bar group / x-position of a figure.
type Row struct {
	Label  string
	Values map[string]float64
}

// FigureResult is a regenerated figure as a table.
type FigureResult struct {
	Name   string
	Series []string
	Rows   []Row
}

// padLeft right-aligns s in a cell of `width` visible characters.
// fmt's %*s pads by bytes, which under-pads any header containing a
// multi-byte rune (the figure series use 'Σ', 'λ', 'ε').
func padLeft(s string, width int) string {
	if n := utf8.RuneCountInString(s); n < width {
		return strings.Repeat(" ", width-n) + s
	}
	return s
}

// padRight left-aligns s in a cell of `width` visible characters.
func padRight(s string, width int) string {
	if n := utf8.RuneCountInString(s); n < width {
		return s + strings.Repeat(" ", width-n)
	}
	return s
}

// Render writes an aligned text table.
func (r *FigureResult) Render(w io.Writer) error {
	width := 12
	for _, s := range r.Series {
		if n := utf8.RuneCountInString(s) + 2; n > width {
			width = n
		}
	}
	label := 12
	for _, row := range r.Rows {
		if n := utf8.RuneCountInString(row.Label) + 2; n > label {
			label = n
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n%s\n", r.Name, strings.Repeat("=", utf8.RuneCountInString(r.Name))); err != nil {
		return err
	}
	fmt.Fprint(w, padRight("", label))
	for _, s := range r.Series {
		fmt.Fprint(w, padLeft(s, width))
	}
	fmt.Fprintln(w)
	// Pick one format per column: counts print as integers, small
	// magnitudes (ratios like the online slowdown columns) get more
	// precision than big objectives, and no column mixes formats.
	format := make(map[string]string, len(r.Series))
	for _, s := range r.Series {
		integral, small := true, true
		for _, row := range r.Rows {
			v, ok := row.Values[s]
			if !ok || math.IsNaN(v) {
				continue
			}
			if v != math.Trunc(v) {
				integral = false
			}
			if math.Abs(v) >= 10 {
				small = false
			}
		}
		switch {
		case integral:
			format[s] = "%.0f"
		case small:
			format[s] = "%.3f"
		default:
			format[s] = "%.1f"
		}
	}
	for _, row := range r.Rows {
		fmt.Fprint(w, padRight(row.Label, label))
		for _, s := range r.Series {
			v, ok := row.Values[s]
			if !ok || math.IsNaN(v) {
				fmt.Fprint(w, padLeft("-", width))
				continue
			}
			fmt.Fprint(w, padLeft(fmt.Sprintf(format[s], v), width))
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV.
func (r *FigureResult) RenderCSV(w io.Writer) error {
	cols := append([]string{"label"}, r.Series...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{row.Label}
		for _, s := range r.Series {
			if v, ok := row.Values[s]; ok && !math.IsNaN(v) {
				rec = append(rec, fmt.Sprintf("%.4f", v))
			} else {
				rec = append(rec, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(rec, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Series names shared across figures (matching the paper's legends).
const (
	SeriesLP           = "LP(lower bound)"
	SeriesHeuristic    = "Heuristic(λ=1.0)"
	SeriesBestLambda   = "Best λ"
	SeriesAvgLambda    = "Average λ"
	SeriesIntervalLP   = "Interval LP(ε=0.2)"
	SeriesIntervalHeur = "Interval heuristic"
	SeriesJahanjou     = "Jahanjou et al."
	SeriesTerra        = "Terra"
	SeriesSincronia    = "Sincronia greedy"
)

// runAdaptive runs the core pipeline with the shared adaptive grid
// policy (core.RunAdaptive). Stretch trials inside the run share the
// harness's worker pool bound.
func runAdaptive(ctx context.Context, c Config, in *coflow.Instance, mode coflow.Model, trials int, seed int64) (*core.Result, timegrid.Grid, error) {
	return core.RunAdaptive(ctx, in, mode, c.MaxSlots, core.Options{
		Trials:  trials,
		Seed:    seed,
		Workers: c.Workers,
	}, c.logf)
}

// topologyFor returns the named topology with unit link capacity.
func topologyFor(name string) (*graph.Graph, error) {
	switch name {
	case "SWAN":
		return graph.SWAN(1), nil
	case "G-Scale":
		return graph.GScale(1), nil
	default:
		return nil, fmt.Errorf("experiments: unknown topology %q", name)
	}
}

// generate builds the workload instance for one figure cell.
func (c Config) generate(kind workload.Kind, g *graph.Graph, n int, unweighted, paths bool) (*coflow.Instance, error) {
	cfg := workload.Config{
		Kind:             kind,
		Graph:            g,
		NumCoflows:       n,
		Seed:             stats.SubSeed(c.Seed, uint64(kind)*31+7),
		MeanInterarrival: c.MeanInterarrival,
		AssignPaths:      paths,
	}
	if unweighted {
		cfg.WeightMin, cfg.WeightMax = 1, 1
	}
	return workload.Generate(cfg)
}

// weightedFree runs Figures 6 and 7: free path, weighted, one row per
// workload with LP bound / heuristic / best λ / average λ.
func weightedFree(ctx context.Context, c Config, topo string, figure string) (*FigureResult, error) {
	c = c.withDefaults()
	g, err := topologyFor(topo)
	if err != nil {
		return nil, err
	}
	n := c.FreeCoflows
	if topo == "G-Scale" {
		n = (n + 1) / 2
	}
	res := &FigureResult{
		Name:   figure,
		Series: []string{SeriesLP, SeriesHeuristic, SeriesBestLambda, SeriesAvgLambda},
	}
	rows, err := pool.Map(ctx, len(workload.Kinds), c.Workers, func(i int) (Row, error) {
		kind := workload.Kinds[i]
		c.logf("%s: workload %v (n=%d)", figure, kind, n)
		in, err := c.generate(kind, g, n, false, false)
		if err != nil {
			return Row{}, err
		}
		run, _, err := runAdaptive(ctx, c, in, coflow.FreePath, c.Trials,
			stats.SubSeed(c.Seed, uint64(kind)+100))
		if err != nil {
			return Row{}, fmt.Errorf("%s %v: %w", figure, kind, err)
		}
		return Row{
			Label: kind.String(),
			Values: map[string]float64{
				SeriesLP:         run.LowerBound,
				SeriesHeuristic:  run.Heuristic.Weighted,
				SeriesBestLambda: run.Stretch.BestWeighted,
				SeriesAvgLambda:  run.Stretch.AvgWeighted,
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Figure6 regenerates Figure 6 (free path, SWAN, weighted).
func Figure6(ctx context.Context, c Config) (*FigureResult, error) {
	return weightedFree(ctx, c, "SWAN", "Figure 6: free path on SWAN (weighted completion, slot units)")
}

// Figure7 regenerates Figure 7 (free path, G-Scale, weighted).
func Figure7(ctx context.Context, c Config) (*FigureResult, error) {
	return weightedFree(ctx, c, "G-Scale", "Figure 7: free path on G-Scale (weighted completion, slot units)")
}

// Figure8 regenerates Figure 8: the geometric-interval ε sweep on the
// FB workload over SWAN in the free path model.
func Figure8(ctx context.Context, c Config) (*FigureResult, error) {
	c = c.withDefaults()
	g, err := topologyFor("SWAN")
	if err != nil {
		return nil, err
	}
	in, err := c.generate(workload.FB, g, c.FreeCoflows, false, false)
	if err != nil {
		return nil, err
	}
	horizon := in.HorizonUpperBound(coflow.FreePath) + 1
	if horizon > float64(4*c.MaxSlots) {
		horizon = float64(4 * c.MaxSlots)
	}
	res := &FigureResult{
		Name:   "Figure 8: free path on SWAN, FB workload — effect of interval ε",
		Series: []string{"Interval LP(lower bound)", SeriesHeuristic},
	}
	eps := append([]float64(nil), c.EpsSweep...)
	sort.Float64s(eps)
	rows, err := pool.Map(ctx, len(eps), c.Workers, func(i int) (Row, error) {
		e := eps[i]
		c.logf("Figure 8: ε = %.4g", e)
		grid := timegrid.Geometric(horizon, e)
		l, err := model.BuildFreePath(in, grid)
		if err != nil {
			return Row{}, err
		}
		sol, err := l.Solve(ctx, simplex.Options{})
		if err != nil {
			return Row{}, fmt.Errorf("figure 8 ε=%g: %w", e, err)
		}
		heur, err := core.Heuristic(sol, core.Options{Grid: grid})
		if err != nil {
			return Row{}, fmt.Errorf("figure 8 ε=%g: %w", e, err)
		}
		return Row{
			Label: fmt.Sprintf("ε=%.4g", e),
			Values: map[string]float64{
				"Interval LP(lower bound)": sol.LowerBound,
				SeriesHeuristic:            heur.Weighted,
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// specKind is the internal/spec workload-kind name of a
// workload.Kind; ParseKind accepts the lowercased display names.
func specKind(k workload.Kind) string { return strings.ToLower(k.String()) }

// topoSpec maps the figure topology labels to spec topology names.
func topoSpec(topo string) (string, error) {
	switch topo {
	case "SWAN":
		return "swan", nil
	case "G-Scale":
		return "gscale", nil
	default:
		return "", fmt.Errorf("experiments: unknown topology %q", topo)
	}
}

// singlePath runs Figures 9 and 10: per workload, the time-indexed LP
// and heuristic, the ε=0.2 time-interval LP and heuristic, and the
// Jahanjou et al. baseline (ε=0.5436). The LP + heuristic series run
// as one declarative spec cell per workload; the interval-LP and
// baseline series reuse that cell's adaptive horizon (reported via
// the engine's grid-slots metric), so they cannot be independent
// sweep cells of their own.
func singlePath(ctx context.Context, c Config, topo, figure string) (*FigureResult, error) {
	c = c.withDefaults()
	top, err := topoSpec(topo)
	if err != nil {
		return nil, err
	}
	n := c.SingleCoflows
	if topo == "G-Scale" {
		n = (n*2 + 2) / 3
	}
	res := &FigureResult{
		Name: figure,
		Series: []string{SeriesLP, SeriesHeuristic, SeriesIntervalLP,
			SeriesIntervalHeur, SeriesJahanjou, SeriesSincronia},
	}
	rows, err := pool.Map(ctx, len(workload.Kinds), c.Workers, func(i int) (Row, error) {
		kind := workload.Kinds[i]
		c.logf("%s: workload %v (n=%d)", figure, kind, n)
		cell := spec.Spec{
			Topology: top,
			Workload: &spec.Workload{
				Kind:             specKind(kind),
				Coflows:          n,
				Seed:             stats.SubSeed(c.Seed, uint64(kind)*31+7),
				MeanInterarrival: c.MeanInterarrival,
			},
			Model:     spec.ModelSingle,
			Scheduler: "heuristic",
			Options:   spec.Options{MaxSlots: c.MaxSlots},
		}
		// Materialize the cell's instance once and run the spec cell on
		// it inline: the heuristic series and the interval-LP/baseline
		// series below then share one instance from one derivation, by
		// construction.
		in, err := cell.Materialize()
		if err != nil {
			return Row{}, err
		}
		cell.Instance, cell.Topology, cell.Workload = in, "", nil
		rep, err := spec.Run(ctx, cell)
		if err != nil {
			return Row{}, fmt.Errorf("%s %v (uniform): %w", figure, kind, err)
		}
		run := rep.Engine.Core

		// Time-interval LP (ε = 0.2) + its heuristic, growing the
		// horizon when interval snapping loses feasibility. The
		// starting horizon is the uniform cell's final (adaptive) grid,
		// reported by the heuristic scheduler as grid-slots; a missing
		// or degenerate value must fail loudly, not seed a 0 horizon.
		horizon, ok := rep.Extra["grid-slots"]
		if !ok || horizon < 1 {
			return Row{}, fmt.Errorf("%s %v: heuristic cell reported no usable grid-slots (%v)", figure, kind, horizon)
		}
		var solInt *model.Solution
		var heurInt *core.Evaluated
		var gridInt timegrid.Grid
		for h := horizon; ; h *= 2 {
			gridInt = timegrid.Geometric(h, 0.2)
			lInt, err := model.BuildSinglePath(in, gridInt)
			if err != nil {
				return Row{}, err
			}
			solInt, err = lInt.Solve(ctx, simplex.Options{})
			if err != nil {
				if core.RetryableLP(err) && h < 8*horizon {
					continue
				}
				return Row{}, fmt.Errorf("%s %v (interval): %w", figure, kind, err)
			}
			break
		}
		heurInt, err = core.Heuristic(solInt, core.Options{Grid: gridInt})
		if err != nil {
			return Row{}, err
		}

		// Jahanjou et al. with the ratio-optimizing ε; the adaptive
		// wrapper grows the horizon when the interval LP or the
		// priority fill runs out of room.
		jr, err := baselines.JahanjouAdaptive(ctx, in, horizon, baselines.JahanjouEpsilon, 0.5)
		if err != nil {
			return Row{}, fmt.Errorf("%s %v (jahanjou): %w", figure, kind, err)
		}

		// Sincronia-style bottleneck greedy (LP-free ordering).
		sg, err := baselines.SincroniaAdaptive(in, horizon)
		if err != nil {
			return Row{}, fmt.Errorf("%s %v (sincronia): %w", figure, kind, err)
		}

		return Row{
			Label: kind.String(),
			Values: map[string]float64{
				SeriesLP:           run.LowerBound,
				SeriesHeuristic:    run.Heuristic.Weighted,
				SeriesIntervalLP:   solInt.LowerBound,
				SeriesIntervalHeur: heurInt.Weighted,
				SeriesJahanjou:     jr.Weighted,
				SeriesSincronia:    sg.WeightedCompletion(),
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Figure9 regenerates Figure 9 (single path, SWAN).
func Figure9(ctx context.Context, c Config) (*FigureResult, error) {
	return singlePath(ctx, c, "SWAN", "Figure 9: single path on SWAN (weighted completion, slot units)")
}

// Figure10 regenerates Figure 10 (single path, G-Scale).
func Figure10(ctx context.Context, c Config) (*FigureResult, error) {
	return singlePath(ctx, c, "G-Scale", "Figure 10: single path on G-Scale (weighted completion, slot units)")
}

// unweightedFree runs Figures 11 and 12: unit weights, total
// completion time, against Terra.
func unweightedFree(ctx context.Context, c Config, topo, figure string) (*FigureResult, error) {
	c = c.withDefaults()
	g, err := topologyFor(topo)
	if err != nil {
		return nil, err
	}
	n := c.FreeCoflows
	if topo == "G-Scale" {
		n = (n + 1) / 2
	}
	res := &FigureResult{
		Name: figure,
		Series: []string{SeriesLP, SeriesHeuristic, SeriesBestLambda,
			SeriesAvgLambda, SeriesTerra},
	}
	rows, err := pool.Map(ctx, len(workload.Kinds), c.Workers, func(i int) (Row, error) {
		kind := workload.Kinds[i]
		c.logf("%s: workload %v (n=%d)", figure, kind, n)
		in, err := c.generate(kind, g, n, true, false)
		if err != nil {
			return Row{}, err
		}
		run, _, err := runAdaptive(ctx, c, in, coflow.FreePath, c.Trials,
			stats.SubSeed(c.Seed, uint64(kind)+200))
		if err != nil {
			return Row{}, fmt.Errorf("%s %v: %w", figure, kind, err)
		}
		tr, err := baselines.Terra(ctx, in)
		if err != nil {
			return Row{}, fmt.Errorf("%s %v (terra): %w", figure, kind, err)
		}
		// Unweighted objective: total completion time.
		lpTotal := 0.0
		for _, cs := range run.CStar {
			lpTotal += cs
		}
		return Row{
			Label: kind.String(),
			Values: map[string]float64{
				SeriesLP:         lpTotal,
				SeriesHeuristic:  run.Heuristic.Total,
				SeriesBestLambda: run.Stretch.BestTotal,
				SeriesAvgLambda:  run.Stretch.AvgTotal,
				SeriesTerra:      tr.Total,
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Figure11 regenerates Figure 11 (free path, SWAN, unit weights, vs Terra).
func Figure11(ctx context.Context, c Config) (*FigureResult, error) {
	return unweightedFree(ctx, c, "SWAN", "Figure 11: free path on SWAN (total completion, unit weights, slot units)")
}

// Figure12 regenerates Figure 12 (free path, G-Scale, unit weights, vs Terra).
func Figure12(ctx context.Context, c Config) (*FigureResult, error) {
	return unweightedFree(ctx, c, "G-Scale", "Figure 12: free path on G-Scale (total completion, unit weights, slot units)")
}

// Figures maps figure numbers to their harnesses. Every harness
// takes a context and stops between cells when it is cancelled.
var Figures = map[int]func(context.Context, Config) (*FigureResult, error){
	6: Figure6, 7: Figure7, 8: Figure8, 9: Figure9,
	10: Figure10, 11: Figure11, 12: Figure12,
}
