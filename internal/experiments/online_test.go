package experiments

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestFigureO1Shape(t *testing.T) {
	c := Small()
	res, err := FigureO1(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(workload.Kinds) * len(c.Loads); len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	if len(res.Series) != 1+len(O1Policies) {
		t.Fatalf("series = %v", res.Series)
	}
	for _, row := range res.Rows {
		for _, s := range res.Series {
			v, ok := row.Values[s]
			if !ok || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Fatalf("row %q series %q: bad value %v", row.Label, s, v)
			}
		}
		// A clairvoyant-normalized slowdown far below 1 means the
		// offline reference or the simulator units are broken: the
		// reference runs in the same continuous time, so online
		// policies cannot systematically beat it.
		for _, p := range O1Policies {
			if row.Values[p] < 0.5 {
				t.Fatalf("row %q policy %q: slowdown %v implausibly small", row.Label, p, row.Values[p])
			}
		}
	}
}

func TestFigureO1DeterministicAcrossWorkers(t *testing.T) {
	c := Small()
	c.Workers = 1
	a, err := FigureO1(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	c.Workers = 6
	b, err := FigureO1(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Figure O1 differs across worker counts")
	}
}

func TestOnlineComparisonTable(t *testing.T) {
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: graph.SWAN(1), NumCoflows: 5, Seed: 9,
		MeanInterarrival: 1, AssignPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	res, err := OnlineComparison(context.Background(), in,
		[]string{sim.NameFIFO, sim.NameLAS}, sim.Options{MaxSlots: 16, Trials: 2}, "sincronia-greedy",
		func(policy string, clairvoyant bool, r *sim.Result) error {
			checked++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// The clairvoyant reference plus both policies pass the hook.
	if checked != 3 {
		t.Fatalf("check hook saw %d results, want 3", checked)
	}
	// Two reference rows (clairvoyant + slotted) plus one per policy.
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	if res.Rows[0].Label != "offline:sincronia-greedy" || res.Rows[0].Values["Slowdown"] != 1 {
		t.Fatalf("bad reference row %+v", res.Rows[0])
	}
	if res.Rows[1].Label != "offline:sincronia-greedy (slotted)" {
		t.Fatalf("bad slotted row %+v", res.Rows[1])
	}
	for _, row := range res.Rows[2:] {
		if row.Values["Slowdown"] <= 0 || row.Values["Weighted ΣwC"] <= 0 {
			t.Fatalf("row %q: bad values %v", row.Label, row.Values)
		}
		// The clairvoyant reference runs in the same continuous time,
		// so the online policies cannot systematically beat it; allow
		// mild heuristic noise but not the quantization deflation.
		if row.Values["Slowdown"] < 0.5 {
			t.Fatalf("row %q: slowdown %v below plausibility floor", row.Label, row.Values["Slowdown"])
		}
	}
}
