package experiments

import (
	"context"
	"reflect"
	"testing"
)

// t1Config shrinks the sweep to test scale: few coflows, a short grid,
// and no Stretch trials beyond two.
func t1Config(workers int) Config {
	c := Small()
	c.SingleCoflows = 4
	c.MaxSlots = 12
	c.Trials = 2
	c.Workers = workers
	return c
}

func TestFigureT1Small(t *testing.T) {
	res, err := FigureT1(context.Background(), t1Config(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(T1Specs) {
		t.Fatalf("%d rows for %d topology specs", len(res.Rows), len(T1Specs))
	}
	if !reflect.DeepEqual(res.Series, T1Schedulers) {
		t.Fatalf("series %v, want %v", res.Series, T1Schedulers)
	}
	for _, row := range res.Rows {
		for _, name := range T1Schedulers {
			v, ok := row.Values[name]
			if !ok {
				t.Fatalf("topology %s: no value for %s", row.Label, name)
			}
			// Ratios are to the LP lower bound: ≥ ~1 and sane.
			if v < 0.99 || v > 100 {
				t.Fatalf("topology %s: %s ratio %g out of range", row.Label, name, v)
			}
		}
	}
}

func TestFigureT1DeterministicAcrossWorkers(t *testing.T) {
	a, err := FigureT1(context.Background(), t1Config(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FigureT1(context.Background(), t1Config(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Figure T1 differs across worker counts")
	}
}
