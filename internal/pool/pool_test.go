package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := Map(context.Background(), 50, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapLowestIndexError(t *testing.T) {
	boom7 := errors.New("boom 7")
	_, err := Map(context.Background(), 20, 4, func(i int) (int, error) {
		if i == 7 {
			return 0, boom7
		}
		if i == 15 {
			return 0, fmt.Errorf("boom 15")
		}
		return i, nil
	})
	if !errors.Is(err, boom7) {
		t.Fatalf("want lowest-index error, got %v", err)
	}
}

func TestMapCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Map(ctx, 10, 4, func(i int) (int, error) { return i, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := Map(ctx, 10, 1, func(i int) (int, error) { return i, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial path: want context.Canceled, got %v", err)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 0, 4, func(i int) (int, error) { return i, nil })
	if err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
}

func TestForEachRunsAll(t *testing.T) {
	var n atomic.Int64
	if err := ForEach(context.Background(), 32, 5, func(i int) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 32 {
		t.Fatalf("ran %d of 32", n.Load())
	}
}

func TestSize(t *testing.T) {
	if s := Size(0, 100); s < 1 {
		t.Fatalf("Size(0,100) = %d", s)
	}
	if s := Size(8, 3); s != 3 {
		t.Fatalf("Size(8,3) = %d", s)
	}
	if s := Size(-1, 0); s != 1 {
		t.Fatalf("Size(-1,0) = %d", s)
	}
}

// TestStreamYieldsAll: every index arrives exactly once, from the
// calling goroutine, at several worker counts.
func TestStreamYieldsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		seen := make([]bool, 100)
		Stream(context.Background(), len(seen), workers, func(i int) int { return i * i }, func(i, v int) bool {
			if v != i*i {
				t.Fatalf("workers=%d: fn(%d) arrived as %d", workers, i, v)
			}
			if seen[i] {
				t.Fatalf("workers=%d: index %d yielded twice", workers, i)
			}
			seen[i] = true
			return true
		})
		for i, ok := range seen {
			if !ok {
				t.Fatalf("workers=%d: index %d never yielded", workers, i)
			}
		}
	}
}

// TestStreamSerialOrder: one worker streams in index order.
func TestStreamSerialOrder(t *testing.T) {
	last := -1
	Stream(context.Background(), 50, 1, func(i int) int { return i }, func(i, v int) bool {
		if i != last+1 {
			t.Fatalf("index %d after %d", i, last)
		}
		last = i
		return true
	})
	if last != 49 {
		t.Fatalf("stopped at %d", last)
	}
}

// TestStreamEarlyStop: yield returning false stops new work; at most
// consumed+workers items ever run.
func TestStreamEarlyStop(t *testing.T) {
	var ran atomic.Int64
	const workers, consume = 4, 10
	got := 0
	Stream(context.Background(), 100000, workers, func(i int) int {
		ran.Add(1)
		return i
	}, func(i, v int) bool {
		got++
		return got < consume
	})
	if got != consume {
		t.Fatalf("yielded %d, want %d", got, consume)
	}
	if r := ran.Load(); r > consume+2*workers {
		t.Fatalf("ran %d items after early stop; want ≤ %d", r, consume+2*workers)
	}
}

// TestStreamCancel: a cancelled context ends the stream without
// running the whole range.
func TestStreamCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	got := 0
	Stream(ctx, 100000, 4, func(i int) int { ran.Add(1); return i }, func(i, v int) bool {
		if got++; got == 5 {
			cancel()
		}
		return true
	})
	if r := ran.Load(); r >= 100000 {
		t.Fatal("cancelled stream ran the full range")
	}
}
