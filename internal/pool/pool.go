// Package pool provides the bounded worker pool shared by the
// scheduler engine and the experiment harnesses. Work items are
// indexed, results are collected positionally, and aggregation happens
// in index order after all workers drain — so a computation fanned out
// over any number of workers produces bit-identical output to a serial
// run, provided each item's work depends only on its index.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Size normalizes a requested worker count: values ≤ 0 mean
// GOMAXPROCS, and the count never exceeds the item count n.
func Size(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn(i) for every i in [0, n) on at most `workers`
// goroutines and returns the results in index order. If any call
// fails, the lowest-index error is returned, remaining items are
// skipped, and the partial results are discarded. A cancelled context
// stops new items and returns ctx.Err() unless an fn error (lower
// index) takes precedence.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	workers = Size(workers, n)
	if workers == 1 {
		// Serial fast path: no goroutines, same semantics.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		mu     sync.Mutex
		next   int
		failed bool
		wg     sync.WaitGroup
	)
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if failed || next >= n || ctx.Err() != nil {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					errs[i] = err
					failed = true
					mu.Unlock()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach is Map for side-effecting work with no result value.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	_, err := Map(ctx, n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
