// Package pool provides the bounded worker pool shared by the
// scheduler engine and the experiment harnesses. Work items are
// indexed, results are collected positionally, and aggregation happens
// in index order after all workers drain — so a computation fanned out
// over any number of workers produces bit-identical output to a serial
// run, provided each item's work depends only on its index.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Size normalizes a requested worker count: values ≤ 0 mean
// GOMAXPROCS, and the count never exceeds the item count n.
func Size(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn(i) for every i in [0, n) on at most `workers`
// goroutines and returns the results in index order. If any call
// fails, the lowest-index error is returned, remaining items are
// skipped, and the partial results are discarded. A cancelled context
// stops new items and returns ctx.Err() unless an fn error (lower
// index) takes precedence.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	workers = Size(workers, n)
	if workers == 1 {
		// Serial fast path: no goroutines, same semantics.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		mu     sync.Mutex
		next   int
		failed bool
		wg     sync.WaitGroup
	)
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if failed || next >= n || ctx.Err() != nil {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					errs[i] = err
					failed = true
					mu.Unlock()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach is Map for side-effecting work with no result value.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	_, err := Map(ctx, n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Stream runs fn(i) for every i in [0, n) on at most `workers`
// goroutines and calls yield with each (index, result) pair as it
// completes — in completion order, not index order — always from the
// calling goroutine. Unlike Map, results are handed off one at a time
// instead of collected: a stream over n items holds O(workers) results
// in memory, never O(n), which is what lets 100k-cell sweeps stream.
//
// Stream returns when every item has been yielded, when yield returns
// false, or when ctx is cancelled, whichever comes first. On early
// exit no new items start and in-flight results are discarded. With
// workers == 1 items run serially in index order on the calling
// goroutine, so single-worker streams are deterministic end to end.
func Stream[T any](ctx context.Context, n, workers int, fn func(i int) T, yield func(i int, v T) bool) {
	if n <= 0 {
		return
	}
	workers = Size(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			v := fn(i)
			if ctx.Err() != nil || !yield(i, v) {
				return
			}
		}
		return
	}
	type item struct {
		i int
		v T
	}
	var (
		next atomic.Int64
		stop = make(chan struct{})
		out  = make(chan item)
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				select {
				case <-stop:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				select {
				case out <- item{i, fn(i)}:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(out) }()
	for it := range out {
		// Check cancellation before yielding, so no result computed
		// after the cancel point reaches the caller.
		if ctx.Err() != nil || !yield(it.i, it.v) {
			close(stop)
			for range out { // unblock senders until the pool drains
			}
			return
		}
	}
}
