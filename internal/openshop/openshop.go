// Package openshop implements the concurrent open shop scheduling
// problem and the Section 5 reduction from it to coflow scheduling,
// which proves (2−ε)-inapproximability for both transmission models.
//
// In concurrent open shop there are m machines and n weighted jobs;
// job j needs p_{ij} units of processing on machine i, machines work
// on one job at a time, a job may be processed on several machines
// concurrently, and the objective is total weighted completion time.
//
// The package provides an exact brute-force solver for small
// instances (it is a classical fact that some priority permutation,
// applied on every machine, is optimal), the Smith-ratio list
// heuristic, the gadget reduction to coflow instances, and the mapping
// of coflow schedules back to open shop schedules used in the
// equivalence proof.
package openshop

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/schedule"
)

// Job is a concurrent open shop job.
type Job struct {
	ID     int
	Weight float64
	// Proc[i] is the processing requirement on machine i (0 = none).
	Proc []float64
}

// Instance is a concurrent open shop instance.
type Instance struct {
	Machines int
	Jobs     []Job
}

// Validate checks structural sanity.
func (in *Instance) Validate() error {
	if in.Machines <= 0 {
		return errors.New("openshop: no machines")
	}
	if len(in.Jobs) == 0 {
		return errors.New("openshop: no jobs")
	}
	for _, j := range in.Jobs {
		if j.Weight <= 0 {
			return fmt.Errorf("openshop: job %d has weight %g", j.ID, j.Weight)
		}
		if len(j.Proc) != in.Machines {
			return fmt.Errorf("openshop: job %d has %d machine entries, want %d", j.ID, len(j.Proc), in.Machines)
		}
		pos := false
		for _, p := range j.Proc {
			if p < 0 {
				return fmt.Errorf("openshop: job %d has negative processing", j.ID)
			}
			if p > 0 {
				pos = true
			}
		}
		if !pos {
			return fmt.Errorf("openshop: job %d has no processing anywhere", j.ID)
		}
	}
	return nil
}

// PermutationObjective evaluates the total weighted completion time
// when every machine processes jobs non-preemptively in the order of
// perm (a permutation of job indices). For a fixed priority order this
// per-machine list schedule is optimal.
func (in *Instance) PermutationObjective(perm []int) float64 {
	loads := make([]float64, in.Machines)
	var obj float64
	for _, j := range perm {
		job := &in.Jobs[j]
		var c float64
		for i, p := range job.Proc {
			if p > 0 {
				loads[i] += p
				if loads[i] > c {
					c = loads[i]
				}
			}
		}
		obj += job.Weight * c
	}
	return obj
}

// BruteForce returns the optimal objective and an optimal priority
// permutation by exhaustive search. Exponential: intended for n ≤ 9.
func (in *Instance) BruteForce() (float64, []int) {
	n := len(in.Jobs)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	bestPerm := append([]int(nil), perm...)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if v := in.PermutationObjective(perm); v < best {
				best = v
				copy(bestPerm, perm)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best, bestPerm
}

// SmithList is the classical heuristic: jobs ordered by total
// processing over weight (smallest first), then list scheduled.
func (in *Instance) SmithList() (float64, []int) {
	order := make([]int, len(in.Jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := &in.Jobs[order[a]], &in.Jobs[order[b]]
		ra := total(ja.Proc) / ja.Weight
		rb := total(jb.Proc) / jb.Weight
		if ra != rb {
			return ra < rb
		}
		return order[a] < order[b]
	})
	return in.PermutationObjective(order), order
}

func total(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// ToCoflow performs the Section 5 reduction: machine i becomes an
// isolated unit-bandwidth edge x_i → y_i, and job j becomes a coflow
// with one flow of demand p_{ij} on every machine it uses. Weights
// carry over. The coflow instance is valid in both transmission models
// (each pair admits exactly one path), and paths are pre-assigned.
func (in *Instance) ToCoflow() (*coflow.Instance, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	g := graph.Gadget(in.Machines)
	ci := &coflow.Instance{Graph: g}
	for _, job := range in.Jobs {
		c := coflow.Coflow{ID: job.ID, Weight: job.Weight}
		for i, p := range job.Proc {
			if p <= 0 {
				continue
			}
			x, y := graph.GadgetPair(g, i)
			// The single edge out of x_i is the path.
			path := []graph.EdgeID{g.OutEdges(x)[0]}
			c.Flows = append(c.Flows, coflow.Flow{
				Source: x, Sink: y, Demand: p, Path: path,
			})
		}
		ci.Coflows = append(ci.Coflows, c)
	}
	return ci, nil
}

// FromCoflowSchedule maps a feasible coflow schedule on the reduction
// instance back to a non-preemptive open shop schedule, as in the
// proof of Theorem 5.1: per machine, jobs are ordered by their flow
// completion times in the coflow schedule and re-listed
// non-preemptively, which never increases any completion time. It
// returns the open shop total weighted completion, which is ≤ the
// coflow schedule's objective.
func (in *Instance) FromCoflowSchedule(s *schedule.Schedule) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	flowCT := s.FlowCompletionTimes()
	// machineOrder[i] = job indices using machine i, sorted by coflow
	// flow completion time.
	type entry struct {
		job int
		ct  float64
	}
	perMachine := make([][]entry, in.Machines)
	for f, ref := range s.Flows {
		// Identify the machine from the flow's source node name "x<i>".
		src := s.Inst.FlowAt(ref).Source
		var machine int
		if _, err := fmt.Sscanf(s.Inst.Graph.NodeName(src), "x%d", &machine); err != nil {
			return 0, fmt.Errorf("openshop: schedule is not on a gadget graph: node %q",
				s.Inst.Graph.NodeName(src))
		}
		perMachine[machine] = append(perMachine[machine], entry{job: ref.Coflow, ct: flowCT[f]})
	}
	jobCompletion := make([]float64, len(in.Jobs))
	for i := 0; i < in.Machines; i++ {
		es := perMachine[i]
		sort.SliceStable(es, func(a, b int) bool {
			if es[a].ct != es[b].ct {
				return es[a].ct < es[b].ct
			}
			return es[a].job < es[b].job
		})
		var load float64
		for _, e := range es {
			load += in.Jobs[e.job].Proc[i]
			if load > jobCompletion[e.job] {
				jobCompletion[e.job] = load
			}
		}
	}
	var obj float64
	for j, c := range jobCompletion {
		obj += in.Jobs[j].Weight * c
	}
	return obj, nil
}
