package openshop

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/coflow"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/timegrid"
)

// randomInstance draws a small concurrent open shop instance.
func randomInstance(r *rand.Rand, maxJobs, maxMachines int) *Instance {
	m := 1 + r.Intn(maxMachines)
	n := 1 + r.Intn(maxJobs)
	in := &Instance{Machines: m}
	for j := 0; j < n; j++ {
		job := Job{ID: j, Weight: 1 + float64(r.Intn(9)), Proc: make([]float64, m)}
		used := false
		for i := 0; i < m; i++ {
			if r.Float64() < 0.6 {
				job.Proc[i] = float64(1 + r.Intn(5))
				used = true
			}
		}
		if !used {
			job.Proc[r.Intn(m)] = float64(1 + r.Intn(5))
		}
		in.Jobs = append(in.Jobs, job)
	}
	return in
}

func TestValidate(t *testing.T) {
	good := &Instance{Machines: 2, Jobs: []Job{{ID: 0, Weight: 1, Proc: []float64{1, 0}}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Instance{
		{Machines: 0, Jobs: []Job{{Weight: 1, Proc: nil}}},
		{Machines: 1},
		{Machines: 1, Jobs: []Job{{Weight: 0, Proc: []float64{1}}}},
		{Machines: 2, Jobs: []Job{{Weight: 1, Proc: []float64{1}}}},
		{Machines: 1, Jobs: []Job{{Weight: 1, Proc: []float64{-1}}}},
		{Machines: 1, Jobs: []Job{{Weight: 1, Proc: []float64{0}}}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPermutationObjectiveByHand(t *testing.T) {
	// 2 machines, 2 jobs: p1=(2,1), p2=(1,2), weights 1.
	// Order (1,2): C1 = max(2,1)=2; machine loads (3,3): C2 = 3. Obj 5.
	in := &Instance{Machines: 2, Jobs: []Job{
		{ID: 0, Weight: 1, Proc: []float64{2, 1}},
		{ID: 1, Weight: 1, Proc: []float64{1, 2}},
	}}
	if got := in.PermutationObjective([]int{0, 1}); got != 5 {
		t.Fatalf("obj = %v, want 5", got)
	}
	if got := in.PermutationObjective([]int{1, 0}); got != 5 {
		t.Fatalf("reverse obj = %v, want 5", got)
	}
}

func TestBruteForceAgainstExhaustiveEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 5, 3)
		opt, perm := in.BruteForce()
		if got := in.PermutationObjective(perm); math.Abs(got-opt) > 1e-9 {
			t.Fatalf("returned perm evaluates to %v, claims %v", got, opt)
		}
		// No single swap improves (local optimality sanity).
		for a := 0; a < len(perm); a++ {
			for b := a + 1; b < len(perm); b++ {
				perm[a], perm[b] = perm[b], perm[a]
				if v := in.PermutationObjective(perm); v < opt-1e-9 {
					t.Fatalf("swap found better value %v < %v", v, opt)
				}
				perm[a], perm[b] = perm[b], perm[a]
			}
		}
	}
}

func TestSmithListNeverBelowOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, 6, 3)
		opt, _ := in.BruteForce()
		smith, _ := in.SmithList()
		// Heuristic sits between OPT and 2·OPT (Smith list is a known
		// 2-approximation for concurrent open shop).
		return smith >= opt-1e-9 && smith <= 2*opt+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestReductionShapes(t *testing.T) {
	in := &Instance{Machines: 3, Jobs: []Job{
		{ID: 0, Weight: 2, Proc: []float64{1, 0, 4}},
		{ID: 1, Weight: 1, Proc: []float64{0, 2, 0}},
	}}
	ci, err := in.ToCoflow()
	if err != nil {
		t.Fatal(err)
	}
	if len(ci.Coflows) != 2 {
		t.Fatalf("coflows = %d", len(ci.Coflows))
	}
	if len(ci.Coflows[0].Flows) != 2 || len(ci.Coflows[1].Flows) != 1 {
		t.Fatalf("flow counts wrong: %d, %d", len(ci.Coflows[0].Flows), len(ci.Coflows[1].Flows))
	}
	if err := ci.Validate(coflow.SinglePath); err != nil {
		t.Fatal(err)
	}
	if err := ci.Validate(coflow.FreePath); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem51EndToEnd(t *testing.T) {
	// The full Section 5 pipeline: reduce, schedule with the paper's
	// algorithm, map back. Invariants (both directions of the proof):
	//   openshopOPT ≤ mapped-back value ≤ coflow schedule objective
	//   LP bound ≤ openshopOPT (reduction preserves optima).
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		in := randomInstance(rng, 4, 3)
		opt, _ := in.BruteForce()
		ci, err := in.ToCoflow()
		if err != nil {
			t.Fatal(err)
		}
		grid := core.DefaultGrid(ci, coflow.SinglePath, 64)
		res, err := core.Run(context.Background(), ci, coflow.SinglePath, core.Options{Grid: grid})
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := in.FromCoflowSchedule(res.Heuristic.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		if mapped > res.Heuristic.Weighted+1e-6 {
			t.Fatalf("trial %d: mapped open-shop value %v exceeds coflow objective %v",
				trial, mapped, res.Heuristic.Weighted)
		}
		if mapped < opt-1e-6 {
			t.Fatalf("trial %d: mapped value %v beats the open-shop optimum %v", trial, mapped, opt)
		}
		if res.LowerBound > opt+1e-6 {
			t.Fatalf("trial %d: coflow LP bound %v exceeds open-shop optimum %v",
				trial, res.LowerBound, opt)
		}
		// Empirical approximation factor of the whole pipeline stays
		// within the theory (2×) plus slack for slot quantization.
		if res.Heuristic.Weighted > 2.5*opt+1e-6 {
			t.Fatalf("trial %d: heuristic %v far above 2×OPT (%v)", trial, res.Heuristic.Weighted, 2*opt)
		}
	}
}

func TestFromCoflowScheduleRejectsWrongGraph(t *testing.T) {
	in := &Instance{Machines: 1, Jobs: []Job{{ID: 0, Weight: 1, Proc: []float64{2}}}}
	// Build a schedule whose graph is NOT a gadget (node names v0, v1).
	g := graph.Line(2, 1)
	ci := &coflow.Instance{Graph: g, Coflows: []coflow.Coflow{{
		ID: 0, Weight: 1,
		Flows: []coflow.Flow{{Source: g.MustNode("v0"), Sink: g.MustNode("v1"),
			Demand: 2, Path: []graph.EdgeID{0}}},
	}}}
	res, err := core.Run(context.Background(), ci, coflow.SinglePath,
		core.Options{Grid: timegrid.Uniform(4)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.FromCoflowSchedule(res.Heuristic.Schedule); err == nil {
		t.Fatal("expected error for non-gadget schedule")
	}
}
