package engine

import (
	"context"
	"math"
	"testing"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/workload"
)

// testInstance generates a small FB workload on SWAN; paths makes it
// valid for the single path model too.
func testInstance(t *testing.T, paths bool, n int) *coflow.Instance {
	t.Helper()
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: graph.SWAN(1), NumCoflows: n, Seed: 7,
		MeanInterarrival: 1, AssignPaths: paths,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRegistryListsBuiltins(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("registry has %d schedulers, want ≥ 5: %v", len(names), names)
	}
	for _, want := range []string{NameStretch, NameHeuristic, NameTerra, NameJahanjou, NameSincronia} {
		if _, err := Get(want); err != nil {
			t.Errorf("missing built-in scheduler %q: %v", want, err)
		}
	}
	if _, err := Get("no-such-scheduler"); err == nil {
		t.Error("unknown name accepted")
	}
}

// TestEverySchedulerRuns exercises each registered scheduler on an
// instance in a model it supports and sanity-checks the Result.
func TestEverySchedulerRuns(t *testing.T) {
	single := testInstance(t, true, 5)
	free := testInstance(t, false, 3)
	opt := Options{MaxSlots: 24, Trials: 3, Seed: 1}
	for _, name := range Names() {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		var in *coflow.Instance
		var mode coflow.Model
		switch {
		case s.Supports(coflow.SinglePath):
			in, mode = single, coflow.SinglePath
		case s.Supports(coflow.FreePath):
			in, mode = free, coflow.FreePath
		default:
			t.Fatalf("%s supports no testable model", name)
		}
		res, err := Schedule(context.Background(), name, in, mode, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Scheduler != name || res.Mode != mode {
			t.Fatalf("%s: result mislabeled: %+v", name, res)
		}
		if res.Weighted <= 0 || res.Total <= 0 {
			t.Fatalf("%s: non-positive objective %v / %v", name, res.Weighted, res.Total)
		}
		if len(res.Completions) != len(in.Coflows) {
			t.Fatalf("%s: %d completions for %d coflows", name, len(res.Completions), len(in.Coflows))
		}
		if res.HasLowerBound && res.Weighted < res.LowerBound-1e-6 {
			t.Fatalf("%s: objective %v below LP bound %v", name, res.Weighted, res.LowerBound)
		}
		if res.Schedule != nil {
			if err := res.Schedule.Verify(); err != nil {
				t.Fatalf("%s: infeasible schedule: %v", name, err)
			}
		}
	}
}

func TestUnsupportedModelRejected(t *testing.T) {
	in := testInstance(t, true, 3)
	if _, err := Schedule(context.Background(), NameTerra, in, coflow.SinglePath, Options{}); err == nil {
		t.Fatal("terra accepted the single path model")
	}
	if _, err := Schedule(context.Background(), NameSincronia, in, coflow.FreePath, Options{}); err == nil {
		t.Fatal("sincronia accepted the free path model")
	}
}

func TestCancelledContext(t *testing.T) {
	in := testInstance(t, true, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Schedule(ctx, NameStretch, in, coflow.SinglePath, Options{Trials: 4}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

// TestStretchDeterministicAcrossWorkers is the engine-level
// determinism check: a fixed seed must produce bit-identical results
// at 1, 4, and 8 workers.
func TestStretchDeterministicAcrossWorkers(t *testing.T) {
	in := testInstance(t, false, 3)
	var base *Result
	for _, workers := range []int{1, 4, 8} {
		res, err := Schedule(context.Background(), NameStretch, in, coflow.FreePath,
			Options{MaxSlots: 24, Trials: 8, Seed: 42, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		st := res.Core.Stretch
		if st == nil {
			t.Fatalf("workers=%d: no stretch stats", workers)
		}
		if base == nil {
			base = res
			continue
		}
		bs := base.Core.Stretch
		if st.BestWeighted != bs.BestWeighted || st.AvgWeighted != bs.AvgWeighted ||
			st.BestLambda != bs.BestLambda || st.BestTotal != bs.BestTotal ||
			st.AvgTotal != bs.AvgTotal || st.BestTotalLmbda != bs.BestTotalLmbda {
			t.Fatalf("workers=%d: stats diverge:\n%+v\nvs\n%+v", workers, st, bs)
		}
		if res.Weighted != base.Weighted || res.Total != base.Total {
			t.Fatalf("workers=%d: result diverges: %v/%v vs %v/%v",
				workers, res.Weighted, res.Total, base.Weighted, base.Total)
		}
		for i := range st.Samples {
			if st.Samples[i].Lambda != bs.Samples[i].Lambda ||
				st.Samples[i].Weighted != bs.Samples[i].Weighted {
				t.Fatalf("workers=%d: sample %d diverges", workers, i)
			}
		}
	}
	if math.IsInf(base.Core.Stretch.BestWeighted, 1) {
		t.Fatal("no finite best objective")
	}
}

func TestNormalize(t *testing.T) {
	o := Options{}.Normalize()
	if o.MaxSlots != 48 || o.Trials != 20 {
		t.Fatalf("bad defaults: %+v", o)
	}
	if o := (Options{Trials: -1}).Normalize(); o.Trials != 0 {
		t.Fatalf("negative trials should disable: %+v", o)
	}
}
