package engine

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/workload"
)

// testInstance generates a small FB workload on SWAN; paths makes it
// valid for the single path model too.
func testInstance(t *testing.T, paths bool, n int) *coflow.Instance {
	t.Helper()
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: graph.SWAN(1), NumCoflows: n, Seed: 7,
		MeanInterarrival: 1, AssignPaths: paths,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRegistryListsBuiltins(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("registry has %d schedulers, want ≥ 5: %v", len(names), names)
	}
	for _, want := range []string{NameStretch, NameHeuristic, NameTerra, NameJahanjou, NameSincronia} {
		if _, err := Get(want); err != nil {
			t.Errorf("missing built-in scheduler %q: %v", want, err)
		}
	}
	if _, err := Get("no-such-scheduler"); err == nil {
		t.Error("unknown name accepted")
	}
}

// TestEverySchedulerRuns exercises each registered scheduler on an
// instance in a model it supports and sanity-checks the Result.
func TestEverySchedulerRuns(t *testing.T) {
	single := testInstance(t, true, 5)
	free := testInstance(t, false, 3)
	opt := Options{MaxSlots: 24, Trials: 3, Seed: 1}
	for _, name := range Names() {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		var in *coflow.Instance
		var mode coflow.Model
		switch {
		case s.Supports(coflow.SinglePath):
			in, mode = single, coflow.SinglePath
		case s.Supports(coflow.FreePath):
			in, mode = free, coflow.FreePath
		default:
			// Test-only schedulers registered by other tests in this
			// package may support nothing runnable here.
			continue
		}
		res, err := Schedule(context.Background(), name, in, mode, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Scheduler != name || res.Mode != mode {
			t.Fatalf("%s: result mislabeled: %+v", name, res)
		}
		if res.Weighted <= 0 || res.Total <= 0 {
			t.Fatalf("%s: non-positive objective %v / %v", name, res.Weighted, res.Total)
		}
		if len(res.Completions) != len(in.Coflows) {
			t.Fatalf("%s: %d completions for %d coflows", name, len(res.Completions), len(in.Coflows))
		}
		if res.HasLowerBound && res.Weighted < res.LowerBound-1e-6 {
			t.Fatalf("%s: objective %v below LP bound %v", name, res.Weighted, res.LowerBound)
		}
		if res.Schedule != nil {
			if err := res.Schedule.Verify(); err != nil {
				t.Fatalf("%s: infeasible schedule: %v", name, err)
			}
		}
	}
}

func TestUnsupportedModelRejected(t *testing.T) {
	in := testInstance(t, true, 3)
	if _, err := Schedule(context.Background(), NameTerra, in, coflow.SinglePath, Options{}); err == nil {
		t.Fatal("terra accepted the single path model")
	}
	if _, err := Schedule(context.Background(), NameSincronia, in, coflow.FreePath, Options{}); err == nil {
		t.Fatal("sincronia accepted the free path model")
	}
}

func TestCancelledContext(t *testing.T) {
	in := testInstance(t, true, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Schedule(ctx, NameStretch, in, coflow.SinglePath, Options{Trials: 4}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

// TestStretchDeterministicAcrossWorkers is the engine-level
// determinism check: a fixed seed must produce bit-identical results
// at 1, 4, and 8 workers.
func TestStretchDeterministicAcrossWorkers(t *testing.T) {
	in := testInstance(t, false, 3)
	var base *Result
	for _, workers := range []int{1, 4, 8} {
		res, err := Schedule(context.Background(), NameStretch, in, coflow.FreePath,
			Options{MaxSlots: 24, Trials: 8, Seed: 42, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		st := res.Core.Stretch
		if st == nil {
			t.Fatalf("workers=%d: no stretch stats", workers)
		}
		if base == nil {
			base = res
			continue
		}
		bs := base.Core.Stretch
		if st.BestWeighted != bs.BestWeighted || st.AvgWeighted != bs.AvgWeighted ||
			st.BestLambda != bs.BestLambda || st.BestTotal != bs.BestTotal ||
			st.AvgTotal != bs.AvgTotal || st.BestTotalLmbda != bs.BestTotalLmbda {
			t.Fatalf("workers=%d: stats diverge:\n%+v\nvs\n%+v", workers, st, bs)
		}
		if res.Weighted != base.Weighted || res.Total != base.Total {
			t.Fatalf("workers=%d: result diverges: %v/%v vs %v/%v",
				workers, res.Weighted, res.Total, base.Weighted, base.Total)
		}
		for i := range st.Samples {
			if st.Samples[i].Lambda != bs.Samples[i].Lambda ||
				st.Samples[i].Weighted != bs.Samples[i].Weighted {
				t.Fatalf("workers=%d: sample %d diverges", workers, i)
			}
		}
	}
	if math.IsInf(base.Core.Stretch.BestWeighted, 1) {
		t.Fatal("no finite best objective")
	}
}

func TestNormalize(t *testing.T) {
	o := Options{}.Normalize()
	if o.MaxSlots != 48 || o.Trials != 20 {
		t.Fatalf("bad defaults: %+v", o)
	}
	if o := (Options{Trials: -1}).Normalize(); o.Trials != 0 {
		t.Fatalf("negative trials should disable: %+v", o)
	}
}

// fakeScheduler is a registrable stub for registry edge-case tests. It
// supports only the multi path model so TestEverySchedulerRuns skips
// it, and blocks in Schedule until the context is done when block is
// set.
type fakeScheduler struct {
	name  string
	block bool
}

func (f fakeScheduler) Name() string                 { return f.name }
func (f fakeScheduler) Supports(m coflow.Model) bool { return m == coflow.MultiPath }
func (f fakeScheduler) Schedule(ctx context.Context, inst *coflow.Instance, opt Options) (*Result, error) {
	if f.block {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return &Result{Completions: make([]float64, len(inst.Coflows))}, nil
}

// ensureRegistered registers s unless its name is already taken: the
// registry is process-global, so repeated passes of the same test
// binary (-count=2) must not re-register.
func ensureRegistered(s Scheduler) {
	if _, err := Get(s.Name()); err != nil {
		Register(s)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	ensureRegistered(fakeScheduler{name: "zz-test-dup"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(fakeScheduler{name: "zz-test-dup"})
}

func TestUnknownNameListsRegistry(t *testing.T) {
	_, err := Get("no-such-scheduler")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	for _, want := range []string{NameStretch, NameHeuristic, NameTerra, NameJahanjou, NameSincronia} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list %q", err, want)
		}
	}
	if _, err := Schedule(context.Background(), "no-such-scheduler", testInstance(t, true, 1),
		coflow.SinglePath, Options{}); err == nil {
		t.Fatal("Schedule dispatched an unknown name")
	}
}

// TestCancellationMidSchedule cancels a context while a scheduler is
// blocked inside Schedule and asserts the engine surfaces the
// cancellation instead of hanging — the path TestCancelledContext
// (pre-dispatch check) cannot reach.
func TestCancellationMidSchedule(t *testing.T) {
	ensureRegistered(fakeScheduler{name: "zz-test-block", block: true})
	in := testInstance(t, true, 1)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := Schedule(ctx, "zz-test-block", in, coflow.MultiPath, Options{})
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v does not wrap context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Schedule did not return after cancellation")
	}
}

// TestNamesSupportingExcludesIncompatible pins the model filtering the
// sim adapters and CLI rely on.
func TestNamesSupportingExcludesIncompatible(t *testing.T) {
	for _, n := range NamesSupporting(coflow.SinglePath) {
		if n == NameTerra {
			t.Fatal("terra listed as single path capable")
		}
	}
	for _, n := range NamesSupporting(coflow.FreePath) {
		if n == NameJahanjou || n == NameSincronia {
			t.Fatalf("%s listed as free path capable", n)
		}
	}
}
