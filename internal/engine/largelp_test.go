package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/coflow"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/workload"
)

// TestLargeLPRobustness pins the fix for the ROADMAP "large-LP
// numerical robustness" failure. The clairvoyant stretch reference on
// leaf-spine at 30 coflows (MaxSlots 48) used to burn 62k+ simplex
// pivots and then die deterministically with `basis refactorization
// failed: lu: matrix is singular`. With threshold pivoting in the LU,
// Harris ratio tests plus stall perturbation in the simplex,
// refactor-and-repair on singular bases, the horizon lower-bound
// preskip, and the greedy warm-start basis, the same instance now
// solves to optimality in one logical solve at under a third of the
// old pivot count. This test runs by default so a regression in any
// of those layers — a singular error resurfacing, or pivot counts
// creeping back toward the old pathology — fails CI instead of hiding
// behind an env var.
//
// The solve is deterministic, so the pivot ceiling is not flaky: the
// measured count is 19405, and the ceiling of 20000 is the acceptance
// bound the robustness work was held to. Skipped in -short runs and
// under the race detector, where the wall-clock bound is meaningless.
func TestLargeLPRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("large-LP robustness regression skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("large-LP robustness regression skipped under the race detector")
	}
	top, err := topo.New("leaf-spine:leaves=3,spines=2,hosts=2")
	if err != nil {
		t.Fatal(err)
	}
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: top.Graph, NumCoflows: 30, Seed: 2000,
		MeanInterarrival: 1.2, AssignPaths: true, Endpoints: top.Endpoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	start := time.Now()
	res, err := Schedule(context.Background(), NameStretch, in, coflow.SinglePath, Options{
		MaxSlots: 48,
		Trials:   1,
		Obs:      reg,
	})
	elapsed := time.Since(start)
	snap := reg.Snapshot()
	pivots := snap.Counters["simplex_pivots_total"]
	t.Logf("large-LP regression: pivots=%d refactorizations=%d repairs=%d solves=%d retries=%d elapsed=%s",
		pivots,
		snap.Counters["simplex_refactorizations_total"],
		snap.Counters["simplex_repairs_total"],
		snap.Counters["simplex_solves_total"],
		snap.Counters[`simplex_solve_retries_total{reason="singular"}`],
		elapsed)
	if err != nil {
		t.Fatalf("the large LP must solve cleanly now (was the known-singular baseline): %v", err)
	}
	if res == nil || !res.HasLowerBound || res.LowerBound <= 0 {
		t.Fatalf("schedule succeeded but reported no LP lower bound: %+v", res)
	}
	// The old failure burned 62k pivots before dying; the fixed stack
	// lands at 19405. A ceiling of 20000 catches any drift back toward
	// the degenerate-stall pathology while leaving headroom only for
	// benign float-level variation.
	if pivots >= 20000 {
		t.Errorf("pivot count regressed: %d >= 20000 (fixed baseline is 19405)", pivots)
	}
	// Generous wall-clock bound: the solve takes well under a minute on
	// a developer machine; minutes of pivoting means the stall
	// pathology is back.
	if limit := 5 * time.Minute; elapsed > limit {
		t.Errorf("solve took %s, over the %s regression bound", elapsed, limit)
	}
}
