package engine

import (
	"context"
	"os"
	"strings"
	"testing"

	"repro/internal/coflow"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/workload"
)

// TestLargeLPSingularBaseline pins the ROADMAP "large-LP numerical
// robustness" failure as a tracked regression: a clairvoyant stretch
// reference on leaf-spine at 30 coflows (MaxSlots 48) burns tens of
// thousands of simplex pivots and then dies deterministically with
// `basis refactorization failed: lu: matrix is singular`. The test
// records the pivot/refactorization counts through the simplex
// telemetry so the failure has a measurable baseline; whoever fixes
// the solver (threshold pivoting, Harris ratio tests, refactor-and-
// repair) will see this test flip to "unexpectedly succeeded" and
// should then invert the assertion and retire the ROADMAP item.
//
// Skipped by default — the doomed solve runs for minutes. Opt in with
// REPRO_LARGE_LP=1.
func TestLargeLPSingularBaseline(t *testing.T) {
	if os.Getenv("REPRO_LARGE_LP") == "" {
		t.Skip("set REPRO_LARGE_LP=1 to run the large-LP singularity baseline (minutes of doomed pivoting)")
	}
	top, err := topo.New("leaf-spine:leaves=3,spines=2,hosts=2")
	if err != nil {
		t.Fatal(err)
	}
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: top.Graph, NumCoflows: 30, Seed: 2000,
		MeanInterarrival: 1.2, AssignPaths: true, Endpoints: top.Endpoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	_, err = Schedule(context.Background(), NameStretch, in, coflow.SinglePath, Options{
		MaxSlots: 48,
		Trials:   -1, // the LP never solves; rounding trials are moot
		Obs:      reg,
	})
	snap := reg.Snapshot()
	t.Logf("large-LP baseline: pivots=%d refactorizations=%d solves=%d lu_factorizations=%d",
		snap.Counters["simplex_pivots_total"],
		snap.Counters["simplex_refactorizations_total"],
		snap.Counters["simplex_solves_total"],
		snap.Counters["lu_factorizations_total"])
	if err == nil {
		t.Fatal("the known-singular leaf-spine LP solved cleanly: the ROADMAP robustness item may be fixed — invert this test and update ROADMAP.md")
	}
	if !strings.Contains(err.Error(), "singular") {
		t.Fatalf("expected the singular-basis failure, got a different error: %v", err)
	}
	if snap.Counters["simplex_pivots_total"] == 0 {
		t.Fatal("failure reported no pivots: telemetry did not flush on the error path")
	}
}
