//go:build !race

package engine

// raceEnabled mirrors the race detector's build tag so scale tests can
// skip runs whose wall-clock bound assumes uninstrumented code.
const raceEnabled = false
