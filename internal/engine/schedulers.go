package engine

import (
	"context"

	"repro/internal/baselines"
	"repro/internal/coflow"
	"repro/internal/core"
	"repro/internal/simplex"
	"repro/internal/timegrid"
)

// Registry names of the built-in schedulers.
const (
	NameStretch   = "stretch"
	NameHeuristic = "heuristic"
	NameTerra     = "terra"
	NameJahanjou  = "jahanjou"
	NameSincronia = "sincronia-greedy"
)

func init() {
	Register(stretchScheduler{})
	Register(heuristicScheduler{})
	Register(terraScheduler{})
	Register(jahanjouScheduler{})
	Register(sincroniaScheduler{})
}

// runCore executes the Stretch pipeline with the shared adaptive
// grid policy (core.RunAdaptive doubles the slot count when the
// horizon proves too short) and returns the grid that succeeded.
func runCore(ctx context.Context, inst *coflow.Instance, opt Options, trials int) (*core.Result, timegrid.Grid, error) {
	return core.RunAdaptive(ctx, inst, opt.Mode, opt.MaxSlots, core.Options{
		DisableCompaction: opt.DisableCompaction,
		Trials:            trials,
		Seed:              opt.Seed,
		Workers:           opt.Workers,
		WarmBasis:         opt.WarmBasis,
		Obs:               opt.Obs,
	}, nil)
}

// stretchScheduler is the paper's full pipeline: time-indexed LP,
// λ=1 heuristic, and k randomized Stretch roundings in parallel. The
// reported schedule is the best of heuristic and all roundings.
type stretchScheduler struct{}

func (stretchScheduler) Name() string                 { return NameStretch }
func (stretchScheduler) Supports(m coflow.Model) bool { return supportedCoreModel(m) }
func (s stretchScheduler) Schedule(ctx context.Context, inst *coflow.Instance, opt Options) (*Result, error) {
	cr, grid, err := runCore(ctx, inst, opt, opt.Trials)
	if err != nil {
		return nil, err
	}
	res := fromCore(cr)
	res.Extra["grid-slots"] = float64(grid.NumSlots())
	if cr.Stretch != nil {
		res.Extra["best-lambda"] = cr.Stretch.BestLambda
		res.Extra["avg-weighted"] = cr.Stretch.AvgWeighted
		res.Extra["avg-total"] = cr.Stretch.AvgTotal
		// Prefer the best rounding when it beats the heuristic.
		best := cr.Heuristic
		for i := range cr.Stretch.Samples {
			if ev := &cr.Stretch.Samples[i]; ev.Weighted < best.Weighted {
				best = ev
			}
		}
		res.Weighted = best.Weighted
		res.Total = best.Total
		res.Completions = best.Completions
		res.Schedule = best.Schedule
	}
	return res, nil
}

// heuristicScheduler is the λ=1.0 LP heuristic alone (§6.2), the
// paper's strongest variant in practice.
type heuristicScheduler struct{}

func (heuristicScheduler) Name() string                 { return NameHeuristic }
func (heuristicScheduler) Supports(m coflow.Model) bool { return supportedCoreModel(m) }
func (heuristicScheduler) Schedule(ctx context.Context, inst *coflow.Instance, opt Options) (*Result, error) {
	cr, grid, err := runCore(ctx, inst, opt, 0)
	if err != nil {
		return nil, err
	}
	res := fromCore(cr)
	// The successful grid length: harnesses that layer interval LPs or
	// horizon-parameterized baselines on top of a heuristic cell reuse
	// it as their horizon.
	res.Extra["grid-slots"] = float64(grid.NumSlots())
	return res, nil
}

// terraScheduler wraps the Terra SRTF baseline (free path only,
// unweighted objective).
type terraScheduler struct{}

func (terraScheduler) Name() string                 { return NameTerra }
func (terraScheduler) Supports(m coflow.Model) bool { return m == coflow.FreePath }
func (terraScheduler) Schedule(ctx context.Context, inst *coflow.Instance, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr, err := baselines.Terra(ctx, inst)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Completions: tr.Completions,
		Total:       tr.Total,
		Extra:       map[string]float64{"lp-solves": float64(tr.LPSolves)},
	}
	// Terra optimizes total completion time; report the weighted sum
	// too so mixed tables stay comparable.
	for j, c := range tr.Completions {
		res.Weighted += inst.Coflows[j].Weight * c
	}
	return res, nil
}

// jahanjouScheduler wraps the Jahanjou et al. α-point baseline
// (single path only).
type jahanjouScheduler struct{}

func (jahanjouScheduler) Name() string                 { return NameJahanjou }
func (jahanjouScheduler) Supports(m coflow.Model) bool { return m == coflow.SinglePath }
func (jahanjouScheduler) Schedule(ctx context.Context, inst *coflow.Instance, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	horizon := core.DefaultGrid(inst, opt.Mode, opt.MaxSlots).Horizon()
	jr, err := baselines.JahanjouAdaptive(ctx, inst, horizon, baselines.JahanjouEpsilon, 0.5)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Weighted:      jr.Weighted,
		Completions:   jr.Completions,
		Schedule:      jr.Schedule,
		LowerBound:    jr.LowerBound,
		HasLowerBound: true,
		Extra:         map[string]float64{},
	}
	for _, c := range jr.Completions {
		res.Total += c
	}
	return res, nil
}

// sincroniaScheduler is the LP-free bottleneck-ordering greedy
// (single path only): BSSI permutation + priority water-filling.
type sincroniaScheduler struct{}

func (sincroniaScheduler) Name() string                 { return NameSincronia }
func (sincroniaScheduler) Supports(m coflow.Model) bool { return m == coflow.SinglePath }
func (sincroniaScheduler) Schedule(ctx context.Context, inst *coflow.Instance, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := baselines.SincroniaAdaptive(inst, core.DefaultGrid(inst, opt.Mode, opt.MaxSlots).Horizon())
	if err != nil {
		return nil, err
	}
	res := &Result{
		Schedule:    s,
		Completions: s.CompletionTimes(),
		Weighted:    s.WeightedCompletion(),
		Extra:       map[string]float64{},
	}
	for _, c := range res.Completions {
		res.Total += c
	}
	return res, nil
}

// fromCore builds the common Result fields from a pipeline run, using
// the λ=1 heuristic as the reported schedule. Extra["warm-start"] is
// the numeric simplex.WarmOutcome code (0 none, 1 accepted, 2+ the
// rejection reason), present only when a warm basis was supplied, so
// harnesses can tell a silent cold fallback from a genuine warm solve.
func fromCore(cr *core.Result) *Result {
	extra := map[string]float64{"simplex-iterations": float64(cr.Iterations)}
	if cr.WarmStart != simplex.WarmNone {
		extra["warm-start"] = float64(cr.WarmStart)
	}
	return &Result{
		Weighted:      cr.Heuristic.Weighted,
		Total:         cr.Heuristic.Total,
		Completions:   cr.Heuristic.Completions,
		Schedule:      cr.Heuristic.Schedule,
		LowerBound:    cr.LowerBound,
		HasLowerBound: true,
		Core:          cr,
		Extra:         extra,
	}
}

func supportedCoreModel(m coflow.Model) bool {
	switch m {
	case coflow.SinglePath, coflow.FreePath, coflow.MultiPath:
		return true
	}
	return false
}
