// Package engine unifies every scheduling algorithm in the repository
// behind one interface. The paper's Stretch pipeline, its λ=1 LP
// heuristic, and the prior-work baselines (Terra, Jahanjou et al., a
// Sincronia-style bottleneck greedy) all register themselves as
// Schedulers in a package-level registry, so harnesses, the CLI, and
// future variants select algorithms by name instead of hard-wiring
// call paths. Adding a scheduler means implementing the three-method
// interface and calling Register — no new plumbing.
//
// The engine also owns the parallelism policy: LP-pipeline schedulers
// fan their randomized Stretch roundings out over a bounded worker
// pool (internal/pool) with per-trial RNGs derived from the base seed,
// so results are reproducible at any worker count.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/coflow"
	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/schedule"
)

// Options tune a Schedule call. The zero value uses the same defaults
// as the top-level API: a 48-slot grid cap and 20 Stretch trials.
type Options struct {
	// Mode is the transmission model to schedule in. Callers going
	// through the package-level Schedule func may leave it unset and
	// pass the model there instead.
	Mode coflow.Model
	// MaxSlots caps the uniform time grid (0 = 48).
	MaxSlots int
	// Trials is the number of randomized Stretch roundings for
	// schedulers that use them (0 = 20; negative disables).
	Trials int
	// Seed drives all randomness deterministically.
	Seed int64
	// Workers bounds the goroutines a scheduler may use (≤ 0 =
	// GOMAXPROCS). Results never depend on the worker count.
	Workers int
	// DisableCompaction turns off the Section 6.1 idle-slot pass for
	// schedulers that compact.
	DisableCompaction bool
	// WarmBasis warm-starts the LP solve of LP-based schedulers from a
	// basis exported by a previous related run (Result.Core.Basis).
	// Non-LP schedulers ignore it; results are unaffected either way.
	WarmBasis *lp.Basis
	// Obs, when non-nil, receives scheduling telemetry (per-scheduler
	// timings plus everything the core pipeline and simplex record).
	// Purely observational: results are bit-identical with or without
	// a registry.
	Obs *obs.Registry
}

// Normalize fills in defaults.
func (o Options) Normalize() Options {
	if o.MaxSlots == 0 {
		o.MaxSlots = 48
	}
	if o.Trials == 0 {
		o.Trials = 20
	}
	if o.Trials < 0 {
		o.Trials = 0
	}
	return o
}

// Result is the uniform outcome type every scheduler returns, so
// harnesses can tabulate algorithms side by side without caring which
// family produced a number.
type Result struct {
	// Scheduler is the registry name of the algorithm that ran.
	Scheduler string
	// Mode is the transmission model the instance was scheduled in.
	Mode coflow.Model
	// Weighted is Σ w_j C_j of the scheduler's chosen schedule.
	Weighted float64
	// Total is Σ C_j (the unweighted objective).
	Total float64
	// Completions holds per-coflow completion times in slot units.
	Completions []float64
	// LowerBound is the LP lower bound when the scheduler solves one
	// (0 for LP-free schedulers; check HasLowerBound).
	LowerBound float64
	// HasLowerBound reports whether LowerBound is meaningful.
	HasLowerBound bool
	// Schedule is the feasibility-verified schedule, when the
	// algorithm produces an explicit one (Terra simulates in
	// continuous time and leaves it nil).
	Schedule *schedule.Schedule
	// Core carries the full Stretch pipeline output for the schedulers
	// built on it (stretch, heuristic); nil otherwise.
	Core *core.Result
	// Extra holds per-scheduler metrics (e.g. "best-lambda",
	// "lp-solves") that don't fit the common fields.
	Extra map[string]float64
}

// Scheduler is one coflow scheduling algorithm.
type Scheduler interface {
	// Name is the registry key (stable, flag-friendly).
	Name() string
	// Supports reports whether the algorithm handles the model.
	Supports(m coflow.Model) bool
	// Schedule solves the instance. Implementations must be safe for
	// concurrent use and deterministic in (instance, Options).
	Schedule(ctx context.Context, inst *coflow.Instance, opt Options) (*Result, error)
}

// registry is the process-wide scheduler table.
var (
	regMu    sync.RWMutex
	registry = map[string]Scheduler{}
)

// Register adds a scheduler under its Name. Registering a duplicate
// name panics: it is a programming error, caught at init time.
func Register(s Scheduler) {
	regMu.Lock()
	defer regMu.Unlock()
	name := s.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate scheduler %q", name))
	}
	registry[name] = s
}

// Get returns the named scheduler, or an error naming the known ones.
func Get(name string) (Scheduler, error) {
	regMu.RLock()
	s, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown scheduler %q (have %v)", name, Names())
	}
	return s, nil
}

// Names lists registered schedulers in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NamesSupporting lists registered schedulers that support the model,
// in sorted order.
func NamesSupporting(m coflow.Model) []string {
	var names []string
	for _, n := range Names() {
		if s, err := Get(n); err == nil && s.Supports(m) {
			names = append(names, n)
		}
	}
	return names
}

// Schedule runs the named scheduler after checking model support.
func Schedule(ctx context.Context, name string, inst *coflow.Instance, mode coflow.Model, opt Options) (*Result, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	if !s.Supports(mode) {
		return nil, fmt.Errorf("engine: scheduler %q does not support the %v model", name, mode)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt.Mode = mode
	var sw obs.Stopwatch
	if opt.Obs != nil {
		sw = opt.Obs.Timing(`engine_schedule{scheduler="` + name + `"}`).Start()
	}
	res, err := s.Schedule(ctx, inst, opt.Normalize())
	sw.Stop()
	if err != nil {
		opt.Obs.Counter(`engine_schedule_errors_total{scheduler="` + name + `"}`).Inc()
		return nil, fmt.Errorf("engine: %s: %w", name, err)
	}
	res.Scheduler = name
	res.Mode = mode
	return res, nil
}
