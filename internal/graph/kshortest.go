package graph

import (
	"slices"
	"strings"
)

// KShortestPaths returns up to k loopless s→t paths in non-decreasing
// hop count using Yen's algorithm over BFS shortest paths. It powers
// the intermediate "multiple given paths" transmission model the paper
// sketches in Section 2 (between single path and free path). Paths are
// returned as edge-id sequences; fewer than k are returned when the
// graph does not admit them.
func (g *Graph) KShortestPaths(s, t NodeID, k int) [][]EdgeID {
	if k <= 0 {
		return nil
	}
	first := g.ShortestPath(s, t)
	if first == nil {
		return nil
	}
	paths := [][]EdgeID{first}
	// Candidate paths, deduplicated by signature.
	var candidates [][]EdgeID
	seen := map[string]bool{pathKey(first): true}

	for len(paths) < k {
		prev := paths[len(paths)-1]
		prevNodes := g.pathNodes(s, prev)
		// Spur from each node of the previous path.
		for i := 0; i < len(prev); i++ {
			spurNode := prevNodes[i]
			rootPath := prev[:i]

			// Edges to hide: the next edge of every accepted path
			// sharing the root, plus root nodes (loopless-ness).
			banEdge := make(map[EdgeID]bool)
			for _, p := range paths {
				if len(p) > i && sameprefix(p, rootPath) {
					banEdge[p[i]] = true
				}
			}
			banNode := make(map[NodeID]bool)
			for _, v := range prevNodes[:i] {
				banNode[v] = true
			}

			spur := g.shortestPathFiltered(spurNode, t, banEdge, banNode)
			if spur == nil {
				continue
			}
			cand := append(append([]EdgeID{}, rootPath...), spur...)
			key := pathKey(cand)
			if !seen[key] {
				seen[key] = true
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Take the shortest candidate (ties by lexicographic edge ids
		// for determinism; the key is unique per path, so the stable
		// sort orders identically to the unstable one it replaced).
		slices.SortStableFunc(candidates, func(a, b []EdgeID) int {
			if len(a) != len(b) {
				return len(a) - len(b)
			}
			return strings.Compare(pathKey(a), pathKey(b))
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

// pathNodes lists the nodes visited by the path, starting at s.
func (g *Graph) pathNodes(s NodeID, path []EdgeID) []NodeID {
	nodes := make([]NodeID, 0, len(path)+1)
	nodes = append(nodes, s)
	for _, eid := range path {
		nodes = append(nodes, g.edges[eid].To)
	}
	return nodes
}

func sameprefix(p, prefix []EdgeID) bool {
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func pathKey(p []EdgeID) string {
	b := make([]byte, 0, 4*len(p))
	for _, e := range p {
		b = append(b, byte(e), byte(e>>8), byte(e>>16), byte(e>>24))
	}
	return string(b)
}

// shortestPathFiltered is BFS shortest path avoiding banned edges and
// nodes (the spur computation of Yen's algorithm).
func (g *Graph) shortestPathFiltered(s, t NodeID, banEdge map[EdgeID]bool, banNode map[NodeID]bool) []EdgeID {
	if banNode[s] || banNode[t] {
		return nil
	}
	parent := make([]EdgeID, g.NumNodes())
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[s] = 0
	queue := []NodeID{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == t {
			break
		}
		for _, eid := range g.out[v] {
			if banEdge[eid] {
				continue
			}
			w := g.edges[eid].To
			if banNode[w] || dist[w] >= 0 {
				continue
			}
			dist[w] = dist[v] + 1
			parent[w] = eid
			queue = append(queue, w)
		}
	}
	if dist[t] < 0 {
		return nil
	}
	path := make([]EdgeID, 0, dist[t])
	for cur := t; cur != s; {
		eid := parent[cur]
		path = append(path, eid)
		cur = g.edges[eid].From
	}
	reverse(path)
	return path
}
