package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddNodeDuplicatePanics(t *testing.T) {
	g := New()
	g.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node")
		}
	}()
	g.AddNode("a")
}

func TestAddEdgeBadCapacityPanics(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero capacity")
		}
	}()
	g.AddEdge(a, b, 0)
}

func TestNodeLookup(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	if id, ok := g.Node("a"); !ok || id != a {
		t.Fatal("Node lookup failed")
	}
	if _, ok := g.Node("zz"); ok {
		t.Fatal("Node lookup found ghost")
	}
	if g.MustNode("a") != a {
		t.Fatal("MustNode failed")
	}
	if g.NodeName(a) != "a" {
		t.Fatal("NodeName failed")
	}
}

func TestMustNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().MustNode("ghost")
}

func TestLinkCreatesTwoEdges(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	e1, e2 := g.AddLink(a, b, 3)
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	if g.Edge(e1).From != a || g.Edge(e1).To != b || g.Edge(e1).Capacity != 3 {
		t.Fatal("forward edge wrong")
	}
	if g.Edge(e2).From != b || g.Edge(e2).To != a {
		t.Fatal("reverse edge wrong")
	}
	if len(g.OutEdges(a)) != 1 || len(g.InEdges(a)) != 1 {
		t.Fatal("adjacency lists wrong")
	}
}

func TestShortestPathLine(t *testing.T) {
	g := Line(5, 1)
	s, tt := g.MustNode("v0"), g.MustNode("v4")
	p := g.ShortestPath(s, tt)
	if len(p) != 4 {
		t.Fatalf("path length %d, want 4", len(p))
	}
	if err := g.ValidatePath(s, tt, p); err != nil {
		t.Fatal(err)
	}
	if g.HopDistance(s, tt) != 4 {
		t.Fatal("hop distance wrong")
	}
	// Line is directed: no reverse path.
	if g.ShortestPath(tt, s) != nil {
		t.Fatal("reverse path should not exist")
	}
	if g.HopDistance(tt, s) != -1 {
		t.Fatal("reverse distance should be -1")
	}
}

func TestValidatePathErrors(t *testing.T) {
	g := Line(4, 1)
	v0, v3 := g.MustNode("v0"), g.MustNode("v3")
	p := g.ShortestPath(v0, v3)
	if err := g.ValidatePath(v0, v3, p); err != nil {
		t.Fatal(err)
	}
	if err := g.ValidatePath(v0, v3, p[:2]); err == nil {
		t.Fatal("truncated path should fail")
	}
	if err := g.ValidatePath(v0, v3, p[1:]); err == nil {
		t.Fatal("offset path should fail")
	}
	if err := g.ValidatePath(v0, v3, nil); err == nil {
		t.Fatal("empty path s≠t should fail")
	}
	if err := g.ValidatePath(v0, v0, nil); err != nil {
		t.Fatal("empty path s=t should be fine")
	}
}

func TestPathCapacity(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	e1 := g.AddEdge(a, b, 5)
	e2 := g.AddEdge(b, c, 3)
	if got := g.PathCapacity([]EdgeID{e1, e2}); got != 3 {
		t.Fatalf("PathCapacity = %v, want 3", got)
	}
	if got := g.PathCapacity(nil); got != 0 {
		t.Fatalf("PathCapacity(nil) = %v, want 0", got)
	}
}

func TestMinCapacity(t *testing.T) {
	g := Figure1()
	if got := g.MinCapacity(); got != 2 {
		t.Fatalf("MinCapacity = %v, want 2", got)
	}
	if got := New().MinCapacity(); got != 0 {
		t.Fatalf("empty MinCapacity = %v, want 0", got)
	}
}

func TestSWANShape(t *testing.T) {
	g := SWAN(10)
	if g.NumNodes() != 5 {
		t.Fatalf("SWAN nodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 14 { // 7 links × 2 directions
		t.Fatalf("SWAN edges = %d, want 14", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.Capacity != 10 {
			t.Fatalf("capacity %v, want 10", e.Capacity)
		}
	}
	// Connectivity: every pair reachable.
	for s := NodeID(0); s < 5; s++ {
		for d := NodeID(0); d < 5; d++ {
			if s != d && g.HopDistance(s, d) < 0 {
				t.Fatalf("SWAN not connected: %d→%d", s, d)
			}
		}
	}
}

func TestGScaleShape(t *testing.T) {
	g := GScale(1)
	if g.NumNodes() != 12 {
		t.Fatalf("G-Scale nodes = %d, want 12", g.NumNodes())
	}
	if g.NumEdges() != 38 { // 19 links × 2 directions
		t.Fatalf("G-Scale edges = %d, want 38", g.NumEdges())
	}
	for s := NodeID(0); s < 12; s++ {
		for d := NodeID(0); d < 12; d++ {
			if s != d && g.HopDistance(s, d) < 0 {
				t.Fatalf("G-Scale not connected: %d→%d", s, d)
			}
		}
	}
}

func TestFigure1Properties(t *testing.T) {
	g := Figure1()
	if g.NumNodes() != 5 || g.NumEdges() != 14 {
		t.Fatalf("Figure1 shape wrong: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	// Capacity multiset {2,4,4,4,4,5,6} per direction.
	caps := map[float64]int{}
	for _, e := range g.Edges() {
		caps[e.Capacity]++
	}
	want := map[float64]int{2: 2, 4: 8, 5: 2, 6: 2}
	for c, n := range want {
		if caps[c] != n {
			t.Fatalf("capacity %v count = %d, want %d (have %v)", c, caps[c], n, caps)
		}
	}
	// The motivating single-path routes: NY→BA direct has capacity 6,
	// HK→LA→FL has bottleneck 4.
	ny, ba := g.MustNode("NY"), g.MustNode("BA")
	if d := g.HopDistance(ny, ba); d != 1 {
		t.Fatalf("NY→BA hops = %d, want 1", d)
	}
	direct := g.ShortestPath(ny, ba)
	if g.PathCapacity(direct) != 6 {
		t.Fatalf("NY→BA capacity = %v, want 6", g.PathCapacity(direct))
	}
}

func TestGadget(t *testing.T) {
	g := Gadget(4)
	if g.NumNodes() != 8 || g.NumEdges() != 4 {
		t.Fatalf("gadget shape: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < 4; i++ {
		x, y := GadgetPair(g, i)
		if g.HopDistance(x, y) != 1 {
			t.Fatalf("pair %d not adjacent", i)
		}
		// Pairs are isolated from each other.
		for j := 0; j < 4; j++ {
			if j == i {
				continue
			}
			xj, _ := GadgetPair(g, j)
			if g.HopDistance(x, xj) >= 0 {
				t.Fatalf("pairs %d and %d connected", i, j)
			}
		}
	}
}

func TestStarAndRing(t *testing.T) {
	s := Star(4, 2)
	if s.NumNodes() != 5 || s.NumEdges() != 8 {
		t.Fatalf("star shape: %d nodes %d edges", s.NumNodes(), s.NumEdges())
	}
	// s0 → s1 goes through the hub: 2 hops.
	if d := s.HopDistance(s.MustNode("s0"), s.MustNode("s1")); d != 2 {
		t.Fatalf("star spoke distance = %d, want 2", d)
	}
	r := Ring(6, 1)
	if r.NumNodes() != 6 || r.NumEdges() != 12 {
		t.Fatalf("ring shape wrong")
	}
	if d := r.HopDistance(r.MustNode("v0"), r.MustNode("v3")); d != 3 {
		t.Fatalf("ring distance = %d, want 3", d)
	}
}

func TestRandomShortestPathIsShortestAndValid(t *testing.T) {
	g := GScale(1)
	rng := rand.New(rand.NewSource(5))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NodeID(r.Intn(g.NumNodes()))
		d := NodeID(r.Intn(g.NumNodes()))
		if s == d {
			return true
		}
		p := g.RandomShortestPath(r, s, d)
		if p == nil {
			return false
		}
		if err := g.ValidatePath(s, d, p); err != nil {
			return false
		}
		return len(p) == g.HopDistance(s, d)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomShortestPathUniform(t *testing.T) {
	// Figure2 has exactly 3 shortest s→t paths (via v1, v2, v3); the
	// sampler should hit each roughly 1/3 of the time.
	g := Figure2()
	s, d := g.MustNode("s"), g.MustNode("t")
	if c := g.CountShortestPaths(s, d); c != 3 {
		t.Fatalf("CountShortestPaths = %v, want 3", c)
	}
	rng := rand.New(rand.NewSource(9))
	counts := map[NodeID]int{}
	const trials = 3000
	for i := 0; i < trials; i++ {
		p := g.RandomShortestPath(rng, s, d)
		mid := g.Edge(p[0]).To
		counts[mid]++
	}
	for v, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-1.0/3) > 0.05 {
			t.Fatalf("path via %s frequency %.3f, want ≈1/3", g.NodeName(v), frac)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("sampler visited %d middles, want 3", len(counts))
	}
}

func TestCountShortestPathsUnreachable(t *testing.T) {
	g := Gadget(2)
	x0, _ := GadgetPair(g, 0)
	x1, _ := GadgetPair(g, 1)
	if c := g.CountShortestPaths(x0, x1); c != 0 {
		t.Fatalf("count = %v, want 0", c)
	}
	if p := g.RandomShortestPath(rand.New(rand.NewSource(1)), x0, x1); p != nil {
		t.Fatal("expected nil path for unreachable pair")
	}
}
