// Package graph provides the directed capacitated network model that
// coflow scheduling operates on: nodes are datacenters or exchange
// points, directed edges are links with bandwidth capacities. It
// includes the two WAN topologies used in the paper's evaluation
// (Microsoft SWAN and Google G-Scale/B4), synthetic topologies for
// tests, shortest-path machinery, and the random-shortest-path sampler
// the paper uses to assign paths in the single path model.
package graph

import (
	"fmt"
	"math/rand"
)

// NodeID identifies a node within a Graph.
type NodeID int

// EdgeID identifies a directed edge within a Graph.
type EdgeID int

// Edge is a directed capacitated link.
type Edge struct {
	ID       EdgeID
	From, To NodeID
	Capacity float64
}

// Graph is a directed multigraph with named nodes and capacitated
// edges. Construct with New, then AddNode/AddEdge.
type Graph struct {
	names   []string
	byName  map[string]NodeID
	edges   []Edge
	out, in [][]EdgeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]NodeID)}
}

// AddNode adds a node with the given name and returns its id. Adding a
// duplicate name panics: topology construction bugs should fail fast.
func (g *Graph) AddNode(name string) NodeID {
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("graph: duplicate node %q", name))
	}
	id := NodeID(len(g.names))
	g.names = append(g.names, name)
	g.byName[name] = id
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// Node looks a node up by name.
func (g *Graph) Node(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// MustNode looks a node up by name and panics if absent.
func (g *Graph) MustNode(name string) NodeID {
	id, ok := g.byName[name]
	if !ok {
		panic(fmt.Sprintf("graph: unknown node %q", name))
	}
	return id
}

// NodeName returns the name of node v.
func (g *Graph) NodeName(v NodeID) string { return g.names[v] }

// AddEdge adds a directed edge with the given capacity.
func (g *Graph) AddEdge(from, to NodeID, capacity float64) EdgeID {
	if capacity <= 0 {
		panic(fmt.Sprintf("graph: edge %s->%s with capacity %g", g.names[from], g.names[to], capacity))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Capacity: capacity})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id
}

// AddLink adds a bidirectional link as two directed edges, each with
// the full capacity (the standard WAN modeling convention: links are
// full duplex). It returns both edge ids.
func (g *Graph) AddLink(a, b NodeID, capacity float64) (EdgeID, EdgeID) {
	return g.AddEdge(a, b, capacity), g.AddEdge(b, a, capacity)
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges reports the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the edge with the given id.
func (g *Graph) Edge(e EdgeID) Edge { return g.edges[e] }

// Edges returns all edges. The slice is shared; do not modify.
func (g *Graph) Edges() []Edge { return g.edges }

// OutEdges returns the ids of edges leaving v. Shared; do not modify.
func (g *Graph) OutEdges(v NodeID) []EdgeID { return g.out[v] }

// InEdges returns the ids of edges entering v. Shared; do not modify.
func (g *Graph) InEdges(v NodeID) []EdgeID { return g.in[v] }

// MinCapacity returns the smallest edge capacity in the graph, or 0
// for an edgeless graph.
func (g *Graph) MinCapacity() float64 {
	if len(g.edges) == 0 {
		return 0
	}
	m := g.edges[0].Capacity
	for _, e := range g.edges[1:] {
		if e.Capacity < m {
			m = e.Capacity
		}
	}
	return m
}

// PathCapacity returns the bottleneck capacity along a path of edge
// ids, or 0 for an empty path.
func (g *Graph) PathCapacity(path []EdgeID) float64 {
	if len(path) == 0 {
		return 0
	}
	m := g.edges[path[0]].Capacity
	for _, e := range path[1:] {
		if c := g.edges[e].Capacity; c < m {
			m = c
		}
	}
	return m
}

// ValidatePath checks that path is a contiguous directed walk from s
// to t.
func (g *Graph) ValidatePath(s, t NodeID, path []EdgeID) error {
	if len(path) == 0 {
		if s == t {
			return nil
		}
		return fmt.Errorf("graph: empty path from %s to %s", g.names[s], g.names[t])
	}
	cur := s
	for k, eid := range path {
		e := g.edges[eid]
		if e.From != cur {
			return fmt.Errorf("graph: path hop %d starts at %s, expected %s", k, g.names[e.From], g.names[cur])
		}
		cur = e.To
	}
	if cur != t {
		return fmt.Errorf("graph: path ends at %s, expected %s", g.names[cur], g.names[t])
	}
	return nil
}

// bfsDist computes hop distances from s (-1 when unreachable).
func (g *Graph) bfsDist(s NodeID) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []NodeID{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, eid := range g.out[v] {
			w := g.edges[eid].To
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// HopDistance returns the number of hops on a shortest s→t path, or
// -1 when t is unreachable from s.
func (g *Graph) HopDistance(s, t NodeID) int {
	return g.bfsDist(s)[t]
}

// ShortestPath returns one shortest (by hop count) s→t path as edge
// ids, or nil when unreachable. Deterministic: prefers lower edge ids.
func (g *Graph) ShortestPath(s, t NodeID) []EdgeID {
	dist := g.bfsDist(s)
	if dist[t] < 0 {
		return nil
	}
	// Walk backward preferring the smallest edge id at each step.
	path := make([]EdgeID, 0, dist[t])
	cur := t
	for cur != s {
		var chosen EdgeID = -1
		for _, eid := range g.in[cur] {
			e := g.edges[eid]
			if dist[e.From] == dist[cur]-1 {
				if chosen < 0 || eid < chosen {
					chosen = eid
				}
			}
		}
		path = append(path, chosen)
		cur = g.edges[chosen].From
	}
	reverse(path)
	return path
}

// RandomShortestPath returns a uniformly random shortest s→t path
// (by hop count), the convention the paper uses to assign paths in the
// single path model ("we randomly select one of the shortest paths").
// Returns nil when t is unreachable.
func (g *Graph) RandomShortestPath(rng *rand.Rand, s, t NodeID) []EdgeID {
	dist := g.bfsDist(s)
	if dist[t] < 0 {
		return nil
	}
	// count[v] = number of shortest s→v paths (float64: counts can be
	// exponential in general graphs, only ratios matter here).
	order := make([]NodeID, 0, g.NumNodes())
	for v := NodeID(0); v < NodeID(g.NumNodes()); v++ {
		if dist[v] >= 0 {
			order = append(order, v)
		}
	}
	// Process in increasing distance.
	sortByDist(order, dist)
	count := make([]float64, g.NumNodes())
	count[s] = 1
	for _, v := range order {
		if v == s {
			continue
		}
		for _, eid := range g.in[v] {
			e := g.edges[eid]
			if dist[e.From] == dist[v]-1 {
				count[v] += count[e.From]
			}
		}
	}
	// Sample backward from t proportionally to predecessor counts.
	path := make([]EdgeID, 0, dist[t])
	cur := t
	for cur != s {
		var total float64
		for _, eid := range g.in[cur] {
			e := g.edges[eid]
			if dist[e.From] == dist[cur]-1 {
				total += count[e.From]
			}
		}
		r := rng.Float64() * total
		var chosen EdgeID = -1
		for _, eid := range g.in[cur] {
			e := g.edges[eid]
			if dist[e.From] == dist[cur]-1 {
				r -= count[e.From]
				chosen = eid
				if r <= 0 {
					break
				}
			}
		}
		path = append(path, chosen)
		cur = g.edges[chosen].From
	}
	reverse(path)
	return path
}

// CountShortestPaths returns the number of shortest (by hops) s→t
// paths as a float64 (exact for small counts).
func (g *Graph) CountShortestPaths(s, t NodeID) float64 {
	dist := g.bfsDist(s)
	if dist[t] < 0 {
		return 0
	}
	order := make([]NodeID, 0, g.NumNodes())
	for v := NodeID(0); v < NodeID(g.NumNodes()); v++ {
		if dist[v] >= 0 {
			order = append(order, v)
		}
	}
	sortByDist(order, dist)
	count := make([]float64, g.NumNodes())
	count[s] = 1
	for _, v := range order {
		if v == s {
			continue
		}
		for _, eid := range g.in[v] {
			e := g.edges[eid]
			if dist[e.From] == dist[v]-1 {
				count[v] += count[e.From]
			}
		}
	}
	return count[t]
}

func sortByDist(order []NodeID, dist []int) {
	// Insertion sort: orders are tiny (#nodes in WAN topologies).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && dist[order[j-1]] > dist[order[j]]; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
}

func reverse(p []EdgeID) {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}
