package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKShortestFigure2(t *testing.T) {
	g := Figure2()
	s, d := g.MustNode("s"), g.MustNode("t")
	paths := g.KShortestPaths(s, d, 3)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	mids := map[NodeID]bool{}
	for _, p := range paths {
		if len(p) != 2 {
			t.Fatalf("path length %d, want 2", len(p))
		}
		if err := g.ValidatePath(s, d, p); err != nil {
			t.Fatal(err)
		}
		mids[g.Edge(p[0]).To] = true
	}
	if len(mids) != 3 {
		t.Fatalf("paths not distinct: middles %v", mids)
	}
}

func TestKShortestMoreThanExist(t *testing.T) {
	g := Line(4, 1)
	paths := g.KShortestPaths(g.MustNode("v0"), g.MustNode("v3"), 5)
	if len(paths) != 1 {
		t.Fatalf("line admits 1 path, got %d", len(paths))
	}
}

func TestKShortestUnreachableAndDegenerate(t *testing.T) {
	g := Gadget(2)
	x0, _ := GadgetPair(g, 0)
	_, y1 := GadgetPair(g, 1)
	if p := g.KShortestPaths(x0, y1, 3); p != nil {
		t.Fatalf("unreachable pair returned %v", p)
	}
	if p := g.KShortestPaths(x0, y1, 0); p != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestKShortestOrderedLooplessDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := GScale(1)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NodeID(r.Intn(g.NumNodes()))
		d := NodeID(r.Intn(g.NumNodes()))
		if s == d {
			return true
		}
		k := 1 + r.Intn(6)
		paths := g.KShortestPaths(s, d, k)
		if len(paths) == 0 || len(paths) > k {
			return false
		}
		seen := map[string]bool{}
		for i, p := range paths {
			if g.ValidatePath(s, d, p) != nil {
				return false
			}
			// Non-decreasing lengths, first is shortest.
			if i > 0 && len(p) < len(paths[i-1]) {
				return false
			}
			if i == 0 && len(p) != g.HopDistance(s, d) {
				return false
			}
			// Loopless: no repeated node.
			nodes := g.pathNodes(s, p)
			nodeSet := map[NodeID]bool{}
			for _, v := range nodes {
				if nodeSet[v] {
					return false
				}
				nodeSet[v] = true
			}
			key := pathKey(p)
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestKShortestSWANRichness(t *testing.T) {
	// SWAN is 2-connected, so adjacent DCs admit ≥ 2 loopless paths.
	g := SWAN(1)
	paths := g.KShortestPaths(g.MustNode("DC1"), g.MustNode("DC2"), 4)
	if len(paths) < 2 {
		t.Fatalf("got %d paths, want ≥ 2", len(paths))
	}
}
