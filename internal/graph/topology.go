package graph

import "fmt"

// This file encodes the topologies used in the paper's evaluation
// (Section 6) plus the illustrative networks from Sections 1–2 and the
// hardness gadget from Section 5.
//
// SWAN and G-Scale adjacency is encoded from the published figures of
// Hong et al. (SIGCOMM '13) and Jain et al. (SIGCOMM '13). Exact
// adjacency of the commercial WANs is approximated from those figures
// — the paper itself works from the same public descriptions. Links
// are full duplex: one physical link becomes two directed edges, each
// carrying the full link bandwidth.

// SWAN returns Microsoft's inter-datacenter WAN: 5 datacenters and 7
// inter-datacenter links. unit is the bandwidth of one link-capacity
// unit (use 1 for abstract units).
func SWAN(unit float64) *Graph {
	g := New()
	dc := make([]NodeID, 5)
	for i := range dc {
		dc[i] = g.AddNode(fmt.Sprintf("DC%d", i+1))
	}
	links := [][2]int{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4},
	}
	for _, l := range links {
		g.AddLink(dc[l[0]], dc[l[1]], unit)
	}
	return g
}

// GScale returns Google's inter-datacenter WAN (B4): 12 datacenters
// and 19 inter-datacenter links. unit is the bandwidth of one
// link-capacity unit.
func GScale(unit float64) *Graph {
	g := New()
	dc := make([]NodeID, 12)
	for i := range dc {
		dc[i] = g.AddNode(fmt.Sprintf("DC%d", i+1))
	}
	links := [][2]int{
		{0, 1}, {0, 2}, {1, 2}, {1, 4},
		{2, 3}, {3, 4}, {3, 5}, {4, 6},
		{5, 6}, {5, 7}, {6, 8}, {7, 8},
		{7, 9}, {8, 10}, {9, 10}, {9, 11},
		{10, 11}, {2, 5}, {6, 9},
	}
	for _, l := range links {
		g.AddLink(dc[l[0]], dc[l[1]], unit)
	}
	return g
}

// Figure1 returns the 5-node WAN from Figure 1 of the paper (nodes HK,
// LA, NY, FL, BA with seven links whose capacities are
// {2,4,4,4,4,5,6}), arranged so that the paper's two flows — NY→BA of
// demand 18 and HK→FL of demand 12 — finish in 3 time units in the
// single path model (paths NY→BA and HK→LA→FL) and in 2 time units in
// the free path model.
func Figure1() *Graph {
	g := New()
	hk := g.AddNode("HK")
	la := g.AddNode("LA")
	ny := g.AddNode("NY")
	fl := g.AddNode("FL")
	ba := g.AddNode("BA")
	g.AddLink(hk, la, 4)
	g.AddLink(hk, ny, 2)
	g.AddLink(ny, la, 4)
	g.AddLink(ny, fl, 5)
	g.AddLink(ny, ba, 6)
	g.AddLink(la, fl, 4)
	g.AddLink(fl, ba, 4)
	return g
}

// Figure2 returns the example network of Figure 2: nodes s, v1, v2,
// v3, t with bidirected unit-capacity edges s—v_i and v_i—t for each i.
func Figure2() *Graph {
	g := New()
	s := g.AddNode("s")
	v1 := g.AddNode("v1")
	v2 := g.AddNode("v2")
	v3 := g.AddNode("v3")
	t := g.AddNode("t")
	for _, v := range []NodeID{v1, v2, v3} {
		g.AddLink(s, v, 1)
		g.AddLink(v, t, 1)
	}
	return g
}

// Gadget returns the Section 5 hardness-reduction graph for m
// machines: for every machine i an isolated pair x_i → y_i joined by a
// single directed edge of unit bandwidth.
func Gadget(m int) *Graph {
	g := New()
	for i := 0; i < m; i++ {
		x := g.AddNode(fmt.Sprintf("x%d", i))
		y := g.AddNode(fmt.Sprintf("y%d", i))
		g.AddEdge(x, y, 1)
	}
	return g
}

// GadgetPair returns the node ids (x_i, y_i) of machine i in a Gadget
// graph.
func GadgetPair(g *Graph, i int) (NodeID, NodeID) {
	return g.MustNode(fmt.Sprintf("x%d", i)), g.MustNode(fmt.Sprintf("y%d", i))
}

// Line returns a directed path v0 → v1 → … → v_{n-1} with the given
// uniform capacity.
func Line(n int, capacity float64) *Graph {
	g := New()
	nodes := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = g.AddNode(fmt.Sprintf("v%d", i))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(nodes[i], nodes[i+1], capacity)
	}
	return g
}

// Star returns a hub-and-spoke topology: nodes h and s0..s_{n-1}, with
// full-duplex links h—s_i of the given capacity. It models the
// datacenter switch abstraction (every machine connected to a central
// switch) from the original coflow papers.
func Star(n int, capacity float64) *Graph {
	g := New()
	h := g.AddNode("hub")
	for i := 0; i < n; i++ {
		s := g.AddNode(fmt.Sprintf("s%d", i))
		g.AddLink(h, s, capacity)
	}
	return g
}

// Ring returns a bidirectional ring of n nodes with the given
// per-direction capacity.
func Ring(n int, capacity float64) *Graph {
	g := New()
	nodes := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = g.AddNode(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < n; i++ {
		g.AddLink(nodes[i], nodes[(i+1)%n], capacity)
	}
	return g
}
