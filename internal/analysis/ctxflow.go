package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxflow enforces the cancellation contract: an exported function
// that dispatches work to internal/pool or calls simplex.Solve must
// accept a context.Context and forward it, not mint a fresh
// context.Background()/TODO(). Those are the two places where the
// program blocks for unbounded time (parallel fan-out, LP pivoting);
// a caller that cannot cancel them cannot implement deadlines at the
// daemon layer. Function literals are exempt — a closure's context
// discipline is its enclosing function's problem — as are the pool
// and simplex packages themselves.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported functions dispatching to pool or simplex.Solve must take and forward ctx",
	Run:  runCtxflow,
}

// blockingCall reports whether the call is one of the contract's
// blocking entry points: any internal/pool package function, or
// simplex.Solve.
func blockingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	base := pathBase(fn.Pkg().Path())
	if base == "pool" && hasPathSegment(fn.Pkg().Path(), "internal") {
		return "pool." + fn.Name(), true
	}
	if funcFrom(fn, "simplex", "Solve") {
		return "simplex.Solve", true
	}
	return "", false
}

func runCtxflow(pass *Pass) {
	base := pathBase(pass.PkgPath)
	if base == "pool" || base == "simplex" {
		return // the defining packages are below the contract line
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkFuncDecl(pass, fd)
		}
	}
}

func checkFuncDecl(pass *Pass, fd *ast.FuncDecl) {
	obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	sig := obj.Signature()
	hasCtx := ctxParamIndex(sig) >= 0

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // closures are checked at their call discipline, not here
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, blocking := blockingCall(pass, call)
		if !blocking {
			return true
		}
		if !hasCtx {
			pass.Reportf(call.Pos(),
				"exported %s calls %s but has no context.Context parameter; accept ctx and forward it",
				fd.Name.Name, callee)
			return true
		}
		if freshCtxArg(pass, call) {
			pass.Reportf(call.Pos(),
				"exported %s passes a fresh context to %s instead of forwarding its own ctx",
				fd.Name.Name, callee)
		}
		return true
	})
}

// freshCtxArg reports whether any argument is context.Background() or
// context.TODO() — minting a fresh root severs the cancellation chain.
func freshCtxArg(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		inner, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := calleeFunc(pass.Info, inner)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			continue
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			return true
		}
	}
	return false
}
