package analysis

import (
	"go/ast"
)

// Globalrand bans the process-global math/rand stream and wall-clock
// seeding, module-wide. Every random draw in the repository must come
// from a *rand.Rand constructed from a spec-declared seed, so a run is
// reproducible from its spec file alone. The global functions
// (rand.Intn, rand.Float64, ...) share one auto-seeded source that any
// imported package can advance, and time-seeded sources differ every
// run by construction.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "ban global math/rand draws and wall-clock-seeded sources",
	Run:  runGlobalrand,
}

// randConstructors are the math/rand functions that build explicit
// generators rather than drawing from the global stream. Everything
// else at package level is a global draw.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runGlobalrand(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
				return true
			}
			// Methods on *rand.Rand / Source carry a receiver and are
			// fine; only package-level functions are in scope.
			if fn.Signature().Recv() != nil {
				return true
			}
			if !randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-global source; construct a *rand.Rand from the spec seed and thread it",
					fn.Name())
				return true
			}
			if seededByClock(pass, call) {
				pass.Reportf(call.Pos(),
					"rand.%s seeded from the wall clock; seeds must come from the spec so runs are reproducible",
					fn.Name())
			}
			return true
		})
	}
}

// seededByClock reports whether any argument expression (transitively)
// calls time.Now — the classic rand.New(rand.NewSource(time.Now().
// UnixNano())) anti-pattern.
func seededByClock(pass *Pass, call *ast.CallExpr) bool {
	clock := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, inner)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				clock = true
			}
			return !clock
		})
	}
	return clock
}
