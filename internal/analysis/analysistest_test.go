package analysis

// A minimal analysistest: fixture packages live under
// testdata/src/<analyzer>/<pkg>, and every expected diagnostic is
// declared in the fixture itself with a trailing comment of the form
//
//	expr // want `regex` `another regex`
//
// Each want pattern must match exactly one finding on its line (after
// suppression filtering, so the suppress fixtures exercise the real
// pipeline), and every finding must be claimed by a want — failing
// and passing fixtures use one mechanism.

import (
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"
)

// fixtureImporter resolves imports for fixture packages: paths that
// name a directory under testdata/src are type-checked from source
// (so fixtures can model pool/simplex/obs shapes), everything else is
// loaded from compiler export data located lazily via `go list`.
type fixtureImporter struct {
	fset    *token.FileSet
	root    string
	cache   map[string]*LoadedPackage
	exports map[string]string
	std     types.Importer
}

func newFixtureImporter(fset *token.FileSet, root string) *fixtureImporter {
	fi := &fixtureImporter{
		fset:    fset,
		root:    root,
		cache:   map[string]*LoadedPackage{},
		exports: map[string]string{},
	}
	fi.std = importer.ForCompiler(fset, "gc", exportLookup(fi.exports))
	return fi
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		lp, err := fi.loadDir(path)
		if err != nil {
			return nil, err
		}
		return lp.Pkg, nil
	}
	if _, ok := fi.exports[path]; !ok {
		pkgs, err := goList(".", []string{path})
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				fi.exports[p.ImportPath] = p.Export
			}
		}
	}
	return fi.std.Import(path)
}

// loadDir parses and type-checks one fixture package by its path
// relative to testdata/src.
func (fi *fixtureImporter) loadDir(path string) (*LoadedPackage, error) {
	if lp, ok := fi.cache[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	lp, err := CheckPackage(fi.fset, path, names, fi)
	if err != nil {
		return nil, err
	}
	fi.cache[path] = lp
	return lp, nil
}

// want markers: `regex` or "regex" tokens after the word want.
var (
	wantMarker = regexp.MustCompile("want\\s+((?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")(?:\\s+(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"))*)")
	wantToken  = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func parseWants(t *testing.T, lp *LoadedPackage) []expectation {
	t.Helper()
	var out []expectation
	for _, f := range lp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantMarker.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := lp.Fset.Position(c.Pos())
				for _, tok := range wantToken.FindAllString(m[1], -1) {
					pat := tok[1 : len(tok)-1]
					if tok[0] == '"' {
						var err error
						if pat, err = strconv.Unquote(tok); err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, tok, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// runFixture checks one analyzer against fixture packages: findings
// and want comments must match one-to-one.
func runFixture(t *testing.T, a *Analyzer, dirs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	fi := newFixtureImporter(fset, filepath.Join("testdata", "src"))
	for _, dir := range dirs {
		lp, err := fi.loadDir(dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", dir, err)
		}
		wants := parseWants(t, lp)
		findings := RunPackage(lp, []*Analyzer{a})
		for _, f := range findings {
			claimed := false
			for i := range wants {
				w := &wants[i]
				if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
					continue
				}
				if w.re.MatchString(f.Message) {
					w.matched = true
					claimed = true
					break
				}
			}
			if !claimed {
				t.Errorf("unexpected finding: %s", f)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no %s finding matched want %q", w.file, w.line, a.Name, w.re)
			}
		}
	}
}

func TestDetrange(t *testing.T)   { runFixture(t, Detrange, "detrange/sim", "detrange/other") }
func TestStablesort(t *testing.T) { runFixture(t, Stablesort, "stablesort/lp", "stablesort/other") }
func TestWalltime(t *testing.T) {
	runFixture(t, Walltime, "walltime/a", "walltime/obs", "walltime/cmd/clock")
}
func TestGlobalrand(t *testing.T) { runFixture(t, Globalrand, "globalrand/a", "globalrand/b") }
func TestObslabels(t *testing.T)  { runFixture(t, Obslabels, "obslabels/app") }
func TestCtxflow(t *testing.T)    { runFixture(t, Ctxflow, "ctxflow/app") }

// TestSuppression runs stablesort over the suppression fixture: the
// directives there silence exactly the diagnostics they name, and the
// malformed ones surface as findings of their own.
func TestSuppression(t *testing.T) { runFixture(t, Stablesort, "suppress/sim") }

// TestByName covers suite subsetting and the unknown-name error.
func TestByName(t *testing.T) {
	got, err := ByName("detrange", "ctxflow")
	if err != nil || len(got) != 2 || got[0] != Detrange || got[1] != Ctxflow {
		t.Fatalf("ByName(detrange, ctxflow) = %v, %v", got, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) succeeded, want error")
	}
}

// TestTreeSatellites runs the full suite over the packages this PR's
// determinism fixes touched; they must stay clean.
func TestTreeSatellites(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the tree")
	}
	findings, err := Run("../..", []string{"./internal/graph", "./internal/topo", "./internal/model"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("finding on clean tree: %s", f)
	}
}
