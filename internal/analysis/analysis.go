// Package analysis is coflowlint: a suite of static analyzers that
// machine-enforce the repository's determinism, telemetry, and
// cancellation contracts. Every result in this reproduction rests on
// invariants that used to live in review comments — schedules and sim
// traces must be bit-identical at any worker count, telemetry must
// never perturb reports, and long solves must honor context
// cancellation. The analyzers turn those conventions into a
// compiler-grade gate:
//
//   - detrange: no map iteration that writes program state in
//     determinism-critical packages, unless the keys are sorted first.
//   - stablesort: no unstable sorts (sort.Slice, sort.Sort,
//     slices.SortFunc) in determinism-critical packages.
//   - walltime: no time.Now / time.Since / time.Until outside obs,
//     bench, and cmd/*, so wall clock can never leak into a RunReport.
//   - globalrand: no top-level math/rand draws and no wall-clock-seeded
//     sources; randomness is a *rand.Rand threaded from a spec seed.
//   - obslabels: obs series names are string literals with well-formed
//     Prometheus-style label sets; dynamic content only in label values.
//   - ctxflow: exported functions that dispatch to internal/pool or
//     call simplex.Solve accept and forward a context.Context.
//
// A finding is silenced — with justification — by a suppression
// comment on the same line or the line above:
//
//	//coflowlint:allow detrange -- label order cannot affect the report
//
// A suppression without an analyzer name or without a " -- reason" is
// itself a finding.
//
// The suite intentionally mirrors the golang.org/x/tools/go/analysis
// API shapes (Analyzer, Pass, Diagnostic) but is built purely on the
// standard library: packages are loaded with `go list -export`, and
// imports are resolved from compiler export data, so the checkers see
// the same type information the compiler does without any third-party
// dependency.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name is the identifier used in findings and suppression comments.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	PkgPath  string
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at the node's position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one raw finding, before suppression filtering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is one reported violation, positioned and attributed.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// criticalPkgs are the determinism-critical packages: everything that
// contributes bits to a schedule, trace, report, or topology. The
// detrange and stablesort analyzers apply only here; the other
// analyzers apply module-wide (walltime with its own exemptions).
// Matching is by final import-path element so the testdata fixtures
// exercise the same predicate the real tree does.
var criticalPkgs = map[string]bool{
	"baselines": true,
	"core":      true,
	"engine":    true,
	"graph":     true,
	"lp":        true,
	"lu":        true,
	"model":     true,
	"pool":      true,
	"schedule":  true,
	"sim":       true,
	"simplex":   true,
	"spec":      true,
	"topo":      true,
	"workload":  true,
}

// pathBase is the final element of an import path.
func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// hasPathSegment reports whether seg appears as a complete element of
// the import path (e.g. "cmd" in "repro/cmd/coflowd").
func hasPathSegment(path, seg string) bool {
	for p := range strings.SplitSeq(path, "/") {
		if p == seg {
			return true
		}
	}
	return false
}

// deterministicPkg reports whether the package is under the
// determinism contract.
func deterministicPkg(path string) bool { return criticalPkgs[pathBase(path)] }

// calleeFunc resolves the called function or method, or nil for
// indirect calls, builtins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcFrom reports whether fn is the named package-level function of
// the package whose import path ends in pkgBase.
func funcFrom(fn *types.Func, pkgBase, name string) bool {
	return fn != nil && fn.Pkg() != nil &&
		pathBase(fn.Pkg().Path()) == pkgBase && fn.Name() == name
}

// ctxParamIndex returns the index of the first context.Context
// parameter of the signature, or -1.
func ctxParamIndex(sig *types.Signature) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Detrange,
		Stablesort,
		Walltime,
		Globalrand,
		Obslabels,
		Ctxflow,
	}
}

// ByName resolves a subset of the suite by analyzer name.
func ByName(names ...string) ([]*Analyzer, error) {
	all := All()
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, len(all))
			for i, a := range all {
				known[i] = a.Name
			}
			return nil, fmt.Errorf("analysis: unknown analyzer %q (have %v)", n, known)
		}
	}
	return out, nil
}
