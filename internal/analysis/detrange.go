package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detrange flags `for range` over a map in a determinism-critical
// package when the loop body writes to state declared outside the
// loop: Go randomizes map iteration order, so such a loop can imprint
// a different order on its output every run. The one blessed idiom is
// collect-then-sort — a loop that only appends keys or values to
// slices that are all passed to a sort function later in the same
// block. Anything else needs either sorted keys up front
// (`for _, k := range slices.Sorted(maps.Keys(m))`) or an explicit
// //coflowlint:allow detrange -- <reason> suppression.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc:  "flag map iteration that writes state in determinism-critical packages",
	Run:  runDetrange,
}

func runDetrange(pass *Pass) {
	if !deterministicPkg(pass.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		// Walk with enough context to find the statements that follow
		// each range loop inside its enclosing block.
		ast.Inspect(file, func(n ast.Node) bool {
			block, ok := blockStmts(n)
			if !ok {
				return true
			}
			for i, stmt := range block {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				checkMapRange(pass, rng, block[i+1:])
			}
			return true
		})
		// Range statements that are not directly inside a block (e.g.
		// `for { for range m {} }` bodies are blocks, so this only
		// misses exotic positions) still get the write check, with no
		// collect-then-sort exemption possible.
		ast.Inspect(file, func(n ast.Node) bool {
			if rng, ok := n.(*ast.RangeStmt); ok && !insideBlock(file, rng) {
				checkMapRange(pass, rng, nil)
			}
			return true
		})
	}
}

// blockStmts returns the statement list of block-like nodes.
func blockStmts(n ast.Node) ([]ast.Stmt, bool) {
	switch b := n.(type) {
	case *ast.BlockStmt:
		return b.List, true
	case *ast.CaseClause:
		return b.Body, true
	case *ast.CommClause:
		return b.Body, true
	}
	return nil, false
}

// insideBlock reports whether the range statement appears directly in
// some block's statement list.
func insideBlock(file *ast.File, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if stmts, ok := blockStmts(n); ok {
			for _, s := range stmts {
				if s == rng {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func checkMapRange(pass *Pass, rng *ast.RangeStmt, after []ast.Stmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	writes := outerWrites(pass, rng)
	if len(writes) == 0 {
		return
	}
	if collectThenSort(pass, rng, writes, after) {
		return
	}
	pass.Reportf(rng.For,
		"map iteration writes state (%s) in determinism-critical package %s; iterate sorted keys, or append to a slice and sort it",
		writes[0].obj.Name(), pathBase(pass.PkgPath))
}

// outerWrite is one assignment inside the loop body to a variable
// declared outside it.
type outerWrite struct {
	obj        *types.Var
	appendOnly bool // the write is `x = append(x, ...)` with slice x
}

// outerWrites finds writes inside the loop body whose target variable
// is declared outside the range statement. Closures inside the body
// are walked too: if the body hands work to a func literal the writes
// still happen under map order.
func outerWrites(pass *Pass, rng *ast.RangeStmt) []outerWrite {
	var out []outerWrite
	record := func(e ast.Expr, appendOnly bool) {
		id := rootIdent(e)
		if id == nil || id.Name == "_" {
			return
		}
		obj, _ := pass.Info.ObjectOf(id).(*types.Var)
		if obj == nil {
			return
		}
		if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
			return // declared by the loop (key, value, or body local)
		}
		out = append(out, outerWrite{obj: obj, appendOnly: appendOnly})
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if s.Tok == token.DEFINE {
					continue // new declarations are loop-local
				}
				record(lhs, isSelfAppend(pass, s, i))
			}
		case *ast.IncDecStmt:
			record(s.X, false)
		case *ast.SendStmt:
			record(s.Chan, false)
		}
		return true
	})
	return out
}

// isSelfAppend reports whether assignment i is `x = append(x, ...)`.
func isSelfAppend(pass *Pass, s *ast.AssignStmt, i int) bool {
	if len(s.Lhs) != len(s.Rhs) {
		return false
	}
	lhs, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := pass.Info.ObjectOf(fn).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && arg.Name == lhs.Name
}

// sortFuncs are the functions recognized as establishing a
// deterministic order over a collected slice.
var sortFuncs = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// collectThenSort reports whether every outer write is an append to a
// slice and every such slice is sorted by a statement following the
// loop in the same block.
func collectThenSort(pass *Pass, rng *ast.RangeStmt, writes []outerWrite, after []ast.Stmt) bool {
	targets := map[*types.Var]bool{}
	for _, w := range writes {
		if !w.appendOnly {
			return false
		}
		targets[w.obj] = true
	}
	for _, stmt := range after {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if !sortFuncs[pathBase(fn.Pkg().Path())+"."+fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if id := rootIdent(arg); id != nil {
					if v, _ := pass.Info.ObjectOf(id).(*types.Var); v != nil {
						delete(targets, v)
					}
				}
			}
			return true
		})
	}
	return len(targets) == 0
}

// rootIdent unwraps index, selector, star, and paren expressions to
// the base identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
