package analysis

import "go/ast"

// Stablesort bans unstable sorts in determinism-critical packages.
// sort.Slice, sort.Sort, and slices.SortFunc may reorder equal
// elements differently across runs (pdqsort is not stable), so any
// sort whose comparator does not totally order its input can flip a
// schedule or a golden file. The stable variants cost one allocation
// and remove the hazard categorically, which is cheaper than proving
// comparator totality at every call site.
var Stablesort = &Analyzer{
	Name: "stablesort",
	Doc:  "ban unstable sorts in determinism-critical packages",
	Run:  runStablesort,
}

// unstableSorts maps banned sort entry points to their suggested
// replacement.
var unstableSorts = map[string]string{
	"sort.Slice":      "sort.SliceStable or slices.SortStableFunc",
	"sort.Sort":       "sort.Stable",
	"slices.SortFunc": "slices.SortStableFunc",
}

func runStablesort(pass *Pass) {
	if !deterministicPkg(pass.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			name := pathBase(fn.Pkg().Path()) + "." + fn.Name()
			if repl, banned := unstableSorts[name]; banned {
				pass.Reportf(call.Pos(),
					"%s is not stable; use %s in determinism-critical package %s",
					name, repl, pathBase(pass.PkgPath))
			}
			return true
		})
	}
}
