package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// LoadedPackage is one parsed and type-checked package, ready for
// analyzer passes.
type LoadedPackage struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// newInfo allocates the types.Info facts the analyzers need.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// CheckPackage parses the given files and type-checks them as one
// package, resolving imports through imp. Shared by the driver (export
// data from `go list -export`) and analysistest (fixture sources plus
// export data).
func CheckPackage(fset *token.FileSet, pkgPath string, filenames []string, imp types.Importer) (*LoadedPackage, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &LoadedPackage{PkgPath: pkgPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// listPkg is the subset of `go list -json` output the loader uses.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// goList runs `go list -export -deps -json` for the patterns and
// decodes the package stream. The -export flag makes the go command
// emit compiler export data for every package, which is how the suite
// gets compiler-grade type information without golang.org/x/tools.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup adapts an ImportPath → export-data-file map to the
// lookup function the gc importer wants. The map may grow between
// calls (analysistest adds stdlib packages lazily).
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// LoadPackages loads, parses, and type-checks every package matched by
// the patterns (relative to dir), excluding test files — the contracts
// bind production code; tests exercise forbidden APIs on purpose.
func LoadPackages(dir string, patterns []string) ([]*LoadedPackage, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var out []*LoadedPackage
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		lp, err := CheckPackage(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}
