// Package obs mirrors the real registry surface: methods and
// functions whose first argument is a metric series name.
package obs

type Metrics struct{}

type Counter struct{}

type Timing struct{}

func (*Metrics) Counter(name string) *Counter { return nil }

func (*Metrics) Timing(name string) *Timing { return nil }

func Gauge(name string, v float64) {}
