package app

import "obslabels/obs"

const series = `lp_iterations{phase="two"}`

func Ok(m *obs.Metrics, scheduler string) {
	m.Counter("sim_events")
	m.Timing(`engine_schedule{scheduler="varys"}`)
	obs.Gauge(`pool_depth{worker="w0",zone="a"}`, 1)
	// Dynamic content is fine strictly inside label-value quotes.
	m.Timing(`engine_schedule{scheduler="` + scheduler + `"}`)
	m.Counter(series)
}
