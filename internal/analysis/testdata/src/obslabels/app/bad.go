package app

import "obslabels/obs"

func Register(m *obs.Metrics, scheduler string, n int) {
	m.Counter("bad-metric")  // want `metric name must match`
	m.Timing(`solve{mode=lp}`) // want `label value must be double-quoted`
	obs.Gauge("queue{}", 0)  // want `empty label set`
	m.Counter("sim_events{kind}") // want `label without '='`
	m.Counter("solve_" + scheduler) // want `metric name must match`
	m.Counter(scheduler) // want `not a string literal`
	m.Timing(`solve{mode="lp"`) // want `unbalanced label braces`
}
