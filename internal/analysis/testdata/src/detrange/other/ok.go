// Package other is not determinism-critical, so detrange stays quiet
// even for order-imprinting loops.
package other

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
