package sim

// Keys collects map keys but never sorts them: the result order is
// randomized by the runtime.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration writes state \(out\)`
		out = append(out, k)
	}
	return out
}

// Fill imprints map order on another map's insertion sequence.
func Fill(src map[string]int) map[string]int {
	dst := make(map[string]int)
	for k, v := range src { // want `map iteration writes state \(dst\)`
		dst[k] = v
	}
	return dst
}

// Count increments an outer counter; flagged even though addition
// commutes — that exemption is what suppressions are for.
func Count(m map[string]bool) int {
	n := 0
	for range m { // want `map iteration writes state \(n\)`
		n++
	}
	return n
}

// Feed sends under map order.
func Feed(m map[string]int, ch chan string) {
	for k := range m { // want `map iteration writes state \(ch\)`
		ch <- k
	}
}

// Closure writes inside the body still happen under map order.
func Indirect(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration writes state \(out\)`
		func() { out = append(out, k) }()
	}
	return out
}
