package sim

import (
	"maps"
	"slices"
	"sort"
)

// SortedKeys is the blessed collect-then-sort idiom: every outer
// write is an append, and the slice is sorted before use.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// StableKeys uses the generic stable sort instead.
func StableKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	slices.SortStableFunc(out, func(a, b string) int {
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
		return 0
	})
	return out
}

// PreSorted ranges over an already-sorted slice, not the map.
func PreSorted(m map[string]int) []int {
	var vals []int
	for _, k := range slices.Sorted(maps.Keys(m)) {
		vals = append(vals, m[k])
	}
	return vals
}

// ReadOnly writes nothing outside the loop.
func ReadOnly(m map[string]int) bool {
	for _, v := range m {
		local := v * 2
		if local > 100 {
			return true
		}
	}
	return false
}
