package sim

import "sort"

// Suppressed by a directive on the line above.
func Above(xs []int) {
	//coflowlint:allow stablesort -- comparator is a total order over unique keys
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Suppressed by an inline directive.
func Inline(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) //coflowlint:allow stablesort -- inline justification
}

// One directive silences exactly one diagnostic: the second call on
// its own line still fires.
func Once(xs []int) {
	//coflowlint:allow stablesort -- covers only the next line
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.Slice is not stable`
}

// A bare allow (no reason) is itself a finding, and suppresses
// nothing.
func Bare(xs []int) {
	//coflowlint:allow stablesort want `malformed suppression`
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.Slice is not stable`
}

// An allow with a reason but no analyzer name is also malformed.
func Nameless(xs []int) {
	//coflowlint:allow want `malformed suppression`
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.Slice is not stable`
}
