// Binaries under cmd/ may stamp logs and enforce flag timeouts.
package clock

import "time"

func Stamp() time.Time { return time.Now() }
