package a

import "time"

func Stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock outside obs/bench/cmd`
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock outside obs/bench/cmd`
}

func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time\.Until reads the wall clock outside obs/bench/cmd`
}
