package a

import "time"

// Pure time arithmetic never reads the clock.
func Add(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}

func Span(d time.Duration) float64 {
	return d.Seconds()
}
