// Package obs is the one library allowed to read the wall clock: it
// is where timing is confined behind Timing/Stopwatch.
package obs

import "time"

func Stamp() time.Time { return time.Now() }

func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }
