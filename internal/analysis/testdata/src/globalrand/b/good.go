package b

import "math/rand"

// Seeded construction from a spec-declared seed, and draws through
// the explicit generator, are the contract.
func Gen(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func Draw(r *rand.Rand) int {
	return r.Intn(10)
}
