package a

import (
	"math/rand"
	"time"
)

func Jitter() int {
	return rand.Intn(10) // want `rand\.Intn draws from the process-global source`
}

func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the process-global source`
}

func ClockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.New seeded from the wall clock` `rand\.NewSource seeded from the wall clock`
}
