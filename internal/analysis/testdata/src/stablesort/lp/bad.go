package lp

import (
	"slices"
	"sort"
)

func BySlice(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.Slice is not stable; use sort\.SliceStable`
}

func ByInterface(d sort.Interface) {
	sort.Sort(d) // want `sort\.Sort is not stable; use sort\.Stable`
}

func ByFunc(xs []int) {
	slices.SortFunc(xs, func(a, b int) int { return a - b }) // want `slices\.SortFunc is not stable; use slices\.SortStableFunc`
}
