package lp

import (
	"slices"
	"sort"
)

func Stable(xs []int, d sort.Interface) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })
	sort.Stable(d)
	slices.SortStableFunc(xs, func(a, b int) int { return a - b })
	slices.Sort(xs) // ordered elements: equal values are indistinguishable
	sort.Ints(xs)
}
