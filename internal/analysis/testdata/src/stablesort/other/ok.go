// Package other is outside the determinism-critical set; unstable
// sorts are its own business.
package other

import "sort"

func BySlice(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
