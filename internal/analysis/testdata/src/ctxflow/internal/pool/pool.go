// Package pool mirrors the real fan-out dispatcher's surface.
package pool

import "context"

func Map(ctx context.Context, n int, f func(int)) {}

func Stream(ctx context.Context, n int, f func(int) int) []int { return nil }
