// Package simplex mirrors the real solver entry point.
package simplex

import "context"

type Problem struct{}

type Solution struct{}

func Solve(ctx context.Context, p *Problem) (*Solution, error) { return nil, nil }
