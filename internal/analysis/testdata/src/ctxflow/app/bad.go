package app

import (
	"context"

	"ctxflow/internal/pool"
	"ctxflow/simplex"
)

// NoCtx blocks on the pool with no way for callers to cancel.
func NoCtx(n int) {
	pool.Map(context.Background(), n, func(int) {}) // want `exported NoCtx calls pool\.Map but has no context\.Context parameter`
}

// NoCtxSolve calls the solver without a ctx parameter.
func NoCtxSolve(p *simplex.Problem) error {
	_, err := simplex.Solve(context.TODO(), p) // want `exported NoCtxSolve calls simplex\.Solve but has no context\.Context parameter`
	return err
}

// FreshCtx takes a ctx but severs it with a fresh root.
func FreshCtx(ctx context.Context, p *simplex.Problem) error {
	_, err := simplex.Solve(context.Background(), p) // want `exported FreshCtx passes a fresh context to simplex\.Solve`
	return err
}

// FreshPool severs the chain on the pool path.
func FreshPool(ctx context.Context, n int) {
	pool.Stream(context.TODO(), n, func(i int) int { return i }) // want `exported FreshPool passes a fresh context to pool\.Stream`
}
