package app

import (
	"context"

	"ctxflow/internal/pool"
	"ctxflow/simplex"
)

// Forward is the contract: accept ctx, hand it on.
func Forward(ctx context.Context, p *simplex.Problem) error {
	_, err := simplex.Solve(ctx, p)
	return err
}

// FanOut forwards ctx to the pool.
func FanOut(ctx context.Context, n int) {
	pool.Map(ctx, n, func(int) {})
}

// unexportedHelper is below the contract line; its callers own ctx
// discipline.
func unexportedHelper(p *simplex.Problem) {
	simplex.Solve(context.TODO(), p)
}

// Deferred returns a closure; the closure's ctx discipline belongs to
// whoever invokes it, so the FuncLit is exempt here.
func Deferred(p *simplex.Problem) func() {
	return func() { simplex.Solve(context.TODO(), p) }
}
