package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Obslabels checks every series name handed to the obs registry
// (obs.Metrics Counter / Gauge / Timing, and Registry equivalents).
// A series name must be a compile-time string so the metric namespace
// is enumerable from the source, and its label set must be well
// formed Prometheus style: `name{key="value",key2="value2"}`. Dynamic
// content (scheduler names, port ids) is welcome — but only spliced
// into label *values*, never into the metric name or label keys, so
// concatenations are accepted exactly when every non-literal operand
// sits strictly inside the quotes of a label value.
var Obslabels = &Analyzer{
	Name: "obslabels",
	Doc:  "obs series names must be literal with well-formed label sets",
	Run:  runObslabels,
}

// obsSeriesFuncs are the obs entry points whose first argument is a
// series name.
var obsSeriesFuncs = map[string]bool{
	"Counter": true,
	"Gauge":   true,
	"Timing":  true,
}

func runObslabels(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || pathBase(fn.Pkg().Path()) != "obs" {
				return true
			}
			if !obsSeriesFuncs[fn.Name()] || len(call.Args) == 0 {
				return true
			}
			checkSeriesArg(pass, fn.Name(), call.Args[0])
			return true
		})
	}
}

// checkSeriesArg validates one series-name argument expression.
func checkSeriesArg(pass *Pass, fname string, arg ast.Expr) {
	series, ok := flattenSeries(pass, arg)
	if !ok {
		pass.Reportf(arg.Pos(),
			"obs.%s series name is not a string literal (dynamic parts are only allowed inside label-value quotes)", fname)
		return
	}
	if err := checkSeriesSyntax(series); err != "" {
		pass.Reportf(arg.Pos(), "obs.%s series %q: %s", fname, series, err)
	}
}

// flattenSeries resolves the argument to the series string with every
// dynamic operand replaced by the placeholder "\x00". It accepts
// string literals, named string constants, and + concatenations;
// anything else makes the whole expression dynamic. The placeholder
// never appears in source text, so checkSeriesSyntax can tell exactly
// where the dynamic pieces landed.
func flattenSeries(pass *Pass, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if x.Kind != token.STRING {
			return "", false
		}
		if tv, ok := pass.Info.Types[x]; ok && tv.Value != nil {
			return constStringValue(tv.Value.ExactString()), true
		}
		return "", false
	case *ast.BinaryExpr:
		if x.Op != token.ADD {
			return "", false
		}
		l, lok := flattenSeries(pass, x.X)
		r, rok := flattenSeries(pass, x.Y)
		if !lok || !rok {
			// One side is dynamic: keep flattening with a placeholder so
			// `"a{b=\"" + v + "\"}"` still validates.
			if !lok {
				l = dynamicMark
			}
			if !rok {
				r = dynamicMark
			}
		}
		return l + r, true
	default:
		// Named constants and typed conversions of constants.
		if tv, ok := pass.Info.Types[ast.Unparen(e)]; ok && tv.Value != nil {
			return constStringValue(tv.Value.ExactString()), true
		}
		return "", false
	}
}

const dynamicMark = "\x00"

// constStringValue strips the quotes from go/constant's ExactString
// rendering of a string value.
func constStringValue(s string) string {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '`') {
		s = s[1 : len(s)-1]
	}
	// ExactString escapes like a Go literal; the only escapes the obs
	// namespace uses are \" inside label values.
	return strings.ReplaceAll(s, `\"`, `"`)
}

// checkSeriesSyntax validates `name` or `name{k="v",k2="v2"}` with
// dynamicMark allowed only inside the quotes of a label value. It
// returns "" when valid, else a human-readable problem.
func checkSeriesSyntax(s string) string {
	name, rest, hasLabels := strings.Cut(s, "{")
	if !validMetricName(name) {
		return "metric name must match [a-zA-Z_][a-zA-Z0-9_]*"
	}
	if !hasLabels {
		if strings.Contains(s, dynamicMark) {
			return "dynamic content outside label-value quotes"
		}
		return ""
	}
	body, ok := strings.CutSuffix(rest, "}")
	if !ok || strings.Contains(body, "{") || strings.Contains(body, "}") {
		return "unbalanced label braces"
	}
	if body == "" {
		return "empty label set; drop the braces"
	}
	for _, pair := range splitLabelPairs(body) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return "label without '=': " + strings.ReplaceAll(pair, dynamicMark, "<dyn>")
		}
		if !validMetricName(k) {
			return "label key must match [a-zA-Z_][a-zA-Z0-9_]*"
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return "label value must be double-quoted"
		}
	}
	return ""
}

// splitLabelPairs splits on commas that are outside quotes.
func splitLabelPairs(body string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	return append(out, body[start:])
}

// validMetricName checks [a-zA-Z_][a-zA-Z0-9_]* with no dynamic marks.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
