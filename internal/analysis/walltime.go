package analysis

import "go/ast"

// Walltime bans reading the wall clock outside the packages that are
// allowed to observe it. Simulation results must be a pure function of
// the spec: virtual time comes from the event loop, never from
// time.Now. The clock is confined to package obs (which hides it
// behind Timing/Stopwatch), package bench (which measures real solver
// latency by design), and cmd/* binaries (flag timeouts, log stamps).
// time.Since and time.Until are the same read in disguise.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "ban time.Now/time.Since/time.Until outside obs, bench, and cmd/*",
	Run:  runWalltime,
}

var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runWalltime(pass *Pass) {
	base := pathBase(pass.PkgPath)
	if base == "obs" || base == "bench" || hasPathSegment(pass.PkgPath, "cmd") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if clockFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock outside obs/bench/cmd; route timing through obs.Timing or pass durations in",
					fn.Name())
			}
			return true
		})
	}
}
