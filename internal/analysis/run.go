package analysis

import "sort"

// RunPackage runs the analyzers over one loaded package and returns
// the findings after suppression filtering (including findings for the
// malformed suppressions themselves).
func RunPackage(lp *LoadedPackage, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			PkgPath:  lp.PkgPath,
			Fset:     lp.Fset,
			Files:    lp.Files,
			Pkg:      lp.Pkg,
			Info:     lp.Info,
		}
		pass.report = func(d Diagnostic) {
			raw = append(raw, Finding{
				Analyzer: a.Name,
				Pos:      lp.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		a.Run(pass)
	}
	var sups []suppression
	for _, f := range lp.Files {
		sups = append(sups, parseSuppressions(lp.Fset, f)...)
	}
	return sortFindings(filterFindings(raw, sups))
}

// Run loads every package matched by the patterns and runs the full
// suite (or the given subset) over each. It is the library behind
// cmd/coflowlint.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	if len(analyzers) == 0 {
		analyzers = All()
	}
	pkgs, err := LoadPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, lp := range pkgs {
		out = append(out, RunPackage(lp, analyzers)...)
	}
	return sortFindings(out), nil
}

func sortFindings(fs []Finding) []Finding {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return fs
}
