package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// suppression is one parsed //coflowlint:allow directive.
type suppression struct {
	pos      token.Position
	analyzer string // "" when malformed
	reason   string // "" when missing
}

// wellFormed reports whether the directive names an analyzer and
// carries a " -- reason" justification.
func (s suppression) wellFormed() bool { return s.analyzer != "" && s.reason != "" }

const allowPrefix = "coflowlint:allow"

// parseSuppressions extracts every //coflowlint:allow directive from
// the file, keyed by the line it suppresses: an inline directive
// suppresses its own line, a directive on its own comment line
// suppresses the line below. Both are recorded under the directive's
// own line here; the filter checks both offsets.
func parseSuppressions(fset *token.FileSet, file *ast.File) []suppression {
	var out []suppression
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // block comments are never directives
			}
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			rest := text[len(allowPrefix):]
			s := suppression{pos: fset.Position(c.Pos())}
			name, reason, hasReason := strings.Cut(rest, "--")
			s.analyzer = strings.TrimSpace(name)
			if hasReason {
				s.reason = strings.TrimSpace(reason)
			}
			out = append(out, s)
		}
	}
	return out
}

// filterFindings drops findings covered by a well-formed suppression
// for their analyzer on the same line or the line above, and appends
// one "suppress" finding per malformed directive. Used directives are
// consumed so one //coflowlint:allow cannot blanket a whole file.
func filterFindings(findings []Finding, sups []suppression) []Finding {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	avail := make(map[key]int)
	for _, s := range sups {
		if s.wellFormed() {
			avail[key{s.pos.Filename, s.pos.Line, s.analyzer}]++
		}
	}
	var out []Finding
	for _, f := range findings {
		same := key{f.Pos.Filename, f.Pos.Line, f.Analyzer}
		above := key{f.Pos.Filename, f.Pos.Line - 1, f.Analyzer}
		if avail[same] > 0 {
			avail[same]--
			continue
		}
		if avail[above] > 0 {
			avail[above]--
			continue
		}
		out = append(out, f)
	}
	for _, s := range sups {
		if !s.wellFormed() {
			out = append(out, Finding{
				Analyzer: "suppress",
				Pos:      s.pos,
				Message:  "malformed suppression: want //coflowlint:allow <analyzer> -- <reason>",
			})
		}
	}
	return out
}
