package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []suppression) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, parseSuppressions(fset, f)
}

func TestParseSuppressions(t *testing.T) {
	_, sups := parseSrc(t, `package x

//coflowlint:allow detrange -- order cannot matter here
var a int

//coflowlint:allow detrange
var b int

// an ordinary comment mentioning coflowlint is not a directive
var c int
`)
	if len(sups) != 2 {
		t.Fatalf("got %d suppressions, want 2: %+v", len(sups), sups)
	}
	if !sups[0].wellFormed() || sups[0].analyzer != "detrange" || sups[0].reason != "order cannot matter here" {
		t.Errorf("first directive parsed as %+v", sups[0])
	}
	if sups[1].wellFormed() {
		t.Errorf("bare directive parsed as well-formed: %+v", sups[1])
	}
}

func TestFilterFindingsConsumesOnce(t *testing.T) {
	pos := func(line int) token.Position { return token.Position{Filename: "x.go", Line: line} }
	findings := []Finding{
		{Analyzer: "detrange", Pos: pos(10), Message: "first"},
		{Analyzer: "detrange", Pos: pos(11), Message: "second"},
		{Analyzer: "walltime", Pos: pos(10), Message: "other analyzer"},
	}
	sups := []suppression{
		{pos: pos(9), analyzer: "detrange", reason: "justified"},
	}
	out := filterFindings(findings, sups)
	// The directive on line 9 suppresses exactly the detrange finding
	// on line 10; the line-11 finding and the walltime finding stay.
	if len(out) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(out), out)
	}
	if out[0].Message != "second" || out[1].Analyzer != "walltime" {
		t.Errorf("wrong findings survived: %v", out)
	}
}

func TestFilterFindingsMalformed(t *testing.T) {
	pos := token.Position{Filename: "x.go", Line: 5}
	out := filterFindings(nil, []suppression{{pos: pos, analyzer: "detrange"}})
	if len(out) != 1 || out[0].Analyzer != "suppress" {
		t.Fatalf("bare directive did not produce a suppress finding: %v", out)
	}
}
