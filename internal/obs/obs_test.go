package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every handle and the registry itself are usable at
// nil — the zero-overhead contract instrumented code relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("g")
	g.Add(1)
	g.Set(7)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	tm := r.Timing("t")
	tm.Observe(time.Second)
	if tm.Count() != 0 || tm.Seconds() != 0 {
		t.Fatal("nil timing accumulated")
	}
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Timings)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: %q, %v", sb.String(), err)
	}
}

// TestCounterGaugeTiming: basic accumulation and handle identity (the
// same name returns the same handle).
func TestCounterGaugeTiming(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("events_total") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
	g.Set(9)
	if g.Value() != 9 {
		t.Fatalf("gauge = %d, want 9", g.Value())
	}
	tm := r.Timing("stage")
	tm.Observe(250 * time.Millisecond)
	tm.Observe(750 * time.Millisecond)
	if tm.Count() != 2 {
		t.Fatalf("timing count = %d", tm.Count())
	}
	if got := tm.Seconds(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("timing seconds = %v", got)
	}
}

// TestHistogram: bucket assignment is upper-inclusive and the +Inf
// overflow is implicit.
func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-1066.5) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
	snap := r.Snapshot().Histograms["sizes"]
	want := []int64{2, 2, 1} // ≤1: {0.5,1}; ≤10: {5,10}; ≤100: {50}; +Inf: 1000
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all %v)", i, snap.Buckets[i], w, snap.Buckets)
		}
	}
}

// TestSnapshotJSON: snapshots round-trip through JSON and omit empty
// sections.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter(`sim_events_total{kind="arrival"}`).Add(3)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters[`sim_events_total{kind="arrival"}`] != 3 {
		t.Fatalf("round trip lost the counter: %s", b)
	}
	if strings.Contains(string(b), "histograms") {
		t.Fatalf("empty section serialized: %s", b)
	}
}

// TestWritePrometheus: the text exposition carries TYPE lines, splices
// le into existing label sets, and emits cumulative buckets.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`http_requests_total{route="/v1/run"}`).Add(7)
	r.Gauge("inflight").Set(2)
	r.Timing(`stage_wait{route="/v1/run"}`).Observe(1500 * time.Millisecond)
	h := r.Histogram(`latency_seconds{route="/v1/run"}`, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{route="/v1/run"} 7`,
		"# TYPE inflight gauge",
		"inflight 2",
		"# TYPE stage_wait_seconds_total counter",
		`stage_wait_seconds_total{route="/v1/run"} 1.5`,
		`stage_wait_events_total{route="/v1/run"} 1`,
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{route="/v1/run",le="0.1"} 1`,
		`latency_seconds_bucket{route="/v1/run",le="1"} 2`,
		`latency_seconds_bucket{route="/v1/run",le="+Inf"} 3`,
		`latency_seconds_sum{route="/v1/run"} 5.55`,
		`latency_seconds_count{route="/v1/run"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentRecording: many goroutines hammer shared handles and
// registration races; totals must be exact (run under -race).
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h", []float64{10, 100})
			tm := r.Timing("t")
			g := r.Gauge("g")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 150))
				tm.Observe(time.Microsecond)
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := r.Timing("t").Count(); got != workers*per {
		t.Fatalf("timing count = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}
