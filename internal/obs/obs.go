// Package obs is a flat, export-friendly, zero-dependency metrics
// core: counters, gauges, bounded histograms, and per-stage timings,
// all recorded with atomics on the hot path (no locks, no
// allocation). A Registry hands out named handles; every handle and
// the Registry itself tolerate a nil receiver, so instrumented code
// threads an optional *Registry and pays near-zero cost when it is
// nil (one pointer test per record site).
//
// Series names follow the Prometheus convention with inline labels,
// e.g. `sim_events_total{kind="arrival"}` — the full string is the
// map key, which keeps the registry flat and the export trivial.
// Recording never changes scheduling decisions: instrumentation
// observes, it does not steer, and goldens stay bit-identical with
// telemetry on or off.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer series.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer series that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (negative to decrease). No-op on nil.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Set pins the gauge to n. No-op on nil.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timing accumulates a duration series: event count and total
// nanoseconds. It is the cheap per-stage alternative to a histogram
// when only totals and means matter.
type Timing struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Stopwatch measures one interval for a Timing. It exists so that
// instrumented packages never touch the wall clock themselves — the
// determinism contract (machine-enforced by coflowlint's walltime
// analyzer) confines time.Now to this package, keeping wall-clock
// readings out of every report and schedule.
type Stopwatch struct {
	t  *Timing
	t0 time.Time
}

// Start begins a stopwatch for the timing. On a nil receiver the
// clock is not read at all and the returned stopwatch is inert, so
// un-instrumented runs pay one pointer test and nothing else.
func (t *Timing) Start() Stopwatch {
	if t == nil {
		return Stopwatch{}
	}
	return Stopwatch{t: t, t0: time.Now()}
}

// Stop records the elapsed interval. No-op for an inert stopwatch.
func (s Stopwatch) Stop() {
	if s.t == nil {
		return
	}
	s.t.Observe(time.Since(s.t0))
}

// Observe records one duration. No-op on a nil receiver.
func (t *Timing) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.count.Add(1)
	t.nanos.Add(int64(d))
}

// Count reads the number of observations (0 on nil).
func (t *Timing) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Seconds reads the accumulated time in seconds (0 on nil).
func (t *Timing) Seconds() float64 {
	if t == nil {
		return 0
	}
	return float64(t.nanos.Load()) / 1e9
}

// Histogram is a fixed-bound cumulative-bucket histogram. Bounds are
// upper-inclusive like Prometheus `le`; an implicit +Inf bucket
// catches the rest. Observation is lock-free: one atomic add on the
// bucket, one on the count, and a CAS loop folding the value into a
// float64 sum.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the accumulated value sum (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry is a named collection of metrics. Registration (the
// Counter/Gauge/Timing/Histogram lookups) takes a mutex; recording
// through the returned handles is pure atomics. Call sites resolve
// handles once at construction time and record through them in the
// hot loop.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaugs map[string]*Gauge
	tims  map[string]*Timing
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  map[string]*Counter{},
		gaugs: map[string]*Gauge{},
		tims:  map[string]*Timing{},
		hists: map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gaugs[name]
	if !ok {
		g = &Gauge{}
		r.gaugs[name] = g
	}
	return g
}

// Timing returns the timing registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Timing(name string) *Timing {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tims[name]
	if !ok {
		t = &Timing{}
		r.tims[name] = t
	}
	return t
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (later calls reuse the
// original bounds; bounds must be sorted ascending). Returns nil on a
// nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b))}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one exported histogram: cumulative bucket
// counts keyed by their upper bound plus count and sum.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
}

// TimingSnapshot is one exported timing: observation count and total
// seconds.
type TimingSnapshot struct {
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Snapshot is a point-in-time export of a registry, the shape both
// the JSON (-stats) and Prometheus (/metrics) front doors serialize.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Timings    map[string]TimingSnapshot    `json:"timings,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports every registered series. Returns an empty snapshot
// on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Timings:    map[string]TimingSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gaugs {
		s.Gauges[name] = g.Value()
	}
	for name, t := range r.tims {
		s.Timings[name] = TimingSnapshot{Count: t.Count(), Seconds: t.Seconds()}
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: make([]int64, len(h.buckets)),
			Count:   h.Count(),
			Sum:     h.Sum(),
		}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// MarshalJSON keeps empty sections out of the wire format.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot
	a := alias(*s)
	if len(a.Counters) == 0 {
		a.Counters = nil
	}
	if len(a.Gauges) == 0 {
		a.Gauges = nil
	}
	if len(a.Timings) == 0 {
		a.Timings = nil
	}
	if len(a.Histograms) == 0 {
		a.Histograms = nil
	}
	return json.Marshal(a)
}

// spliceLabel inserts an extra label into a series name that may
// already carry a label set: `a_total{k="v"}` + (le, 0.5) →
// `a_total{k="v",le="0.5"}`; `a_total` → `a_total{le="0.5"}`.
func spliceLabel(name, label, value string) string {
	if i := strings.LastIndexByte(name, '}'); i >= 0 && strings.IndexByte(name, '{') >= 0 {
		return name[:i] + `,` + label + `="` + value + `"}`
	}
	return name + "{" + label + `="` + value + `"}`
}

// baseName strips an inline label set: `a_total{k="v"}` → `a_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// formatFloat renders a float the way Prometheus clients do:
// shortest representation, "+Inf" for the overflow bucket bound.
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", f)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters as `# TYPE x counter`,
// gauges as gauges, timings as a pair of `_seconds_total` /
// `_events_total` counters, histograms with cumulative `_bucket`
// series, `le` spliced into any inline label set. Output is sorted by
// series name so scrapes are diffable. Safe on a nil registry (writes
// nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	typed := map[string]bool{} // base names with a TYPE line emitted

	addType := func(base, kind string) string {
		if typed[base] {
			return ""
		}
		typed[base] = true
		return "# TYPE " + base + " " + kind + "\n"
	}

	type series struct {
		base, kind string
		lines      []string
	}
	var all []series
	for name, v := range s.Counters {
		all = append(all, series{baseName(name), "counter",
			[]string{fmt.Sprintf("%s %d\n", name, v)}})
	}
	for name, v := range s.Gauges {
		all = append(all, series{baseName(name), "gauge",
			[]string{fmt.Sprintf("%s %d\n", name, v)}})
	}
	for name, t := range s.Timings {
		base := baseName(name)
		secName := base + "_seconds_total"
		cntName := base + "_events_total"
		if i := strings.IndexByte(name, '{'); i >= 0 {
			secName += name[i:]
			cntName += name[i:]
		}
		all = append(all, series{base + "_seconds_total", "counter",
			[]string{fmt.Sprintf("%s %s\n", secName, formatFloat(t.Seconds))}})
		all = append(all, series{base + "_events_total", "counter",
			[]string{fmt.Sprintf("%s %d\n", cntName, t.Count)}})
	}
	for name, h := range s.Histograms {
		base := baseName(name)
		bucketName := base + "_bucket"
		sumName := base + "_sum"
		cntName := base + "_count"
		if i := strings.IndexByte(name, '{'); i >= 0 {
			bucketName += name[i:]
			sumName += name[i:]
			cntName += name[i:]
		}
		var ls []string
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Buckets[i]
			ls = append(ls, fmt.Sprintf("%s %d\n",
				spliceLabel(bucketName, "le", formatFloat(b)), cum))
		}
		ls = append(ls, fmt.Sprintf("%s %d\n",
			spliceLabel(bucketName, "le", "+Inf"), h.Count))
		ls = append(ls, fmt.Sprintf("%s %s\n", sumName, formatFloat(h.Sum)))
		ls = append(ls, fmt.Sprintf("%s %d\n", cntName, h.Count))
		all = append(all, series{base, "histogram", ls})
	}

	sort.Slice(all, func(i, j int) bool {
		if all[i].base != all[j].base {
			return all[i].base < all[j].base
		}
		return all[i].lines[0] < all[j].lines[0]
	})
	for _, sr := range all {
		if line := addType(sr.base, sr.kind); line != "" {
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
		sort.Strings(sr.lines)
		for _, l := range sr.lines {
			if _, err := io.WriteString(w, l); err != nil {
				return err
			}
		}
	}
	return nil
}
