// Package timegrid implements the time expansions used by the paper's
// linear programs: the uniform slotting of Section 3 (slot t covers
// [t−1, t] in slot units) and the geometric intervals of Appendix A
// (τ_0 = 0, τ_1 = 1, τ_k = (1+ε)^{k−1}) that keep the LP polynomial
// when the horizon is large, at a (1+ε) cost in the approximation
// ratio.
//
// All grid quantities are expressed in slot units. Converting wall
// clock seconds to slot units (the paper uses 50-second slots) is the
// caller's concern.
package timegrid

import (
	"fmt"
	"math"
)

// Grid is a partition of [0, Horizon] into consecutive intervals
// ("slots"). Slot k ∈ {0, …, NumSlots()-1} covers (Start(k), End(k)].
type Grid struct {
	// bounds[0] = 0 and slot k covers (bounds[k], bounds[k+1]].
	bounds []float64
}

// Uniform returns a grid of n unit-length slots: bounds 0, 1, …, n.
// This is the Section 3 time-indexed grid.
func Uniform(n int) Grid {
	if n <= 0 {
		panic(fmt.Sprintf("timegrid: Uniform(%d)", n))
	}
	b := make([]float64, n+1)
	for i := range b {
		b[i] = float64(i)
	}
	return Grid{bounds: b}
}

// Geometric returns the Appendix A grid covering at least horizon slot
// units: bounds 0, 1, (1+ε), (1+ε)², … . ε must be positive.
func Geometric(horizon float64, eps float64) Grid {
	if eps <= 0 {
		panic(fmt.Sprintf("timegrid: Geometric eps=%g", eps))
	}
	if horizon < 1 {
		horizon = 1
	}
	b := []float64{0, 1}
	for b[len(b)-1] < horizon {
		b = append(b, b[len(b)-1]*(1+eps))
	}
	return Grid{bounds: b}
}

// NumSlots reports the number of intervals.
func (g Grid) NumSlots() int { return len(g.bounds) - 1 }

// Horizon returns the end of the last interval.
func (g Grid) Horizon() float64 { return g.bounds[len(g.bounds)-1] }

// Start returns the left endpoint of slot k.
func (g Grid) Start(k int) float64 { return g.bounds[k] }

// End returns the right endpoint of slot k.
func (g Grid) End(k int) float64 { return g.bounds[k+1] }

// Len returns the length of slot k.
func (g Grid) Len(k int) float64 { return g.bounds[k+1] - g.bounds[k] }

// IsUniform reports whether every slot has length 1.
func (g Grid) IsUniform() bool {
	for k := 0; k < g.NumSlots(); k++ {
		if math.Abs(g.Len(k)-1) > 1e-12 {
			return false
		}
	}
	return true
}

// SlotOf returns the slot containing time t (with slot k covering
// (Start(k), End(k)], and t=0 mapping to slot 0). Times beyond the
// horizon map to the last slot.
func (g Grid) SlotOf(t float64) int {
	if t <= g.bounds[1] {
		return 0
	}
	// Binary search for the first bound ≥ t.
	lo, hi := 1, len(g.bounds)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.bounds[mid] >= t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo - 1
}

// FirstUsableSlot returns the first slot whose start is at or after
// the release time r: releases are snapped up to slot boundaries so
// schedules derived from the LP never transmit before release (the
// implementation detail discussed with Figure 8 of the paper: "we will
// not start a job until the whole current interval is after its
// release time"). Returns NumSlots() when r is at or beyond the
// horizon.
func (g Grid) FirstUsableSlot(r float64) int {
	if r <= 0 {
		return 0
	}
	n := g.NumSlots()
	// First k with Start(k) ≥ r.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if g.Start(mid) >= r {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Bounds returns a copy of the interval boundaries.
func (g Grid) Bounds() []float64 { return append([]float64(nil), g.bounds...) }

// String summarizes the grid.
func (g Grid) String() string {
	return fmt.Sprintf("timegrid.Grid{%d slots, horizon %.4g}", g.NumSlots(), g.Horizon())
}
