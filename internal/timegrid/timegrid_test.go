package timegrid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformBasics(t *testing.T) {
	g := Uniform(5)
	if g.NumSlots() != 5 {
		t.Fatalf("slots = %d, want 5", g.NumSlots())
	}
	if g.Horizon() != 5 {
		t.Fatalf("horizon = %v, want 5", g.Horizon())
	}
	for k := 0; k < 5; k++ {
		if g.Len(k) != 1 || g.Start(k) != float64(k) || g.End(k) != float64(k+1) {
			t.Fatalf("slot %d: [%v,%v] len %v", k, g.Start(k), g.End(k), g.Len(k))
		}
	}
	if !g.IsUniform() {
		t.Fatal("uniform grid not recognized")
	}
}

func TestUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	Uniform(0)
}

func TestGeometricBounds(t *testing.T) {
	g := Geometric(10, 0.5)
	b := g.Bounds()
	if b[0] != 0 || b[1] != 1 {
		t.Fatalf("bounds start %v", b[:2])
	}
	for k := 2; k < len(b); k++ {
		if math.Abs(b[k]-b[k-1]*1.5) > 1e-12 {
			t.Fatalf("bound %d = %v, want %v", k, b[k], b[k-1]*1.5)
		}
	}
	if g.Horizon() < 10 {
		t.Fatalf("horizon %v < 10", g.Horizon())
	}
	if g.IsUniform() {
		t.Fatal("geometric grid misdetected as uniform")
	}
}

func TestGeometricSlotCountLogarithmic(t *testing.T) {
	g := Geometric(1e6, 0.2)
	// Number of intervals ≈ log_{1.2}(1e6) ≈ 76.
	if n := g.NumSlots(); n > 100 {
		t.Fatalf("slots = %d, want ≈76", n)
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for eps=0")
		}
	}()
	Geometric(10, 0)
}

func TestSlotOf(t *testing.T) {
	g := Uniform(4)
	cases := []struct {
		t    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, {1.0001, 1}, {2, 1}, {3.5, 3}, {4, 3}, {99, 3},
	}
	for _, c := range cases {
		if got := g.SlotOf(c.t); got != c.want {
			t.Errorf("SlotOf(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestFirstUsableSlot(t *testing.T) {
	g := Uniform(4)
	cases := []struct {
		r    float64
		want int
	}{
		{0, 0}, {-1, 0}, {0.5, 1}, {1, 1}, {1.5, 2}, {4, 4}, {10, 4},
	}
	for _, c := range cases {
		if got := g.FirstUsableSlot(c.r); got != c.want {
			t.Errorf("FirstUsableSlot(%v) = %d, want %d", c.r, got, c.want)
		}
	}
	geo := Geometric(8, 1.0) // bounds 0,1,2,4,8
	geoCases := []struct {
		r    float64
		want int
	}{
		{0, 0}, {0.5, 1}, {1, 1}, {1.5, 2}, {3, 3}, {4, 3}, {5, 4}, {8, 4},
	}
	for _, c := range geoCases {
		if got := geo.FirstUsableSlot(c.r); got != c.want {
			t.Errorf("geo FirstUsableSlot(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestSlotOfConsistentWithBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var g Grid
		if r.Intn(2) == 0 {
			g = Uniform(1 + r.Intn(30))
		} else {
			g = Geometric(1+r.Float64()*1000, 0.05+r.Float64())
		}
		tt := r.Float64() * g.Horizon()
		k := g.SlotOf(tt)
		if k < 0 || k >= g.NumSlots() {
			return false
		}
		// t must lie in (Start, End] (except t ≤ first bound → slot 0).
		if tt > g.End(k)+1e-12 {
			return false
		}
		if k > 0 && tt <= g.Start(k)-1e-12 {
			return false
		}
		// FirstUsableSlot never returns a slot starting before r.
		fu := g.FirstUsableSlot(tt)
		if fu < g.NumSlots() && g.Start(fu) < tt-1e-12 {
			return false
		}
		// And it is the tightest such slot.
		if fu > 0 && fu <= g.NumSlots() && g.Start(fu-1) >= tt {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestLenSumsToHorizon(t *testing.T) {
	g := Geometric(500, 0.3)
	var sum float64
	for k := 0; k < g.NumSlots(); k++ {
		sum += g.Len(k)
	}
	if math.Abs(sum-g.Horizon()) > 1e-9 {
		t.Fatalf("len sum %v, horizon %v", sum, g.Horizon())
	}
}

func TestStringer(t *testing.T) {
	if s := Uniform(3).String(); s == "" {
		t.Fatal("empty String()")
	}
}
