package coflow

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Serialization of instances: the graph is encoded structurally (node
// names and directed edges) so an instance file is self-contained and
// replayable by cmd/coflowsim.

type jsonEdge struct {
	From     string  `json:"from"`
	To       string  `json:"to"`
	Capacity float64 `json:"capacity"`
}

type jsonFlow struct {
	Source   string  `json:"source"`
	Sink     string  `json:"sink"`
	Demand   float64 `json:"demand"`
	Path     []int   `json:"path,omitempty"`
	AltPaths [][]int `json:"altPaths,omitempty"`
	Release  float64 `json:"release,omitempty"`
}

type jsonCoflow struct {
	ID      int        `json:"id"`
	Weight  float64    `json:"weight"`
	Release float64    `json:"release"`
	Flows   []jsonFlow `json:"flows"`
}

type jsonInstance struct {
	Nodes   []string     `json:"nodes"`
	Edges   []jsonEdge   `json:"edges"`
	Coflows []jsonCoflow `json:"coflows"`
}

// WriteJSON serializes the instance.
func (in *Instance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in.toJSON())
}

// MarshalJSON implements json.Marshaler with the WriteJSON encoding,
// so instances embed directly inside larger documents (internal/spec
// carries one as Spec.Instance).
func (in *Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(in.toJSON())
}

// UnmarshalJSON implements json.Unmarshaler; it accepts exactly what
// MarshalJSON/WriteJSON produce.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var ji jsonInstance
	if err := json.Unmarshal(data, &ji); err != nil {
		return fmt.Errorf("coflow: decoding instance: %w", err)
	}
	dec, err := fromJSON(&ji)
	if err != nil {
		return err
	}
	*in = *dec
	return nil
}

func (in *Instance) toJSON() *jsonInstance {
	g := in.Graph
	ji := jsonInstance{}
	for v := graph.NodeID(0); v < graph.NodeID(g.NumNodes()); v++ {
		ji.Nodes = append(ji.Nodes, g.NodeName(v))
	}
	for _, e := range g.Edges() {
		ji.Edges = append(ji.Edges, jsonEdge{
			From: g.NodeName(e.From), To: g.NodeName(e.To), Capacity: e.Capacity,
		})
	}
	for i := range in.Coflows {
		c := &in.Coflows[i]
		jc := jsonCoflow{ID: c.ID, Weight: c.Weight, Release: c.Release}
		for _, f := range c.Flows {
			jf := jsonFlow{
				Source: g.NodeName(f.Source), Sink: g.NodeName(f.Sink),
				Demand: f.Demand, Release: f.Release,
			}
			for _, e := range f.Path {
				jf.Path = append(jf.Path, int(e))
			}
			for _, p := range f.AltPaths {
				jp := make([]int, len(p))
				for k, e := range p {
					jp[k] = int(e)
				}
				jf.AltPaths = append(jf.AltPaths, jp)
			}
			jc.Flows = append(jc.Flows, jf)
		}
		ji.Coflows = append(ji.Coflows, jc)
	}
	return &ji
}

// ReadJSON deserializes an instance written by WriteJSON.
func ReadJSON(r io.Reader) (*Instance, error) {
	var ji jsonInstance
	if err := json.NewDecoder(r).Decode(&ji); err != nil {
		return nil, fmt.Errorf("coflow: decoding instance: %w", err)
	}
	return fromJSON(&ji)
}

func fromJSON(ji *jsonInstance) (*Instance, error) {
	g := graph.New()
	for _, name := range ji.Nodes {
		g.AddNode(name)
	}
	for _, e := range ji.Edges {
		from, ok := g.Node(e.From)
		if !ok {
			return nil, fmt.Errorf("coflow: edge references unknown node %q", e.From)
		}
		to, ok := g.Node(e.To)
		if !ok {
			return nil, fmt.Errorf("coflow: edge references unknown node %q", e.To)
		}
		if e.Capacity <= 0 {
			return nil, fmt.Errorf("coflow: edge %s->%s has capacity %g", e.From, e.To, e.Capacity)
		}
		g.AddEdge(from, to, e.Capacity)
	}
	in := &Instance{Graph: g}
	for _, jc := range ji.Coflows {
		c := Coflow{ID: jc.ID, Weight: jc.Weight, Release: jc.Release}
		for _, jf := range jc.Flows {
			src, ok := g.Node(jf.Source)
			if !ok {
				return nil, fmt.Errorf("coflow %d: unknown source %q", jc.ID, jf.Source)
			}
			snk, ok := g.Node(jf.Sink)
			if !ok {
				return nil, fmt.Errorf("coflow %d: unknown sink %q", jc.ID, jf.Sink)
			}
			f := Flow{Source: src, Sink: snk, Demand: jf.Demand, Release: jf.Release}
			for _, e := range jf.Path {
				if e < 0 || e >= g.NumEdges() {
					return nil, fmt.Errorf("coflow %d: path references unknown edge %d", jc.ID, e)
				}
				f.Path = append(f.Path, graph.EdgeID(e))
			}
			for _, jp := range jf.AltPaths {
				p := make([]graph.EdgeID, len(jp))
				for k, e := range jp {
					if e < 0 || e >= g.NumEdges() {
						return nil, fmt.Errorf("coflow %d: alt path references unknown edge %d", jc.ID, e)
					}
					p[k] = graph.EdgeID(e)
				}
				f.AltPaths = append(f.AltPaths, p)
			}
			c.Flows = append(c.Flows, f)
		}
		in.Coflows = append(in.Coflows, c)
	}
	return in, nil
}
