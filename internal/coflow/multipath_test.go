package coflow

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

func TestAssignKShortestPaths(t *testing.T) {
	in := figure2Instance()
	if err := in.AssignKShortestPaths(3); err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(MultiPath); err != nil {
		t.Fatal(err)
	}
	// The s→t coflow gets all three 2-hop paths.
	if got := len(in.Coflows[3].Flows[0].AltPaths); got != 3 {
		t.Fatalf("s→t candidate paths = %d, want 3", got)
	}
	// Existing path sets are preserved.
	before := in.Coflows[0].Flows[0].AltPaths
	if err := in.AssignKShortestPaths(1); err != nil {
		t.Fatal(err)
	}
	if len(in.Coflows[0].Flows[0].AltPaths) != len(before) {
		t.Fatal("existing AltPaths overwritten")
	}
}

func TestAssignKShortestPathsUnreachable(t *testing.T) {
	g := graph.Gadget(2)
	x0, _ := graph.GadgetPair(g, 0)
	_, y1 := graph.GadgetPair(g, 1)
	in := &Instance{Graph: g, Coflows: []Coflow{
		{ID: 0, Weight: 1, Flows: []Flow{{Source: x0, Sink: y1, Demand: 1}}},
	}}
	if err := in.AssignKShortestPaths(2); err == nil {
		t.Fatal("expected error for unreachable sink")
	}
}

func TestMultiPathValidation(t *testing.T) {
	in := figure2Instance()
	// No AltPaths yet.
	if err := in.Validate(MultiPath); err == nil {
		t.Fatal("expected error without AltPaths")
	}
	if err := in.AssignKShortestPaths(2); err != nil {
		t.Fatal(err)
	}
	// Corrupt one path.
	in.Coflows[0].Flows[0].AltPaths[0] = []graph.EdgeID{0}
	in.Coflows[0].Flows[0].AltPaths[0][0] = in.Coflows[1].Flows[0].AltPaths[0][0]
	if err := in.Validate(MultiPath); err == nil {
		t.Fatal("expected error for a path not connecting source to sink")
	}
}

func TestMultiPathJSONRoundTrip(t *testing.T) {
	in := figure2Instance()
	if err := in.AssignKShortestPaths(3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(MultiPath); err != nil {
		t.Fatal(err)
	}
	for ci := range in.Coflows {
		a := in.Coflows[ci].Flows[0].AltPaths
		b := back.Coflows[ci].Flows[0].AltPaths
		if len(a) != len(b) {
			t.Fatalf("coflow %d: alt path count %d vs %d", ci, len(a), len(b))
		}
		for pi := range a {
			if len(a[pi]) != len(b[pi]) {
				t.Fatalf("coflow %d path %d length changed", ci, pi)
			}
			for k := range a[pi] {
				if a[pi][k] != b[pi][k] {
					t.Fatalf("coflow %d path %d edge %d changed", ci, pi, k)
				}
			}
		}
	}
}

func TestReadJSONBadAltPath(t *testing.T) {
	src := `{"nodes":["a","b"],"edges":[{"from":"a","to":"b","capacity":1}],
	"coflows":[{"id":0,"weight":1,"flows":[
	  {"source":"a","sink":"b","demand":1,"altPaths":[[9]]}]}]}`
	if _, err := ReadJSON(bytes.NewReader([]byte(src))); err == nil {
		t.Fatal("expected error for out-of-range alt path edge")
	}
}

func TestMultiPathHorizonBound(t *testing.T) {
	in := figure2Instance()
	if err := in.AssignKShortestPaths(2); err != nil {
		t.Fatal(err)
	}
	h := in.HorizonUpperBound(MultiPath)
	if h < 6 {
		t.Fatalf("horizon %v too small for total demand 6 at unit rate", h)
	}
}

func TestUnknownModelRejected(t *testing.T) {
	in := figure2Instance()
	if err := in.Validate(Model(42)); err == nil {
		t.Fatal("unknown model accepted")
	}
	if Model(42).String() == "" {
		t.Fatal("unknown model has empty name")
	}
}
