// Package coflow defines the coflow scheduling problem types from
// Section 2 of the paper: flows (source, sink, demand, optional fixed
// path), coflows (weighted groups of flows with release times), and
// instances (a capacitated network plus a set of coflows). It also
// provides validation, instance statistics, and JSON serialization so
// instances can be generated once and replayed.
package coflow

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Model selects the transmission model of Section 2.
type Model int

const (
	// SinglePath routes each flow along its fixed path (the
	// "circuit-based coflows with paths given" model).
	SinglePath Model = iota
	// FreePath routes each flow as an arbitrary multi-commodity flow
	// (the Terra model): data may split and merge at nodes.
	FreePath
	// MultiPath is the intermediate model sketched in Section 2 of
	// the paper: each flow carries a fixed set of candidate paths
	// (Flow.AltPaths) and the scheduler picks per-slot rates on each.
	MultiPath
)

// String names the model.
func (m Model) String() string {
	switch m {
	case SinglePath:
		return "single-path"
	case FreePath:
		return "free-path"
	case MultiPath:
		return "multi-path"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Flow is a single data transfer demand within a coflow.
type Flow struct {
	Source graph.NodeID
	Sink   graph.NodeID
	Demand float64 // data volume, in capacity·time units
	// Path is the fixed route in the single path model (edge ids).
	// Ignored in the free path model.
	Path []graph.EdgeID
	// AltPaths is the candidate path set for the multi path model
	// (Section 2's intermediate model): the flow may use any of these
	// routes concurrently, at rates the scheduler chooses.
	AltPaths [][]graph.EdgeID
	// Release is an optional per-flow release time; the effective
	// release of a flow is max(coflow release, flow release).
	Release float64
}

// Coflow is a weighted group of flows that completes when all its
// flows complete (Section 2).
type Coflow struct {
	ID      int
	Weight  float64
	Release float64
	Flows   []Flow
}

// EffectiveRelease returns the release time of flow i within c.
func (c *Coflow) EffectiveRelease(i int) float64 {
	return math.Max(c.Release, c.Flows[i].Release)
}

// TotalDemand sums the demands of the coflow's flows.
func (c *Coflow) TotalDemand() float64 {
	var s float64
	for _, f := range c.Flows {
		s += f.Demand
	}
	return s
}

// Instance is a complete coflow scheduling problem.
type Instance struct {
	Graph   *graph.Graph
	Coflows []Coflow
}

// FlowRef identifies flow Flow of coflow Coflow (both positional
// indices into the instance).
type FlowRef struct {
	Coflow, Flow int
}

// FlattenFlows lists every flow in the instance in deterministic
// (coflow, flow) order. The returned order is the flat flow indexing
// used by the LP builders and schedules.
func (in *Instance) FlattenFlows() []FlowRef {
	refs := make([]FlowRef, 0, in.NumFlows())
	for ci := range in.Coflows {
		for fi := range in.Coflows[ci].Flows {
			refs = append(refs, FlowRef{Coflow: ci, Flow: fi})
		}
	}
	return refs
}

// FlowAt returns the flow referenced by r.
func (in *Instance) FlowAt(r FlowRef) *Flow {
	return &in.Coflows[r.Coflow].Flows[r.Flow]
}

// ReleaseAt returns the effective release time of the flow referenced
// by r.
func (in *Instance) ReleaseAt(r FlowRef) float64 {
	return in.Coflows[r.Coflow].EffectiveRelease(r.Flow)
}

// NumFlows counts all flows across coflows.
func (in *Instance) NumFlows() int {
	n := 0
	for i := range in.Coflows {
		n += len(in.Coflows[i].Flows)
	}
	return n
}

// TotalDemand sums demand over all flows.
func (in *Instance) TotalDemand() float64 {
	var s float64
	for i := range in.Coflows {
		s += in.Coflows[i].TotalDemand()
	}
	return s
}

// MaxRelease returns the latest effective release time in the instance.
func (in *Instance) MaxRelease() float64 {
	var m float64
	for i := range in.Coflows {
		c := &in.Coflows[i]
		for j := range c.Flows {
			if r := c.EffectiveRelease(j); r > m {
				m = r
			}
		}
	}
	return m
}

// TotalWeight sums coflow weights.
func (in *Instance) TotalWeight() float64 {
	var s float64
	for i := range in.Coflows {
		s += in.Coflows[i].Weight
	}
	return s
}

// Validate checks the instance for structural problems under the given
// model: positive demands and weights, sources distinct from sinks,
// valid paths (single path) or reachable sinks (free path).
func (in *Instance) Validate(model Model) error {
	if in.Graph == nil {
		return errors.New("coflow: instance has no graph")
	}
	if len(in.Coflows) == 0 {
		return errors.New("coflow: instance has no coflows")
	}
	for ci := range in.Coflows {
		c := &in.Coflows[ci]
		if c.Weight <= 0 {
			return fmt.Errorf("coflow %d: non-positive weight %g", c.ID, c.Weight)
		}
		if c.Release < 0 {
			return fmt.Errorf("coflow %d: negative release %g", c.ID, c.Release)
		}
		if len(c.Flows) == 0 {
			return fmt.Errorf("coflow %d: no flows", c.ID)
		}
		for fi := range c.Flows {
			f := &c.Flows[fi]
			if f.Demand <= 0 {
				return fmt.Errorf("coflow %d flow %d: non-positive demand %g", c.ID, fi, f.Demand)
			}
			if f.Source == f.Sink {
				return fmt.Errorf("coflow %d flow %d: source equals sink", c.ID, fi)
			}
			switch model {
			case SinglePath:
				if len(f.Path) == 0 {
					return fmt.Errorf("coflow %d flow %d: single path model requires a path", c.ID, fi)
				}
				if err := in.Graph.ValidatePath(f.Source, f.Sink, f.Path); err != nil {
					return fmt.Errorf("coflow %d flow %d: %w", c.ID, fi, err)
				}
			case FreePath:
				if in.Graph.HopDistance(f.Source, f.Sink) < 0 {
					return fmt.Errorf("coflow %d flow %d: sink unreachable from source", c.ID, fi)
				}
			case MultiPath:
				if len(f.AltPaths) == 0 {
					return fmt.Errorf("coflow %d flow %d: multi path model requires AltPaths", c.ID, fi)
				}
				for pi, p := range f.AltPaths {
					if err := in.Graph.ValidatePath(f.Source, f.Sink, p); err != nil {
						return fmt.Errorf("coflow %d flow %d path %d: %w", c.ID, fi, pi, err)
					}
				}
			default:
				return fmt.Errorf("coflow: unknown model %d", model)
			}
		}
	}
	return nil
}

// HorizonUpperBound returns an upper bound (in time units) on the
// makespan of any reasonable schedule: the latest release plus the
// time to ship every flow sequentially at the worst bottleneck rate.
// It is the T used to size the time-indexed LP (Section 3).
func (in *Instance) HorizonUpperBound(model Model) float64 {
	horizon := in.MaxRelease()
	for ci := range in.Coflows {
		c := &in.Coflows[ci]
		for fi := range c.Flows {
			f := &c.Flows[fi]
			var rate float64
			if model == SinglePath && len(f.Path) > 0 {
				rate = in.Graph.PathCapacity(f.Path)
			} else if model == MultiPath && len(f.AltPaths) > 0 {
				// Sequential bound: the first candidate path alone.
				rate = in.Graph.PathCapacity(f.AltPaths[0])
			} else {
				// A single edge out of the source bounds the rate from
				// below only via max-flow; the cheapest safe bound is
				// the global minimum capacity.
				rate = in.Graph.MinCapacity()
			}
			if rate <= 0 {
				continue
			}
			horizon += f.Demand / rate
		}
	}
	return horizon
}

// HorizonLowerBound returns a lower bound (in time units) on the
// makespan of every feasible schedule: a time grid whose horizon falls
// below it cannot fit the instance, so the interval LP on that grid is
// infeasible without solving it. Two certificates are combined: per
// flow, its release plus its demand at the path's bottleneck rate; and
// in the single path model — where routes are fixed, so per-edge
// traffic is exact — per edge, the earliest release among its flows
// plus the edge's total traffic at full capacity. Models without fixed
// routes fall back to the release-only portion of the bound.
func (in *Instance) HorizonLowerBound(model Model) float64 {
	lb := 0.0
	singlePath := model == SinglePath
	var edgeDemand, edgeRelease []float64
	if singlePath {
		edgeDemand = make([]float64, in.Graph.NumEdges())
		edgeRelease = make([]float64, in.Graph.NumEdges())
		for e := range edgeRelease {
			edgeRelease[e] = math.Inf(1)
		}
	}
	for ci := range in.Coflows {
		c := &in.Coflows[ci]
		for fi := range c.Flows {
			f := &c.Flows[fi]
			if f.Demand <= 0 {
				continue
			}
			r := c.EffectiveRelease(fi)
			if r > lb {
				lb = r
			}
			if !singlePath || len(f.Path) == 0 {
				continue
			}
			if rate := in.Graph.PathCapacity(f.Path); rate > 0 {
				if v := r + f.Demand/rate; v > lb {
					lb = v
				}
			}
			for _, e := range f.Path {
				edgeDemand[e] += f.Demand
				if r < edgeRelease[e] {
					edgeRelease[e] = r
				}
			}
		}
	}
	for e := range edgeDemand {
		if edgeDemand[e] <= 0 {
			continue
		}
		if cap := in.Graph.Edge(graph.EdgeID(e)).Capacity; cap > 0 {
			if v := edgeRelease[e] + edgeDemand[e]/cap; v > lb {
				lb = v
			}
		}
	}
	return lb
}

// AssignKShortestPaths fills in AltPaths for every flow with up to k
// shortest loopless paths, for the multi path model. Flows that
// already have AltPaths keep them.
func (in *Instance) AssignKShortestPaths(k int) error {
	for ci := range in.Coflows {
		c := &in.Coflows[ci]
		for fi := range c.Flows {
			f := &c.Flows[fi]
			if len(f.AltPaths) > 0 {
				continue
			}
			ps := in.Graph.KShortestPaths(f.Source, f.Sink, k)
			if len(ps) == 0 {
				return fmt.Errorf("coflow %d flow %d: no path from %s to %s",
					c.ID, fi, in.Graph.NodeName(f.Source), in.Graph.NodeName(f.Sink))
			}
			f.AltPaths = ps
		}
	}
	return nil
}

// AssignRandomShortestPaths fills in Path for every flow by sampling a
// uniformly random shortest path, the paper's convention for the
// single path model experiments ("we randomly select one of the
// shortest paths"). Flows that already have a path keep it.
func (in *Instance) AssignRandomShortestPaths(rng *rand.Rand) error {
	for ci := range in.Coflows {
		c := &in.Coflows[ci]
		for fi := range c.Flows {
			f := &c.Flows[fi]
			if len(f.Path) > 0 {
				continue
			}
			p := in.Graph.RandomShortestPath(rng, f.Source, f.Sink)
			if p == nil {
				return fmt.Errorf("coflow %d flow %d: no path from %s to %s",
					c.ID, fi, in.Graph.NodeName(f.Source), in.Graph.NodeName(f.Sink))
			}
			f.Path = p
		}
	}
	return nil
}
