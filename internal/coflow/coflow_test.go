package coflow

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

// figure2Instance builds the running example of Section 2 (Figures
// 2–4): four unit-weight coflows on the s/v1..v3/t network; three with
// demand 1 from v_i to t and one with demand 3 from s to t.
func figure2Instance() *Instance {
	g := graph.Figure2()
	s, t := g.MustNode("s"), g.MustNode("t")
	in := &Instance{Graph: g}
	for i := 1; i <= 3; i++ {
		v := g.MustNode("v" + string(rune('0'+i)))
		in.Coflows = append(in.Coflows, Coflow{
			ID: i - 1, Weight: 1,
			Flows: []Flow{{Source: v, Sink: t, Demand: 1}},
		})
	}
	in.Coflows = append(in.Coflows, Coflow{
		ID: 3, Weight: 1,
		Flows: []Flow{{Source: s, Sink: t, Demand: 3}},
	})
	return in
}

func TestValidateFreePath(t *testing.T) {
	in := figure2Instance()
	if err := in.Validate(FreePath); err != nil {
		t.Fatal(err)
	}
	// Single path requires paths.
	if err := in.Validate(SinglePath); err == nil {
		t.Fatal("expected error: no paths assigned")
	}
}

func TestAssignRandomShortestPaths(t *testing.T) {
	in := figure2Instance()
	rng := rand.New(rand.NewSource(3))
	if err := in.AssignRandomShortestPaths(rng); err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(SinglePath); err != nil {
		t.Fatal(err)
	}
	// Paths of the v_i→t coflows are single-hop.
	for i := 0; i < 3; i++ {
		if len(in.Coflows[i].Flows[0].Path) != 1 {
			t.Fatalf("coflow %d path length %d, want 1", i, len(in.Coflows[i].Flows[0].Path))
		}
	}
	// Existing paths are preserved.
	before := append([]graph.EdgeID(nil), in.Coflows[3].Flows[0].Path...)
	if err := in.AssignRandomShortestPaths(rng); err != nil {
		t.Fatal(err)
	}
	after := in.Coflows[3].Flows[0].Path
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("existing path was overwritten")
		}
	}
}

func TestAssignPathUnreachable(t *testing.T) {
	g := graph.Gadget(2)
	x0, _ := graph.GadgetPair(g, 0)
	_, y1 := graph.GadgetPair(g, 1)
	in := &Instance{Graph: g, Coflows: []Coflow{
		{ID: 0, Weight: 1, Flows: []Flow{{Source: x0, Sink: y1, Demand: 1}}},
	}}
	if err := in.AssignRandomShortestPaths(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for unreachable sink")
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	g := graph.Figure2()
	s, tt := g.MustNode("s"), g.MustNode("t")
	base := func() *Instance {
		return &Instance{Graph: g, Coflows: []Coflow{
			{ID: 0, Weight: 1, Flows: []Flow{{Source: s, Sink: tt, Demand: 1}}},
		}}
	}
	cases := []struct {
		name   string
		mutate func(*Instance)
	}{
		{"zero weight", func(in *Instance) { in.Coflows[0].Weight = 0 }},
		{"negative release", func(in *Instance) { in.Coflows[0].Release = -1 }},
		{"no flows", func(in *Instance) { in.Coflows[0].Flows = nil }},
		{"zero demand", func(in *Instance) { in.Coflows[0].Flows[0].Demand = 0 }},
		{"self loop", func(in *Instance) { in.Coflows[0].Flows[0].Sink = s }},
	}
	for _, tc := range cases {
		in := base()
		tc.mutate(in)
		if err := in.Validate(FreePath); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	if err := (&Instance{}).Validate(FreePath); err == nil {
		t.Error("nil graph: expected error")
	}
	if err := (&Instance{Graph: g}).Validate(FreePath); err == nil {
		t.Error("no coflows: expected error")
	}
}

func TestInstanceStats(t *testing.T) {
	in := figure2Instance()
	if n := in.NumFlows(); n != 4 {
		t.Fatalf("NumFlows = %d, want 4", n)
	}
	if d := in.TotalDemand(); d != 6 {
		t.Fatalf("TotalDemand = %v, want 6", d)
	}
	if w := in.TotalWeight(); w != 4 {
		t.Fatalf("TotalWeight = %v, want 4", w)
	}
	if r := in.MaxRelease(); r != 0 {
		t.Fatalf("MaxRelease = %v, want 0", r)
	}
	in.Coflows[2].Release = 5
	in.Coflows[1].Flows[0].Release = 9
	if r := in.MaxRelease(); r != 9 {
		t.Fatalf("MaxRelease = %v, want 9", r)
	}
	if er := in.Coflows[1].EffectiveRelease(0); er != 9 {
		t.Fatalf("EffectiveRelease = %v, want 9", er)
	}
}

func TestHorizonUpperBound(t *testing.T) {
	in := figure2Instance()
	h := in.HorizonUpperBound(FreePath)
	// Unit capacities: total demand 6 at rate ≥ 1 each → bound 6.
	if h < 6-1e-9 {
		t.Fatalf("horizon %v too small", h)
	}
	if math.IsInf(h, 1) {
		t.Fatal("horizon must be finite")
	}
	// Single-path bound uses path bottlenecks.
	if err := in.AssignRandomShortestPaths(rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	hs := in.HorizonUpperBound(SinglePath)
	if hs < 6-1e-9 || math.IsInf(hs, 1) {
		t.Fatalf("single-path horizon %v", hs)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := figure2Instance()
	in.Coflows[0].Release = 2.5
	in.Coflows[0].Flows[0].Release = 3.5
	if err := in.AssignRandomShortestPaths(rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumFlows() != in.NumFlows() || back.Graph.NumEdges() != in.Graph.NumEdges() {
		t.Fatal("round trip changed shape")
	}
	if back.Coflows[0].Release != 2.5 || back.Coflows[0].Flows[0].Release != 3.5 {
		t.Fatal("round trip lost release times")
	}
	if err := back.Validate(SinglePath); err != nil {
		t.Fatal(err)
	}
	// Paths survived.
	for i := range in.Coflows {
		a := in.Coflows[i].Flows[0].Path
		b := back.Coflows[i].Flows[0].Path
		if len(a) != len(b) {
			t.Fatalf("coflow %d path length changed", i)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("coflow %d path changed", i)
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`{"nodes":["a"],"edges":[{"from":"a","to":"zz","capacity":1}]}`,
		`{"nodes":["a"],"edges":[{"from":"zz","to":"a","capacity":1}]}`,
		`{"nodes":["a","b"],"edges":[{"from":"a","to":"b","capacity":0}]}`,
		`{"nodes":["a","b"],"edges":[],"coflows":[{"id":0,"weight":1,"flows":[{"source":"zz","sink":"b","demand":1}]}]}`,
		`{"nodes":["a","b"],"edges":[],"coflows":[{"id":0,"weight":1,"flows":[{"source":"a","sink":"zz","demand":1}]}]}`,
		`{"nodes":["a","b"],"edges":[],"coflows":[{"id":0,"weight":1,"flows":[{"source":"a","sink":"b","demand":1,"path":[7]}]}]}`,
		`not json`,
	}
	for _, src := range cases {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("ReadJSON(%q) succeeded, want error", src)
		}
	}
}

func TestModelString(t *testing.T) {
	if SinglePath.String() != "single-path" || FreePath.String() != "free-path" {
		t.Fatal("model names wrong")
	}
	if Model(7).String() == "" {
		t.Fatal("unknown model should still render")
	}
}

// TestJSONRoundTripExact: the encoding is lossless — encoding,
// decoding, and re-encoding an instance reproduces the identical
// bytes, with Release times on both the coflow and the flow (the
// fields the online simulator depends on) set to distinct values so a
// dropped field cannot cancel out.
func TestJSONRoundTripExact(t *testing.T) {
	in := figure2Instance()
	for i := range in.Coflows {
		in.Coflows[i].Release = float64(i) * 1.25
		for j := range in.Coflows[i].Flows {
			in.Coflows[i].Flows[j].Release = float64(i) + float64(j)*0.5
		}
	}
	if err := in.AssignRandomShortestPaths(rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	if err := in.AssignKShortestPaths(2); err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := in.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Coflows {
		if back.Coflows[i].Release != in.Coflows[i].Release {
			t.Fatalf("coflow %d release %v != %v", i, back.Coflows[i].Release, in.Coflows[i].Release)
		}
		for j := range in.Coflows[i].Flows {
			if back.Coflows[i].Flows[j].Release != in.Coflows[i].Flows[j].Release {
				t.Fatalf("coflow %d flow %d release changed", i, j)
			}
		}
	}
	var second bytes.Buffer
	if err := back.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-encoding differs:\n%s\nvs\n%s", first.String(), second.String())
	}
}
