package schedule

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/simplex"
	"repro/internal/timegrid"
)

// lineLP builds and solves the single-flow unit-line LP.
func lineLP(t *testing.T, demand, release float64, slots int) *model.Solution {
	t.Helper()
	g := graph.Line(2, 1)
	in := &coflow.Instance{Graph: g, Coflows: []coflow.Coflow{{
		ID: 0, Weight: 1, Release: release,
		Flows: []coflow.Flow{{
			Source: g.MustNode("v0"), Sink: g.MustNode("v1"),
			Demand: demand, Path: []graph.EdgeID{0},
		}},
	}}}
	l, err := model.BuildSinglePath(in, timegrid.Uniform(slots))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := l.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

// figure2LP builds and solves the Section 2 running example.
func figure2LP(t *testing.T, mode coflow.Model, slots int) *model.Solution {
	t.Helper()
	g := graph.Figure2()
	s, tt := g.MustNode("s"), g.MustNode("t")
	direct := func(from, to graph.NodeID) []graph.EdgeID {
		for _, eid := range g.OutEdges(from) {
			if g.Edge(eid).To == to {
				return []graph.EdgeID{eid}
			}
		}
		t.Fatalf("no direct edge")
		return nil
	}
	v := []graph.NodeID{g.MustNode("v1"), g.MustNode("v2"), g.MustNode("v3")}
	in := &coflow.Instance{Graph: g}
	for i := 0; i < 3; i++ {
		in.Coflows = append(in.Coflows, coflow.Coflow{
			ID: i, Weight: 1,
			Flows: []coflow.Flow{{Source: v[i], Sink: tt, Demand: 1, Path: direct(v[i], tt)}},
		})
	}
	in.Coflows = append(in.Coflows, coflow.Coflow{
		ID: 3, Weight: 1,
		Flows: []coflow.Flow{{Source: s, Sink: tt, Demand: 3,
			Path: append(direct(s, v[1]), direct(v[1], tt)...)}},
	})
	if mode == coflow.FreePath {
		for ci := range in.Coflows {
			in.Coflows[ci].Flows[0].Path = nil
		}
		l, err := model.BuildFreePath(in, timegrid.Uniform(slots))
		if err != nil {
			t.Fatal(err)
		}
		sol, err := l.Solve(context.Background(), simplex.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	l, err := model.BuildSinglePath(in, timegrid.Uniform(slots))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := l.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestFromLPLine(t *testing.T) {
	sol := lineLP(t, 2, 0, 4)
	s := FromLP(sol)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	ct := s.CompletionTimes()
	if math.Abs(ct[0]-2) > 1e-9 {
		t.Fatalf("completion = %v, want 2", ct[0])
	}
	if math.Abs(s.WeightedCompletion()-2) > 1e-9 {
		t.Fatalf("weighted completion = %v", s.WeightedCompletion())
	}
	if math.Abs(s.Makespan()-2) > 1e-9 {
		t.Fatalf("makespan = %v", s.Makespan())
	}
	// The schedule objective is never below the LP bound.
	if s.WeightedCompletion() < sol.LowerBound-1e-9 {
		t.Fatalf("schedule %v below LP bound %v", s.WeightedCompletion(), sol.LowerBound)
	}
}

func TestHeuristicRespectsReleases(t *testing.T) {
	sol := lineLP(t, 1, 2, 6)
	s := FromLP(sol)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if ct := s.CompletionTimes(); ct[0] < 3-1e-9 {
		t.Fatalf("completion %v before release+1", ct[0])
	}
}

func TestFigure2SinglePathHeuristic(t *testing.T) {
	sol := figure2LP(t, coflow.SinglePath, 6)
	s := FromLP(sol)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	s.Compact()
	if err := s.Verify(); err != nil {
		t.Fatalf("after compaction: %v", err)
	}
	obj := s.WeightedCompletion()
	// The integral optimum is 7 (Figure 3); any feasible schedule is ≥ 7,
	// and the LP bound is below.
	if obj < 7-1e-9 {
		t.Fatalf("schedule objective %v below integral optimum 7", obj)
	}
	if sol.LowerBound > obj+1e-9 {
		t.Fatalf("LP bound %v above schedule %v", sol.LowerBound, obj)
	}
}

func TestFigure2FreePathHeuristic(t *testing.T) {
	sol := figure2LP(t, coflow.FreePath, 6)
	s := FromLP(sol)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	s.Compact()
	if err := s.Verify(); err != nil {
		t.Fatalf("after compaction: %v", err)
	}
	if obj := s.WeightedCompletion(); obj < 5-1e-9 {
		t.Fatalf("free-path schedule %v below optimum 5", obj)
	}
}

func TestStretchIdentityAtLambdaOne(t *testing.T) {
	for _, mode := range []coflow.Model{coflow.SinglePath, coflow.FreePath} {
		sol := figure2LP(t, mode, 6)
		direct := FromLP(sol)
		stretched, err := Stretch(sol, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if err := stretched.Verify(); err != nil {
			t.Fatal(err)
		}
		a := direct.CompletionTimes()
		b := stretched.CompletionTimes()
		for j := range a {
			if math.Abs(a[j]-b[j]) > 1e-6 {
				t.Fatalf("%v: coflow %d completion %v (direct) vs %v (stretch λ=1)", mode, j, a[j], b[j])
			}
		}
	}
}

func TestStretchFeasibleForRandomLambda(t *testing.T) {
	solSP := figure2LP(t, coflow.SinglePath, 6)
	solFP := figure2LP(t, coflow.FreePath, 6)
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 25; trial++ {
		lambda := SampleLambda(rng)
		for _, sol := range []*model.Solution{solSP, solFP} {
			s, err := Stretch(sol, lambda)
			if err != nil {
				t.Fatalf("λ=%v: %v", lambda, err)
			}
			if err := s.Verify(); err != nil {
				t.Fatalf("λ=%v: %v", lambda, err)
			}
			// Compaction preserves feasibility and never hurts.
			before := s.WeightedCompletion()
			s.Compact()
			if err := s.Verify(); err != nil {
				t.Fatalf("λ=%v after compact: %v", lambda, err)
			}
			if after := s.WeightedCompletion(); after > before+1e-9 {
				t.Fatalf("λ=%v: compaction increased objective %v → %v", lambda, before, after)
			}
		}
	}
}

func TestStretchExpectationWithinTwiceLP(t *testing.T) {
	// Empirical check of Theorem 4.4: E[obj(Stretch)] ≤ 2·LP bound.
	// 200 samples with a fixed seed keeps the noise well below the gap.
	sol := figure2LP(t, coflow.SinglePath, 6)
	rng := rand.New(rand.NewSource(7))
	var sum float64
	const n = 200
	for i := 0; i < n; i++ {
		s, err := Stretch(sol, SampleLambda(rng))
		if err != nil {
			t.Fatal(err)
		}
		sum += s.WeightedCompletion()
	}
	avg := sum / n
	if avg > 2*sol.LowerBound*1.05 {
		t.Fatalf("empirical E[obj] = %v exceeds 2×LP = %v", avg, 2*sol.LowerBound)
	}
}

func TestStretchParameterValidation(t *testing.T) {
	sol := lineLP(t, 2, 0, 4)
	if _, err := Stretch(sol, 0); err == nil {
		t.Fatal("λ=0 accepted")
	}
	if _, err := Stretch(sol, 1.5); err == nil {
		t.Fatal("λ>1 accepted")
	}
	// Geometric grids are rejected.
	g := graph.Line(2, 1)
	in := &coflow.Instance{Graph: g, Coflows: []coflow.Coflow{{
		ID: 0, Weight: 1,
		Flows: []coflow.Flow{{Source: g.MustNode("v0"), Sink: g.MustNode("v1"),
			Demand: 2, Path: []graph.EdgeID{0}}},
	}}}
	l, err := model.BuildSinglePath(in, timegrid.Geometric(6, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	gsol, err := l.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stretch(gsol, 0.5); err == nil {
		t.Fatal("geometric grid accepted by Stretch")
	}
}

func TestCompactMovesStretchGaps(t *testing.T) {
	// λ = 0.5 doubles the schedule span, leaving idle slots that
	// compaction should reclaim.
	sol := lineLP(t, 2, 0, 4)
	s, err := Stretch(sol, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	before := s.CompletionTimes()[0]
	moves := s.Compact()
	after := s.CompletionTimes()[0]
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Fatalf("compaction worsened completion %v → %v", before, after)
	}
	if moves == 0 && after == before && before > 2 {
		t.Fatalf("no moves and completion %v still above optimum 2", before)
	}
	if after > 2+1e-9 {
		t.Fatalf("compacted completion %v, want 2 (contiguous prefix)", after)
	}
}

func TestCompactRespectsReleases(t *testing.T) {
	sol := lineLP(t, 1, 3, 8)
	s := FromLP(sol)
	s.Compact()
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if ct := s.CompletionTimes()[0]; ct < 4-1e-9 {
		t.Fatalf("compaction moved flow before its release: completion %v", ct)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	base := func() *Schedule { return FromLP(figure2LP(t, coflow.SinglePath, 6)) }
	{
		s := base()
		s.Frac[0][0] = -0.5
		if err := s.Verify(); err == nil {
			t.Error("negative fraction accepted")
		}
	}
	{
		s := base()
		s.Frac[0][s.Grid.NumSlots()-1] += 1 // overshoot total
		if err := s.Verify(); err == nil {
			t.Error("total > 1 accepted")
		}
	}
	{
		s := base()
		for k := range s.Frac[3] {
			s.Frac[3][k] = 0
		}
		if err := s.Verify(); err == nil {
			t.Error("unscheduled flow accepted")
		}
	}
	{
		// Capacity: cram the big coflow into one slot (demand 3 > cap 1).
		s := base()
		for k := range s.Frac[3] {
			s.Frac[3][k] = 0
		}
		s.Frac[3][0] = 1
		if err := s.Verify(); err == nil {
			t.Error("capacity violation accepted")
		}
	}
	{
		// Release: move transmission before release.
		g := graph.Line(2, 1)
		in := &coflow.Instance{Graph: g, Coflows: []coflow.Coflow{{
			ID: 0, Weight: 1, Release: 2,
			Flows: []coflow.Flow{{Source: g.MustNode("v0"), Sink: g.MustNode("v1"),
				Demand: 1, Path: []graph.EdgeID{0}}},
		}}}
		l, err := model.BuildSinglePath(in, timegrid.Uniform(5))
		if err != nil {
			t.Fatal(err)
		}
		sol, err := l.Solve(context.Background(), simplex.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s := FromLP(sol)
		s.Frac[0] = []float64{1, 0, 0, 0, 0}
		if err := s.Verify(); err == nil {
			t.Error("pre-release transmission accepted")
		}
	}
	{
		// Free path: break conservation.
		s := FromLP(figure2LP(t, coflow.FreePath, 6))
		for k := range s.EdgeFrac[0] {
			for e := range s.EdgeFrac[0][k] {
				if s.EdgeFrac[0][k][e] > 0 {
					s.EdgeFrac[0][k][e] *= 2
					if err := s.Verify(); err == nil {
						t.Error("conservation violation accepted")
					}
					return
				}
			}
		}
		t.Fatal("no positive edge fraction found")
	}
}

func TestVerifyMissingEdgeRouting(t *testing.T) {
	s := FromLP(figure2LP(t, coflow.FreePath, 6))
	s.EdgeFrac = nil
	if err := s.Verify(); err == nil {
		t.Fatal("free-path schedule without routing accepted")
	}
}

func TestSampleLambdaDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		l := SampleLambda(rng)
		if l <= 0 || l > 1 {
			t.Fatalf("λ=%v out of range", l)
		}
		sum += l
	}
	// E[λ] = ∫ 2v² dv = 2/3.
	if mean := sum / n; math.Abs(mean-2.0/3) > 0.01 {
		t.Fatalf("mean λ = %v, want ≈ 2/3", mean)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := FromLP(figure2LP(t, coflow.FreePath, 6))
	c := s.Clone()
	c.Frac[0][0] += 0.25
	if s.Frac[0][0] == c.Frac[0][0] {
		t.Fatal("clone shares Frac")
	}
	c.EdgeFrac[0][0][0] += 0.25
	if s.EdgeFrac[0][0][0] == c.EdgeFrac[0][0][0] {
		t.Fatal("clone shares EdgeFrac")
	}
}

func TestTotalCompletionUnweighted(t *testing.T) {
	s := FromLP(figure2LP(t, coflow.SinglePath, 6))
	ct := s.CompletionTimes()
	var want float64
	for _, c := range ct {
		want += c
	}
	if got := s.TotalCompletion(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TotalCompletion = %v, want %v", got, want)
	}
}
