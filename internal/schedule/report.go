package schedule

import (
	"fmt"
	"io"

	"repro/internal/coflow"
)

// Utilization returns the per-slot, per-edge link utilization of the
// schedule as a fraction of capacity: out[k][e] ∈ [0, 1+tol]. It is
// the quantity operators watch on a WAN and the basis of the timeline
// export below.
func (s *Schedule) Utilization() [][]float64 {
	g := s.Inst.Graph
	k := s.Grid.NumSlots()
	out := make([][]float64, k)
	for t := 0; t < k; t++ {
		load := make([]float64, g.NumEdges())
		for f, ref := range s.Flows {
			fl := s.Inst.FlowAt(ref)
			switch s.Mode {
			case coflow.SinglePath:
				for _, eid := range fl.Path {
					load[eid] += fl.Demand * s.Frac[f][t]
				}
			case coflow.MultiPath:
				for pi, v := range s.PathFrac[f][t] {
					if v <= 0 {
						continue
					}
					for _, eid := range fl.AltPaths[pi] {
						load[eid] += fl.Demand * v
					}
				}
			case coflow.FreePath:
				for e, v := range s.EdgeFrac[f][t] {
					load[e] += fl.Demand * v
				}
			}
		}
		for _, e := range g.Edges() {
			load[e.ID] /= e.Capacity * s.Grid.Len(t)
		}
		out[t] = load
	}
	return out
}

// WriteTimelineCSV exports the schedule as CSV rows
// (slot, start, end, edge, from, to, utilization), one row per active
// (slot, edge) pair, for plotting link usage over time.
func (s *Schedule) WriteTimelineCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "slot,start,end,edge,from,to,utilization"); err != nil {
		return err
	}
	g := s.Inst.Graph
	util := s.Utilization()
	for t := range util {
		for _, e := range g.Edges() {
			u := util[t][e.ID]
			if u <= eps {
				continue
			}
			if _, err := fmt.Fprintf(w, "%d,%g,%g,%d,%s,%s,%.6f\n",
				t, s.Grid.Start(t), s.Grid.End(t), e.ID,
				g.NodeName(e.From), g.NodeName(e.To), u); err != nil {
				return err
			}
		}
	}
	return nil
}

// PeakUtilization returns the maximum link utilization over all slots
// and edges (≤ 1 + tolerance for any feasible schedule).
func (s *Schedule) PeakUtilization() float64 {
	var peak float64
	for _, row := range s.Utilization() {
		for _, u := range row {
			if u > peak {
				peak = u
			}
		}
	}
	return peak
}
