package schedule

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/coflow"
	"repro/internal/model"
	"repro/internal/simplex"
	"repro/internal/timegrid"
)

func multiPathLP(t *testing.T, slots, k int) *model.Solution {
	t.Helper()
	in := figure2LPInstance(t)
	if err := in.AssignKShortestPaths(k); err != nil {
		t.Fatal(err)
	}
	l, err := model.BuildMultiPath(in, timegrid.Uniform(slots))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := l.Solve(context.Background(), simplex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

// figure2LPInstance builds the running example without fixed paths.
func figure2LPInstance(t *testing.T) *coflow.Instance {
	t.Helper()
	sol := figure2LP(t, coflow.FreePath, 6) // reuse the builder
	// Strip to a fresh instance copy (paths/alt paths empty).
	return sol.LP.Inst
}

func TestMultiPathFromLPVerifies(t *testing.T) {
	sol := multiPathLP(t, 6, 3)
	s := FromLP(sol)
	if s.PathFrac == nil {
		t.Fatal("PathFrac not carried into schedule")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	s.Compact()
	if err := s.Verify(); err != nil {
		t.Fatalf("after compact: %v", err)
	}
	// With all 3 candidate paths this matches free path: optimum 5.
	if obj := s.WeightedCompletion(); obj < 5-1e-9 || obj > 7+1e-9 {
		t.Fatalf("objective %v outside [5, 7]", obj)
	}
}

func TestMultiPathStretchAndClone(t *testing.T) {
	sol := multiPathLP(t, 6, 2)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		lambda := SampleLambda(rng)
		s, err := Stretch(sol, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		c := s.Clone()
		if c.PathFrac == nil {
			t.Fatal("clone lost PathFrac")
		}
		c.PathFrac[0][0][0] += 1
		if s.PathFrac[0][0][0] == c.PathFrac[0][0][0] {
			t.Fatal("clone shares PathFrac storage")
		}
	}
}

func TestMultiPathVerifyCatchesViolations(t *testing.T) {
	{
		s := FromLP(multiPathLP(t, 6, 3))
		s.PathFrac = nil
		if err := s.Verify(); err == nil {
			t.Error("missing PathFrac accepted")
		}
	}
	{
		// Break the Σ_p rates = frac consistency.
		s := FromLP(multiPathLP(t, 6, 3))
	outer:
		for f := range s.PathFrac {
			for k := range s.PathFrac[f] {
				for p := range s.PathFrac[f][k] {
					if s.PathFrac[f][k][p] > 0.1 {
						s.PathFrac[f][k][p] *= 2
						break outer
					}
				}
			}
		}
		if err := s.Verify(); err == nil {
			t.Error("inconsistent path rates accepted")
		}
	}
	{
		// Overload an edge: push the big coflow entirely through one
		// path in one slot (demand 3 > capacity 1).
		s := FromLP(multiPathLP(t, 6, 3))
		f := 3 // the s→t flow is flattened last
		for k := range s.Frac[f] {
			s.Frac[f][k] = 0
			for p := range s.PathFrac[f][k] {
				s.PathFrac[f][k][p] = 0
			}
		}
		s.Frac[f][0] = 1
		s.PathFrac[f][0][0] = 1
		if err := s.Verify(); err == nil {
			t.Error("edge overload accepted")
		}
	}
	{
		// Negative path rate.
		s := FromLP(multiPathLP(t, 6, 3))
		s.PathFrac[0][0][0] = -0.5
		if err := s.Verify(); err == nil {
			t.Error("negative path rate accepted")
		}
	}
}

func TestMultiPathCompactionNeverWorsens(t *testing.T) {
	sol := multiPathLP(t, 8, 2)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		s, err := Stretch(sol, 0.3+0.7*rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		before := s.WeightedCompletion()
		s.Compact()
		after := s.WeightedCompletion()
		if after > before+1e-9 {
			t.Fatalf("compaction worsened %v → %v", before, after)
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
		if math.IsInf(after, 1) {
			t.Fatal("lost demand during compaction")
		}
	}
}
