package schedule

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/coflow"
)

func TestUtilizationWithinCapacity(t *testing.T) {
	for _, mode := range []coflow.Model{coflow.SinglePath, coflow.FreePath} {
		s := FromLP(figure2LP(t, mode, 6))
		if peak := s.PeakUtilization(); peak > 1+1e-6 {
			t.Fatalf("%v: peak utilization %v > 1", mode, peak)
		}
		// Something must actually be scheduled.
		if peak := s.PeakUtilization(); peak <= 0 {
			t.Fatalf("%v: peak utilization %v, want > 0", mode, peak)
		}
	}
	// Multi path too.
	s := FromLP(multiPathLP(t, 6, 3))
	if peak := s.PeakUtilization(); peak > 1+1e-6 || peak <= 0 {
		t.Fatalf("multi path peak %v", peak)
	}
}

func TestUtilizationMatchesKnownSchedule(t *testing.T) {
	// The line instance with demand 2 over 2 slots saturates its edge
	// in both active slots.
	sol := lineLP(t, 2, 0, 4)
	s := FromLP(sol)
	util := s.Utilization()
	if util[0][0] < 1-1e-9 || util[1][0] < 1-1e-9 {
		t.Fatalf("active slots not saturated: %v %v", util[0][0], util[1][0])
	}
	if util[2][0] > eps || util[3][0] > eps {
		t.Fatalf("idle slots show load: %v %v", util[2][0], util[3][0])
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	s := FromLP(figure2LP(t, coflow.SinglePath, 6))
	var buf bytes.Buffer
	if err := s.WriteTimelineCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "slot,start,end,edge,from,to,utilization" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 4 {
		t.Fatalf("only %d rows, expected several active (slot, edge) pairs", len(lines)-1)
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 6 {
			t.Fatalf("row %q has %d commas, want 6", line, got)
		}
	}
}
