// Package schedule represents concrete (slotted) coflow transmission
// schedules and the operations the paper performs on them:
//
//   - conversion of an optimal LP solution into a schedule (the λ=1
//     "LP-based heuristic" of Section 6.2);
//   - the Stretch transformation of Section 4.1: replay the LP
//     schedule slowed down by 1/λ, truncating each flow once its
//     demand is met;
//   - the compaction pass of Section 6.1: move a slot's entire
//     schedule into an earlier idle slot when all releases permit;
//   - feasibility verification (demand, release, capacity and — in
//     the free path model — per-flow conservation), used as an
//     invariant check throughout the test suite;
//   - completion-time and objective computation.
//
// All times are in slot units.
package schedule

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/timegrid"
)

const eps = 1e-7

// Schedule is a slotted transmission plan. Frac[f][k] is the fraction
// of flat flow f transmitted during slot k; in the free path model
// EdgeFrac[f][k][e] additionally routes that fraction over edges.
type Schedule struct {
	Inst     *coflow.Instance
	Mode     coflow.Model
	Grid     timegrid.Grid
	Flows    []coflow.FlowRef
	Frac     [][]float64
	EdgeFrac [][][]float64 // free path only: [flow][slot][edge]
	PathFrac [][][]float64 // multi path only: [flow][slot][pathIdx]
}

// FromLP converts a solved relaxation into a schedule by taking the LP
// solution directly — the λ=1 LP-based heuristic of Section 6.2.
func FromLP(sol *model.Solution) *Schedule {
	k := sol.LP.Grid.NumSlots()
	s := &Schedule{
		Inst:  sol.LP.Inst,
		Mode:  sol.LP.Mode,
		Grid:  sol.LP.Grid,
		Flows: sol.LP.Flows(),
	}
	s.Frac = make([][]float64, len(s.Flows))
	for f := range s.Flows {
		s.Frac[f] = append([]float64(nil), sol.Frac[f]...)
	}
	if sol.EdgeFrac != nil {
		s.EdgeFrac = make([][][]float64, len(s.Flows))
		for f := range s.Flows {
			s.EdgeFrac[f] = make([][]float64, k)
			for t := 0; t < k; t++ {
				s.EdgeFrac[f][t] = append([]float64(nil), sol.EdgeFrac[f][t]...)
			}
		}
	}
	if sol.PathFrac != nil {
		s.PathFrac = make([][][]float64, len(s.Flows))
		for f := range s.Flows {
			s.PathFrac[f] = make([][]float64, k)
			for t := 0; t < k; t++ {
				s.PathFrac[f][t] = append([]float64(nil), sol.PathFrac[f][t]...)
			}
		}
	}
	return s
}

// Clone deep-copies the schedule.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{Inst: s.Inst, Mode: s.Mode, Grid: s.Grid, Flows: s.Flows}
	c.Frac = make([][]float64, len(s.Frac))
	for f := range s.Frac {
		c.Frac[f] = append([]float64(nil), s.Frac[f]...)
	}
	if s.EdgeFrac != nil {
		c.EdgeFrac = make([][][]float64, len(s.EdgeFrac))
		for f := range s.EdgeFrac {
			c.EdgeFrac[f] = make([][]float64, len(s.EdgeFrac[f]))
			for t := range s.EdgeFrac[f] {
				c.EdgeFrac[f][t] = append([]float64(nil), s.EdgeFrac[f][t]...)
			}
		}
	}
	if s.PathFrac != nil {
		c.PathFrac = make([][][]float64, len(s.PathFrac))
		for f := range s.PathFrac {
			c.PathFrac[f] = make([][]float64, len(s.PathFrac[f]))
			for t := range s.PathFrac[f] {
				c.PathFrac[f][t] = append([]float64(nil), s.PathFrac[f][t]...)
			}
		}
	}
	return c
}

// FlowCompletionTimes returns, per flat flow, the end of the last
// slot in which the flow transmits, or +Inf for a flow whose demand is
// not fully scheduled.
func (s *Schedule) FlowCompletionTimes() []float64 {
	out := make([]float64, len(s.Flows))
	for f := range s.Flows {
		var total float64
		last := -1
		for k, v := range s.Frac[f] {
			total += v
			if v > eps {
				last = k
			}
		}
		if total < 1-1e-5 || last < 0 {
			out[f] = math.Inf(1)
		} else {
			out[f] = s.Grid.End(last)
		}
	}
	return out
}

// CompletionTimes returns, per coflow, the end of the last slot in
// which any of its flows transmits (Eq. 12 of the paper), in slot
// units. A coflow with an unscheduled flow gets +Inf.
func (s *Schedule) CompletionTimes() []float64 {
	out := make([]float64, len(s.Inst.Coflows))
	for f, ref := range s.Flows {
		var total float64
		last := -1
		for k, v := range s.Frac[f] {
			total += v
			if v > eps {
				last = k
			}
		}
		var c float64
		if total < 1-1e-5 || last < 0 {
			c = math.Inf(1)
		} else {
			c = s.Grid.End(last)
		}
		if c > out[ref.Coflow] {
			out[ref.Coflow] = c
		}
	}
	return out
}

// WeightedCompletion returns Σ_j w_j·C_j for the schedule.
func (s *Schedule) WeightedCompletion() float64 {
	var sum float64
	for j, c := range s.CompletionTimes() {
		sum += s.Inst.Coflows[j].Weight * c
	}
	return sum
}

// TotalCompletion returns Σ_j C_j (the unweighted objective used in
// the Terra comparison, Figures 11–12).
func (s *Schedule) TotalCompletion() float64 {
	var sum float64
	for _, c := range s.CompletionTimes() {
		sum += c
	}
	return sum
}

// Makespan returns the end of the last active slot, or 0 for an empty
// schedule.
func (s *Schedule) Makespan() float64 {
	last := -1
	for f := range s.Frac {
		for k, v := range s.Frac[f] {
			if v > eps && k > last {
				last = k
			}
		}
	}
	if last < 0 {
		return 0
	}
	return s.Grid.End(last)
}

// Verify checks feasibility: every demand fully scheduled, no
// transmission before release, per-slot capacity respected, and (free
// path) per-flow conservation with edge routing consistent with Frac.
func (s *Schedule) Verify() error {
	g := s.Inst.Graph
	k := s.Grid.NumSlots()
	if s.Mode == coflow.FreePath && s.EdgeFrac == nil {
		return fmt.Errorf("schedule: free path schedule without edge routing")
	}
	if s.Mode == coflow.MultiPath && s.PathFrac == nil {
		return fmt.Errorf("schedule: multi path schedule without path rates")
	}

	for f, ref := range s.Flows {
		if len(s.Frac[f]) != k {
			return fmt.Errorf("schedule: flow %d has %d slots, grid has %d", f, len(s.Frac[f]), k)
		}
		var total float64
		release := s.Inst.ReleaseAt(ref)
		for t, v := range s.Frac[f] {
			if v < -eps {
				return fmt.Errorf("schedule: flow %d slot %d negative fraction %g", f, t, v)
			}
			total += v
			if v > eps && s.Grid.Start(t)+1e-9 < release {
				return fmt.Errorf("schedule: flow %d transmits in slot %d starting %g before release %g",
					f, t, s.Grid.Start(t), release)
			}
		}
		if math.Abs(total-1) > 1e-5 {
			return fmt.Errorf("schedule: flow %d total fraction %g ≠ 1", f, total)
		}
	}

	switch s.Mode {
	case coflow.SinglePath:
		for t := 0; t < k; t++ {
			load := make([]float64, g.NumEdges())
			for f, ref := range s.Flows {
				fl := s.Inst.FlowAt(ref)
				for _, eid := range fl.Path {
					load[eid] += fl.Demand * s.Frac[f][t]
				}
			}
			for _, e := range g.Edges() {
				capT := e.Capacity * s.Grid.Len(t)
				if load[e.ID] > capT*(1+1e-6)+1e-9 {
					return fmt.Errorf("schedule: slot %d edge %d load %g exceeds capacity %g",
						t, e.ID, load[e.ID], capT)
				}
			}
		}
	case coflow.MultiPath:
		for t := 0; t < k; t++ {
			load := make([]float64, g.NumEdges())
			for f, ref := range s.Flows {
				fl := s.Inst.FlowAt(ref)
				pf := s.PathFrac[f][t]
				if len(pf) != len(fl.AltPaths) {
					return fmt.Errorf("schedule: flow %d slot %d has %d path rates, want %d",
						f, t, len(pf), len(fl.AltPaths))
				}
				var total float64
				for pi, v := range pf {
					if v < -eps {
						return fmt.Errorf("schedule: flow %d slot %d path %d negative %g", f, t, pi, v)
					}
					total += v
					for _, eid := range fl.AltPaths[pi] {
						load[eid] += fl.Demand * v
					}
				}
				if math.Abs(total-s.Frac[f][t]) > 1e-5 {
					return fmt.Errorf("schedule: flow %d slot %d path rates sum %g ≠ frac %g",
						f, t, total, s.Frac[f][t])
				}
			}
			for _, e := range g.Edges() {
				capT := e.Capacity * s.Grid.Len(t)
				if load[e.ID] > capT*(1+1e-6)+1e-9 {
					return fmt.Errorf("schedule: slot %d edge %d load %g exceeds capacity %g",
						t, e.ID, load[e.ID], capT)
				}
			}
		}
	case coflow.FreePath:
		for t := 0; t < k; t++ {
			load := make([]float64, g.NumEdges())
			for f, ref := range s.Flows {
				fl := s.Inst.FlowAt(ref)
				ef := s.EdgeFrac[f][t]
				// Net source outflow must equal Frac.
				var net float64
				for _, eid := range g.OutEdges(fl.Source) {
					net += ef[eid]
				}
				for _, eid := range g.InEdges(fl.Source) {
					net -= ef[eid]
				}
				if math.Abs(net-s.Frac[f][t]) > 1e-5 {
					return fmt.Errorf("schedule: flow %d slot %d source net %g ≠ frac %g",
						f, t, net, s.Frac[f][t])
				}
				// Conservation at internal nodes.
				for v := 0; v < g.NumNodes(); v++ {
					nv := gNode(v)
					if nv == fl.Source || nv == fl.Sink {
						continue
					}
					var bal float64
					for _, eid := range g.InEdges(nv) {
						bal += ef[eid]
					}
					for _, eid := range g.OutEdges(nv) {
						bal -= ef[eid]
					}
					if math.Abs(bal) > 1e-5 {
						return fmt.Errorf("schedule: flow %d slot %d node %d conservation off by %g",
							f, t, v, bal)
					}
				}
				for e := range ef {
					if ef[e] < -eps {
						return fmt.Errorf("schedule: flow %d slot %d edge %d negative %g", f, t, e, ef[e])
					}
					load[e] += fl.Demand * ef[e]
				}
			}
			for _, e := range g.Edges() {
				capT := e.Capacity * s.Grid.Len(t)
				if load[e.ID] > capT*(1+1e-6)+1e-9 {
					return fmt.Errorf("schedule: slot %d edge %d load %g exceeds capacity %g",
						t, e.ID, load[e.ID], capT)
				}
			}
		}
	default:
		return fmt.Errorf("schedule: unknown mode %v", s.Mode)
	}
	return nil
}

// Compact applies the paper's idle-slot optimization (Section 6.1):
// the entire content of a slot t moves to an earlier idle slot t′ when
// every flow active in t was released by Start(t′) and t′ is at least
// as long as t. Returns the number of moves performed. Completion
// times never increase.
func (s *Schedule) Compact() int {
	k := s.Grid.NumSlots()
	occupied := make([]bool, k)
	for f := range s.Frac {
		for t, v := range s.Frac[f] {
			if v > eps {
				occupied[t] = true
			}
		}
		// Edge-level activity (e.g. circulations in LP vertices) also
		// marks a slot busy: merging into such a slot could overload
		// its edges.
		if s.EdgeFrac != nil {
			for t := range s.EdgeFrac[f] {
				if !occupied[t] && anyPositive(s.EdgeFrac[f][t]) {
					occupied[t] = true
				}
			}
		}
	}
	moves := 0
	for {
		moved := false
		for t := 0; t < k; t++ {
			if !occupied[t] {
				continue
			}
			// Latest release among flows active at t.
			var maxRel float64
			active := false
			for f, ref := range s.Flows {
				if s.Frac[f][t] > eps {
					active = true
					if r := s.Inst.ReleaseAt(ref); r > maxRel {
						maxRel = r
					}
				}
			}
			if !active {
				occupied[t] = false
				continue
			}
			for tp := 0; tp < t; tp++ {
				if occupied[tp] || s.Grid.Start(tp) < maxRel || s.Grid.Len(tp)+1e-12 < s.Grid.Len(t) {
					continue
				}
				s.moveSlot(t, tp)
				occupied[tp] = true
				occupied[t] = false
				moves++
				moved = true
				break
			}
		}
		if !moved {
			return moves
		}
	}
}

// moveSlot transfers all content from slot t to slot tp.
func (s *Schedule) moveSlot(t, tp int) {
	for f := range s.Frac {
		s.Frac[f][tp] += s.Frac[f][t]
		s.Frac[f][t] = 0
		if s.EdgeFrac != nil {
			for e := range s.EdgeFrac[f][t] {
				s.EdgeFrac[f][tp][e] += s.EdgeFrac[f][t][e]
				s.EdgeFrac[f][t][e] = 0
			}
		}
		if s.PathFrac != nil {
			for p := range s.PathFrac[f][t] {
				s.PathFrac[f][tp][p] += s.PathFrac[f][t][p]
				s.PathFrac[f][t][p] = 0
			}
		}
	}
}

// SampleLambda draws λ from the density f(v) = 2v on (0,1) by inverse
// transform (λ = √U), as prescribed by the Stretch algorithm.
func SampleLambda(rng *rand.Rand) float64 {
	for {
		u := rng.Float64()
		if u > 0 {
			return math.Sqrt(u)
		}
	}
}

// Stretch applies the Section 4.1 transformation to an LP solution:
// whatever the LP schedules during [a, b] is replayed during
// [a/λ, b/λ] at the original rate, and each flow stops once its demand
// is met. Requires a uniform grid (the paper's main algorithm; the
// geometric variant of Appendix A is evaluated through its λ=1
// heuristic). The resulting schedule lives on a uniform grid of
// ⌈K/λ⌉ slots.
func Stretch(sol *model.Solution, lambda float64) (*Schedule, error) {
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("schedule: stretch λ=%g outside (0,1]", lambda)
	}
	if !sol.LP.Grid.IsUniform() {
		return nil, fmt.Errorf("schedule: stretch requires a uniform grid")
	}
	k := sol.LP.Grid.NumSlots()
	newK := int(math.Ceil(float64(k)/lambda)) + 1
	grid := timegrid.Uniform(newK)
	s := &Schedule{
		Inst:  sol.LP.Inst,
		Mode:  sol.LP.Mode,
		Grid:  grid,
		Flows: sol.LP.Flows(),
	}
	nf := len(s.Flows)
	s.Frac = make([][]float64, nf)
	free := sol.EdgeFrac != nil
	multi := sol.PathFrac != nil
	if free {
		s.EdgeFrac = make([][][]float64, nf)
	}
	if multi {
		s.PathFrac = make([][][]float64, nf)
	}
	ne := sol.LP.Inst.Graph.NumEdges()

	for f := 0; f < nf; f++ {
		s.Frac[f] = make([]float64, newK)
		if free {
			s.EdgeFrac[f] = make([][]float64, newK)
			for t := 0; t < newK; t++ {
				s.EdgeFrac[f][t] = make([]float64, ne)
			}
		}
		if multi {
			np := len(sol.PathFrac[f][0])
			s.PathFrac[f] = make([][]float64, newK)
			for t := 0; t < newK; t++ {
				s.PathFrac[f][t] = make([]float64, np)
			}
		}
		for src := 0; src < k; src++ {
			v := sol.Frac[f][src]
			hasEdges := free && anyPositive(sol.EdgeFrac[f][src])
			if v <= eps && !hasEdges {
				continue
			}
			// Image of slot src = (src, src+1] is (src/λ, (src+1)/λ].
			lo := float64(src) / lambda
			hi := float64(src+1) / lambda
			for j := int(math.Floor(lo)); j < newK && float64(j) < hi; j++ {
				ov := math.Min(float64(j+1), hi) - math.Max(float64(j), lo)
				if ov <= 0 {
					continue
				}
				s.Frac[f][j] += v * ov
				if free {
					for e := 0; e < ne; e++ {
						if w := sol.EdgeFrac[f][src][e]; w > 0 {
							s.EdgeFrac[f][j][e] += w * ov
						}
					}
				}
				if multi {
					for p, w := range sol.PathFrac[f][src] {
						if w > 0 {
							s.PathFrac[f][j][p] += w * ov
						}
					}
				}
			}
		}
		// Truncate once the demand is met (step 4 of the algorithm).
		cum := 0.0
		for j := 0; j < newK; j++ {
			v := s.Frac[f][j]
			if cum >= 1-1e-12 {
				s.Frac[f][j] = 0
				if free {
					zero(s.EdgeFrac[f][j])
				}
				if multi {
					zero(s.PathFrac[f][j])
				}
				continue
			}
			if cum+v > 1 {
				scale := (1 - cum) / v
				s.Frac[f][j] = v * scale
				if free {
					for e := range s.EdgeFrac[f][j] {
						s.EdgeFrac[f][j][e] *= scale
					}
				}
				if multi {
					for p := range s.PathFrac[f][j] {
						s.PathFrac[f][j][p] *= scale
					}
				}
				cum = 1
				continue
			}
			cum += v
		}
	}
	return s, nil
}

func anyPositive(xs []float64) bool {
	for _, x := range xs {
		if x > eps {
			return true
		}
	}
	return false
}

func zero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

// gNode converts an int loop index to a graph node id.
func gNode(v int) graph.NodeID { return graph.NodeID(v) }
