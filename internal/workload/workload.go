// Package workload generates coflow scheduling instances that stand in
// for the four workloads of the paper's evaluation: BigBench, TPC-DS,
// TPC-H (public benchmark job mixes) and the Facebook (FB) production
// trace. The original inputs are job traces that are not shipped with
// this repository, so each generator is a synthetic model calibrated
// to the published qualitative characteristics of its workload:
//
//   - FB: many coflows, heavy-tailed (log-normal, σ≈2) flow sizes and
//     wide fan-out — most coflows are tiny, a few are enormous;
//   - BigBench: scan-heavy analytics — few flows per coflow but large,
//     moderately skewed sizes;
//   - TPC-DS: shuffle-dominated query plans — medium fan-out, medium
//     skew;
//   - TPC-H: the lightest mix — small fan-out, mild skew.
//
// As in the paper (Section 6): jobs are assigned release times "similar
// to that in production traces" (a Poisson process here), endpoints
// are placed uniformly at random over the datacenters, and weights are
// drawn uniformly from [1.0, 100.0]. Demands are expressed in
// capacity·slot units: a demand of 1.0 is one slot of one unit-capacity
// link. All randomness derives from Config.Seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Kind selects one of the four evaluation workloads.
type Kind int

// The paper's four workloads.
const (
	BigBench Kind = iota
	TPCDS
	TPCH
	FB
)

// Kinds lists all workloads in the order the paper's figures use.
var Kinds = []Kind{BigBench, TPCDS, TPCH, FB}

// String names the workload as in the paper's figures.
func (k Kind) String() string {
	switch k {
	case BigBench:
		return "BigBench"
	case TPCDS:
		return "TPC-DS"
	case TPCH:
		return "TPC-H"
	case FB:
		return "FB"
	default:
		return fmt.Sprintf("workload(%d)", int(k))
	}
}

// shape holds the per-workload distribution parameters.
type shape struct {
	minFlows, maxFlows int     // flows per coflow (uniform)
	sizeMu, sizeSigma  float64 // log-normal flow size parameters
	sizeCap            float64 // truncation, in capacity·slot units
}

// The calibrated shapes. Means are in capacity·slot units and chosen
// so a default instance loads the WAN at a schedulable utilization.
func (k Kind) shape() shape {
	switch k {
	case BigBench:
		return shape{minFlows: 1, maxFlows: 3, sizeMu: 0.6, sizeSigma: 1.0, sizeCap: 12}
	case TPCDS:
		return shape{minFlows: 2, maxFlows: 6, sizeMu: 0.0, sizeSigma: 1.2, sizeCap: 10}
	case TPCH:
		return shape{minFlows: 2, maxFlows: 5, sizeMu: -0.3, sizeSigma: 0.8, sizeCap: 8}
	case FB:
		return shape{minFlows: 1, maxFlows: 8, sizeMu: -1.0, sizeSigma: 2.0, sizeCap: 15}
	default:
		return shape{minFlows: 1, maxFlows: 3, sizeMu: 0, sizeSigma: 1, sizeCap: 10}
	}
}

// Config parameterizes instance generation.
type Config struct {
	Kind       Kind
	Graph      *graph.Graph
	NumCoflows int
	Seed       int64
	// MeanInterarrival is the mean coflow interarrival time in slot
	// units (releases form a Poisson process snapped up to integer
	// slots, matching the 50-second slotting of the experiments).
	// Zero means all coflows are released at time 0.
	MeanInterarrival float64
	// WeightMin/WeightMax bound the uniform weight draw. Zero values
	// default to the paper's [1.0, 100.0]. Set both to 1 for the
	// unweighted (Terra) experiments.
	WeightMin, WeightMax float64
	// AssignPaths draws a uniformly random shortest path per flow
	// (required before single path scheduling).
	AssignPaths bool
	// Endpoints optionally restricts flow sources and sinks to the
	// given nodes — the hosts of a switched fabric (see internal/topo's
	// Topology.Endpoints). Empty means every node of the graph. At
	// least two distinct in-range nodes are required; anything else is
	// rejected with an error rather than wrapping indices or looping
	// forever on a single endpoint.
	Endpoints []graph.NodeID
}

// Generate builds a reproducible instance.
func Generate(cfg Config) (*coflow.Instance, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("workload: nil graph")
	}
	if cfg.NumCoflows <= 0 {
		return nil, fmt.Errorf("workload: NumCoflows = %d", cfg.NumCoflows)
	}
	if cfg.Graph.NumNodes() < 2 {
		return nil, fmt.Errorf("workload: graph needs ≥ 2 nodes")
	}
	// The mean interarrival scales Poisson gaps; NaN or −x fail the
	// "> 0" release check and degrade to all-at-zero, but +Inf would
	// flow into the releases themselves, so non-finite values are
	// rejected outright (found by FuzzGenerateConfig).
	if math.IsNaN(cfg.MeanInterarrival) || math.IsInf(cfg.MeanInterarrival, 0) {
		return nil, fmt.Errorf("workload: MeanInterarrival %g is not finite", cfg.MeanInterarrival)
	}
	wmin, wmax := cfg.WeightMin, cfg.WeightMax
	if wmin == 0 && wmax == 0 {
		wmin, wmax = 1.0, 100.0
	}
	// Negated comparisons so NaN bounds fail validation instead of
	// slipping NaN weights into every coflow (wmin <= 0 and
	// wmax < wmin are both false for NaN); ±Inf is equally unusable.
	if !(wmin > 0) || !(wmax >= wmin) || math.IsInf(wmin, 0) || math.IsInf(wmax, 0) {
		return nil, fmt.Errorf("workload: bad weight range [%g, %g]", wmin, wmax)
	}
	eps := cfg.Endpoints
	if len(eps) == 0 {
		eps = make([]graph.NodeID, cfg.Graph.NumNodes())
		for i := range eps {
			eps[i] = graph.NodeID(i)
		}
	} else {
		distinct := make(map[graph.NodeID]bool, len(eps))
		for _, v := range eps {
			if v < 0 || int(v) >= cfg.Graph.NumNodes() {
				return nil, fmt.Errorf("workload: endpoint %d outside the graph's %d nodes", v, cfg.Graph.NumNodes())
			}
			distinct[v] = true
		}
		if len(distinct) < 2 {
			return nil, fmt.Errorf("workload: %d distinct endpoints; flows need ≥ 2 (source ≠ sink)", len(distinct))
		}
	}
	sh := cfg.Kind.shape()
	rng := rand.New(rand.NewSource(stats.SubSeed(cfg.Seed, uint64(cfg.Kind))))

	in := &coflow.Instance{Graph: cfg.Graph}
	release := 0.0
	for j := 0; j < cfg.NumCoflows; j++ {
		if cfg.MeanInterarrival > 0 && j > 0 {
			release += rng.ExpFloat64() * cfg.MeanInterarrival
		}
		c := coflow.Coflow{
			ID:      j,
			Weight:  wmin + rng.Float64()*(wmax-wmin),
			Release: math.Ceil(release), // snap up to slot boundaries
		}
		nf := sh.minFlows
		if sh.maxFlows > sh.minFlows {
			nf += rng.Intn(sh.maxFlows - sh.minFlows + 1)
		}
		for i := 0; i < nf; i++ {
			src := eps[rng.Intn(len(eps))]
			dst := eps[rng.Intn(len(eps))]
			for dst == src {
				dst = eps[rng.Intn(len(eps))]
			}
			size := math.Exp(sh.sizeMu + sh.sizeSigma*rng.NormFloat64())
			if size > sh.sizeCap {
				size = sh.sizeCap
			}
			if size < 0.05 {
				size = 0.05
			}
			c.Flows = append(c.Flows, coflow.Flow{Source: src, Sink: dst, Demand: size})
		}
		in.Coflows = append(in.Coflows, c)
	}
	if cfg.AssignPaths {
		if err := in.AssignRandomShortestPaths(rng); err != nil {
			return nil, err
		}
	}
	return in, nil
}
