package workload

// Native Go fuzzing for Config validation: Generate must return an
// error — never panic, never loop forever, never emit a poisoned
// instance — for every configuration an API caller could hand it. A
// successful generation must satisfy the generator's own contract:
// the requested coflow count, finite positive weights and demands,
// finite non-decreasing integer releases, and endpoints drawn from
// the allowed set. Seed corpus under testdata/fuzz/FuzzGenerateConfig;
// run with
//
//	go test -fuzz FuzzGenerateConfig ./internal/workload

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// fuzzGraph picks one of three fixed small networks so endpoint
// validation sees in-range, out-of-range, and degenerate cases.
func fuzzGraph(sel uint8) *graph.Graph {
	switch sel % 3 {
	case 0:
		return graph.SWAN(1)
	case 1:
		return graph.GScale(2)
	default:
		g := graph.New()
		a := g.AddNode("a")
		b := g.AddNode("b")
		g.AddLink(a, b, 1)
		return g
	}
}

func FuzzGenerateConfig(f *testing.F) {
	f.Add(uint8(0), int16(10), int64(1), 1.5, 1.0, 100.0, true, int8(0), int8(1))
	f.Add(uint8(1), int16(1), int64(-7), 0.0, 0.0, 0.0, false, int8(-1), int8(-1))
	f.Add(uint8(2), int16(0), int64(0), -3.0, 5.0, 2.0, true, int8(0), int8(0))
	f.Add(uint8(3), int16(4), int64(9), math.Inf(1), 1.0, 1.0, true, int8(0), int8(100))
	f.Add(uint8(0), int16(4), int64(9), math.NaN(), math.NaN(), math.NaN(), false, int8(2), int8(3))
	f.Add(uint8(5), int16(300), int64(3), 0.25, 50.0, 50.0, true, int8(4), int8(2))
	f.Fuzz(func(t *testing.T, gsel uint8, coflows int16, seed int64,
		inter, wmin, wmax float64, paths bool, epA, epB int8) {
		g := fuzzGraph(gsel)
		cfg := Config{
			Kind:             Kind(int(gsel) % (len(Kinds) + 2)), // includes out-of-range kinds
			Graph:            g,
			NumCoflows:       int(coflows),
			Seed:             seed,
			MeanInterarrival: inter,
			WeightMin:        wmin,
			WeightMax:        wmax,
			AssignPaths:      paths,
		}
		// Endpoint lists exercise empty (epA < 0), in-range, repeated,
		// and out-of-range node ids.
		if epA >= 0 {
			cfg.Endpoints = []graph.NodeID{graph.NodeID(epA), graph.NodeID(epB), graph.NodeID(epA)}
		}
		in, err := Generate(cfg)
		if err != nil {
			return
		}
		if len(in.Coflows) != cfg.NumCoflows {
			t.Fatalf("generated %d coflows, config asked %d", len(in.Coflows), cfg.NumCoflows)
		}
		allowed := map[graph.NodeID]bool{}
		for _, ep := range cfg.Endpoints {
			allowed[ep] = true
		}
		prev := 0.0
		for j, c := range in.Coflows {
			if !(c.Weight > 0) || math.IsInf(c.Weight, 0) {
				t.Fatalf("coflow %d weight %g", j, c.Weight)
			}
			if math.IsNaN(c.Release) || math.IsInf(c.Release, 0) ||
				c.Release < prev || c.Release != math.Trunc(c.Release) {
				t.Fatalf("coflow %d release %g after %g is not a non-decreasing slot", j, c.Release, prev)
			}
			prev = c.Release
			if len(c.Flows) == 0 {
				t.Fatalf("coflow %d has no flows", j)
			}
			for i, fl := range c.Flows {
				if !(fl.Demand > 0) || math.IsInf(fl.Demand, 0) {
					t.Fatalf("coflow %d flow %d demand %g", j, i, fl.Demand)
				}
				if fl.Source == fl.Sink {
					t.Fatalf("coflow %d flow %d is a self-loop at %d", j, i, fl.Source)
				}
				if len(cfg.Endpoints) > 0 && (!allowed[fl.Source] || !allowed[fl.Sink]) {
					t.Fatalf("coflow %d flow %d endpoints %d→%d off the allowed set", j, i, fl.Source, fl.Sink)
				}
				if cfg.AssignPaths && len(fl.Path) == 0 {
					t.Fatalf("coflow %d flow %d has no path despite AssignPaths", j, i)
				}
			}
		}
	})
}
