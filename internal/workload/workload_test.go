package workload

import (
	"math"
	"testing"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/stats"
)

func TestGenerateAllKindsValid(t *testing.T) {
	g := graph.SWAN(1)
	for _, kind := range Kinds {
		in, err := Generate(Config{
			Kind: kind, Graph: g, NumCoflows: 20, Seed: 1,
			MeanInterarrival: 1.5, AssignPaths: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(in.Coflows) != 20 {
			t.Fatalf("%v: %d coflows", kind, len(in.Coflows))
		}
		if err := in.Validate(coflow.SinglePath); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := in.Validate(coflow.FreePath); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		// Weights in [1, 100].
		for _, c := range in.Coflows {
			if c.Weight < 1 || c.Weight > 100 {
				t.Fatalf("%v: weight %v out of range", kind, c.Weight)
			}
			// Releases snapped to slot boundaries.
			if c.Release != math.Floor(c.Release) {
				t.Fatalf("%v: release %v not slot-aligned", kind, c.Release)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := graph.GScale(1)
	cfg := Config{Kind: FB, Graph: g, NumCoflows: 15, Seed: 99, MeanInterarrival: 2}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumFlows() != b.NumFlows() || a.TotalDemand() != b.TotalDemand() {
		t.Fatal("same seed produced different instances")
	}
	for j := range a.Coflows {
		if a.Coflows[j].Weight != b.Coflows[j].Weight || a.Coflows[j].Release != b.Coflows[j].Release {
			t.Fatal("same seed produced different coflows")
		}
	}
	cfg.Seed = 100
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalDemand() == c.TotalDemand() {
		t.Fatal("different seeds produced identical demand totals (suspicious)")
	}
}

func TestKindsDifferInShape(t *testing.T) {
	// FB must be more skewed than TPC-H: higher max/mean demand ratio
	// over a sizable sample.
	g := graph.SWAN(1)
	skew := func(kind Kind) float64 {
		in, err := Generate(Config{Kind: kind, Graph: g, NumCoflows: 300, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var sizes []float64
		for _, c := range in.Coflows {
			for _, f := range c.Flows {
				sizes = append(sizes, f.Demand)
			}
		}
		s := stats.Summarize(sizes)
		return s.Max / s.Mean
	}
	if skew(FB) <= skew(TPCH) {
		t.Fatalf("FB skew %v not above TPC-H skew %v", skew(FB), skew(TPCH))
	}
}

func TestUnweightedMode(t *testing.T) {
	g := graph.SWAN(1)
	in, err := Generate(Config{Kind: TPCDS, Graph: g, NumCoflows: 10, Seed: 3,
		WeightMin: 1, WeightMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range in.Coflows {
		if c.Weight != 1 {
			t.Fatalf("weight %v, want 1", c.Weight)
		}
	}
}

func TestReleasesMonotoneWithArrivals(t *testing.T) {
	g := graph.SWAN(1)
	in, err := Generate(Config{Kind: TPCH, Graph: g, NumCoflows: 30, Seed: 5, MeanInterarrival: 1})
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < len(in.Coflows); j++ {
		if in.Coflows[j].Release < in.Coflows[j-1].Release {
			t.Fatal("releases not monotone")
		}
	}
	if in.Coflows[len(in.Coflows)-1].Release == 0 {
		t.Fatal("arrival process produced no spread")
	}
}

func TestGenerateErrors(t *testing.T) {
	g := graph.SWAN(1)
	cases := []Config{
		{Kind: FB, NumCoflows: 5},                                        // nil graph
		{Kind: FB, Graph: g, NumCoflows: 0},                              // no coflows
		{Kind: FB, Graph: g, NumCoflows: 5, WeightMin: 5, WeightMax: 2},  // bad range
		{Kind: FB, Graph: g, NumCoflows: 5, WeightMin: -1, WeightMax: 2}, // bad range
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	single := graph.New()
	single.AddNode("only")
	if _, err := Generate(Config{Kind: FB, Graph: single, NumCoflows: 1}); err == nil {
		t.Error("single-node graph accepted")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{BigBench: "BigBench", TPCDS: "TPC-DS", TPCH: "TPC-H", FB: "FB"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestEndpointsRestrictFlows(t *testing.T) {
	g := graph.GScale(1)
	eps := []graph.NodeID{1, 4, 7}
	in, err := Generate(Config{Kind: FB, Graph: g, NumCoflows: 12, Seed: 3, Endpoints: eps})
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[graph.NodeID]bool{1: true, 4: true, 7: true}
	for _, c := range in.Coflows {
		for _, f := range c.Flows {
			if !allowed[f.Source] || !allowed[f.Sink] {
				t.Fatalf("flow %v→%v outside endpoint set %v", f.Source, f.Sink, eps)
			}
		}
	}
}

func TestEndpointsDefaultMatchesAllNodes(t *testing.T) {
	// Passing the full node set explicitly must reproduce the default
	// sampling bit for bit (same RNG consumption).
	g := graph.SWAN(1)
	all := make([]graph.NodeID, g.NumNodes())
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	a, err := Generate(Config{Kind: TPCDS, Graph: g, NumCoflows: 6, Seed: 9, MeanInterarrival: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Kind: TPCDS, Graph: g, NumCoflows: 6, Seed: 9, MeanInterarrival: 1, Endpoints: all})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Coflows {
		for i := range a.Coflows[j].Flows {
			fa, fb := a.Coflows[j].Flows[i], b.Coflows[j].Flows[i]
			if fa.Source != fb.Source || fa.Sink != fb.Sink || fa.Demand != fb.Demand {
				t.Fatalf("coflow %d flow %d differs: %+v vs %+v", j, i, fa, fb)
			}
		}
	}
}

func TestEndpointsRejected(t *testing.T) {
	g := graph.SWAN(1)
	cases := []struct {
		name string
		eps  []graph.NodeID
	}{
		{"single endpoint", []graph.NodeID{2}},
		{"duplicated single endpoint", []graph.NodeID{2, 2, 2}},
		{"out of range", []graph.NodeID{0, 99}},
		{"negative", []graph.NodeID{-1, 2}},
	}
	for _, c := range cases {
		if _, err := Generate(Config{Kind: FB, Graph: g, NumCoflows: 2, Endpoints: c.eps}); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}
