package baselines

// Pins the incremental per-edge totals of SincroniaOrder to the
// original implementation, which re-summed every unscheduled coflow's
// demand on every edge at every iteration. The re-summing variant is
// kept here verbatim as the executable spec; the property test runs
// both over seeded random instances on two networks and demands the
// identical permutation. (Float addition is order-sensitive, so the
// incremental totals could in principle flip a bottleneck choice on a
// sub-1e-12 near-tie between two edges; this sweep is the evidence no
// realistic instance gets close.)

import (
	"math"
	"testing"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/workload"
)

// sincroniaOrderRescan is the pre-optimization SincroniaOrder.
func sincroniaOrderRescan(inst *coflow.Instance) []int {
	nc := len(inst.Coflows)
	d := edgeDemand(inst)
	ne := inst.Graph.NumEdges()

	scaled := make([]float64, nc)
	unsched := make([]bool, nc)
	for j := range inst.Coflows {
		scaled[j] = inst.Coflows[j].Weight
		unsched[j] = true
	}
	order := make([]int, nc)
	for k := nc - 1; k >= 0; k-- {
		bottleneck, load := graph.EdgeID(0), -1.0
		for e := 0; e < ne; e++ {
			var tot float64
			for j := 0; j < nc; j++ {
				if unsched[j] {
					tot += d[j][e]
				}
			}
			if tot > load+1e-12 {
				bottleneck, load = graph.EdgeID(e), tot
			}
		}
		best, bestKey := -1, math.Inf(-1)
		for j := 0; j < nc; j++ {
			if !unsched[j] || d[j][bottleneck] <= 0 {
				continue
			}
			key := math.Inf(1)
			if scaled[j] > 1e-12 {
				key = d[j][bottleneck] / scaled[j]
			}
			if key > bestKey {
				best, bestKey = j, key
			}
		}
		if best < 0 {
			for j := 0; j < nc; j++ {
				if unsched[j] {
					best = j
					break
				}
			}
		}
		order[k] = best
		unsched[best] = false
		if db := d[best][bottleneck]; db > 1e-12 {
			for j := 0; j < nc; j++ {
				if unsched[j] {
					scaled[j] -= scaled[best] * d[j][bottleneck] / db
				}
			}
		}
	}
	return order
}

func TestSincroniaOrderIncrementalMatchesRescan(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"swan", graph.SWAN(1)},
		{"gscale", graph.GScale(1)},
	}
	for _, tg := range graphs {
		for seed := int64(0); seed < 6; seed++ {
			in, err := workload.Generate(workload.Config{
				Kind: workload.FB, Graph: tg.g, NumCoflows: 40, Seed: seed,
				MeanInterarrival: 1, AssignPaths: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := SincroniaOrder(in)
			want := sincroniaOrderRescan(in)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s seed %d: incremental order diverges at position %d:\n got %v\nwant %v",
						tg.name, seed, i, got, want)
				}
			}
		}
	}
}
