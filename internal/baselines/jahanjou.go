// Package baselines implements the two prior-work algorithms the
// paper compares against (Section 6.2) plus a non-LP greedy used for
// ablations:
//
//   - Jahanjou et al. (SPAA '17) for the single path model: a
//     geometric-interval LP whose α-points order the coflows, followed
//     by priority-ordered rate allocation;
//   - Terra (You & Chowdhury '19) for the free path model: per-coflow
//     standalone completion times via max-concurrent-flow LPs and an
//     SRTF (shortest remaining time first) event simulation in
//     continuous time;
//   - a weighted shortest-job-first greedy that needs no LP.
//
// The original systems are not open source; both are re-implemented
// from their published descriptions, which is exactly what the paper
// itself did for its experiments.
package baselines

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/coflow"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/simplex"
	"repro/internal/timegrid"
)

// ErrHorizonTooSmall marks a PriorityFill run that left demand
// unshipped because the slot budget ran out. Callers retry with a
// longer horizon iff errors.Is(err, ErrHorizonTooSmall).
var ErrHorizonTooSmall = errors.New("horizon too small")

// JahanjouEpsilon is the interval growth rate that optimizes the
// approximation ratio of Jahanjou et al.'s rounding (the paper quotes
// ε = 0.5436).
const JahanjouEpsilon = 0.5436

// JahanjouAdaptive runs Jahanjou, growing the horizon geometrically
// (2×, 4×, 8×) while the failure is genuinely cured by a longer grid:
// an infeasible or over-budget interval LP, or a priority fill that
// ran out of slots (seen on high-diameter generated topologies where
// the LP-sized horizon underestimates path contention). Other errors
// surface immediately. This is the single retry policy shared by the
// engine wrapper and the figure harnesses.
func JahanjouAdaptive(ctx context.Context, in *coflow.Instance, horizon float64, eps, alpha float64) (*JahanjouResult, error) {
	jr, err := Jahanjou(ctx, in, horizon, eps, alpha)
	for grow := 2.0; err != nil && retryableHorizon(err) && grow <= 8; grow *= 2 {
		jr, err = Jahanjou(ctx, in, grow*horizon, eps, alpha)
	}
	return jr, err
}

// retryableHorizon reports whether err is cured by a longer horizon.
func retryableHorizon(err error) bool {
	var se *model.StatusError
	if errors.As(err, &se) && (se.Status == simplex.Infeasible || se.Status == simplex.IterLimit) {
		return true
	}
	return errors.Is(err, ErrHorizonTooSmall)
}

// JahanjouResult reports the baseline's outcome.
type JahanjouResult struct {
	// LowerBound is the geometric-interval LP objective.
	LowerBound float64
	// Schedule is the feasibility-verified schedule produced by
	// α-point priority allocation (on a uniform unit grid).
	Schedule *schedule.Schedule
	// Weighted is Σ w_j C_j of the schedule.
	Weighted float64
	// Completions holds the per-coflow completion times.
	Completions []float64
	// Order is the coflow priority order chosen by the α-points.
	Order []int
}

// Jahanjou runs the single path baseline: solve the time-interval LP
// with geometric intervals {(1+ε)^i}, compute each coflow's α-point
// (the interval in which an α fraction of the coflow completes), and
// schedule coflows by α-point priority with greedy per-slot rate
// allocation. alpha is the completion fraction defining the α-point
// (1/2 is the conventional choice); horizon is in slot units.
func Jahanjou(ctx context.Context, inst *coflow.Instance, horizon float64, eps, alpha float64) (*JahanjouResult, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("baselines: alpha %g outside (0,1]", alpha)
	}
	grid := timegrid.Geometric(horizon, eps)
	l, err := model.BuildSinglePath(inst, grid)
	if err != nil {
		return nil, err
	}
	sol, err := l.Solve(ctx, simplex.Options{})
	if err != nil {
		return nil, err
	}

	// α-point per coflow: the first interval by whose end every flow
	// of the coflow has completed an α fraction.
	nc := len(inst.Coflows)
	alphaSlot := make([]int, nc)
	for j := range alphaSlot {
		alphaSlot[j] = grid.NumSlots()
	}
	cum := make([]float64, len(sol.Frac))
	perCoflowMin := make([][]float64, nc) // min over flows of cumulative, per slot
	flowsOf := make([][]int, nc)
	for f, ref := range l.Flows() {
		flowsOf[ref.Coflow] = append(flowsOf[ref.Coflow], f)
	}
	for j := 0; j < nc; j++ {
		perCoflowMin[j] = make([]float64, grid.NumSlots())
		for k := range perCoflowMin[j] {
			perCoflowMin[j][k] = math.Inf(1)
		}
	}
	for k := 0; k < grid.NumSlots(); k++ {
		for f := range l.Flows() {
			cum[f] += sol.Frac[f][k]
		}
		for j := 0; j < nc; j++ {
			minCum := math.Inf(1)
			for _, f := range flowsOf[j] {
				if cum[f] < minCum {
					minCum = cum[f]
				}
			}
			perCoflowMin[j][k] = minCum
			if minCum >= alpha-1e-9 && alphaSlot[j] == grid.NumSlots() {
				alphaSlot[j] = k
			}
		}
	}

	// Priority order: earlier α-interval first; ties by weighted
	// demand (heavier, smaller coflows first), then id for determinism.
	order := make([]int, nc)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := order[a], order[b]
		if alphaSlot[ja] != alphaSlot[jb] {
			return alphaSlot[ja] < alphaSlot[jb]
		}
		ra := inst.Coflows[ja].TotalDemand() / inst.Coflows[ja].Weight
		rb := inst.Coflows[jb].TotalDemand() / inst.Coflows[jb].Weight
		if ra != rb {
			return ra < rb
		}
		return ja < jb
	})

	s, err := PriorityFill(inst, order, int(math.Ceil(horizon))+1)
	if err != nil {
		return nil, err
	}
	res := &JahanjouResult{
		LowerBound:  sol.LowerBound,
		Schedule:    s,
		Completions: s.CompletionTimes(),
		Order:       order,
	}
	res.Weighted = s.WeightedCompletion()
	return res, nil
}

// PriorityFill builds a feasible single path schedule by strict
// priority water-filling: slot by slot, coflows in the given order
// grab as much of their paths' residual capacity as their remaining
// demand allows. This is the rate-allocation step shared by the
// Jahanjou baseline and the greedy baseline.
func PriorityFill(inst *coflow.Instance, order []int, slots int) (*schedule.Schedule, error) {
	if err := inst.Validate(coflow.SinglePath); err != nil {
		return nil, err
	}
	grid := timegrid.Uniform(slots)
	flows := inst.FlattenFlows()
	s := &schedule.Schedule{
		Inst:  inst,
		Mode:  coflow.SinglePath,
		Grid:  grid,
		Flows: flows,
	}
	s.Frac = make([][]float64, len(flows))
	remaining := make([]float64, len(flows))
	for f := range flows {
		s.Frac[f] = make([]float64, slots)
		remaining[f] = 1.0
	}
	flowsOf := make([][]int, len(inst.Coflows))
	for f, ref := range flows {
		flowsOf[ref.Coflow] = append(flowsOf[ref.Coflow], f)
	}
	g := inst.Graph
	residual := make([]float64, g.NumEdges())
	for k := 0; k < slots; k++ {
		for _, e := range g.Edges() {
			residual[e.ID] = e.Capacity * grid.Len(k)
		}
		done := true
		for _, j := range order {
			for _, f := range flowsOf[j] {
				if remaining[f] <= 1e-12 {
					continue
				}
				done = false
				if grid.Start(k) < inst.ReleaseAt(flows[f]) {
					continue
				}
				fl := inst.FlowAt(flows[f])
				// Largest fraction the path's residual allows.
				frac := remaining[f]
				for _, eid := range fl.Path {
					if r := residual[eid] / fl.Demand; r < frac {
						frac = r
					}
				}
				if frac <= 1e-12 {
					continue
				}
				for _, eid := range fl.Path {
					residual[eid] -= frac * fl.Demand
				}
				s.Frac[f][k] = frac
				remaining[f] -= frac
			}
		}
		if done {
			break
		}
	}
	for f, rem := range remaining {
		if rem > 1e-9 {
			return nil, fmt.Errorf("baselines: flow %d has %.3g demand left after %d slots: %w",
				f, rem, slots, ErrHorizonTooSmall)
		}
	}
	return s, nil
}

// GreedyWSJF is the non-LP ablation baseline: coflows ordered by the
// Smith ratio (total demand over weight, smallest first), then
// priority water-filling. Single path model.
func GreedyWSJF(inst *coflow.Instance, slots int) (*schedule.Schedule, error) {
	order := make([]int, len(inst.Coflows))
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := order[a], order[b]
		ra := inst.Coflows[ja].TotalDemand() / inst.Coflows[ja].Weight
		rb := inst.Coflows[jb].TotalDemand() / inst.Coflows[jb].Weight
		if ra != rb {
			return ra < rb
		}
		return ja < jb
	})
	return PriorityFill(inst, order, slots)
}
