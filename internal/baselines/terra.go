package baselines

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/simplex"
)

// Terra re-implements the offline free path baseline of You &
// Chowdhury (Terra, 2019) as the paper describes it: compute each
// coflow's standalone completion time (the fastest it could finish
// with the whole network to itself — a max-concurrent-flow LP), then
// simulate SRTF (shortest remaining time first) in continuous,
// unslotted time. At every event the scheduler walks the SRTF order
// and grants each coflow its maximum concurrent-flow rate allocation
// on the residual network, so capacity left over by the leader is
// backfilled — this matches Terra's "twice the number of coflows" LP
// count and its fine-grained-time advantage over slotted schedules.
//
// Terra handles only the unweighted objective (total completion
// time), as noted in the paper's Section 6.2.

// TerraResult reports the simulation outcome.
type TerraResult struct {
	// Completions per coflow, in the same (continuous) time units as
	// the instance's demands and capacities.
	Completions []float64
	// Total is Σ_j C_j.
	Total float64
	// Standalone[j] is coflow j's isolated completion time.
	Standalone []float64
	// LPSolves counts the concurrent-flow LPs solved.
	LPSolves int
}

// concurrentFlowRate solves the max-concurrent-flow LP for one
// coflow's remaining demands on the given residual capacities: every
// flow i ships at rate μ·rem_i simultaneously; returns μ and per-flow
// per-edge rates. μ = 0 means no capacity is left.
func concurrentFlowRate(ctx context.Context, g *graph.Graph, flows []coflow.Flow, rem []float64, residual []float64) (float64, [][]float64, error) {
	ne := g.NumEdges()
	m := lp.NewModel("concurrent-flow")
	m.SetMaximize(true)
	mu := m.AddVar("mu", 0, math.Inf(1), 1)
	rate := make([][]lp.VarID, len(flows))
	// Per-edge capacity rows.
	capRows := make([]lp.ConstrID, ne)
	for e := 0; e < ne; e++ {
		capRows[e] = m.AddConstr(fmt.Sprintf("cap_e%d", e), lp.LE, math.Max(0, residual[e]))
	}
	active := false
	for i, fl := range flows {
		if rem[i] <= 1e-12 {
			continue
		}
		active = true
		rate[i] = make([]lp.VarID, ne)
		for e := 0; e < ne; e++ {
			rate[i][e] = m.AddVar(fmt.Sprintf("r_f%d_e%d", i, e), 0, math.Inf(1), 0)
			m.AddTerm(capRows[e], rate[i][e], 1)
		}
		// Net outflow at source = μ·rem_i; conservation elsewhere;
		// net inflow at sink = μ·rem_i.
		src := m.AddConstr(fmt.Sprintf("src_f%d", i), lp.EQ, 0)
		for _, eid := range g.OutEdges(fl.Source) {
			m.AddTerm(src, rate[i][eid], 1)
		}
		for _, eid := range g.InEdges(fl.Source) {
			m.AddTerm(src, rate[i][eid], -1)
		}
		m.AddTerm(src, mu, -rem[i])
		snk := m.AddConstr(fmt.Sprintf("snk_f%d", i), lp.EQ, 0)
		for _, eid := range g.InEdges(fl.Sink) {
			m.AddTerm(snk, rate[i][eid], 1)
		}
		for _, eid := range g.OutEdges(fl.Sink) {
			m.AddTerm(snk, rate[i][eid], -1)
		}
		m.AddTerm(snk, mu, -rem[i])
		for v := 0; v < g.NumNodes(); v++ {
			nv := graph.NodeID(v)
			if nv == fl.Source || nv == fl.Sink {
				continue
			}
			row := m.AddConstr(fmt.Sprintf("cons_f%d_v%d", i, v), lp.EQ, 0)
			for _, eid := range g.InEdges(nv) {
				m.AddTerm(row, rate[i][eid], 1)
			}
			for _, eid := range g.OutEdges(nv) {
				m.AddTerm(row, rate[i][eid], -1)
			}
		}
	}
	if !active {
		return 0, nil, nil
	}
	sol, err := m.Solve(ctx, simplex.Options{})
	if err != nil {
		return 0, nil, err
	}
	if sol.Status != simplex.Optimal {
		return 0, nil, fmt.Errorf("baselines: concurrent-flow LP %v", sol.Status)
	}
	rates := make([][]float64, len(flows))
	for i := range flows {
		if rate[i] == nil {
			continue
		}
		rates[i] = make([]float64, ne)
		for e := 0; e < ne; e++ {
			rates[i][e] = sol.Value(rate[i][e])
		}
	}
	return sol.Value(mu), rates, nil
}

// netSourceRate returns the net outflow rate at the flow's source
// under the given per-edge rates.
func netSourceRate(g *graph.Graph, fl coflow.Flow, rates []float64) float64 {
	var r float64
	for _, eid := range g.OutEdges(fl.Source) {
		r += rates[eid]
	}
	for _, eid := range g.InEdges(fl.Source) {
		r -= rates[eid]
	}
	return r
}

// Terra runs the baseline. Time is continuous; demands and capacities
// come straight from the instance.
func Terra(ctx context.Context, inst *coflow.Instance) (*TerraResult, error) {
	if err := inst.Validate(coflow.FreePath); err != nil {
		return nil, err
	}
	g := inst.Graph
	nc := len(inst.Coflows)
	res := &TerraResult{
		Completions: make([]float64, nc),
		Standalone:  make([]float64, nc),
	}

	// Phase 1: standalone completion times (one LP per coflow).
	fullCaps := make([]float64, g.NumEdges())
	for _, e := range g.Edges() {
		fullCaps[e.ID] = e.Capacity
	}
	for j := 0; j < nc; j++ {
		c := &inst.Coflows[j]
		rem := make([]float64, len(c.Flows))
		for i, fl := range c.Flows {
			rem[i] = fl.Demand
		}
		mu, _, err := concurrentFlowRate(ctx, g, c.Flows, rem, fullCaps)
		res.LPSolves++
		if err != nil {
			return nil, err
		}
		if mu <= 1e-12 {
			return nil, fmt.Errorf("baselines: coflow %d cannot be routed", c.ID)
		}
		res.Standalone[j] = 1 / mu
	}

	// Phase 2: SRTF event simulation.
	remaining := make([][]float64, nc) // per coflow, per flow remaining volume
	finished := make([]bool, nc)
	for j := 0; j < nc; j++ {
		remaining[j] = make([]float64, len(inst.Coflows[j].Flows))
		for i, fl := range inst.Coflows[j].Flows {
			remaining[j][i] = fl.Demand
		}
	}
	// Release events.
	now := 0.0
	const maxEvents = 1 << 16
	for ev := 0; ev < maxEvents; ev++ {
		// Candidates: released and unfinished.
		var cand []int
		nextRelease := math.Inf(1)
		for j := 0; j < nc; j++ {
			if finished[j] {
				continue
			}
			r := inst.Coflows[j].Release
			if r <= now+1e-12 {
				cand = append(cand, j)
			} else if r < nextRelease {
				nextRelease = r
			}
		}
		if len(cand) == 0 {
			if math.IsInf(nextRelease, 1) {
				break // all done
			}
			now = nextRelease
			continue
		}
		// SRTF key: remaining fraction × standalone time (exact under
		// proportional depletion; a documented approximation when
		// backfilling depletes flows unevenly).
		key := func(j int) float64 {
			var maxFrac float64
			for i, fl := range inst.Coflows[j].Flows {
				if fr := remaining[j][i] / fl.Demand; fr > maxFrac {
					maxFrac = fr
				}
			}
			return maxFrac * res.Standalone[j]
		}
		sort.SliceStable(cand, func(a, b int) bool {
			ka, kb := key(cand[a]), key(cand[b])
			if ka != kb {
				return ka < kb
			}
			return cand[a] < cand[b]
		})
		// Allocate in SRTF order on the residual network.
		residual := append([]float64(nil), fullCaps...)
		type alloc struct {
			j     int
			rates [][]float64 // per flow, per edge
			done  float64     // time until this coflow finishes at these rates
		}
		var allocs []alloc
		for _, j := range cand {
			mu, rates, err := concurrentFlowRate(ctx, g, inst.Coflows[j].Flows, remaining[j], residual)
			res.LPSolves++
			if err != nil {
				return nil, err
			}
			if mu <= 1e-9 {
				continue
			}
			for i := range inst.Coflows[j].Flows {
				if rates[i] == nil {
					continue
				}
				for e := range residual {
					residual[e] -= rates[i][e]
					if residual[e] < 0 {
						residual[e] = 0
					}
				}
			}
			allocs = append(allocs, alloc{j: j, rates: rates, done: 1 / mu})
		}
		if len(allocs) == 0 {
			return nil, fmt.Errorf("baselines: SRTF stalled at t=%g", now)
		}
		// Advance to the next event: earliest completion or release.
		dt := nextRelease - now
		for _, a := range allocs {
			if a.done < dt {
				dt = a.done
			}
		}
		if dt <= 0 || math.IsInf(dt, 1) {
			dt = allocs[0].done
		}
		for _, a := range allocs {
			c := &inst.Coflows[a.j]
			allDone := true
			for i, fl := range c.Flows {
				if a.rates[i] == nil {
					if remaining[a.j][i] > 1e-9 {
						allDone = false
					}
					continue
				}
				remaining[a.j][i] -= netSourceRate(g, fl, a.rates[i]) * dt
				if remaining[a.j][i] < 1e-9 {
					remaining[a.j][i] = 0
				} else {
					allDone = false
				}
			}
			if allDone && !finished[a.j] {
				finished[a.j] = true
				res.Completions[a.j] = now + dt
			}
		}
		now += dt
	}
	for j := 0; j < nc; j++ {
		if !finished[j] {
			return nil, fmt.Errorf("baselines: coflow %d never finished (simulation cap reached)", inst.Coflows[j].ID)
		}
		res.Total += res.Completions[j]
	}
	return res, nil
}
