package baselines

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/coflow"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/timegrid"
)

// figure2SP is the Section 2 running example with Figure 3 paths.
func figure2SP() *coflow.Instance {
	g := graph.Figure2()
	s, tt := g.MustNode("s"), g.MustNode("t")
	direct := func(from, to graph.NodeID) []graph.EdgeID {
		for _, eid := range g.OutEdges(from) {
			if g.Edge(eid).To == to {
				return []graph.EdgeID{eid}
			}
		}
		panic("no direct edge")
	}
	v := []graph.NodeID{g.MustNode("v1"), g.MustNode("v2"), g.MustNode("v3")}
	in := &coflow.Instance{Graph: g}
	for i := 0; i < 3; i++ {
		in.Coflows = append(in.Coflows, coflow.Coflow{ID: i, Weight: 1,
			Flows: []coflow.Flow{{Source: v[i], Sink: tt, Demand: 1, Path: direct(v[i], tt)}}})
	}
	in.Coflows = append(in.Coflows, coflow.Coflow{ID: 3, Weight: 1,
		Flows: []coflow.Flow{{Source: s, Sink: tt, Demand: 3,
			Path: append(direct(s, v[1]), direct(v[1], tt)...)}}})
	return in
}

func figure2FP() *coflow.Instance {
	in := figure2SP()
	for ci := range in.Coflows {
		in.Coflows[ci].Flows[0].Path = nil
	}
	return in
}

func TestPriorityFillProducesFeasibleSchedule(t *testing.T) {
	in := figure2SP()
	s, err := PriorityFill(in, []int{0, 1, 2, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// Small coflows first: they finish in slot 1; blue then needs 3
	// more slots on the shared edge → completion 4. Objective 1+1+1+4=7.
	if obj := s.WeightedCompletion(); math.Abs(obj-7) > 1e-9 {
		t.Fatalf("objective %v, want 7", obj)
	}
}

func TestPriorityFillReverseOrderWorse(t *testing.T) {
	in := figure2SP()
	s, err := PriorityFill(in, []int{3, 2, 1, 0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// Blue first: finishes at 3; green is locked out of the shared edge
	// until slot 4 → objective 3+1+1+4 = 9.
	if obj := s.WeightedCompletion(); math.Abs(obj-9) > 1e-9 {
		t.Fatalf("objective %v, want 9", obj)
	}
}

func TestPriorityFillHorizonTooSmall(t *testing.T) {
	in := figure2SP()
	if _, err := PriorityFill(in, []int{0, 1, 2, 3}, 2); err == nil {
		t.Fatal("expected horizon error")
	}
}

func TestPriorityFillRespectsRelease(t *testing.T) {
	in := figure2SP()
	in.Coflows[0].Release = 3
	s, err := PriorityFill(in, []int{0, 1, 2, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if ct := s.CompletionTimes(); ct[0] < 4-1e-9 {
		t.Fatalf("released-at-3 coflow finished at %v", ct[0])
	}
}

func TestGreedyWSJF(t *testing.T) {
	in := figure2SP()
	s, err := GreedyWSJF(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// Smith ratios: small coflows 1/1=1, blue 3/1=3 → small first → 7.
	if obj := s.WeightedCompletion(); math.Abs(obj-7) > 1e-9 {
		t.Fatalf("objective %v, want 7", obj)
	}
}

func TestJahanjouOnFigure2(t *testing.T) {
	in := figure2SP()
	res, err := Jahanjou(context.Background(), in, 8, JahanjouEpsilon, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(); err != nil {
		t.Fatal(err)
	}
	// The baseline is feasible, so it cannot beat the integral optimum.
	if res.Weighted < 7-1e-9 {
		t.Fatalf("Jahanjou objective %v beats optimum 7", res.Weighted)
	}
	// And its interval LP is a valid lower bound.
	if res.LowerBound > 7+1e-6 {
		t.Fatalf("interval LP %v above optimum 7", res.LowerBound)
	}
	if len(res.Order) != 4 {
		t.Fatalf("order has %d entries", len(res.Order))
	}
}

func TestJahanjouAlphaValidation(t *testing.T) {
	in := figure2SP()
	if _, err := Jahanjou(context.Background(), in, 8, JahanjouEpsilon, 0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := Jahanjou(context.Background(), in, 8, JahanjouEpsilon, 1.5); err == nil {
		t.Fatal("alpha>1 accepted")
	}
}

func TestOurHeuristicBeatsOrMatchesJahanjou(t *testing.T) {
	// The paper's headline single-path experimental finding (Figs 9-10):
	// the time-indexed heuristic is significantly better than Jahanjou
	// et al. Check "not worse" on a congested random instance.
	rng := rand.New(rand.NewSource(17))
	g := graph.SWAN(2)
	in := &coflow.Instance{Graph: g}
	for j := 0; j < 5; j++ {
		c := coflow.Coflow{ID: j, Weight: 1 + rng.Float64()*4}
		for i := 0; i < 2; i++ {
			src := graph.NodeID(rng.Intn(g.NumNodes()))
			dst := graph.NodeID(rng.Intn(g.NumNodes()))
			for dst == src {
				dst = graph.NodeID(rng.Intn(g.NumNodes()))
			}
			c.Flows = append(c.Flows, coflow.Flow{Source: src, Sink: dst, Demand: 1 + rng.Float64()*4})
		}
		in.Coflows = append(in.Coflows, c)
	}
	if err := in.AssignRandomShortestPaths(rng); err != nil {
		t.Fatal(err)
	}
	horizon := in.HorizonUpperBound(coflow.SinglePath) + 2
	jr, err := Jahanjou(context.Background(), in, horizon, JahanjouEpsilon, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(context.Background(), in, coflow.SinglePath,
		core.Options{Grid: timegrid.Uniform(int(math.Ceil(horizon)) + 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Heuristic.Weighted > jr.Weighted*1.25+1e-9 {
		t.Fatalf("heuristic %v much worse than Jahanjou %v", res.Heuristic.Weighted, jr.Weighted)
	}
}

func TestTerraStandaloneFigure1(t *testing.T) {
	// Figure 1's coflow finishes in 2 time units in the free path model.
	g := graph.Figure1()
	in := &coflow.Instance{Graph: g, Coflows: []coflow.Coflow{{
		ID: 0, Weight: 1,
		Flows: []coflow.Flow{
			{Source: g.MustNode("NY"), Sink: g.MustNode("BA"), Demand: 18},
			{Source: g.MustNode("HK"), Sink: g.MustNode("FL"), Demand: 12},
		},
	}}}
	res, err := Terra(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Standalone[0]-2) > 1e-5 {
		t.Fatalf("standalone time %v, want 2", res.Standalone[0])
	}
	if math.Abs(res.Completions[0]-2) > 1e-5 {
		t.Fatalf("completion %v, want 2", res.Completions[0])
	}
}

func TestTerraFigure2(t *testing.T) {
	in := figure2FP()
	res, err := Terra(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	// The slotted optimum is 5 (Figure 4), but Terra works in
	// continuous unslotted time and can even split small coflows over
	// detours, so it may go below 5 — the paper observes exactly this
	// ("Terra performs slightly better than even the LP objective").
	// Every completion is still bounded below by the standalone time.
	for j, c := range res.Completions {
		if c < res.Standalone[j]-1e-6 {
			t.Fatalf("coflow %d completed at %v, faster than standalone %v", j, c, res.Standalone[j])
		}
	}
	if res.Total > 7+1e-5 {
		t.Fatalf("Terra total %v far above slotted optimum 5", res.Total)
	}
	// Standalone times: each small coflow ships its unit at rate 2
	// (direct edge plus the detour through s) → 0.5; the big coflow
	// ships 3 units over the three disjoint unit paths → 1.
	for j := 0; j < 3; j++ {
		if math.Abs(res.Standalone[j]-0.5) > 1e-5 {
			t.Fatalf("standalone[%d] = %v, want 0.5", j, res.Standalone[j])
		}
	}
	if math.Abs(res.Standalone[3]-1) > 1e-5 {
		t.Fatalf("standalone[3] = %v, want 1", res.Standalone[3])
	}
	if res.LPSolves < len(in.Coflows) {
		t.Fatalf("LP solves %d implausibly few", res.LPSolves)
	}
}

func TestTerraRespectsReleases(t *testing.T) {
	in := figure2FP()
	in.Coflows[0].Release = 10
	res, err := Terra(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions[0] < 10 {
		t.Fatalf("coflow released at 10 finished at %v", res.Completions[0])
	}
}

func TestTerraUnroutableCoflow(t *testing.T) {
	g := graph.Gadget(2)
	x0, _ := graph.GadgetPair(g, 0)
	_, y1 := graph.GadgetPair(g, 1)
	in := &coflow.Instance{Graph: g, Coflows: []coflow.Coflow{{
		ID: 0, Weight: 1, Flows: []coflow.Flow{{Source: x0, Sink: y1, Demand: 1}},
	}}}
	if _, err := Terra(context.Background(), in); err == nil {
		t.Fatal("expected error for unroutable coflow")
	}
}
