package baselines

import (
	"testing"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/workload"
)

func sincroniaInstance(t *testing.T, n int) *coflow.Instance {
	t.Helper()
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: graph.SWAN(1), NumCoflows: n, Seed: 11,
		MeanInterarrival: 1, AssignPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSincroniaOrderIsPermutation(t *testing.T) {
	in := sincroniaInstance(t, 7)
	order := SincroniaOrder(in)
	if len(order) != len(in.Coflows) {
		t.Fatalf("order has %d entries for %d coflows", len(order), len(in.Coflows))
	}
	seen := make([]bool, len(order))
	for _, j := range order {
		if j < 0 || j >= len(order) || seen[j] {
			t.Fatalf("order %v is not a permutation", order)
		}
		seen[j] = true
	}
	// Deterministic: same instance, same permutation.
	again := SincroniaOrder(in)
	for i := range order {
		if order[i] != again[i] {
			t.Fatalf("order not deterministic: %v vs %v", order, again)
		}
	}
}

func TestSincroniaSchedulesFeasibly(t *testing.T) {
	in := sincroniaInstance(t, 6)
	horizon := int(in.HorizonUpperBound(coflow.SinglePath)) + 2
	s, err := Sincronia(in, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("infeasible schedule: %v", err)
	}
	if w := s.WeightedCompletion(); w <= 0 {
		t.Fatalf("non-positive objective %v", w)
	}
}

// TestSincroniaPrioritizesHeavySmallCoflow checks the ordering's core
// property on a hand-built contended instance: on a single shared
// link, a heavy small coflow must precede a light large one (the
// weighted-largest job is scheduled last).
func TestSincroniaPrioritizesHeavySmallCoflow(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	e := g.AddEdge(a, b, 1)
	in := &coflow.Instance{Graph: g, Coflows: []coflow.Coflow{
		{ID: 0, Weight: 1, Flows: []coflow.Flow{{Source: a, Sink: b, Demand: 10, Path: []graph.EdgeID{e}}}},
		{ID: 1, Weight: 10, Flows: []coflow.Flow{{Source: a, Sink: b, Demand: 1, Path: []graph.EdgeID{e}}}},
	}}
	order := SincroniaOrder(in)
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("want heavy small coflow first, got order %v", order)
	}
	s, err := Sincronia(in, 13)
	if err != nil {
		t.Fatal(err)
	}
	ct := s.CompletionTimes()
	if ct[1] >= ct[0] {
		t.Fatalf("heavy small coflow finished at %v, after light large at %v", ct[1], ct[0])
	}
}
