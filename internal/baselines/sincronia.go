package baselines

import (
	"errors"
	"math"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/schedule"
)

// Sincronia-style bottleneck-ordering greedy (after Agarwal et al.,
// SIGCOMM 2018). Sincronia showed that for switch-based coflows, any
// order produced by its Bottleneck-Select-Scale-Iterate (BSSI)
// primal-dual is a 4-approximation once combined with greedy rate
// allocation. Here the same ordering idea is lifted to the network
// setting of this paper's single path model: the "port" of the
// original algorithm becomes a network edge, and a coflow's demand on
// an edge is the total demand of its flows routed through that edge.
// The resulting permutation feeds the same strict-priority
// water-filling used by the Jahanjou baseline, giving an LP-free
// ordering baseline to compare against the LP pipeline.

// edgeDemand returns d[j][e] = total demand coflow j places on edge e
// along its flows' fixed paths. The rows share one backing array: the
// function runs once per online replan, so allocation count matters.
func edgeDemand(inst *coflow.Instance) [][]float64 {
	ne := inst.Graph.NumEdges()
	d := make([][]float64, len(inst.Coflows))
	backing := make([]float64, len(inst.Coflows)*ne)
	for j := range inst.Coflows {
		d[j] = backing[j*ne : (j+1)*ne : (j+1)*ne]
		for _, fl := range inst.Coflows[j].Flows {
			for _, eid := range fl.Path {
				d[j][eid] += fl.Demand
			}
		}
	}
	return d
}

// SincroniaOrder computes the BSSI permutation: repeatedly find the
// most bottlenecked edge (largest total unscheduled demand), schedule
// LAST the coflow with the largest demand-to-scaled-weight ratio on
// that edge, and scale down the remaining coflows' weights by their
// share of the chosen coflow's weight. The returned slice lists coflow
// indices from the first to run to the last. Requires single path
// flows (Paths set); ties break by coflow index for determinism.
//
// Three structural optimizations keep the greedy usable as a
// per-arrival online re-planner on 100k-coflow instances, all
// output-preserving (TestSincroniaOrderIncrementalMatchesRescan pins
// the permutation against the original):
//
//   - per-edge unscheduled totals are maintained incrementally
//     (scheduling a coflow subtracts its demand vector) instead of
//     being re-summed over every unscheduled coflow per iteration;
//   - selection and scaling walk only the coflows that actually touch
//     the bottleneck edge (per-edge toucher lists, compacted lazily).
//     Skipping a zero-demand coflow is exact: its selection key was
//     never computed and its scaling term is a literal ±0.0, whose
//     subtraction cannot change a float that is never −0;
//   - the unscheduled set is a linked list over index arrays, so the
//     fallback "lowest unscheduled index" and removals are O(1).
//
// The cost drops from O(n²·edges) to O(n·edges + Σ_e |touchers(e)|),
// i.e. near-linear when coflows are sparse over the network's edges.
func SincroniaOrder(inst *coflow.Instance) []int {
	nc := len(inst.Coflows)
	ne := inst.Graph.NumEdges()
	// dT[e][j] is the transpose of edgeDemand: the hot loops walk one
	// edge's demand over ascending coflows, so the per-edge column
	// layout turns their reads into forward scans.
	dT := make([][]float64, ne)
	{
		backing := make([]float64, ne*nc)
		for e := range dT {
			dT[e] = backing[e*nc : (e+1)*nc : (e+1)*nc]
		}
		for j := range inst.Coflows {
			for _, fl := range inst.Coflows[j].Flows {
				for _, eid := range fl.Path {
					dT[eid][j] += fl.Demand
				}
			}
		}
	}

	scaled := make([]float64, nc) // w̃_j, mutated as coflows are placed
	sched := make([]bool, nc)
	tot := make([]float64, ne) // per-edge demand over unscheduled coflows
	touchers := make([][]int, ne)
	for e := 0; e < ne; e++ {
		for j, dj := range dT[e] {
			tot[e] += dj
			if dj > 0 {
				touchers[e] = append(touchers[e], j)
			}
		}
	}
	for j := range inst.Coflows {
		scaled[j] = inst.Coflows[j].Weight
	}
	// Unscheduled coflows as a linked list in ascending index order:
	// head is the fallback pick, removal is O(1).
	next := make([]int, nc+1)
	prev := make([]int, nc+1)
	head := 0
	for j := 0; j <= nc; j++ {
		next[j] = j + 1
		prev[j] = j - 1
	}
	remove := func(j int) {
		if prev[j] < 0 {
			head = next[j]
		} else {
			next[prev[j]] = next[j]
		}
		if next[j] <= nc {
			prev[next[j]] = prev[j]
		}
	}
	order := make([]int, nc)
	for k := nc - 1; k >= 0; k-- {
		// Most bottlenecked edge among unscheduled coflows.
		bottleneck, load := graph.EdgeID(0), -1.0
		for e := 0; e < ne; e++ {
			if tot[e] > load+1e-12 {
				bottleneck, load = graph.EdgeID(e), tot[e]
			}
		}
		// Weighted-largest job on the bottleneck goes last. A scaled
		// weight at (or below) zero means the coflow's urgency is spent:
		// it is always preferred for the last slot. Walking the
		// ascending toucher list (compacting out scheduled coflows as
		// we go) preserves the original ascending-index tie-break.
		best, bestKey := -1, math.Inf(-1)
		db := dT[bottleneck]
		lst := touchers[bottleneck]
		w := 0
		for _, j := range lst {
			if sched[j] {
				continue
			}
			lst[w] = j
			w++
			key := math.Inf(1)
			if scaled[j] > 1e-12 {
				key = db[j] / scaled[j]
			}
			if key > bestKey {
				best, bestKey = j, key
			}
		}
		lst = lst[:w]
		touchers[bottleneck] = lst
		if best < 0 {
			// No unscheduled coflow touches the bottleneck (e.g. zero
			// residual demand everywhere); place the lowest index.
			best = head
		}
		order[k] = best
		sched[best] = true
		remove(best)
		for e := 0; e < ne; e++ {
			tot[e] -= dT[e][best]
		}
		// Scale: charge each remaining coflow its proportional share of
		// the chosen coflow's scaled weight (the primal-dual step).
		// Coflows off the bottleneck keep their weight exactly (their
		// share is a true zero), so only touchers are visited.
		if dbb := db[best]; dbb > 1e-12 {
			sb := scaled[best]
			for _, j := range lst {
				if sched[j] {
					continue
				}
				scaled[j] -= sb * db[j] / dbb
			}
		}
	}
	return order
}

// Sincronia runs the full baseline: BSSI ordering followed by
// strict-priority water-filling on a uniform grid of `slots` slots.
// Single path model only.
func Sincronia(inst *coflow.Instance, slots int) (*schedule.Schedule, error) {
	if err := inst.Validate(coflow.SinglePath); err != nil {
		return nil, err
	}
	return PriorityFill(inst, SincroniaOrder(inst), slots)
}

// SincroniaAdaptive runs Sincronia with a slot budget derived from
// the horizon, growing it geometrically (2×, 4×, 8×) while the
// strict-priority fill genuinely runs out of slots. Water-filling
// under a rigid order can need more time than an LP-sized horizon, so
// this retry is part of the baseline's contract; other errors (e.g.
// missing paths) surface immediately.
func SincroniaAdaptive(inst *coflow.Instance, horizon float64) (*schedule.Schedule, error) {
	slots := int(math.Ceil(horizon)) + 1
	s, err := Sincronia(inst, slots)
	for grow := 2; errors.Is(err, ErrHorizonTooSmall) && grow <= 8; grow *= 2 {
		s, err = Sincronia(inst, grow*slots)
	}
	return s, err
}
