package baselines

import (
	"errors"
	"math"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/schedule"
)

// Sincronia-style bottleneck-ordering greedy (after Agarwal et al.,
// SIGCOMM 2018). Sincronia showed that for switch-based coflows, any
// order produced by its Bottleneck-Select-Scale-Iterate (BSSI)
// primal-dual is a 4-approximation once combined with greedy rate
// allocation. Here the same ordering idea is lifted to the network
// setting of this paper's single path model: the "port" of the
// original algorithm becomes a network edge, and a coflow's demand on
// an edge is the total demand of its flows routed through that edge.
// The resulting permutation feeds the same strict-priority
// water-filling used by the Jahanjou baseline, giving an LP-free
// ordering baseline to compare against the LP pipeline.

// edgeDemand returns d[j][e] = total demand coflow j places on edge e
// along its flows' fixed paths.
func edgeDemand(inst *coflow.Instance) [][]float64 {
	ne := inst.Graph.NumEdges()
	d := make([][]float64, len(inst.Coflows))
	for j := range inst.Coflows {
		d[j] = make([]float64, ne)
		for _, fl := range inst.Coflows[j].Flows {
			for _, eid := range fl.Path {
				d[j][eid] += fl.Demand
			}
		}
	}
	return d
}

// SincroniaOrder computes the BSSI permutation: repeatedly find the
// most bottlenecked edge (largest total unscheduled demand), schedule
// LAST the coflow with the largest demand-to-scaled-weight ratio on
// that edge, and scale down the remaining coflows' weights by their
// share of the chosen coflow's weight. The returned slice lists coflow
// indices from the first to run to the last. Requires single path
// flows (Paths set); ties break by coflow index for determinism.
func SincroniaOrder(inst *coflow.Instance) []int {
	nc := len(inst.Coflows)
	d := edgeDemand(inst)
	ne := inst.Graph.NumEdges()

	scaled := make([]float64, nc) // w̃_j, mutated as coflows are placed
	unsched := make([]bool, nc)
	for j := range inst.Coflows {
		scaled[j] = inst.Coflows[j].Weight
		unsched[j] = true
	}
	order := make([]int, nc)
	for k := nc - 1; k >= 0; k-- {
		// Most bottlenecked edge among unscheduled coflows.
		bottleneck, load := graph.EdgeID(0), -1.0
		for e := 0; e < ne; e++ {
			var tot float64
			for j := 0; j < nc; j++ {
				if unsched[j] {
					tot += d[j][e]
				}
			}
			if tot > load+1e-12 {
				bottleneck, load = graph.EdgeID(e), tot
			}
		}
		// Weighted-largest job on the bottleneck goes last. A scaled
		// weight at (or below) zero means the coflow's urgency is spent:
		// it is always preferred for the last slot.
		best, bestKey := -1, math.Inf(-1)
		for j := 0; j < nc; j++ {
			if !unsched[j] || d[j][bottleneck] <= 0 {
				continue
			}
			key := math.Inf(1)
			if scaled[j] > 1e-12 {
				key = d[j][bottleneck] / scaled[j]
			}
			if key > bestKey {
				best, bestKey = j, key
			}
		}
		if best < 0 {
			// No unscheduled coflow touches the bottleneck (e.g. zero
			// residual demand everywhere); place the lowest index.
			for j := 0; j < nc; j++ {
				if unsched[j] {
					best = j
					break
				}
			}
		}
		order[k] = best
		unsched[best] = false
		// Scale: charge each remaining coflow its proportional share of
		// the chosen coflow's scaled weight (the primal-dual step).
		if db := d[best][bottleneck]; db > 1e-12 {
			for j := 0; j < nc; j++ {
				if unsched[j] {
					scaled[j] -= scaled[best] * d[j][bottleneck] / db
				}
			}
		}
	}
	return order
}

// Sincronia runs the full baseline: BSSI ordering followed by
// strict-priority water-filling on a uniform grid of `slots` slots.
// Single path model only.
func Sincronia(inst *coflow.Instance, slots int) (*schedule.Schedule, error) {
	if err := inst.Validate(coflow.SinglePath); err != nil {
		return nil, err
	}
	return PriorityFill(inst, SincroniaOrder(inst), slots)
}

// SincroniaAdaptive runs Sincronia with a slot budget derived from
// the horizon, growing it geometrically (2×, 4×, 8×) while the
// strict-priority fill genuinely runs out of slots. Water-filling
// under a rigid order can need more time than an LP-sized horizon, so
// this retry is part of the baseline's contract; other errors (e.g.
// missing paths) surface immediately.
func SincroniaAdaptive(inst *coflow.Instance, horizon float64) (*schedule.Schedule, error) {
	slots := int(math.Ceil(horizon)) + 1
	s, err := Sincronia(inst, slots)
	for grow := 2; errors.Is(err, ErrHorizonTooSmall) && grow <= 8; grow *= 2 {
		s, err = Sincronia(inst, grow*slots)
	}
	return s, err
}
