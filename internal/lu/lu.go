// Package lu implements a sparse LU factorization with partial
// pivoting using the Gilbert–Peierls left-looking algorithm. It is the
// basis-factorization engine for the revised simplex solver in
// internal/simplex, standing in for the proprietary LP solver the
// paper uses (Gurobi).
//
// The factorization computes P·B·Q = L·U where P is a row permutation
// chosen by partial pivoting, Q is a static column permutation chosen
// for sparsity (columns ordered by increasing nonzero count), L is
// unit lower triangular and U is upper triangular. Solves with B and
// Bᵀ are provided against dense right-hand sides.
package lu

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/sparse"
)

// ErrSingular is returned (wrapped) when no acceptable pivot exists in
// some column, i.e. the matrix is singular or numerically so.
var ErrSingular = errors.New("lu: matrix is singular")

// DefaultPivotTol is the absolute magnitude below which a candidate
// pivot is considered zero.
const DefaultPivotTol = 1e-10

// Factorization holds the L and U factors and the permutations.
// A Factorization can be reused: calling Factor again reuses the
// internal workspace.
type Factorization struct {
	n int

	// L: unit lower triangular, stored by column in pivot order.
	// Row indices are ORIGINAL row ids; the unit diagonal is implicit.
	lColPtr []int
	lRowIdx []int
	lVal    []float64

	// U: upper triangular in pivot coordinates, stored by column.
	// Row indices are pivot positions k ≤ j; the diagonal is stored
	// separately in uDiag.
	uColPtr []int
	uRowIdx []int
	uVal    []float64
	uDiag   []float64

	p    []int // p[k] = original row pivoted at step k
	pinv []int // pinv[origRow] = pivot step, or -1 during factorization
	q    []int // q[k] = original column eliminated at step k

	// workspace
	x     []float64
	xi    []int // topological order stack
	stack []int // DFS stack (node)
	pstk  []int // DFS stack (position within column)
	mark  []bool

	pivotTol float64
}

// New returns a Factorization sized for n×n matrices with the default
// pivot tolerance.
func New(n int) *Factorization {
	f := &Factorization{pivotTol: DefaultPivotTol}
	f.resize(n)
	return f
}

// SetPivotTol overrides the singularity threshold. It must be called
// before Factor.
func (f *Factorization) SetPivotTol(tol float64) { f.pivotTol = tol }

// N reports the dimension of the factorized matrix.
func (f *Factorization) N() int { return f.n }

// LNnz reports the number of off-diagonal nonzeros stored in L.
func (f *Factorization) LNnz() int { return len(f.lRowIdx) }

// UNnz reports the number of nonzeros stored in U including diagonal.
func (f *Factorization) UNnz() int { return len(f.uRowIdx) + f.n }

func (f *Factorization) resize(n int) {
	f.n = n
	f.lColPtr = grow(f.lColPtr, n+1)
	f.uColPtr = grow(f.uColPtr, n+1)
	f.uDiag = growF(f.uDiag, n)
	f.p = grow(f.p, n)
	f.pinv = grow(f.pinv, n)
	f.q = grow(f.q, n)
	f.x = growF(f.x, n)
	f.xi = grow(f.xi, n)
	f.stack = grow(f.stack, n)
	f.pstk = grow(f.pstk, n)
	if cap(f.mark) < n {
		f.mark = make([]bool, n)
	}
	f.mark = f.mark[:n]
}

func grow(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Factor computes the LU factorization of the square matrix m.
// It returns an error wrapping ErrSingular when a column admits no
// pivot above the tolerance; the error reports the elimination step.
func (f *Factorization) Factor(m *sparse.Matrix) error {
	if m.Rows != m.Cols {
		return fmt.Errorf("lu: matrix is %dx%d, want square", m.Rows, m.Cols)
	}
	n := m.Rows
	f.resize(n)
	f.lRowIdx = f.lRowIdx[:0]
	f.lVal = f.lVal[:0]
	f.uRowIdx = f.uRowIdx[:0]
	f.uVal = f.uVal[:0]
	for i := 0; i < n; i++ {
		f.pinv[i] = -1
		f.x[i] = 0
		f.mark[i] = false
	}

	// Static column order: increasing nonzero count. Ties broken by
	// index for determinism.
	for j := 0; j < n; j++ {
		f.q[j] = j
	}
	q := f.q
	sort.SliceStable(q, func(a, b int) bool {
		na, nb := m.ColNnz(q[a]), m.ColNnz(q[b])
		if na != nb {
			return na < nb
		}
		return q[a] < q[b]
	})

	for j := 0; j < n; j++ {
		c := q[j]
		bIdx, bVal := m.Col(c)

		// Symbolic: compute the reach of the column pattern through
		// the graph of L (iterative DFS, reverse-postorder into xi).
		top := f.reach(bIdx)

		// Numeric: scatter b, then eliminate in topological order.
		for _, i := range bIdx {
			f.x[i] = 0
		}
		for p := top; p < n; p++ {
			f.x[f.xi[p]] = 0
		}
		for k, i := range bIdx {
			f.x[i] += bVal[k]
		}
		for p := top; p < n; p++ {
			i := f.xi[p]
			k := f.pinv[i]
			if k < 0 {
				continue
			}
			xi := f.x[i]
			if xi == 0 {
				continue
			}
			lo, hi := f.lColPtr[k], f.lColPtr[k+1]
			for t := lo; t < hi; t++ {
				f.x[f.lRowIdx[t]] -= f.lVal[t] * xi
			}
		}

		// Pivot: the largest magnitude among rows not yet pivotal.
		piv := -1
		var pivAbs float64
		for p := top; p < n; p++ {
			i := f.xi[p]
			if f.pinv[i] >= 0 {
				continue
			}
			if a := math.Abs(f.x[i]); a > pivAbs {
				pivAbs = a
				piv = i
			}
		}
		if piv < 0 || pivAbs <= f.pivotTol {
			f.clearColumn(top)
			return fmt.Errorf("lu: step %d (column %d): %w", j, c, ErrSingular)
		}
		pivVal := f.x[piv]
		f.pinv[piv] = j
		f.p[j] = piv
		f.uDiag[j] = pivVal

		// Split the work vector into U (pivotal rows) and L
		// (remaining rows, scaled by the pivot).
		for p := top; p < n; p++ {
			i := f.xi[p]
			f.mark[i] = false
			v := f.x[i]
			f.x[i] = 0
			if i == piv || v == 0 {
				continue
			}
			if k := f.pinv[i]; k >= 0 && k < j {
				f.uRowIdx = append(f.uRowIdx, k)
				f.uVal = append(f.uVal, v)
			} else {
				f.lRowIdx = append(f.lRowIdx, i)
				f.lVal = append(f.lVal, v/pivVal)
			}
		}
		f.lColPtr[j+1] = len(f.lRowIdx)
		f.uColPtr[j+1] = len(f.uRowIdx)
	}
	return nil
}

// clearColumn resets marks and x after a failed pivot so the
// factorization object stays reusable.
func (f *Factorization) clearColumn(top int) {
	for p := top; p < f.n; p++ {
		i := f.xi[p]
		f.mark[i] = false
		f.x[i] = 0
	}
}

// reach performs an iterative DFS from the rows in pattern through the
// graph of L, storing a reverse postorder in xi[top:n] and returning
// top. Visited nodes remain marked; the caller resets marks.
func (f *Factorization) reach(pattern []int) int {
	top := f.n
	for _, root := range pattern {
		if f.mark[root] {
			continue
		}
		// Iterative DFS with an explicit (node, position) stack.
		depth := 0
		f.stack[0] = root
		f.pstk[0] = 0
		f.mark[root] = true
		for depth >= 0 {
			i := f.stack[depth]
			k := f.pinv[i]
			done := true
			if k >= 0 {
				lo, hi := f.lColPtr[k], f.lColPtr[k+1]
				for t := lo + f.pstk[depth]; t < hi; t++ {
					r := f.lRowIdx[t]
					if f.mark[r] {
						continue
					}
					// Descend into r; remember resume position.
					f.pstk[depth] = t - lo + 1
					depth++
					f.stack[depth] = r
					f.pstk[depth] = 0
					f.mark[r] = true
					done = false
					break
				}
			}
			if done {
				top--
				f.xi[top] = i
				depth--
			}
		}
	}
	return top
}

// Solve computes x with B·x = b. b and x have length n and may alias.
func (f *Factorization) Solve(b, x []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("lu: Solve dimension mismatch")
	}
	z := f.x // reuse workspace; zeroed on exit of Factor and solves
	// Forward: L z = P b, z indexed by pivot position.
	for k := 0; k < n; k++ {
		z[k] = b[f.p[k]]
	}
	for k := 0; k < n; k++ {
		zk := z[k]
		if zk == 0 {
			continue
		}
		lo, hi := f.lColPtr[k], f.lColPtr[k+1]
		for t := lo; t < hi; t++ {
			z[f.pinv[f.lRowIdx[t]]] -= f.lVal[t] * zk
		}
	}
	// Backward: U w = z, then scatter through the column permutation.
	for j := n - 1; j >= 0; j-- {
		wj := z[j] / f.uDiag[j]
		z[j] = wj
		if wj == 0 {
			continue
		}
		lo, hi := f.uColPtr[j], f.uColPtr[j+1]
		for t := lo; t < hi; t++ {
			z[f.uRowIdx[t]] -= f.uVal[t] * wj
		}
	}
	// x[q[j]] = w_j. All of b was read in the forward pass, so writing
	// x is safe even when x aliases b. Clear the workspace as we go.
	for j := n - 1; j >= 0; j-- {
		x[f.q[j]] = z[j]
		z[j] = 0
	}
}

// SolveTranspose computes x with Bᵀ·x = b. b and x have length n and
// may alias.
func (f *Factorization) SolveTranspose(b, x []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("lu: SolveTranspose dimension mismatch")
	}
	z := f.x
	// Uᵀ z = b', with b'_j = b[q[j]]. Uᵀ is lower triangular, so go
	// ascending; each step is a gather over U's column j.
	for j := 0; j < n; j++ {
		s := b[f.q[j]]
		lo, hi := f.uColPtr[j], f.uColPtr[j+1]
		for t := lo; t < hi; t++ {
			s -= f.uVal[t] * z[f.uRowIdx[t]]
		}
		z[j] = s / f.uDiag[j]
	}
	// Lᵀ w = z. Lᵀ is upper triangular (unit diagonal), go descending;
	// gather over L's column k, whose rows live strictly below k in
	// pivot order.
	for k := n - 1; k >= 0; k-- {
		s := z[k]
		lo, hi := f.lColPtr[k], f.lColPtr[k+1]
		for t := lo; t < hi; t++ {
			s -= f.lVal[t] * z[f.pinv[f.lRowIdx[t]]]
		}
		z[k] = s
	}
	// x[p[k]] = w_k.
	for k := n - 1; k >= 0; k-- {
		x[f.p[k]] = z[k]
	}
	// Clear workspace (x may alias b but never aliases f.x).
	for k := 0; k < n; k++ {
		z[k] = 0
	}
}

// Residual returns ‖B·x − b‖∞ for diagnostics.
func Residual(m *sparse.Matrix, x, b []float64) float64 {
	y := make([]float64, m.Rows)
	m.MulVec(x, y)
	var worst float64
	for i := range y {
		if d := math.Abs(y[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
