// Package lu implements a sparse LU factorization with partial
// pivoting using the Gilbert–Peierls left-looking algorithm. It is the
// basis-factorization engine for the revised simplex solver in
// internal/simplex, standing in for the proprietary LP solver the
// paper uses (Gurobi).
//
// The factorization computes P·B·Q = L·U where P is a row permutation
// chosen by partial pivoting, Q is a static column permutation chosen
// for sparsity (columns ordered by increasing nonzero count), L is
// unit lower triangular and U is upper triangular. Solves with B and
// Bᵀ are provided against dense right-hand sides.
//
// Pivoting is strict partial pivoting by default (each column pivots
// on its largest-magnitude candidate). SetRelPivotTol relaxes that to
// threshold pivoting: any candidate within a factor τ of the column
// leader is admissible and the sparsest admissible row wins, trading a
// bounded amount of stability (per-step element growth ≤ 1/τ, further
// capped by SetGrowthLimit) for less fill. Growth reports the largest
// per-step growth actually incurred. FactorDeficient is the repair
// entry point: instead of failing on a pivotless column it records the
// dependent columns and unpivoted rows so a caller (the simplex basis
// repair) can swap the offenders out and refactorize.
package lu

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/sparse"
)

// ErrSingular is returned (wrapped) when no acceptable pivot exists in
// some column, i.e. the matrix is singular or numerically so.
var ErrSingular = errors.New("lu: matrix is singular")

// DefaultPivotTol is the absolute magnitude below which a candidate
// pivot is considered zero.
const DefaultPivotTol = 1e-10

// Factorization holds the L and U factors and the permutations.
// A Factorization can be reused: calling Factor again reuses the
// internal workspace.
type Factorization struct {
	n int

	// L: unit lower triangular, stored by column in pivot order.
	// Row indices are ORIGINAL row ids; the unit diagonal is implicit.
	lColPtr []int
	lRowIdx []int
	lVal    []float64

	// U: upper triangular in pivot coordinates, stored by column.
	// Row indices are pivot positions k ≤ j; the diagonal is stored
	// separately in uDiag.
	uColPtr []int
	uRowIdx []int
	uVal    []float64
	uDiag   []float64

	p    []int // p[k] = original row pivoted at step k
	pinv []int // pinv[origRow] = pivot step, or -1 during factorization
	q    []int // q[k] = original column eliminated at step k

	// workspace
	x     []float64
	xi    []int // topological order stack
	stack []int // DFS stack (node)
	pstk  []int // DFS stack (position within column)
	mark  []bool

	// Transposed adjacency of the factors, built lazily per Factor for
	// the sparse-RHS transpose solve (see SolveTranspose): uRow lists,
	// for pivot position k, the pivot columns j > k with U[k,j] ≠ 0;
	// lRow lists, for pivot position m, the columns k < m whose L column
	// contains original row p[m].
	transOK bool
	uRowPtr []int32
	uRowCol []int32
	lRowPtr []int32
	lRowCol []int32
	patBuf  []int
	ordBuf  []int
	cntBuf  []int
	qinv    []int

	pivotTol    float64
	relPivotTol float64 // threshold-pivoting τ ∈ (0,1]; 1 = strict partial
	growthLimit float64 // per-step growth cap for τ < 1 picks; 0 = 1/τ only
	growth      float64 // largest per-step growth of the last factorization
	rowCnt      []int   // static row nonzero counts (τ < 1 only)
	ordCols     []int   // static elimination order (column ids)
	// complete reports whether the stored factors describe a full-rank
	// factorization usable by the solves: true after a successful
	// Factor, false after an error or a deficient FactorDeficient.
	complete bool
	// factors counts Factor calls over this object's lifetime
	// (successful or not) — the simplex layer exports it as a telemetry
	// counter, since each call is one full refactorization's work.
	factors int
}

// New returns a Factorization sized for n×n matrices with the default
// pivot tolerance and strict partial pivoting.
func New(n int) *Factorization {
	f := &Factorization{pivotTol: DefaultPivotTol, relPivotTol: 1}
	f.resize(n)
	return f
}

// SetPivotTol overrides the singularity threshold. The tolerance is
// read once at the start of each Factor/FactorDeficient call, so a new
// value takes effect at the next factorization and never retroactively
// changes an already-computed one (or the solves performed with it).
// Panics on a negative or NaN tolerance.
func (f *Factorization) SetPivotTol(tol float64) {
	if math.IsNaN(tol) || tol < 0 {
		panic(fmt.Sprintf("lu: invalid pivot tolerance %v", tol))
	}
	f.pivotTol = tol
}

// PivotTol reports the singularity threshold the next factorization
// will use.
func (f *Factorization) PivotTol() float64 { return f.pivotTol }

// SetRelPivotTol sets the threshold-pivoting parameter τ ∈ (0, 1]:
// a column may pivot on any candidate row whose magnitude is at least
// τ times the column's largest, and among admissible rows the one with
// the fewest nonzeros in the original matrix (a Markowitz-style fill
// proxy) is chosen. τ = 1 (the default) is strict partial pivoting —
// the largest-magnitude candidate always wins, reproducing the
// historical pivot choice exactly. Smaller τ trades stability for
// sparsity; per-step element growth is bounded by 1/τ. Like
// SetPivotTol, the value is read at the start of the next
// factorization. Panics unless 0 < τ ≤ 1.
func (f *Factorization) SetRelPivotTol(tau float64) {
	if !(tau > 0 && tau <= 1) {
		panic(fmt.Sprintf("lu: relative pivot tolerance %v outside (0,1]", tau))
	}
	f.relPivotTol = tau
}

// SetGrowthLimit caps the per-step element growth a τ < 1 sparsity
// pick may incur: when the sparsest admissible candidate would grow
// elements by more than g (columnMax/|pivot| > g), the column falls
// back to its largest-magnitude candidate. 0 (the default) disables
// the extra cap, leaving the 1/τ bound from SetRelPivotTol. The limit
// has no effect under strict partial pivoting (τ = 1, growth 1).
func (f *Factorization) SetGrowthLimit(g float64) {
	if math.IsNaN(g) || g < 0 {
		panic(fmt.Sprintf("lu: invalid growth limit %v", g))
	}
	f.growthLimit = g
}

// Growth reports the largest per-step element growth
// (columnMax/|pivot|) incurred by the last factorization: exactly 1
// under strict partial pivoting, up to 1/τ under threshold pivoting.
func (f *Factorization) Growth() float64 { return f.growth }

// N reports the dimension of the factorized matrix.
func (f *Factorization) N() int { return f.n }

// LNnz reports the number of off-diagonal nonzeros stored in L.
func (f *Factorization) LNnz() int { return len(f.lRowIdx) }

// UNnz reports the number of nonzeros stored in U including diagonal.
func (f *Factorization) UNnz() int { return len(f.uRowIdx) + f.n }

// Factors reports how many times Factor ran on this object.
func (f *Factorization) Factors() int { return f.factors }

func (f *Factorization) resize(n int) {
	f.n = n
	f.lColPtr = grow(f.lColPtr, n+1)
	f.uColPtr = grow(f.uColPtr, n+1)
	f.uDiag = growF(f.uDiag, n)
	f.p = grow(f.p, n)
	f.pinv = grow(f.pinv, n)
	f.q = grow(f.q, n)
	f.qinv = grow(f.qinv, n)
	f.x = growF(f.x, n)
	f.xi = grow(f.xi, n)
	f.stack = grow(f.stack, n)
	f.pstk = grow(f.pstk, n)
	if cap(f.mark) < n {
		f.mark = make([]bool, n)
	}
	f.mark = f.mark[:n]
}

func grow(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Factor computes the LU factorization of the square matrix m.
// It returns an error wrapping ErrSingular when a column admits no
// pivot above the tolerance; the error reports the elimination step,
// the offending column, and the best rejected candidate's magnitude.
func (f *Factorization) Factor(m *sparse.Matrix) error {
	_, _, err := f.factor(m, false)
	return err
}

// FactorDeficient factors m like Factor but, instead of failing on a
// column with no pivot above the tolerance, skips the column, records
// it, and keeps eliminating the rest. It returns the dependent
// (unpivotable) original column ids and the original rows left without
// a pivot, both ascending; the two lists always have equal length.
// Empty lists mean the factorization completed and is usable exactly
// as after a successful Factor. Otherwise the stored factors are
// partial — the solves will panic — and the caller is expected to
// replace the dependent columns (e.g. the simplex basis repair swaps
// them for unit columns on the unpivoted rows) and factorize again.
func (f *Factorization) FactorDeficient(m *sparse.Matrix) (cols, rows []int, err error) {
	return f.factor(m, true)
}

func (f *Factorization) factor(m *sparse.Matrix, collect bool) (defCols, defRows []int, err error) {
	if m.Rows != m.Cols {
		return nil, nil, fmt.Errorf("lu: matrix is %dx%d, want square", m.Rows, m.Cols)
	}
	n := m.Rows
	f.factors++
	f.resize(n)
	f.transOK = false
	f.complete = false
	f.growth = 1
	f.lRowIdx = f.lRowIdx[:0]
	f.lVal = f.lVal[:0]
	f.uRowIdx = f.uRowIdx[:0]
	f.uVal = f.uVal[:0]
	for i := 0; i < n; i++ {
		f.pinv[i] = -1
		f.qinv[i] = -1
		f.x[i] = 0
		f.mark[i] = false
	}

	// Static column order: increasing nonzero count. Ties broken by
	// index for determinism — a stable counting sort over the nonzero
	// counts, producing exactly the (count, index) order the previous
	// sort.SliceStable produced without the comparison-sort overhead.
	ord := grow(f.ordCols, n)
	f.ordCols = ord
	maxNnz := 0
	for j := 0; j < n; j++ {
		if c := m.ColNnz(j); c > maxNnz {
			maxNnz = c
		}
	}
	cnt := grow(f.cntBuf, maxNnz+2)
	f.cntBuf = cnt
	for i := range cnt {
		cnt[i] = 0
	}
	for j := 0; j < n; j++ {
		cnt[m.ColNnz(j)+1]++
	}
	for c := 1; c < len(cnt); c++ {
		cnt[c] += cnt[c-1]
	}
	for j := 0; j < n; j++ {
		c := m.ColNnz(j)
		ord[cnt[c]] = j
		cnt[c]++
	}

	// Static row nonzero counts, the fill proxy threshold pivoting
	// ranks admissible candidates by. Strict partial pivoting (τ = 1)
	// never consults them.
	tau := f.relPivotTol
	if tau < 1 {
		f.rowCnt = grow(f.rowCnt, n)
		for i := range f.rowCnt {
			f.rowCnt[i] = 0
		}
		for _, i := range m.RowIdx {
			f.rowCnt[i]++
		}
	}

	step := 0 // pivots assigned so far; == column index unless deficient
	for j := 0; j < n; j++ {
		c := ord[j]
		bIdx, bVal := m.Col(c)

		// Symbolic: compute the reach of the column pattern through
		// the graph of L (iterative DFS, reverse-postorder into xi).
		top := f.reach(bIdx)

		// Numeric: scatter b, then eliminate in topological order.
		for _, i := range bIdx {
			f.x[i] = 0
		}
		for p := top; p < n; p++ {
			f.x[f.xi[p]] = 0
		}
		for k, i := range bIdx {
			f.x[i] += bVal[k]
		}
		for p := top; p < n; p++ {
			i := f.xi[p]
			k := f.pinv[i]
			if k < 0 {
				continue
			}
			xi := f.x[i]
			if xi == 0 {
				continue
			}
			lo, hi := f.lColPtr[k], f.lColPtr[k+1]
			for t := lo; t < hi; t++ {
				f.x[f.lRowIdx[t]] -= f.lVal[t] * xi
			}
		}

		// Pivot: the largest magnitude among rows not yet pivotal.
		piv := -1
		var pivAbs float64
		for p := top; p < n; p++ {
			i := f.xi[p]
			if f.pinv[i] >= 0 {
				continue
			}
			if a := math.Abs(f.x[i]); a > pivAbs {
				pivAbs = a
				piv = i
			}
		}
		if piv < 0 || pivAbs <= f.pivotTol {
			f.clearColumn(top)
			if collect {
				defCols = append(defCols, c)
				continue
			}
			return nil, nil, fmt.Errorf("lu: step %d (column %d, best candidate %.3g vs tolerance %.3g): %w",
				j, c, pivAbs, f.pivotTol, ErrSingular)
		}
		colMax := pivAbs
		if tau < 1 {
			// Threshold pivoting: any candidate within τ of the column
			// leader is admissible; take the one on the sparsest row
			// (static Markowitz proxy), first-in-reach-order on ties,
			// unless the growth cap says it is too small after all.
			thresh := tau * colMax
			best, bestCnt := piv, f.rowCnt[piv]
			for p := top; p < n; p++ {
				i := f.xi[p]
				if f.pinv[i] >= 0 || i == piv {
					continue
				}
				if a := math.Abs(f.x[i]); a >= thresh && f.rowCnt[i] < bestCnt {
					best, bestCnt = i, f.rowCnt[i]
				}
			}
			if f.growthLimit > 0 && colMax > f.growthLimit*math.Abs(f.x[best]) {
				best = piv
			}
			piv = best
			pivAbs = math.Abs(f.x[piv])
		}
		if g := colMax / pivAbs; g > f.growth {
			f.growth = g
		}
		pivVal := f.x[piv]
		f.pinv[piv] = step
		f.p[step] = piv
		f.q[step] = c
		f.qinv[c] = step
		f.uDiag[step] = pivVal

		// Split the work vector into U (pivotal rows) and L
		// (remaining rows, scaled by the pivot).
		for p := top; p < n; p++ {
			i := f.xi[p]
			f.mark[i] = false
			v := f.x[i]
			f.x[i] = 0
			if i == piv || v == 0 {
				continue
			}
			if k := f.pinv[i]; k >= 0 && k < step {
				f.uRowIdx = append(f.uRowIdx, k)
				f.uVal = append(f.uVal, v)
			} else {
				f.lRowIdx = append(f.lRowIdx, i)
				f.lVal = append(f.lVal, v/pivVal)
			}
		}
		step++
		f.lColPtr[step] = len(f.lRowIdx)
		f.uColPtr[step] = len(f.uRowIdx)
	}
	if len(defCols) > 0 {
		for i := 0; i < n; i++ {
			if f.pinv[i] < 0 {
				defRows = append(defRows, i)
			}
		}
		sort.Ints(defCols)
		return defCols, defRows, nil
	}
	f.complete = true
	return nil, nil, nil
}

// checkComplete guards the solves against a factorization that failed
// or came back rank-deficient from FactorDeficient: its partial
// factors would silently produce garbage.
func (f *Factorization) checkComplete() {
	if !f.complete {
		panic("lu: solve on an incomplete (failed or deficient) factorization")
	}
}

// clearColumn resets marks and x after a failed pivot so the
// factorization object stays reusable.
func (f *Factorization) clearColumn(top int) {
	for p := top; p < f.n; p++ {
		i := f.xi[p]
		f.mark[i] = false
		f.x[i] = 0
	}
}

// reach performs an iterative DFS from the rows in pattern through the
// graph of L, storing a reverse postorder in xi[top:n] and returning
// top. Visited nodes remain marked; the caller resets marks.
func (f *Factorization) reach(pattern []int) int {
	top := f.n
	for _, root := range pattern {
		if f.mark[root] {
			continue
		}
		// Iterative DFS with an explicit (node, position) stack.
		depth := 0
		f.stack[0] = root
		f.pstk[0] = 0
		f.mark[root] = true
		for depth >= 0 {
			i := f.stack[depth]
			k := f.pinv[i]
			done := true
			if k >= 0 {
				lo, hi := f.lColPtr[k], f.lColPtr[k+1]
				for t := lo + f.pstk[depth]; t < hi; t++ {
					r := f.lRowIdx[t]
					if f.mark[r] {
						continue
					}
					// Descend into r; remember resume position.
					f.pstk[depth] = t - lo + 1
					depth++
					f.stack[depth] = r
					f.pstk[depth] = 0
					f.mark[r] = true
					done = false
					break
				}
			}
			if done {
				top--
				f.xi[top] = i
				depth--
			}
		}
	}
	return top
}

// ensureTranspose builds the row-major adjacency of U and L (pivot
// coordinates) used by the sparse transpose solve. Rebuilt lazily after
// each Factor.
func (f *Factorization) ensureTranspose() {
	if f.transOK {
		return
	}
	n := f.n
	if cap(f.uRowPtr) < n+1 {
		f.uRowPtr = make([]int32, n+1)
		f.lRowPtr = make([]int32, n+1)
	}
	f.uRowPtr = f.uRowPtr[:n+1]
	f.lRowPtr = f.lRowPtr[:n+1]
	for i := range f.uRowPtr {
		f.uRowPtr[i] = 0
		f.lRowPtr[i] = 0
	}
	for _, k := range f.uRowIdx {
		f.uRowPtr[k+1]++
	}
	for _, i := range f.lRowIdx {
		f.lRowPtr[f.pinv[i]+1]++
	}
	for k := 0; k < n; k++ {
		f.uRowPtr[k+1] += f.uRowPtr[k]
		f.lRowPtr[k+1] += f.lRowPtr[k]
	}
	if cap(f.uRowCol) < len(f.uRowIdx) {
		f.uRowCol = make([]int32, len(f.uRowIdx))
	}
	f.uRowCol = f.uRowCol[:len(f.uRowIdx)]
	if cap(f.lRowCol) < len(f.lRowIdx) {
		f.lRowCol = make([]int32, len(f.lRowIdx))
	}
	f.lRowCol = f.lRowCol[:len(f.lRowIdx)]
	next := f.xi // free between solves
	for k := 0; k < n; k++ {
		next[k] = int(f.uRowPtr[k])
	}
	for j := 0; j < n; j++ {
		for t := f.uColPtr[j]; t < f.uColPtr[j+1]; t++ {
			k := f.uRowIdx[t]
			f.uRowCol[next[k]] = int32(j)
			next[k]++
		}
	}
	for k := 0; k < n; k++ {
		next[k] = int(f.lRowPtr[k])
	}
	for j := 0; j < n; j++ {
		for t := f.lColPtr[j]; t < f.lColPtr[j+1]; t++ {
			m := f.pinv[f.lRowIdx[t]]
			f.lRowCol[next[m]] = int32(j)
			next[m]++
		}
	}
	f.transOK = true
}

// reachGraph is reach over an explicit adjacency (ptr/adj in pivot
// coordinates): DFS from roots, reverse postorder into xi[top:n]. In
// that order every node precedes the nodes reachable from it, so
// dependents come after their dependencies. Visited nodes stay marked;
// the caller clears marks.
func (f *Factorization) reachGraph(roots []int, ptr, adj []int32) int {
	top := f.n
	for _, root := range roots {
		if f.mark[root] {
			continue
		}
		depth := 0
		f.stack[0] = root
		f.pstk[0] = 0
		f.mark[root] = true
		for depth >= 0 {
			i := f.stack[depth]
			lo, hi := int(ptr[i]), int(ptr[i+1])
			done := true
			for t := lo + f.pstk[depth]; t < hi; t++ {
				r := int(adj[t])
				if f.mark[r] {
					continue
				}
				f.pstk[depth] = t - lo + 1
				depth++
				f.stack[depth] = r
				f.pstk[depth] = 0
				f.mark[r] = true
				done = false
				break
			}
			if done {
				top--
				f.xi[top] = i
				depth--
			}
		}
	}
	return top
}

// Solve computes x with B·x = b. b and x have length n and may alias.
//
// When x aliases b and b is sparse, the solve restricts itself to the
// reach of b's pattern through the factors, processing reached rows in
// the dense passes' own order (ascending pivot position forward,
// descending backward) — identical floats up to structural-zero signs.
func (f *Factorization) Solve(b, x []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("lu: Solve dimension mismatch")
	}
	f.checkComplete()
	if n >= 64 && &x[0] == &b[0] {
		pat := f.patBuf[:0]
		for i := 0; i < n && len(pat) <= n/8; i++ {
			if b[i] != 0 {
				pat = append(pat, i)
			}
		}
		f.patBuf = pat
		if len(pat) <= n/8 {
			f.solveSparse(b, x, pat)
			return
		}
	}
	f.solveDense(b, x)
}

// SolveSupp is Solve for a caller that already knows a superset of b's
// nonzero pattern: supp lists original indices, ascending, and every
// entry of b outside supp is exactly zero. The pattern is filtered to
// the actual nonzeros, so the solve path and result match Solve's.
func (f *Factorization) SolveSupp(b, x []float64, supp []int) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("lu: Solve dimension mismatch")
	}
	f.checkComplete()
	if n >= 64 && &x[0] == &b[0] {
		pat := f.patBuf[:0]
		for _, i := range supp {
			if b[i] != 0 {
				pat = append(pat, i)
			}
		}
		f.patBuf = pat
		if len(pat) <= n/8 {
			f.solveSparse(b, x, pat)
			return
		}
	}
	f.solveDense(b, x)
}

func (f *Factorization) solveDense(b, x []float64) {
	n := f.n
	z := f.x // reuse workspace; zeroed on exit of Factor and solves
	// Forward: L z = P b, z indexed by pivot position.
	for k := 0; k < n; k++ {
		z[k] = b[f.p[k]]
	}
	for k := 0; k < n; k++ {
		zk := z[k]
		if zk == 0 {
			continue
		}
		lo, hi := f.lColPtr[k], f.lColPtr[k+1]
		for t := lo; t < hi; t++ {
			z[f.pinv[f.lRowIdx[t]]] -= f.lVal[t] * zk
		}
	}
	// Backward: U w = z, then scatter through the column permutation.
	for j := n - 1; j >= 0; j-- {
		zj := z[j]
		if zj == 0 {
			// The quotient would be ±0; leaving the stored +0 differs
			// only in the sign of a zero.
			continue
		}
		wj := zj / f.uDiag[j]
		z[j] = wj
		if wj == 0 {
			continue
		}
		lo, hi := f.uColPtr[j], f.uColPtr[j+1]
		for t := lo; t < hi; t++ {
			z[f.uRowIdx[t]] -= f.uVal[t] * wj
		}
	}
	// x[q[j]] = w_j. All of b was read in the forward pass, so writing
	// x is safe even when x aliases b. Clear the workspace as we go.
	for j := n - 1; j >= 0; j-- {
		x[f.q[j]] = z[j]
		z[j] = 0
	}
}

// solveSparse is the sparse-pattern solve: pat lists the original rows
// i with b[i] ≠ 0, ascending. x aliases b.
func (f *Factorization) solveSparse(b, x []float64, pat []int) {
	n := f.n
	z := f.x
	// Forward reach through L (original-row space, as in Factor), then
	// eliminate in ascending pivot order — the dense pass's order, so
	// every scatter target accumulates its contributions in the same
	// sequence. Untouched rows hold the exact zeros the dense pass
	// would compute.
	top := f.reach(pat)
	ord := f.ordBuf[:0]
	for p := top; p < n; p++ {
		i := f.xi[p]
		f.mark[i] = false
		ord = append(ord, f.pinv[i])
	}
	sort.Ints(ord)
	for _, i := range pat {
		z[f.pinv[i]] = b[i]
	}
	for _, k := range ord {
		zk := z[k]
		if zk == 0 {
			continue
		}
		lo, hi := f.lColPtr[k], f.lColPtr[k+1]
		for t := lo; t < hi; t++ {
			z[f.pinv[f.lRowIdx[t]]] -= f.lVal[t] * zk
		}
	}
	// Backward through U: the forward result's structural nonzeros seed
	// a reach over U's column graph (column j scatters into pivot rows
	// k < j); descending order again matches the dense pass.
	top = f.reachU(ord)
	ord2 := ord[:0] // forward order no longer needed; reuse the buffer
	for p := top; p < n; p++ {
		j := f.xi[p]
		f.mark[j] = false
		ord2 = append(ord2, j)
	}
	//coflowlint:allow stablesort -- int keys form a total order; equal elements are interchangeable
	sort.Sort(sort.Reverse(sort.IntSlice(ord2)))
	for _, j := range ord2 {
		zj := z[j]
		if zj == 0 {
			continue
		}
		wj := zj / f.uDiag[j]
		z[j] = wj
		if wj == 0 {
			continue
		}
		lo, hi := f.uColPtr[j], f.uColPtr[j+1]
		for t := lo; t < hi; t++ {
			z[f.uRowIdx[t]] -= f.uVal[t] * wj
		}
	}
	// Output: clear the input nonzeros (x aliases b), scatter results,
	// restore the zero workspace invariant.
	for _, i := range pat {
		x[i] = 0
	}
	for _, j := range ord2 {
		x[f.q[j]] = z[j]
		z[j] = 0
	}
	f.ordBuf = ord2
}

// reachU is reach over U's column graph in pivot coordinates: DFS from
// roots (pivot positions), successors of j are the pivot rows of U's
// column j. Reverse postorder into xi[top:n]; caller clears marks.
func (f *Factorization) reachU(roots []int) int {
	top := f.n
	for _, root := range roots {
		if f.mark[root] {
			continue
		}
		depth := 0
		f.stack[0] = root
		f.pstk[0] = 0
		f.mark[root] = true
		for depth >= 0 {
			j := f.stack[depth]
			lo, hi := f.uColPtr[j], f.uColPtr[j+1]
			done := true
			for t := lo + f.pstk[depth]; t < hi; t++ {
				r := f.uRowIdx[t]
				if f.mark[r] {
					continue
				}
				f.pstk[depth] = t - lo + 1
				depth++
				f.stack[depth] = r
				f.pstk[depth] = 0
				f.mark[r] = true
				done = false
				break
			}
			if done {
				top--
				f.xi[top] = j
				depth--
			}
		}
	}
	return top
}

// SolveTranspose computes x with Bᵀ·x = b. b and x have length n and
// may alias.
//
// When x aliases b and b is sparse, the solve restricts itself to the
// reach of b's pattern through the transposed factors: rows outside the
// reach are structurally zero, and rows inside keep the exact gather
// the dense path performs (same entries, same order), so the result is
// bit-identical up to the sign of structural zeros.
func (f *Factorization) SolveTranspose(b, x []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("lu: SolveTranspose dimension mismatch")
	}
	f.checkComplete()
	if n >= 64 && &x[0] == &b[0] {
		pat := f.patBuf[:0]
		for j := 0; j < n && len(pat) <= n/8; j++ {
			if b[f.q[j]] != 0 {
				pat = append(pat, j)
			}
		}
		f.patBuf = pat
		if len(pat) <= n/8 {
			f.solveTransposeSparse(b, x, pat)
			return
		}
	}
	f.solveTransposeDense(b, x)
}

// SolveTransposeSupp is SolveTranspose for a caller that already knows
// a superset of b's nonzero pattern: supp lists original indices (any
// order) and every entry of b outside supp is exactly zero. The pattern
// is filtered to the actual nonzeros — the same set SolveTranspose's
// scan finds — and root order does not affect the computed values, so
// the result matches SolveTranspose's.
func (f *Factorization) SolveTransposeSupp(b, x []float64, supp []int) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("lu: SolveTranspose dimension mismatch")
	}
	f.checkComplete()
	if n >= 64 && &x[0] == &b[0] {
		pat := f.patBuf[:0]
		for _, i := range supp {
			if b[i] != 0 {
				pat = append(pat, f.qinv[i])
			}
		}
		f.patBuf = pat
		if len(pat) <= n/8 {
			f.solveTransposeSparse(b, x, pat)
			return
		}
	}
	f.solveTransposeDense(b, x)
}

func (f *Factorization) solveTransposeDense(b, x []float64) {
	n := f.n
	z := f.x
	// Uᵀ z = b', with b'_j = b[q[j]]. Uᵀ is lower triangular, so go
	// ascending; each step is a gather over U's column j.
	for j := 0; j < n; j++ {
		s := b[f.q[j]]
		lo, hi := f.uColPtr[j], f.uColPtr[j+1]
		for t := lo; t < hi; t++ {
			s -= f.uVal[t] * z[f.uRowIdx[t]]
		}
		z[j] = s / f.uDiag[j]
	}
	// Lᵀ w = z. Lᵀ is upper triangular (unit diagonal), go descending;
	// gather over L's column k, whose rows live strictly below k in
	// pivot order.
	for k := n - 1; k >= 0; k-- {
		s := z[k]
		lo, hi := f.lColPtr[k], f.lColPtr[k+1]
		for t := lo; t < hi; t++ {
			s -= f.lVal[t] * z[f.pinv[f.lRowIdx[t]]]
		}
		z[k] = s
	}
	// x[p[k]] = w_k.
	for k := n - 1; k >= 0; k-- {
		x[f.p[k]] = z[k]
	}
	// Clear workspace (x may alias b but never aliases f.x).
	for k := 0; k < n; k++ {
		z[k] = 0
	}
}

// solveTransposeSparse is the sparse-pattern transpose solve: pat lists
// the pivot positions j with b[q[j]] ≠ 0, ascending. x aliases b.
func (f *Factorization) solveTransposeSparse(b, x []float64, pat []int) {
	n := f.n
	f.ensureTranspose()
	z := f.x
	// Uᵀ z = b' over the reach of the pattern, in topological order
	// (dependencies of a node are its DFS ancestors, stored earlier).
	// Each computed row keeps the dense path's full column gather —
	// untouched rows read as the exact zeros they are.
	topU := f.reachGraph(pat, f.uRowPtr, f.uRowCol)
	ord := f.ordBuf[:0]
	for p := topU; p < n; p++ {
		j := f.xi[p]
		f.mark[j] = false
		ord = append(ord, j)
		s := b[f.q[j]]
		lo, hi := f.uColPtr[j], f.uColPtr[j+1]
		for t := lo; t < hi; t++ {
			s -= f.uVal[t] * z[f.uRowIdx[t]]
		}
		z[j] = s / f.uDiag[j]
	}
	f.ordBuf = ord
	// Lᵀ w = z: the structural nonzeros of z seed a second reach, this
	// time downward (row k of Lᵀ reads rows m > k).
	topL := f.reachGraph(ord, f.lRowPtr, f.lRowCol)
	for p := topL; p < n; p++ {
		k := f.xi[p]
		s := z[k]
		lo, hi := f.lColPtr[k], f.lColPtr[k+1]
		for t := lo; t < hi; t++ {
			s -= f.lVal[t] * z[f.pinv[f.lRowIdx[t]]]
		}
		z[k] = s
	}
	// Output: clear the input nonzeros (x aliases b), then scatter the
	// computed rows and restore the zero workspace invariant.
	for _, j := range pat {
		x[f.q[j]] = 0
	}
	for p := topL; p < n; p++ {
		k := f.xi[p]
		f.mark[k] = false
		x[f.p[k]] = z[k]
		z[k] = 0
	}
}

// Residual returns ‖B·x − b‖∞ for diagnostics.
func Residual(m *sparse.Matrix, x, b []float64) float64 {
	y := make([]float64, m.Rows)
	m.MulVec(x, y)
	var worst float64
	for i := range y {
		if d := math.Abs(y[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
