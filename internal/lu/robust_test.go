package lu

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sparse"
)

// tinyDiag builds a diagonal matrix whose entries sit between the
// default pivot tolerance and a loose one, so factorability depends
// entirely on the tolerance in effect.
func tinyDiag(n int, v float64) *sparse.Matrix {
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, v)
	}
	return b.Build()
}

func TestSetPivotTolTakesEffectNextFactor(t *testing.T) {
	// Entries of 1e-8 clear DefaultPivotTol (1e-10) but not 1e-6.
	m := tinyDiag(3, 1e-8)
	f := New(3)
	if err := f.Factor(m); err != nil {
		t.Fatalf("default tolerance rejected 1e-8 diagonal: %v", err)
	}
	// A late SetPivotTol must not retroactively poison the computed
	// factorization: the solves keep working until the next Factor.
	f.SetPivotTol(1e-6)
	if got := f.PivotTol(); got != 1e-6 {
		t.Fatalf("PivotTol = %g, want 1e-6", got)
	}
	x := make([]float64, 3)
	f.Solve([]float64{1e-8, 2e-8, 3e-8}, x)
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(x[i]-want) > 1e-9 {
			t.Fatalf("solve after late SetPivotTol: x = %v", x)
		}
	}
	// The next factorization reads the new tolerance and rejects the
	// same matrix.
	if err := f.Factor(m); !errors.Is(err, ErrSingular) {
		t.Fatalf("next Factor ignored the new tolerance: err = %v", err)
	}
	// And loosening it again restores factorability.
	f.SetPivotTol(1e-12)
	if err := f.Factor(m); err != nil {
		t.Fatalf("loosened tolerance: %v", err)
	}
}

func TestSetPivotTolRejectsInvalid(t *testing.T) {
	f := New(2)
	for _, bad := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetPivotTol(%v) did not panic", bad)
				}
			}()
			f.SetPivotTol(bad)
		}()
	}
}

func TestSetRelPivotTolRejectsInvalid(t *testing.T) {
	f := New(2)
	for _, bad := range []float64{0, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetRelPivotTol(%v) did not panic", bad)
				}
			}()
			f.SetRelPivotTol(bad)
		}()
	}
}

func TestSingularErrorNamesStepAndColumn(t *testing.T) {
	// Column 1 is 3× column 0: the elimination dies at its second step.
	bld := sparse.NewBuilder(3, 3)
	bld.Add(0, 0, 1)
	bld.Add(1, 0, 2)
	bld.Add(0, 1, 3)
	bld.Add(1, 1, 6)
	bld.Add(2, 2, 1)
	err := New(3).Factor(bld.Build())
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "step") || !strings.Contains(msg, "column") || !strings.Contains(msg, "tolerance") {
		t.Fatalf("singular error lacks elimination context: %q", msg)
	}
}

// TestThresholdPivotingDefaultIdentical pins the determinism contract:
// τ = 1 (the default) must reproduce strict partial pivoting exactly —
// same permutations, same factors, bit-identical solves.
func TestThresholdPivotingDefaultIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 20; iter++ {
		n := 2 + rng.Intn(30)
		m := randomNonsingular(rng, n, 3*n)
		fa, fb := New(n), New(n)
		fb.SetRelPivotTol(1) // explicit τ = 1 vs untouched default
		if err := fa.Factor(m); err != nil {
			t.Fatal(err)
		}
		if err := fb.Factor(m); err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xa := make([]float64, n)
		xb := make([]float64, n)
		fa.Solve(b, xa)
		fb.Solve(b, xb)
		for i := range xa {
			if xa[i] != xb[i] {
				t.Fatalf("iter %d: τ=1 solve differs at %d: %v vs %v", iter, i, xa[i], xb[i])
			}
		}
		if g := fa.Growth(); g > 1 {
			t.Fatalf("strict partial pivoting reported growth %g > 1", g)
		}
	}
}

func TestThresholdPivotingSolvesAccurately(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, tau := range []float64{0.5, 0.1, 0.01} {
		for iter := 0; iter < 15; iter++ {
			n := 2 + rng.Intn(40)
			m := randomNonsingular(rng, n, 4*n)
			f := New(n)
			f.SetRelPivotTol(tau)
			if err := f.Factor(m); err != nil {
				t.Fatalf("τ=%g iter %d: %v", tau, iter, err)
			}
			if g := f.Growth(); g > 1/tau+1e-9 {
				t.Fatalf("τ=%g: growth %g exceeds 1/τ", tau, g)
			}
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			x := make([]float64, n)
			f.Solve(b, x)
			if r := Residual(m, x, b); r > 1e-6 {
				t.Fatalf("τ=%g iter %d: residual %g", tau, iter, r)
			}
		}
	}
}

func TestGrowthLimitFallsBackToPartialPivot(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	n := 25
	m := randomNonsingular(rng, n, 5*n)
	f := New(n)
	f.SetRelPivotTol(0.01)
	f.SetGrowthLimit(2)
	if err := f.Factor(m); err != nil {
		t.Fatal(err)
	}
	if g := f.Growth(); g > 2+1e-9 {
		t.Fatalf("growth %g exceeds the configured limit 2", g)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	f.Solve(b, x)
	if r := Residual(m, x, b); r > 1e-7 {
		t.Fatalf("residual %g", r)
	}
}

func TestFactorDeficientReportsDependents(t *testing.T) {
	// Columns: c0 = [1 2 0], c1 = 3·c0, c2 = e2. Rank 2: exactly one
	// dependent column (1) and one unpivoted row (0 or 1).
	bld := sparse.NewBuilder(3, 3)
	bld.Add(0, 0, 1)
	bld.Add(1, 0, 2)
	bld.Add(0, 1, 3)
	bld.Add(1, 1, 6)
	bld.Add(2, 2, 1)
	m := bld.Build()
	f := New(3)
	cols, rows, err := f.FactorDeficient(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || cols[0] != 1 {
		t.Fatalf("dependent columns = %v, want [1]", cols)
	}
	if len(rows) != 1 || (rows[0] != 0 && rows[0] != 1) {
		t.Fatalf("unpivoted rows = %v, want [0] or [1]", rows)
	}
	// Swapping the dependent column for a unit column on the unpivoted
	// row must make the matrix factorable — the simplex repair contract.
	rep := sparse.NewBuilder(3, 3)
	rep.Add(0, 0, 1)
	rep.Add(1, 0, 2)
	rep.Add(rows[0], 1, 1)
	rep.Add(2, 2, 1)
	if err := f.Factor(rep.Build()); err != nil {
		t.Fatalf("repaired matrix still refused to factor: %v", err)
	}
}

func TestFactorDeficientFullRankMatchesFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := 20
	m := randomNonsingular(rng, n, 3*n)
	f := New(n)
	cols, rows, err := f.FactorDeficient(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 0 || len(rows) != 0 {
		t.Fatalf("full-rank matrix reported deficiency: cols=%v rows=%v", cols, rows)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	f.Solve(b, x)
	if r := Residual(m, x, b); r > 1e-7 {
		t.Fatalf("residual %g after clean FactorDeficient", r)
	}
}

func TestSolvePanicsOnDeficientFactors(t *testing.T) {
	bld := sparse.NewBuilder(2, 2)
	bld.Add(0, 0, 1)
	bld.Add(0, 1, 2) // rank 1
	f := New(2)
	if _, _, err := f.FactorDeficient(bld.Build()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Solve on a deficient factorization did not panic")
		}
	}()
	x := make([]float64, 2)
	f.Solve([]float64{1, 1}, x)
}
