package lu

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// denseSolve solves A x = b by Gaussian elimination with partial
// pivoting, as an independent reference. Returns false if singular.
func denseSolve(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv, best := -1, 0.0
		for r := col; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, piv = v, r
			}
		}
		if piv < 0 || best < 1e-12 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, true
}

// randomNonsingular builds a random sparse matrix with a guaranteed
// nonzero diagonal so it is (almost surely) nonsingular.
func randomNonsingular(rng *rand.Rand, n int, extra int) *sparse.Matrix {
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 1+rng.Float64()*4)
	}
	for k := 0; k < extra; k++ {
		b.Add(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
	}
	return b.Build()
}

func TestFactorIdentity(t *testing.T) {
	f := New(5)
	if err := f.Factor(sparse.Identity(5)); err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3, 4, 5}
	x := make([]float64, 5)
	f.Solve(b, x)
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Fatalf("identity solve: x = %v", x)
		}
	}
	f.SolveTranspose(b, x)
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Fatalf("identity transpose solve: x = %v", x)
		}
	}
}

func TestFactorKnown2x2(t *testing.T) {
	// [2 1; 1 3] x = [5; 10] -> x = [1; 3]
	bld := sparse.NewBuilder(2, 2)
	bld.Add(0, 0, 2)
	bld.Add(0, 1, 1)
	bld.Add(1, 0, 1)
	bld.Add(1, 1, 3)
	m := bld.Build()
	f := New(2)
	if err := f.Factor(m); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve([]float64{5, 10}, x)
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestFactorPermutationMatrix(t *testing.T) {
	// A pure permutation matrix exercises pivoting away from the diagonal.
	n := 6
	perm := []int{3, 0, 5, 1, 4, 2}
	bld := sparse.NewBuilder(n, n)
	for j, i := range perm {
		bld.Add(i, j, 1)
	}
	m := bld.Build()
	f := New(n)
	if err := f.Factor(m); err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3, 4, 5, 6}
	x := make([]float64, n)
	f.Solve(b, x)
	if r := Residual(m, x, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}

func TestFactorSingularReported(t *testing.T) {
	bld := sparse.NewBuilder(3, 3)
	bld.Add(0, 0, 1)
	bld.Add(1, 0, 2)
	bld.Add(0, 1, 3)
	bld.Add(1, 1, 6) // col 1 = 3 * col 0 -> rank 2
	bld.Add(2, 2, 1)
	m := bld.Build()
	f := New(3)
	err := f.Factor(m)
	if err == nil {
		t.Fatal("expected singularity error")
	}
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("error %v does not wrap ErrSingular", err)
	}
}

func TestFactorZeroColumnSingular(t *testing.T) {
	bld := sparse.NewBuilder(2, 2)
	bld.Add(0, 0, 1)
	m := bld.Build() // col 1 empty
	f := New(2)
	if err := f.Factor(m); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v, want ErrSingular", err)
	}
}

func TestFactorReusableAfterSingular(t *testing.T) {
	f := New(2)
	bld := sparse.NewBuilder(2, 2)
	bld.Add(0, 0, 1)
	if err := f.Factor(bld.Build()); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
	// Now factor a good matrix with the same object.
	if err := f.Factor(sparse.Identity(2)); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve([]float64{7, 8}, x)
	if x[0] != 7 || x[1] != 8 {
		t.Fatalf("reuse after failure broken: %v", x)
	}
}

func TestSolveMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(25)
		m := randomNonsingular(r, n, 3*n)
		d := m.Dense()
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		want, ok := denseSolve(d, b)
		if !ok {
			return true // skip near-singular draws
		}
		f := New(n)
		if err := f.Factor(m); err != nil {
			return false
		}
		x := make([]float64, n)
		f.Solve(b, x)
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveTransposeResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		m := randomNonsingular(r, n, 2*n)
		f := New(n)
		if err := f.Factor(m); err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x := make([]float64, n)
		f.SolveTranspose(b, x)
		// Check Bᵀx = b i.e. xᵀB = bᵀ: residual via MulVecT.
		y := make([]float64, n)
		m.MulVecT(x, y)
		for i := range y {
			if math.Abs(y[i]-b[i]) > 1e-7*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveAliasedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 12
	m := randomNonsingular(rng, n, 30)
	f := New(n)
	if err := f.Factor(m); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ref := make([]float64, n)
	f.Solve(b, ref)
	inPlace := append([]float64(nil), b...)
	f.Solve(inPlace, inPlace)
	for i := range ref {
		if math.Abs(ref[i]-inPlace[i]) > 1e-12 {
			t.Fatalf("aliased solve differs at %d: %v vs %v", i, inPlace[i], ref[i])
		}
	}
	// Transposed, aliased.
	f.SolveTranspose(b, ref)
	inPlace = append(inPlace[:0], b...)
	f.SolveTranspose(inPlace, inPlace)
	for i := range ref {
		if math.Abs(ref[i]-inPlace[i]) > 1e-12 {
			t.Fatalf("aliased transpose solve differs at %d", i)
		}
	}
}

func TestRepeatedSolvesAreStateless(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 15
	m := randomNonsingular(rng, n, 40)
	f := New(n)
	if err := f.Factor(m); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	f.Solve(b, x1)
	f.SolveTranspose(b, x2) // interleave to try to corrupt workspace
	x3 := make([]float64, n)
	f.Solve(b, x3)
	for i := range x1 {
		if x1[i] != x3[i] {
			t.Fatalf("solve not reproducible at %d: %v vs %v", i, x1[i], x3[i])
		}
	}
}

func TestRefactorReusesWorkspace(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := New(4)
	for iter := 0; iter < 25; iter++ {
		n := 1 + rng.Intn(20)
		m := randomNonsingular(rng, n, 2*n)
		if err := f.Factor(m); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		f.Solve(b, x)
		if r := Residual(m, x, b); r > 1e-7 {
			t.Fatalf("iter %d residual %g", iter, r)
		}
	}
}

func TestLargeSparseSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 2000
	m := randomNonsingular(rng, n, 4*n)
	f := New(n)
	if err := f.Factor(m); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	f.Solve(b, x)
	if r := Residual(m, x, b); r > 1e-6 {
		t.Fatalf("residual %g", r)
	}
}

func TestNonSquareRejected(t *testing.T) {
	f := New(2)
	if err := f.Factor(sparse.NewBuilder(2, 3).Build()); err == nil {
		t.Fatal("expected dimension error")
	}
}

func BenchmarkFactor2000(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	m := randomNonsingular(rng, 2000, 8000)
	f := New(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Factor(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve2000(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	n := 2000
	m := randomNonsingular(rng, n, 8000)
	f := New(n)
	if err := f.Factor(m); err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Solve(rhs, x)
	}
}
