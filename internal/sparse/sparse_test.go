package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBuildSmall(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 0, 1)
	b.Add(1, 1, 2)
	b.Add(2, 2, 3)
	b.Add(0, 2, 4)
	m := b.Build()
	if m.Nnz() != 4 {
		t.Fatalf("nnz = %d, want 4", m.Nnz())
	}
	if got := m.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v, want 1", got)
	}
	if got := m.At(0, 2); got != 4 {
		t.Errorf("At(0,2) = %v, want 4", got)
	}
	if got := m.At(2, 0); got != 0 {
		t.Errorf("At(2,0) = %v, want 0", got)
	}
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2.5)
	b.Add(1, 0, -1)
	m := b.Build()
	if m.Nnz() != 2 {
		t.Fatalf("nnz = %d, want 2 after merge", m.Nnz())
	}
	if got := m.At(0, 0); got != 3.5 {
		t.Errorf("At(0,0) = %v, want 3.5", got)
	}
}

func TestBuilderDropsExplicitZeros(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 0)
	b.Add(1, 1, 1)
	if m := b.Build(); m.Nnz() != 1 {
		t.Fatalf("nnz = %d, want 1", m.Nnz())
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Add")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestSortColumns(t *testing.T) {
	b := NewBuilder(4, 1)
	b.Add(3, 0, 3)
	b.Add(1, 0, 1)
	b.Add(2, 0, 2)
	m := b.Build()
	idx, val := m.Col(0)
	for k := 1; k < len(idx); k++ {
		if idx[k-1] >= idx[k] {
			t.Fatalf("column not sorted: %v", idx)
		}
	}
	for k, i := range idx {
		if val[k] != float64(i) {
			t.Fatalf("value misaligned after sort: idx=%v val=%v", idx, val)
		}
	}
}

// randomTriplets builds a random matrix both as dense and via Builder.
func randomTriplets(rng *rand.Rand, rows, cols, n int) ([][]float64, *Matrix) {
	d := make([][]float64, rows)
	for i := range d {
		d[i] = make([]float64, cols)
	}
	b := NewBuilder(rows, cols)
	for k := 0; k < n; k++ {
		i, j := rng.Intn(rows), rng.Intn(cols)
		v := rng.NormFloat64()
		d[i][j] += v
		b.Add(i, j, v)
	}
	return d, b.Build()
}

func TestBuildMatchesDenseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(12)
		cols := 1 + r.Intn(12)
		d, m := randomTriplets(r, rows, cols, r.Intn(40))
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if math.Abs(m.At(i, j)-d[i][j]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(10)
		cols := 1 + r.Intn(10)
		d, m := randomTriplets(r, rows, cols, r.Intn(30))
		x := make([]float64, cols)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		y := make([]float64, rows)
		m.MulVec(x, y)
		for i := 0; i < rows; i++ {
			var want float64
			for j := 0; j < cols; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecTMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(10)
		cols := 1 + r.Intn(10)
		d, m := randomTriplets(r, rows, cols, r.Intn(30))
		x := make([]float64, rows)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		y := make([]float64, cols)
		m.MulVecT(x, y)
		for j := 0; j < cols; j++ {
			var want float64
			for i := 0; i < rows; i++ {
				want += d[i][j] * x[i]
			}
			if math.Abs(y[j]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestColDot(t *testing.T) {
	b := NewBuilder(3, 2)
	b.Add(0, 0, 2)
	b.Add(2, 0, -1)
	b.Add(1, 1, 5)
	m := b.Build()
	x := []float64{1, 10, 100}
	if got := m.ColDot(0, x); got != 2-100 {
		t.Errorf("ColDot(0) = %v, want -98", got)
	}
	if got := m.ColDot(1, x); got != 50 {
		t.Errorf("ColDot(1) = %v, want 50", got)
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	m.MulVec(x, y)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity MulVec: got %v", y)
		}
	}
}

func TestVectorSetAddReset(t *testing.T) {
	v := NewVector(5)
	v.Set(2, 1.5)
	v.Add(2, 0.5)
	v.Add(4, -1)
	if v.Nnz() != 2 {
		t.Fatalf("nnz = %d, want 2", v.Nnz())
	}
	if v.Val[2] != 2.0 || v.Val[4] != -1 {
		t.Fatalf("values wrong: %v", v.Val)
	}
	out := make([]float64, 5)
	v.Gather(out)
	if out[2] != 2.0 || out[4] != -1 || out[0] != 0 {
		t.Fatalf("gather wrong: %v", out)
	}
	v.Reset()
	if v.Nnz() != 0 || v.Val[2] != 0 || v.Val[4] != 0 {
		t.Fatalf("reset did not clear: %+v", v)
	}
	// Reuse after reset must work.
	v.Set(0, 3)
	if v.Nnz() != 1 || v.Val[0] != 3 {
		t.Fatalf("reuse after reset failed")
	}
}

func TestVectorDrop(t *testing.T) {
	v := NewVector(4)
	v.Set(0, 1e-14)
	v.Set(1, 1)
	v.Set(3, -2)
	v.Drop(1e-12)
	if v.Nnz() != 2 {
		t.Fatalf("nnz after drop = %d, want 2", v.Nnz())
	}
	if v.Val[0] != 0 {
		t.Fatal("dropped value not zeroed")
	}
	// Index 0 must be re-addable.
	v.Set(0, 7)
	if v.Val[0] != 7 || v.Nnz() != 3 {
		t.Fatal("re-add after drop failed")
	}
}

func TestVectorNorm2(t *testing.T) {
	v := NewVector(3)
	v.Set(0, 3)
	v.Set(2, 4)
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestInfNorm(t *testing.T) {
	if got := InfNorm([]float64{1, -7, 3}); got != 7 {
		t.Fatalf("InfNorm = %v, want 7", got)
	}
	if got := InfNorm(nil); got != 0 {
		t.Fatalf("InfNorm(nil) = %v, want 0", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	m := b.Build()
	c := m.Clone()
	c.Val[0] = 99
	if m.Val[0] == 99 {
		t.Fatal("clone shares storage with original")
	}
}

func BenchmarkMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	bld := NewBuilder(n, n)
	for k := 0; k < 10*n; k++ {
		bld.Add(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
	}
	m := bld.Build()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, y)
	}
}
