// Package sparse provides the sparse linear-algebra primitives used by
// the LP solver substrate: compressed sparse column (CSC) matrices,
// sparse vectors with index lists, and the scatter/gather kernels that
// the LU factorization and the revised simplex method are built on.
//
// The package is deliberately minimal: it implements exactly what a
// bounded-variable revised simplex with a Gilbert–Peierls LU needs,
// with dense work arrays reused across calls to avoid allocation in
// inner loops.
package sparse

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Matrix is an immutable sparse matrix in compressed sparse column
// (CSC) form. Row indices within a column are not required to be
// sorted unless stated otherwise; use SortColumns when order matters.
type Matrix struct {
	Rows, Cols int
	ColPtr     []int     // length Cols+1
	RowIdx     []int     // length nnz
	Val        []float64 // length nnz
}

// NewMatrix returns an empty rows×cols matrix with capacity for nnz
// nonzeros.
func NewMatrix(rows, cols, nnz int) *Matrix {
	return &Matrix{
		Rows:   rows,
		Cols:   cols,
		ColPtr: make([]int, cols+1),
		RowIdx: make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
}

// Nnz reports the number of stored entries.
func (m *Matrix) Nnz() int { return len(m.RowIdx) }

// Col returns the row indices and values of column j. The returned
// slices alias the matrix storage and must not be modified.
func (m *Matrix) Col(j int) ([]int, []float64) {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	return m.RowIdx[lo:hi], m.Val[lo:hi]
}

// ColNnz reports the number of stored entries in column j.
func (m *Matrix) ColNnz(j int) int { return m.ColPtr[j+1] - m.ColPtr[j] }

// At returns the value at (i, j), scanning column j. Intended for
// tests and small matrices, not for inner loops.
func (m *Matrix) At(i, j int) float64 {
	idx, val := m.Col(j)
	var sum float64
	for k, r := range idx {
		if r == i {
			sum += val[k]
		}
	}
	return sum
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		Rows:   m.Rows,
		Cols:   m.Cols,
		ColPtr: append([]int(nil), m.ColPtr...),
		RowIdx: append([]int(nil), m.RowIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	return c
}

// SortColumns sorts row indices within every column in increasing
// order, keeping values aligned.
func (m *Matrix) SortColumns() {
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		col := columnSorter{idx: m.RowIdx[lo:hi], val: m.Val[lo:hi]}
		sort.Sort(col)
	}
}

type columnSorter struct {
	idx []int
	val []float64
}

func (c columnSorter) Len() int           { return len(c.idx) }
func (c columnSorter) Less(i, j int) bool { return c.idx[i] < c.idx[j] }
func (c columnSorter) Swap(i, j int) {
	c.idx[i], c.idx[j] = c.idx[j], c.idx[i]
	c.val[i], c.val[j] = c.val[j], c.val[i]
}

// MulVec computes y = A·x densely: y has length Rows, x length Cols.
func (m *Matrix) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < m.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		for k := lo; k < hi; k++ {
			y[m.RowIdx[k]] += m.Val[k] * xj
		}
	}
}

// MulVecT computes y = Aᵀ·x densely: x has length Rows, y length Cols.
func (m *Matrix) MulVecT(x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("sparse: MulVecT dimension mismatch")
	}
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		var sum float64
		for k := lo; k < hi; k++ {
			sum += m.Val[k] * x[m.RowIdx[k]]
		}
		y[j] = sum
	}
}

// ColDot returns the dot product of column j with the dense vector x.
func (m *Matrix) ColDot(j int, x []float64) float64 {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	var sum float64
	for k := lo; k < hi; k++ {
		sum += m.Val[k] * x[m.RowIdx[k]]
	}
	return sum
}

// Dense expands the matrix into a dense row-major [][]float64. For
// tests and debugging only.
func (m *Matrix) Dense() [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
	}
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		for k := lo; k < hi; k++ {
			d[m.RowIdx[k]][j] += m.Val[k]
		}
	}
	return d
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.Rows > 20 || m.Cols > 20 {
		return fmt.Sprintf("sparse.Matrix{%dx%d, nnz=%d}", m.Rows, m.Cols, m.Nnz())
	}
	var b strings.Builder
	d := m.Dense()
	for i := range d {
		for j := range d[i] {
			fmt.Fprintf(&b, "%8.3g ", d[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Builder accumulates triplets and produces a CSC Matrix. Duplicate
// (i, j) entries are summed.
type Builder struct {
	rows, cols int
	is, js     []int
	vs         []float64
}

// NewBuilder returns a Builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Add appends the entry a[i,j] += v. Zero values are dropped.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: Builder.Add out of range (%d,%d) in %dx%d", i, j, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.is = append(b.is, i)
	b.js = append(b.js, j)
	b.vs = append(b.vs, v)
}

// Nnz reports the number of accumulated triplets (before duplicate merging).
func (b *Builder) Nnz() int { return len(b.is) }

// Build produces the CSC matrix. Duplicates are summed; entries that
// cancel to exactly zero are kept (harmless) to retain the pattern.
// Row indices within each column come out sorted.
func (b *Builder) Build() *Matrix {
	m := &Matrix{Rows: b.rows, Cols: b.cols, ColPtr: make([]int, b.cols+1)}
	// Count entries per column.
	counts := make([]int, b.cols)
	for _, j := range b.js {
		counts[j]++
	}
	for j := 0; j < b.cols; j++ {
		m.ColPtr[j+1] = m.ColPtr[j] + counts[j]
	}
	nnz := m.ColPtr[b.cols]
	m.RowIdx = make([]int, nnz)
	m.Val = make([]float64, nnz)
	next := make([]int, b.cols)
	copy(next, m.ColPtr[:b.cols])
	for k := range b.is {
		j := b.js[k]
		p := next[j]
		m.RowIdx[p] = b.is[k]
		m.Val[p] = b.vs[k]
		next[j]++
	}
	m.SortColumns()
	// Merge duplicates in place.
	writePtr := 0
	newColPtr := make([]int, b.cols+1)
	for j := 0; j < b.cols; j++ {
		newColPtr[j] = writePtr
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		for k := lo; k < hi; {
			i := m.RowIdx[k]
			v := m.Val[k]
			k++
			for k < hi && m.RowIdx[k] == i {
				v += m.Val[k]
				k++
			}
			m.RowIdx[writePtr] = i
			m.Val[writePtr] = v
			writePtr++
		}
	}
	newColPtr[b.cols] = writePtr
	m.ColPtr = newColPtr
	m.RowIdx = m.RowIdx[:writePtr]
	m.Val = m.Val[:writePtr]
	return m
}

// Vector is a sparse vector with an explicit nonzero index list and a
// dense value backing array. The dense array makes scatter/gather O(1)
// per touched entry; the index list keeps iteration proportional to
// the number of nonzeros. The same Vector can be reused across solves.
type Vector struct {
	N   int
	Ind []int     // indices with (possibly) nonzero values, unordered
	Val []float64 // dense backing array, length N
	tag []bool    // membership mask aligned with Val
}

// NewVector returns a zero sparse vector of dimension n.
func NewVector(n int) *Vector {
	return &Vector{N: n, Val: make([]float64, n), tag: make([]bool, n)}
}

// Reset clears the vector to zero in O(nnz).
func (v *Vector) Reset() {
	for _, i := range v.Ind {
		v.Val[i] = 0
		v.tag[i] = false
	}
	v.Ind = v.Ind[:0]
}

// Set assigns v[i] = x, tracking i as a nonzero position.
func (v *Vector) Set(i int, x float64) {
	if !v.tag[i] {
		v.tag[i] = true
		v.Ind = append(v.Ind, i)
	}
	v.Val[i] = x
}

// Add performs v[i] += x, tracking i as a nonzero position.
func (v *Vector) Add(i int, x float64) {
	if !v.tag[i] {
		v.tag[i] = true
		v.Ind = append(v.Ind, i)
	}
	v.Val[i] += x
}

// Nnz reports the number of tracked positions (some may hold exact zeros).
func (v *Vector) Nnz() int { return len(v.Ind) }

// Gather copies the tracked entries into the dense slice out (length N).
func (v *Vector) Gather(out []float64) {
	for i := range out {
		out[i] = 0
	}
	for _, i := range v.Ind {
		out[i] = v.Val[i]
	}
}

// Drop removes tracked positions whose magnitude is below tol,
// zeroing them. It keeps the vector numerically tidy after solves.
func (v *Vector) Drop(tol float64) {
	w := 0
	for _, i := range v.Ind {
		if math.Abs(v.Val[i]) <= tol {
			v.Val[i] = 0
			v.tag[i] = false
			continue
		}
		v.Ind[w] = i
		w++
	}
	v.Ind = v.Ind[:w]
}

// Norm2 returns the Euclidean norm of the vector.
func (v *Vector) Norm2() float64 {
	var s float64
	for _, i := range v.Ind {
		s += v.Val[i] * v.Val[i]
	}
	return math.Sqrt(s)
}

// Identity returns the n×n identity matrix in CSC form.
func Identity(n int) *Matrix {
	m := &Matrix{
		Rows:   n,
		Cols:   n,
		ColPtr: make([]int, n+1),
		RowIdx: make([]int, n),
		Val:    make([]float64, n),
	}
	for j := 0; j < n; j++ {
		m.ColPtr[j+1] = j + 1
		m.RowIdx[j] = j
		m.Val[j] = 1
	}
	return m
}

// InfNorm returns the max absolute entry of the dense slice x.
func InfNorm(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
