package simplex

import (
	"context"
	"errors"
	"testing"
)

// A cancelled context must surface context.Canceled before any pivots
// run, and an uncancelled context must not change the result.
func TestSolveCancelled(t *testing.T) {
	p := buildProblem(
		[][]float64{{1, 1, 1, 0}, {1, 3, 0, 1}},
		[]float64{4, 6},
		[]float64{-1, -2, 0, 0},
		[]float64{0, 0, 0, 0},
		[]float64{inf(), inf(), inf(), inf()},
	)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, p, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve: err = %v, want context.Canceled", err)
	}

	want, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(context.TODO(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Obj != want.Obj || got.Iterations != want.Iterations {
		t.Fatalf("ctx-carrying solve diverged: obj %g/%g iters %d/%d",
			got.Obj, want.Obj, got.Iterations, want.Iterations)
	}

	// A nil context is tolerated (treated as Background) so callers
	// without a context cannot crash the solver.
	if _, err := Solve(nil, p, Options{}); err != nil { //lint:ignore SA1012 nil-tolerance is part of the contract
		t.Fatalf("nil-context solve: %v", err)
	}
}
