package simplex

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

const testTol = 1e-6

// buildProblem is a compact helper: dense rows, all equalities.
func buildProblem(rows [][]float64, b, c, l, u []float64) *Problem {
	m, n := len(rows), len(c)
	bld := sparse.NewBuilder(m, n)
	for i, row := range rows {
		for j, v := range row {
			bld.Add(i, j, v)
		}
	}
	return &Problem{A: bld.Build(), B: b, C: c, L: l, U: u}
}

func inf() float64 { return math.Inf(1) }

func TestSimpleEquality(t *testing.T) {
	// min -x1 - 2 x2  s.t.  x1 + x2 + s1 = 4; x1 + 3 x2 + s2 = 6; 0 ≤ x, s.
	// Optimum: x2 = (6-x1)/3... classic: vertex x1=3, x2=1, obj=-5.
	p := buildProblem(
		[][]float64{{1, 1, 1, 0}, {1, 3, 0, 1}},
		[]float64{4, 6},
		[]float64{-1, -2, 0, 0},
		[]float64{0, 0, 0, 0},
		[]float64{inf(), inf(), inf(), inf()},
	)
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Obj-(-5)) > testTol {
		t.Fatalf("obj = %v, want -5 (x=%v)", sol.Obj, sol.X)
	}
	if math.Abs(sol.X[0]-3) > testTol || math.Abs(sol.X[1]-1) > testTol {
		t.Fatalf("x = %v, want [3 1 0 0]", sol.X)
	}
}

func TestUpperBoundsRespected(t *testing.T) {
	// min -x1 - x2  s.t.  x1 + x2 + s = 10; x1 ≤ 3, x2 ≤ 4. Opt: 3+4=7 used, obj -7.
	p := buildProblem(
		[][]float64{{1, 1, 1}},
		[]float64{10},
		[]float64{-1, -1, 0},
		[]float64{0, 0, 0},
		[]float64{3, 4, inf()},
	)
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Obj-(-7)) > testTol {
		t.Fatalf("status=%v obj=%v x=%v", sol.Status, sol.Obj, sol.X)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x1  s.t. x1 + x2 = 5, x2 ∈ [0, 2], x1 free. Opt: x2=2, x1=3.
	p := buildProblem(
		[][]float64{{1, 1}},
		[]float64{5},
		[]float64{1, 0},
		[]float64{math.Inf(-1), 0},
		[]float64{inf(), 2},
	)
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.X[0]-3) > testTol {
		t.Fatalf("status=%v x=%v", sol.Status, sol.X)
	}
}

func TestNegativeBounds(t *testing.T) {
	// min x  with x ∈ [-5, -1], x + s = 0, s free. Opt x=-5.
	p := buildProblem(
		[][]float64{{1, 1}},
		[]float64{0},
		[]float64{1, 0},
		[]float64{-5, math.Inf(-1)},
		[]float64{-1, inf()},
	)
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.X[0]-(-5)) > testTol {
		t.Fatalf("status=%v x=%v", sol.Status, sol.X)
	}
}

func TestFixedVariable(t *testing.T) {
	// x1 fixed at 2; min x2 s.t. x1 + x2 = 5 → x2 = 3.
	p := buildProblem(
		[][]float64{{1, 1}},
		[]float64{5},
		[]float64{0, 1},
		[]float64{2, 0},
		[]float64{2, inf()},
	)
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.X[1]-3) > testTol {
		t.Fatalf("status=%v x=%v", sol.Status, sol.X)
	}
}

func TestInfeasibleDetected(t *testing.T) {
	// x1 + x2 = 10 with x ∈ [0,1]² is infeasible.
	p := buildProblem(
		[][]float64{{1, 1}},
		[]float64{10},
		[]float64{1, 1},
		[]float64{0, 0},
		[]float64{1, 1},
	)
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible (x=%v)", sol.Status, sol.X)
	}
}

func TestUnboundedDetected(t *testing.T) {
	// min -x1 s.t. x1 - x2 = 0, x unbounded above.
	p := buildProblem(
		[][]float64{{1, -1}},
		[]float64{0},
		[]float64{-1, 0},
		[]float64{0, 0},
		[]float64{inf(), inf()},
	)
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestValidateErrors(t *testing.T) {
	p := buildProblem([][]float64{{1}}, []float64{1}, []float64{1}, []float64{2}, []float64{1})
	if _, err := Solve(context.Background(), p, Options{}); err == nil {
		t.Fatal("expected error for L > U")
	}
	if _, err := Solve(context.Background(), &Problem{}, Options{}); err == nil {
		t.Fatal("expected error for nil matrix")
	}
	bad := buildProblem([][]float64{{1}}, []float64{1, 2}, []float64{1}, []float64{0}, []float64{1})
	if _, err := Solve(context.Background(), bad, Options{}); err == nil {
		t.Fatal("expected error for rhs length mismatch")
	}
}

// checkKKT certifies that sol is optimal for p: primal feasibility,
// dual feasibility (reduced-cost signs vs. variable positions) and
// strong duality for the bounded-variable dual.
func checkKKT(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	m, n := p.A.Rows, p.A.Cols
	// Primal feasibility.
	ax := make([]float64, m)
	p.A.MulVec(sol.X, ax)
	for i := 0; i < m; i++ {
		if math.Abs(ax[i]-p.B[i]) > 1e-5*(1+math.Abs(p.B[i])) {
			t.Fatalf("row %d infeasible: Ax=%g b=%g", i, ax[i], p.B[i])
		}
	}
	for j := 0; j < n; j++ {
		if sol.X[j] < p.L[j]-1e-6 || sol.X[j] > p.U[j]+1e-6 {
			t.Fatalf("var %d out of bounds: x=%g ∉ [%g,%g]", j, sol.X[j], p.L[j], p.U[j])
		}
	}
	// Dual feasibility + complementary slackness via reduced costs.
	dualObj := 0.0
	for i := 0; i < m; i++ {
		dualObj += sol.Y[i] * p.B[i]
	}
	for j := 0; j < n; j++ {
		d := sol.D[j]
		atL := sol.X[j] <= p.L[j]+1e-6
		atU := sol.X[j] >= p.U[j]-1e-6
		switch {
		case atL && atU: // fixed: any d
		case atL:
			if d < -1e-5 {
				t.Fatalf("var %d at lower with d=%g < 0", j, d)
			}
		case atU:
			if d > 1e-5 {
				t.Fatalf("var %d at upper with d=%g > 0", j, d)
			}
		default:
			if math.Abs(d) > 1e-5 {
				t.Fatalf("var %d strictly interior with d=%g ≠ 0", j, d)
			}
		}
		if d > 0 {
			dualObj += d * p.L[j]
		} else if d < 0 {
			dualObj += d * p.U[j]
		}
	}
	if math.Abs(dualObj-sol.Obj) > 1e-4*(1+math.Abs(sol.Obj)) {
		t.Fatalf("duality gap: primal %g vs dual %g", sol.Obj, dualObj)
	}
}

// randomFeasibleLP builds an LP with finite bounds and a guaranteed
// interior feasible point (so it is feasible and bounded).
func randomFeasibleLP(r *rand.Rand, m, n int) *Problem {
	bld := sparse.NewBuilder(m, n)
	for i := 0; i < m; i++ {
		// 2-5 entries per row, always at least one.
		k := 2 + r.Intn(4)
		for t := 0; t < k; t++ {
			bld.Add(i, r.Intn(n), math.Round(r.NormFloat64()*4)/2)
		}
	}
	a := bld.Build()
	l := make([]float64, n)
	u := make([]float64, n)
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		l[j] = -float64(r.Intn(5))
		u[j] = l[j] + 1 + float64(r.Intn(6))
		x0[j] = l[j] + (u[j]-l[j])*r.Float64()
	}
	b := make([]float64, m)
	a.MulVec(x0, b)
	c := make([]float64, n)
	for j := 0; j < n; j++ {
		c[j] = math.Round(r.NormFloat64() * 10)
	}
	return &Problem{A: a, B: b, C: c, L: l, U: u}
}

func TestRandomLPsSatisfyKKT(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(12)
		n := m + r.Intn(15)
		p := randomFeasibleLP(r, m, n)
		sol, err := Solve(context.Background(), p, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if sol.Status != Optimal {
			t.Logf("seed %d: status %v", seed, sol.Status)
			return false
		}
		checkKKT(t, p, sol)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceAssignment solves the n×n assignment problem exactly by
// enumeration (n ≤ 7).
func bruteForceAssignment(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int, acc float64)
	rec = func(k int, acc float64) {
		if acc >= best {
			return
		}
		if k == n {
			best = acc
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k+1, acc+cost[k][perm[k]])
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0, 0)
	return best
}

func TestAssignmentLPIntegralOptimum(t *testing.T) {
	// The assignment polytope is integral, so the LP optimum equals the
	// combinatorial optimum. This is a highly degenerate LP — a good
	// stress test for the anti-cycling machinery.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(4) // 3..6
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(20))
			}
		}
		want := bruteForceAssignment(cost)

		// Variables x[i][j] ≥ 0; rows: Σ_j x[i][j] = 1 and Σ_i x[i][j] = 1.
		bld := sparse.NewBuilder(2*n, n*n)
		c := make([]float64, n*n)
		l := make([]float64, n*n)
		u := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := i*n + j
				bld.Add(i, v, 1)
				bld.Add(n+j, v, 1)
				c[v] = cost[i][j]
				u[v] = inf()
			}
		}
		b := make([]float64, 2*n)
		for i := range b {
			b[i] = 1
		}
		p := &Problem{A: bld.Build(), B: b, C: c, L: l, U: u}
		sol, err := Solve(context.Background(), p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if math.Abs(sol.Obj-want) > 1e-5 {
			t.Fatalf("trial %d: LP obj %g, assignment optimum %g", trial, sol.Obj, want)
		}
		checkKKT(t, p, sol)
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 suppliers (supply 30, 20), 3 consumers (demand 15, 25, 10).
	// Costs chosen so the optimum is easy to verify by hand:
	// c = [[2 4 5],[3 1 7]]. Send s2→c2 (20 @1), s1→c1 (15 @2),
	// s1→c2 (5 @4), s1→c3 (10 @5) → 20+30+20+50 = 120.
	costs := [][]float64{{2, 4, 5}, {3, 1, 7}}
	supply := []float64{30, 20}
	demand := []float64{15, 25, 10}
	bld := sparse.NewBuilder(5, 6)
	c := make([]float64, 6)
	l := make([]float64, 6)
	u := make([]float64, 6)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			v := i*3 + j
			bld.Add(i, v, 1)   // supply row
			bld.Add(2+j, v, 1) // demand row
			c[v] = costs[i][j]
			u[v] = inf()
		}
	}
	b := append(append([]float64{}, supply...), demand...)
	p := &Problem{A: bld.Build(), B: b, C: c, L: l, U: u}
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Obj-120) > 1e-6 {
		t.Fatalf("status=%v obj=%v x=%v", sol.Status, sol.Obj, sol.X)
	}
	checkKKT(t, p, sol)
}

func TestIterLimitReported(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomFeasibleLP(rng, 10, 25)
	sol, err := Solve(context.Background(), p, Options{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Fatalf("status = %v, want iteration limit", sol.Status)
	}
}

func TestLargerStructuredLP(t *testing.T) {
	// A multiperiod "machine scheduling" LP exercising refactorization
	// and eta accumulation: T periods, K jobs, per-period capacity.
	rng := rand.New(rand.NewSource(99))
	T, K := 40, 30
	// Variables x[k][t] ∈ [0,1]; Σ_t x[k][t] = 1; Σ_k x[k][t] ≤ cap.
	nVars := K*T + T // plus slack per period
	bld := sparse.NewBuilder(K+T, nVars)
	c := make([]float64, nVars)
	l := make([]float64, nVars)
	u := make([]float64, nVars)
	for k := 0; k < K; k++ {
		for tt := 0; tt < T; tt++ {
			v := k*T + tt
			bld.Add(k, v, 1)
			bld.Add(K+tt, v, 1)
			c[v] = float64(tt) * (1 + rng.Float64())
			u[v] = 1
		}
	}
	for tt := 0; tt < T; tt++ {
		v := K*T + tt
		bld.Add(K+tt, v, 1)
		u[v] = inf()
	}
	b := make([]float64, K+T)
	for k := 0; k < K; k++ {
		b[k] = 1
	}
	for tt := 0; tt < T; tt++ {
		b[K+tt] = 2.0 // capacity
	}
	p := &Problem{A: bld.Build(), B: b, C: c, L: l, U: u}
	sol, err := Solve(context.Background(), p, Options{RefactorEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v after %d iters", sol.Status, sol.Iterations)
	}
	checkKKT(t, p, sol)
}

func TestEqualityOnlyNoSlackPhase1(t *testing.T) {
	// Pure equality system requiring real phase-1 work:
	// x1 + x2 = 2; x1 - x2 = 0 → x = (1,1). min x1 → 1.
	p := buildProblem(
		[][]float64{{1, 1}, {1, -1}},
		[]float64{2, 0},
		[]float64{1, 0},
		[]float64{0, 0},
		[]float64{inf(), inf()},
	)
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.X[0]-1) > testTol || math.Abs(sol.X[1]-1) > testTol {
		t.Fatalf("status=%v x=%v", sol.Status, sol.X)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		Optimal:    "optimal",
		Infeasible: "infeasible",
		Unbounded:  "unbounded",
		IterLimit:  "iteration limit",
		Status(9):  "status(9)",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}

func BenchmarkSolveStructured(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	p := randomFeasibleLP(rng, 150, 450)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(context.Background(), p, Options{})
		if err != nil || sol.Status != Optimal {
			b.Fatalf("err=%v status=%v", err, sol.Status)
		}
	}
}
