package simplex

// WarmOutcome reports what became of Options.WarmStart: accepted (the
// solve skipped phase 1) or the specific validation check that
// rejected it. The numeric codes are stable and exported by the engine
// as Result.Extra["warm-start"], so harnesses can tabulate fallback
// reasons instead of guessing from iteration counts.
type WarmOutcome int8

const (
	// WarmNone means no warm basis was supplied.
	WarmNone WarmOutcome = iota
	// WarmAccepted means the basis was installed and phase 1 skipped.
	WarmAccepted
	// WarmRejectedDims means the basis came from a problem with
	// different dimensions.
	WarmRejectedDims
	// WarmRejectedBasicCount means the basis does not name exactly m
	// basic variables.
	WarmRejectedBasicCount
	// WarmRejectedBounds means a recorded variable state is
	// incompatible with the new problem's bounds (or is not a valid
	// state code).
	WarmRejectedBounds
	// WarmRejectedSingular means the basis matrix failed to
	// refactorize (numerically singular for this problem).
	WarmRejectedSingular
	// WarmRejectedInfeasible means the refactorized basic values
	// violate their bounds, so phase 1 cannot be skipped.
	WarmRejectedInfeasible
)

// String names the outcome the way the obs counter labels it.
func (o WarmOutcome) String() string {
	switch o {
	case WarmNone:
		return "none"
	case WarmAccepted:
		return "accepted"
	case WarmRejectedDims:
		return "rejected-dims"
	case WarmRejectedBasicCount:
		return "rejected-basic-count"
	case WarmRejectedBounds:
		return "rejected-bounds"
	case WarmRejectedSingular:
		return "rejected-singular"
	case WarmRejectedInfeasible:
		return "rejected-infeasible"
	default:
		return "unknown"
	}
}

// flushObs folds the solve's locally accumulated counters into the
// registry. Counting is local ints in the hot loop — one flush per
// solve keeps atomics off the pivot path — and the flush runs on
// every exit, including numerical failures, so a solve that dies in
// refactorization still reports the pivots it burned (the large-LP
// robustness baseline depends on that).
func (s *solver) flushObs() {
	reg := s.opt.Obs
	if reg == nil {
		return
	}
	// simplex_solves_total counts logical solves: the strict singular
	// retry inside Solve re-runs the same logical solve, so it reports
	// under the labeled retry series instead of double-counting here.
	if s.isRetry {
		reg.Counter(`simplex_solve_retries_total{reason="singular"}`).Inc()
	} else {
		reg.Counter("simplex_solves_total").Inc()
	}
	reg.Counter("simplex_pivots_total").Add(int64(s.iters))
	reg.Counter("simplex_refactorizations_total").Add(int64(s.nRefactor))
	// Add(0) still materializes the series, so scrapers can rely on the
	// robustness counters existing from the first solve.
	reg.Counter("simplex_repairs_total").Add(int64(s.nRepairs))
	reg.Counter("simplex_perturbations_total").Add(int64(s.nPerturb))
	reg.Counter("simplex_devex_prefilter_tested_total").Add(s.prefTested)
	reg.Counter("simplex_devex_prefilter_passed_total").Add(s.prefPassed)
	reg.Counter("lu_factorizations_total").Add(int64(s.bas.lu.Factors()))
	reg.Gauge("lu_fill_nnz").Set(int64(s.bas.lu.LNnz() + s.bas.lu.UNnz()))
	if s.warm != WarmNone {
		reg.Counter(`simplex_warm_start_total{outcome="` + s.warm.String() + `"}`).Inc()
	}
}
