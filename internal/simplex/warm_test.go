package simplex

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// objTol is the relative tolerance for comparing the objectives of two
// independent solves of the same LP (degenerate problems may terminate
// at different optimal vertices, but the optimal value is unique).
func objClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

// TestWarmStartSameProblem re-solves a problem from its own optimal
// basis: the warm solve must agree on the objective, satisfy KKT, and
// need (essentially) no pivots since it starts at an optimal vertex.
func TestWarmStartSameProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(12)
		n := m + r.Intn(15)
		p := randomFeasibleLP(r, m, n)
		cold, err := Solve(context.Background(), p, Options{})
		if err != nil || cold.Status != Optimal {
			t.Logf("seed %d: cold solve %v err=%v", seed, cold.Status, err)
			return false
		}
		if cold.Basis == nil {
			// Artificial stuck in the basis (degenerate); nothing to
			// warm-start from, which is a legal outcome.
			return true
		}
		warm, err := Solve(context.Background(), p, Options{WarmStart: cold.Basis})
		if err != nil || warm.Status != Optimal {
			t.Logf("seed %d: warm solve %v err=%v", seed, warm.Status, err)
			return false
		}
		if cold.WarmStart != WarmNone {
			t.Logf("seed %d: cold solve reports warm outcome %v", seed, cold.WarmStart)
			return false
		}
		if warm.WarmStart != WarmAccepted {
			t.Logf("seed %d: own optimal basis reported %v, want accepted", seed, warm.WarmStart)
			return false
		}
		if !objClose(cold.Obj, warm.Obj) {
			t.Logf("seed %d: cold obj %g, warm obj %g", seed, cold.Obj, warm.Obj)
			return false
		}
		checkKKT(t, p, warm)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartPerturbed warm-starts the solve of a perturbed problem
// (objective and RHS nudged) from the unperturbed optimum and checks it
// reaches the same optimal value a cold solve of the perturbed problem
// finds.
func TestWarmStartPerturbed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 2 + r.Intn(10)
		n := m + 2 + r.Intn(12)
		p := randomFeasibleLP(r, m, n)
		base, err := Solve(context.Background(), p, Options{})
		if err != nil || base.Status != Optimal || base.Basis == nil {
			return true // nothing to carry over; covered elsewhere
		}
		pp := &Problem{
			A: p.A,
			B: append([]float64(nil), p.B...),
			C: append([]float64(nil), p.C...),
			L: p.L, U: p.U,
		}
		for j := range pp.C {
			pp.C[j] += r.NormFloat64() * 0.01
		}
		for i := range pp.B {
			pp.B[i] += r.NormFloat64() * 0.01
		}
		cold, errC := Solve(context.Background(), pp, Options{})
		warm, errW := Solve(context.Background(), pp, Options{WarmStart: base.Basis})
		if errC != nil || errW != nil {
			t.Logf("seed %d: cold err %v, warm err %v", seed, errC, errW)
			return false
		}
		if cold.Status != warm.Status {
			t.Logf("seed %d: cold %v, warm %v", seed, cold.Status, warm.Status)
			return false
		}
		if cold.Status != Optimal {
			return true // perturbation made it infeasible for both
		}
		if !objClose(cold.Obj, warm.Obj) {
			t.Logf("seed %d: cold obj %g, warm obj %g", seed, cold.Obj, warm.Obj)
			return false
		}
		checkKKT(t, pp, warm)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartInvalidFallsBack feeds deliberately broken bases and
// checks the solver silently falls back to the cold path and still
// finds the optimum.
func TestWarmStartInvalidFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := randomFeasibleLP(r, 8, 14)
	cold, err := Solve(context.Background(), p, Options{})
	if err != nil || cold.Status != Optimal {
		t.Fatalf("cold solve: %v err=%v", cold.Status, err)
	}
	bad := []*Basis{
		{M: 7, N: 14, State: make([]int8, 14)},                                 // wrong row count
		{M: 8, N: 13, State: make([]int8, 13)},                                 // wrong column count
		{M: 8, N: 14, State: make([]int8, 14)},                                 // zero basic variables
		{M: 8, N: 14, State: []int8{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}}, // garbage states
	}
	// The validation check each of the explicit bad bases must trip.
	wantOutcome := []WarmOutcome{
		WarmRejectedDims, WarmRejectedDims, WarmRejectedBasicCount, WarmRejectedBounds,
	}
	// A basis with the right counts but the wrong variables: basic on
	// the first m columns regardless of structure (often singular or
	// infeasible — either way the answer must not change).
	wrong := &Basis{M: 8, N: 14, State: make([]int8, 14)}
	for j := range wrong.State {
		if j < 8 {
			wrong.State[j] = VarBasic
		} else {
			wrong.State[j] = VarLower
		}
	}
	bad = append(bad, wrong)
	for i, wb := range bad {
		sol, err := Solve(context.Background(), p, Options{WarmStart: wb})
		if err != nil {
			t.Fatalf("bad basis %d: error %v", i, err)
		}
		if sol.Status != Optimal || !objClose(sol.Obj, cold.Obj) {
			t.Fatalf("bad basis %d: status %v obj %g, want optimal obj %g",
				i, sol.Status, sol.Obj, cold.Obj)
		}
		if i < len(wantOutcome) && sol.WarmStart != wantOutcome[i] {
			t.Fatalf("bad basis %d: warm outcome %v, want %v", i, sol.WarmStart, wantOutcome[i])
		}
		// Every supplied basis — including the structurally plausible
		// "wrong" one, which may trip any late check — must report an
		// outcome, never WarmNone.
		if sol.WarmStart == WarmNone {
			t.Fatalf("bad basis %d: outcome WarmNone despite a supplied basis", i)
		}
	}
}

// TestWarmStartSkipsPhase1 checks the intended effect: re-solving from
// an optimal basis takes (far) fewer iterations than solving cold.
func TestWarmStartSkipsPhase1(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := randomFeasibleLP(r, 30, 60)
	cold, err := Solve(context.Background(), p, Options{})
	if err != nil || cold.Status != Optimal {
		t.Fatalf("cold solve: %v err=%v", cold.Status, err)
	}
	if cold.Basis == nil {
		t.Skip("cold optimum kept an artificial basic; no exportable basis")
	}
	warm, err := Solve(context.Background(), p, Options{WarmStart: cold.Basis})
	if err != nil || warm.Status != Optimal {
		t.Fatalf("warm solve: %v err=%v", warm.Status, err)
	}
	if warm.Iterations > cold.Iterations/2 {
		t.Fatalf("warm solve took %d iterations, cold took %d: warm start is not engaging",
			warm.Iterations, cold.Iterations)
	}
}
