package simplex

import (
	"math"

	"repro/internal/lu"
	"repro/internal/sparse"
)

// basis maintains the basis matrix factorization for the revised
// simplex method: an LU factorization of the basis at the last
// refactorization plus a product-form (PFI) eta file for the pivots
// performed since.
type basis struct {
	m   int
	lu  *lu.Factorization
	mat *sparse.Matrix // basis matrix at last refactorization (diagnostics)

	// Eta file. Eta k replaces column etaRow[k] of the basis with the
	// FTran'd entering column stored in etaIdx/etaVal[etaPtr[k]:etaPtr[k+1]].
	etaPtr []int
	etaRow []int
	etaIdx []int
	etaVal []float64

	work []float64 // scratch for building columns

	// Per-eta index bitmasks plus a support bitset scratch, used by the
	// sparse btran path to skip etas that provably leave v unchanged.
	// etaMask holds maskWords() words per eta, parallel to etaRow.
	// supWords lists the word indices where sup is nonzero, so the
	// intersection test touches only words that can hit.
	etaMask  []uint64
	sup      []uint64
	supWords []int32
	supIdx   []int
}

func newBasis(m int) *basis {
	return &basis{
		m:      m,
		lu:     lu.New(m),
		etaPtr: []int{0},
		work:   make([]float64, m),
	}
}

// etaCount reports the number of eta updates since the last refactorization.
func (b *basis) etaCount() int { return len(b.etaRow) }

// etaNnz reports the total stored eta nonzeros.
func (b *basis) etaNnz() int { return len(b.etaIdx) }

// maskWords is the per-eta bitmask length in words.
func (b *basis) maskWords() int { return (b.m + 63) / 64 }

// refactor rebuilds the LU factorization from the given basis columns.
// The caller (solver.refactor) wraps any error with solve context —
// phase, iteration, refactorization count.
func (b *basis) refactor(cols *sparse.Matrix) error {
	if err := b.lu.Factor(cols); err != nil {
		return err
	}
	b.mat = cols
	b.etaPtr = b.etaPtr[:1]
	b.etaRow = b.etaRow[:0]
	b.etaIdx = b.etaIdx[:0]
	b.etaVal = b.etaVal[:0]
	b.etaMask = b.etaMask[:0]
	return nil
}

// deficiency diagnoses a basis matrix that refused to factorize: it
// reruns the elimination in repair mode and returns the dependent
// basis positions (columns of cols) and the rows left unpivoted. The
// factorization object is left incomplete either way; the caller must
// refactor() after swapping the offenders out.
func (b *basis) deficiency(cols *sparse.Matrix) (positions, rows []int, err error) {
	return b.lu.FactorDeficient(cols)
}

// pushEtaMask appends the index bitmask for the eta whose entries start
// at etaPtr position lo.
func (b *basis) pushEtaMask(lo int) {
	w := b.maskWords()
	n := len(b.etaMask)
	for i := 0; i < w; i++ {
		b.etaMask = append(b.etaMask, 0)
	}
	mask := b.etaMask[n:]
	for t := lo; t < len(b.etaIdx); t++ {
		i := b.etaIdx[t]
		mask[i>>6] |= 1 << (uint(i) & 63)
	}
}

// pushEta records a pivot that replaced basis position r with the
// FTran'd entering column w (dense, length m). Entries below dropTol
// are not stored, except w[r] which is always kept.
func (b *basis) pushEta(r int, w []float64, dropTol float64) {
	lo := len(b.etaIdx)
	for i, v := range w {
		if i == r || math.Abs(v) > dropTol {
			if v == 0 && i != r {
				continue
			}
			b.etaIdx = append(b.etaIdx, i)
			b.etaVal = append(b.etaVal, v)
		}
	}
	b.etaRow = append(b.etaRow, r)
	b.etaPtr = append(b.etaPtr, len(b.etaIdx))
	b.pushEtaMask(lo)
}

// pushEtaIdx is pushEta over an explicit nonzero index list (ascending,
// as the FTran scan produces): the same entries are stored in the same
// order — wIdx lists exactly the nonzero positions of w, and pushEta
// keeps a nonzero entry iff it is the pivot position or above dropTol —
// without rescanning the dense vector.
func (b *basis) pushEtaIdx(r int, w []float64, wIdx []int, dropTol float64) {
	lo := len(b.etaIdx)
	for _, i := range wIdx {
		v := w[i]
		if i == r || math.Abs(v) > dropTol {
			b.etaIdx = append(b.etaIdx, i)
			b.etaVal = append(b.etaVal, v)
		}
	}
	b.etaRow = append(b.etaRow, r)
	b.etaPtr = append(b.etaPtr, len(b.etaIdx))
	b.pushEtaMask(lo)
}

// ftran solves B·x = v in place (v is overwritten with the solution).
func (b *basis) ftran(v []float64) {
	b.lu.Solve(v, v)
	b.ftranEtas(v)
}

// ftranSupp is ftran for a caller that knows a superset of v's nonzero
// pattern (ascending original indices; entries outside are exact zeros),
// letting the LU solve skip its pattern-discovery scan.
func (b *basis) ftranSupp(v []float64, supp []int) {
	b.lu.SolveSupp(v, v, supp)
	b.ftranEtas(v)
}

func (b *basis) ftranEtas(v []float64) {
	for k := 0; k < len(b.etaRow); k++ {
		r := b.etaRow[k]
		vr := v[r]
		if vr == 0 {
			continue
		}
		lo, hi := b.etaPtr[k], b.etaPtr[k+1]
		// Find w_r first.
		var wr float64
		for t := lo; t < hi; t++ {
			if b.etaIdx[t] == r {
				wr = b.etaVal[t]
				break
			}
		}
		zr := vr / wr
		for t := lo; t < hi; t++ {
			i := b.etaIdx[t]
			if i == r {
				continue
			}
			v[i] -= b.etaVal[t] * zr
		}
		v[r] = zr
	}
}

// btran solves Bᵀ·y = v in place (v is overwritten with the solution).
func (b *basis) btran(v []float64) {
	if b.m >= 64 && len(b.etaRow) >= 4 && b.btranSparse(v, -1) {
		return
	}
	for k := len(b.etaRow) - 1; k >= 0; k-- {
		r := b.etaRow[k]
		lo, hi := b.etaPtr[k], b.etaPtr[k+1]
		var dot float64
		var wr float64
		for t := lo; t < hi; t++ {
			i := b.etaIdx[t]
			if i == r {
				wr = b.etaVal[t]
				continue
			}
			dot += b.etaVal[t] * v[i]
		}
		v[r] = (v[r] - dot) / wr
	}
	b.lu.SolveTranspose(v, v)
}

// btranUnit is btran for v = e_seed (exactly one nonzero, at seed): the
// sparse path's support scan is replaced by the known singleton pattern,
// so it applies whenever the dimension gate passes, regardless of eta
// count.
func (b *basis) btranUnit(v []float64, seed int) {
	if b.m >= 64 {
		b.btranSparse(v, seed)
		return
	}
	b.btran(v)
}

// btranSparse is the eta pass for sparse v, followed by the LU
// transpose solve with the collected support: it tracks a superset of
// v's support in a bitset and skips etas whose index set misses it
// while v[r] is zero — for those, the dot is a sum of exact zeros and
// the update would store (±0−±0)/w_r, so skipping changes only the
// sign of a zero. Non-skipped etas run the dense path's exact gather.
// seed ≥ 0 asserts v's support is exactly {seed}, skipping the scan.
// Returns false (having done nothing) when v is too dense to pay off.
func (b *basis) btranSparse(v []float64, seed int) bool {
	words := b.maskWords()
	if cap(b.sup) < words {
		b.sup = make([]uint64, words)
	}
	sup := b.sup[:words]
	for i := range sup {
		sup[i] = 0
	}
	sw := b.supWords[:0]
	si := b.supIdx[:0]
	if seed >= 0 {
		sw = append(sw, int32(seed>>6))
		sup[seed>>6] |= 1 << (uint(seed) & 63)
		si = append(si, seed)
	} else {
		nnz := 0
		for i, x := range v {
			if x != 0 {
				w := i >> 6
				if sup[w] == 0 {
					sw = append(sw, int32(w))
				}
				sup[w] |= 1 << (uint(i) & 63)
				si = append(si, i)
				nnz++
			}
		}
		if nnz > b.m/8 {
			b.supWords, b.supIdx = sw, si
			return false
		}
	}
	for k := len(b.etaRow) - 1; k >= 0; k-- {
		r := b.etaRow[k]
		if v[r] == 0 {
			mask := b.etaMask[k*words:]
			hit := false
			for _, w := range sw {
				if mask[w]&sup[w] != 0 {
					hit = true
					break
				}
			}
			// The mask includes r itself, but v[r] == 0 means r's bit
			// cannot be the one that hit.
			if !hit {
				continue
			}
		}
		lo, hi := b.etaPtr[k], b.etaPtr[k+1]
		var dot float64
		var wr float64
		for t := lo; t < hi; t++ {
			i := b.etaIdx[t]
			if i == r {
				wr = b.etaVal[t]
				continue
			}
			dot += b.etaVal[t] * v[i]
		}
		v[r] = (v[r] - dot) / wr
		if bit := uint64(1) << (uint(r) & 63); sup[r>>6]&bit == 0 {
			if sup[r>>6] == 0 {
				sw = append(sw, int32(r>>6))
			}
			sup[r>>6] |= bit
			si = append(si, r)
		}
	}
	b.supWords, b.supIdx = sw, si
	// The collected indices are a superset of v's support (a processed
	// position may have landed on an exact zero); entries outside are
	// untouched zeros. The LU layer filters to actual nonzeros, so the
	// solve matches the plain SolveTranspose path.
	b.lu.SolveTransposeSupp(v, v, si)
	return true
}
