package simplex

import (
	"fmt"
	"math"

	"repro/internal/lu"
	"repro/internal/sparse"
)

// basis maintains the basis matrix factorization for the revised
// simplex method: an LU factorization of the basis at the last
// refactorization plus a product-form (PFI) eta file for the pivots
// performed since.
type basis struct {
	m   int
	lu  *lu.Factorization
	mat *sparse.Matrix // basis matrix at last refactorization (diagnostics)

	// Eta file. Eta k replaces column etaRow[k] of the basis with the
	// FTran'd entering column stored in etaIdx/etaVal[etaPtr[k]:etaPtr[k+1]].
	etaPtr []int
	etaRow []int
	etaIdx []int
	etaVal []float64

	work []float64 // scratch for building columns
}

func newBasis(m int) *basis {
	return &basis{
		m:      m,
		lu:     lu.New(m),
		etaPtr: []int{0},
		work:   make([]float64, m),
	}
}

// etaCount reports the number of eta updates since the last refactorization.
func (b *basis) etaCount() int { return len(b.etaRow) }

// etaNnz reports the total stored eta nonzeros.
func (b *basis) etaNnz() int { return len(b.etaIdx) }

// refactor rebuilds the LU factorization from the given basis columns.
// colOf must append the column of the constraint matrix for variable v
// into the provided builder at basis position r.
func (b *basis) refactor(cols *sparse.Matrix) error {
	if err := b.lu.Factor(cols); err != nil {
		return fmt.Errorf("simplex: basis refactorization failed: %w", err)
	}
	b.mat = cols
	b.etaPtr = b.etaPtr[:1]
	b.etaRow = b.etaRow[:0]
	b.etaIdx = b.etaIdx[:0]
	b.etaVal = b.etaVal[:0]
	return nil
}

// pushEta records a pivot that replaced basis position r with the
// FTran'd entering column w (dense, length m). Entries below dropTol
// are not stored, except w[r] which is always kept.
func (b *basis) pushEta(r int, w []float64, dropTol float64) {
	for i, v := range w {
		if i == r || math.Abs(v) > dropTol {
			if v == 0 && i != r {
				continue
			}
			b.etaIdx = append(b.etaIdx, i)
			b.etaVal = append(b.etaVal, v)
		}
	}
	b.etaRow = append(b.etaRow, r)
	b.etaPtr = append(b.etaPtr, len(b.etaIdx))
}

// ftran solves B·x = v in place (v is overwritten with the solution).
func (b *basis) ftran(v []float64) {
	b.lu.Solve(v, v)
	for k := 0; k < len(b.etaRow); k++ {
		r := b.etaRow[k]
		vr := v[r]
		if vr == 0 {
			continue
		}
		lo, hi := b.etaPtr[k], b.etaPtr[k+1]
		// Find w_r first.
		var wr float64
		for t := lo; t < hi; t++ {
			if b.etaIdx[t] == r {
				wr = b.etaVal[t]
				break
			}
		}
		zr := vr / wr
		for t := lo; t < hi; t++ {
			i := b.etaIdx[t]
			if i == r {
				continue
			}
			v[i] -= b.etaVal[t] * zr
		}
		v[r] = zr
	}
}

// btran solves Bᵀ·y = v in place (v is overwritten with the solution).
func (b *basis) btran(v []float64) {
	for k := len(b.etaRow) - 1; k >= 0; k-- {
		r := b.etaRow[k]
		lo, hi := b.etaPtr[k], b.etaPtr[k+1]
		var dot float64
		var wr float64
		for t := lo; t < hi; t++ {
			i := b.etaIdx[t]
			if i == r {
				wr = b.etaVal[t]
				continue
			}
			dot += b.etaVal[t] * v[i]
		}
		v[r] = (v[r] - dot) / wr
	}
	b.lu.SolveTranspose(v, v)
}
