package simplex

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/lu"
	"repro/internal/sparse"
)

// degenerateLP builds a deliberately nasty feasible LP: a random base
// system made rank-deficient by exactly duplicated rows, padded with
// near-parallel column pairs, and priced with zero-cost ties so the
// optimal face is fat and the simplex path heavily degenerate.
func degenerateLP(r *rand.Rand) *Problem {
	mBase := 3 + r.Intn(8)
	n := mBase + 2 + r.Intn(10)
	bld := sparse.NewBuilder(mBase, n)
	for i := 0; i < mBase; i++ {
		k := 2 + r.Intn(3)
		for t := 0; t < k; t++ {
			bld.Add(i, r.Intn(n), math.Round(r.NormFloat64()*4)/2)
		}
	}
	a := bld.Build()

	l := make([]float64, n)
	u := make([]float64, n)
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		l[j] = -float64(r.Intn(3))
		u[j] = l[j] + float64(1+r.Intn(4))
		// Many variables start exactly on a bound: primal degeneracy.
		switch r.Intn(3) {
		case 0:
			x0[j] = l[j]
		case 1:
			x0[j] = u[j]
		default:
			x0[j] = l[j] + (u[j]-l[j])*r.Float64()
		}
	}
	b := make([]float64, mBase)
	a.MulVec(x0, b)

	// Re-assemble with duplicated rows (consistent, so still feasible)
	// and near-parallel duplicate columns.
	dupRows := 1 + r.Intn(3)
	dupCols := 1 + r.Intn(3)
	m2 := mBase + dupRows
	n2 := n + dupCols
	bld2 := sparse.NewBuilder(m2, n2)
	rowOf := make([]int, m2)
	for i := 0; i < mBase; i++ {
		rowOf[i] = i
	}
	for d := 0; d < dupRows; d++ {
		rowOf[mBase+d] = r.Intn(mBase)
	}
	colOf := make([]int, n2)
	for j := 0; j < n; j++ {
		colOf[j] = j
	}
	for d := 0; d < dupCols; d++ {
		colOf[n+d] = r.Intn(n)
	}
	for i2 := 0; i2 < m2; i2++ {
		src := rowOf[i2]
		for j := 0; j < n; j++ {
			if v := a.At(src, j); v != 0 {
				bld2.Add(i2, j, v)
			}
		}
		for d := 0; d < dupCols; d++ {
			if v := a.At(src, colOf[n+d]); v != 0 {
				eps := 0.0
				if r.Intn(2) == 0 {
					eps = 1e-9 * r.NormFloat64() // near-parallel, not exact
				}
				bld2.Add(i2, n+d, v+eps)
			}
		}
	}
	b2 := make([]float64, m2)
	for i2 := 0; i2 < m2; i2++ {
		b2[i2] = b[rowOf[i2]]
	}
	l2 := make([]float64, n2)
	u2 := make([]float64, n2)
	c2 := make([]float64, n2)
	copy(l2, l)
	copy(u2, u)
	for d := 0; d < dupCols; d++ {
		// Duplicate columns fixed at zero keep the duplicated-row system
		// consistent while their near-parallel data still enters bases.
		l2[n+d] = 0
		u2[n+d] = float64(r.Intn(2)) // half of them genuinely movable
	}
	// Zero-cost ties: most variables share cost 0 or ±1.
	for j := 0; j < n2; j++ {
		c2[j] = float64(r.Intn(3) - 1)
	}
	return &Problem{A: bld2.Build(), B: b2, C: c2, L: l2, U: u2}
}

// TestDegenerateLPsNeverSingular is the robustness property the basis
// repair exists for: whatever a rank-deficient, tie-riddled LP does to
// the basis, Solve must come back with a verdict — optimal, infeasible,
// unbounded, or iteration limit — never a surfaced lu.ErrSingular.
func TestDegenerateLPsNeverSingular(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 400; iter++ {
		r := rand.New(rand.NewSource(rng.Int63()))
		p := degenerateLP(r)
		sol, err := Solve(context.Background(), p, Options{MaxIter: 5000})
		if err != nil {
			if errors.Is(err, lu.ErrSingular) {
				t.Fatalf("iter %d: Solve surfaced a singular basis: %v", iter, err)
			}
			t.Fatalf("iter %d: Solve failed: %v", iter, err)
		}
		switch sol.Status {
		case Optimal:
			// The construction is feasible by design; sanity-check the
			// reported point against constraints and bounds.
			res := make([]float64, p.A.Rows)
			p.A.MulVec(sol.X, res)
			scale := 1 + sparse.InfNorm(p.B)
			for i := range res {
				if math.Abs(res[i]-p.B[i]) > 1e-5*scale {
					t.Fatalf("iter %d: optimal point violates row %d: %g vs %g",
						iter, i, res[i], p.B[i])
				}
			}
			for j, v := range sol.X {
				if v < p.L[j]-1e-6 || v > p.U[j]+1e-6 {
					t.Fatalf("iter %d: x[%d]=%g outside [%g,%g]", iter, j, v, p.L[j], p.U[j])
				}
			}
		case Infeasible, Unbounded, IterLimit:
			// Acceptable verdicts for a numerically nasty instance.
		default:
			t.Fatalf("iter %d: unexpected status %v", iter, sol.Status)
		}
	}
}

// TestRefactorErrorCarriesContext checks the enriched singular-basis
// error format end to end at the lu layer the solver wraps.
func TestRefactorErrorCarriesContext(t *testing.T) {
	// Force an unrepairable failure through the solver's own wrap path:
	// repair disabled mirrors the warm-start validation configuration.
	bld := sparse.NewBuilder(2, 2)
	bld.Add(0, 0, 1)
	bld.Add(1, 0, 2)
	bld.Add(0, 1, 2)
	bld.Add(1, 1, 4) // col 1 = 2·col 0
	p := &Problem{
		A: bld.Build(),
		B: []float64{1, 2},
		C: []float64{1, 1},
		L: []float64{0, 0},
		U: []float64{10, 10},
	}
	s := &solver{
		prob:    *p,
		opt:     Options{}.withDefaults(2, 2),
		m:       2,
		n:       2,
		total:   4,
		cost:    make([]float64, 4),
		state:   make([]int8, 4),
		basisOf: []int{0, 1}, // both structural columns: singular basis
		inRow:   []int{0, 1, -1, -1},
		xB:      make([]float64, 2),
		artSign: []float64{1, 1},
		bas:     newBasis(2),
		v2:      make([]float64, 2),
	}
	s.state[0], s.state[1] = stBasic, stBasic
	s.state[2], s.state[3] = stLower, stLower
	err := s.refactor()
	if err == nil {
		t.Fatal("refactor of a singular basis with repair disabled returned nil")
	}
	if !errors.Is(err, lu.ErrSingular) {
		t.Fatalf("error %v does not wrap lu.ErrSingular", err)
	}
	for _, want := range []string{"phase", "iteration", "refactorization", "step", "column"} {
		if !containsStr(err.Error(), want) {
			t.Fatalf("error %q lacks %q context", err.Error(), want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestRepairedSingularBasisSolves drives refactor straight into the
// repair path: a hand-installed dependent basis must be mended (the
// dependent column swapped for an artificial) instead of erroring.
func TestRepairedSingularBasisSolves(t *testing.T) {
	bld := sparse.NewBuilder(2, 2)
	bld.Add(0, 0, 1)
	bld.Add(1, 0, 2)
	bld.Add(0, 1, 2)
	bld.Add(1, 1, 4) // col 1 = 2·col 0
	p := &Problem{
		A: bld.Build(),
		B: []float64{0, 0},
		C: []float64{1, 1},
		L: []float64{0, 0},
		U: []float64{10, 10},
	}
	s := &solver{
		prob:    *p,
		opt:     Options{}.withDefaults(2, 2),
		m:       2,
		n:       2,
		total:   4,
		cost:    make([]float64, 4),
		state:   make([]int8, 4),
		basisOf: []int{0, 1},
		inRow:   []int{0, 1, -1, -1},
		xB:      make([]float64, 2),
		artSign: []float64{1, 1},
		bas:     newBasis(2),
		v2:      make([]float64, 2),
	}
	s.state[0], s.state[1] = stBasic, stBasic
	s.state[2], s.state[3] = stLower, stLower
	s.allowRepair = true
	if err := s.refactor(); err != nil {
		t.Fatalf("repair-enabled refactor failed: %v", err)
	}
	if s.nRepairs == 0 {
		t.Fatal("singular basis factored without recording a repair")
	}
	nArt := 0
	for _, j := range s.basisOf {
		if j >= s.n {
			nArt++
		}
	}
	if nArt == 0 {
		t.Fatalf("repair left no artificial in the basis: basisOf=%v", s.basisOf)
	}
}
