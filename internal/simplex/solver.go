// Package simplex implements a bounded-variable revised primal simplex
// method for linear programs in standard computational form:
//
//	minimize    c·x
//	subject to  A·x = b,   l ≤ x ≤ u
//
// with infinite bounds allowed. It is the replacement for the
// commercial LP solver (Gurobi) used in the paper's experiments: it
// produces optimal basic solutions together with dual values and
// reduced costs, so optimality can be certified externally through the
// KKT conditions.
//
// The implementation uses the classical two-phase method with
// artificial variables, a sparse LU basis factorization
// (internal/lu) refreshed periodically, product-form eta updates in
// between, rotating partial pricing with a Bland's-rule fallback for
// anti-cycling, and a Harris-style two-pass ratio test.
package simplex

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/lu"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means phase 1 terminated with positive infeasibility.
	Infeasible
	// Unbounded means the objective is unbounded below.
	Unbounded
	// IterLimit means the iteration budget was exhausted.
	IterLimit
)

// String renders the status for logs and errors.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Problem is a linear program in standard computational form.
type Problem struct {
	A *sparse.Matrix // m×n constraint matrix
	B []float64      // length m right-hand side
	C []float64      // length n objective
	L []float64      // length n lower bounds (may be -Inf)
	U []float64      // length n upper bounds (may be +Inf)
}

// Validate checks dimensional consistency and bound sanity.
func (p *Problem) Validate() error {
	if p.A == nil {
		return errors.New("simplex: nil constraint matrix")
	}
	m, n := p.A.Rows, p.A.Cols
	if len(p.B) != m {
		return fmt.Errorf("simplex: len(B)=%d, want %d", len(p.B), m)
	}
	if len(p.C) != n || len(p.L) != n || len(p.U) != n {
		return fmt.Errorf("simplex: C/L/U lengths (%d,%d,%d), want %d",
			len(p.C), len(p.L), len(p.U), n)
	}
	for j := 0; j < n; j++ {
		if p.L[j] > p.U[j] {
			return fmt.Errorf("simplex: variable %d has L=%g > U=%g", j, p.L[j], p.U[j])
		}
		if math.IsNaN(p.L[j]) || math.IsNaN(p.U[j]) || math.IsNaN(p.C[j]) {
			return fmt.Errorf("simplex: variable %d has NaN data", j)
		}
	}
	return nil
}

// Options tune the solver. The zero value selects sensible defaults.
type Options struct {
	// MaxIter bounds total simplex iterations (both phases).
	// Default: 200*(m+n)+10000.
	MaxIter int
	// Tol is the primal feasibility / dual optimality tolerance.
	// Default 1e-7.
	Tol float64
	// RefactorEvery is the pivot count between basis refactorizations.
	// Default 120.
	RefactorEvery int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// WarmStart, when non-nil, seeds the solve with a previously
	// exported basis, skipping phase 1 when it is primal feasible for
	// this problem. Invalid or infeasible bases fall back to the cold
	// two-phase start; the result is the same optimum either way, and
	// Solution.WarmStart reports which validation check (if any)
	// forced the fallback.
	WarmStart *Basis
	// Obs, when non-nil, receives solve telemetry: pivots,
	// refactorizations, Devex prefilter hit rate, LU factorization
	// work, and the warm-start outcome. Counters accumulate locally
	// and flush once per solve, so the pivot loop never touches an
	// atomic; pivot sequences are identical with Obs set or nil.
	Obs *obs.Registry
}

func (o Options) withDefaults(m, n int) Options {
	if o.MaxIter == 0 {
		o.MaxIter = 200*(m+n) + 10000
	}
	if o.Tol == 0 {
		o.Tol = 1e-7
	}
	if o.RefactorEvery == 0 {
		o.RefactorEvery = 120
	}
	return o
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	Obj        float64   // c·x at termination
	X          []float64 // length n primal values
	Y          []float64 // length m duals (row multipliers)
	D          []float64 // length n reduced costs c − Aᵀy
	Iterations int       // total simplex iterations (both phases)
	// Basis is the optimal basis in exportable form, present when the
	// solve is Optimal with no artificial variable basic. Feed it to
	// Options.WarmStart to accelerate a related solve.
	Basis *Basis
	// WarmStart reports what became of Options.WarmStart: WarmNone
	// when no basis was supplied, WarmAccepted when phase 1 was
	// skipped, or the WarmRejected* check that forced the cold start.
	WarmStart WarmOutcome
}

// variable states
const (
	stBasic int8 = iota
	stLower
	stUpper
	stFree // nonbasic at value 0, both bounds infinite
)

// Exported variable statuses, as recorded in a Basis. They are the
// internal state codes by definition, so import/export is a copy.
const (
	VarBasic = stBasic
	VarLower = stLower
	VarUpper = stUpper
	VarFree  = stFree
)

// Basis is an exported optimal basis: the states of the structural
// variables of a solve that terminated Optimal with every artificial
// variable nonbasic. It can warm-start a later solve of a problem with
// the same dimensions (Options.WarmStart); the solver validates it
// against the new problem and silently falls back to a cold start when
// it does not fit (wrong dimensions, wrong basic count, a state
// incompatible with the new bounds, a singular basis matrix, or a
// primal-infeasible starting point).
type Basis struct {
	M, N  int    // dimensions of the problem that produced it
	State []int8 // length N: VarBasic/VarLower/VarUpper/VarFree
}

type solver struct {
	prob Problem
	opt  Options
	ctx  context.Context // cancellation, polled between pivots

	m, n  int // rows, structural columns
	total int // n + m (artificials appended)

	cost    []float64 // current phase costs, length total
	state   []int8    // length total
	basisOf []int     // per row: variable index basic there
	inRow   []int     // per variable: row if basic, else -1
	xB      []float64 // length m, values of basic variables
	artSign []float64 // length m, artificial column signs (±1)

	bas *basis

	// dense work vectors, length m
	y   []float64
	w   []float64
	v2  []float64
	rho []float64 // pivot row B⁻ᵀe_r for Devex / reduced-cost updates

	wIdx []int // nonzero positions of w after ftran

	// Reduced costs maintained incrementally across pivots and Devex
	// reference weights, interleaved (ddw[2j] = reduced cost of j,
	// ddw[2j+1] = Devex weight): the pricing sweep reads both per
	// column, and interleaving halves its cache-line traffic.
	ddw []float64

	// Row-major (CSR) view of A, built once per solve: the pricing
	// sweep accumulates the pivot row α_r = ρᵀA by rows of A with
	// nonzero ρ_i instead of one sparse dot per nonbasic column. Valid
	// only when every column of A stores its rows ascending (csrOK) —
	// then per-column accumulation order matches ColDot's and the
	// floats are identical. arj is the length-total accumulator,
	// zeroed again after every sweep.
	rowPtr  []int32
	rowCol  []int32
	rowVal  []float64
	csrOK   bool
	arj     []float64
	suppOne [1]int
	// Deduplicated list of columns the current pivot row touches, with
	// a generation-stamped membership test (no clearing between pivots).
	touched  []int32
	stamp    []int32
	stampGen int32

	// Nonbasic index list, rebuilt per phase and maintained across
	// pivots (swap-remove the entering column, append the leaving one):
	// the pricing sweep visits only nonbasic columns instead of testing
	// state over all of them. nbPos[j] is j's position, -1 when basic.
	nbList []int32
	nbPos  []int32
	// fixed[j] caches lb(j) == ub(j), refreshed with the nonbasic list
	// (bounds only change at phase transitions, which rebuild it).
	fixed []bool

	// One-pivot price cache: the pivot's pricing sweep already sees
	// every nonbasic column with its final reduced cost and Devex
	// weight, so it records the next entering candidate (argmax of
	// d²/w, smallest index on ties — exactly what the ascending price
	// scan would select). Any event that perturbs d, dw, or a state
	// outside the sweep's view (refactor refresh, Devex reset, bound
	// flip, Bland mode) simply leaves the cache invalid and price
	// falls back to the full scan.
	cacheJ     int
	cacheDir   float64
	cacheScore float64
	cacheOK    bool

	bland       bool    // Bland's rule anti-cycling mode
	artFixed    bool    // artificial upper bounds pinned to 0 (phase 2)
	minPiv      float64 // smallest acceptable ratio-test pivot magnitude
	degenStreak int
	pivots      int // pivots since last refactorization
	iters       int
	phase       int // current phase (1 or 2), for error context

	// Singular-basis repair state. allowRepair is off during warm-start
	// validation, where rejecting the basis is the correct response to
	// singularity. repaired marks that the basis just changed under the
	// solve's feet, so refactor must re-verify primal feasibility.
	allowRepair bool
	repaired    bool

	// Anti-degeneracy perturbation state: savedCost holds the true phase
	// costs while perturbed (restored — and optimality re-verified —
	// before any terminal status is reported).
	perturbed bool
	savedCost []float64

	// Telemetry accumulators, flushed to Options.Obs once per solve
	// (see flushObs). warm records the warm-start outcome; isRetry marks
	// the strict singular retry so logical solves are counted once.
	warm           WarmOutcome
	isRetry        bool
	nRefactor      int
	nDegen         int   // degenerate (zero-step) pivots this solve
	degenAtPerturb int   // nDegen at the last perturbation (trigger baseline)
	nRepairs       int   // dependent basis columns swapped for artificials
	nPerturb       int   // cost perturbations applied on degenerate stalls
	restarts       int   // two-phase restarts after an infeasible repair
	prefTested     int64 // nonbasic columns seen by the CSR pricing sweep
	prefPassed     int64 // columns that survived the dj² ≥ bestScore prefilter
}

// Repair / anti-degeneracy limits. Each is a last-resort bound, not a
// tuning knob: repairs normally succeed on the first attempt and
// perturbations resolve a stall within one or two escalations.
const (
	maxRepairAttempts = 4  // deficiency-swap rounds per refactorization
	maxRestarts       = 3  // two-phase restarts after infeasible repairs
	maxPerturb        = 6  // cost perturbations per solveOnce
	cancelCheckEvery  = 64 // pivots between context-cancellation polls
)

// crashMinRows gates the slack-crash start: at or above this row count
// the cold start seats feasible singleton (slack) columns in the basis
// instead of artificials, which collapses phase 1 on the big
// interval-indexed LPs (capacity rows are all inequalities). Below it
// the historical all-artificial start is kept so every committed
// golden trace and pivot-sequence differential stays byte-identical.
const crashMinRows = 5000

// errRestartPhases is an internal sentinel: a basis repair succeeded
// numerically but left the basic values primal infeasible, so the
// two-phase method must restart from a fresh artificial basis (run's
// loop handles it; it never escapes Solve).
var errRestartPhases = errors.New("simplex: restart phases after basis repair")

// Solve minimizes the problem. An error is returned only for malformed
// input or unrecoverable numerical failure; infeasibility, unboundedness
// and iteration exhaustion are reported through Solution.Status.
//
// A numerically singular basis is normally repaired in place: the
// dependent basic columns identified by the failed elimination are
// swapped for artificial columns and the solve continues (restarting
// the two-phase method if the swap leaves the point infeasible). Only
// when repair itself fails is the whole solve retried once with a
// stricter pivot threshold and more frequent refactorization, before
// the error is surfaced.
// Solve honors ctx: cancellation is polled between pivots (every
// cancelCheckEvery iterations), so long solves return ctx.Err()
// promptly instead of running to the iteration limit. The pivot
// sequence of an uncancelled solve is identical for any ctx.
func Solve(ctx context.Context, p *Problem, opt Options) (*Solution, error) {
	sol, err := solveOnce(ctx, p, opt, 1e-9, false)
	if err != nil && errors.Is(err, lu.ErrSingular) {
		strict := opt
		if strict.RefactorEvery == 0 || strict.RefactorEvery > 40 {
			strict.RefactorEvery = 40
		}
		return solveOnce(ctx, p, strict, 1e-6, true)
	}
	return sol, err
}

func solveOnce(ctx context.Context, p *Problem, opt Options, minPiv float64, retry bool) (*Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, n := p.A.Rows, p.A.Cols
	s := &solver{
		prob:    *p,
		opt:     opt.withDefaults(m, n),
		ctx:     ctx,
		m:       m,
		n:       n,
		total:   n + m,
		cost:    make([]float64, n+m),
		state:   make([]int8, n+m),
		basisOf: make([]int, m),
		inRow:   make([]int, n+m),
		xB:      make([]float64, m),
		artSign: make([]float64, m),
		bas:     newBasis(m),
		y:       make([]float64, m),
		w:       make([]float64, m),
		v2:      make([]float64, m),
		rho:     make([]float64, m),
		ddw:     make([]float64, 2*(n+m)),
		touched: make([]int32, 0, n+m),
		stamp:   make([]int32, n+m),
		wIdx:    make([]int, 0, m),
		arj:     make([]float64, n+m),
		nbList:  make([]int32, 0, n+m),
		nbPos:   make([]int32, n+m),
		fixed:   make([]bool, n+m),
		minPiv:  minPiv,
		isRetry: retry,
	}
	s.allowRepair = true
	s.buildCSR()
	defer s.flushObs()
	return s.run()
}

// buildCSR builds the row-major view of A for the pricing sweep. The
// sweep's float-exactness argument needs ascending rows within each
// column; a matrix violating that (none of ours do — sparse.Builder
// sorts) simply keeps the column-dot path.
func (s *solver) buildCSR() {
	a := s.prob.A
	for j := 0; j < a.Cols; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		for k := lo + 1; k < hi; k++ {
			if a.RowIdx[k-1] >= a.RowIdx[k] {
				s.csrOK = false
				return
			}
		}
	}
	nnz := a.Nnz()
	s.rowPtr = make([]int32, s.m+1)
	s.rowCol = make([]int32, nnz)
	s.rowVal = make([]float64, nnz)
	counts := make([]int32, s.m)
	for _, i := range a.RowIdx {
		counts[i]++
	}
	for i := 0; i < s.m; i++ {
		s.rowPtr[i+1] = s.rowPtr[i] + counts[i]
	}
	next := make([]int32, s.m)
	copy(next, s.rowPtr[:s.m])
	// Column-major traversal fills each row's entries in ascending
	// column order (not that the sweep's exactness needs it: each
	// column gets exactly one entry per row).
	for j := 0; j < a.Cols; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		for k := lo; k < hi; k++ {
			i := a.RowIdx[k]
			p := next[i]
			s.rowCol[p] = int32(j)
			s.rowVal[p] = a.Val[k]
			next[i] = p + 1
		}
	}
	s.csrOK = true
}

// value returns the current value of a nonbasic variable.
func (s *solver) value(j int) float64 {
	switch s.state[j] {
	case stLower:
		return s.lb(j)
	case stUpper:
		return s.ub(j)
	default:
		return 0
	}
}

func (s *solver) lb(j int) float64 {
	if j < s.n {
		return s.prob.L[j]
	}
	return 0 // artificial
}

func (s *solver) ub(j int) float64 {
	if j < s.n {
		return s.prob.U[j]
	}
	if s.artFixed {
		return 0
	}
	return math.Inf(1)
}

// scatterCol writes column j of the extended matrix [A | artificials]
// into dense w and records the nonzero index list in wIdx.
func (s *solver) scatterCol(j int, w []float64) {
	if j < s.n {
		idx, val := s.prob.A.Col(j)
		for k, i := range idx {
			w[i] += val[k]
		}
	} else {
		w[j-s.n] += s.artSign[j-s.n]
	}
}

// colDot returns column j of the extended matrix dotted with y.
func (s *solver) colDot(j int, y []float64) float64 {
	if j < s.n {
		return s.prob.A.ColDot(j, y)
	}
	return s.artSign[j-s.n] * y[j-s.n]
}

func (s *solver) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

func (s *solver) run() (*Solution, error) {
	if s.opt.WarmStart != nil {
		s.allowRepair = false // singular warm basis must be rejected, not repaired
		s.warm = s.tryWarmStart()
		s.allowRepair = true
		if s.warm == WarmAccepted {
			if s.opt.Logf != nil {
				obj := 0.0
				for j := 0; j < s.n; j++ {
					if s.state[j] != stBasic {
						obj += s.prob.C[j] * s.value(j)
					}
				}
				for i := 0; i < s.m; i++ {
					if j := s.basisOf[i]; j < s.n {
						obj += s.prob.C[j] * s.xB[i]
					}
				}
				s.logf("warm start accepted: phase 2 from objective %g", obj)
			}
			// The warm basis is primal feasible: phase 2 directly.
			status, err := s.iterate(2)
			if err == nil {
				return s.finish(status), nil
			}
			if !errors.Is(err, errRestartPhases) {
				return nil, err
			}
			// A mid-solve repair left the warm basis infeasible: fall
			// back to the two-phase method via a crash restart.
			s.restarts++
			s.logf("basis repair left warm-started point infeasible; restarting two-phase solve")
			s.crashRestart()
		} else {
			s.artFixed = false // shed any residue of a rejected warm start
			s.initBasis()
		}
	} else {
		s.initBasis()
	}
	for {
		sol, err := s.phases()
		if err == nil || !errors.Is(err, errRestartPhases) {
			return sol, err
		}
		if s.restarts >= maxRestarts {
			// Give up on in-place repair; wrapping ErrSingular hands the
			// problem to Solve's strict whole-solve retry.
			return nil, fmt.Errorf("simplex: basis repair could not restore feasibility after %d restarts: %w",
				s.restarts, lu.ErrSingular)
		}
		s.restarts++
		s.logf("basis repair left the point infeasible; restarting two-phase solve (restart %d)", s.restarts)
		s.crashRestart()
	}
}

// phases runs the two-phase method from the currently installed basis:
// phase 1 minimizes the artificial sum, phase 2 the real costs. It is
// entered from a fresh initBasis and re-entered (via run's loop) after
// a crash restart when a basis repair left the point infeasible.
func (s *solver) phases() (*Solution, error) {
	// Phase 1: minimize the sum of artificial variables.
	s.artFixed = false
	s.perturbed = false // phase costs rebuilt below; drop any stale perturbation
	for j := 0; j < s.n; j++ {
		s.cost[j] = 0
	}
	for i := 0; i < s.m; i++ {
		s.cost[s.n+i] = 1
	}
	s.bland = false
	s.degenStreak = 0
	status, err := s.iterate(1)
	if err != nil {
		return nil, err
	}
	if status == IterLimit {
		return s.finish(IterLimit), nil
	}
	infeas := 0.0
	for i := 0; i < s.m; i++ {
		if v := s.basicValueOf(s.n + i); v > 0 {
			infeas += v
		}
	}
	scale := 1 + sparse.InfNorm(s.prob.B)
	if infeas > s.opt.Tol*scale*10 {
		s.logf("phase 1 infeasible: residual %g", infeas)
		return s.finish(Infeasible), nil
	}

	// Phase 2: real costs; artificials pinned to zero.
	s.artFixed = true
	for i := 0; i < s.m; i++ {
		s.cost[s.n+i] = 0
		j := s.n + i
		if s.state[j] == stUpper || s.state[j] == stFree {
			s.state[j] = stLower
		}
	}
	copy(s.cost[:s.n], s.prob.C)
	s.bland = false
	s.degenStreak = 0
	status, err = s.iterate(2)
	if err != nil {
		return nil, err
	}
	return s.finish(status), nil
}

// crashRestart rebuilds a valid phase-1 start after a basis repair left
// the point infeasible, preserving as much of the incumbent as it can:
// every nonbasic variable keeps its bound, basic structurals are kicked
// to the bound nearest their current value, and a fresh artificial
// basis absorbs the residual.
func (s *solver) crashRestart() {
	s.artFixed = false
	for j := 0; j < s.n; j++ {
		if s.state[j] == stBasic {
			s.setNonbasicNear(j, s.xB[s.inRow[j]])
		}
	}
	for i := 0; i < s.m; i++ {
		s.basisOf[i] = -1
	}
	s.installArtificialBasis()
}

// basicValueOf returns the value of variable j if basic, else its
// nonbasic value.
func (s *solver) basicValueOf(j int) float64 {
	if r := s.inRow[j]; r >= 0 {
		return s.xB[r]
	}
	return s.value(j)
}

// tryWarmStart attempts to install Options.WarmStart as the starting
// basis: validate it against this problem, factorize, recompute the
// basic values, and check primal feasibility. On WarmAccepted the
// solver is ready for phase 2 (artificials nonbasic and pinned to
// zero, real costs installed). Any other outcome names the check that
// failed; the solver then falls back to the cold start, which rebuilds
// every field tryWarmStart touched.
func (s *solver) tryWarmStart() WarmOutcome {
	wb := s.opt.WarmStart
	if wb.M != s.m || wb.N != s.n || len(wb.State) != s.n {
		return WarmRejectedDims
	}
	nBasic := 0
	for j := 0; j < s.n; j++ {
		l, u := s.prob.L[j], s.prob.U[j]
		switch wb.State[j] {
		case stBasic:
			nBasic++
		case stLower:
			if math.IsInf(l, -1) {
				return WarmRejectedBounds
			}
		case stUpper:
			if math.IsInf(u, 1) {
				return WarmRejectedBounds
			}
		case stFree:
			if !math.IsInf(l, -1) || !math.IsInf(u, 1) {
				return WarmRejectedBounds
			}
		default:
			return WarmRejectedBounds
		}
	}
	if nBasic != s.m {
		return WarmRejectedBasicCount
	}
	r := 0
	for j := 0; j < s.n; j++ {
		s.state[j] = wb.State[j]
		if wb.State[j] == stBasic {
			s.basisOf[r] = j
			s.inRow[j] = r
			r++
		} else {
			s.inRow[j] = -1
		}
	}
	for i := 0; i < s.m; i++ {
		j := s.n + i
		s.artSign[i] = 1
		s.state[j] = stLower
		s.inRow[j] = -1
	}
	s.artFixed = true // artificials stay fixed at zero
	if err := s.refactor(); err != nil {
		return WarmRejectedSingular
	}
	// refactor recomputed xB from scratch; verify primal feasibility
	// with the same scaled tolerance the phase-1 exit check uses.
	if !s.basicFeasible() {
		return WarmRejectedInfeasible
	}
	copy(s.cost[:s.n], s.prob.C)
	for i := 0; i < s.m; i++ {
		s.cost[s.n+i] = 0
	}
	return WarmAccepted
}

// initBasis places structural variables on their nearest finite bound
// (or zero for free variables) and installs a starting basis that
// absorbs the residual: on large problems a slack crash seats feasible
// singleton columns first, and artificials cover whatever remains.
func (s *solver) initBasis() {
	for j := 0; j < s.n; j++ {
		s.inRow[j] = -1
		l, u := s.prob.L[j], s.prob.U[j]
		switch {
		case math.IsInf(l, -1) && math.IsInf(u, 1):
			s.state[j] = stFree
		case math.IsInf(l, -1):
			s.state[j] = stUpper
		case math.IsInf(u, 1):
			s.state[j] = stLower
		case math.Abs(l) <= math.Abs(u):
			s.state[j] = stLower
		default:
			s.state[j] = stUpper
		}
	}
	for i := 0; i < s.m; i++ {
		s.basisOf[i] = -1
	}
	if s.m >= crashMinRows {
		s.slackCrash()
	}
	s.installArtificialBasis()
}

// slackCrash seats singleton structural columns — in practice the lp
// layer's inequality slacks — basic on their rows wherever the implied
// value lands inside the column's bounds. Each seated column satisfies
// its row exactly, so the artificial for that row starts (and with cost
// 1 stays) nonbasic and phase 1 only has to price out artificials on
// the uncovered rows. Columns are scanned in ascending order so the
// crash is deterministic.
func (s *solver) slackCrash() {
	// Residual r = b − A·x_N with every structural at its initial
	// nonbasic placement.
	r := s.v2
	copy(r, s.prob.B)
	for j := 0; j < s.n; j++ {
		if v := s.value(j); v != 0 {
			idx, val := s.prob.A.Col(j)
			for k, i := range idx {
				r[i] -= val[k] * v
			}
		}
	}
	seated := 0
	for j := 0; j < s.n; j++ {
		idx, val := s.prob.A.Col(j)
		if len(idx) != 1 || math.Abs(val[0]) < 1e-7 {
			continue
		}
		i := idx[0]
		if s.basisOf[i] >= 0 {
			continue
		}
		// Value the column must take to absorb the row residual, adding
		// back its own nonbasic contribution already counted in r.
		xj := (r[i] + val[0]*s.value(j)) / val[0]
		if xj < s.lb(j) || xj > s.ub(j) {
			continue
		}
		s.state[j] = stBasic
		s.inRow[j] = i
		s.basisOf[i] = j
		seated++
	}
	for i := range r {
		r[i] = 0
	}
	if seated > 0 {
		s.logf("slack crash seated %d of %d rows", seated, s.m)
	}
}

// installArtificialBasis makes the artificial variable basic on every
// row not already covered by a crash-seated column, signed to absorb
// the residual b − A·x_N of the current nonbasic structural values.
// Shared by the cold start and crash restarts (which clear basisOf
// first, so they rebuild a full artificial basis).
func (s *solver) installArtificialBasis() {
	// Residual r = b − A·x_N. Crash-seated basic columns contribute
	// nothing here (value() is 0 for stBasic); their rows' entries are
	// unused below and xB is recomputed from the factorization anyway.
	r := s.v2
	copy(r, s.prob.B)
	for j := 0; j < s.n; j++ {
		if v := s.value(j); v != 0 {
			idx, val := s.prob.A.Col(j)
			for k, i := range idx {
				r[i] -= val[k] * v
			}
		}
	}
	for i := 0; i < s.m; i++ {
		j := s.n + i
		if s.basisOf[i] >= 0 && s.basisOf[i] < s.n {
			// Row covered by the slack crash: its artificial starts
			// nonbasic at zero.
			s.artSign[i] = 1
			s.state[j] = stLower
			s.inRow[j] = -1
			continue
		}
		sign := 1.0
		if r[i] < 0 {
			sign = -1
		}
		s.artSign[i] = sign
		s.state[j] = stBasic
		s.inRow[j] = i
		s.basisOf[i] = j
		s.xB[i] = sign * r[i] // = |r_i| ≥ 0
	}
	if err := s.refactor(); err != nil {
		// The crash basis is lower-triangular up to a permutation
		// (singleton columns plus ±identity artificials); this cannot
		// fail, and refactor would repair it even if it could.
		panic(err)
	}
}

// setNonbasicNear makes variable j nonbasic at the bound nearest value
// v (free variables go to the zero reference state).
func (s *solver) setNonbasicNear(j int, v float64) {
	l, u := s.lb(j), s.ub(j)
	switch {
	case math.IsInf(l, -1) && math.IsInf(u, 1):
		s.state[j] = stFree
	case math.IsInf(l, -1):
		s.state[j] = stUpper
	case math.IsInf(u, 1):
		s.state[j] = stLower
	case math.Abs(v-l) <= math.Abs(u-v):
		s.state[j] = stLower
	default:
		s.state[j] = stUpper
	}
	s.inRow[j] = -1
}

// basisMatrix assembles the current basis columns into an m×m matrix.
func (s *solver) basisMatrix() *sparse.Matrix {
	bld := sparse.NewBuilder(s.m, s.m)
	for rpos := 0; rpos < s.m; rpos++ {
		j := s.basisOf[rpos]
		if j < s.n {
			idx, val := s.prob.A.Col(j)
			for k, i := range idx {
				bld.Add(i, rpos, val[k])
			}
		} else {
			bld.Add(j-s.n, rpos, s.artSign[j-s.n])
		}
	}
	return bld.Build()
}

// refactor rebuilds the LU factorization from the current basis and
// recomputes xB from scratch to shed accumulated roundoff. A singular
// basis is repaired in place (repairBasis) rather than surfaced, up to
// a bounded number of attempts; when a repair changed the basis, the
// recomputed point is checked for primal feasibility and
// errRestartPhases is returned if it was lost.
func (s *solver) refactor() error {
	s.nRefactor++
	mat := s.basisMatrix()
	err := s.bas.refactor(mat)
	for attempt := 0; err != nil && errors.Is(err, lu.ErrSingular) && s.allowRepair && attempt < maxRepairAttempts; attempt++ {
		if rerr := s.repairBasis(mat); rerr != nil {
			s.logf("basis repair abandoned: %v", rerr)
			break
		}
		mat = s.basisMatrix()
		err = s.bas.refactor(mat)
	}
	if err != nil {
		return fmt.Errorf("simplex: basis refactorization failed (phase %d, iteration %d, refactorization %d): %w",
			s.phase, s.iters, s.nRefactor, err)
	}
	// xB = B⁻¹ (b − Σ_nonbasic a_j v_j)
	r := s.v2
	copy(r, s.prob.B)
	for j := 0; j < s.total; j++ {
		if s.state[j] == stBasic {
			continue
		}
		if v := s.value(j); v != 0 {
			if j < s.n {
				idx, val := s.prob.A.Col(j)
				for k, i := range idx {
					r[i] -= val[k] * v
				}
			} else {
				r[j-s.n] -= s.artSign[j-s.n] * v
			}
		}
	}
	s.bas.ftran(r)
	copy(s.xB, r)
	for i := range r {
		r[i] = 0
	}
	s.pivots = 0
	if s.repaired {
		s.repaired = false
		if !s.basicFeasible() {
			return errRestartPhases
		}
		s.logf("basis repair preserved primal feasibility; continuing")
	}
	return nil
}

// basicFeasible reports whether every basic value respects its bounds,
// under the same scaled tolerance as the phase-1 exit check.
func (s *solver) basicFeasible() bool {
	tol := s.opt.Tol * (1 + sparse.InfNorm(s.prob.B)) * 10
	for i := 0; i < s.m; i++ {
		j := s.basisOf[i]
		if v := s.xB[i]; v < s.lb(j)-tol || v > s.ub(j)+tol {
			return false
		}
	}
	return true
}

// repairBasis swaps the dependent columns of a numerically singular
// basis for artificial unit columns on the rows the failed elimination
// left unpivoted; the displaced variables go to their nearest bound.
// The artificial for an unpivoted row is necessarily nonbasic: unit
// columns are eliminated first (fewest nonzeros) and always pivot
// their own row.
func (s *solver) repairBasis(mat *sparse.Matrix) error {
	positions, rows, err := s.bas.deficiency(mat)
	if err != nil {
		return err
	}
	if len(positions) == 0 || len(positions) != len(rows) {
		return fmt.Errorf("deficiency analysis returned %d dependent columns for %d unpivoted rows",
			len(positions), len(rows))
	}
	for k, rpos := range positions {
		i := rows[k]
		art := s.n + i
		if s.state[art] == stBasic {
			return fmt.Errorf("artificial for unpivoted row %d is already basic", i)
		}
		old := s.basisOf[rpos]
		s.setNonbasicNear(old, s.xB[rpos])
		s.state[art] = stBasic
		s.inRow[art] = rpos
		s.basisOf[rpos] = art
	}
	s.nRepairs += len(positions)
	s.repaired = true
	s.logf("repaired singular basis: swapped %d dependent column(s) for artificials (phase %d, iteration %d, total repairs %d)",
		len(positions), s.phase, s.iters, s.nRepairs)
	return nil
}

// computeDuals fills s.y with B⁻ᵀ c_B.
func (s *solver) computeDuals() {
	for i := 0; i < s.m; i++ {
		s.y[i] = s.cost[s.basisOf[i]]
	}
	s.bas.btran(s.y)
}

// recomputeReducedCosts refreshes the incrementally-maintained reduced
// costs from scratch (one BTran plus one pass over the matrix). Called
// at phase starts and after refactorizations to shed drift.
func (s *solver) recomputeReducedCosts() {
	s.computeDuals()
	for j := 0; j < s.total; j++ {
		if s.state[j] == stBasic {
			s.ddw[2*j] = 0
			continue
		}
		s.ddw[2*j] = s.cost[j] - s.colDot(j, s.y)
	}
	// Refreshing also re-sorts the nonbasic list: sweep order never
	// affects the result, but a near-ascending list keeps the pricing
	// sweep's memory accesses sequential.
	s.rebuildNonbasic()
	s.cacheOK = false
}

// resetDevex restores the Devex reference framework.
func (s *solver) resetDevex() {
	for j := 0; j < s.total; j++ {
		s.ddw[2*j+1] = 1
	}
	s.cacheOK = false
}

// rebuildNonbasic refreshes the nonbasic index list and the fixed-bound
// cache from the states.
func (s *solver) rebuildNonbasic() {
	s.nbList = s.nbList[:0]
	for j := 0; j < s.total; j++ {
		s.fixed[j] = s.lb(j) == s.ub(j)
		if s.state[j] == stBasic {
			s.nbPos[j] = -1
			continue
		}
		s.nbPos[j] = int32(len(s.nbList))
		s.nbList = append(s.nbList, int32(j))
	}
}

// eligible reports whether nonbasic variable j can improve the
// objective, and in which direction (+1 increase, −1 decrease).
func (s *solver) eligible(j int) (dir float64, ok bool) {
	d := s.ddw[2*j]
	tol := s.opt.Tol
	switch s.state[j] {
	case stLower:
		if s.lb(j) == s.ub(j) {
			return 0, false // fixed
		}
		if d < -tol {
			return 1, true
		}
	case stUpper:
		if d > tol {
			return -1, true
		}
	case stFree:
		if d < -tol {
			return 1, true
		}
		if d > tol {
			return -1, true
		}
	}
	return 0, false
}

// price selects an entering variable using Devex pricing (d_j²/w_j),
// or Bland's smallest-index rule in anti-cycling mode. Returns -1 when
// the basis is optimal for the current costs.
func (s *solver) price() (jEnter int, dir float64) {
	if s.cacheOK && !s.bland {
		s.cacheOK = false
		return s.cacheJ, s.cacheDir
	}
	s.cacheOK = false
	if s.bland {
		for j := 0; j < s.total; j++ {
			if s.state[j] == stBasic {
				continue
			}
			if dr, ok := s.eligible(j); ok {
				return j, dr
			}
		}
		return -1, 0
	}
	best, bestScore, bestDir := -1, 0.0, 0.0
	for j := 0; j < s.total; j++ {
		if s.state[j] == stBasic {
			continue
		}
		dr, ok := s.eligible(j)
		if !ok {
			continue
		}
		dj := s.ddw[2*j]
		score := dj * dj / s.ddw[2*j+1]
		if score > bestScore {
			best, bestScore, bestDir = j, score, dr
		}
	}
	return best, bestDir
}

// updatePricingAfterPivot maintains the reduced costs and Devex
// weights across a basis change: entering variable q replaced the
// basic variable at row r with pivot element alpha = (B⁻¹a_q)_r.
// It computes the pivot row ρ = B⁻ᵀe_r and sweeps the nonbasic
// columns once.
func (s *solver) updatePricingAfterPivot(q, r int, alpha float64, leaving int) {
	for i := range s.rho {
		s.rho[i] = 0
	}
	s.rho[r] = 1
	s.bas.btranUnit(s.rho, r)

	dq := s.ddw[2*q]
	wq := s.ddw[2*q+1]
	ratio := dq / alpha
	gamma := wq / (alpha * alpha)
	maxW := 1.0
	if s.csrOK {
		// Accumulate α_r = ρᵀA by rows with nonzero ρ. Per column the
		// contributions arrive in ascending row order — the order
		// ColDot adds them — and skipping ρ_i = 0 rows only skips
		// adding ±0, so each accumulated α_rj is the ColDot float
		// (up to the sign of an unobservable zero).
		arj := s.arj
		s.stampGen++
		gen := s.stampGen
		tl := s.touched[:0]
		for i := 0; i < s.m; i++ {
			ri := s.rho[i]
			if ri == 0 {
				continue
			}
			for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
				c := s.rowCol[k]
				arj[c] += s.rowVal[k] * ri
				if s.stamp[c] != gen {
					s.stamp[c] = gen
					tl = append(tl, c)
				}
			}
			c := int32(s.n + i)
			arj[c] += s.artSign[i] * ri
			if s.stamp[c] != gen {
				s.stamp[c] = gen
				tl = append(tl, c)
			}
		}
		s.touched = tl
		// Apply the reduced-cost / weight deltas over the touched
		// columns only (per-column updates are independent of order),
		// clearing the accumulator as we go.
		for _, c := range tl {
			j := int(c)
			v := arj[j]
			arj[j] = 0
			if v == 0 || j == q || s.nbPos[j] < 0 {
				continue
			}
			jj := 2 * j
			s.ddw[jj] -= ratio * v
			if w := v * v * gamma; w > s.ddw[jj+1] {
				s.ddw[jj+1] = w
			}
		}
		// Sweep the nonbasic list for the Devex weight max and the next
		// price scan, fused: eligibility and the score are pure
		// functions of the final d/dw/state, max is order-free, and the
		// explicit smallest-index tie-break reproduces the ascending
		// scan's first-argmax choice.
		best, bestScore, bestDir := -1, 0.0, 0.0
		tol := s.opt.Tol
		s.prefTested += int64(len(s.nbList) - 1) // every column but q
		for _, j32 := range s.nbList {
			j := int(j32)
			if j == q {
				continue
			}
			jj := 2 * j
			dj := s.ddw[jj]
			wj := s.ddw[jj+1]
			if wj > maxW {
				maxW = wj
			}
			// Devex weights never drop below 1, so score ≤ dj²: a
			// numerator strictly under the incumbent can neither beat
			// it nor tie it, and eligibility need not be checked.
			if a := dj * dj; a >= bestScore {
				s.prefPassed++
				// eligible(j), inlined with the fixed-bound cache.
				var dr float64
				switch s.state[j] {
				case stLower:
					if dj < -tol && !s.fixed[j] {
						dr = 1
					}
				case stUpper:
					if dj > tol {
						dr = -1
					}
				case stFree:
					if dj < -tol {
						dr = 1
					} else if dj > tol {
						dr = -1
					}
				}
				if dr != 0 {
					score := a / wj
					if score > bestScore || (score == bestScore && j < best) {
						best, bestScore, bestDir = j, score, dr
					}
				}
			}
		}
		s.cacheJ, s.cacheScore, s.cacheDir = best, bestScore, bestDir
		s.cacheOK = true
	} else {
		for j := 0; j < s.total; j++ {
			if s.state[j] == stBasic || j == q {
				continue
			}
			arj := s.colDot(j, s.rho)
			if arj != 0 {
				s.ddw[2*j] -= ratio * arj
				if w := arj * arj * gamma; w > s.ddw[2*j+1] {
					s.ddw[2*j+1] = w
				}
			}
			if s.ddw[2*j+1] > maxW {
				maxW = s.ddw[2*j+1]
			}
		}
	}
	// The leaving variable becomes nonbasic with reduced cost −d_q/α.
	s.ddw[2*leaving] = -ratio
	s.ddw[2*leaving+1] = math.Max(gamma, 1)
	s.ddw[2*q] = 0
	if maxW > 1e10 {
		s.resetDevex()
	}
}

// perturbNoise derives a reproducible pseudo-random factor in [0.5, 1)
// and a sign bit for variable j in perturbation round seq (splitmix64
// finalizer: no global state, identical across runs and platforms).
func perturbNoise(j, seq int) (float64, bool) {
	z := (uint64(j)+1)*0x9E3779B97F4A7C15 + uint64(seq)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return 0.5 + float64(z>>11)/float64(1<<54), z&1 == 1
}

// perturb applies a bounded deterministic cost perturbation to break a
// degenerate stall: each non-fixed variable's cost moves by
// ε_j = mag·(1+|c_j|)·ψ_j, signed to keep the current point
// near-optimal (at-lower-bound reduced costs pushed up, at-upper
// pushed down), with mag doubling on each escalation. The true costs
// are saved in savedCost; unperturb restores them, and every terminal
// status is re-verified against them before being reported.
func (s *solver) perturb() {
	if s.perturbed {
		copy(s.cost, s.savedCost) // escalate from the true costs
	} else {
		if s.savedCost == nil {
			s.savedCost = make([]float64, len(s.cost))
		}
		copy(s.savedCost, s.cost)
		s.perturbed = true
	}
	s.nPerturb++
	esc := s.nPerturb - 1
	if esc > 6 {
		esc = 6
	}
	mag := 100 * s.opt.Tol * float64(int(1)<<uint(esc))
	for j := 0; j < s.total; j++ {
		if s.lb(j) == s.ub(j) {
			continue // fixed variables cannot move; perturbing them is noise
		}
		psi, flip := perturbNoise(j, s.nPerturb)
		e := mag * (1 + math.Abs(s.cost[j])) * psi
		switch s.state[j] {
		case stUpper:
			e = -e
		case stBasic, stFree:
			if flip {
				e = -e
			}
		}
		s.cost[j] += e
	}
	s.bland = false
	s.degenStreak = 0
	s.recomputeReducedCosts()
	s.resetDevex()
}

// unperturb restores the true phase costs after a perturbation;
// reprice refreshes the reduced costs for callers that keep iterating.
func (s *solver) unperturb(reprice bool) {
	if !s.perturbed {
		return
	}
	copy(s.cost, s.savedCost)
	s.perturbed = false
	if reprice {
		s.recomputeReducedCosts()
	}
}

// ratioResult describes the outcome of the ratio test.
type ratioResult struct {
	t         float64 // step length
	leaveRow  int     // basis row leaving, or -1 for a bound flip
	leaveAt   int8    // stLower or stUpper for the leaving variable
	unbounded bool
}

// ratioTest computes the maximum step for entering variable j moving
// in direction dir with FTran'd column w (nonzeros listed in wIdx).
func (s *solver) ratioTest(j int, dir float64, w []float64, wIdx []int) ratioResult {
	tol := s.opt.Tol
	pivTol := s.minPiv
	if s.perturbed && pivTol < 1e-8 {
		// Harris tightening under anti-degeneracy perturbation: refuse
		// the tiny pivots that drive bases singular during stalls. A
		// column rejected wholesale reports unbounded; iterate then
		// unperturbs (dropping the tightening) and re-prices, so no
		// genuine pivot is ever lost.
		pivTol = 1e-8
	}
	stepLimit := math.Inf(1)
	if l, u := s.lb(j), s.ub(j); !math.IsInf(l, -1) && !math.IsInf(u, 1) {
		stepLimit = u - l
	}

	// Pass 1: relaxed minimum ratio (bounds expanded by tol).
	tMax := stepLimit
	for _, i := range wIdx {
		wi := w[i]
		if math.Abs(wi) <= pivTol {
			continue
		}
		delta := -dir * wi // d(xB_i)/dt
		bi := s.basisOf[i]
		if delta < 0 {
			if l := s.lb(bi); !math.IsInf(l, -1) {
				if t := (s.xB[i] - (l - tol)) / -delta; t < tMax {
					tMax = t
				}
			}
		} else {
			if u := s.ub(bi); !math.IsInf(u, 1) {
				if t := ((u + tol) - s.xB[i]) / delta; t < tMax {
					tMax = t
				}
			}
		}
	}
	if math.IsInf(tMax, 1) {
		return ratioResult{unbounded: true}
	}

	// Pass 2: among rows whose exact ratio is ≤ tMax, pick the largest
	// pivot magnitude for numerical stability.
	bestRow := -1
	var bestPiv, bestT float64
	var bestAt int8
	for _, i := range wIdx {
		wi := w[i]
		if math.Abs(wi) <= pivTol {
			continue
		}
		delta := -dir * wi
		bi := s.basisOf[i]
		var t float64
		var at int8
		if delta < 0 {
			l := s.lb(bi)
			if math.IsInf(l, -1) {
				continue
			}
			t = (s.xB[i] - l) / -delta
			at = stLower
		} else {
			u := s.ub(bi)
			if math.IsInf(u, 1) {
				continue
			}
			t = (u - s.xB[i]) / delta
			at = stUpper
		}
		if t <= tMax {
			if p := math.Abs(wi); p > bestPiv {
				bestPiv, bestRow, bestT, bestAt = p, i, t, at
			}
		}
	}
	if bestRow < 0 || stepLimit <= bestT {
		// Bound flip: the entering variable runs to its other bound first.
		return ratioResult{t: stepLimit, leaveRow: -1}
	}
	if bestT < 0 {
		bestT = 0
	}
	return ratioResult{t: bestT, leaveRow: bestRow, leaveAt: bestAt}
}

// iterate runs simplex iterations for the current cost vector until
// optimality, unboundedness, or the iteration limit. Reduced costs are
// maintained incrementally (updated from the pivot row each basis
// change) and refreshed from scratch after refactorizations; Devex
// weights guide the entering choice.
func (s *solver) iterate(phase int) (Status, error) {
	s.phase = phase
	degenLimit := 2*s.m + 200
	// Budget of cumulative degenerate pivots between perturbations:
	// generous enough that small LPs never perturb (their historical
	// pivot sequences stay untouched), tight enough that a 25k-row
	// basis perturbs long before burning tens of thousands of pivots.
	perturbLimit := 500 + s.m/8
	s.recomputeReducedCosts()
	s.resetDevex()
	verifiedOptimal := false
	for {
		if s.iters >= s.opt.MaxIter {
			s.unperturb(false)
			return IterLimit, nil
		}
		// Poll cancellation between pivots. The stride keeps the check
		// off the hot path; an uncancelled context never changes the
		// pivot sequence.
		if s.iters%cancelCheckEvery == 0 {
			if err := s.ctx.Err(); err != nil {
				s.unperturb(false)
				return 0, err
			}
		}
		j, dir := s.price()
		if j < 0 {
			if s.perturbed {
				// Optimal for the perturbed costs only: restore the true
				// costs and re-verify (renewed stalling may perturb again).
				s.unperturb(true)
				verifiedOptimal = true
				continue
			}
			if !verifiedOptimal {
				// Guard against reduced-cost drift: refresh and re-price
				// once before declaring optimality.
				s.recomputeReducedCosts()
				verifiedOptimal = true
				continue
			}
			s.bland = false
			return Optimal, nil
		}
		verifiedOptimal = false

		// FTran the entering column.
		for i := range s.w {
			s.w[i] = 0
		}
		s.scatterCol(j, s.w)
		// The scattered column's row index list is its support, so the
		// LU solve can skip pattern discovery.
		if j < s.n {
			idx, _ := s.prob.A.Col(j)
			s.bas.ftranSupp(s.w, idx)
		} else {
			s.suppOne[0] = j - s.n
			s.bas.ftranSupp(s.w, s.suppOne[:])
		}
		s.wIdx = s.wIdx[:0]
		for i, v := range s.w {
			if v != 0 {
				s.wIdx = append(s.wIdx, i)
			}
		}

		// Exact reduced cost of the entering column (c_j − c_B·B⁻¹a_j):
		// cheap given the FTran'd column, and it corrects any drift in
		// the stored value before we commit to the pivot.
		dq := s.cost[j]
		for _, i := range s.wIdx {
			dq -= s.cost[s.basisOf[i]] * s.w[i]
		}
		s.ddw[2*j] = dq
		if _, ok := s.eligible(j); !ok {
			// The stored reduced cost was stale; the entry is now
			// corrected, so re-price.
			continue
		}

		res := s.ratioTest(j, dir, s.w, s.wIdx)
		if res.unbounded {
			if s.perturbed {
				// The ray is eligible only under the perturbed costs, or
				// the tightened ratio test rejected every pivot: restore
				// the true costs and re-price before believing it.
				s.unperturb(true)
				verifiedOptimal = false
				continue
			}
			if phase == 1 {
				// Phase-1 objective is bounded below by zero; an
				// unbounded ray indicates numerical trouble.
				return IterLimit, fmt.Errorf("simplex: phase 1 claims unbounded (numerical failure)")
			}
			return Unbounded, nil
		}
		s.iters++

		if res.t <= s.opt.Tol {
			s.nDegen++
			s.degenStreak++
			if s.degenStreak > degenLimit && !s.bland {
				s.logf("degenerate streak %d at iter %d: enabling Bland's rule", s.degenStreak, s.iters)
				s.bland = true
			}
			// Stalling on large LPs is diffuse — thousands of short
			// degenerate bursts interleaved with tiny real steps — so
			// the trigger is cumulative degenerate work since the last
			// perturbation, not consecutive-streak length.
			if s.nDegen-s.degenAtPerturb > perturbLimit && s.nPerturb < maxPerturb {
				s.logf("%d degenerate pivots since last perturbation at iter %d: perturbing costs (perturbation %d)",
					s.nDegen-s.degenAtPerturb, s.iters, s.nPerturb+1)
				s.perturb()
				s.degenAtPerturb = s.nDegen
				continue // re-price under the perturbed costs
			}
		} else {
			s.degenStreak = 0
			if s.bland {
				s.bland = false
			}
		}

		if res.leaveRow < 0 {
			// Bound flip: no basis change, reduced costs unchanged.
			t := res.t
			for _, i := range s.wIdx {
				s.xB[i] -= dir * s.w[i] * t
			}
			if s.state[j] == stLower {
				s.state[j] = stUpper
			} else {
				s.state[j] = stLower
			}
			continue
		}

		r := res.leaveRow
		if math.Abs(s.w[r]) < 1e-9 && s.bas.etaCount() > 0 {
			// Pivot too small on a stale factorization: refresh and retry.
			if err := s.refactor(); err != nil {
				return IterLimit, err
			}
			s.recomputeReducedCosts()
			s.iters-- // retry does not consume budget
			continue
		}
		leaving := s.basisOf[r]

		// Maintain pricing state across the basis change (needs the
		// pre-pivot factorization, so this comes before pushEta).
		s.updatePricingAfterPivot(j, r, s.w[r], leaving)

		// Apply the step to the basic values.
		t := res.t
		for _, i := range s.wIdx {
			s.xB[i] -= dir * s.w[i] * t
		}
		// Entering variable's new value.
		var enterVal float64
		switch s.state[j] {
		case stLower:
			enterVal = s.lb(j) + t
		case stUpper:
			enterVal = s.ub(j) - t
		default: // free
			enterVal = dir * t
		}
		s.state[leaving] = res.leaveAt
		if s.lb(leaving) == s.ub(leaving) {
			s.state[leaving] = stLower
		}
		s.inRow[leaving] = -1
		s.basisOf[r] = j
		s.inRow[j] = r
		s.state[j] = stBasic
		s.xB[r] = enterVal

		// Maintain the nonbasic list across the swap, and let the
		// leaving column (absent from the pricing sweep) contend for
		// the cached entering candidate under the same tie-break.
		pq := s.nbPos[j]
		lastPos := int32(len(s.nbList) - 1)
		lj := s.nbList[lastPos]
		s.nbList[pq] = lj
		s.nbPos[lj] = pq
		s.nbList = s.nbList[:lastPos]
		s.nbPos[j] = -1
		s.nbPos[leaving] = int32(len(s.nbList))
		s.nbList = append(s.nbList, int32(leaving))
		if s.cacheOK {
			if dr, ok := s.eligible(leaving); ok {
				dl := s.ddw[2*leaving]
				score := dl * dl / s.ddw[2*leaving+1]
				if score > s.cacheScore || (score == s.cacheScore && leaving < s.cacheJ) {
					s.cacheJ, s.cacheScore, s.cacheDir = leaving, score, dr
				}
			}
			s.cacheOK = s.cacheJ >= 0
		}

		s.bas.pushEtaIdx(r, s.w, s.wIdx, 1e-12)
		s.pivots++
		if s.pivots >= s.opt.RefactorEvery || s.bas.etaNnz() > 40*s.m {
			if err := s.refactor(); err != nil {
				return IterLimit, err
			}
			s.recomputeReducedCosts()
		}
	}
}

// finish assembles the Solution, refreshing the factorization so the
// reported primal/dual values are clean.
func (s *solver) finish(status Status) *Solution {
	if err := s.refactor(); err != nil {
		s.logf("final refactor failed: %v", err)
	}
	sol := &Solution{
		Status:     status,
		X:          make([]float64, s.n),
		Y:          make([]float64, s.m),
		D:          make([]float64, s.n),
		Iterations: s.iters,
		WarmStart:  s.warm,
	}
	for j := 0; j < s.n; j++ {
		v := s.basicValueOf(j)
		// Snap within bounds to shed roundoff.
		if l := s.prob.L[j]; v < l {
			if l-v < 1e-6 {
				v = l
			}
		}
		if u := s.prob.U[j]; v > u {
			if v-u < 1e-6 {
				v = u
			}
		}
		sol.X[j] = v
		sol.Obj += s.prob.C[j] * v
	}
	s.computeDuals()
	copy(sol.Y, s.y)
	for j := 0; j < s.n; j++ {
		sol.D[j] = s.prob.C[j] - s.prob.A.ColDot(j, s.y)
	}
	if status == Optimal {
		exportable := true
		for _, j := range s.basisOf {
			if j >= s.n {
				exportable = false
				break
			}
		}
		if exportable {
			wb := &Basis{M: s.m, N: s.n, State: make([]int8, s.n)}
			copy(wb.State, s.state[:s.n])
			sol.Basis = wb
		}
	}
	return sol
}
