// Package simplex implements a bounded-variable revised primal simplex
// method for linear programs in standard computational form:
//
//	minimize    c·x
//	subject to  A·x = b,   l ≤ x ≤ u
//
// with infinite bounds allowed. It is the replacement for the
// commercial LP solver (Gurobi) used in the paper's experiments: it
// produces optimal basic solutions together with dual values and
// reduced costs, so optimality can be certified externally through the
// KKT conditions.
//
// The implementation uses the classical two-phase method with
// artificial variables, a sparse LU basis factorization
// (internal/lu) refreshed periodically, product-form eta updates in
// between, rotating partial pricing with a Bland's-rule fallback for
// anti-cycling, and a Harris-style two-pass ratio test.
package simplex

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lu"
	"repro/internal/sparse"
)

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means phase 1 terminated with positive infeasibility.
	Infeasible
	// Unbounded means the objective is unbounded below.
	Unbounded
	// IterLimit means the iteration budget was exhausted.
	IterLimit
)

// String renders the status for logs and errors.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Problem is a linear program in standard computational form.
type Problem struct {
	A *sparse.Matrix // m×n constraint matrix
	B []float64      // length m right-hand side
	C []float64      // length n objective
	L []float64      // length n lower bounds (may be -Inf)
	U []float64      // length n upper bounds (may be +Inf)
}

// Validate checks dimensional consistency and bound sanity.
func (p *Problem) Validate() error {
	if p.A == nil {
		return errors.New("simplex: nil constraint matrix")
	}
	m, n := p.A.Rows, p.A.Cols
	if len(p.B) != m {
		return fmt.Errorf("simplex: len(B)=%d, want %d", len(p.B), m)
	}
	if len(p.C) != n || len(p.L) != n || len(p.U) != n {
		return fmt.Errorf("simplex: C/L/U lengths (%d,%d,%d), want %d",
			len(p.C), len(p.L), len(p.U), n)
	}
	for j := 0; j < n; j++ {
		if p.L[j] > p.U[j] {
			return fmt.Errorf("simplex: variable %d has L=%g > U=%g", j, p.L[j], p.U[j])
		}
		if math.IsNaN(p.L[j]) || math.IsNaN(p.U[j]) || math.IsNaN(p.C[j]) {
			return fmt.Errorf("simplex: variable %d has NaN data", j)
		}
	}
	return nil
}

// Options tune the solver. The zero value selects sensible defaults.
type Options struct {
	// MaxIter bounds total simplex iterations (both phases).
	// Default: 200*(m+n)+10000.
	MaxIter int
	// Tol is the primal feasibility / dual optimality tolerance.
	// Default 1e-7.
	Tol float64
	// RefactorEvery is the pivot count between basis refactorizations.
	// Default 120.
	RefactorEvery int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults(m, n int) Options {
	if o.MaxIter == 0 {
		o.MaxIter = 200*(m+n) + 10000
	}
	if o.Tol == 0 {
		o.Tol = 1e-7
	}
	if o.RefactorEvery == 0 {
		o.RefactorEvery = 120
	}
	return o
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	Obj        float64   // c·x at termination
	X          []float64 // length n primal values
	Y          []float64 // length m duals (row multipliers)
	D          []float64 // length n reduced costs c − Aᵀy
	Iterations int       // total simplex iterations (both phases)
}

// variable states
const (
	stBasic int8 = iota
	stLower
	stUpper
	stFree // nonbasic at value 0, both bounds infinite
)

type solver struct {
	prob Problem
	opt  Options

	m, n  int // rows, structural columns
	total int // n + m (artificials appended)

	cost    []float64 // current phase costs, length total
	state   []int8    // length total
	basisOf []int     // per row: variable index basic there
	inRow   []int     // per variable: row if basic, else -1
	xB      []float64 // length m, values of basic variables
	artSign []float64 // length m, artificial column signs (±1)

	bas *basis

	// dense work vectors, length m
	y   []float64
	w   []float64
	v2  []float64
	rho []float64 // pivot row B⁻ᵀe_r for Devex / reduced-cost updates

	wIdx []int // nonzero positions of w after ftran

	// Reduced costs maintained incrementally across pivots and Devex
	// reference weights, both length total.
	d  []float64
	dw []float64

	bland       bool    // Bland's rule anti-cycling mode
	artFixed    bool    // artificial upper bounds pinned to 0 (phase 2)
	minPiv      float64 // smallest acceptable ratio-test pivot magnitude
	degenStreak int
	pivots      int // pivots since last refactorization
	iters       int
}

// Solve minimizes the problem. An error is returned only for malformed
// input or unrecoverable numerical failure; infeasibility, unboundedness
// and iteration exhaustion are reported through Solution.Status.
//
// A solve that drives the basis numerically singular (rare: a chain of
// small ratio-test pivots) is retried once with a stricter pivot
// threshold and more frequent refactorization before the error is
// surfaced.
func Solve(p *Problem, opt Options) (*Solution, error) {
	sol, err := solveOnce(p, opt, 1e-9)
	if err != nil && errors.Is(err, lu.ErrSingular) {
		strict := opt
		if strict.RefactorEvery == 0 || strict.RefactorEvery > 40 {
			strict.RefactorEvery = 40
		}
		return solveOnce(p, strict, 1e-6)
	}
	return sol, err
}

func solveOnce(p *Problem, opt Options, minPiv float64) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, n := p.A.Rows, p.A.Cols
	s := &solver{
		prob:    *p,
		opt:     opt.withDefaults(m, n),
		m:       m,
		n:       n,
		total:   n + m,
		cost:    make([]float64, n+m),
		state:   make([]int8, n+m),
		basisOf: make([]int, m),
		inRow:   make([]int, n+m),
		xB:      make([]float64, m),
		artSign: make([]float64, m),
		bas:     newBasis(m),
		y:       make([]float64, m),
		w:       make([]float64, m),
		v2:      make([]float64, m),
		rho:     make([]float64, m),
		d:       make([]float64, n+m),
		dw:      make([]float64, n+m),
		wIdx:    make([]int, 0, m),
		minPiv:  minPiv,
	}
	return s.run()
}

// value returns the current value of a nonbasic variable.
func (s *solver) value(j int) float64 {
	switch s.state[j] {
	case stLower:
		return s.lb(j)
	case stUpper:
		return s.ub(j)
	default:
		return 0
	}
}

func (s *solver) lb(j int) float64 {
	if j < s.n {
		return s.prob.L[j]
	}
	return 0 // artificial
}

func (s *solver) ub(j int) float64 {
	if j < s.n {
		return s.prob.U[j]
	}
	if s.artFixed {
		return 0
	}
	return math.Inf(1)
}

// scatterCol writes column j of the extended matrix [A | artificials]
// into dense w and records the nonzero index list in wIdx.
func (s *solver) scatterCol(j int, w []float64) {
	if j < s.n {
		idx, val := s.prob.A.Col(j)
		for k, i := range idx {
			w[i] += val[k]
		}
	} else {
		w[j-s.n] += s.artSign[j-s.n]
	}
}

// colDot returns column j of the extended matrix dotted with y.
func (s *solver) colDot(j int, y []float64) float64 {
	if j < s.n {
		return s.prob.A.ColDot(j, y)
	}
	return s.artSign[j-s.n] * y[j-s.n]
}

func (s *solver) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

func (s *solver) run() (*Solution, error) {
	s.initBasis()

	// Phase 1: minimize the sum of artificial variables.
	for i := 0; i < s.m; i++ {
		s.cost[s.n+i] = 1
	}
	status, err := s.iterate(1)
	if err != nil {
		return nil, err
	}
	if status == IterLimit {
		return s.finish(IterLimit), nil
	}
	infeas := 0.0
	for i := 0; i < s.m; i++ {
		if v := s.basicValueOf(s.n + i); v > 0 {
			infeas += v
		}
	}
	scale := 1 + sparse.InfNorm(s.prob.B)
	if infeas > s.opt.Tol*scale*10 {
		s.logf("phase 1 infeasible: residual %g", infeas)
		return s.finish(Infeasible), nil
	}

	// Phase 2: real costs; artificials pinned to zero.
	s.artFixed = true
	for i := 0; i < s.m; i++ {
		s.cost[s.n+i] = 0
		j := s.n + i
		if s.state[j] == stUpper || s.state[j] == stFree {
			s.state[j] = stLower
		}
	}
	copy(s.cost[:s.n], s.prob.C)
	s.bland = false
	s.degenStreak = 0
	status, err = s.iterate(2)
	if err != nil {
		return nil, err
	}
	return s.finish(status), nil
}

// basicValueOf returns the value of variable j if basic, else its
// nonbasic value.
func (s *solver) basicValueOf(j int) float64 {
	if r := s.inRow[j]; r >= 0 {
		return s.xB[r]
	}
	return s.value(j)
}

// initBasis places structural variables on their nearest finite bound
// (or zero for free variables) and installs an artificial basis that
// absorbs the residual.
func (s *solver) initBasis() {
	for j := 0; j < s.n; j++ {
		s.inRow[j] = -1
		l, u := s.prob.L[j], s.prob.U[j]
		switch {
		case math.IsInf(l, -1) && math.IsInf(u, 1):
			s.state[j] = stFree
		case math.IsInf(l, -1):
			s.state[j] = stUpper
		case math.IsInf(u, 1):
			s.state[j] = stLower
		case math.Abs(l) <= math.Abs(u):
			s.state[j] = stLower
		default:
			s.state[j] = stUpper
		}
	}
	// Residual r = b − A·x_N.
	r := s.v2
	copy(r, s.prob.B)
	for j := 0; j < s.n; j++ {
		if v := s.value(j); v != 0 {
			idx, val := s.prob.A.Col(j)
			for k, i := range idx {
				r[i] -= val[k] * v
			}
		}
	}
	for i := 0; i < s.m; i++ {
		sign := 1.0
		if r[i] < 0 {
			sign = -1
		}
		s.artSign[i] = sign
		j := s.n + i
		s.state[j] = stBasic
		s.inRow[j] = i
		s.basisOf[i] = j
		s.xB[i] = sign * r[i] // = |r_i| ≥ 0
	}
	if err := s.refactor(); err != nil {
		// The artificial basis is ±identity; this cannot fail.
		panic(err)
	}
}

// refactor rebuilds the LU factorization from the current basis and
// recomputes xB from scratch to shed accumulated roundoff.
func (s *solver) refactor() error {
	bld := sparse.NewBuilder(s.m, s.m)
	for rpos := 0; rpos < s.m; rpos++ {
		j := s.basisOf[rpos]
		if j < s.n {
			idx, val := s.prob.A.Col(j)
			for k, i := range idx {
				bld.Add(i, rpos, val[k])
			}
		} else {
			bld.Add(j-s.n, rpos, s.artSign[j-s.n])
		}
	}
	if err := s.bas.refactor(bld.Build()); err != nil {
		return err
	}
	// xB = B⁻¹ (b − Σ_nonbasic a_j v_j)
	r := s.v2
	copy(r, s.prob.B)
	for j := 0; j < s.total; j++ {
		if s.state[j] == stBasic {
			continue
		}
		if v := s.value(j); v != 0 {
			if j < s.n {
				idx, val := s.prob.A.Col(j)
				for k, i := range idx {
					r[i] -= val[k] * v
				}
			} else {
				r[j-s.n] -= s.artSign[j-s.n] * v
			}
		}
	}
	s.bas.ftran(r)
	copy(s.xB, r)
	for i := range r {
		r[i] = 0
	}
	s.pivots = 0
	return nil
}

// computeDuals fills s.y with B⁻ᵀ c_B.
func (s *solver) computeDuals() {
	for i := 0; i < s.m; i++ {
		s.y[i] = s.cost[s.basisOf[i]]
	}
	s.bas.btran(s.y)
}

// recomputeReducedCosts refreshes the incrementally-maintained reduced
// costs from scratch (one BTran plus one pass over the matrix). Called
// at phase starts and after refactorizations to shed drift.
func (s *solver) recomputeReducedCosts() {
	s.computeDuals()
	for j := 0; j < s.total; j++ {
		if s.state[j] == stBasic {
			s.d[j] = 0
			continue
		}
		s.d[j] = s.cost[j] - s.colDot(j, s.y)
	}
}

// resetDevex restores the Devex reference framework.
func (s *solver) resetDevex() {
	for j := range s.dw {
		s.dw[j] = 1
	}
}

// eligible reports whether nonbasic variable j can improve the
// objective, and in which direction (+1 increase, −1 decrease).
func (s *solver) eligible(j int) (dir float64, ok bool) {
	d := s.d[j]
	tol := s.opt.Tol
	switch s.state[j] {
	case stLower:
		if s.lb(j) == s.ub(j) {
			return 0, false // fixed
		}
		if d < -tol {
			return 1, true
		}
	case stUpper:
		if d > tol {
			return -1, true
		}
	case stFree:
		if d < -tol {
			return 1, true
		}
		if d > tol {
			return -1, true
		}
	}
	return 0, false
}

// price selects an entering variable using Devex pricing (d_j²/w_j),
// or Bland's smallest-index rule in anti-cycling mode. Returns -1 when
// the basis is optimal for the current costs.
func (s *solver) price() (jEnter int, dir float64) {
	if s.bland {
		for j := 0; j < s.total; j++ {
			if s.state[j] == stBasic {
				continue
			}
			if dr, ok := s.eligible(j); ok {
				return j, dr
			}
		}
		return -1, 0
	}
	best, bestScore, bestDir := -1, 0.0, 0.0
	for j := 0; j < s.total; j++ {
		if s.state[j] == stBasic {
			continue
		}
		dr, ok := s.eligible(j)
		if !ok {
			continue
		}
		dj := s.d[j]
		score := dj * dj / s.dw[j]
		if score > bestScore {
			best, bestScore, bestDir = j, score, dr
		}
	}
	return best, bestDir
}

// updatePricingAfterPivot maintains the reduced costs and Devex
// weights across a basis change: entering variable q replaced the
// basic variable at row r with pivot element alpha = (B⁻¹a_q)_r.
// It computes the pivot row ρ = B⁻ᵀe_r and sweeps the nonbasic
// columns once.
func (s *solver) updatePricingAfterPivot(q, r int, alpha float64, leaving int) {
	for i := range s.rho {
		s.rho[i] = 0
	}
	s.rho[r] = 1
	s.bas.btran(s.rho)

	dq := s.d[q]
	wq := s.dw[q]
	ratio := dq / alpha
	gamma := wq / (alpha * alpha)
	maxW := 1.0
	for j := 0; j < s.total; j++ {
		if s.state[j] == stBasic || j == q {
			continue
		}
		arj := s.colDot(j, s.rho)
		if arj != 0 {
			s.d[j] -= ratio * arj
			if w := arj * arj * gamma; w > s.dw[j] {
				s.dw[j] = w
			}
		}
		if s.dw[j] > maxW {
			maxW = s.dw[j]
		}
	}
	// The leaving variable becomes nonbasic with reduced cost −d_q/α.
	s.d[leaving] = -ratio
	s.dw[leaving] = math.Max(gamma, 1)
	s.d[q] = 0
	if maxW > 1e10 {
		s.resetDevex()
	}
}

// ratioResult describes the outcome of the ratio test.
type ratioResult struct {
	t         float64 // step length
	leaveRow  int     // basis row leaving, or -1 for a bound flip
	leaveAt   int8    // stLower or stUpper for the leaving variable
	unbounded bool
}

// ratioTest computes the maximum step for entering variable j moving
// in direction dir with FTran'd column w (nonzeros listed in wIdx).
func (s *solver) ratioTest(j int, dir float64, w []float64, wIdx []int) ratioResult {
	tol := s.opt.Tol
	pivTol := s.minPiv
	stepLimit := math.Inf(1)
	if l, u := s.lb(j), s.ub(j); !math.IsInf(l, -1) && !math.IsInf(u, 1) {
		stepLimit = u - l
	}

	// Pass 1: relaxed minimum ratio (bounds expanded by tol).
	tMax := stepLimit
	for _, i := range wIdx {
		wi := w[i]
		if math.Abs(wi) <= pivTol {
			continue
		}
		delta := -dir * wi // d(xB_i)/dt
		bi := s.basisOf[i]
		if delta < 0 {
			if l := s.lb(bi); !math.IsInf(l, -1) {
				if t := (s.xB[i] - (l - tol)) / -delta; t < tMax {
					tMax = t
				}
			}
		} else {
			if u := s.ub(bi); !math.IsInf(u, 1) {
				if t := ((u + tol) - s.xB[i]) / delta; t < tMax {
					tMax = t
				}
			}
		}
	}
	if math.IsInf(tMax, 1) {
		return ratioResult{unbounded: true}
	}

	// Pass 2: among rows whose exact ratio is ≤ tMax, pick the largest
	// pivot magnitude for numerical stability.
	bestRow := -1
	var bestPiv, bestT float64
	var bestAt int8
	for _, i := range wIdx {
		wi := w[i]
		if math.Abs(wi) <= pivTol {
			continue
		}
		delta := -dir * wi
		bi := s.basisOf[i]
		var t float64
		var at int8
		if delta < 0 {
			l := s.lb(bi)
			if math.IsInf(l, -1) {
				continue
			}
			t = (s.xB[i] - l) / -delta
			at = stLower
		} else {
			u := s.ub(bi)
			if math.IsInf(u, 1) {
				continue
			}
			t = (u - s.xB[i]) / delta
			at = stUpper
		}
		if t <= tMax {
			if p := math.Abs(wi); p > bestPiv {
				bestPiv, bestRow, bestT, bestAt = p, i, t, at
			}
		}
	}
	if bestRow < 0 || stepLimit <= bestT {
		// Bound flip: the entering variable runs to its other bound first.
		return ratioResult{t: stepLimit, leaveRow: -1}
	}
	if bestT < 0 {
		bestT = 0
	}
	return ratioResult{t: bestT, leaveRow: bestRow, leaveAt: bestAt}
}

// iterate runs simplex iterations for the current cost vector until
// optimality, unboundedness, or the iteration limit. Reduced costs are
// maintained incrementally (updated from the pivot row each basis
// change) and refreshed from scratch after refactorizations; Devex
// weights guide the entering choice.
func (s *solver) iterate(phase int) (Status, error) {
	degenLimit := 2*s.m + 200
	s.recomputeReducedCosts()
	s.resetDevex()
	verifiedOptimal := false
	for {
		if s.iters >= s.opt.MaxIter {
			return IterLimit, nil
		}
		j, dir := s.price()
		if j < 0 {
			if !verifiedOptimal {
				// Guard against reduced-cost drift: refresh and re-price
				// once before declaring optimality.
				s.recomputeReducedCosts()
				verifiedOptimal = true
				continue
			}
			s.bland = false
			return Optimal, nil
		}
		verifiedOptimal = false

		// FTran the entering column.
		for i := range s.w {
			s.w[i] = 0
		}
		s.scatterCol(j, s.w)
		s.bas.ftran(s.w)
		s.wIdx = s.wIdx[:0]
		for i, v := range s.w {
			if v != 0 {
				s.wIdx = append(s.wIdx, i)
			}
		}

		// Exact reduced cost of the entering column (c_j − c_B·B⁻¹a_j):
		// cheap given the FTran'd column, and it corrects any drift in
		// the stored value before we commit to the pivot.
		dq := s.cost[j]
		for _, i := range s.wIdx {
			dq -= s.cost[s.basisOf[i]] * s.w[i]
		}
		s.d[j] = dq
		if _, ok := s.eligible(j); !ok {
			// The stored reduced cost was stale; the entry is now
			// corrected, so re-price.
			continue
		}

		res := s.ratioTest(j, dir, s.w, s.wIdx)
		if res.unbounded {
			if phase == 1 {
				// Phase-1 objective is bounded below by zero; an
				// unbounded ray indicates numerical trouble.
				return IterLimit, fmt.Errorf("simplex: phase 1 claims unbounded (numerical failure)")
			}
			return Unbounded, nil
		}
		s.iters++

		if res.t <= s.opt.Tol {
			s.degenStreak++
			if s.degenStreak > degenLimit && !s.bland {
				s.logf("degenerate streak %d at iter %d: enabling Bland's rule", s.degenStreak, s.iters)
				s.bland = true
			}
		} else {
			s.degenStreak = 0
			if s.bland {
				s.bland = false
			}
		}

		if res.leaveRow < 0 {
			// Bound flip: no basis change, reduced costs unchanged.
			t := res.t
			for _, i := range s.wIdx {
				s.xB[i] -= dir * s.w[i] * t
			}
			if s.state[j] == stLower {
				s.state[j] = stUpper
			} else {
				s.state[j] = stLower
			}
			continue
		}

		r := res.leaveRow
		if math.Abs(s.w[r]) < 1e-9 && s.bas.etaCount() > 0 {
			// Pivot too small on a stale factorization: refresh and retry.
			if err := s.refactor(); err != nil {
				return IterLimit, err
			}
			s.recomputeReducedCosts()
			s.iters-- // retry does not consume budget
			continue
		}
		leaving := s.basisOf[r]

		// Maintain pricing state across the basis change (needs the
		// pre-pivot factorization, so this comes before pushEta).
		s.updatePricingAfterPivot(j, r, s.w[r], leaving)

		// Apply the step to the basic values.
		t := res.t
		for _, i := range s.wIdx {
			s.xB[i] -= dir * s.w[i] * t
		}
		// Entering variable's new value.
		var enterVal float64
		switch s.state[j] {
		case stLower:
			enterVal = s.lb(j) + t
		case stUpper:
			enterVal = s.ub(j) - t
		default: // free
			enterVal = dir * t
		}
		s.state[leaving] = res.leaveAt
		if s.lb(leaving) == s.ub(leaving) {
			s.state[leaving] = stLower
		}
		s.inRow[leaving] = -1
		s.basisOf[r] = j
		s.inRow[j] = r
		s.state[j] = stBasic
		s.xB[r] = enterVal

		s.bas.pushEta(r, s.w, 1e-12)
		s.pivots++
		if s.pivots >= s.opt.RefactorEvery || s.bas.etaNnz() > 40*s.m {
			if err := s.refactor(); err != nil {
				return IterLimit, err
			}
			s.recomputeReducedCosts()
		}
	}
}

// finish assembles the Solution, refreshing the factorization so the
// reported primal/dual values are clean.
func (s *solver) finish(status Status) *Solution {
	if err := s.refactor(); err != nil {
		s.logf("final refactor failed: %v", err)
	}
	sol := &Solution{
		Status:     status,
		X:          make([]float64, s.n),
		Y:          make([]float64, s.m),
		D:          make([]float64, s.n),
		Iterations: s.iters,
	}
	for j := 0; j < s.n; j++ {
		v := s.basicValueOf(j)
		// Snap within bounds to shed roundoff.
		if l := s.prob.L[j]; v < l {
			if l-v < 1e-6 {
				v = l
			}
		}
		if u := s.prob.U[j]; v > u {
			if v-u < 1e-6 {
				v = u
			}
		}
		sol.X[j] = v
		sol.Obj += s.prob.C[j] * v
	}
	s.computeDuals()
	copy(sol.Y, s.y)
	for j := 0; j < s.n; j++ {
		sol.D[j] = s.prob.C[j] - s.prob.A.ColDot(j, s.y)
	}
	return sol
}
