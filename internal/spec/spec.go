// Package spec is the declarative front door to the repository: one
// Spec describes a complete experiment — network, workload,
// transmission model, and the algorithm to run (an offline engine
// scheduler or an online sim policy) — and Run executes it into a
// unified RunReport. SweepSpec crosses Spec axes (schedulers ×
// policies × topologies × workloads × loads × seeds × models) into a
// lazily-expanded grid whose cells stream back as they finish, so a
// 100k-cell sweep never materializes in memory.
//
// Specs are plain data: they round-trip through JSON byte-for-byte,
// which is what lets the same document drive the library (Run), the
// CLI (coflowsim -spec), and the HTTP service (coflowd POST /v1/run)
// to the same RunReport. Everything downstream of a Spec is
// deterministic in the Spec, so reports are cacheable by their spec.
//
// The legacy facades (ScheduleSinglePath/FreePath/MultiPath,
// ScheduleWith, Simulate in the root package) are thin wrappers over
// Run; new code should build a Spec.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/coflow"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Spec declares one experiment. The zero value is not runnable —
// exactly one of Scheduler (offline) or Policy (online) must be set —
// but every other field has a default: an FB workload of 8 coflows on
// SWAN in the single path model. Normalized fills the defaults in and
// validates every name against the live registries.
type Spec struct {
	// Topology selects the network: "swan" (default), "gscale", or an
	// internal/topo generator spec such as "fat-tree:k=4". It is only
	// consulted when the instance is generated — an inline Instance or
	// a Workload.File carries its own graph, and combining those with
	// an explicit Topology is rejected as conflicting.
	Topology string `json:"topology,omitempty"`
	// Workload parameterizes instance generation (or names a file).
	// Nil means the default generated workload.
	Workload *Workload `json:"workload,omitempty"`
	// Instance is a fully inline problem instance (graph included),
	// mutually exclusive with Workload and Topology. It is what lets
	// the in-memory facades compile down to a Spec without touching
	// disk.
	Instance *coflow.Instance `json:"instance,omitempty"`
	// Model is the transmission model: "single" (default), "free", or
	// "multi". Online runs require "single" — the model every ordering
	// policy shares.
	Model string `json:"model,omitempty"`
	// Scheduler names an offline engine scheduler ("stretch",
	// "heuristic", "terra", "jahanjou", "sincronia-greedy", …).
	// Exactly one of Scheduler and Policy must be set.
	Scheduler string `json:"scheduler,omitempty"`
	// Policy names an online sim policy ("fifo", "las", "fair",
	// "sincronia-online", "epoch:<scheduler>", …).
	Policy string `json:"policy,omitempty"`
	// Options tunes the run.
	Options Options `json:"options,omitempty"`
	// Validate replays the result through the independent
	// internal/validate oracle; any violation fails the run.
	Validate bool `json:"validate,omitempty"`
}

// Workload parameterizes the generated instance, mirroring
// workload.Config. Exactly one source applies: File when set,
// generation otherwise.
type Workload struct {
	// Kind is "bigbench", "tpcds", "tpch", or "fb" (default).
	Kind string `json:"kind,omitempty"`
	// Coflows is the generated coflow count (default 8).
	Coflows int `json:"coflows,omitempty"`
	// Seed drives generation (independent of Options.Seed, which
	// drives the algorithms).
	Seed int64 `json:"seed,omitempty"`
	// MeanInterarrival is the mean Poisson release gap in slots
	// (default 1.5 when Load is unset). Mutually exclusive with Load.
	MeanInterarrival float64 `json:"mean_interarrival,omitempty"`
	// Load is the arrival rate in coflows per slot — sugar for
	// MeanInterarrival = 1/Load, matching coflowsim -load.
	Load float64 `json:"load,omitempty"`
	// WeightMin/WeightMax bound the uniform weight draw (0,0 = the
	// paper's [1,100]; set both to 1 for unweighted runs).
	WeightMin float64 `json:"weight_min,omitempty"`
	WeightMax float64 `json:"weight_max,omitempty"`
	// File loads a coflow.Instance JSON written by WriteJSON /
	// coflowsim -gen instead of generating. The file's graph wins;
	// Topology must be empty.
	File string `json:"file,omitempty"`
}

// Options are the algorithm knobs, the union of the legacy
// SchedOptions and SimOptions. Offline runs ignore the sim-only
// fields and vice versa.
type Options struct {
	// MaxSlots caps the uniform time grid (0 = 48).
	MaxSlots int `json:"max_slots,omitempty"`
	// Trials is the randomized Stretch rounding count (0 = the
	// engine's 20 offline, the simulator's 5 online; negative
	// disables).
	Trials int `json:"trials,omitempty"`
	// Seed drives all algorithm randomness deterministically.
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds goroutines inside the run (≤ 0 = GOMAXPROCS).
	// Results never depend on the worker count.
	Workers int `json:"workers,omitempty"`
	// DisableCompaction turns off the Section 6.1 idle-slot pass.
	DisableCompaction bool `json:"disable_compaction,omitempty"`
	// Epoch is the online re-planning period (0 = arrivals only).
	Epoch float64 `json:"epoch,omitempty"`
	// Clairvoyant reveals every coflow to the online policy at t=0.
	Clairvoyant bool `json:"clairvoyant,omitempty"`
	// CheckEvery enables the simulator's from-scratch verification
	// every CheckEvery-th event (0 = off).
	CheckEvery int `json:"check_every,omitempty"`
	// MaxEvents caps the simulator event loop (0 = 1<<20).
	MaxEvents int `json:"max_events,omitempty"`
	// WarmLP carries the LP basis of each "epoch:<lp-scheduler>"
	// re-plan into the next one. Off by default: warm solves may
	// land on a different optimal vertex of a degenerate LP, so
	// traces are deterministic but not bit-identical to cold runs.
	WarmLP bool `json:"warm_lp,omitempty"`
	// PathsK is the candidate path count per flow for the multi path
	// model on generated instances (0 = 3).
	PathsK int `json:"paths_k,omitempty"`
	// Telemetry attaches an obs.Snapshot of the run's internal counters
	// (simplex pivots, sim events, per-stage timings, …) to the
	// RunReport. Purely observational: the scheduling results are
	// bit-identical with telemetry on or off.
	Telemetry bool `json:"telemetry,omitempty"`
}

// Defaults, shared with the legacy CLI paths so flags and Specs
// compile to identical runs.
const (
	DefaultTopology         = "swan"
	DefaultKind             = "fb"
	DefaultCoflows          = 8
	DefaultMeanInterarrival = 1.5
	DefaultPathsK           = 3
)

// Normalized returns a copy with every default filled in, after
// validating the spec: exactly one of Scheduler/Policy, registry
// membership of every name (errors list the registry, like coflowsim's
// upfront validation), model support, finite numeric fields, and
// conflict-free instance sourcing. The normalized spec is what Run
// executes and what reports echo, so two specs that normalize
// identically produce identical runs.
func (s Spec) Normalized() (Spec, error) {
	if s.Scheduler != "" && s.Policy != "" {
		return s, fmt.Errorf("spec: conflicting offline and online runs: scheduler %q and policy %q are mutually exclusive", s.Scheduler, s.Policy)
	}
	if s.Scheduler == "" && s.Policy == "" {
		return s, fmt.Errorf("spec: nothing to run: set scheduler (offline: %v) or policy (online: %v)", SchedulerNames(), sim.Names())
	}

	// Model.
	if s.Model == "" {
		s.Model = ModelSingle
	}
	s.Model = strings.ToLower(s.Model)
	mode, err := ParseModel(s.Model)
	if err != nil {
		return s, err
	}
	if s.Policy != "" && mode != coflow.SinglePath {
		return s, fmt.Errorf("spec: online policies simulate the single path model; model %q is not supported", s.Model)
	}

	// Algorithm names, against the live registries.
	if s.Scheduler != "" {
		if err := CheckScheduler(s.Scheduler, mode); err != nil {
			return s, err
		}
	}
	if s.Policy != "" {
		if err := CheckPolicy(s.Policy); err != nil {
			return s, err
		}
	}

	// Instance sourcing: inline instance, file, or generation.
	inline := s.Instance != nil
	file := s.Workload != nil && s.Workload.File != ""
	if inline && s.Workload != nil {
		return s, fmt.Errorf("spec: instance and workload are mutually exclusive (the inline instance already fixes the coflows)")
	}
	if (inline || file) && s.Topology != "" {
		return s, fmt.Errorf("spec: topology %q conflicts with an inline or file instance, which carries its own graph", s.Topology)
	}
	if !inline {
		if s.Workload == nil {
			s.Workload = &Workload{}
		} else { // don't alias the caller's struct
			w := *s.Workload
			s.Workload = &w
		}
		w := s.Workload
		if file {
			if w.Kind != "" || w.Coflows != 0 || w.Load != 0 || w.MeanInterarrival != 0 || w.WeightMin != 0 || w.WeightMax != 0 {
				return s, fmt.Errorf("spec: workload file %q conflicts with generation parameters; set one or the other", w.File)
			}
		} else {
			if w.Kind == "" {
				w.Kind = DefaultKind
			}
			w.Kind = strings.ToLower(w.Kind)
			if _, err := ParseKind(w.Kind); err != nil {
				return s, err
			}
			if w.Coflows == 0 {
				w.Coflows = DefaultCoflows
			}
			if w.Coflows < 0 {
				return s, fmt.Errorf("spec: workload coflows = %d", w.Coflows)
			}
			if w.Load != 0 && w.MeanInterarrival != 0 {
				return s, fmt.Errorf("spec: workload load and mean_interarrival are two spellings of the same rate; set one")
			}
			for _, f := range []struct {
				name string
				v    float64
			}{
				{"load", w.Load},
				{"mean_interarrival", w.MeanInterarrival},
				{"weight_min", w.WeightMin},
				{"weight_max", w.WeightMax},
			} {
				if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
					return s, fmt.Errorf("spec: workload %s = %g is not finite", f.name, f.v)
				}
			}
			if w.Load < 0 {
				return s, fmt.Errorf("spec: workload load = %g", w.Load)
			}
			if w.Load > 0 {
				w.MeanInterarrival = 1 / w.Load
				w.Load = 0
			}
			if w.MeanInterarrival == 0 {
				w.MeanInterarrival = DefaultMeanInterarrival
			}
			if s.Topology == "" {
				s.Topology = DefaultTopology
			}
			// The topology must parse and expose ≥ 2 endpoints before
			// any cell work starts (same upfront check as the CLI).
			if _, err := ParseTopology(s.Topology); err != nil {
				return s, err
			}
		}
	}

	if math.IsNaN(s.Options.Epoch) || math.IsInf(s.Options.Epoch, 0) || s.Options.Epoch < 0 {
		return s, fmt.Errorf("spec: options epoch = %g", s.Options.Epoch)
	}
	if s.Policy == "" && (s.Options.Epoch != 0 || s.Options.Clairvoyant || s.Options.CheckEvery != 0 || s.Options.MaxEvents != 0 || s.Options.WarmLP) {
		return s, fmt.Errorf("spec: epoch/clairvoyant/check_every/max_events/warm_lp are online options; scheduler %q is offline", s.Scheduler)
	}
	if s.Options.PathsK == 0 {
		s.Options.PathsK = DefaultPathsK
	}
	if s.Options.PathsK < 1 {
		return s, fmt.Errorf("spec: options paths_k = %d", s.Options.PathsK)
	}
	return s, nil
}

// Check reports whether the spec normalizes cleanly (the Validate
// field keeps the name "Validate" for the oracle replay switch).
func (s Spec) Check() error {
	_, err := s.Normalized()
	return err
}

// Key is the canonical JSON of the normalized spec — the cache key
// coflowd uses. Two specs with equal Keys produce identical
// RunReports (everything downstream is deterministic). Options.Workers
// is normalized out: results are worker-invariant by contract, so an
// execution knob must not fragment the cache.
func (s Spec) Key() (string, error) {
	n, err := s.Normalized()
	if err != nil {
		return "", err
	}
	n.Options.Workers = 0
	b, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Parse decodes a JSON document into either a Spec or a SweepSpec.
// Sweeps are recognized by their envelope fields ("base" or any axis
// list); everything else must be a Spec. Unknown fields are rejected
// in both cases, so a typo fails loudly instead of silently running
// the default experiment.
func Parse(data []byte) (*Spec, *SweepSpec, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, nil, fmt.Errorf("spec: %w", err)
	}
	sweep := false
	for _, k := range []string{"base", "schedulers", "policies", "models", "topologies", "workloads", "loads", "seeds"} {
		if _, ok := probe[k]; ok {
			sweep = true
			break
		}
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if sweep {
		var sw SweepSpec
		if err := dec.Decode(&sw); err != nil {
			return nil, nil, fmt.Errorf("spec: sweep: %w", err)
		}
		return nil, &sw, nil
	}
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, nil, fmt.Errorf("spec: %w", err)
	}
	return &s, nil, nil
}

// ParseFile reads and Parses one JSON document from path.
func ParseFile(path string) (*Spec, *SweepSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return Parse(data)
}

// Materialize normalizes the spec and builds the problem instance it
// would run on, without running anything — for harnesses that share
// one instance across several algorithms (the CLI's online comparison
// table) or want to inspect what a spec generates.
func (s Spec) Materialize() (*coflow.Instance, error) {
	ns, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	return ns.instance()
}

// instance materializes the spec's problem instance: inline, from
// file, or generated on the resolved topology. Generated single path
// instances carry random shortest paths, multi path ones a k-shortest
// candidate set; free path instances stay unrouted, matching the
// legacy facades. The spec must be normalized.
func (s *Spec) instance() (*coflow.Instance, error) {
	if s.Instance != nil {
		return s.Instance, nil
	}
	w := s.Workload
	if w.File != "" {
		f, err := os.Open(w.File)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return coflow.ReadJSON(f)
	}
	kind, err := ParseKind(w.Kind)
	if err != nil {
		return nil, err
	}
	top, err := ParseTopology(s.Topology)
	if err != nil {
		return nil, err
	}
	mode, err := ParseModel(s.Model)
	if err != nil {
		return nil, err
	}
	in, err := workload.Generate(workload.Config{
		Kind:             kind,
		Graph:            top.Graph,
		NumCoflows:       w.Coflows,
		Seed:             w.Seed,
		MeanInterarrival: w.MeanInterarrival,
		WeightMin:        w.WeightMin,
		WeightMax:        w.WeightMax,
		AssignPaths:      mode == coflow.SinglePath || s.Policy != "",
		Endpoints:        top.Endpoints,
	})
	if err != nil {
		return nil, err
	}
	if mode == coflow.MultiPath {
		if err := in.AssignKShortestPaths(s.Options.PathsK); err != nil {
			return nil, err
		}
	}
	return in, nil
}
