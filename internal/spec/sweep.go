package spec

import (
	"context"
	"fmt"
	"iter"
	"math"
	"strings"

	"repro/internal/obs"
	"repro/internal/pool"
)

// SweepSpec crosses a base Spec with axis lists into a grid of cells,
// one Spec per combination. Empty axes inherit the base's value, so a
// SweepSpec with no axes is a one-cell sweep of its base. The grid is
// never materialized: cells are decoded from their index on demand
// (mixed-radix over the axis lengths) and results stream back as they
// finish, so memory stays O(workers) at any grid size.
type SweepSpec struct {
	// Base is the cell template; axis values override its fields.
	Base Spec `json:"base"`
	// Schedulers and Policies are the algorithm axes. Both may be set:
	// the sweep then runs every scheduler and every policy per point
	// of the remaining axes. Each accepts "all" to mean the respective
	// registry.
	Schedulers []string `json:"schedulers,omitempty"`
	Policies   []string `json:"policies,omitempty"`
	// Models, Topologies, Workloads (kinds), Loads, and Seeds are the
	// instance axes. Seeds set both the workload seed and the
	// algorithm seed of their cells.
	Models     []string  `json:"models,omitempty"`
	Topologies []string  `json:"topologies,omitempty"`
	Workloads  []string  `json:"workloads,omitempty"`
	Loads      []float64 `json:"loads,omitempty"`
	Seeds      []int64   `json:"seeds,omitempty"`
	// Workers bounds concurrently running cells (≤ 0 = GOMAXPROCS).
	// Cell contents are deterministic in the cell spec at any worker
	// count; only completion order varies.
	Workers int `json:"workers,omitempty"`
}

// Cell is one streamed sweep result: the cell's index in the
// deterministic expansion order, the spec it ran, and its report or
// error. Per-cell errors don't abort the sweep — a 100k-cell grid
// should survive one infeasible corner — they stream back like
// results.
type Cell struct {
	Index  int        `json:"index"`
	Spec   Spec       `json:"spec"`
	Report *RunReport `json:"report,omitempty"`
	Error  string     `json:"error,omitempty"`
	// Err is Error as a live error for library callers.
	Err error `json:"-"`
}

// sweep is the validated, expansion-ready form of a SweepSpec.
type sweep struct {
	base  Spec
	algos []algo // scheduler/policy axis, flattened
	axes  []axis
}

type algo struct {
	name   string
	online bool
}

// axis is one expansion dimension: its length and a setter applying
// value k to a cell spec.
type axis struct {
	n   int
	set func(s *Spec, k int)
}

// compile validates the sweep's axes upfront — unknown scheduler,
// policy, model, workload, or topology names and non-finite loads
// fail here, before any cell runs, with the registry listings — and
// returns the expansion plan.
func (sw SweepSpec) compile() (*sweep, error) {
	c := &sweep{base: sw.Base}

	// Algorithm axis: explicit lists win over the base's fields.
	models := sw.Models
	if len(models) == 0 {
		m := sw.Base.Model
		if m == "" {
			m = ModelSingle
		}
		models = []string{m}
	}
	for _, m := range models {
		if _, err := ParseModel(m); err != nil {
			return nil, err
		}
	}
	scheds := sw.Schedulers
	pols := sw.Policies
	if len(scheds) == 0 && len(pols) == 0 {
		if sw.Base.Scheduler != "" {
			scheds = []string{sw.Base.Scheduler}
		}
		if sw.Base.Policy != "" {
			pols = []string{sw.Base.Policy}
		}
	}
	if len(scheds) == 1 && scheds[0] == "all" {
		// "all" is model-dependent, so it is only well-defined against
		// a single model; with a models axis the caller must spell the
		// schedulers out (or accept per-cell unsupported-model errors).
		if len(models) > 1 {
			return nil, fmt.Errorf("spec: sweep schedulers \"all\" is ambiguous with a models axis (%v); list the schedulers explicitly", models)
		}
		mode, err := ParseModel(models[0])
		if err != nil {
			return nil, err
		}
		if scheds, err = ResolveSchedulers("all", mode); err != nil {
			return nil, err
		}
	}
	if len(pols) == 1 && pols[0] == "all" {
		var err error
		if pols, err = ResolvePolicies("all"); err != nil {
			return nil, err
		}
	}
	for _, name := range scheds {
		// Existence check only; model support is checked per cell,
		// since the model may itself be an axis.
		if err := CheckSchedulerExists(name); err != nil {
			return nil, err
		}
		c.algos = append(c.algos, algo{name: name})
	}
	for _, name := range pols {
		if err := CheckPolicy(name); err != nil {
			return nil, err
		}
		c.algos = append(c.algos, algo{name: name, online: true})
	}
	if len(pols) > 0 {
		// Policies simulate the single path model, so a models axis
		// that leaves it would give every policy cell at a non-single
		// grid point the same single-path result under a misleading
		// label; reject the combination upfront.
		for _, m := range models {
			if len(sw.Models) > 0 && !strings.EqualFold(m, ModelSingle) {
				return nil, fmt.Errorf("spec: sweep policies %v simulate the single path model; a models axis with %q is ambiguous — split the sweep", pols, m)
			}
		}
	}
	if len(c.algos) == 0 {
		return nil, fmt.Errorf("spec: sweep has nothing to run: set schedulers, policies, or a base scheduler/policy")
	}

	// Instance axes, outermost first so cells sharing an instance are
	// adjacent in the expansion order.
	if len(sw.Topologies) > 0 {
		for _, t := range sw.Topologies {
			if _, err := ParseTopology(t); err != nil {
				return nil, err
			}
		}
		tops := sw.Topologies
		c.axes = append(c.axes, axis{len(tops), func(s *Spec, k int) { s.Topology = tops[k] }})
	}
	if len(sw.Workloads) > 0 {
		for _, w := range sw.Workloads {
			if _, err := ParseKind(w); err != nil {
				return nil, err
			}
		}
		kinds := sw.Workloads
		c.axes = append(c.axes, axis{len(kinds), func(s *Spec, k int) { s.ensureWorkload().Kind = kinds[k] }})
	}
	if len(sw.Loads) > 0 {
		for _, l := range sw.Loads {
			if !(l > 0) || math.IsInf(l, 0) {
				return nil, fmt.Errorf("spec: sweep load %g is not a positive finite rate", l)
			}
		}
		loads := sw.Loads
		c.axes = append(c.axes, axis{len(loads), func(s *Spec, k int) {
			w := s.ensureWorkload()
			w.Load = loads[k]
			w.MeanInterarrival = 0
		}})
	}
	if len(sw.Seeds) > 0 {
		seeds := sw.Seeds
		c.axes = append(c.axes, axis{len(seeds), func(s *Spec, k int) {
			s.ensureWorkload().Seed = seeds[k]
			s.Options.Seed = seeds[k]
		}})
	}
	if len(sw.Models) > 0 {
		ms := sw.Models
		c.axes = append(c.axes, axis{len(ms), func(s *Spec, k int) { s.Model = ms[k] }})
	}
	// Innermost: the algorithm, so every algorithm on one instance
	// point is adjacent.
	algos := c.algos
	c.axes = append(c.axes, axis{len(algos), func(s *Spec, k int) {
		a := algos[k]
		if a.online {
			s.Policy, s.Scheduler = a.name, ""
			s.Model = ModelSingle
		} else {
			s.Scheduler, s.Policy = a.name, ""
		}
	}})

	n := 1
	for _, ax := range c.axes {
		if n > 1<<30/ax.n {
			return nil, fmt.Errorf("spec: sweep expands past 2^30 cells")
		}
		n *= ax.n
	}
	return c, nil
}

// ensureWorkload returns the spec's workload, allocating an
// un-aliased copy so axis setters never mutate the base.
func (s *Spec) ensureWorkload() *Workload {
	if s.Workload == nil {
		s.Workload = &Workload{}
	}
	return s.Workload
}

// Count reports the total cell count of the expansion.
func (sw SweepSpec) Count() (int, error) {
	n, _, err := sw.Cells()
	return n, err
}

// Cells validates the sweep and returns the cell count plus the
// index→Spec decoder, for executors that schedule cells themselves —
// coflowd routes every cell through its server-wide worker pool
// instead of Sweep's per-call one. The decoder is pure: cell i's Spec
// depends only on i.
func (sw SweepSpec) Cells() (int, func(i int) Spec, error) {
	c, err := sw.compile()
	if err != nil {
		return 0, nil, err
	}
	return c.count(), c.at, nil
}

func (c *sweep) count() int {
	n := 1
	for _, ax := range c.axes {
		n *= ax.n
	}
	return n
}

// at decodes cell i into its Spec by mixed-radix expansion over the
// axes: the first axis varies slowest, the algorithm axis fastest.
func (c *sweep) at(i int) Spec {
	s := c.base
	if s.Workload != nil {
		w := *s.Workload
		s.Workload = &w
	}
	stride := c.count()
	for _, ax := range c.axes {
		stride /= ax.n
		ax.set(&s, (i/stride)%ax.n)
	}
	return s
}

// testCellHook, when non-nil, observes every cell index as it starts
// executing; tests use it to prove sweeps expand lazily.
var testCellHook func(i int)

// Sweep validates sw, then streams its cells: each yielded Cell
// carries the cell's index, spec, and report (or per-cell error).
// Cells fan out over a bounded worker pool and arrive in completion
// order — consume the sequence without collecting it and memory stays
// O(workers) regardless of grid size. Breaking out of the range (or
// cancelling ctx) stops scheduling new cells and returns once
// in-flight ones drain. The returned count is the total the sequence
// would yield if fully consumed.
//
// The sequence is single-use. Axis validation happens before the
// first cell runs, so a typo in a 100k-cell sweep fails in
// microseconds, with the registry listing, not after an hour.
func Sweep(ctx context.Context, sw SweepSpec) (int, iter.Seq2[int, *Cell], error) {
	c, err := sw.compile()
	if err != nil {
		return 0, nil, err
	}
	n := c.count()
	seq := Stream(ctx, n, sw.Workers, c.at)
	return n, seq, nil
}

// Stream runs at(i) for every i in [0, n) over a bounded worker pool
// and yields each cell as it completes. It is the executor under
// Sweep, exported for harnesses (the figure presets) whose per-cell
// specs follow a custom derivation — per-cell sub-seeds, say — that a
// cross-product SweepSpec cannot express.
func Stream(ctx context.Context, n, workers int, at func(i int) Spec) iter.Seq2[int, *Cell] {
	return StreamWith(ctx, n, workers, at, RunCell)
}

// StreamWith is Stream with a custom cell executor: exec receives
// each decoded cell and returns its streamed form. coflowd uses it to
// gate every cell on its server-wide worker pool; exec must be safe
// for concurrent use.
func StreamWith(ctx context.Context, n, workers int, at func(i int) Spec,
	exec func(ctx context.Context, i int, s Spec) *Cell) iter.Seq2[int, *Cell] {
	return func(yield func(int, *Cell) bool) {
		pool.Stream(ctx, n, workers, func(i int) *Cell {
			return exec(ctx, i, at(i))
		}, func(i int, cell *Cell) bool {
			return yield(cell.Index, cell)
		})
	}
}

// RunCell executes one decoded cell into the Cell form Sweep streams
// — report on success, stringified error otherwise — for executors
// that schedule cells through their own pool (coflowd).
func RunCell(ctx context.Context, i int, s Spec) *Cell {
	return RunCellWith(ctx, i, s, nil)
}

// RunCellWith is RunCell recording telemetry into reg (safe to share
// across concurrently executing cells; recording is atomic). coflowd
// routes every cell through its server-wide registry so /metrics
// covers sweep work too.
func RunCellWith(ctx context.Context, i int, s Spec, reg *obs.Registry) *Cell {
	if testCellHook != nil {
		testCellHook(i)
	}
	cell := &Cell{Index: i, Spec: s}
	rep, err := RunWith(ctx, s, reg)
	if err != nil {
		cell.Err = err
		cell.Error = err.Error()
	} else {
		cell.Report = rep
		cell.Spec = rep.Spec // echo the normalized form
	}
	return cell
}
