package spec

import (
	"fmt"
	"strings"

	"repro/internal/coflow"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Model names accepted by Spec.Model.
const (
	ModelSingle = "single"
	ModelFree   = "free"
	ModelMulti  = "multi"
)

// ModelNames lists the transmission model names.
func ModelNames() []string { return []string{ModelSingle, ModelFree, ModelMulti} }

// ParseModel resolves a model name.
func ParseModel(s string) (coflow.Model, error) {
	switch strings.ToLower(s) {
	case ModelSingle:
		return coflow.SinglePath, nil
	case ModelFree:
		return coflow.FreePath, nil
	case ModelMulti:
		return coflow.MultiPath, nil
	default:
		return 0, fmt.Errorf("spec: unknown model %q (have %v)", s, ModelNames())
	}
}

// ModelName is ParseModel's inverse.
func ModelName(m coflow.Model) string {
	switch m {
	case coflow.SinglePath:
		return ModelSingle
	case coflow.FreePath:
		return ModelFree
	case coflow.MultiPath:
		return ModelMulti
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// KindNames lists the workload kind names.
func KindNames() []string { return []string{"bigbench", "tpcds", "tpch", "fb"} }

// ParseKind resolves a workload kind name.
func ParseKind(s string) (workload.Kind, error) {
	switch strings.ToLower(s) {
	case "bigbench":
		return workload.BigBench, nil
	case "tpcds", "tpc-ds":
		return workload.TPCDS, nil
	case "tpch", "tpc-h":
		return workload.TPCH, nil
	case "fb", "facebook":
		return workload.FB, nil
	default:
		return 0, fmt.Errorf("spec: unknown workload %q (have %v)", s, KindNames())
	}
}

// ParseTopology resolves a topology selector: the two hand-coded WANs
// by name, or any generator spec from internal/topo ("fat-tree:k=4",
// …). The returned Topology carries the endpoint set workload flows
// are restricted to. Topologies with fewer than two endpoints are
// rejected here — generating a workload on them would have no valid
// source/sink pair.
func ParseTopology(s string) (*topo.Topology, error) {
	var top *topo.Topology
	switch strings.ToLower(s) {
	case "swan":
		top = &topo.Topology{Spec: "swan", Family: "swan", Graph: graph.SWAN(1)}
	case "gscale", "g-scale":
		top = &topo.Topology{Spec: "gscale", Family: "gscale", Graph: graph.GScale(1)}
	default:
		t, err := topo.New(s)
		if err != nil {
			return nil, err
		}
		top = t
	}
	n := len(top.Endpoints)
	if n == 0 {
		n = top.Graph.NumNodes()
	}
	if n < 2 {
		return nil, fmt.Errorf("topology %q exposes %d workload endpoint(s); flows need at least 2 (source ≠ sink) — pick a larger topology", s, n)
	}
	return top, nil
}

// TopologyNames lists the selectable topology names: the two
// hand-coded WANs plus every generator family.
func TopologyNames() []string {
	return append([]string{"swan", "gscale"}, topo.Families()...)
}

// SchedulerNames lists the offline engine registry.
func SchedulerNames() []string { return engine.Names() }

// PolicyNames lists the online sim policy registry.
func PolicyNames() []string { return sim.Names() }

// CheckScheduler validates one engine scheduler name against the
// registry and the model; errors list the registry.
func CheckScheduler(name string, mode coflow.Model) error {
	s, err := engine.Get(name)
	if err != nil {
		return err
	}
	if !s.Supports(mode) {
		return fmt.Errorf("scheduler %q does not support the %v model", name, mode)
	}
	return nil
}

// CheckSchedulerExists validates the name against the engine registry
// without a model constraint; sweeps use it because the model may
// itself be a sweep axis, with support checked per cell.
func CheckSchedulerExists(name string) error {
	_, err := engine.Get(name)
	return err
}

// CheckPolicy validates one sim policy name against the registry
// (including epoch:<scheduler> adapters); errors list the registry.
func CheckPolicy(name string) error {
	_, err := sim.New(name, sim.Options{})
	return err
}

// ResolveSchedulers expands a scheduler selector ("all" or a
// comma-separated list) into validated engine registry names, the
// shared logic behind coflowsim -scheduler and sweep axes. Unknown
// names fail immediately with the full registry listing, and
// explicitly requested schedulers that don't support the model are
// rejected rather than silently skipped; "all" keeps only supporting
// ones.
func ResolveSchedulers(selector string, mode coflow.Model) ([]string, error) {
	if selector == "all" {
		return engine.NamesSupporting(mode), nil
	}
	var names []string
	for _, name := range strings.Split(selector, ",") {
		name = strings.TrimSpace(name)
		if err := CheckScheduler(name, mode); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

// ResolvePolicies expands a policy selector ("", "all", or a
// comma-separated list) into validated sim policy names; unknown
// names fail with the policy registry listing.
func ResolvePolicies(selector string) ([]string, error) {
	if selector == "" || selector == "all" {
		return sim.Names(), nil
	}
	var names []string
	for _, name := range strings.Split(selector, ",") {
		name = strings.TrimSpace(name)
		if err := CheckPolicy(name); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}
