package spec

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/coflow"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// TestNormalizeErrors walks the validation error paths: every bad
// spec must fail before any work runs, and name errors must list the
// corresponding registry so the caller learns what exists.
func TestNormalizeErrors(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		wantSub []string // substrings the error must carry
	}{
		{"nothing to run", Spec{}, []string{"nothing to run", "stretch", "fifo"}},
		{"offline and online", Spec{Scheduler: "stretch", Policy: "fifo"},
			[]string{"mutually exclusive"}},
		{"unknown scheduler", Spec{Scheduler: "nope"},
			[]string{"unknown scheduler", "stretch", "sincronia-greedy"}},
		{"unknown policy", Spec{Policy: "nope"},
			[]string{"unknown policy", "fifo", "epoch:stretch"}},
		{"unknown epoch adapter", Spec{Policy: "epoch:nope"},
			[]string{"unknown scheduler"}},
		{"unknown model", Spec{Scheduler: "stretch", Model: "teleport"},
			[]string{"unknown model", "single", "free", "multi"}},
		{"online non-single model", Spec{Policy: "fifo", Model: "free"},
			[]string{"single path"}},
		{"unsupported model", Spec{Scheduler: "terra", Model: "single"},
			[]string{"does not support"}},
		{"unknown workload", Spec{Scheduler: "stretch", Workload: &Workload{Kind: "hive"}},
			[]string{"unknown workload", "bigbench", "fb"}},
		{"unknown topology", Spec{Scheduler: "stretch", Topology: "torus:n=4"},
			[]string{"unknown family", "fat-tree"}},
		{"too few endpoints", Spec{Scheduler: "stretch", Topology: "big-switch:n=1"},
			[]string{"endpoint"}},
		{"instance and workload", Spec{Scheduler: "stretch", Instance: testInstance(t), Workload: &Workload{}},
			[]string{"mutually exclusive"}},
		{"instance and topology", Spec{Scheduler: "stretch", Instance: testInstance(t), Topology: "swan"},
			[]string{"conflicts"}},
		{"file and generation", Spec{Scheduler: "stretch", Workload: &Workload{File: "x.json", Coflows: 3}},
			[]string{"conflicts"}},
		{"load and interarrival", Spec{Scheduler: "stretch", Workload: &Workload{Load: 1, MeanInterarrival: 2}},
			[]string{"one"}},
		{"NaN load", Spec{Scheduler: "stretch", Workload: &Workload{Load: math.NaN()}},
			[]string{"not finite"}},
		{"Inf interarrival", Spec{Scheduler: "stretch", Workload: &Workload{MeanInterarrival: math.Inf(1)}},
			[]string{"not finite"}},
		{"NaN weight", Spec{Scheduler: "stretch", Workload: &Workload{WeightMin: math.NaN()}},
			[]string{"not finite"}},
		{"negative load", Spec{Scheduler: "stretch", Workload: &Workload{Load: -1}},
			[]string{"load"}},
		{"NaN epoch", Spec{Policy: "fifo", Options: Options{Epoch: math.NaN()}},
			[]string{"epoch"}},
		{"online options offline", Spec{Scheduler: "stretch", Options: Options{Clairvoyant: true}},
			[]string{"online options"}},
		{"negative paths_k", Spec{Scheduler: "stretch", Options: Options{PathsK: -2}},
			[]string{"paths_k"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Check()
			if err == nil {
				t.Fatalf("spec %+v validated; want error with %q", tc.spec, tc.wantSub)
			}
			for _, sub := range tc.wantSub {
				if !strings.Contains(err.Error(), sub) {
					t.Errorf("error %q missing %q", err, sub)
				}
			}
		})
	}
}

// TestNormalizeErrorListsRegistry pins the "unknown name" errors to
// the exact live registries, matching the upfront validation the CLI
// has always done.
func TestNormalizeErrorListsRegistry(t *testing.T) {
	err := Spec{Scheduler: "bogus"}.Check()
	if err == nil {
		t.Fatal("want error")
	}
	for _, name := range engine.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("scheduler error %q missing registry entry %q", err, name)
		}
	}
	err = Spec{Policy: "bogus"}.Check()
	if err == nil {
		t.Fatal("want error")
	}
	for _, name := range sim.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("policy error %q missing registry entry %q", err, name)
		}
	}
}

// TestJSONRoundTrip marshals a Spec with every field set and requires
// the decode to reproduce it exactly — including the inline instance.
func TestJSONRoundTrip(t *testing.T) {
	full := Spec{
		Topology: "fat-tree:k=4",
		Workload: &Workload{
			Kind: "tpcds", Coflows: 7, Seed: 11, MeanInterarrival: 2.5,
			WeightMin: 1, WeightMax: 3,
		},
		Model:     "single",
		Scheduler: "heuristic",
		Options: Options{
			MaxSlots: 24, Trials: 3, Seed: 42, Workers: 2,
			DisableCompaction: true, PathsK: 2,
		},
		Validate: true,
	}
	roundTrip(t, full)

	online := Spec{
		Policy: "epoch:stretch",
		Workload: &Workload{
			Kind: "fb", Coflows: 3, Load: 0.5,
		},
		Options: Options{
			Epoch: 2, Clairvoyant: true, CheckEvery: 4, MaxEvents: 99,
			WarmLP: true, Trials: 1, Seed: 7,
		},
	}
	roundTrip(t, online)

	inline := Spec{Scheduler: "sincronia-greedy", Instance: testInstance(t)}
	roundTrip(t, inline)

	file := Spec{Scheduler: "stretch", Workload: &Workload{File: "inst.json"}}
	roundTrip(t, file)
}

func roundTrip(t *testing.T, s Spec) {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got, sweep, err := Parse(b)
	if err != nil {
		t.Fatalf("Parse(%s): %v", b, err)
	}
	if sweep != nil {
		t.Fatalf("Parse(%s) detected a sweep", b)
	}
	b2, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("round trip drifted:\n %s\n→%s", b, b2)
	}
	if s.Instance == nil && !reflect.DeepEqual(&s, got) {
		t.Fatalf("decoded spec differs: %+v vs %+v", s, got)
	}
}

// TestSweepJSONRoundTrip covers the sweep envelope, including Parse's
// run-vs-sweep detection.
func TestSweepJSONRoundTrip(t *testing.T) {
	sw := SweepSpec{
		Base:       Spec{Options: Options{MaxSlots: 16}},
		Schedulers: []string{"heuristic", "sincronia-greedy"},
		Policies:   []string{"fifo"},
		Models:     []string{"single"},
		Topologies: []string{"swan", "line:n=4"},
		Workloads:  []string{"fb", "tpch"},
		Loads:      []float64{0.5, 1},
		Seeds:      []int64{1, 2, 3},
		Workers:    2,
	}
	b, err := json.Marshal(sw)
	if err != nil {
		t.Fatal(err)
	}
	s, got, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if s != nil || got == nil {
		t.Fatalf("Parse did not detect a sweep in %s", b)
	}
	if !reflect.DeepEqual(&sw, got) {
		t.Fatalf("decoded sweep differs: %+v vs %+v", sw, got)
	}
}

// TestParseRejectsUnknownFields: typos fail instead of silently
// running the default experiment.
func TestParseRejectsUnknownFields(t *testing.T) {
	if _, _, err := Parse([]byte(`{"scheduler":"stretch","trials":5}`)); err == nil {
		t.Fatal("top-level typo accepted")
	}
	if _, _, err := Parse([]byte(`{"base":{"sheduler":"stretch"}}`)); err == nil {
		t.Fatal("sweep typo accepted")
	}
	if _, _, err := Parse([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestNormalizedDefaults pins the documented defaults, which must
// match what the legacy CLI flags compile to.
func TestNormalizedDefaults(t *testing.T) {
	ns, err := Spec{Scheduler: "stretch"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	w := ns.Workload
	if ns.Topology != "swan" || ns.Model != "single" || w.Kind != "fb" ||
		w.Coflows != 8 || w.MeanInterarrival != 1.5 || ns.Options.PathsK != 3 {
		t.Fatalf("unexpected defaults: %+v", ns)
	}
	// Load is sugar for 1/MeanInterarrival and normalizes away.
	ns, err = Spec{Policy: "fifo", Workload: &Workload{Load: 4}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if ns.Workload.Load != 0 || ns.Workload.MeanInterarrival != 0.25 {
		t.Fatalf("load not normalized: %+v", ns.Workload)
	}
	// Normalizing must not alias the caller's workload struct.
	orig := &Workload{Kind: "fb"}
	if _, err := (Spec{Scheduler: "stretch", Workload: orig}).Normalized(); err != nil {
		t.Fatal(err)
	}
	if orig.Coflows != 0 || orig.MeanInterarrival != 0 {
		t.Fatalf("Normalized mutated the caller's workload: %+v", orig)
	}
}

// TestKeyStable: the cache key is the normalized form, so sugar
// spellings of the same run share a key.
func TestKeyStable(t *testing.T) {
	a, err := Spec{Scheduler: "stretch", Workload: &Workload{Load: 0.5}}.Key()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spec{Scheduler: "stretch", Topology: "swan",
		Workload: &Workload{Kind: "fb", Coflows: 8, MeanInterarrival: 2}}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("equivalent specs got different keys:\n%s\n%s", a, b)
	}
	// Workers is an execution knob that cannot change results; it must
	// not fragment the cache.
	w4, err := Spec{Scheduler: "stretch", Options: Options{Workers: 4}}.Key()
	if err != nil {
		t.Fatal(err)
	}
	w8, err := Spec{Scheduler: "stretch", Options: Options{Workers: 8}}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if w4 != w8 {
		t.Fatalf("worker count fragmented the key:\n%s\n%s", w4, w8)
	}
}

// TestPresets: every preset compiles and counts correctly.
func TestPresets(t *testing.T) {
	if _, err := Preset("nope"); err == nil || !strings.Contains(err.Error(), "figure9") {
		t.Fatalf("unknown preset error %v must list the registry", err)
	}
	for _, name := range PresetNames() {
		sw, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		n, err := sw.Count()
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if n == 0 {
			t.Fatalf("preset %s is empty", name)
		}
	}
}

func testInstance(t *testing.T) *coflow.Instance {
	t.Helper()
	top, err := topo.New("line:n=3")
	if err != nil {
		t.Fatal(err)
	}
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: top.Graph, NumCoflows: 3, Seed: 5,
		MeanInterarrival: 1, AssignPaths: true, Endpoints: top.Endpoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestRunInlineInstance drives Run end to end on an inline instance
// (the facade path) and checks the report against a direct engine run.
func TestRunInlineInstance(t *testing.T) {
	in := testInstance(t)
	rep, err := Run(context.Background(), Spec{
		Scheduler: "sincronia-greedy",
		Instance:  in,
		Validate:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "offline" || !rep.Validated || rep.Coflows != len(in.Coflows) {
		t.Fatalf("bad report: %+v", rep)
	}
	if rep.Spec.Instance != nil {
		t.Fatal("report echoes the inline instance; it should be elided")
	}
	if rep.Engine == nil || rep.Engine.Weighted != rep.Weighted {
		t.Fatalf("engine result not threaded: %+v", rep.Engine)
	}
}
