package spec

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/obs"
)

// stripTelemetry clears the fields that legitimately differ between a
// telemetry-on and telemetry-off run: the snapshot itself and the
// spec echo's Telemetry flag. Everything else must be byte-identical.
func stripTelemetry(rep *RunReport) *RunReport {
	cp := *rep
	cp.Telemetry = nil
	cp.Spec.Options.Telemetry = false
	return &cp
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTelemetryDeterminism proves the nil-registry contract: the same
// spec run with no registry, with a shared registry, and with
// Options.Telemetry set produces byte-identical reports (telemetry
// fields excluded). One offline LP spec and one online epoch-replan
// spec cover the engine, core, simplex, and sim record sites.
func TestTelemetryDeterminism(t *testing.T) {
	ctx := context.Background()
	specs := []Spec{
		{
			Scheduler: "stretch",
			Workload:  &Workload{Coflows: 4, Seed: 7},
			Options:   Options{Trials: 3, Seed: 11},
		},
		{
			Policy:   "epoch:heuristic",
			Workload: &Workload{Coflows: 4, Seed: 7},
			Options:  Options{Trials: -1, Seed: 11, CheckEvery: 1},
		},
	}
	for _, s := range specs {
		base, err := Run(ctx, s)
		if err != nil {
			t.Fatalf("%s%s: base run: %v", s.Scheduler, s.Policy, err)
		}
		if base.Telemetry != nil {
			t.Fatalf("%s%s: telemetry attached without Options.Telemetry", s.Scheduler, s.Policy)
		}
		want := mustJSON(t, base)

		reg := obs.NewRegistry()
		withReg, err := RunWith(ctx, s, reg)
		if err != nil {
			t.Fatalf("%s%s: registry run: %v", s.Scheduler, s.Policy, err)
		}
		if got := mustJSON(t, withReg); string(got) != string(want) {
			t.Errorf("%s%s: report changed when a registry was attached:\n got %s\nwant %s",
				s.Scheduler, s.Policy, got, want)
		}
		snap := reg.Snapshot()
		if snap.Counters["simplex_pivots_total"] == 0 {
			t.Errorf("%s%s: registry recorded no simplex pivots: %+v", s.Scheduler, s.Policy, snap.Counters)
		}
		if s.Policy != "" && snap.Counters[`sim_events_total{kind="arrival"}`] == 0 {
			t.Errorf("%s%s: registry recorded no sim arrivals: %+v", s.Scheduler, s.Policy, snap.Counters)
		}

		ts := s
		ts.Options.Telemetry = true
		withSnap, err := Run(ctx, ts)
		if err != nil {
			t.Fatalf("%s%s: telemetry run: %v", s.Scheduler, s.Policy, err)
		}
		if withSnap.Telemetry == nil {
			t.Fatalf("%s%s: Options.Telemetry set but no snapshot attached", s.Scheduler, s.Policy)
		}
		if withSnap.Telemetry.Counters["simplex_pivots_total"] == 0 {
			t.Errorf("%s%s: attached snapshot has no simplex pivots", s.Scheduler, s.Policy)
		}
		if got := mustJSON(t, stripTelemetry(withSnap)); string(got) != string(want) {
			t.Errorf("%s%s: scheduling output changed with Options.Telemetry:\n got %s\nwant %s",
				s.Scheduler, s.Policy, got, want)
		}
	}
}

// TestTelemetrySharedRegistryConcurrent hammers one registry from
// concurrent sweep cells plus direct runs — the coflowd usage pattern
// — and checks the counts survive. Run under -race this doubles as
// the data-race proof for the record path.
func TestTelemetrySharedRegistryConcurrent(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	sw := SweepSpec{
		Base: Spec{
			Scheduler: "heuristic",
			Workload:  &Workload{Coflows: 3},
		},
		Seeds:   []int64{1, 2, 3, 4},
		Workers: 4,
	}
	n, at, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if _, err := RunWith(ctx, Spec{
				Policy:   "las",
				Workload: &Workload{Coflows: 3, Seed: int64(i)},
			}, reg); err != nil {
				t.Errorf("concurrent las run: %v", err)
			}
		}
	}()
	cells := 0
	for _, cell := range StreamWith(ctx, n, sw.Workers, at,
		func(ctx context.Context, i int, s Spec) *Cell { return RunCellWith(ctx, i, s, reg) }) {
		if cell.Err != nil {
			t.Errorf("cell %d: %v", cell.Index, cell.Err)
		}
		cells++
	}
	wg.Wait()
	if cells != n {
		t.Fatalf("streamed %d cells, want %d", cells, n)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["simplex_solves_total"]; got < int64(n) {
		t.Errorf("simplex_solves_total = %d, want ≥ %d (one per sweep cell)", got, n)
	}
	if snap.Counters[`sim_events_total{kind="arrival"}`] == 0 {
		t.Errorf("no sim arrivals recorded from the concurrent las runs: %+v", snap.Counters)
	}
}
