package spec

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/validate"
)

// RunReport is the unified outcome of one Spec run, offline or
// online: the objective aggregates every harness tabulates, per-coflow
// completions, the LP bound when the algorithm solves one, and the
// validation outcome. It serializes to JSON — coflowsim -spec prints
// it and coflowd POST /v1/run returns it, byte-for-byte the same for
// the same spec.
type RunReport struct {
	// Spec echoes the normalized spec the run executed (inline
	// instances are elided from the echo to keep reports small).
	Spec Spec `json:"spec"`
	// Kind is "offline" or "online".
	Kind string `json:"kind"`
	// Scheduler / Policy name the run used (one is set, per Kind).
	Scheduler string `json:"scheduler,omitempty"`
	Policy    string `json:"policy,omitempty"`
	// Model is the transmission model the run scheduled in.
	Model string `json:"model"`
	// Coflows and Flows size the instance that actually ran.
	Coflows int `json:"coflows"`
	Flows   int `json:"flows"`
	// Weighted is Σ w_j C_j, Total is Σ C_j.
	Weighted float64 `json:"weighted"`
	Total    float64 `json:"total"`
	// AvgCCT is the mean response time mean_j (C_j − r_j) and Makespan
	// is max_j C_j (online runs; offline Makespan is the latest
	// completion).
	AvgCCT   float64 `json:"avg_cct,omitempty"`
	Makespan float64 `json:"makespan,omitempty"`
	// LowerBound is the LP lower bound when the algorithm solves one.
	LowerBound    float64 `json:"lower_bound,omitempty"`
	HasLowerBound bool    `json:"has_lower_bound,omitempty"`
	// Completions holds per-coflow completion times in slot units.
	Completions []float64 `json:"completions"`
	// Replans and Events report online simulator counters.
	Replans int `json:"replans,omitempty"`
	Events  int `json:"events,omitempty"`
	// Extra carries per-scheduler metrics ("best-lambda", …).
	Extra map[string]float64 `json:"extra,omitempty"`
	// Validated reports that Spec.Validate was set and the
	// internal/validate oracle found no violation (a violation fails
	// the run instead).
	Validated bool `json:"validated,omitempty"`
	// Telemetry is the run's internal counter snapshot, present only
	// when Options.Telemetry was set. Counter values are deterministic
	// in the spec; timing series measure wall clock and are not.
	Telemetry *obs.Snapshot `json:"telemetry,omitempty"`

	// Engine and Sim carry the full underlying results for library
	// callers (exactly one is non-nil, per Kind). They are not part of
	// the wire format.
	Engine *engine.Result `json:"-"`
	Sim    *sim.Result    `json:"-"`
}

// Run executes one Spec: normalize and validate it, materialize the
// instance (inline, file, or generated on the topology), dispatch to
// the offline engine or the online simulator, optionally replay the
// result through the independent oracle, and fold everything into one
// RunReport. Run is deterministic in the normalized Spec at any
// Options.Workers, and ctx cancels it between units of work.
func Run(ctx context.Context, s Spec) (*RunReport, error) {
	return RunWith(ctx, s, nil)
}

// RunWith is Run recording telemetry into reg. A nil reg with
// Options.Telemetry set gets a private registry for the report
// snapshot; a non-nil reg (coflowd's server-wide registry, the CLI's
// -stats one) accumulates across runs either way. Recording is
// observational only — the scheduling output is bit-identical with or
// without a registry.
func RunWith(ctx context.Context, s Spec, reg *obs.Registry) (*RunReport, error) {
	ns, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	if reg == nil && ns.Options.Telemetry {
		reg = obs.NewRegistry()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	in, err := ns.instance()
	if err != nil {
		return nil, err
	}
	mode, err := ParseModel(ns.Model)
	if err != nil {
		return nil, err
	}

	rep := &RunReport{
		Spec:      ns,
		Scheduler: ns.Scheduler,
		Policy:    ns.Policy,
		Model:     ns.Model,
		Coflows:   len(in.Coflows),
		Flows:     in.NumFlows(),
	}
	rep.Spec.Instance = nil // keep report echoes small

	if ns.Scheduler != "" {
		rep.Kind = "offline"
		res, err := engine.Schedule(ctx, ns.Scheduler, in, mode, engine.Options{
			MaxSlots:          ns.Options.MaxSlots,
			Trials:            ns.Options.Trials,
			Seed:              ns.Options.Seed,
			Workers:           ns.Options.Workers,
			DisableCompaction: ns.Options.DisableCompaction,
			Obs:               reg,
		})
		if err != nil {
			return nil, err
		}
		rep.Engine = res
		rep.Weighted = res.Weighted
		rep.Total = res.Total
		rep.Completions = res.Completions
		rep.LowerBound = res.LowerBound
		rep.HasLowerBound = res.HasLowerBound
		rep.Extra = res.Extra
		for _, c := range res.Completions {
			if c > rep.Makespan {
				rep.Makespan = c
			}
		}
		if ns.Validate {
			if err := validate.Result(in, res).Err(); err != nil {
				return nil, fmt.Errorf("spec: scheduler %s failed validation: %w", ns.Scheduler, err)
			}
			rep.Validated = true
		}
		attachTelemetry(rep, ns, reg)
		return rep, nil
	}

	rep.Kind = "online"
	res, err := sim.Simulate(ctx, in, sim.Options{
		Policy:      ns.Policy,
		Epoch:       ns.Options.Epoch,
		MaxSlots:    ns.Options.MaxSlots,
		Trials:      ns.Options.Trials,
		Seed:        ns.Options.Seed,
		Workers:     ns.Options.Workers,
		MaxEvents:   ns.Options.MaxEvents,
		Clairvoyant: ns.Options.Clairvoyant,
		CheckEvery:  ns.Options.CheckEvery,
		WarmLP:      ns.Options.WarmLP,
		Obs:         reg,
	})
	if err != nil {
		return nil, err
	}
	rep.Sim = res
	rep.Weighted = res.WeightedCCT
	rep.Total = res.TotalCCT
	rep.AvgCCT = res.AvgCCT
	rep.Makespan = res.Makespan
	rep.Completions = res.Completions
	rep.Replans = res.Replans
	rep.Events = res.Events
	if ns.Validate {
		if err := validate.SimResult(in, res, ns.Options.Clairvoyant).Err(); err != nil {
			return nil, fmt.Errorf("spec: policy %s failed validation: %w", ns.Policy, err)
		}
		rep.Validated = true
	}
	attachTelemetry(rep, ns, reg)
	return rep, nil
}

// attachTelemetry snapshots reg into the report when the spec asked
// for it. With a caller-shared registry the snapshot covers everything
// recorded so far, not just this run.
func attachTelemetry(rep *RunReport, ns Spec, reg *obs.Registry) {
	if !ns.Options.Telemetry || reg == nil {
		return
	}
	rep.Telemetry = reg.Snapshot()
}
