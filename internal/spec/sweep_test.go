package spec

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// tinySweep is a cheap LP-free grid used by the streaming tests.
func tinySweep(workers int, seeds int) SweepSpec {
	sw := SweepSpec{
		Base:       Spec{Topology: "big-switch:n=3", Workload: &Workload{Coflows: 2}},
		Schedulers: []string{"sincronia-greedy"},
		Policies:   []string{"fifo"},
		Workers:    workers,
	}
	for i := 0; i < seeds; i++ {
		sw.Seeds = append(sw.Seeds, int64(i))
	}
	return sw
}

// TestSweepValidatesUpfront: axis typos fail before any cell runs,
// listing the registries.
func TestSweepValidatesUpfront(t *testing.T) {
	cases := []struct {
		name string
		sw   SweepSpec
		sub  string
	}{
		{"scheduler", SweepSpec{Schedulers: []string{"nope"}}, "unknown scheduler"},
		{"policy", SweepSpec{Policies: []string{"nope"}}, "unknown policy"},
		{"model", SweepSpec{Schedulers: []string{"stretch"}, Models: []string{"warp"}}, "unknown model"},
		{"topology", SweepSpec{Schedulers: []string{"stretch"}, Topologies: []string{"blob:n=2"}}, "unknown family"},
		{"workload", SweepSpec{Schedulers: []string{"stretch"}, Workloads: []string{"hive"}}, "unknown workload"},
		{"load", SweepSpec{Schedulers: []string{"stretch"}, Loads: []float64{-1}}, "load"},
		{"empty", SweepSpec{}, "nothing to run"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			executed := int32(0)
			testCellHook = func(int) { atomic.AddInt32(&executed, 1) }
			defer func() { testCellHook = nil }()
			_, _, err := Sweep(context.Background(), tc.sw)
			if err == nil || !strings.Contains(err.Error(), tc.sub) {
				t.Fatalf("err %v; want substring %q", err, tc.sub)
			}
			if executed != 0 {
				t.Fatalf("%d cells ran before validation failed", executed)
			}
		})
	}
}

// TestSweepStreamsWithoutMaterializing runs a 1000-cell grid and
// checks (a) every cell arrives exactly once with a report, (b) cell
// contents are identical at any worker count, and (c) the expansion is
// lazy: breaking out of the stream early executes at most
// consumed+workers cells, not the grid.
func TestSweepStreamsWithoutMaterializing(t *testing.T) {
	const cells = 1000
	sw := tinySweep(1, cells/2) // seeds × {scheduler, policy} = 1000 cells

	// Serial pass: the reference content, arriving in index order.
	n, seq, err := Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if n != cells {
		t.Fatalf("count = %d, want %d", n, cells)
	}
	ref := make(map[int]float64, n)
	last := -1
	for i, cell := range seq {
		if cell.Err != nil {
			t.Fatalf("cell %d: %v", i, cell.Err)
		}
		if i <= last {
			t.Fatalf("single-worker stream out of order: %d after %d", i, last)
		}
		last = i
		ref[i] = cell.Report.Weighted
	}
	if len(ref) != cells {
		t.Fatalf("yielded %d cells, want %d", len(ref), cells)
	}

	// Parallel pass: completion order may differ; contents must not.
	sw.Workers = 8
	_, seq, err = Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool, cells)
	for i, cell := range seq {
		if cell.Err != nil {
			t.Fatalf("cell %d: %v", i, cell.Err)
		}
		if seen[i] {
			t.Fatalf("cell %d yielded twice", i)
		}
		seen[i] = true
		if cell.Report.Weighted != ref[i] {
			t.Fatalf("cell %d: weighted %g at 8 workers vs %g serial",
				i, cell.Report.Weighted, ref[i])
		}
	}
	if len(seen) != cells {
		t.Fatalf("yielded %d cells, want %d", len(seen), cells)
	}

	// Laziness: consume 10 of 1000 and stop. Only the consumed cells
	// plus at most one in-flight cell per worker may ever execute —
	// proof the grid is expanded on demand, not materialized.
	const workers, consume = 4, 10
	sw.Workers = workers
	executed := int32(0)
	testCellHook = func(int) { atomic.AddInt32(&executed, 1) }
	defer func() { testCellHook = nil }()
	_, seq, err = Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, cell := range seq {
		if cell.Err != nil {
			t.Fatal(cell.Err)
		}
		if got++; got >= consume {
			break
		}
	}
	if ex := int(atomic.LoadInt32(&executed)); ex > consume+2*workers {
		t.Fatalf("early break executed %d cells; a lazy stream should stay ≤ %d",
			ex, consume+2*workers)
	}
}

// TestSweepCancellationMidSweep cancels the context partway through
// and requires the stream to stop promptly without running the rest
// of the grid.
func TestSweepCancellationMidSweep(t *testing.T) {
	const cells = 400
	sw := tinySweep(4, cells/2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	executed := int32(0)
	testCellHook = func(int) { atomic.AddInt32(&executed, 1) }
	defer func() { testCellHook = nil }()
	n, seq, err := Sweep(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, cell := range seq {
		_ = cell
		if got++; got == 20 {
			cancel()
		}
	}
	if got >= n {
		t.Fatalf("cancelled sweep still yielded all %d cells", got)
	}
	if ex := int(atomic.LoadInt32(&executed)); ex >= cells {
		t.Fatalf("cancelled sweep still executed all %d cells", ex)
	}
}

// TestSweepPerCellErrorsStream: a cell whose spec fails (terra is
// free-path-only) streams an error cell; the rest of the grid still
// runs.
func TestSweepPerCellErrorsStream(t *testing.T) {
	sw := SweepSpec{
		Base:       Spec{Topology: "big-switch:n=3", Workload: &Workload{Coflows: 2}},
		Schedulers: []string{"sincronia-greedy", "terra"}, // terra: free path only
		Models:     []string{"single"},
	}
	_, seq, err := Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	var ok, bad int
	for _, cell := range seq {
		if cell.Err != nil {
			if !strings.Contains(cell.Error, "does not support") {
				t.Fatalf("unexpected cell error: %s", cell.Error)
			}
			bad++
		} else {
			ok++
		}
	}
	if ok != 1 || bad != 1 {
		t.Fatalf("ok=%d bad=%d, want 1/1", ok, bad)
	}
}

// TestSweepAtDeterministic: cell specs are pure functions of their
// index — decode a few cells twice and compare.
func TestSweepAtDeterministic(t *testing.T) {
	sw := SweepSpec{
		Base:       Spec{Workload: &Workload{Coflows: 2}},
		Schedulers: []string{"heuristic", "sincronia-greedy"},
		Topologies: []string{"swan", "line:n=4"},
		Workloads:  []string{"fb", "tpch"},
		Loads:      []float64{0.5, 1},
		Seeds:      []int64{3, 4, 5},
	}
	c, err := sw.compile()
	if err != nil {
		t.Fatal(err)
	}
	n := c.count()
	if want := 2 * 2 * 2 * 2 * 3; n != want {
		t.Fatalf("count = %d, want %d", n, want)
	}
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		a := fmt.Sprintf("%+v %+v %+v", c.at(i), c.at(i).Workload, c.at(i).Options)
		if seen[a] {
			t.Fatalf("cell %d duplicates another cell: %s", i, a)
		}
		seen[a] = true
	}
	// The base must never be mutated by axis setters.
	if sw.Base.Workload.Kind != "" || sw.Base.Workload.Seed != 0 {
		t.Fatalf("sweep expansion mutated the base: %+v", sw.Base.Workload)
	}
}

// TestSweepAllSchedulersWithModelsAxis: "all" is model-dependent, so
// combining it with a models axis must fail upfront instead of
// streaming unsupported-model error cells.
func TestSweepAllSchedulersWithModelsAxis(t *testing.T) {
	_, _, err := Sweep(context.Background(), SweepSpec{
		Schedulers: []string{"all"},
		Models:     []string{"free", "single"},
	})
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("want ambiguity error, got %v", err)
	}
	// Against a single model it still resolves.
	n, _, err := Sweep(context.Background(), SweepSpec{
		Schedulers: []string{"all"},
		Models:     []string{"free"},
	})
	if err != nil || n == 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

// TestSweepPoliciesWithModelsAxis: policies are single-path; a models
// axis containing another model is rejected upfront rather than
// streaming duplicate single-path cells under a "free" label.
func TestSweepPoliciesWithModelsAxis(t *testing.T) {
	_, _, err := Sweep(context.Background(), SweepSpec{
		Policies: []string{"fifo"},
		Models:   []string{"single", "free"},
	})
	if err == nil || !strings.Contains(err.Error(), "single path") {
		t.Fatalf("want single-path ambiguity error, got %v", err)
	}
	// An all-single models axis stays fine.
	n, _, err := Sweep(context.Background(), SweepSpec{
		Policies: []string{"fifo"},
		Models:   []string{"single"},
	})
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}
