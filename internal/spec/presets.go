package spec

import (
	"fmt"
	"sort"
)

// Presets are named SweepSpecs for the paper's evaluation grids, so
// "the Figure 9 sweep" is one registry lookup away from the CLI
// (-spec preset:figure9) and the service (POST /v1/sweep). They cover
// the figure's scheduler × workload grid at default scale; the exact
// figure tables (which add LP-only series and ratio normalizations on
// top of these cells) come from internal/experiments, which executes
// its cells through the same Stream.
var presets = map[string]func() SweepSpec{
	// Figures 9/10: every single-path engine scheduler across the
	// four workloads on the paper's two WANs.
	"figure9": func() SweepSpec {
		return SweepSpec{
			Base:       Spec{Model: ModelSingle, Options: Options{Seed: 2019}},
			Schedulers: []string{"heuristic", "stretch", "jahanjou", "sincronia-greedy"},
			Topologies: []string{"swan"},
			Workloads:  KindNames(),
		}
	},
	"figure10": func() SweepSpec {
		return SweepSpec{
			Base:       Spec{Model: ModelSingle, Options: Options{Seed: 2019}},
			Schedulers: []string{"heuristic", "stretch", "jahanjou", "sincronia-greedy"},
			Topologies: []string{"gscale"},
			Workloads:  KindNames(),
		}
	},
	// Figure O1: the online policy × workload × load grid on SWAN.
	"figure-o1": func() SweepSpec {
		return SweepSpec{
			Base:      Spec{Model: ModelSingle, Options: Options{Seed: 2019}},
			Policies:  []string{"fifo", "las", "fair", "sincronia-online", "epoch:sincronia-greedy"},
			Workloads: KindNames(),
			Loads:     []float64{0.25, 0.5, 1.0, 2.0},
		}
	},
	// Figure T1: every single-path scheduler across the generated
	// topology families.
	"figure-t1": func() SweepSpec {
		return SweepSpec{
			Base:       Spec{Model: ModelSingle, Options: Options{Seed: 2019}},
			Schedulers: []string{"heuristic", "stretch", "jahanjou", "sincronia-greedy"},
			Topologies: []string{
				"big-switch:n=6", "star:n=6", "line:n=6", "ring:n=6",
				"fat-tree:k=4", "leaf-spine:leaves=4,spines=2,hosts=2",
				"random-regular:n=8,d=3,seed=3", "erdos-renyi:n=8,p=0.3,seed=5,hetero=1",
			},
			Workloads: []string{"fb"},
		}
	},
}

// PresetNames lists the registered sweep presets, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns the named sweep; unknown names list the registry.
func Preset(name string) (SweepSpec, error) {
	f, ok := presets[name]
	if !ok {
		return SweepSpec{}, fmt.Errorf("spec: unknown preset %q (have %v)", name, PresetNames())
	}
	return f(), nil
}
