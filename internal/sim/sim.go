// Package sim is an online discrete-event coflow simulator: coflows
// are revealed to the scheduler at their release times — not at t=0 as
// in the offline engine — and a pluggable Policy (re-)plans at every
// event. Between events (coflow arrival, flow release, flow
// completion, epoch timer) the simulator advances link allocations in
// continuous, unslotted time at constant per-flow rates, so completion
// times are exact for piecewise-constant policies.
//
// The package ships four policy families (see policy.go and
// adapter.go):
//
//   - "fifo" / "las": non-clairvoyant orderings in the style of
//     Bhimaraju, Nayak & Vaze (2020) — first-in-first-out and
//     least-attained-service priority;
//   - "fair": a work-conserving max-min fair share over all active
//     flows (progressive filling);
//   - "sincronia-online": re-runs the Sincronia BSSI ordering of
//     internal/baselines over the currently-known residual instance at
//     every arrival;
//   - "epoch:<scheduler>": wraps any registered engine.Scheduler and
//     re-plans the residual instance at arrivals and epoch ticks,
//     turning every offline algorithm in the registry into an online
//     one.
//
// The event loop is built to scale to 100k-coflow instances: the next
// event comes from an indexed queue (a release-sorted pending list and
// a flow-release min-heap — see queue.go) plus a linear min over the
// fresh sparse allocation instead of per-event full scans,
// policies return sparse per-active-coflow rate entries over reusable
// buffers (see alloc.go) instead of dense coflows × flows matrices,
// and the per-event allocation check is incremental over the touched
// entries and edges. The un-optimized O(n²·flows) loop survives as
// simulateReference (reference.go), the executable spec the
// differential tests hold Simulate bit-identical to; the full
// from-scratch verification is available behind Options.CheckEvery and
// is what conformance runs use.
//
// Simulation runs in the single path model (fixed routes), the model
// all ordering baselines share; times are in slot units, identical to
// the continuous units of demands and capacities, so online results
// compare directly against offline engine schedules.
//
// Everything is deterministic in (instance, Options): the only
// randomness lives inside wrapped engine schedulers, which derive
// per-replan seeds from Options.Seed, so event traces and metrics are
// bit-identical across runs and at any Options.Workers.
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/obs"
)

const eps = 1e-9

// Options tune a simulation run.
type Options struct {
	// Policy is the registry name ("fifo", "las", "fair",
	// "sincronia-online", or "epoch:<engine-scheduler>"). Empty means
	// "las".
	Policy string
	// Epoch is the re-planning period for epoch-based policies: in
	// addition to arrivals, the policy re-plans every Epoch time
	// units. Zero re-plans on arrivals only.
	Epoch float64
	// MaxSlots caps the time grid of wrapped engine schedulers (0 = 48).
	MaxSlots int
	// Trials is the Stretch trial count for wrapped LP schedulers.
	// Online re-planning solves one LP per replan, so the default is a
	// lighter 5 (0 = 5; negative disables).
	Trials int
	// Seed drives the randomness of wrapped engine schedulers; each
	// replan derives its own sub-seed, so a fixed Seed reproduces the
	// identical event trace.
	Seed int64
	// Workers bounds goroutines inside wrapped schedulers (≤ 0 =
	// GOMAXPROCS). Traces never depend on the worker count.
	Workers int
	// MaxEvents caps the event loop as a runaway guard (0 = 1<<20).
	MaxEvents int
	// WarmLP carries the LP basis of each epoch re-plan into the next
	// one (epoch:<lp-scheduler> policies only): consecutive residual
	// instances differ by a handful of coflows, so their optimal bases
	// are close and phase 1 is usually skipped entirely. Off by
	// default because a warm solve may land on a different optimal
	// vertex of a degenerate LP, perturbing the planned order — traces
	// remain valid and deterministic, but are not bit-identical to
	// cold-solve traces.
	WarmLP bool
	// Clairvoyant reveals every coflow to the policy at t=0 while
	// service still honors release times, turning any policy into its
	// clairvoyant counterpart. This is the continuous-time offline
	// reference slowdowns are measured against: comparing an online
	// continuous-time run against a slot-quantized offline schedule
	// would systematically deflate the ratio.
	Clairvoyant bool
	// CheckEvery enables the full from-scratch verification pass
	// (paranoid mode) every CheckEvery-th event, on top of the
	// always-on incremental allocation check: 1 verifies every event
	// (what conformance runs use), larger values sample, and 0 or a
	// negative value disables the full pass. The full pass
	// cross-checks the incrementally maintained active set, the
	// attained-service bookkeeping, and the complete per-edge load
	// vector against a from-scratch reconstruction, so a bug in the
	// indexed fast path cannot silently drift. Checking never alters
	// the trace.
	CheckEvery int
	// Obs, when non-nil, receives run telemetry: events by kind,
	// allocator calls, incremental/paranoid check time, policy-internal
	// dynamics (LAS splice sizes, fair freeze rounds), and — through
	// wrapped engine schedulers — LP counters. Recording is atomic and
	// observational only: traces and results are bit-identical with
	// Obs set or nil, and a nil registry costs one pointer test per
	// site.
	Obs *obs.Registry
}

// Normalize fills in defaults.
func (o Options) Normalize() Options {
	if o.Policy == "" {
		o.Policy = NameLAS
	}
	if o.MaxSlots == 0 {
		o.MaxSlots = 48
	}
	if o.Trials == 0 {
		o.Trials = 5
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 1 << 20
	}
	return o
}

// EventKind classifies a trace event.
type EventKind int

const (
	// Arrival is a coflow reveal (its release time passed).
	Arrival EventKind = iota
	// Completion is a coflow finishing its last flow.
	Completion
	// EpochTick is a periodic re-planning timer firing.
	EpochTick
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case Arrival:
		return "arrival"
	case Completion:
		return "completion"
	case EpochTick:
		return "epoch"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one entry of the simulation trace.
type Event struct {
	Time float64
	Kind EventKind
	// Coflow is the instance index of the arriving/completing coflow
	// (-1 for epoch ticks).
	Coflow int
}

// Result reports an online run. All times are absolute (slot units
// from t=0), so WeightedCCT compares directly with the Weighted field
// of offline engine results.
type Result struct {
	// Policy is the name of the policy that ran.
	Policy string
	// Completions[j] is coflow j's completion time.
	Completions []float64
	// Arrivals[j] is coflow j's release time. In clairvoyant mode the
	// reveal to the policy happens at t=0, but Arrivals keeps the
	// release — it is what response-time metrics subtract.
	Arrivals []float64
	// WeightedCCT is Σ_j w_j·C_j.
	WeightedCCT float64
	// TotalCCT is Σ_j C_j.
	TotalCCT float64
	// AvgCCT is the mean response time, mean_j (C_j − r_j).
	AvgCCT float64
	// Makespan is max_j C_j.
	Makespan float64
	// Events counts simulator events processed.
	Events int
	// Replans counts the planning calls the policy saw with
	// State.Replan set (arrivals and epoch ticks).
	Replans int
	// Trace is the full event sequence, for determinism checks.
	Trace []Event
}

// State is the simulator state a Policy sees when planning. Policies
// must treat everything reachable from State as read-only, and — to
// stay honestly online — must only inspect coflows listed in Active:
// unreleased coflows are future information.
type State struct {
	// Inst is the full instance (graph + coflows). Unreleased coflows
	// are present but off-limits.
	Inst *coflow.Instance
	// Now is the current simulation time.
	Now float64
	// Active lists revealed, unfinished coflow indices in ascending
	// order. It is maintained incrementally — policies must not
	// retain it across calls.
	Active []int
	// Remaining[j][i] is the residual demand of flow i of coflow j.
	Remaining [][]float64
	// Attained[j] is the total volume served to coflow j so far (the
	// least-attained-service statistic).
	Attained []float64
	// Arrival[j] is coflow j's release time (when its flows may first
	// be served). In clairvoyant mode coflows are revealed at t=0 but
	// Arrival keeps the release.
	Arrival []float64
	// Replan is true when this call follows an arrival or epoch tick;
	// expensive policies may cache their plan between Replan calls.
	Replan bool

	// activeMask[j] mirrors membership of j in Active for O(1)
	// lookups (see IsActive). Maintained by the simulator.
	activeMask []bool
	// effRel[j][i] caches Coflow.EffectiveRelease(i): Available runs
	// once per flow per event, and the max() behind EffectiveRelease
	// showed up in profiles at 100k-coflow scale.
	effRel [][]float64
}

// newState builds the per-run policy-visible state; shared by the
// optimized and the reference event loops so both present policies
// with identical inputs.
func newState(inst *coflow.Instance) *State {
	nc := len(inst.Coflows)
	st := &State{
		Inst:       inst,
		Remaining:  make([][]float64, nc),
		Attained:   make([]float64, nc),
		Arrival:    make([]float64, nc),
		activeMask: make([]bool, nc),
		effRel:     make([][]float64, nc),
	}
	for j := 0; j < nc; j++ {
		c := &inst.Coflows[j]
		st.Remaining[j] = make([]float64, len(c.Flows))
		st.effRel[j] = make([]float64, len(c.Flows))
		for i, fl := range c.Flows {
			st.Remaining[j][i] = fl.Demand
			st.effRel[j][i] = c.EffectiveRelease(i)
		}
		st.Arrival[j] = c.Release
	}
	return st
}

// Available reports whether flow i of active coflow j is released at
// State.Now (per-flow releases may trail the coflow's reveal).
func (st *State) Available(j, i int) bool {
	return st.effRel[j][i] <= st.Now+eps
}

// IsActive reports in O(1) whether coflow j is currently revealed and
// unfinished — membership in Active without the scan. Policies use it
// to prune finished coflows from cached priority orders.
func (st *State) IsActive(j int) bool { return st.activeMask[j] }

// Policy plans transmissions for the currently-known coflows.
// Allocate appends sparse per-flow rate entries for the interval until
// the next event into out (see Alloc for the grouping contract);
// finished, unavailable, or unreleased flows must not be granted a
// positive rate. The simulator resets out before every call.
// Implementations must be deterministic in (State, construction
// Options).
type Policy interface {
	// Name is the registry name the policy answers to.
	Name() string
	// Allocate fills out with the sparse rate assignment to use until
	// the next event.
	Allocate(ctx context.Context, st *State, out *Alloc) error
}

// Simulate runs the online simulation of inst under the policy named
// in opt. The instance must validate in the single path model.
func Simulate(ctx context.Context, inst *coflow.Instance, opt Options) (*Result, error) {
	opt = opt.Normalize()
	if err := inst.Validate(coflow.SinglePath); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	// Epochs below the simulator's time resolution would degenerate
	// into a tick at every float step; reject them instead.
	if opt.Epoch != 0 && opt.Epoch < 1e-6 {
		return nil, fmt.Errorf("sim: epoch %g below the minimum of 1e-6 slots", opt.Epoch)
	}
	pol, err := New(opt.Policy, opt)
	if err != nil {
		return nil, err
	}
	return newRunner(inst, opt, pol).run(ctx)
}

// simMetrics holds the telemetry handles the event loop records
// through, resolved once per run so the hot loop never takes the
// registry lock. With no registry every handle is nil — each record
// site then costs one pointer test — and the stopwatches around the
// allocation checks never read the clock (obs.Timing.Start on a nil
// handle is inert).
type simMetrics struct {
	arrivals    *obs.Counter
	completions *obs.Counter
	epochs      *obs.Counter
	loopEvents  *obs.Counter
	allocCalls  *obs.Counter
	replans     *obs.Counter
	checkInc    *obs.Timing
	checkFull   *obs.Timing
}

func newSimMetrics(reg *obs.Registry) simMetrics {
	if reg == nil {
		return simMetrics{}
	}
	return simMetrics{
		arrivals:    reg.Counter(`sim_events_total{kind="arrival"}`),
		completions: reg.Counter(`sim_events_total{kind="completion"}`),
		epochs:      reg.Counter(`sim_events_total{kind="epoch"}`),
		loopEvents:  reg.Counter("sim_loop_events_total"),
		allocCalls:  reg.Counter("sim_alloc_calls_total"),
		replans:     reg.Counter("sim_replans_total"),
		checkInc:    reg.Timing("sim_check_incremental"),
		checkFull:   reg.Timing("sim_check_full"),
	}
}

// runner is the per-run state of the optimized event loop.
type runner struct {
	inst *coflow.Instance
	opt  Options
	pol  Policy
	st   *State
	res  *Result
	met  simMetrics

	caps     []float64
	revealed []bool
	finished []bool

	pending *pendingList
	flowRel flowRelHeap

	alloc Alloc

	now       float64
	done      int
	nextEpoch float64

	// Per-event scratch, reused across events.
	batch   []int // coflows revealed this event
	cand    []int // completion candidates (served or revealed)
	candIn  []bool
	group   []int // per coflow: last event it opened an entry group in
	load    []float64
	touched []graph.EdgeID
	// Full-check scratch.
	fullActive []int
	fullLoad   []float64
}

func newRunner(inst *coflow.Instance, opt Options, pol Policy) *runner {
	g := inst.Graph
	nc := len(inst.Coflows)
	r := &runner{
		inst:     inst,
		opt:      opt,
		pol:      pol,
		caps:     make([]float64, g.NumEdges()),
		revealed: make([]bool, nc),
		finished: make([]bool, nc),
		pending:  newPendingList(inst),
		candIn:   make([]bool, nc),
		group:    make([]int, nc),
		load:     make([]float64, g.NumEdges()),
		met:      newSimMetrics(opt.Obs),
	}
	for _, e := range g.Edges() {
		r.caps[e.ID] = e.Capacity
	}
	st := newState(inst)
	for j := range r.group {
		r.group[j] = -1
	}
	r.st = st
	r.res = &Result{
		Policy:      opt.Policy,
		Completions: make([]float64, nc),
		Arrivals:    append([]float64(nil), st.Arrival...),
		Trace:       make([]Event, 0, 2*nc+8),
	}
	return r
}

func (r *runner) run(ctx context.Context) (*Result, error) {
	inst, opt, st, res := r.inst, r.opt, r.st, r.res
	nc := len(inst.Coflows)
	r.nextEpoch = math.Inf(1)
	if opt.Epoch > 0 {
		r.nextEpoch = opt.Epoch
	}
	for r.done < nc {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if res.Events >= opt.MaxEvents {
			return nil, fmt.Errorf("sim: event cap %d reached at t=%g (%d/%d coflows done)",
				opt.MaxEvents, r.now, r.done, nc)
		}
		res.Events++
		r.met.loopEvents.Inc()

		// Reveal coflows whose release time has passed (all of them at
		// t=0 in clairvoyant mode). The pending list yields them in
		// (release, index) order; arrivals sharing one event are
		// re-sorted by index to match the reference's 0..n scan.
		replan := false
		r.batch = r.pending.takeDue(inst, r.now, opt.Clairvoyant, r.batch[:0])
		if len(r.batch) > 0 {
			replan = true
			r.met.arrivals.Add(int64(len(r.batch)))
			sort.Ints(r.batch)
			for _, j := range r.batch {
				r.revealed[j] = true
				res.Trace = append(res.Trace, Event{Time: r.now, Kind: Arrival, Coflow: j})
				// Index the coflow's trailing per-flow releases; flows
				// already available (or drained) never need an event.
				for i := range st.effRel[j] {
					if st.Remaining[j][i] <= eps {
						continue
					}
					if rel := st.effRel[j][i]; rel > r.now+eps {
						r.flowRel.push(flowRelEntry{t: rel, j: j, i: i})
					}
				}
			}
			r.insertActive(r.batch)
		}
		// Epoch timer. The next tick is computed multiplicatively (the
		// first multiple of Epoch past now) rather than by repeated
		// addition, so a long event-free jump costs O(1) and float
		// accumulation cannot stall the advance.
		if opt.Epoch > 0 && r.nextEpoch <= r.now+eps {
			replan = true
			r.met.epochs.Inc()
			res.Trace = append(res.Trace, Event{Time: r.now, Kind: EpochTick, Coflow: -1})
			r.nextEpoch = opt.Epoch * (math.Floor(r.now/opt.Epoch) + 1)
			if r.nextEpoch <= r.now+eps {
				r.nextEpoch += opt.Epoch
			}
		}

		st.Now = r.now
		st.Replan = replan

		r.alloc.Reset()
		if len(st.Active) > 0 {
			if replan {
				res.Replans++
				r.met.replans.Inc()
			}
			r.met.allocCalls.Inc()
			if err := r.pol.Allocate(ctx, st, &r.alloc); err != nil {
				return nil, fmt.Errorf("sim: policy %s at t=%g: %w", opt.Policy, r.now, err)
			}
			sw := r.met.checkInc.Start()
			err := r.checkAlloc()
			sw.Stop()
			if err != nil {
				return nil, fmt.Errorf("sim: policy %s at t=%g: %w", opt.Policy, r.now, err)
			}
			if opt.CheckEvery > 0 && res.Events%opt.CheckEvery == 0 {
				sw := r.met.checkFull.Start()
				err := r.checkFull()
				sw.Stop()
				if err != nil {
					return nil, fmt.Errorf("sim: full check at t=%g (event %d): %w", r.now, res.Events, err)
				}
			}
		}

		// Next event: the earliest of coflow reveal, flow release,
		// epoch tick, and flow completion at the current rates — each
		// read from its index instead of a full scan. Epoch ticks only
		// count while something is active — an idle gap would
		// otherwise burn one no-op event per period; the tick due at
		// the end of the gap still fires with the arrival that ends it.
		next := math.Inf(1)
		if len(st.Active) > 0 {
			next = r.nextEpoch
		}
		if rel, ok := r.pending.nextRelease(inst); ok && rel < next {
			next = rel
		}
		if rel, ok := r.flowRel.nextRelease(r.now, r.finished, st.Remaining); ok && rel < next {
			next = rel
		}
		// Projected completions at the current rates: a linear min over
		// the sparse entries. Every event refreshes the allocation, so
		// an indexed structure would be rebuilt per event anyway — the
		// min of the same candidate set is the same time either way.
		progress := false
		for _, en := range r.alloc.Entries {
			rem := st.Remaining[en.Coflow][en.Flow]
			if rem <= eps || en.Rate <= eps {
				continue
			}
			progress = true
			if t := r.now + rem/en.Rate; t < next {
				next = t
			}
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("sim: stalled at t=%g with %d/%d coflows done (no rates, no pending events)",
				r.now, r.done, nc)
		}
		if !progress && next <= r.now+eps {
			return nil, fmt.Errorf("sim: no progress at t=%g", r.now)
		}
		dt := next - r.now
		if dt < 0 {
			dt = 0
		}

		// Advance: deplete demands at constant rates for dt, walking
		// the sparse entries group by group. Per-coflow served sums
		// accumulate in flow order within each group — the same order
		// the dense reference uses — so Attained stays bit-identical.
		// Completion candidates are the coflows served this event plus
		// the ones revealed at its start (a zero-demand coflow
		// completes at reveal without ever being served).
		r.cand = r.cand[:0]
		for _, j := range r.batch {
			if !r.candIn[j] {
				r.candIn[j] = true
				r.cand = append(r.cand, j)
			}
		}
		entries := r.alloc.Entries
		for k := 0; k < len(entries); {
			j := entries[k].Coflow
			served := 0.0
			for ; k < len(entries) && entries[k].Coflow == j; k++ {
				i, rate := entries[k].Flow, entries[k].Rate
				if st.Remaining[j][i] <= eps || rate <= eps {
					continue
				}
				d := rate * dt
				if d > st.Remaining[j][i] {
					d = st.Remaining[j][i]
				}
				st.Remaining[j][i] -= d
				served += d
				if st.Remaining[j][i] <= eps {
					st.Remaining[j][i] = 0
				}
			}
			st.Attained[j] += served
			if !r.candIn[j] {
				r.candIn[j] = true
				r.cand = append(r.cand, j)
			}
		}
		r.now = next

		// Completions, in ascending coflow order as the reference's
		// Active scan emits them.
		sort.Ints(r.cand)
		for _, j := range r.cand {
			r.candIn[j] = false
			if r.finished[j] {
				continue
			}
			// Flows absent from the live list are finished for good, so
			// scanning (and compacting) the list is equivalent to the
			// reference's full Remaining[j] sweep.
			all := true
			lv := r.alloc.live[j]
			w := 0
			for _, i32 := range lv {
				if st.Remaining[j][i32] <= eps {
					continue
				}
				lv[w] = i32
				w++
				all = false
			}
			r.alloc.live[j] = lv[:w]
			if all {
				r.finished[j] = true
				r.done++
				r.met.completions.Inc()
				res.Completions[j] = r.now
				res.Trace = append(res.Trace, Event{Time: r.now, Kind: Completion, Coflow: j})
				r.removeActive(j)
			}
		}
	}

	for j := 0; j < nc; j++ {
		c := res.Completions[j]
		res.WeightedCCT += inst.Coflows[j].Weight * c
		res.TotalCCT += c
		res.AvgCCT += c - st.Arrival[j]
		if c > res.Makespan {
			res.Makespan = c
		}
	}
	res.AvgCCT /= float64(nc)
	return res, nil
}

// insertActive merges the ascending reveal batch into the ascending
// active list and sets the membership mask.
func (r *runner) insertActive(batch []int) {
	st := r.st
	for _, j := range batch {
		st.activeMask[j] = true
	}
	n := len(st.Active)
	st.Active = append(st.Active, batch...)
	a := st.Active
	i, b, k := n-1, len(batch)-1, len(a)-1
	for b >= 0 {
		if i >= 0 && a[i] > batch[b] {
			a[k] = a[i]
			i--
		} else {
			a[k] = batch[b]
			b--
		}
		k--
	}
}

// removeActive deletes j from the ascending active list and clears its
// mask bit.
func (r *runner) removeActive(j int) {
	st := r.st
	st.activeMask[j] = false
	k := sort.SearchInts(st.Active, j)
	if k < len(st.Active) && st.Active[k] == j {
		copy(st.Active[k:], st.Active[k+1:])
		st.Active = st.Active[:len(st.Active)-1]
	}
}

// checkAlloc is the incremental per-event verification of the policy's
// sparse allocation: entry bounds, the grouping contract, no service
// to inactive coflows or unavailable flows, no duplicate grants, and
// per-edge loads within capacity — touching only the entries and the
// edges they load, O(entries·path) instead of O(coflows·flows +
// edges). A violation is a policy bug and surfaces as a diagnostic
// error, not a panic.
func (r *runner) checkAlloc() error {
	st := r.st
	nc := len(st.Inst.Coflows)
	ev := r.res.Events
	// Per-entry path walks go through the alloc's flat path index (the
	// same edges Flow.Path holds, laid out densely).
	r.alloc.ensurePaths(st.Inst)
	lastJ := -1
	lastFlow := -1
	for _, en := range r.alloc.Entries {
		j := en.Coflow
		if j < 0 || j >= nc {
			return fmt.Errorf("allocation entry names coflow %d of %d", j, nc)
		}
		c := &st.Inst.Coflows[j]
		if en.Flow < 0 || en.Flow >= len(c.Flows) {
			return fmt.Errorf("allocation entry names flow %d of coflow %d (%d flows)", en.Flow, j, len(c.Flows))
		}
		if j != lastJ {
			if r.group[j] == ev {
				return fmt.Errorf("allocation entries for coflow %d are not contiguous", j)
			}
			r.group[j] = ev
			lastJ, lastFlow = j, -1
		}
		if en.Flow <= lastFlow {
			return fmt.Errorf("allocation entries for coflow %d are not in ascending flow order", j)
		}
		lastFlow = en.Flow
		rate := en.Rate
		if !(rate >= 0) {
			return fmt.Errorf("negative rate %g for coflow %d flow %d", rate, j, en.Flow)
		}
		if rate <= eps {
			continue
		}
		if !st.activeMask[j] {
			// A positive rate on an unrevealed or finished coflow means
			// the policy used information it must not have.
			return fmt.Errorf("rate %g granted to inactive coflow %d flow %d", rate, j, en.Flow)
		}
		if st.Remaining[j][en.Flow] <= eps || !st.Available(j, en.Flow) {
			return fmt.Errorf("rate %g granted to inactive flow %d of coflow %d", rate, en.Flow, j)
		}
		fi := r.alloc.flowBase[j] + int32(en.Flow)
		for _, e := range r.alloc.pathEdges[r.alloc.pathOff[fi]:r.alloc.pathOff[fi+1]] {
			if r.load[e] == 0 {
				r.touched = append(r.touched, e)
			}
			r.load[e] += rate
		}
	}
	var err error
	for _, e := range r.touched {
		if err == nil && r.load[e] > r.caps[e]*(1+1e-6)+eps {
			err = fmt.Errorf("edge %d overloaded: rate %g > capacity %g", e, r.load[e], r.caps[e])
		}
		r.load[e] = 0
	}
	r.touched = r.touched[:0]
	return err
}

// checkFull is the paranoid from-scratch verification behind
// Options.CheckEvery: it reconstructs the active set from the
// revealed/finished flags, re-derives every coflow's attained service
// from the initial demands and the residuals, and rebuilds the entire
// per-edge load vector from the sparse entries — and demands each
// matches the incrementally maintained fast-path state. Conformance
// runs enable it at CheckEvery=1.
func (r *runner) checkFull() error {
	st := r.st
	nc := len(st.Inst.Coflows)
	r.fullActive = r.fullActive[:0]
	for j := 0; j < nc; j++ {
		if r.revealed[j] && !r.finished[j] {
			r.fullActive = append(r.fullActive, j)
		}
		if st.activeMask[j] != (r.revealed[j] && !r.finished[j]) {
			return fmt.Errorf("active mask for coflow %d is %v, flags say revealed=%v finished=%v",
				j, st.activeMask[j], r.revealed[j], r.finished[j])
		}
	}
	if len(r.fullActive) != len(st.Active) {
		return fmt.Errorf("active list has %d coflows, flags give %d", len(st.Active), len(r.fullActive))
	}
	for k, j := range r.fullActive {
		if st.Active[k] != j {
			return fmt.Errorf("active list position %d holds coflow %d, flags give %d", k, st.Active[k], j)
		}
	}
	for j := 0; j < nc; j++ {
		if !r.revealed[j] {
			continue
		}
		c := &st.Inst.Coflows[j]
		want := 0.0
		for i := range c.Flows {
			want += c.Flows[i].Demand - st.Remaining[j][i]
		}
		if math.Abs(st.Attained[j]-want) > 1e-6*math.Max(1, want) {
			return fmt.Errorf("coflow %d attained %g, residuals give %g", j, st.Attained[j], want)
		}
	}
	// Full per-edge load rebuild: every edge, not just the touched set.
	if len(r.fullLoad) != len(r.caps) {
		r.fullLoad = make([]float64, len(r.caps))
	}
	for e := range r.fullLoad {
		r.fullLoad[e] = 0
	}
	for _, en := range r.alloc.Entries {
		if en.Rate <= eps {
			continue
		}
		for _, e := range st.Inst.Coflows[en.Coflow].Flows[en.Flow].Path {
			r.fullLoad[e] += en.Rate
		}
	}
	for e, l := range r.fullLoad {
		if l > r.caps[e]*(1+1e-6)+eps {
			return fmt.Errorf("edge %d overloaded: rate %g > capacity %g", e, l, r.caps[e])
		}
	}
	return nil
}

// Slowdown returns the average per-coflow ratio of online to offline
// response times, (C_on − r) / (C_off − r) — the price of not knowing
// the future. Ratios of absolute completion times would be diluted
// toward 1 by large release offsets at low load, so the shared release
// time is subtracted from both sides (using online.Arrivals; a result
// without arrivals falls back to r = 0). Offline response times of
// zero are clamped to a small positive value.
func Slowdown(online *Result, offline []float64) (float64, error) {
	if len(offline) != len(online.Completions) {
		return 0, fmt.Errorf("sim: slowdown over %d online vs %d offline coflows",
			len(online.Completions), len(offline))
	}
	if len(offline) == 0 {
		return 0, fmt.Errorf("sim: slowdown of empty result")
	}
	var s float64
	for j, c := range online.Completions {
		var r float64
		if len(online.Arrivals) == len(online.Completions) {
			r = online.Arrivals[j]
		}
		ref := offline[j] - r
		if ref < eps {
			ref = eps
		}
		s += (c - r) / ref
	}
	return s / float64(len(offline)), nil
}
