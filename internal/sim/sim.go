// Package sim is an online discrete-event coflow simulator: coflows
// are revealed to the scheduler at their release times — not at t=0 as
// in the offline engine — and a pluggable Policy (re-)plans at every
// event. Between events (coflow arrival, flow release, flow
// completion, epoch timer) the simulator advances link allocations in
// continuous, unslotted time at constant per-flow rates, so completion
// times are exact for piecewise-constant policies.
//
// The package ships four policy families (see policy.go and
// adapter.go):
//
//   - "fifo" / "las": non-clairvoyant orderings in the style of
//     Bhimaraju, Nayak & Vaze (2020) — first-in-first-out and
//     least-attained-service priority;
//   - "fair": a work-conserving max-min fair share over all active
//     flows (progressive filling);
//   - "sincronia-online": re-runs the Sincronia BSSI ordering of
//     internal/baselines over the currently-known residual instance at
//     every arrival;
//   - "epoch:<scheduler>": wraps any registered engine.Scheduler and
//     re-plans the residual instance at arrivals and epoch ticks,
//     turning every offline algorithm in the registry into an online
//     one.
//
// Simulation runs in the single path model (fixed routes), the model
// all ordering baselines share; times are in slot units, identical to
// the continuous units of demands and capacities, so online results
// compare directly against offline engine schedules.
//
// Everything is deterministic in (instance, Options): the only
// randomness lives inside wrapped engine schedulers, which derive
// per-replan seeds from Options.Seed, so event traces and metrics are
// bit-identical across runs and at any Options.Workers.
package sim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/coflow"
)

const eps = 1e-9

// Options tune a simulation run.
type Options struct {
	// Policy is the registry name ("fifo", "las", "fair",
	// "sincronia-online", or "epoch:<engine-scheduler>"). Empty means
	// "las".
	Policy string
	// Epoch is the re-planning period for epoch-based policies: in
	// addition to arrivals, the policy re-plans every Epoch time
	// units. Zero re-plans on arrivals only.
	Epoch float64
	// MaxSlots caps the time grid of wrapped engine schedulers (0 = 48).
	MaxSlots int
	// Trials is the Stretch trial count for wrapped LP schedulers.
	// Online re-planning solves one LP per replan, so the default is a
	// lighter 5 (0 = 5; negative disables).
	Trials int
	// Seed drives the randomness of wrapped engine schedulers; each
	// replan derives its own sub-seed, so a fixed Seed reproduces the
	// identical event trace.
	Seed int64
	// Workers bounds goroutines inside wrapped schedulers (≤ 0 =
	// GOMAXPROCS). Traces never depend on the worker count.
	Workers int
	// MaxEvents caps the event loop as a runaway guard (0 = 1<<20).
	MaxEvents int
	// Clairvoyant reveals every coflow to the policy at t=0 while
	// service still honors release times, turning any policy into its
	// clairvoyant counterpart. This is the continuous-time offline
	// reference slowdowns are measured against: comparing an online
	// continuous-time run against a slot-quantized offline schedule
	// would systematically deflate the ratio.
	Clairvoyant bool
}

// Normalize fills in defaults.
func (o Options) Normalize() Options {
	if o.Policy == "" {
		o.Policy = NameLAS
	}
	if o.MaxSlots == 0 {
		o.MaxSlots = 48
	}
	if o.Trials == 0 {
		o.Trials = 5
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 1 << 20
	}
	return o
}

// EventKind classifies a trace event.
type EventKind int

const (
	// Arrival is a coflow reveal (its release time passed).
	Arrival EventKind = iota
	// Completion is a coflow finishing its last flow.
	Completion
	// EpochTick is a periodic re-planning timer firing.
	EpochTick
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case Arrival:
		return "arrival"
	case Completion:
		return "completion"
	case EpochTick:
		return "epoch"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one entry of the simulation trace.
type Event struct {
	Time float64
	Kind EventKind
	// Coflow is the instance index of the arriving/completing coflow
	// (-1 for epoch ticks).
	Coflow int
}

// Result reports an online run. All times are absolute (slot units
// from t=0), so WeightedCCT compares directly with the Weighted field
// of offline engine results.
type Result struct {
	// Policy is the name of the policy that ran.
	Policy string
	// Completions[j] is coflow j's completion time.
	Completions []float64
	// Arrivals[j] is coflow j's release time. In clairvoyant mode the
	// reveal to the policy happens at t=0, but Arrivals keeps the
	// release — it is what response-time metrics subtract.
	Arrivals []float64
	// WeightedCCT is Σ_j w_j·C_j.
	WeightedCCT float64
	// TotalCCT is Σ_j C_j.
	TotalCCT float64
	// AvgCCT is the mean response time, mean_j (C_j − r_j).
	AvgCCT float64
	// Makespan is max_j C_j.
	Makespan float64
	// Events counts simulator events processed.
	Events int
	// Replans counts the planning calls the policy saw with
	// State.Replan set (arrivals and epoch ticks).
	Replans int
	// Trace is the full event sequence, for determinism checks.
	Trace []Event
}

// State is the simulator state a Policy sees when planning. Policies
// must treat everything reachable from State as read-only, and — to
// stay honestly online — must only inspect coflows listed in Active:
// unreleased coflows are future information.
type State struct {
	// Inst is the full instance (graph + coflows). Unreleased coflows
	// are present but off-limits.
	Inst *coflow.Instance
	// Now is the current simulation time.
	Now float64
	// Active lists revealed, unfinished coflow indices in ascending
	// order.
	Active []int
	// Remaining[j][i] is the residual demand of flow i of coflow j.
	Remaining [][]float64
	// Attained[j] is the total volume served to coflow j so far (the
	// least-attained-service statistic).
	Attained []float64
	// Arrival[j] is coflow j's release time (when its flows may first
	// be served). In clairvoyant mode coflows are revealed at t=0 but
	// Arrival keeps the release.
	Arrival []float64
	// Replan is true when this call follows an arrival or epoch tick;
	// expensive policies may cache their plan between Replan calls.
	Replan bool
}

// Available reports whether flow i of active coflow j is released at
// State.Now (per-flow releases may trail the coflow's reveal).
func (st *State) Available(j, i int) bool {
	return st.Inst.Coflows[j].EffectiveRelease(i) <= st.Now+eps
}

// Policy plans transmissions for the currently-known coflows. Allocate
// returns per-flow transmission rates, indexed [coflow][flow] over the
// full instance; rates for finished, unavailable, or unreleased flows
// are ignored. Implementations must be deterministic in (State,
// construction Options).
type Policy interface {
	// Name is the registry name the policy answers to.
	Name() string
	// Allocate returns the rate matrix to use until the next event.
	Allocate(ctx context.Context, st *State) ([][]float64, error)
}

// Simulate runs the online simulation of inst under the policy named
// in opt. The instance must validate in the single path model.
func Simulate(ctx context.Context, inst *coflow.Instance, opt Options) (*Result, error) {
	opt = opt.Normalize()
	if err := inst.Validate(coflow.SinglePath); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	// Epochs below the simulator's time resolution would degenerate
	// into a tick at every float step; reject them instead.
	if opt.Epoch != 0 && opt.Epoch < 1e-6 {
		return nil, fmt.Errorf("sim: epoch %g below the minimum of 1e-6 slots", opt.Epoch)
	}
	pol, err := New(opt.Policy, opt)
	if err != nil {
		return nil, err
	}

	g := inst.Graph
	nc := len(inst.Coflows)
	caps := make([]float64, g.NumEdges())
	for _, e := range g.Edges() {
		caps[e.ID] = e.Capacity
	}

	st := &State{
		Inst:      inst,
		Remaining: make([][]float64, nc),
		Attained:  make([]float64, nc),
		Arrival:   make([]float64, nc),
	}
	revealed := make([]bool, nc)
	finished := make([]bool, nc)
	for j := 0; j < nc; j++ {
		c := &inst.Coflows[j]
		st.Remaining[j] = make([]float64, len(c.Flows))
		for i, fl := range c.Flows {
			st.Remaining[j][i] = fl.Demand
		}
		st.Arrival[j] = c.Release
	}

	res := &Result{
		Policy:      opt.Policy,
		Completions: make([]float64, nc),
		Arrivals:    append([]float64(nil), st.Arrival...),
	}

	now := 0.0
	done := 0
	nextEpoch := math.Inf(1)
	if opt.Epoch > 0 {
		nextEpoch = opt.Epoch
	}
	// Scratch buffers for the per-event rate validation, allocated once
	// to keep the event loop free of per-event garbage.
	activeBuf := make([]bool, nc)
	loadBuf := make([]float64, g.NumEdges())
	for done < nc {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if res.Events >= opt.MaxEvents {
			return nil, fmt.Errorf("sim: event cap %d reached at t=%g (%d/%d coflows done)",
				opt.MaxEvents, now, done, nc)
		}
		res.Events++

		// Reveal coflows whose release time has passed (all of them at
		// t=0 in clairvoyant mode).
		replan := false
		for j := 0; j < nc; j++ {
			if !revealed[j] && (opt.Clairvoyant || inst.Coflows[j].Release <= now+eps) {
				revealed[j] = true
				replan = true
				res.Trace = append(res.Trace, Event{Time: now, Kind: Arrival, Coflow: j})
			}
		}
		// Epoch timer. The next tick is computed multiplicatively (the
		// first multiple of Epoch past now) rather than by repeated
		// addition, so a long event-free jump costs O(1) and float
		// accumulation cannot stall the advance.
		if opt.Epoch > 0 && nextEpoch <= now+eps {
			replan = true
			res.Trace = append(res.Trace, Event{Time: now, Kind: EpochTick, Coflow: -1})
			nextEpoch = opt.Epoch * (math.Floor(now/opt.Epoch) + 1)
			if nextEpoch <= now+eps {
				nextEpoch += opt.Epoch
			}
		}

		st.Now = now
		st.Active = st.Active[:0]
		for j := 0; j < nc; j++ {
			if revealed[j] && !finished[j] {
				st.Active = append(st.Active, j)
			}
		}
		st.Replan = replan

		var rates [][]float64
		if len(st.Active) > 0 {
			if replan {
				res.Replans++
			}
			if rates, err = pol.Allocate(ctx, st); err != nil {
				return nil, fmt.Errorf("sim: policy %s at t=%g: %w", opt.Policy, now, err)
			}
			if err := checkRates(st, caps, rates, activeBuf, loadBuf); err != nil {
				return nil, fmt.Errorf("sim: policy %s at t=%g: %w", opt.Policy, now, err)
			}
		}

		// Next event: the earliest of coflow reveal, flow release,
		// epoch tick, and flow completion at the current rates. The
		// coflow's own Release is an event even when all its flows
		// release later: the reveal must land at the release time, not
		// piggyback on whatever event happens to fire next. Epoch ticks
		// only count while something is active — an idle gap would
		// otherwise burn one no-op event per period; the tick due at
		// the end of the gap still fires with the arrival that ends it.
		next := math.Inf(1)
		if len(st.Active) > 0 {
			next = nextEpoch
		}
		for j := 0; j < nc; j++ {
			if finished[j] {
				continue
			}
			c := &inst.Coflows[j]
			if !revealed[j] && c.Release > now+eps && c.Release < next {
				next = c.Release
			}
			for i := range c.Flows {
				if st.Remaining[j][i] <= eps {
					continue
				}
				if r := c.EffectiveRelease(i); r > now+eps && r < next {
					next = r
				}
			}
		}
		progress := false
		for _, j := range st.Active {
			if rates == nil || rates[j] == nil {
				continue
			}
			for i, rem := range st.Remaining[j] {
				if rem <= eps || rates[j][i] <= eps {
					continue
				}
				progress = true
				if t := now + rem/rates[j][i]; t < next {
					next = t
				}
			}
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("sim: stalled at t=%g with %d/%d coflows done (no rates, no pending events)",
				now, done, nc)
		}
		if !progress && next <= now+eps {
			return nil, fmt.Errorf("sim: no progress at t=%g", now)
		}
		dt := next - now
		if dt < 0 {
			dt = 0
		}

		// Advance: deplete demands at constant rates for dt.
		for _, j := range st.Active {
			if rates == nil || rates[j] == nil {
				continue
			}
			served := 0.0
			for i := range st.Remaining[j] {
				if st.Remaining[j][i] <= eps || rates[j][i] <= eps {
					continue
				}
				d := rates[j][i] * dt
				if d > st.Remaining[j][i] {
					d = st.Remaining[j][i]
				}
				st.Remaining[j][i] -= d
				served += d
				if st.Remaining[j][i] <= eps {
					st.Remaining[j][i] = 0
				}
			}
			st.Attained[j] += served
		}
		now = next

		// Completions.
		for _, j := range st.Active {
			all := true
			for _, rem := range st.Remaining[j] {
				if rem > eps {
					all = false
					break
				}
			}
			if all {
				finished[j] = true
				done++
				res.Completions[j] = now
				res.Trace = append(res.Trace, Event{Time: now, Kind: Completion, Coflow: j})
			}
		}
	}

	for j := 0; j < nc; j++ {
		c := res.Completions[j]
		res.WeightedCCT += inst.Coflows[j].Weight * c
		res.TotalCCT += c
		res.AvgCCT += c - st.Arrival[j]
		if c > res.Makespan {
			res.Makespan = c
		}
	}
	res.AvgCCT /= float64(nc)
	return res, nil
}

// checkRates verifies the policy's allocation: a full-instance rate
// matrix, non-negative rates, nothing granted to unavailable flows,
// and per-edge loads within capacity. A violation is a policy bug and
// surfaces as a diagnostic error, not a panic. active and load are
// caller-owned scratch buffers (len = coflows / edges), cleared here.
func checkRates(st *State, caps []float64, rates [][]float64, active []bool, load []float64) error {
	if len(rates) != len(st.Inst.Coflows) {
		return fmt.Errorf("rate matrix has %d rows for %d coflows (size it by the full instance)",
			len(rates), len(st.Inst.Coflows))
	}
	for j := range active {
		active[j] = false
	}
	for _, j := range st.Active {
		active[j] = true
	}
	for e := range load {
		load[e] = 0
	}
	for j := range rates {
		if rates[j] == nil {
			continue
		}
		if !active[j] {
			// A positive rate on an unrevealed or finished coflow means
			// the policy used information it must not have.
			for i, r := range rates[j] {
				if r > eps {
					return fmt.Errorf("rate %g granted to inactive coflow %d flow %d", r, j, i)
				}
			}
			continue
		}
		c := &st.Inst.Coflows[j]
		if len(rates[j]) != len(c.Flows) {
			return fmt.Errorf("coflow %d rate row has %d entries for %d flows", j, len(rates[j]), len(c.Flows))
		}
		for i := range c.Flows {
			r := rates[j][i]
			if r < 0 {
				return fmt.Errorf("negative rate %g for coflow %d flow %d", r, j, i)
			}
			if r <= eps {
				continue
			}
			if st.Remaining[j][i] <= eps || !st.Available(j, i) {
				return fmt.Errorf("rate %g granted to inactive flow %d of coflow %d", r, i, j)
			}
			for _, e := range c.Flows[i].Path {
				load[e] += r
			}
		}
	}
	for e, l := range load {
		if l > caps[e]*(1+1e-6)+eps {
			return fmt.Errorf("edge %d overloaded: rate %g > capacity %g", e, l, caps[e])
		}
	}
	return nil
}

// Slowdown returns the average per-coflow ratio of online to offline
// response times, (C_on − r) / (C_off − r) — the price of not knowing
// the future. Ratios of absolute completion times would be diluted
// toward 1 by large release offsets at low load, so the shared release
// time is subtracted from both sides (using online.Arrivals; a result
// without arrivals falls back to r = 0). Offline response times of
// zero are clamped to a small positive value.
func Slowdown(online *Result, offline []float64) (float64, error) {
	if len(offline) != len(online.Completions) {
		return 0, fmt.Errorf("sim: slowdown over %d online vs %d offline coflows",
			len(online.Completions), len(offline))
	}
	if len(offline) == 0 {
		return 0, fmt.Errorf("sim: slowdown of empty result")
	}
	var s float64
	for j, c := range online.Completions {
		var r float64
		if len(online.Arrivals) == len(online.Completions) {
			r = online.Arrivals[j]
		}
		ref := offline[j] - r
		if ref < eps {
			ref = eps
		}
		s += (c - r) / ref
	}
	return s / float64(len(offline)), nil
}
