package sim

import (
	"context"
	"sort"

	"repro/internal/graph"
)

// This file keeps the original, un-optimized LAS and fair policies
// verbatim as executable specifications, mirroring the PR 4 split of
// the event loop into Simulate and simulateReference: the registered
// "las" and "fair" policies (policy.go) maintain their state
// incrementally across events, and the differential property tests
// (policy_differential_test.go) hold them bit-identical to these
// from-scratch implementations on every topology family. Neither
// reference is registered; production runs always get the fast path.

// lasReference re-sorts the full active set by attained service at
// every event — the original lasPolicy. O(active·log active) per event
// plus the reflect-based swap of sort.SliceStable, which is exactly
// what the incremental order in lasPolicy exists to avoid.
type lasReference struct {
	order []int
}

func (*lasReference) Name() string { return NameLAS }
func (p *lasReference) Allocate(_ context.Context, st *State, out *Alloc) error {
	p.order = append(p.order[:0], st.Active...)
	sort.SliceStable(p.order, func(a, b int) bool {
		ja, jb := p.order[a], p.order[b]
		if st.Attained[ja] != st.Attained[jb] {
			return st.Attained[ja] < st.Attained[jb]
		}
		return st.Arrival[ja] < st.Arrival[jb]
	})
	PriorityRates(st, p.order, out)
	return nil
}

// fairReference is the original from-scratch progressive filling: per
// event it rebuilds the live-flow list, then every round recounts all
// unfrozen paths, applies the uniform raise flow by flow, and rescans
// every flow for freezing — O(rounds · live · path) per event. The
// registered fairPolicy produces bit-identical rates with per-edge
// counts maintained across rounds and freezing driven by a
// saturated-edge reverse index.
type fairReference struct {
	g        *graph.Graph
	live     []refLiveFlow
	count    []int
	caps     []float64
	residual []float64
}

type refLiveFlow struct {
	j, i   int
	rate   float64
	frozen bool
}

func (*fairReference) Name() string { return NameFair }
func (p *fairReference) Allocate(_ context.Context, st *State, out *Alloc) error {
	g := st.Inst.Graph
	if p.g != g {
		p.g = g
		p.caps = make([]float64, g.NumEdges())
		for _, e := range g.Edges() {
			p.caps[e.ID] = e.Capacity
		}
		p.residual = make([]float64, g.NumEdges())
		p.count = make([]int, g.NumEdges())
	}
	copy(p.residual, p.caps)
	residual, count := p.residual, p.count
	p.live = p.live[:0]
	for _, j := range st.Active {
		c := &st.Inst.Coflows[j]
		for i := range c.Flows {
			if st.Remaining[j][i] > eps && st.Available(j, i) {
				p.live = append(p.live, refLiveFlow{j: j, i: i})
			}
		}
	}
	live := p.live
	for unfrozen := len(live); unfrozen > 0; {
		for e := range count {
			count[e] = 0
		}
		for _, lf := range live {
			if lf.frozen {
				continue
			}
			for _, e := range st.Inst.Coflows[lf.j].Flows[lf.i].Path {
				count[e]++
			}
		}
		delta := -1.0
		for e, n := range count {
			if n == 0 {
				continue
			}
			if share := residual[e] / float64(n); delta < 0 || share < delta {
				delta = share
			}
		}
		if delta > 0 {
			for i := range live {
				if live[i].frozen {
					continue
				}
				live[i].rate += delta
				for _, e := range st.Inst.Coflows[live[i].j].Flows[live[i].i].Path {
					residual[e] -= delta
				}
			}
		}
		// Freeze flows through saturated edges; every round freezes at
		// least one flow, so the loop terminates.
		frozeAny := false
		for i := range live {
			if live[i].frozen {
				continue
			}
			for _, e := range st.Inst.Coflows[live[i].j].Flows[live[i].i].Path {
				if residual[e] <= eps {
					live[i].frozen = true
					unfrozen--
					frozeAny = true
					break
				}
			}
		}
		if !frozeAny {
			// No edge saturated (delta ≤ 0 with residual slack cannot
			// happen, but guard against float drift).
			break
		}
	}
	for _, lf := range live {
		if lf.rate > eps {
			out.Grant(lf.j, lf.i, lf.rate)
		}
	}
	return nil
}
