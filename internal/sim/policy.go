package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/baselines"
	"repro/internal/coflow"
)

// Registry names of the built-in policies. Epoch adapters are named
// dynamically as "epoch:<engine-scheduler>" (see adapter.go).
const (
	NameFIFO            = "fifo"
	NameLAS             = "las"
	NameFair            = "fair"
	NameSincroniaOnline = "sincronia-online"
)

// Factory builds a policy instance for one simulation run. Policies
// may carry per-run caches, so a fresh instance is built per Simulate.
type Factory func(opt Options) (Policy, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a policy factory under name. Duplicate registration
// panics: it is a programming error, caught at init time.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sim: duplicate policy %q", name))
	}
	registry[name] = f
}

func init() {
	Register(NameFIFO, func(Options) (Policy, error) {
		return orderPolicy{name: NameFIFO, order: fifoOrder}, nil
	})
	Register(NameLAS, func(Options) (Policy, error) {
		return orderPolicy{name: NameLAS, order: lasOrder}, nil
	})
	Register(NameFair, func(Options) (Policy, error) {
		return fairPolicy{}, nil
	})
	Register(NameSincroniaOnline, func(Options) (Policy, error) {
		return &sincroniaOnline{}, nil
	})
}

// Names lists every selectable policy, sorted: the registered names
// plus one "epoch:<name>" adapter per single-path-capable engine
// scheduler.
func Names() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	regMu.RUnlock()
	names = append(names, adapterNames()...)
	sort.Strings(names)
	return names
}

// New builds the named policy. Unknown names produce an error listing
// everything selectable.
func New(name string, opt Options) (Policy, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if ok {
		return f(opt)
	}
	if strings.HasPrefix(name, adapterPrefix) {
		return newAdapter(strings.TrimPrefix(name, adapterPrefix), opt)
	}
	return nil, fmt.Errorf("sim: unknown policy %q (have %v)", name, Names())
}

// PriorityRates converts a coflow priority order into rates by strict
// water-filling: walking the order, each available flow is granted the
// residual bottleneck capacity along its path. Capacity a high-priority
// coflow cannot use flows down to later coflows, so the allocation is
// work-conserving. Coflows in the order that are finished or absent
// are skipped, so stale cached orders are safe.
func PriorityRates(st *State, order []int) [][]float64 {
	g := st.Inst.Graph
	residual := make([]float64, g.NumEdges())
	for _, e := range g.Edges() {
		residual[e.ID] = e.Capacity
	}
	rates := make([][]float64, len(st.Inst.Coflows))
	for _, j := range order {
		c := &st.Inst.Coflows[j]
		for i := range c.Flows {
			if st.Remaining[j][i] <= eps || !st.Available(j, i) {
				continue
			}
			r := residual[c.Flows[i].Path[0]]
			for _, e := range c.Flows[i].Path[1:] {
				if residual[e] < r {
					r = residual[e]
				}
			}
			if r <= eps {
				continue
			}
			if rates[j] == nil {
				rates[j] = make([]float64, len(c.Flows))
			}
			rates[j][i] = r
			for _, e := range c.Flows[i].Path {
				residual[e] -= r
			}
		}
	}
	return rates
}

// orderPolicy derives rates from a priority order recomputed at every
// event (the order functions are O(n log n), so caching buys nothing).
type orderPolicy struct {
	name  string
	order func(st *State) []int
}

func (p orderPolicy) Name() string { return p.name }
func (p orderPolicy) Allocate(_ context.Context, st *State) ([][]float64, error) {
	return PriorityRates(st, p.order(st)), nil
}

// fifoOrder serves coflows in arrival order (ties by index): the
// simplest non-clairvoyant baseline.
func fifoOrder(st *State) []int {
	order := append([]int(nil), st.Active...)
	sort.SliceStable(order, func(a, b int) bool {
		return st.Arrival[order[a]] < st.Arrival[order[b]]
	})
	return order
}

// lasOrder prioritizes the coflow with the least attained service —
// the non-clairvoyant stand-in for shortest-first used by Bhimaraju,
// Nayak & Vaze (2020): without knowing demands, the coflow that has
// received the least data so far is the best guess at the shortest
// one. Ties break by arrival, then index.
func lasOrder(st *State) []int {
	order := append([]int(nil), st.Active...)
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := order[a], order[b]
		if st.Attained[ja] != st.Attained[jb] {
			return st.Attained[ja] < st.Attained[jb]
		}
		return st.Arrival[ja] < st.Arrival[jb]
	})
	return order
}

// fairPolicy is the work-conserving max-min fair share: progressive
// filling raises every available flow's rate uniformly until an edge
// saturates, freezes the flows through it, and repeats on the rest —
// the per-flow fairness a network with no coflow scheduler would give.
type fairPolicy struct{}

func (fairPolicy) Name() string { return NameFair }
func (fairPolicy) Allocate(_ context.Context, st *State) ([][]float64, error) {
	g := st.Inst.Graph
	residual := make([]float64, g.NumEdges())
	for _, e := range g.Edges() {
		residual[e.ID] = e.Capacity
	}
	type liveFlow struct {
		j, i   int
		frozen bool
	}
	var live []liveFlow
	for _, j := range st.Active {
		c := &st.Inst.Coflows[j]
		for i := range c.Flows {
			if st.Remaining[j][i] > eps && st.Available(j, i) {
				live = append(live, liveFlow{j: j, i: i})
			}
		}
	}
	rates := make([][]float64, len(st.Inst.Coflows))
	for _, lf := range live {
		if rates[lf.j] == nil {
			rates[lf.j] = make([]float64, len(st.Inst.Coflows[lf.j].Flows))
		}
	}
	count := make([]int, g.NumEdges())
	for unfrozen := len(live); unfrozen > 0; {
		for e := range count {
			count[e] = 0
		}
		for _, lf := range live {
			if lf.frozen {
				continue
			}
			for _, e := range st.Inst.Coflows[lf.j].Flows[lf.i].Path {
				count[e]++
			}
		}
		delta := -1.0
		for e, n := range count {
			if n == 0 {
				continue
			}
			if share := residual[e] / float64(n); delta < 0 || share < delta {
				delta = share
			}
		}
		if delta > 0 {
			for i := range live {
				if live[i].frozen {
					continue
				}
				rates[live[i].j][live[i].i] += delta
				for _, e := range st.Inst.Coflows[live[i].j].Flows[live[i].i].Path {
					residual[e] -= delta
				}
			}
		}
		// Freeze flows through saturated edges; every round freezes at
		// least one flow, so the loop terminates.
		frozeAny := false
		for i := range live {
			if live[i].frozen {
				continue
			}
			for _, e := range st.Inst.Coflows[live[i].j].Flows[live[i].i].Path {
				if residual[e] <= eps {
					live[i].frozen = true
					unfrozen--
					frozeAny = true
					break
				}
			}
		}
		if !frozeAny {
			// No edge saturated (delta ≤ 0 with residual slack cannot
			// happen, but guard against float drift).
			break
		}
	}
	return rates, nil
}

// sincroniaOnline re-runs the Sincronia BSSI ordering over the
// currently-known residual instance at every arrival (and epoch tick),
// then water-fills by that order — the natural online adaptation of
// the offline bottleneck greedy.
type sincroniaOnline struct {
	order []int // cached priority order, original coflow indices
}

func (*sincroniaOnline) Name() string { return NameSincroniaOnline }
func (p *sincroniaOnline) Allocate(_ context.Context, st *State) ([][]float64, error) {
	if st.Replan || p.order == nil {
		sub, back := ResidualInstance(st)
		if len(sub.Coflows) == 0 {
			p.order = []int{}
			return make([][]float64, len(st.Inst.Coflows)), nil
		}
		order := baselines.SincroniaOrder(sub)
		p.order = make([]int, len(order))
		for k, s := range order {
			p.order[k] = back[s]
		}
	}
	return PriorityRates(st, p.order), nil
}

// ResidualInstance builds the offline sub-instance a planner sees at
// st.Now: one coflow per active coflow, holding only its unfinished
// flows with demands set to the residual volume and releases
// re-expressed relative to now (0 for anything already available).
// Keeping the relative future releases matters in clairvoyant mode,
// where not-yet-released coflows are revealed early: a full-information
// planner must know *when* they become serviceable, not pretend they
// are available immediately. The second return maps sub-instance
// coflow indices back to indices in st.Inst.
func ResidualInstance(st *State) (*coflow.Instance, []int) {
	sub := &coflow.Instance{Graph: st.Inst.Graph}
	var back []int
	for _, j := range st.Active {
		c := &st.Inst.Coflows[j]
		nc := coflow.Coflow{ID: c.ID, Weight: c.Weight, Release: math.Max(0, c.Release-st.Now)}
		for i, fl := range c.Flows {
			if st.Remaining[j][i] <= eps {
				continue
			}
			nf := fl
			nf.Demand = st.Remaining[j][i]
			nf.Release = math.Max(0, c.EffectiveRelease(i)-st.Now)
			nc.Flows = append(nc.Flows, nf)
		}
		if len(nc.Flows) > 0 {
			sub.Coflows = append(sub.Coflows, nc)
			back = append(back, j)
		}
	}
	return sub, back
}
