package sim

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"

	"repro/internal/baselines"
	"repro/internal/coflow"
	"repro/internal/graph"
	"repro/internal/obs"
)

// sizeBounds buckets the per-event set sizes the policies report
// (LAS splice/merge sizes, fair freeze rounds): powers of two up to
// well past the largest benched instances.
var sizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384}

// Registry names of the built-in policies. Epoch adapters are named
// dynamically as "epoch:<engine-scheduler>" (see adapter.go).
const (
	NameFIFO            = "fifo"
	NameLAS             = "las"
	NameFair            = "fair"
	NameSincroniaOnline = "sincronia-online"
)

// Factory builds a policy instance for one simulation run. Policies
// may carry per-run caches, so a fresh instance is built per Simulate.
type Factory func(opt Options) (Policy, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a policy factory under name. Duplicate registration
// panics: it is a programming error, caught at init time.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sim: duplicate policy %q", name))
	}
	registry[name] = f
}

func init() {
	Register(NameFIFO, func(Options) (Policy, error) {
		return &fifoPolicy{}, nil
	})
	Register(NameLAS, func(opt Options) (Policy, error) {
		return &lasPolicy{splice: opt.Obs.Histogram("sim_las_splice_size", sizeBounds)}, nil
	})
	Register(NameFair, func(opt Options) (Policy, error) {
		return &fairPolicy{rounds: opt.Obs.Histogram("sim_fair_freeze_rounds", sizeBounds)}, nil
	})
	Register(NameSincroniaOnline, func(Options) (Policy, error) {
		return &sincroniaOnline{}, nil
	})
}

// Names lists every selectable policy, sorted: the registered names
// plus one "epoch:<name>" adapter per single-path-capable engine
// scheduler.
func Names() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	regMu.RUnlock()
	names = append(names, adapterNames()...)
	sort.Strings(names)
	return names
}

// New builds the named policy. Unknown names produce an error listing
// everything selectable.
func New(name string, opt Options) (Policy, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if ok {
		return f(opt)
	}
	if strings.HasPrefix(name, adapterPrefix) {
		return newAdapter(strings.TrimPrefix(name, adapterPrefix), opt)
	}
	return nil, fmt.Errorf("sim: unknown policy %q (have %v)", name, Names())
}

// PriorityRates converts a coflow priority order into sparse rates by
// strict water-filling: walking the order, each available flow is
// granted the residual bottleneck capacity along its path. Capacity a
// high-priority coflow cannot use flows down to later coflows, so the
// allocation is work-conserving. Coflows in the order that are
// finished or absent are skipped, so stale cached orders are safe.
// The water-filling scratch lives in out and is restored edge by edge
// after the walk, so a call costs O(order·flows·path) regardless of
// the network size — and once every edge is saturated the walk stops
// early (no later coflow could be granted anything), which bounds the
// cost by the network capacity rather than the backlog length when
// the system is overloaded.
func PriorityRates(st *State, order []int, out *Alloc) {
	g := st.Inst.Graph
	out.ensureScratch(g)
	out.ensurePaths(st.Inst)
	residual := out.residual
	pe, pathOff, flowBase := out.pathEdges, out.pathOff, out.flowBase
	sat := out.satBase // edges with no usable residual capacity
	ne := g.NumEdges()
	horizon := st.Now + eps
	for _, j := range order {
		if sat >= ne {
			break
		}
		rem, rel := st.Remaining[j], st.effRel[j]
		fb := flowBase[j]
		lv := out.live[j]
		w := 0
		for _, i32 := range lv {
			i := int(i32)
			if rem[i] <= eps {
				continue // finished for good: compacted out of live[j]
			}
			lv[w] = i32
			w++
			if rel[i] > horizon {
				continue
			}
			// Path bottleneck over the flat index. The scan stops as
			// soon as the running minimum drops to eps: the full minimum
			// can only be lower, and anything ≤ eps is skipped either way.
			lo, hi := int(pathOff[fb+int32(i)]), int(pathOff[fb+int32(i)+1])
			r := residual[pe[lo]]
			for k := lo + 1; k < hi && r > eps; k++ {
				if re := residual[pe[k]]; re < r {
					r = re
				}
			}
			if r <= eps {
				continue
			}
			out.Grant(j, i, r)
			for k := lo; k < hi; k++ {
				// Every edge on a granted path had residual ≥ r > eps,
				// so crossing eps here is this edge's first saturation.
				e := pe[k]
				residual[e] -= r
				if residual[e] <= eps {
					sat++
				}
				out.dirty = append(out.dirty, e)
			}
		}
		out.live[j] = lv[:w]
	}
	for _, e := range out.dirty {
		residual[e] = out.caps[e]
	}
	out.dirty = out.dirty[:0]
}

// pruneOrder drops coflows that are no longer active from a cached
// priority order, in place. PriorityRates would skip them anyway (all
// their flows are drained), but walking a 100k-long order full of
// finished coflows at every event is exactly the O(n²) this package
// no longer pays; pruning keeps cached orders at the active-set size.
func pruneOrder(st *State, order []int) []int {
	k := 0
	for _, j := range order {
		if st.IsActive(j) {
			order[k] = j
			k++
		}
	}
	return order[:k]
}

// fifoPolicy serves coflows in arrival order (ties by index): the
// simplest non-clairvoyant baseline. The order is maintained
// incrementally — coflows are revealed in (arrival, index) order, so
// appending each reveal batch keeps the cached list exactly the
// arrival-sorted order a per-event re-sort would produce, at O(active)
// per event instead of O(active·log).
type fifoPolicy struct {
	order []int
	added []bool
	batch []int
}

func (*fifoPolicy) Name() string { return NameFIFO }
func (p *fifoPolicy) Allocate(_ context.Context, st *State, out *Alloc) error {
	if p.added == nil {
		p.added = make([]bool, len(st.Inst.Coflows))
	}
	p.order = pruneOrder(st, p.order)
	p.batch = p.batch[:0]
	for _, j := range st.Active {
		if !p.added[j] {
			p.added[j] = true
			p.batch = append(p.batch, j)
		}
	}
	// Within one reveal batch arrivals may differ (several releases
	// can pass between two events); sort by arrival, ties keeping the
	// ascending index order Active yields — the reference comparator.
	slices.SortStableFunc(p.batch, func(a, b int) int {
		switch {
		case st.Arrival[a] < st.Arrival[b]:
			return -1
		case st.Arrival[a] > st.Arrival[b]:
			return 1
		default:
			return 0
		}
	})
	p.order = append(p.order, p.batch...)
	PriorityRates(st, p.order, out)
	return nil
}

// lasPolicy prioritizes the coflow with the least attained service —
// the non-clairvoyant stand-in for shortest-first used by Bhimaraju,
// Nayak & Vaze (2020): without knowing demands, the coflow that has
// received the least data so far is the best guess at the shortest
// one. Ties break by arrival, then index.
//
// The priority order is maintained incrementally under the total order
// (attained, arrival, index) — exactly what the reference's stable
// sort over the ascending active list induces. Between events only
// the coflows that were granted rate change their attained service
// (and only upward), so each call splices out the served set — whose
// size is bounded by the allocation, not the backlog — sorts it, and
// merges it back, instead of re-sorting the full active set.
type lasPolicy struct {
	order  []int
	moved  []int
	merged []int
	added  []bool
	// snap[j] is Attained[j] as of the moment j was last placed in
	// order; a mismatch means j was served and must be re-positioned.
	snap []float64
	// splice observes the displaced-set size per event (the spliced and
	// merged count — the quantity the incremental order's cost scales
	// with). Nil without a registry.
	splice *obs.Histogram
}

func (*lasPolicy) Name() string { return NameLAS }

// lasLess is the strict total order LAS serves by.
func lasLess(st *State, a, b int) bool {
	if st.Attained[a] != st.Attained[b] {
		return st.Attained[a] < st.Attained[b]
	}
	if st.Arrival[a] != st.Arrival[b] {
		return st.Arrival[a] < st.Arrival[b]
	}
	return a < b
}

func (p *lasPolicy) Allocate(_ context.Context, st *State, out *Alloc) error {
	if p.added == nil {
		nc := len(st.Inst.Coflows)
		p.added = make([]bool, nc)
		p.snap = make([]float64, nc)
	}
	// One pass over the cached order: drop finished coflows, pull out
	// the ones whose attained service moved. What remains is still
	// sorted — its keys are unchanged by construction.
	keep := p.order[:0]
	p.moved = p.moved[:0]
	for _, j := range p.order {
		if !st.IsActive(j) {
			continue
		}
		if st.Attained[j] != p.snap[j] {
			p.snap[j] = st.Attained[j]
			p.moved = append(p.moved, j)
		} else {
			keep = append(keep, j)
		}
	}
	p.order = keep
	// Newly revealed coflows join the displaced set.
	for _, j := range st.Active {
		if !p.added[j] {
			p.added[j] = true
			p.snap[j] = st.Attained[j]
			p.moved = append(p.moved, j)
		}
	}
	if len(p.moved) > 0 {
		p.splice.Observe(float64(len(p.moved)))
		slices.SortStableFunc(p.moved, func(a, b int) int {
			switch {
			case st.Attained[a] < st.Attained[b]:
				return -1
			case st.Attained[a] > st.Attained[b]:
				return 1
			case st.Arrival[a] < st.Arrival[b]:
				return -1
			case st.Arrival[a] > st.Arrival[b]:
				return 1
			default:
				return a - b
			}
		})
		m := p.merged[:0]
		a, b := p.order, p.moved
		ia, ib := 0, 0
		for ia < len(a) && ib < len(b) {
			if lasLess(st, a[ia], b[ib]) {
				m = append(m, a[ia])
				ia++
			} else {
				m = append(m, b[ib])
				ib++
			}
		}
		m = append(m, a[ia:]...)
		m = append(m, b[ib:]...)
		p.order, p.merged = m, p.order
	}
	PriorityRates(st, p.order, out)
	return nil
}

// fairPolicy is the work-conserving max-min fair share: progressive
// filling raises every available flow's rate uniformly until an edge
// saturates, freezes the flows through it, and repeats on the rest —
// the per-flow fairness a network with no coflow scheduler would give.
//
// The filling is incremental across rounds: per-edge unfrozen-flow
// counts are maintained by decrement as flows freeze (the reference
// recounts every path every round), the uniform raise is applied per
// counted edge as count[e] identical subtractions (the same float
// sequence the reference's per-flow path walk produces, so rates and
// freeze rounds are bit-identical), and freezing walks a saturated
// edge's reverse index instead of rescanning every live flow. A round
// therefore costs O(counted edges + flows frozen this round), and each
// flow is frozen exactly once per event.
type fairPolicy struct {
	g         *graph.Graph
	caps      []float64
	residual  []float64
	count     []int
	share     []float64 // residual[e]/count[e] as of the last round it was computed
	pos       []int32   // position of a counted edge in used
	used      []graph.EdgeID
	satEdges  []graph.EdgeID
	touched   []graph.EdgeID
	edgeFlows [][]int32
	live      []liveFlow
	// rounds observes the freeze-round count per event — how many
	// progressive-filling iterations the fair share took. Nil without a
	// registry.
	rounds *obs.Histogram
}

type liveFlow struct {
	j, i   int32
	fi     int32 // flat flow index: path is pathEdges[pathOff[fi]:pathOff[fi+1]]
	rate   float64
	frozen bool
}

func (*fairPolicy) Name() string { return NameFair }
func (p *fairPolicy) Allocate(_ context.Context, st *State, out *Alloc) error {
	g := st.Inst.Graph
	if p.g != g {
		p.g = g
		ne := g.NumEdges()
		p.caps = make([]float64, ne)
		for _, e := range g.Edges() {
			p.caps[e.ID] = e.Capacity
		}
		p.residual = make([]float64, ne)
		p.count = make([]int, ne)
		p.share = make([]float64, ne)
		p.pos = make([]int32, ne)
		p.edgeFlows = make([][]int32, ne)
		p.used = p.used[:0]
	}
	copy(p.residual, p.caps)
	residual, count := p.residual, p.count
	out.ensurePaths(st.Inst)
	pe, pathOff, flowBase := out.pathEdges, out.pathOff, out.flowBase

	// Live flows in ascending (coflow, flow) order — the sparse entry
	// grouping — plus per-edge counts and the edge→flows reverse index.
	// count is all-zero here: every nonzero drains to zero below.
	p.live = p.live[:0]
	horizon := st.Now + eps
	for _, j := range st.Active {
		rem, rel := st.Remaining[j], st.effRel[j]
		fb := flowBase[j]
		lv := out.live[j]
		w := 0
		for _, i32 := range lv {
			i := int(i32)
			if rem[i] <= eps {
				continue // finished for good: compacted out of live[j]
			}
			lv[w] = i32
			w++
			if rel[i] > horizon {
				continue
			}
			p.live = append(p.live, liveFlow{j: int32(j), i: i32, fi: fb + i32})
		}
		out.live[j] = lv[:w]
	}
	live := p.live
	p.used = p.used[:0]
	for s := range live {
		fi := live[s].fi
		for k := pathOff[fi]; k < pathOff[fi+1]; k++ {
			e := pe[k]
			if count[e] == 0 {
				p.pos[e] = int32(len(p.used))
				p.used = append(p.used, e)
				p.edgeFlows[e] = p.edgeFlows[e][:0]
			}
			count[e]++
			p.edgeFlows[e] = append(p.edgeFlows[e], int32(s))
		}
	}

	// The rounds. Every round's delta is the min over counted edges of
	// the residual share residual[e]/count[e] — the same value the
	// reference's all-flows path scan finds (same multiset; a min is
	// order-independent) — and every counted edge then loses delta once
	// per unfrozen flow through it, as count[e] sequential subtractions
	// (the same float sequence the reference's per-flow walk produces).
	// The small-count shares avoid the division: x/1 is x, and x/2 and
	// x·0.5 round to the identical float.
	//
	// Instead of a separate min scan per round, the subtraction pass
	// speculatively computes next round's shares with the pre-freeze
	// counts and tracks their min. The freeze step only ever lowers
	// counts, and correctly-rounded division is monotone, so a touched
	// edge's true share can only be ≥ its speculative one: the
	// speculative min stands as next round's exact delta unless its own
	// edge was touched — then the stored shares (fixed up for the
	// touched edges) are rescanned, with no division. Edges whose flows
	// all froze are compacted out of used in passing.
	fill := 0.0
	used := p.used
	share := p.share
	sat := p.satEdges[:0]
	touched := p.touched[:0]
	var specMin float64
	var specArg graph.EdgeID
	var specN int
	specValid := false
	// Round 1 has no prior subtraction pass: seed the shares and their
	// min from scratch. Zero-capacity edges keep their ≤ 0 share here —
	// the reference's min sees them too, forcing the delta ≤ 0 path.
	delta := -1.0
	for _, e := range used {
		var sh float64
		switch count[e] {
		case 1:
			sh = residual[e]
		case 2:
			sh = residual[e] * 0.5
		default:
			sh = residual[e] / float64(count[e])
		}
		share[e] = sh
		if delta < 0 || sh < delta {
			delta = sh
		}
	}
	fillRounds := 0
	for unfrozen := len(live); unfrozen > 0; {
		fillRounds++
		sat = sat[:0]
		if delta > 0 {
			fill += delta
			specValid = false
			for _, e := range used {
				n := count[e]
				r := residual[e]
				if n == 1 {
					r -= delta
				} else {
					for k := n; k > 0; k-- {
						r -= delta
					}
				}
				residual[e] = r
				if r <= eps {
					// Saturated: all its unfrozen flows freeze this
					// round, so it leaves the counted set — no share.
					sat = append(sat, e)
					continue
				}
				var sh float64
				switch n {
				case 1:
					sh = r
				case 2:
					sh = r * 0.5
				default:
					sh = r / float64(n)
				}
				share[e] = sh
				if !specValid || sh < specMin {
					specMin, specArg, specN, specValid = sh, e, n, true
				}
			}
		} else {
			for _, e := range used {
				if residual[e] <= eps {
					sat = append(sat, e)
				}
			}
		}
		// Freeze every unfrozen flow through a saturated edge, walking
		// the saturated edges' reverse indexes and recording every
		// decremented edge for the share fix-up.
		frozeAny := false
		touched = touched[:0]
		for _, e := range sat {
			for _, s := range p.edgeFlows[e] {
				lf := &live[s]
				if lf.frozen {
					continue
				}
				lf.frozen = true
				lf.rate = fill
				unfrozen--
				frozeAny = true
				fi := lf.fi
				for k := pathOff[fi]; k < pathOff[fi+1]; k++ {
					te := pe[k]
					count[te]--
					if count[te] == 0 {
						// te's last flow froze: swap-remove it from the
						// counted set, so no later pass tests for it.
						last := int32(len(used) - 1)
						le := used[last]
						pt := p.pos[te]
						used[pt] = le
						p.pos[le] = pt
						used = used[:last]
					} else {
						touched = append(touched, te)
					}
				}
			}
		}
		if !frozeAny {
			// No edge saturated (delta ≤ 0 with residual slack cannot
			// happen, but guard against float drift). Unfrozen flows
			// keep the accumulated fill level.
			break
		}
		if unfrozen == 0 {
			break
		}
		// Pass A stores every counted edge's share fresh each round, so
		// staleness never outlives the round: only this round's touched
		// edges can be stale, and only a rescan reads them. The fix-up
		// is therefore deferred until a rescan is actually needed —
		// which is O(1) to detect: the speculative min stands unless its
		// own edge's count changed.
		if specValid && count[specArg] == specN {
			delta = specMin
		} else {
			for _, e := range touched {
				n := count[e]
				if n == 0 {
					continue
				}
				var sh float64
				switch n {
				case 1:
					sh = residual[e]
				case 2:
					sh = residual[e] * 0.5
				default:
					sh = residual[e] / float64(n)
				}
				share[e] = sh
			}
			delta = -1.0
			for _, e := range used {
				if sh := share[e]; delta < 0 || sh < delta {
					delta = sh
				}
			}
		}
	}
	p.satEdges = sat
	p.touched = touched
	if len(live) > 0 {
		p.rounds.Observe(float64(fillRounds))
	}
	for _, e := range used {
		count[e] = 0
	}
	for s := range live {
		r := live[s].rate
		if !live[s].frozen {
			r = fill
		}
		if r > eps {
			out.Grant(int(live[s].j), int(live[s].i), r)
		}
	}
	return nil
}

// sincroniaOnline re-runs the Sincronia BSSI ordering over the
// currently-known residual instance at every arrival (and epoch tick),
// then water-fills by that order — the natural online adaptation of
// the offline bottleneck greedy. Between replans the cached order is
// pruned of finished coflows so water-filling stays O(active), and the
// residual sub-instance is rebuilt into reusable buffers (the ordering
// does not retain it), so a replan allocates nothing beyond what the
// backlog's growth forces.
type sincroniaOnline struct {
	order []int // cached priority order, original coflow indices
	sub   coflow.Instance
	back  []int
	flows []coflow.Flow // backing for all sub-instance flow slices
}

func (*sincroniaOnline) Name() string { return NameSincroniaOnline }
func (p *sincroniaOnline) Allocate(_ context.Context, st *State, out *Alloc) error {
	if st.Replan || p.order == nil {
		sub, back := p.residual(st)
		if len(sub.Coflows) == 0 {
			p.order = p.order[:0]
			if p.order == nil {
				p.order = []int{}
			}
			return nil
		}
		order := baselines.SincroniaOrder(sub)
		p.order = p.order[:0]
		for _, s := range order {
			p.order = append(p.order, back[s])
		}
	} else {
		p.order = pruneOrder(st, p.order)
	}
	PriorityRates(st, p.order, out)
	return nil
}

// residual is ResidualInstance into the policy's reusable buffers: a
// first pass counts the surviving flows so the shared backing array
// never reallocates mid-build (sub-instance coflows hold sub-slices
// of it), then the second pass fills it. Values are identical to
// ResidualInstance's.
func (p *sincroniaOnline) residual(st *State) (*coflow.Instance, []int) {
	total := 0
	for _, j := range st.Active {
		for _, rem := range st.Remaining[j] {
			if rem > eps {
				total++
			}
		}
	}
	if cap(p.flows) < total {
		p.flows = make([]coflow.Flow, 0, total+total/2)
	}
	p.flows = p.flows[:0]
	p.sub.Graph = st.Inst.Graph
	p.sub.Coflows = p.sub.Coflows[:0]
	p.back = p.back[:0]
	for _, j := range st.Active {
		c := &st.Inst.Coflows[j]
		start := len(p.flows)
		for i, fl := range c.Flows {
			if st.Remaining[j][i] <= eps {
				continue
			}
			nf := fl
			nf.Demand = st.Remaining[j][i]
			nf.Release = math.Max(0, st.effRel[j][i]-st.Now)
			p.flows = append(p.flows, nf)
		}
		if len(p.flows) == start {
			continue
		}
		p.sub.Coflows = append(p.sub.Coflows, coflow.Coflow{
			ID: c.ID, Weight: c.Weight, Release: math.Max(0, c.Release-st.Now),
			Flows: p.flows[start:len(p.flows):len(p.flows)],
		})
		p.back = append(p.back, j)
	}
	return &p.sub, p.back
}

// ResidualInstance builds the offline sub-instance a planner sees at
// st.Now: one coflow per active coflow, holding only its unfinished
// flows with demands set to the residual volume and releases
// re-expressed relative to now (0 for anything already available).
// Keeping the relative future releases matters in clairvoyant mode,
// where not-yet-released coflows are revealed early: a full-information
// planner must know *when* they become serviceable, not pretend they
// are available immediately. The second return maps sub-instance
// coflow indices back to indices in st.Inst.
func ResidualInstance(st *State) (*coflow.Instance, []int) {
	sub := &coflow.Instance{
		Graph:   st.Inst.Graph,
		Coflows: make([]coflow.Coflow, 0, len(st.Active)),
	}
	back := make([]int, 0, len(st.Active))
	for _, j := range st.Active {
		c := &st.Inst.Coflows[j]
		nc := coflow.Coflow{ID: c.ID, Weight: c.Weight, Release: math.Max(0, c.Release-st.Now)}
		nc.Flows = make([]coflow.Flow, 0, len(c.Flows))
		for i, fl := range c.Flows {
			if st.Remaining[j][i] <= eps {
				continue
			}
			nf := fl
			nf.Demand = st.Remaining[j][i]
			nf.Release = math.Max(0, st.effRel[j][i]-st.Now)
			nc.Flows = append(nc.Flows, nf)
		}
		if len(nc.Flows) > 0 {
			sub.Coflows = append(sub.Coflows, nc)
			back = append(back, j)
		}
	}
	return sub, back
}
