package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/baselines"
	"repro/internal/coflow"
	"repro/internal/graph"
)

// Registry names of the built-in policies. Epoch adapters are named
// dynamically as "epoch:<engine-scheduler>" (see adapter.go).
const (
	NameFIFO            = "fifo"
	NameLAS             = "las"
	NameFair            = "fair"
	NameSincroniaOnline = "sincronia-online"
)

// Factory builds a policy instance for one simulation run. Policies
// may carry per-run caches, so a fresh instance is built per Simulate.
type Factory func(opt Options) (Policy, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a policy factory under name. Duplicate registration
// panics: it is a programming error, caught at init time.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sim: duplicate policy %q", name))
	}
	registry[name] = f
}

func init() {
	Register(NameFIFO, func(Options) (Policy, error) {
		return &fifoPolicy{}, nil
	})
	Register(NameLAS, func(Options) (Policy, error) {
		return &lasPolicy{}, nil
	})
	Register(NameFair, func(Options) (Policy, error) {
		return &fairPolicy{}, nil
	})
	Register(NameSincroniaOnline, func(Options) (Policy, error) {
		return &sincroniaOnline{}, nil
	})
}

// Names lists every selectable policy, sorted: the registered names
// plus one "epoch:<name>" adapter per single-path-capable engine
// scheduler.
func Names() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	regMu.RUnlock()
	names = append(names, adapterNames()...)
	sort.Strings(names)
	return names
}

// New builds the named policy. Unknown names produce an error listing
// everything selectable.
func New(name string, opt Options) (Policy, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if ok {
		return f(opt)
	}
	if strings.HasPrefix(name, adapterPrefix) {
		return newAdapter(strings.TrimPrefix(name, adapterPrefix), opt)
	}
	return nil, fmt.Errorf("sim: unknown policy %q (have %v)", name, Names())
}

// PriorityRates converts a coflow priority order into sparse rates by
// strict water-filling: walking the order, each available flow is
// granted the residual bottleneck capacity along its path. Capacity a
// high-priority coflow cannot use flows down to later coflows, so the
// allocation is work-conserving. Coflows in the order that are
// finished or absent are skipped, so stale cached orders are safe.
// The water-filling scratch lives in out and is restored edge by edge
// after the walk, so a call costs O(order·flows·path) regardless of
// the network size — and once every edge is saturated the walk stops
// early (no later coflow could be granted anything), which bounds the
// cost by the network capacity rather than the backlog length when
// the system is overloaded.
func PriorityRates(st *State, order []int, out *Alloc) {
	g := st.Inst.Graph
	out.ensureScratch(g)
	residual := out.residual
	sat := out.satBase // edges with no usable residual capacity
	ne := g.NumEdges()
	horizon := st.Now + eps
	for _, j := range order {
		if sat >= ne {
			break
		}
		c := &st.Inst.Coflows[j]
		rem, rel := st.Remaining[j], st.effRel[j]
		for i := range c.Flows {
			if rem[i] <= eps || rel[i] > horizon {
				continue
			}
			path := c.Flows[i].Path
			r := residual[path[0]]
			for _, e := range path[1:] {
				if residual[e] < r {
					r = residual[e]
				}
			}
			if r <= eps {
				continue
			}
			out.Grant(j, i, r)
			for _, e := range path {
				// Every edge on a granted path had residual ≥ r > eps,
				// so crossing eps here is this edge's first saturation.
				residual[e] -= r
				if residual[e] <= eps {
					sat++
				}
				out.dirty = append(out.dirty, e)
			}
		}
	}
	for _, e := range out.dirty {
		residual[e] = out.caps[e]
	}
	out.dirty = out.dirty[:0]
}

// pruneOrder drops coflows that are no longer active from a cached
// priority order, in place. PriorityRates would skip them anyway (all
// their flows are drained), but walking a 100k-long order full of
// finished coflows at every event is exactly the O(n²) this package
// no longer pays; pruning keeps cached orders at the active-set size.
func pruneOrder(st *State, order []int) []int {
	k := 0
	for _, j := range order {
		if st.IsActive(j) {
			order[k] = j
			k++
		}
	}
	return order[:k]
}

// fifoPolicy serves coflows in arrival order (ties by index): the
// simplest non-clairvoyant baseline. The order is maintained
// incrementally — coflows are revealed in (arrival, index) order, so
// appending each reveal batch keeps the cached list exactly the
// arrival-sorted order a per-event re-sort would produce, at O(active)
// per event instead of O(active·log).
type fifoPolicy struct {
	order []int
	added []bool
	batch []int
}

func (*fifoPolicy) Name() string { return NameFIFO }
func (p *fifoPolicy) Allocate(_ context.Context, st *State, out *Alloc) error {
	if p.added == nil {
		p.added = make([]bool, len(st.Inst.Coflows))
	}
	p.order = pruneOrder(st, p.order)
	p.batch = p.batch[:0]
	for _, j := range st.Active {
		if !p.added[j] {
			p.added[j] = true
			p.batch = append(p.batch, j)
		}
	}
	// Within one reveal batch arrivals may differ (several releases
	// can pass between two events); sort by arrival, ties keeping the
	// ascending index order Active yields — the reference comparator.
	sort.SliceStable(p.batch, func(a, b int) bool {
		return st.Arrival[p.batch[a]] < st.Arrival[p.batch[b]]
	})
	p.order = append(p.order, p.batch...)
	PriorityRates(st, p.order, out)
	return nil
}

// lasPolicy prioritizes the coflow with the least attained service —
// the non-clairvoyant stand-in for shortest-first used by Bhimaraju,
// Nayak & Vaze (2020): without knowing demands, the coflow that has
// received the least data so far is the best guess at the shortest
// one. Ties break by arrival, then index. Attained service changes at
// every event, so the order is re-sorted per call (over a reused
// buffer).
type lasPolicy struct {
	order []int
}

func (*lasPolicy) Name() string { return NameLAS }
func (p *lasPolicy) Allocate(_ context.Context, st *State, out *Alloc) error {
	p.order = append(p.order[:0], st.Active...)
	sort.SliceStable(p.order, func(a, b int) bool {
		ja, jb := p.order[a], p.order[b]
		if st.Attained[ja] != st.Attained[jb] {
			return st.Attained[ja] < st.Attained[jb]
		}
		return st.Arrival[ja] < st.Arrival[jb]
	})
	PriorityRates(st, p.order, out)
	return nil
}

// fairPolicy is the work-conserving max-min fair share: progressive
// filling raises every available flow's rate uniformly until an edge
// saturates, freezes the flows through it, and repeats on the rest —
// the per-flow fairness a network with no coflow scheduler would give.
// All scratch is reused across events; the live list is built in
// ascending (coflow, flow) order, which is exactly the entry grouping
// the sparse contract requires.
type fairPolicy struct {
	g        *graph.Graph
	live     []liveFlow
	count    []int
	caps     []float64
	residual []float64
}

type liveFlow struct {
	j, i   int
	rate   float64
	frozen bool
}

func (*fairPolicy) Name() string { return NameFair }
func (p *fairPolicy) Allocate(_ context.Context, st *State, out *Alloc) error {
	g := st.Inst.Graph
	if p.g != g {
		p.g = g
		p.caps = make([]float64, g.NumEdges())
		for _, e := range g.Edges() {
			p.caps[e.ID] = e.Capacity
		}
		p.residual = make([]float64, g.NumEdges())
		p.count = make([]int, g.NumEdges())
	}
	copy(p.residual, p.caps)
	residual, count := p.residual, p.count
	p.live = p.live[:0]
	for _, j := range st.Active {
		c := &st.Inst.Coflows[j]
		for i := range c.Flows {
			if st.Remaining[j][i] > eps && st.Available(j, i) {
				p.live = append(p.live, liveFlow{j: j, i: i})
			}
		}
	}
	live := p.live
	for unfrozen := len(live); unfrozen > 0; {
		for e := range count {
			count[e] = 0
		}
		for _, lf := range live {
			if lf.frozen {
				continue
			}
			for _, e := range st.Inst.Coflows[lf.j].Flows[lf.i].Path {
				count[e]++
			}
		}
		delta := -1.0
		for e, n := range count {
			if n == 0 {
				continue
			}
			if share := residual[e] / float64(n); delta < 0 || share < delta {
				delta = share
			}
		}
		if delta > 0 {
			for i := range live {
				if live[i].frozen {
					continue
				}
				live[i].rate += delta
				for _, e := range st.Inst.Coflows[live[i].j].Flows[live[i].i].Path {
					residual[e] -= delta
				}
			}
		}
		// Freeze flows through saturated edges; every round freezes at
		// least one flow, so the loop terminates.
		frozeAny := false
		for i := range live {
			if live[i].frozen {
				continue
			}
			for _, e := range st.Inst.Coflows[live[i].j].Flows[live[i].i].Path {
				if residual[e] <= eps {
					live[i].frozen = true
					unfrozen--
					frozeAny = true
					break
				}
			}
		}
		if !frozeAny {
			// No edge saturated (delta ≤ 0 with residual slack cannot
			// happen, but guard against float drift).
			break
		}
	}
	for _, lf := range live {
		if lf.rate > eps {
			out.Grant(lf.j, lf.i, lf.rate)
		}
	}
	return nil
}

// sincroniaOnline re-runs the Sincronia BSSI ordering over the
// currently-known residual instance at every arrival (and epoch tick),
// then water-fills by that order — the natural online adaptation of
// the offline bottleneck greedy. Between replans the cached order is
// pruned of finished coflows so water-filling stays O(active), and the
// residual sub-instance is rebuilt into reusable buffers (the ordering
// does not retain it), so a replan allocates nothing beyond what the
// backlog's growth forces.
type sincroniaOnline struct {
	order []int // cached priority order, original coflow indices
	sub   coflow.Instance
	back  []int
	flows []coflow.Flow // backing for all sub-instance flow slices
}

func (*sincroniaOnline) Name() string { return NameSincroniaOnline }
func (p *sincroniaOnline) Allocate(_ context.Context, st *State, out *Alloc) error {
	if st.Replan || p.order == nil {
		sub, back := p.residual(st)
		if len(sub.Coflows) == 0 {
			p.order = p.order[:0]
			if p.order == nil {
				p.order = []int{}
			}
			return nil
		}
		order := baselines.SincroniaOrder(sub)
		p.order = p.order[:0]
		for _, s := range order {
			p.order = append(p.order, back[s])
		}
	} else {
		p.order = pruneOrder(st, p.order)
	}
	PriorityRates(st, p.order, out)
	return nil
}

// residual is ResidualInstance into the policy's reusable buffers: a
// first pass counts the surviving flows so the shared backing array
// never reallocates mid-build (sub-instance coflows hold sub-slices
// of it), then the second pass fills it. Values are identical to
// ResidualInstance's.
func (p *sincroniaOnline) residual(st *State) (*coflow.Instance, []int) {
	total := 0
	for _, j := range st.Active {
		for _, rem := range st.Remaining[j] {
			if rem > eps {
				total++
			}
		}
	}
	if cap(p.flows) < total {
		p.flows = make([]coflow.Flow, 0, total+total/2)
	}
	p.flows = p.flows[:0]
	p.sub.Graph = st.Inst.Graph
	p.sub.Coflows = p.sub.Coflows[:0]
	p.back = p.back[:0]
	for _, j := range st.Active {
		c := &st.Inst.Coflows[j]
		start := len(p.flows)
		for i, fl := range c.Flows {
			if st.Remaining[j][i] <= eps {
				continue
			}
			nf := fl
			nf.Demand = st.Remaining[j][i]
			nf.Release = math.Max(0, st.effRel[j][i]-st.Now)
			p.flows = append(p.flows, nf)
		}
		if len(p.flows) == start {
			continue
		}
		p.sub.Coflows = append(p.sub.Coflows, coflow.Coflow{
			ID: c.ID, Weight: c.Weight, Release: math.Max(0, c.Release-st.Now),
			Flows: p.flows[start:len(p.flows):len(p.flows)],
		})
		p.back = append(p.back, j)
	}
	return &p.sub, p.back
}

// ResidualInstance builds the offline sub-instance a planner sees at
// st.Now: one coflow per active coflow, holding only its unfinished
// flows with demands set to the residual volume and releases
// re-expressed relative to now (0 for anything already available).
// Keeping the relative future releases matters in clairvoyant mode,
// where not-yet-released coflows are revealed early: a full-information
// planner must know *when* they become serviceable, not pretend they
// are available immediately. The second return maps sub-instance
// coflow indices back to indices in st.Inst.
func ResidualInstance(st *State) (*coflow.Instance, []int) {
	sub := &coflow.Instance{
		Graph:   st.Inst.Graph,
		Coflows: make([]coflow.Coflow, 0, len(st.Active)),
	}
	back := make([]int, 0, len(st.Active))
	for _, j := range st.Active {
		c := &st.Inst.Coflows[j]
		nc := coflow.Coflow{ID: c.ID, Weight: c.Weight, Release: math.Max(0, c.Release-st.Now)}
		nc.Flows = make([]coflow.Flow, 0, len(c.Flows))
		for i, fl := range c.Flows {
			if st.Remaining[j][i] <= eps {
				continue
			}
			nf := fl
			nf.Demand = st.Remaining[j][i]
			nf.Release = math.Max(0, st.effRel[j][i]-st.Now)
			nc.Flows = append(nc.Flows, nf)
		}
		if len(nc.Flows) > 0 {
			sub.Coflows = append(sub.Coflows, nc)
			back = append(back, j)
		}
	}
	return sub, back
}
