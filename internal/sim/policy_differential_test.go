package sim

// Differential tests for the incremental policies: the registered
// "las" and "fair" implementations maintain their order / water-fill
// state across events, and these tests hold them bit-identical to the
// from-scratch reference implementations (policy_reference.go) on the
// same instances — full traces, completions, and aggregates compared
// exactly, across all four topology families and a seed sweep. The
// loop-level differential tests (differential_test.go) already pin
// Simulate against simulateReference with the same policy on both
// sides; this file pins the policy pair under the same loop, so the
// two suites together cover both axes of the fast path.

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/coflow"
	"repro/internal/stats"
)

// runPolicy executes the optimized event loop with an explicitly
// injected policy instance — the hook that lets unregistered reference
// policies run under the identical loop.
func runPolicy(t *testing.T, in *coflow.Instance, opt Options, pol Policy) *Result {
	t.Helper()
	opt = opt.Normalize()
	if err := in.Validate(coflow.SinglePath); err != nil {
		t.Fatalf("instance: %v", err)
	}
	res, err := newRunner(in, opt, pol).run(context.Background())
	if err != nil {
		t.Fatalf("policy %s: %v", pol.Name(), err)
	}
	return res
}

// diffPolicyCompare runs the registered fast policy and the reference
// implementation on the same instance and fails on any divergence.
func diffPolicyCompare(t *testing.T, in *coflow.Instance, opt Options, ref Policy) {
	t.Helper()
	opt = opt.Normalize()
	fast, err := Simulate(context.Background(), in, opt)
	if err != nil {
		t.Fatalf("fast %s: %v", opt.Policy, err)
	}
	want := runPolicy(t, in, opt, ref)
	if len(fast.Trace) != len(want.Trace) {
		t.Fatalf("trace length %d, reference policy %d", len(fast.Trace), len(want.Trace))
	}
	for i := range want.Trace {
		if fast.Trace[i] != want.Trace[i] {
			t.Fatalf("trace event %d: got %+v, reference policy %+v", i, fast.Trace[i], want.Trace[i])
		}
	}
	if !reflect.DeepEqual(fast.Completions, want.Completions) {
		t.Fatalf("completions diverge:\n got %v\n ref %v", fast.Completions, want.Completions)
	}
	if fast.WeightedCCT != want.WeightedCCT || fast.TotalCCT != want.TotalCCT ||
		fast.AvgCCT != want.AvgCCT || fast.Makespan != want.Makespan {
		t.Fatalf("aggregates diverge: got (%v %v %v %v), ref (%v %v %v %v)",
			fast.WeightedCCT, fast.TotalCCT, fast.AvgCCT, fast.Makespan,
			want.WeightedCCT, want.TotalCCT, want.AvgCCT, want.Makespan)
	}
	if fast.Events != want.Events || fast.Replans != want.Replans {
		t.Fatalf("events/replans diverge: got %d/%d, ref %d/%d",
			fast.Events, fast.Replans, want.Events, want.Replans)
	}
}

// refFactory builds a fresh reference policy per run (policies carry
// per-run caches).
var refFactories = map[string]func() Policy{
	NameLAS:  func() Policy { return &lasReference{} },
	NameFair: func() Policy { return &fairReference{} },
}

// TestDifferentialIncrementalPolicies sweeps the incremental policies
// against their references over the four topology families, with
// per-flow release jitter (so availability flips between events) and
// epoch ticks, under the paranoid full check.
func TestDifferentialIncrementalPolicies(t *testing.T) {
	for name, mk := range refFactories {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for ti, spec := range differentialTopos {
				seed := int64(stats.SubSeed(211, uint64(ti)))
				in := differentialInstance(t, spec, 25, seed)
				opt := Options{Policy: name, Epoch: 1.5, Seed: seed, CheckEvery: 1}
				diffPolicyCompare(t, in, opt, mk())
			}
		})
	}
}

// TestDifferentialIncrementalPoliciesClairvoyant pins the clairvoyant
// path: every coflow is revealed at t=0, so the incremental structures
// absorb the whole instance as one reveal batch while service still
// honors releases.
func TestDifferentialIncrementalPoliciesClairvoyant(t *testing.T) {
	for name, mk := range refFactories {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for ti, spec := range differentialTopos {
				seed := int64(stats.SubSeed(223, uint64(ti)))
				in := differentialInstance(t, spec, 15, seed)
				opt := Options{Policy: name, Seed: seed, Clairvoyant: true, CheckEvery: 1}
				diffPolicyCompare(t, in, opt, mk())
			}
		})
	}
}

// TestDifferentialIncrementalPoliciesSeedSweep is the breadth pass:
// many seeds on one topology per policy, covering event interleavings
// (simultaneous reveals, completion/tick ties) a single seed cannot.
func TestDifferentialIncrementalPoliciesSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	for name, mk := range refFactories {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for s := int64(0); s < 10; s++ {
				in := differentialInstance(t, "leaf-spine:leaves=3,spines=2,hosts=2", 30, 2000+s)
				opt := Options{Policy: name, Epoch: 2, Seed: s, CheckEvery: 5}
				diffPolicyCompare(t, in, opt, mk())
			}
		})
	}
}
