package sim

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/coflow"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/workload"
)

// pipeInstance is two coflows sharing one unit-capacity edge a→b:
// coflow 0 (demand 2) released at t=0, coflow 1 (demand 1) at t=1.
func pipeInstance() *coflow.Instance {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	e := g.AddEdge(a, b, 1)
	return &coflow.Instance{
		Graph: g,
		Coflows: []coflow.Coflow{
			{ID: 0, Weight: 1, Release: 0, Flows: []coflow.Flow{
				{Source: a, Sink: b, Demand: 2, Path: []graph.EdgeID{e}}}},
			{ID: 1, Weight: 1, Release: 1, Flows: []coflow.Flow{
				{Source: a, Sink: b, Demand: 1, Path: []graph.EdgeID{e}}}},
		},
	}
}

func fbInstance(t testing.TB, n int, interarrival float64, seed int64) *coflow.Instance {
	t.Helper()
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: graph.SWAN(1), NumCoflows: n, Seed: seed,
		MeanInterarrival: interarrival, AssignPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestFIFOServesInArrivalOrder(t *testing.T) {
	res, err := Simulate(context.Background(), pipeInstance(), Options{Policy: NameFIFO})
	if err != nil {
		t.Fatal(err)
	}
	// FIFO: coflow 0 holds the edge on [0,2], coflow 1 runs on [2,3].
	if !almost(res.Completions[0], 2) || !almost(res.Completions[1], 3) {
		t.Fatalf("completions = %v, want [2 3]", res.Completions)
	}
	if !almost(res.Makespan, 3) || !almost(res.WeightedCCT, 5) {
		t.Fatalf("makespan %v weighted %v", res.Makespan, res.WeightedCCT)
	}
	// Avg response time: (2-0 + 3-1)/2 = 2.
	if !almost(res.AvgCCT, 2) {
		t.Fatalf("avg CCT %v, want 2", res.AvgCCT)
	}
}

func TestLASPreemptsForNewcomer(t *testing.T) {
	res, err := Simulate(context.Background(), pipeInstance(), Options{Policy: NameLAS})
	if err != nil {
		t.Fatal(err)
	}
	// At t=1 coflow 0 has attained 1, the newcomer 0 → LAS preempts:
	// coflow 1 runs on [1,2], coflow 0 resumes and finishes at 3.
	if !almost(res.Completions[0], 3) || !almost(res.Completions[1], 2) {
		t.Fatalf("completions = %v, want [3 2]", res.Completions)
	}
}

func TestFairSharesTheBottleneck(t *testing.T) {
	in := pipeInstance()
	in.Coflows[1].Release = 0 // both from t=0
	in.Coflows[1].Flows[0].Demand = 1
	res, err := Simulate(context.Background(), in, Options{Policy: NameFair})
	if err != nil {
		t.Fatal(err)
	}
	// Rate 1/2 each until coflow 1 (demand 1) finishes at t=2; coflow 0
	// then gets the full edge and finishes its remaining 1 at t=3.
	if !almost(res.Completions[1], 2) || !almost(res.Completions[0], 3) {
		t.Fatalf("completions = %v, want [3 2]", res.Completions)
	}
}

func TestEveryPolicyCompletesAnOnlineWorkload(t *testing.T) {
	in := fbInstance(t, 6, 1.0, 7)
	for _, name := range Names() {
		res, err := Simulate(context.Background(), in, Options{
			Policy: name, MaxSlots: 24, Trials: 2, Seed: 11,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Policy != name || res.Events == 0 {
			t.Fatalf("%s: bad result header %+v", name, res)
		}
		for j, c := range res.Completions {
			if math.IsInf(c, 0) || math.IsNaN(c) || c < in.Coflows[j].Release {
				t.Fatalf("%s: coflow %d completion %v before release %v",
					name, j, c, in.Coflows[j].Release)
			}
		}
		if res.AvgCCT <= 0 || res.Makespan <= 0 || res.WeightedCCT <= 0 {
			t.Fatalf("%s: non-positive metrics %+v", name, res)
		}
	}
}

// TestArrivalsAreHonored checks online-ness: no coflow may receive
// service before its release, so a late heavy arrival cannot finish
// earlier than its release plus its bottleneck lower bound.
func TestArrivalsAreHonored(t *testing.T) {
	in := pipeInstance()
	for _, name := range []string{NameFIFO, NameLAS, NameFair, NameSincroniaOnline} {
		res, err := Simulate(context.Background(), in, Options{Policy: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Coflow 1: released at 1, demand 1 on a unit edge → C ≥ 2.
		if res.Completions[1] < 2-1e-9 {
			t.Fatalf("%s: coflow 1 finished at %v < 2 (served before release?)",
				name, res.Completions[1])
		}
	}
}

// TestDeterministicAcrossWorkers mirrors the Stretch-trials
// determinism tests: the epoch:stretch adapter fans LP roundings over
// the worker pool at every replan, and the event trace and metrics
// must be bit-identical at any worker count and across repeated runs.
func TestDeterministicAcrossWorkers(t *testing.T) {
	in := fbInstance(t, 5, 1.0, 3)
	run := func(workers int) *Result {
		res, err := Simulate(context.Background(), in, Options{
			Policy: "epoch:stretch", MaxSlots: 16, Trials: 4, Seed: 42, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{4, 8} {
		got := run(w)
		if !reflect.DeepEqual(got.Trace, ref.Trace) {
			t.Fatalf("workers=%d: trace diverged\n got %v\nwant %v", w, got.Trace, ref.Trace)
		}
		if !reflect.DeepEqual(got.Completions, ref.Completions) {
			t.Fatalf("workers=%d: completions diverged: %v vs %v", w, got.Completions, ref.Completions)
		}
		if got.WeightedCCT != ref.WeightedCCT || got.Replans != ref.Replans {
			t.Fatalf("workers=%d: metrics diverged", w)
		}
	}
	again := run(1)
	if !reflect.DeepEqual(again.Trace, ref.Trace) || again.WeightedCCT != ref.WeightedCCT {
		t.Fatal("same seed, same workers: second run diverged")
	}
}

// TestZeroReleaseConvergesToOffline is the acceptance criterion: with
// every coflow released at t=0 the online epoch adapter plans once
// with full information, so its weighted CCT must be within 2× of the
// clairvoyant offline Stretch result.
func TestZeroReleaseConvergesToOffline(t *testing.T) {
	in := fbInstance(t, 8, 0, 5) // MeanInterarrival 0 → all releases at t=0
	off, err := engine.Schedule(context.Background(), "stretch", in, coflow.SinglePath,
		engine.Options{MaxSlots: 24, Trials: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Simulate(context.Background(), in, Options{
		Policy: "epoch:stretch", MaxSlots: 24, Trials: 5, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if on.Replans != 1 {
		t.Fatalf("zero-release case replanned %d times, want 1", on.Replans)
	}
	if on.WeightedCCT > 2*off.Weighted+1e-9 {
		t.Fatalf("online weighted CCT %.3f > 2× offline %.3f", on.WeightedCCT, off.Weighted)
	}
}

func TestEpochTicksTriggerReplans(t *testing.T) {
	in := pipeInstance()
	res, err := Simulate(context.Background(), in, Options{
		Policy: NameSincroniaOnline, Epoch: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ticks int
	for _, ev := range res.Trace {
		if ev.Kind == EpochTick {
			ticks++
		}
	}
	if ticks == 0 {
		t.Fatal("no epoch ticks in trace")
	}
	if res.Replans <= 2 { // 2 arrivals alone; ticks must add more
		t.Fatalf("replans = %d, want > 2", res.Replans)
	}
}

func TestUnknownPolicyListsNames(t *testing.T) {
	_, err := New("bogus", Options{})
	if err == nil {
		t.Fatal("expected error")
	}
	for _, want := range []string{NameLAS, NameFair, "epoch:stretch"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list %q", err, want)
		}
	}
	if _, err := New("epoch:nope", Options{}); err == nil ||
		!strings.Contains(err.Error(), "stretch") {
		t.Fatalf("epoch adapter error should list engine schedulers, got %v", err)
	}
}

func TestSlowdown(t *testing.T) {
	on := &Result{Completions: []float64{2, 6}}
	s, err := Slowdown(on, []float64{1, 3})
	if err != nil || !almost(s, 2) {
		t.Fatalf("slowdown = %v, %v; want 2", s, err)
	}
	if _, err := Slowdown(on, []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
	// With arrivals, the shared release offset is subtracted from both
	// sides: response-time ratio, not completion-time ratio.
	late := &Result{Completions: []float64{12}, Arrivals: []float64{10}}
	s, err = Slowdown(late, []float64{11})
	if err != nil || !almost(s, 2) {
		t.Fatalf("response-time slowdown = %v, %v; want 2", s, err)
	}
}

// TestTinyEpochRejected: an epoch below the simulator's time
// resolution would degenerate into a tick per float step (previously
// an uninterruptible spin); it must be rejected upfront.
func TestTinyEpochRejected(t *testing.T) {
	_, err := Simulate(context.Background(), pipeInstance(), Options{
		Policy: NameFIFO, Epoch: 1e-19,
	})
	if err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("tiny epoch must be rejected, got %v", err)
	}
	if _, err := Simulate(context.Background(), pipeInstance(), Options{
		Policy: NameFIFO, Epoch: 1e-3,
	}); err != nil {
		t.Fatalf("valid epoch rejected: %v", err)
	}
}

// TestRevealAtCoflowRelease: a coflow whose flows all release later
// than the coflow itself must still be revealed at the coflow release
// time — the reveal is its own event, not a rider on whichever
// completion or tick fires next.
func TestRevealAtCoflowRelease(t *testing.T) {
	in := pipeInstance()
	in.Coflows[1].Release = 1
	in.Coflows[1].Flows[0].Release = 5
	res, err := Simulate(context.Background(), in, Options{Policy: NameFIFO})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range res.Trace {
		if ev.Kind == Arrival && ev.Coflow == 1 {
			if !almost(ev.Time, 1) {
				t.Fatalf("coflow 1 revealed at t=%v, want 1", ev.Time)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no arrival event for coflow 1")
	}
	// The flow itself only runs from its own release at t=5.
	if res.Completions[1] < 6-1e-9 {
		t.Fatalf("coflow 1 finished at %v; its flow was not available before t=5", res.Completions[1])
	}
}

// TestIdleGapSkipsEpochTicks: epoch timers must not burn one no-op
// event per period while nothing is active — an idle gap before the
// first arrival is crossed in a single step.
func TestIdleGapSkipsEpochTicks(t *testing.T) {
	in := pipeInstance()
	in.Coflows[0].Release = 50
	in.Coflows[1].Release = 50
	res, err := Simulate(context.Background(), in, Options{
		Policy: NameFIFO, Epoch: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Crossing [0,50) at epoch 0.5 would be ~100 idle tick events if
	// they fired; the busy period [50,53] legitimately ticks ~6 times.
	if res.Events > 30 {
		t.Fatalf("%d events for an idle gap plus two coflows", res.Events)
	}
	if !almost(res.Completions[0], 52) {
		t.Fatalf("completions = %v", res.Completions)
	}
}
