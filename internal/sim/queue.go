package sim

import (
	"sort"

	"repro/internal/coflow"
)

// The indexed event queue. The original event loop rescanned every
// coflow and every flow at every event to find the next reveal,
// release, or completion — O(coflows·flows) per event, O(n²·flows)
// per run. The queue replaces the scans with three indexed sources,
// each O(log) or amortized O(1) per event:
//
//   - a pending list: coflow indices sorted by (release, index) with a
//     cursor that only moves forward — the next reveal is always
//     pending[cursor];
//   - a flow-release min-heap: per-flow releases that trail their
//     coflow's reveal, pushed at reveal time and discarded lazily once
//     the flow is available or its coflow finished;
//   - a completion min-heap keyed by the current rates: one candidate
//     per granted flow, projected as now + remaining/rate. Bumping the
//     generation on re-allocation invalidates prior entries lazily —
//     stale generations are dropped at peek instead of being searched
//     for and removed. Every event in this simulator refreshes the
//     allocation (arrivals, completions, and releases all change the
//     active or available set), so in practice the heap is rebuilt by
//     heapify from the fresh sparse entries each round; the lazy
//     generation check keeps partially surviving allocations correct
//     if a future policy contract allows them.
//
// Everything here is deterministic: push order is fixed by the event
// loop, and only minimum *times* are read, never pop order among ties.

// pendingList is the release-sorted reveal index.
type pendingList struct {
	order  []int // coflow indices sorted by (Release, index)
	cursor int
}

func newPendingList(inst *coflow.Instance) *pendingList {
	p := &pendingList{order: make([]int, len(inst.Coflows))}
	for j := range p.order {
		p.order[j] = j
	}
	// Stable sort on release alone keeps equal releases in index
	// order, matching the reference's j = 0..n reveal scan.
	sort.SliceStable(p.order, func(a, b int) bool {
		return inst.Coflows[p.order[a]].Release < inst.Coflows[p.order[b]].Release
	})
	return p
}

// takeDue appends to batch every not-yet-revealed coflow whose release
// has passed (all of them when all is set), advancing the cursor.
func (p *pendingList) takeDue(inst *coflow.Instance, now float64, all bool, batch []int) []int {
	for p.cursor < len(p.order) {
		j := p.order[p.cursor]
		if !all && inst.Coflows[j].Release > now+eps {
			break
		}
		batch = append(batch, j)
		p.cursor++
	}
	return batch
}

// nextRelease returns the earliest unrevealed coflow release, or ok =
// false when everything is revealed.
func (p *pendingList) nextRelease(inst *coflow.Instance) (float64, bool) {
	if p.cursor >= len(p.order) {
		return 0, false
	}
	return inst.Coflows[p.order[p.cursor]].Release, true
}

// flowRelEntry is a future per-flow release of a revealed coflow.
type flowRelEntry struct {
	t    float64
	j, i int
}

// flowRelHeap is a plain binary min-heap on t. Entries are discarded
// lazily at peek time once stale (flow available, finished, or already
// drained) — all permanent conditions, so dropping is safe.
type flowRelHeap struct {
	items []flowRelEntry
}

func (h *flowRelHeap) push(e flowRelEntry) {
	h.items = append(h.items, e)
	for k := len(h.items) - 1; k > 0; {
		parent := (k - 1) / 2
		if h.items[parent].t <= h.items[k].t {
			break
		}
		h.items[parent], h.items[k] = h.items[k], h.items[parent]
		k = parent
	}
}

func (h *flowRelHeap) pop() {
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	h.siftDown(0)
}

func (h *flowRelHeap) siftDown(k int) {
	n := len(h.items)
	for {
		l, r := 2*k+1, 2*k+2
		m := k
		if l < n && h.items[l].t < h.items[m].t {
			m = l
		}
		if r < n && h.items[r].t < h.items[m].t {
			m = r
		}
		if m == k {
			return
		}
		h.items[k], h.items[m] = h.items[m], h.items[k]
		k = m
	}
}

// nextRelease peeks the earliest still-relevant flow release strictly
// in the future of now, dropping stale entries. A candidate is stale
// once its coflow finished, its flow drained (zero residual demand),
// or its release passed (the flow is simply available; no event is
// needed) — none of these conditions can un-happen, so popping is
// permanent-safe.
func (h *flowRelHeap) nextRelease(now float64, finished []bool, remaining [][]float64) (float64, bool) {
	for len(h.items) > 0 {
		top := h.items[0]
		if finished[top.j] || remaining[top.j][top.i] <= eps || top.t <= now+eps {
			h.pop()
			continue
		}
		return top.t, true
	}
	return 0, false
}

// compEntry is one projected completion at the current rates.
type compEntry struct {
	t   float64
	gen uint64
}

// compHeap is the completion min-heap. Entries carry the allocation
// generation they were computed under; reset bumps the generation so
// everything older is invalid and dropped lazily at peek.
type compHeap struct {
	items []compEntry
	gen   uint64
}

// invalidate marks every current entry stale (the policy re-allocated)
// and reclaims the buffer.
func (h *compHeap) invalidate() {
	h.gen++
	h.items = h.items[:0]
}

// add records one candidate under the current generation; call init
// once after the batch.
func (h *compHeap) add(t float64) {
	h.items = append(h.items, compEntry{t: t, gen: h.gen})
}

// heapify establishes the heap order over the batch in O(n).
func (h *compHeap) heapify() {
	for k := len(h.items)/2 - 1; k >= 0; k-- {
		h.siftDown(k)
	}
}

func (h *compHeap) siftDown(k int) {
	n := len(h.items)
	for {
		l, r := 2*k+1, 2*k+2
		m := k
		if l < n && h.items[l].t < h.items[m].t {
			m = l
		}
		if r < n && h.items[r].t < h.items[m].t {
			m = r
		}
		if m == k {
			return
		}
		h.items[k], h.items[m] = h.items[m], h.items[k]
		k = m
	}
}

// min peeks the earliest valid completion candidate, discarding stale
// generations.
func (h *compHeap) min() (float64, bool) {
	for len(h.items) > 0 {
		if h.items[0].gen != h.gen {
			n := len(h.items) - 1
			h.items[0] = h.items[n]
			h.items = h.items[:n]
			h.siftDown(0)
			continue
		}
		return h.items[0].t, true
	}
	return 0, false
}
