package sim

import (
	"sort"

	"repro/internal/coflow"
)

// The indexed event queue. The original event loop rescanned every
// coflow and every flow at every event to find the next reveal,
// release, or completion — O(coflows·flows) per event, O(n²·flows)
// per run. The queue replaces the scans with three indexed sources,
// each O(log) or amortized O(1) per event:
//
//   - a pending list: coflow indices sorted by (release, index) with a
//     cursor that only moves forward — the next reveal is always
//     pending[cursor];
//   - a flow-release min-heap: per-flow releases that trail their
//     coflow's reveal, pushed at reveal time and discarded lazily once
//     the flow is available or its coflow finished.
//
// Projected completions need no index at all: every event refreshes
// the allocation (arrivals, completions, and releases all change the
// active or available set), so the event loop takes a linear min of
// now + remaining/rate over the fresh sparse entries — a completion
// heap would be rebuilt from scratch each event only to be peeked
// once.
//
// Everything here is deterministic: push order is fixed by the event
// loop, and only minimum *times* are read, never pop order among ties.

// pendingList is the release-sorted reveal index.
type pendingList struct {
	order  []int // coflow indices sorted by (Release, index)
	cursor int
}

func newPendingList(inst *coflow.Instance) *pendingList {
	p := &pendingList{order: make([]int, len(inst.Coflows))}
	for j := range p.order {
		p.order[j] = j
	}
	// Stable sort on release alone keeps equal releases in index
	// order, matching the reference's j = 0..n reveal scan.
	sort.SliceStable(p.order, func(a, b int) bool {
		return inst.Coflows[p.order[a]].Release < inst.Coflows[p.order[b]].Release
	})
	return p
}

// takeDue appends to batch every not-yet-revealed coflow whose release
// has passed (all of them when all is set), advancing the cursor.
func (p *pendingList) takeDue(inst *coflow.Instance, now float64, all bool, batch []int) []int {
	for p.cursor < len(p.order) {
		j := p.order[p.cursor]
		if !all && inst.Coflows[j].Release > now+eps {
			break
		}
		batch = append(batch, j)
		p.cursor++
	}
	return batch
}

// nextRelease returns the earliest unrevealed coflow release, or ok =
// false when everything is revealed.
func (p *pendingList) nextRelease(inst *coflow.Instance) (float64, bool) {
	if p.cursor >= len(p.order) {
		return 0, false
	}
	return inst.Coflows[p.order[p.cursor]].Release, true
}

// flowRelEntry is a future per-flow release of a revealed coflow.
type flowRelEntry struct {
	t    float64
	j, i int
}

// flowRelHeap is a plain binary min-heap on t. Entries are discarded
// lazily at peek time once stale (flow available, finished, or already
// drained) — all permanent conditions, so dropping is safe.
type flowRelHeap struct {
	items []flowRelEntry
}

func (h *flowRelHeap) push(e flowRelEntry) {
	h.items = append(h.items, e)
	for k := len(h.items) - 1; k > 0; {
		parent := (k - 1) / 2
		if h.items[parent].t <= h.items[k].t {
			break
		}
		h.items[parent], h.items[k] = h.items[k], h.items[parent]
		k = parent
	}
}

func (h *flowRelHeap) pop() {
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	h.siftDown(0)
}

func (h *flowRelHeap) siftDown(k int) {
	n := len(h.items)
	for {
		l, r := 2*k+1, 2*k+2
		m := k
		if l < n && h.items[l].t < h.items[m].t {
			m = l
		}
		if r < n && h.items[r].t < h.items[m].t {
			m = r
		}
		if m == k {
			return
		}
		h.items[k], h.items[m] = h.items[m], h.items[k]
		k = m
	}
}

// nextRelease peeks the earliest still-relevant flow release strictly
// in the future of now, dropping stale entries. A candidate is stale
// once its coflow finished, its flow drained (zero residual demand),
// or its release passed (the flow is simply available; no event is
// needed) — none of these conditions can un-happen, so popping is
// permanent-safe.
func (h *flowRelHeap) nextRelease(now float64, finished []bool, remaining [][]float64) (float64, bool) {
	for len(h.items) > 0 {
		top := h.items[0]
		if finished[top.j] || remaining[top.j][top.i] <= eps || top.t <= now+eps {
			h.pop()
			continue
		}
		return top.t, true
	}
	return 0, false
}
