package sim

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/coflow"
	"repro/internal/engine"
	"repro/internal/lp"
	"repro/internal/stats"
)

// adapterPrefix selects the engine-wrapping policy family:
// "epoch:stretch", "epoch:heuristic", "epoch:sincronia-greedy", … —
// one adapter per registered single-path-capable engine scheduler.
const adapterPrefix = "epoch:"

// adapterNames lists the dynamic "epoch:<scheduler>" policy names.
func adapterNames() []string {
	var names []string
	for _, n := range engine.NamesSupporting(coflow.SinglePath) {
		names = append(names, adapterPrefix+n)
	}
	return names
}

// epochAdapter turns any offline engine scheduler into an online
// policy: at every arrival (and, when Options.Epoch > 0, every epoch
// tick) it re-runs the wrapped scheduler on the residual instance —
// the currently-known coflows with their remaining demands — and
// converts the resulting offline schedule into a priority order by
// planned completion time. Between re-plans the cached order is
// water-filled in continuous time (pruned of finished coflows so the
// fill stays O(active)), so freed capacity is reused immediately even
// while the plan is stale.
type epochAdapter struct {
	sched   string
	opt     Options
	order   []int // cached priority order, original coflow indices
	replans int
	// lastBasis is the LP basis exported by the previous replan,
	// re-imported on the next one when Options.WarmLP is set. The
	// residual instance shrinks and shifts between replans, so the
	// name-keyed remap keeps whatever still matches and the solver
	// falls back to a cold start when too little does.
	lastBasis *lp.Basis
}

// newAdapter resolves the wrapped scheduler eagerly so unknown or
// incompatible names fail at policy construction, listing what exists.
func newAdapter(sched string, opt Options) (Policy, error) {
	s, err := engine.Get(sched)
	if err != nil {
		return nil, fmt.Errorf("sim: policy %q: %w", adapterPrefix+sched, err)
	}
	if !s.Supports(coflow.SinglePath) {
		return nil, fmt.Errorf("sim: policy %q: scheduler %q does not support the single path model (have %v)",
			adapterPrefix+sched, sched, adapterNames())
	}
	return &epochAdapter{sched: sched, opt: opt}, nil
}

func (p *epochAdapter) Name() string { return adapterPrefix + p.sched }

func (p *epochAdapter) Allocate(ctx context.Context, st *State, out *Alloc) error {
	if st.Replan || p.order == nil {
		if err := p.replan(ctx, st); err != nil {
			return err
		}
	} else {
		p.order = pruneOrder(st, p.order)
	}
	PriorityRates(st, p.order, out)
	return nil
}

// replan runs the wrapped scheduler offline on the residual instance
// and caches the induced priority order. Each replan derives its own
// seed from (Options.Seed, replan index): replans happen in the same
// order in every run, so traces reproduce exactly, and randomized
// schedulers still see fresh randomness per plan.
func (p *epochAdapter) replan(ctx context.Context, st *State) error {
	sub, back := ResidualInstance(st)
	if len(sub.Coflows) == 0 {
		p.order = []int{}
		return nil
	}
	p.replans++
	eopt := engine.Options{
		MaxSlots: p.opt.MaxSlots,
		Trials:   p.opt.Trials,
		Seed:     stats.SubSeed(p.opt.Seed, uint64(p.replans)),
		Workers:  p.opt.Workers,
		Obs:      p.opt.Obs,
	}
	if p.opt.WarmLP {
		eopt.WarmBasis = p.lastBasis
	}
	res, err := engine.Schedule(ctx, p.sched, sub, coflow.SinglePath, eopt)
	if err != nil {
		return fmt.Errorf("replanning with %s over %d coflows: %w", p.sched, len(sub.Coflows), err)
	}
	if p.opt.WarmLP && res.Core != nil {
		p.lastBasis = res.Core.Basis
	}
	if len(res.Completions) != len(sub.Coflows) {
		return fmt.Errorf("scheduler %s returned %d completions for %d coflows",
			p.sched, len(res.Completions), len(sub.Coflows))
	}
	order := make([]int, len(sub.Coflows))
	for k := range order {
		order[k] = k
	}
	slices.SortStableFunc(order, func(a, b int) int {
		switch {
		case res.Completions[a] < res.Completions[b]:
			return -1
		case res.Completions[a] > res.Completions[b]:
			return 1
		case back[a] < back[b]:
			return -1
		case back[a] > back[b]:
			return 1
		default:
			return 0
		}
	})
	p.order = p.order[:0]
	for _, s := range order {
		p.order = append(p.order, back[s])
	}
	return nil
}
