package sim

import (
	"repro/internal/coflow"
	"repro/internal/graph"
)

// FlowRate is one entry of a sparse rate assignment: flow Flow of
// coflow Coflow transmits at Rate until the next event.
type FlowRate struct {
	Coflow, Flow int
	Rate         float64
}

// Alloc is the sparse rate assignment a Policy fills in: one entry per
// flow granted a positive rate, instead of the dense
// coflows × flows matrix the simulator used before it scaled to
// 100k-coflow instances. The simulator owns one Alloc per run and
// hands it to the policy at every event, so a policy appends into a
// reusable buffer and the event loop stays free of per-event garbage.
//
// Contract (enforced by the simulator's allocation checker):
//
//   - entries for one coflow are contiguous, with strictly ascending
//     flow indices inside the group (the order PriorityRates and the
//     fair filling naturally produce);
//   - every entry names an active coflow and, when Rate > eps, a flow
//     that is unfinished and released at State.Now;
//   - per-edge loads stay within capacity.
//
// Entries with Rate ≤ eps are permitted (they are ignored by the
// advance) but pointless; builders should skip them.
type Alloc struct {
	// Entries is the sparse assignment, grouped by coflow.
	Entries []FlowRate

	// Water-filling scratch shared by PriorityRates: residual is kept
	// equal to caps between calls, dirty records the edges a call must
	// restore, and satBase counts edges born without usable capacity.
	// Lazily built for g on first use and rebuilt whenever the graph
	// changes — keying on identity, not edge count, so an Alloc reused
	// across same-sized graphs with different capacities cannot
	// water-fill against stale ones.
	g        *graph.Graph
	caps     []float64
	residual []float64
	dirty    []graph.EdgeID
	satBase  int

	// Flattened per-instance path index (see ensurePaths): the hot
	// per-event loops walk paths for every candidate flow, and loading
	// each path's slice header out of its Flow struct was the single
	// largest cache-miss source in the policy profiles. flowBase[j]+i
	// indexes flow i of coflow j; its path is
	// pathEdges[pathOff[flowBase[j]+i] : pathOff[flowBase[j]+i+1]].
	inst      *coflow.Instance
	flowBase  []int32
	pathOff   []int32
	pathEdges []graph.EdgeID

	// live[j] holds coflow j's not-yet-finished flow indices, ascending.
	// Policies iterating a coflow's flows filter on remaining > eps
	// anyway; since remaining only decreases within a run, a flow that
	// fails the filter once fails it forever, so the scans compact it
	// out of live[j] permanently instead of re-testing it every event.
	// The lists only shrink, in place, over the shared liveBuf backing.
	live    [][]int32
	liveBuf []int32
}

// Reset clears the entries, keeping the buffers.
func (a *Alloc) Reset() { a.Entries = a.Entries[:0] }

// Grant appends one sparse entry. Callers must respect the grouping
// contract: all entries of a coflow together, flows ascending.
func (a *Alloc) Grant(j, i int, rate float64) {
	a.Entries = append(a.Entries, FlowRate{Coflow: j, Flow: i, Rate: rate})
}

// ensureScratch sizes the water-filling scratch for g. residual is
// (re-)initialized to the edge capacities; callers restore it via the
// dirty list so the next call starts clean without an O(edges) sweep.
func (a *Alloc) ensureScratch(g *graph.Graph) {
	if a.g == g {
		return
	}
	a.g = g
	a.caps = make([]float64, g.NumEdges())
	a.satBase = 0
	for _, e := range g.Edges() {
		a.caps[e.ID] = e.Capacity
		if e.Capacity <= eps {
			a.satBase++
		}
	}
	a.residual = append(a.residual[:0], a.caps...)
	a.dirty = a.dirty[:0]
}

// ensurePaths builds the flattened path index for inst, once per
// instance identity: three dense arrays replacing the pointer chase
// through coflow.Flow structs in the per-event inner loops.
func (a *Alloc) ensurePaths(inst *coflow.Instance) {
	if a.inst == inst {
		return
	}
	a.inst = inst
	nc := len(inst.Coflows)
	a.flowBase = a.flowBase[:0]
	a.pathOff = a.pathOff[:0]
	a.pathEdges = a.pathEdges[:0]
	total := int32(0)
	for j := 0; j < nc; j++ {
		a.flowBase = append(a.flowBase, total)
		total += int32(len(inst.Coflows[j].Flows))
	}
	a.flowBase = append(a.flowBase, total)
	off := int32(0)
	for j := 0; j < nc; j++ {
		for i := range inst.Coflows[j].Flows {
			a.pathOff = append(a.pathOff, off)
			path := inst.Coflows[j].Flows[i].Path
			a.pathEdges = append(a.pathEdges, path...)
			off += int32(len(path))
		}
	}
	a.pathOff = append(a.pathOff, off)
	if cap(a.liveBuf) < int(total) {
		a.liveBuf = make([]int32, total)
	}
	a.liveBuf = a.liveBuf[:total]
	a.live = a.live[:0]
	for j := 0; j < nc; j++ {
		lo := a.flowBase[j]
		lv := a.liveBuf[lo:a.flowBase[j+1]:a.flowBase[j+1]]
		for i := range lv {
			lv[i] = int32(i)
		}
		a.live = append(a.live, lv)
	}
}
