package sim

// Differential tests: Simulate's indexed event queue, sparse
// allocations, and incremental checking must be trace-preserving —
// bit-identical to simulateReference, the un-optimized full-scan loop
// kept as the executable spec. Every registered policy runs on seeded
// random instances over four topology families, with per-flow release
// jitter (exercising the flow-release heap) and epoch ticks, and the
// full traces, completions, and aggregates are compared exactly.

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/coflow"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/workload"
)

// differentialTopos is the topology column: one representative per
// family shape — single switch, path, 2-tier Clos, cycle.
var differentialTopos = []string{
	"big-switch:n=5",
	"line:n=5",
	"leaf-spine:leaves=3,spines=2,hosts=2",
	"ring:n=6",
}

// differentialInstance builds a seeded random online instance on the
// given topology: Poisson releases, and per-flow release jitter on
// roughly a third of the flows so flow-release events (the min-heap
// path) occur alongside reveals, ticks, and completions.
func differentialInstance(t *testing.T, spec string, coflows int, seed int64) *coflow.Instance {
	t.Helper()
	top, err := topo.New(spec)
	if err != nil {
		t.Fatalf("topology %s: %v", spec, err)
	}
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: top.Graph, NumCoflows: coflows, Seed: seed,
		MeanInterarrival: 1.2, AssignPaths: true, Endpoints: top.Endpoints,
	})
	if err != nil {
		t.Fatalf("workload on %s: %v", spec, err)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	for j := range in.Coflows {
		c := &in.Coflows[j]
		for i := range c.Flows {
			if rng.Intn(3) == 0 {
				c.Flows[i].Release = c.Release + 0.5 + 2*rng.Float64()
			}
		}
	}
	return in
}

// diffCompare runs both loops and fails on the first divergence.
func diffCompare(t *testing.T, in *coflow.Instance, opt Options) {
	t.Helper()
	ref, err := simulateReference(context.Background(), in, opt)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	got, err := Simulate(context.Background(), in, opt)
	if err != nil {
		t.Fatalf("optimized: %v", err)
	}
	if len(got.Trace) != len(ref.Trace) {
		t.Fatalf("trace length %d, reference %d", len(got.Trace), len(ref.Trace))
	}
	for i := range ref.Trace {
		if got.Trace[i] != ref.Trace[i] {
			t.Fatalf("trace event %d: got %+v, reference %+v", i, got.Trace[i], ref.Trace[i])
		}
	}
	if !reflect.DeepEqual(got.Completions, ref.Completions) {
		t.Fatalf("completions diverge:\n got %v\n ref %v", got.Completions, ref.Completions)
	}
	if got.WeightedCCT != ref.WeightedCCT || got.TotalCCT != ref.TotalCCT ||
		got.AvgCCT != ref.AvgCCT || got.Makespan != ref.Makespan {
		t.Fatalf("aggregates diverge: got (%v %v %v %v), ref (%v %v %v %v)",
			got.WeightedCCT, got.TotalCCT, got.AvgCCT, got.Makespan,
			ref.WeightedCCT, ref.TotalCCT, ref.AvgCCT, ref.Makespan)
	}
	if got.Events != ref.Events || got.Replans != ref.Replans {
		t.Fatalf("events/replans diverge: got %d/%d, ref %d/%d",
			got.Events, got.Replans, ref.Events, ref.Replans)
	}
}

// TestDifferentialAllPolicies sweeps every registered policy (the
// epoch adapters included) over the four families, with the paranoid
// full check on so the incremental fast-path state is cross-verified
// at every event while being diffed against the reference.
func TestDifferentialAllPolicies(t *testing.T) {
	for _, name := range Names() {
		name := name
		// Engine-wrapping policies solve an LP (or run a full offline
		// baseline) per replan; smaller instances, fewer replans
		// (longer epoch, one trial), and two of the four families keep
		// the sweep affordable under -race (the simulator path they
		// drive is the same one the cheap policies cover on all four).
		coflows, topos := 20, differentialTopos
		opt := Options{Epoch: 1.5, MaxSlots: 12, Trials: 2, Workers: 2, CheckEvery: 1}
		if strings.HasPrefix(name, adapterPrefix) {
			coflows, topos = 5, differentialTopos[:2]
			opt.Epoch, opt.MaxSlots, opt.Trials = 3, 10, 1
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for ti, spec := range topos {
				seed := int64(stats.SubSeed(97, uint64(ti)))
				in := differentialInstance(t, spec, coflows, seed)
				o := opt
				o.Policy, o.Seed = name, seed
				diffCompare(t, in, o)
			}
		})
	}
}

// TestDifferentialClairvoyant pins the clairvoyant reveal path: all
// coflows reveal at t=0 (in index order) while service still honors
// releases, which stresses the batch-reveal sort and the release
// heaps with a fully loaded pending set.
func TestDifferentialClairvoyant(t *testing.T) {
	for ti, spec := range differentialTopos {
		seed := int64(stats.SubSeed(181, uint64(ti)))
		in := differentialInstance(t, spec, 15, seed)
		diffCompare(t, in, Options{
			Policy: NameLAS, Seed: seed, Clairvoyant: true, CheckEvery: 1,
		})
		diffCompare(t, in, Options{
			Policy: NameSincroniaOnline, Epoch: 2, Seed: seed, Clairvoyant: true, CheckEvery: 3,
		})
	}
}

// TestDifferentialSeedSweep runs the cheap policies over many seeds on
// one topology — a breadth pass over event interleavings (simultaneous
// reveals, ties between completions and ticks) that a single seed
// cannot cover.
func TestDifferentialSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	for _, name := range []string{NameFIFO, NameLAS, NameFair, NameSincroniaOnline} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for s := int64(0); s < 8; s++ {
				in := differentialInstance(t, "big-switch:n=6", 30, 1000+s)
				diffCompare(t, in, Options{Policy: name, Epoch: 2, Seed: s, CheckEvery: 5})
			}
		})
	}
}
