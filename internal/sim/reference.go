package sim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/coflow"
)

// simulateReference is the un-optimized event loop this package
// shipped before it scaled to 100k-coflow instances, kept verbatim as
// the executable specification of the simulator's semantics: every
// event rescans all coflows for reveals and next releases, the sparse
// policy allocation is densified into a full coflows × flows matrix,
// and the dense matrix is verified in full per event. It is
// O(n²·flows) and exists only for the differential property tests
// (which hold Simulate bit-identical to it across every policy) and
// for the benchmark harness's speedup record. Production callers use
// Simulate.
func simulateReference(ctx context.Context, inst *coflow.Instance, opt Options) (*Result, error) {
	opt = opt.Normalize()
	if err := inst.Validate(coflow.SinglePath); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if opt.Epoch != 0 && opt.Epoch < 1e-6 {
		return nil, fmt.Errorf("sim: epoch %g below the minimum of 1e-6 slots", opt.Epoch)
	}
	pol, err := New(opt.Policy, opt)
	if err != nil {
		return nil, err
	}

	g := inst.Graph
	nc := len(inst.Coflows)
	caps := make([]float64, g.NumEdges())
	for _, e := range g.Edges() {
		caps[e.ID] = e.Capacity
	}

	st := newState(inst)
	revealed := make([]bool, nc)
	finished := make([]bool, nc)

	res := &Result{
		Policy:      opt.Policy,
		Completions: make([]float64, nc),
		Arrivals:    append([]float64(nil), st.Arrival...),
	}

	now := 0.0
	done := 0
	nextEpoch := math.Inf(1)
	if opt.Epoch > 0 {
		nextEpoch = opt.Epoch
	}
	var alloc Alloc
	activeBuf := make([]bool, nc)
	loadBuf := make([]float64, g.NumEdges())
	for done < nc {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if res.Events >= opt.MaxEvents {
			return nil, fmt.Errorf("sim: event cap %d reached at t=%g (%d/%d coflows done)",
				opt.MaxEvents, now, done, nc)
		}
		res.Events++

		// Reveal coflows whose release time has passed (all of them at
		// t=0 in clairvoyant mode) — the full j = 0..n scan.
		replan := false
		for j := 0; j < nc; j++ {
			if !revealed[j] && (opt.Clairvoyant || inst.Coflows[j].Release <= now+eps) {
				revealed[j] = true
				replan = true
				res.Trace = append(res.Trace, Event{Time: now, Kind: Arrival, Coflow: j})
			}
		}
		if opt.Epoch > 0 && nextEpoch <= now+eps {
			replan = true
			res.Trace = append(res.Trace, Event{Time: now, Kind: EpochTick, Coflow: -1})
			nextEpoch = opt.Epoch * (math.Floor(now/opt.Epoch) + 1)
			if nextEpoch <= now+eps {
				nextEpoch += opt.Epoch
			}
		}

		st.Now = now
		st.Active = st.Active[:0]
		for j := 0; j < nc; j++ {
			st.activeMask[j] = revealed[j] && !finished[j]
			if st.activeMask[j] {
				st.Active = append(st.Active, j)
			}
		}
		st.Replan = replan

		// Densify the policy's sparse entries into the full-instance
		// matrix the original loop worked on.
		var rates [][]float64
		if len(st.Active) > 0 {
			if replan {
				res.Replans++
			}
			alloc.Reset()
			if err := pol.Allocate(ctx, st, &alloc); err != nil {
				return nil, fmt.Errorf("sim: policy %s at t=%g: %w", opt.Policy, now, err)
			}
			rates = make([][]float64, nc)
			for _, en := range alloc.Entries {
				if en.Coflow < 0 || en.Coflow >= nc {
					return nil, fmt.Errorf("sim: policy %s at t=%g: allocation entry names coflow %d of %d",
						opt.Policy, now, en.Coflow, nc)
				}
				flows := len(inst.Coflows[en.Coflow].Flows)
				if en.Flow < 0 || en.Flow >= flows {
					return nil, fmt.Errorf("sim: policy %s at t=%g: allocation entry names flow %d of coflow %d (%d flows)",
						opt.Policy, now, en.Flow, en.Coflow, flows)
				}
				if rates[en.Coflow] == nil {
					rates[en.Coflow] = make([]float64, flows)
				}
				rates[en.Coflow][en.Flow] = en.Rate
			}
			if err := checkRatesDense(st, caps, rates, activeBuf, loadBuf); err != nil {
				return nil, fmt.Errorf("sim: policy %s at t=%g: %w", opt.Policy, now, err)
			}
		}

		// Next event: the earliest of coflow reveal, flow release,
		// epoch tick, and flow completion at the current rates, found
		// by scanning everything.
		next := math.Inf(1)
		if len(st.Active) > 0 {
			next = nextEpoch
		}
		for j := 0; j < nc; j++ {
			if finished[j] {
				continue
			}
			c := &inst.Coflows[j]
			if !revealed[j] && c.Release > now+eps && c.Release < next {
				next = c.Release
			}
			for i := range c.Flows {
				if st.Remaining[j][i] <= eps {
					continue
				}
				if r := c.EffectiveRelease(i); r > now+eps && r < next {
					next = r
				}
			}
		}
		progress := false
		for _, j := range st.Active {
			if rates == nil || rates[j] == nil {
				continue
			}
			for i, rem := range st.Remaining[j] {
				if rem <= eps || rates[j][i] <= eps {
					continue
				}
				progress = true
				if t := now + rem/rates[j][i]; t < next {
					next = t
				}
			}
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("sim: stalled at t=%g with %d/%d coflows done (no rates, no pending events)",
				now, done, nc)
		}
		if !progress && next <= now+eps {
			return nil, fmt.Errorf("sim: no progress at t=%g", now)
		}
		dt := next - now
		if dt < 0 {
			dt = 0
		}

		// Advance: deplete demands at constant rates for dt.
		for _, j := range st.Active {
			if rates == nil || rates[j] == nil {
				continue
			}
			served := 0.0
			for i := range st.Remaining[j] {
				if st.Remaining[j][i] <= eps || rates[j][i] <= eps {
					continue
				}
				d := rates[j][i] * dt
				if d > st.Remaining[j][i] {
					d = st.Remaining[j][i]
				}
				st.Remaining[j][i] -= d
				served += d
				if st.Remaining[j][i] <= eps {
					st.Remaining[j][i] = 0
				}
			}
			st.Attained[j] += served
		}
		now = next

		// Completions.
		for _, j := range st.Active {
			all := true
			for _, rem := range st.Remaining[j] {
				if rem > eps {
					all = false
					break
				}
			}
			if all {
				finished[j] = true
				done++
				res.Completions[j] = now
				res.Trace = append(res.Trace, Event{Time: now, Kind: Completion, Coflow: j})
			}
		}
	}

	for j := 0; j < nc; j++ {
		c := res.Completions[j]
		res.WeightedCCT += inst.Coflows[j].Weight * c
		res.TotalCCT += c
		res.AvgCCT += c - st.Arrival[j]
		if c > res.Makespan {
			res.Makespan = c
		}
	}
	res.AvgCCT /= float64(nc)
	return res, nil
}

// SimulateReference exposes the reference loop to the benchmark
// harness (internal/bench), which records the ref-vs-optimized
// events/sec speedup in BENCH_sim.json. Everything else goes through
// Simulate.
func SimulateReference(ctx context.Context, inst *coflow.Instance, opt Options) (*Result, error) {
	return simulateReference(ctx, inst, opt)
}

// checkRatesDense verifies a densified allocation the way the original
// simulator did: a full-instance rate matrix, non-negative rates,
// nothing granted to unavailable flows, and per-edge loads within
// capacity, all rebuilt from scratch per event. active and load are
// caller-owned scratch buffers (len = coflows / edges), cleared here.
func checkRatesDense(st *State, caps []float64, rates [][]float64, active []bool, load []float64) error {
	if len(rates) != len(st.Inst.Coflows) {
		return fmt.Errorf("rate matrix has %d rows for %d coflows (size it by the full instance)",
			len(rates), len(st.Inst.Coflows))
	}
	for j := range active {
		active[j] = false
	}
	for _, j := range st.Active {
		active[j] = true
	}
	for e := range load {
		load[e] = 0
	}
	for j := range rates {
		if rates[j] == nil {
			continue
		}
		if !active[j] {
			// A positive rate on an unrevealed or finished coflow means
			// the policy used information it must not have.
			for i, r := range rates[j] {
				if r > eps {
					return fmt.Errorf("rate %g granted to inactive coflow %d flow %d", r, j, i)
				}
			}
			continue
		}
		c := &st.Inst.Coflows[j]
		if len(rates[j]) != len(c.Flows) {
			return fmt.Errorf("coflow %d rate row has %d entries for %d flows", j, len(rates[j]), len(c.Flows))
		}
		for i := range c.Flows {
			r := rates[j][i]
			if r < 0 {
				return fmt.Errorf("negative rate %g for coflow %d flow %d", r, j, i)
			}
			if r <= eps {
				continue
			}
			if st.Remaining[j][i] <= eps || !st.Available(j, i) {
				return fmt.Errorf("rate %g granted to inactive flow %d of coflow %d", r, i, j)
			}
			for _, e := range c.Flows[i].Path {
				load[e] += r
			}
		}
	}
	for e, l := range load {
		if l > caps[e]*(1+1e-6)+eps {
			return fmt.Errorf("edge %d overloaded: rate %g > capacity %g", e, l, caps[e])
		}
	}
	return nil
}
