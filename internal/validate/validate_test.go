package validate

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/coflow"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/timegrid"
	"repro/internal/workload"
)

// oneEdgeInstance is the smallest interesting fixture: one directed
// unit-capacity edge a→b and one coflow with one flow of demand 2, so
// every feasible schedule needs ≥ 2 slots and the trivial lower bound
// is exactly 2.
func oneEdgeInstance(release float64) *coflow.Instance {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	e := g.AddEdge(a, b, 1)
	return &coflow.Instance{
		Graph: g,
		Coflows: []coflow.Coflow{{
			ID: 0, Weight: 1, Release: release,
			Flows: []coflow.Flow{{Source: a, Sink: b, Demand: 2, Path: []graph.EdgeID{e}}},
		}},
	}
}

// feasibleSchedule ships the oneEdgeInstance demand at full rate over
// slots [start, start+2).
func feasibleSchedule(in *coflow.Instance, slots, start int) *schedule.Schedule {
	s := &schedule.Schedule{
		Inst:  in,
		Mode:  coflow.SinglePath,
		Grid:  timegrid.Uniform(slots),
		Flows: in.FlattenFlows(),
		Frac:  [][]float64{make([]float64, slots)},
	}
	s.Frac[0][start] = 0.5
	s.Frac[0][start+1] = 0.5
	return s
}

func wrap(in *coflow.Instance, s *schedule.Schedule, comps []float64) *engine.Result {
	res := &engine.Result{Mode: coflow.SinglePath, Completions: comps, Schedule: s}
	for j, c := range comps {
		res.Weighted += in.Coflows[j].Weight * c
		res.Total += c
	}
	return res
}

func TestOracleAcceptsFeasibleSchedule(t *testing.T) {
	in := oneEdgeInstance(0)
	s := feasibleSchedule(in, 4, 0)
	r, comps := Schedule(s)
	if !r.OK() {
		t.Fatalf("feasible schedule rejected: %v", r.Err())
	}
	if len(comps) != 1 || comps[0] != 2 {
		t.Fatalf("replayed completions %v, want [2]", comps)
	}
	if err := Result(in, wrap(in, s, []float64{2})).Err(); err != nil {
		t.Fatalf("feasible result rejected: %v", err)
	}
}

func TestOracleCatchesCapacityViolation(t *testing.T) {
	in := oneEdgeInstance(0)
	s := feasibleSchedule(in, 4, 0)
	// Ship the whole demand (2 volume) in one unit-capacity slot.
	s.Frac[0] = []float64{1, 0, 0, 0}
	r, _ := Schedule(s)
	if r.Count(KindCapacity) == 0 {
		t.Fatalf("capacity violation not caught: %v", r.Violations)
	}
}

func TestOracleCatchesReleaseViolation(t *testing.T) {
	in := oneEdgeInstance(1.5)
	s := feasibleSchedule(in, 4, 0) // transmits from t=0, release is 1.5
	r, _ := Schedule(s)
	if r.Count(KindRelease) == 0 {
		t.Fatalf("release violation not caught: %v", r.Violations)
	}
	// The same shape starting after the release is clean.
	r, _ = Schedule(feasibleSchedule(in, 4, 2))
	if !r.OK() {
		t.Fatalf("post-release schedule rejected: %v", r.Err())
	}
}

func TestOracleCatchesDemandShortfall(t *testing.T) {
	in := oneEdgeInstance(0)
	s := feasibleSchedule(in, 4, 0)
	s.Frac[0] = []float64{0.4, 0, 0, 0}
	r, _ := Schedule(s)
	if r.Count(KindDemand) == 0 {
		t.Fatalf("demand shortfall not caught: %v", r.Violations)
	}
}

func TestOracleCatchesCCTMismatch(t *testing.T) {
	in := oneEdgeInstance(0)
	s := feasibleSchedule(in, 4, 0)
	// Schedule replays to completion 2, the result claims 1.
	r := Result(in, wrap(in, s, []float64{1}))
	if r.Count(KindCompletion) == 0 {
		t.Fatalf("CCT mismatch not caught: %v", r.Violations)
	}
	if r.Count(KindLowerBound) == 0 {
		t.Fatalf("sub-lower-bound completion not caught: %v", r.Violations)
	}
}

func TestOracleCatchesAggregateMismatch(t *testing.T) {
	in := oneEdgeInstance(0)
	res := wrap(in, nil, []float64{2})
	res.Weighted = 5
	r := Result(in, res)
	if r.Count(KindAggregate) == 0 {
		t.Fatalf("aggregate mismatch not caught: %v", r.Violations)
	}
}

func TestOracleCatchesFreePathConservationViolation(t *testing.T) {
	// Figure-2-style graph: s—v1—t and s—v2—t, unit capacities.
	g := graph.New()
	s := g.AddNode("s")
	v1 := g.AddNode("v1")
	v2 := g.AddNode("v2")
	tn := g.AddNode("t")
	g.AddLink(s, v1, 1)
	g.AddLink(v1, tn, 1)
	g.AddLink(s, v2, 1)
	g.AddLink(v2, tn, 1)
	in := &coflow.Instance{
		Graph: g,
		Coflows: []coflow.Coflow{{
			ID: 0, Weight: 1,
			Flows: []coflow.Flow{{Source: s, Sink: tn, Demand: 2}},
		}},
	}
	sch := &schedule.Schedule{
		Inst:     in,
		Mode:     coflow.FreePath,
		Grid:     timegrid.Uniform(2),
		Flows:    in.FlattenFlows(),
		Frac:     [][]float64{{1, 0}},
		EdgeFrac: [][][]float64{{make([]float64, g.NumEdges()), make([]float64, g.NumEdges())}},
	}
	// Route the full unit fraction out of s on both branches but only
	// deliver one into t: conservation fails at v2.
	sEdge := func(from, to graph.NodeID) graph.EdgeID {
		for _, eid := range g.OutEdges(from) {
			if g.Edge(eid).To == to {
				return eid
			}
		}
		t.Fatalf("no edge %v→%v", from, to)
		return 0
	}
	sch.EdgeFrac[0][0][sEdge(s, v1)] = 0.5
	sch.EdgeFrac[0][0][sEdge(v1, tn)] = 0.5
	sch.EdgeFrac[0][0][sEdge(s, v2)] = 0.5
	r, _ := Schedule(sch)
	if r.Count(KindRouting) == 0 {
		t.Fatalf("conservation violation not caught: %v", r.Violations)
	}
}

// TestOracleReportsTruncatedRoutingArrays: malformed PathFrac/EdgeFrac
// shapes must surface as structure violations, not panics.
func TestOracleReportsTruncatedRoutingArrays(t *testing.T) {
	in := oneEdgeInstance(0)
	s := feasibleSchedule(in, 4, 0)
	s.Mode = coflow.MultiPath
	s.PathFrac = [][][]float64{} // non-nil but empty
	r, _ := Schedule(s)
	if r.Count(KindStructure) == 0 {
		t.Fatalf("empty PathFrac not caught: %v", r.Violations)
	}
	s = feasibleSchedule(in, 4, 0)
	s.Mode = coflow.FreePath
	s.EdgeFrac = [][][]float64{{{0}}} // one slot instead of four
	r, _ = Schedule(s)
	if r.Count(KindStructure) == 0 {
		t.Fatalf("short EdgeFrac not caught: %v", r.Violations)
	}
}

func TestLowerBounds(t *testing.T) {
	// s connects to t via three disjoint 2-hop unit paths: single path
	// rate 1, free path rate 3.
	g := graph.Figure2()
	s, _ := g.Node("s")
	tn, _ := g.Node("t")
	in := &coflow.Instance{
		Graph: g,
		Coflows: []coflow.Coflow{{
			ID: 0, Weight: 1, Release: 1,
			Flows: []coflow.Flow{{Source: s, Sink: tn, Demand: 6, Path: g.ShortestPath(s, tn)}},
		}},
	}
	lbSingle := CoflowLowerBounds(in, coflow.SinglePath)
	if math.Abs(lbSingle[0]-7) > 1e-9 { // 1 + 6/1
		t.Fatalf("single path LB %g, want 7", lbSingle[0])
	}
	lbFree := CoflowLowerBounds(in, coflow.FreePath)
	if math.Abs(lbFree[0]-3) > 1e-9 { // 1 + 6/3
		t.Fatalf("free path LB %g, want 3", lbFree[0])
	}
	in.Coflows[0].Flows[0].AltPaths = g.KShortestPaths(s, tn, 2)
	lbMulti := CoflowLowerBounds(in, coflow.MultiPath)
	if math.Abs(lbMulti[0]-4) > 1e-9 { // 1 + 6/min(2 paths, maxflow 3)
		t.Fatalf("multi path LB %g, want 4", lbMulti[0])
	}
}

// TestOracleAcceptsEngineSchedulers runs every registered scheduler on
// a small workload in a model it supports and demands a clean report —
// the in-package half of the conformance matrix.
func TestOracleAcceptsEngineSchedulers(t *testing.T) {
	single, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: graph.SWAN(1), NumCoflows: 4, Seed: 3,
		MeanInterarrival: 1, AssignPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	free, err := workload.Generate(workload.Config{
		Kind: workload.TPCH, Graph: graph.SWAN(1), NumCoflows: 3, Seed: 5,
		MeanInterarrival: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range engine.Names() {
		s, err := engine.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		var in *coflow.Instance
		var mode coflow.Model
		switch {
		case s.Supports(coflow.SinglePath):
			in, mode = single, coflow.SinglePath
		case s.Supports(coflow.FreePath):
			in, mode = free, coflow.FreePath
		default:
			continue
		}
		res, err := engine.Schedule(context.Background(), name, in, mode,
			engine.Options{MaxSlots: 16, Trials: 2, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Result(in, res).Err(); err != nil {
			t.Errorf("%s: oracle rejects: %v", name, err)
		}
	}
}

func TestOracleAcceptsSimResult(t *testing.T) {
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: graph.SWAN(1), NumCoflows: 5, Seed: 11,
		MeanInterarrival: 1.5, AssignPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{sim.NameFIFO, sim.NameLAS, sim.NameFair, "epoch:sincronia-greedy"} {
		res, err := sim.Simulate(context.Background(), in, sim.Options{Policy: pol, Epoch: 2, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if err := SimResult(in, res, false).Err(); err != nil {
			t.Errorf("%s: oracle rejects: %v", pol, err)
		}
	}
	// Clairvoyant traces reveal everything at t=0.
	res, err := sim.Simulate(context.Background(), in, sim.Options{Policy: sim.NameLAS, Clairvoyant: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := SimResult(in, res, true).Err(); err != nil {
		t.Errorf("clairvoyant: oracle rejects: %v", err)
	}
	// And the oracle notices when told the wrong reveal convention.
	if in.MaxRelease() > 0 {
		if SimResult(in, res, false).Count(KindCompletion) == 0 {
			t.Error("clairvoyant trace validated as non-clairvoyant")
		}
	}
}

func TestOracleCatchesTamperedSimResult(t *testing.T) {
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: graph.SWAN(1), NumCoflows: 4, Seed: 2,
		MeanInterarrival: 1, AssignPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.Simulate(context.Background(), in, sim.Options{Policy: sim.NameFIFO})
	if err != nil {
		t.Fatal(err)
	}

	tamper := func() *sim.Result {
		c := *base
		c.Completions = append([]float64(nil), base.Completions...)
		c.Trace = append([]sim.Event(nil), base.Trace...)
		return &c
	}

	// A completion faster than physics allows.
	r := tamper()
	r.Completions[0] = in.Coflows[0].Release + 1e-4
	rep := SimResult(in, r, false)
	if rep.Count(KindLowerBound) == 0 {
		t.Errorf("impossibly fast completion not caught: %v", rep.Violations)
	}

	// A reordered trace.
	r = tamper()
	if len(r.Trace) >= 2 {
		r.Trace[0], r.Trace[len(r.Trace)-1] = r.Trace[len(r.Trace)-1], r.Trace[0]
		rep = SimResult(in, r, false)
		if !strings.Contains(rep.Err().Error(), "precedes") && rep.Count(KindStructure) == 0 && rep.Count(KindCompletion) == 0 {
			t.Errorf("reordered trace not caught: %v", rep.Violations)
		}
	}

	// A cooked aggregate.
	r = tamper()
	r.WeightedCCT *= 1.5
	rep = SimResult(in, r, false)
	if rep.Count(KindAggregate) == 0 {
		t.Errorf("cooked aggregate not caught: %v", rep.Violations)
	}

	// A dropped completion event.
	r = tamper()
	for i, ev := range r.Trace {
		if ev.Kind == sim.Completion {
			r.Trace = append(r.Trace[:i], r.Trace[i+1:]...)
			break
		}
	}
	rep = SimResult(in, r, false)
	if rep.Count(KindStructure) == 0 {
		t.Errorf("dropped completion event not caught: %v", rep.Violations)
	}
}

func TestReportErr(t *testing.T) {
	r := &Report{}
	if r.Err() != nil {
		t.Fatal("empty report has an error")
	}
	for i := 0; i < 8; i++ {
		r.addf(KindCapacity, "violation %d", i)
	}
	msg := r.Err().Error()
	if !strings.Contains(msg, "8 violation(s)") || !strings.Contains(msg, "and 3 more") {
		t.Fatalf("summary %q", msg)
	}
}
