// Package validate is the independent schedule-validity oracle: it
// replays scheduler outputs — slotted offline schedules and online
// event traces alike — against the instance they claim to solve and
// checks the invariants no correct coflow scheduler may break:
//
//   - per-edge capacity is never exceeded in any slot;
//   - every flow ships its full demand along an admissible route for
//     its transmission model (the fixed Path in the single path model,
//     the AltPaths candidate set in the multi path model, a conserved
//     edge flow in the free path model);
//   - nothing transmits before its effective release time;
//   - reported completion times match the replayed ones, reported
//     aggregates (ΣwC, ΣC, makespan, …) match the completions, and no
//     completion undercuts the trivial per-coflow lower bound
//     max_i (release_i + demand_i / bottleneck-rate_i).
//
// The oracle shares no code with schedule.Verify or the simulator's
// internal rate checker: it recomputes loads, completions, and bounds
// from scratch (bottleneck rates via internal/maxflow), so a bug in a
// scheduler and a bug in its own feasibility check cannot cancel out.
// It is the engine of the scheduler × topology × model conformance
// matrix that gates every scheduler in the repository.
//
// Violations are collected, not short-circuited: a Report lists every
// broken invariant with its Kind, so tests can assert both "no
// violations" on real schedulers and "exactly this violation" on
// deliberately corrupted schedules.
package validate

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/coflow"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/maxflow"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// Tolerances. Fractions and loads come out of an LP solved to ~1e-7;
// times are sums of slot lengths.
const (
	fracTol = 1e-5 // total shipped fraction vs 1
	rateTol = 1e-6 // relative capacity slack
	absTol  = 1e-9 // absolute slack added to capacity comparisons
	timeTol = 1e-6 // completion-time comparisons
)

// Kind classifies a violation.
type Kind string

// The invariant classes the oracle checks.
const (
	// KindStructure: malformed output (dimension mismatches, missing
	// routing data, nil fields).
	KindStructure Kind = "structure"
	// KindDemand: a flow does not ship its full demand.
	KindDemand Kind = "demand"
	// KindRelease: transmission before the effective release time.
	KindRelease Kind = "release"
	// KindRouting: inadmissible route for the transmission model
	// (broken path, rates off the candidate set, conservation failure).
	KindRouting Kind = "routing"
	// KindCapacity: an edge carries more volume than capacity × time.
	KindCapacity Kind = "capacity"
	// KindCompletion: reported completion times disagree with the
	// replayed schedule or trace.
	KindCompletion Kind = "completion"
	// KindAggregate: reported ΣwC / ΣC / avg / makespan disagree with
	// the reported completions.
	KindAggregate Kind = "aggregate"
	// KindLowerBound: a completion time beats the trivial lower bound —
	// physically impossible, so the output is fabricated or mislabeled.
	KindLowerBound Kind = "lower-bound"
)

// Violation is one broken invariant.
type Violation struct {
	Kind Kind
	Msg  string
}

func (v Violation) String() string { return fmt.Sprintf("[%s] %s", v.Kind, v.Msg) }

// Report collects every violation found in one validation pass.
type Report struct {
	Violations []Violation
}

// OK reports whether no invariant was violated.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Count returns the number of violations of the given kind.
func (r *Report) Count(k Kind) int {
	n := 0
	for _, v := range r.Violations {
		if v.Kind == k {
			n++
		}
	}
	return n
}

// Err returns nil for a clean report, otherwise an error summarizing up
// to five violations.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "validate: %d violation(s):", len(r.Violations))
	for i, v := range r.Violations {
		if i == 5 {
			fmt.Fprintf(&b, " … and %d more", len(r.Violations)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return fmt.Errorf("%s", b.String())
}

func (r *Report) addf(k Kind, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Kind: k, Msg: fmt.Sprintf(format, args...)})
}

// FlowRate returns the maximum service rate of a single flow under the
// given model: the bottleneck capacity of its fixed path (single path),
// the smaller of the s→t max-flow and the summed bottlenecks of its
// candidate paths (multi path — paths can run concurrently, but every
// byte still crosses each s→t cut), or the s→t max-flow (free path).
// Zero means unreachable.
func FlowRate(g *graph.Graph, f *coflow.Flow, mode coflow.Model) float64 {
	switch mode {
	case coflow.SinglePath:
		if len(f.Path) > 0 {
			return g.PathCapacity(f.Path)
		}
	case coflow.MultiPath:
		if len(f.AltPaths) > 0 {
			var sum float64
			for _, p := range f.AltPaths {
				sum += g.PathCapacity(p)
			}
			mf := maxflow.Max(g, f.Source, f.Sink).Value
			return math.Min(sum, mf)
		}
	}
	return maxflow.Max(g, f.Source, f.Sink).Value
}

// CoflowLowerBounds returns, per coflow, the trivial completion-time
// lower bound every feasible schedule obeys: the slowest of its flows,
// each needing at least demand / bottleneck-rate time after its
// effective release. Unreachable flows contribute +Inf.
func CoflowLowerBounds(inst *coflow.Instance, mode coflow.Model) []float64 {
	out := make([]float64, len(inst.Coflows))
	for j := range inst.Coflows {
		c := &inst.Coflows[j]
		for i := range c.Flows {
			f := &c.Flows[i]
			rate := FlowRate(inst.Graph, f, mode)
			lb := c.EffectiveRelease(i)
			if rate <= 0 {
				lb = math.Inf(1)
			} else {
				lb += f.Demand / rate
			}
			if lb > out[j] {
				out[j] = lb
			}
		}
	}
	return out
}

// Schedule independently replays a slotted schedule and returns the
// report plus the replayed per-coflow completion times (nil when the
// schedule is too malformed to replay).
func Schedule(s *schedule.Schedule) (*Report, []float64) {
	r := &Report{}
	if s == nil || s.Inst == nil || s.Inst.Graph == nil {
		r.addf(KindStructure, "nil schedule or instance")
		return r, nil
	}
	g := s.Inst.Graph
	k := s.Grid.NumSlots()
	if len(s.Flows) != s.Inst.NumFlows() {
		r.addf(KindStructure, "schedule covers %d flows, instance has %d", len(s.Flows), s.Inst.NumFlows())
		return r, nil
	}
	if len(s.Frac) != len(s.Flows) {
		r.addf(KindStructure, "Frac has %d rows for %d flows", len(s.Frac), len(s.Flows))
		return r, nil
	}
	switch s.Mode {
	case coflow.SinglePath:
	case coflow.FreePath:
		if s.EdgeFrac == nil {
			r.addf(KindStructure, "free path schedule without EdgeFrac routing")
			return r, nil
		}
		if len(s.EdgeFrac) != len(s.Flows) {
			r.addf(KindStructure, "EdgeFrac has %d rows for %d flows", len(s.EdgeFrac), len(s.Flows))
			return r, nil
		}
		for f := range s.EdgeFrac {
			if len(s.EdgeFrac[f]) != k {
				r.addf(KindStructure, "flow %d has %d EdgeFrac slots, grid has %d", f, len(s.EdgeFrac[f]), k)
				return r, nil
			}
		}
	case coflow.MultiPath:
		if s.PathFrac == nil {
			r.addf(KindStructure, "multi path schedule without PathFrac rates")
			return r, nil
		}
		if len(s.PathFrac) != len(s.Flows) {
			r.addf(KindStructure, "PathFrac has %d rows for %d flows", len(s.PathFrac), len(s.Flows))
			return r, nil
		}
		for f := range s.PathFrac {
			if len(s.PathFrac[f]) != k {
				r.addf(KindStructure, "flow %d has %d PathFrac slots, grid has %d", f, len(s.PathFrac[f]), k)
				return r, nil
			}
		}
	default:
		r.addf(KindStructure, "unknown transmission model %v", s.Mode)
		return r, nil
	}

	// Per-flow shipping, release, and routing admissibility.
	flowDone := make([]float64, len(s.Flows)) // end of last active slot, +Inf if unshipped
	for f, ref := range s.Flows {
		fl := s.Inst.FlowAt(ref)
		if len(s.Frac[f]) != k {
			r.addf(KindStructure, "flow %d has %d slots, grid has %d", f, len(s.Frac[f]), k)
			return r, nil
		}
		release := s.Inst.ReleaseAt(ref)
		var total float64
		last := -1
		for t, v := range s.Frac[f] {
			if v < -fracTol {
				r.addf(KindStructure, "flow %d slot %d: negative fraction %g", f, t, v)
			}
			if v > fracTol {
				last = t
				if s.Grid.Start(t)+timeTol < release {
					r.addf(KindRelease, "flow %d transmits in slot %d (start %g) before release %g",
						f, t, s.Grid.Start(t), release)
				}
			}
			total += v
		}
		if math.Abs(total-1) > fracTol {
			r.addf(KindDemand, "flow %d ships fraction %g of its demand", f, total)
		}
		if last < 0 || total < 1-fracTol {
			flowDone[f] = math.Inf(1)
		} else {
			flowDone[f] = s.Grid.End(last)
		}

		switch s.Mode {
		case coflow.SinglePath:
			if len(fl.Path) == 0 {
				r.addf(KindRouting, "flow %d has no path in the single path model", f)
			} else if err := g.ValidatePath(fl.Source, fl.Sink, fl.Path); err != nil {
				r.addf(KindRouting, "flow %d: %v", f, err)
			}
		case coflow.MultiPath:
			for pi, p := range fl.AltPaths {
				if err := g.ValidatePath(fl.Source, fl.Sink, p); err != nil {
					r.addf(KindRouting, "flow %d candidate path %d: %v", f, pi, err)
				}
			}
		}
	}

	// Per-slot loads, routing consistency, and capacity.
	load := make([]float64, g.NumEdges())
	for t := 0; t < k; t++ {
		for e := range load {
			load[e] = 0
		}
		for f, ref := range s.Flows {
			fl := s.Inst.FlowAt(ref)
			switch s.Mode {
			case coflow.SinglePath:
				for _, eid := range fl.Path {
					load[eid] += fl.Demand * s.Frac[f][t]
				}
			case coflow.MultiPath:
				pf := s.PathFrac[f][t]
				if len(pf) != len(fl.AltPaths) {
					r.addf(KindStructure, "flow %d slot %d: %d path rates for %d candidate paths",
						f, t, len(pf), len(fl.AltPaths))
					continue
				}
				var sum float64
				for pi, v := range pf {
					if v < -fracTol {
						r.addf(KindStructure, "flow %d slot %d path %d: negative rate %g", f, t, pi, v)
					}
					sum += v
					for _, eid := range fl.AltPaths[pi] {
						load[eid] += fl.Demand * v
					}
				}
				if math.Abs(sum-s.Frac[f][t]) > fracTol {
					r.addf(KindRouting, "flow %d slot %d: path rates sum to %g, Frac says %g",
						f, t, sum, s.Frac[f][t])
				}
			case coflow.FreePath:
				ef := s.EdgeFrac[f][t]
				if len(ef) != g.NumEdges() {
					r.addf(KindStructure, "flow %d slot %d: %d edge rates for %d edges",
						f, t, len(ef), g.NumEdges())
					continue
				}
				var srcNet float64
				for _, eid := range g.OutEdges(fl.Source) {
					srcNet += ef[eid]
				}
				for _, eid := range g.InEdges(fl.Source) {
					srcNet -= ef[eid]
				}
				if math.Abs(srcNet-s.Frac[f][t]) > fracTol {
					r.addf(KindRouting, "flow %d slot %d: source net outflow %g, Frac says %g",
						f, t, srcNet, s.Frac[f][t])
				}
				for v := 0; v < g.NumNodes(); v++ {
					node := graph.NodeID(v)
					if node == fl.Source || node == fl.Sink {
						continue
					}
					var bal float64
					for _, eid := range g.InEdges(node) {
						bal += ef[eid]
					}
					for _, eid := range g.OutEdges(node) {
						bal -= ef[eid]
					}
					if math.Abs(bal) > fracTol {
						r.addf(KindRouting, "flow %d slot %d node %s: conservation off by %g",
							f, t, g.NodeName(node), bal)
					}
				}
				for e, v := range ef {
					if v < -fracTol {
						r.addf(KindStructure, "flow %d slot %d edge %d: negative rate %g", f, t, e, v)
					}
					load[e] += fl.Demand * v
				}
			}
		}
		for _, e := range g.Edges() {
			capT := e.Capacity * s.Grid.Len(t)
			if load[e.ID] > capT*(1+rateTol)+absTol {
				r.addf(KindCapacity, "slot %d edge %d (%s→%s): load %g exceeds capacity %g",
					t, e.ID, g.NodeName(e.From), g.NodeName(e.To), load[e.ID], capT)
			}
		}
	}

	// Replayed coflow completion: last active slot of any of its flows.
	comps := make([]float64, len(s.Inst.Coflows))
	for f, ref := range s.Flows {
		if flowDone[f] > comps[ref.Coflow] {
			comps[ref.Coflow] = flowDone[f]
		}
	}
	return r, comps
}

// Result checks an engine scheduler outcome end to end: the attached
// schedule (when present) replays cleanly, its replayed completions
// match the reported ones, the reported aggregates match the reported
// completions, no completion beats the trivial lower bound, and an
// approximation objective never undercuts its own LP bound.
func Result(inst *coflow.Instance, res *engine.Result) *Report {
	r := &Report{}
	if inst == nil || res == nil {
		r.addf(KindStructure, "nil instance or result")
		return r
	}
	nc := len(inst.Coflows)
	if len(res.Completions) != nc {
		r.addf(KindStructure, "%d completion times for %d coflows", len(res.Completions), nc)
		return r
	}

	var weighted, total float64
	for j, c := range res.Completions {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			r.addf(KindCompletion, "coflow %d: completion %g is not a finite non-negative time", j, c)
			continue
		}
		weighted += inst.Coflows[j].Weight * c
		total += c
	}
	if !closeTo(weighted, res.Weighted) {
		r.addf(KindAggregate, "reported ΣwC %g, completions give %g", res.Weighted, weighted)
	}
	if !closeTo(total, res.Total) {
		r.addf(KindAggregate, "reported ΣC %g, completions give %g", res.Total, total)
	}
	if res.HasLowerBound && res.Weighted < res.LowerBound-timeTol*math.Max(1, math.Abs(res.LowerBound)) {
		r.addf(KindLowerBound, "objective %g beats its own LP lower bound %g", res.Weighted, res.LowerBound)
	}

	lbs := CoflowLowerBounds(inst, res.Mode)
	for j, c := range res.Completions {
		if !math.IsInf(lbs[j], 1) && c < lbs[j]-timeTol*math.Max(1, lbs[j]) {
			r.addf(KindLowerBound, "coflow %d completes at %g, below the trivial bound %g", j, c, lbs[j])
		}
	}

	if res.Schedule != nil {
		s := res.Schedule
		if s.Inst != inst {
			r.addf(KindStructure, "schedule is built on a different instance")
			return r
		}
		if s.Mode != res.Mode {
			r.addf(KindStructure, "schedule model %v, result model %v", s.Mode, res.Mode)
		}
		sr, comps := Schedule(s)
		r.Violations = append(r.Violations, sr.Violations...)
		if comps != nil {
			for j := range comps {
				if math.Abs(comps[j]-res.Completions[j]) > timeTol*math.Max(1, comps[j]) {
					r.addf(KindCompletion, "coflow %d: reported completion %g, replay gives %g",
						j, res.Completions[j], comps[j])
				}
			}
		}
	}
	return r
}

// SimResult checks an online simulation outcome against the instance:
// the event trace is time-ordered and complete (one arrival at the
// release — or at t=0 under clairvoyant reveal — and one completion per
// coflow, at the reported time), aggregates match the completions, no
// coflow beats its trivial lower bound, and no edge carries more volume
// than capacity × active window. The last check is the strongest
// capacity statement a trace without rates admits: all flows crossing
// an edge must squeeze their combined demand between the earliest
// release and the latest completion among them.
func SimResult(inst *coflow.Instance, res *sim.Result, clairvoyant bool) *Report {
	r := &Report{}
	if inst == nil || res == nil {
		r.addf(KindStructure, "nil instance or result")
		return r
	}
	nc := len(inst.Coflows)
	if len(res.Completions) != nc {
		r.addf(KindStructure, "%d completion times for %d coflows", len(res.Completions), nc)
		return r
	}
	if len(res.Arrivals) != nc {
		r.addf(KindStructure, "%d arrival times for %d coflows", len(res.Arrivals), nc)
		return r
	}
	for j := 0; j < nc; j++ {
		if res.Arrivals[j] != inst.Coflows[j].Release {
			r.addf(KindStructure, "coflow %d: recorded arrival %g, instance release %g",
				j, res.Arrivals[j], inst.Coflows[j].Release)
		}
	}

	// Trace shape: time-ordered, one arrival and one completion per
	// coflow, at the right times.
	arrivals := make([]int, nc)
	completions := make([]int, nc)
	prev := math.Inf(-1)
	for i, ev := range res.Trace {
		if ev.Time < prev-absTol {
			r.addf(KindStructure, "trace event %d at t=%g precedes t=%g", i, ev.Time, prev)
		}
		if ev.Time > prev {
			prev = ev.Time
		}
		switch ev.Kind {
		case sim.Arrival, sim.Completion:
			if ev.Coflow < 0 || ev.Coflow >= nc {
				r.addf(KindStructure, "trace event %d: coflow %d out of range", i, ev.Coflow)
				continue
			}
			if ev.Kind == sim.Arrival {
				arrivals[ev.Coflow]++
				want := inst.Coflows[ev.Coflow].Release
				if clairvoyant {
					want = 0
				}
				if math.Abs(ev.Time-want) > timeTol {
					r.addf(KindCompletion, "coflow %d revealed at t=%g, release is %g",
						ev.Coflow, ev.Time, want)
				}
			} else {
				completions[ev.Coflow]++
				if math.Abs(ev.Time-res.Completions[ev.Coflow]) > timeTol {
					r.addf(KindCompletion, "coflow %d completion event at t=%g, reported completion %g",
						ev.Coflow, ev.Time, res.Completions[ev.Coflow])
				}
			}
		case sim.EpochTick:
			if ev.Coflow != -1 {
				r.addf(KindStructure, "trace event %d: epoch tick names coflow %d", i, ev.Coflow)
			}
		default:
			r.addf(KindStructure, "trace event %d: unknown kind %v", i, ev.Kind)
		}
	}
	for j := 0; j < nc; j++ {
		if arrivals[j] != 1 {
			r.addf(KindStructure, "coflow %d has %d arrival events", j, arrivals[j])
		}
		if completions[j] != 1 {
			r.addf(KindStructure, "coflow %d has %d completion events", j, completions[j])
		}
	}

	// Aggregates from the reported completions.
	var weighted, total, avg, makespan float64
	for j, c := range res.Completions {
		weighted += inst.Coflows[j].Weight * c
		total += c
		avg += c - res.Arrivals[j]
		if c > makespan {
			makespan = c
		}
	}
	avg /= float64(nc)
	if !closeTo(weighted, res.WeightedCCT) {
		r.addf(KindAggregate, "reported ΣwC %g, completions give %g", res.WeightedCCT, weighted)
	}
	if !closeTo(total, res.TotalCCT) {
		r.addf(KindAggregate, "reported ΣC %g, completions give %g", res.TotalCCT, total)
	}
	if !closeTo(avg, res.AvgCCT) {
		r.addf(KindAggregate, "reported avg CCT %g, completions give %g", res.AvgCCT, avg)
	}
	if !closeTo(makespan, res.Makespan) {
		r.addf(KindAggregate, "reported makespan %g, completions give %g", res.Makespan, makespan)
	}

	// Physical bounds. The simulator runs in the single path model.
	lbs := CoflowLowerBounds(inst, coflow.SinglePath)
	for j, c := range res.Completions {
		if !math.IsInf(lbs[j], 1) && c < lbs[j]-timeTol*math.Max(1, lbs[j]) {
			r.addf(KindLowerBound, "coflow %d completes at %g, below the trivial bound %g", j, c, lbs[j])
		}
	}

	// Per-edge volume vs the active window of the flows crossing it.
	g := inst.Graph
	type window struct {
		vol      float64
		from, to float64
		used     bool
	}
	wins := make([]window, g.NumEdges())
	for j := range inst.Coflows {
		c := &inst.Coflows[j]
		for i := range c.Flows {
			f := &c.Flows[i]
			rel := c.EffectiveRelease(i)
			for _, eid := range f.Path {
				w := &wins[eid]
				if !w.used {
					w.from, w.to, w.used = rel, res.Completions[j], true
				} else {
					w.from = math.Min(w.from, rel)
					w.to = math.Max(w.to, res.Completions[j])
				}
				w.vol += f.Demand
			}
		}
	}
	for _, e := range g.Edges() {
		w := wins[e.ID]
		if !w.used {
			continue
		}
		budget := e.Capacity * math.Max(0, w.to-w.from)
		if w.vol > budget*(1+rateTol)+absTol {
			r.addf(KindCapacity, "edge %d (%s→%s): %g volume cannot fit in window [%g, %g] at capacity %g",
				e.ID, g.NodeName(e.From), g.NodeName(e.To), w.vol, w.from, w.to, e.Capacity)
		}
	}
	return r
}

// closeTo compares reported vs recomputed scalars with a relative
// tolerance.
func closeTo(recomputed, reported float64) bool {
	return math.Abs(recomputed-reported) <= timeTol*math.Max(1, math.Abs(recomputed))
}
