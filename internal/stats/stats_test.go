package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Sum != 10 {
		t.Fatalf("summary %+v", s)
	}
	// Sample std of 1..4 is sqrt(5/3).
	if math.Abs(s.Std-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	if s := Summarize([]float64{7}); s.Std != 0 || s.Mean != 7 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestSubSeedDeterministicAndDistinct(t *testing.T) {
	a := SubSeed(42, 0)
	b := SubSeed(42, 0)
	if a != b {
		t.Fatal("SubSeed not deterministic")
	}
	if SubSeed(42, 1) == a || SubSeed(43, 0) == a {
		t.Fatal("SubSeed collisions on adjacent inputs")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("ratio wrong")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Fatal("ratio by zero should be +Inf")
	}
}
