// Package stats provides the small statistical utilities the
// experiment harnesses need: summaries and deterministic sub-seeding.
package stats

import (
	"math"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Sum       float64
}

// Summarize computes descriptive statistics. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// SubSeed derives a deterministic child seed from a parent seed and a
// stream label, so independent generators can be split reproducibly
// (splitmix64-style finalizer).
func SubSeed(parent int64, stream uint64) int64 {
	z := uint64(parent) + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Ratio returns a/b, or +Inf when b is zero (used for speedup tables).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}
