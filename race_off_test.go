//go:build !race

package repro_test

// raceEnabled mirrors the race detector's build tag so scale tests can
// skip runs whose wall-clock bound assumes uninstrumented code.
const raceEnabled = false
