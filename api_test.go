package repro

import (
	"context"
	"testing"
)

func smallInstance(t *testing.T, paths bool) *Instance {
	t.Helper()
	in, err := GenerateWorkload(WorkloadConfig{
		Kind: TPCH, Graph: NewSWAN(1), NumCoflows: 3, Seed: 11,
		MeanInterarrival: 1, AssignPaths: paths,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestScheduleFreePathFacade(t *testing.T) {
	in := smallInstance(t, false)
	res, err := ScheduleFreePath(in, SchedOptions{MaxSlots: 24, Trials: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Heuristic.Weighted < res.LowerBound-1e-6 {
		t.Fatalf("heuristic %v below bound %v", res.Heuristic.Weighted, res.LowerBound)
	}
	if res.Stretch == nil || len(res.Stretch.Samples) != 3 {
		t.Fatalf("stretch stats missing or wrong size: %+v", res.Stretch)
	}
}

func TestScheduleSinglePathFacade(t *testing.T) {
	in := smallInstance(t, true)
	res, err := ScheduleSinglePath(in, SchedOptions{MaxSlots: 24, Trials: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stretch != nil {
		t.Fatal("negative Trials should disable stretch")
	}
	if err := res.Heuristic.Schedule.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTopologies(t *testing.T) {
	if NewSWAN(2).NumNodes() != 5 || NewGScale(2).NumNodes() != 12 {
		t.Fatal("topology constructors wrong")
	}
	g := NewGraph()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(a, b, 1)
	if g.NumEdges() != 1 {
		t.Fatal("NewGraph broken")
	}
	if UniformGrid(5).NumSlots() != 5 {
		t.Fatal("UniformGrid broken")
	}
}

func TestFacadeModelsDiffer(t *testing.T) {
	// Free path LP bound ≤ single path LP bound on the same instance.
	in := smallInstance(t, true)
	sp, err := ScheduleSinglePath(in, SchedOptions{MaxSlots: 24, Trials: -1})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := ScheduleFreePath(in, SchedOptions{MaxSlots: 24, Trials: -1})
	if err != nil {
		t.Fatal(err)
	}
	if fp.LowerBound > sp.LowerBound+1e-6 {
		t.Fatalf("free path bound %v above single path %v", fp.LowerBound, sp.LowerBound)
	}
}

func TestDeterministicPipeline(t *testing.T) {
	in := smallInstance(t, false)
	a, err := ScheduleFreePath(in, SchedOptions{MaxSlots: 24, Trials: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScheduleFreePath(in, SchedOptions{MaxSlots: 24, Trials: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.LowerBound != b.LowerBound || a.Stretch.AvgWeighted != b.Stretch.AvgWeighted {
		t.Fatal("pipeline is not deterministic for a fixed seed")
	}
}

func TestSchedulersRegistry(t *testing.T) {
	names := Schedulers()
	if len(names) < 5 {
		t.Fatalf("want ≥ 5 registered schedulers, got %v", names)
	}
}

func TestScheduleWithFacade(t *testing.T) {
	single := smallInstance(t, true)
	free := smallInstance(t, false)
	for _, tc := range []struct {
		name string
		in   *Instance
		mode TransmissionModel
	}{
		{"stretch", free, FreePath},
		{"heuristic", single, SinglePath},
		{"terra", free, FreePath},
		{"jahanjou", single, SinglePath},
		{"sincronia-greedy", single, SinglePath},
	} {
		res, err := ScheduleWith(context.Background(), tc.name, tc.in, tc.mode,
			SchedOptions{MaxSlots: 24, Trials: 3, Seed: 1, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Scheduler != tc.name || res.Weighted <= 0 {
			t.Fatalf("%s: bad result %+v", tc.name, res)
		}
	}
	if _, err := ScheduleWith(context.Background(), "nope", free, FreePath, SchedOptions{}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

// TestFacadeWorkersDeterministic: the top-level API inherits the
// engine's determinism guarantee.
func TestFacadeWorkersDeterministic(t *testing.T) {
	in := smallInstance(t, false)
	a, err := ScheduleFreePath(in, SchedOptions{MaxSlots: 24, Trials: 6, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScheduleFreePath(in, SchedOptions{MaxSlots: 24, Trials: 6, Seed: 9, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stretch.BestWeighted != b.Stretch.BestWeighted ||
		a.Stretch.AvgWeighted != b.Stretch.AvgWeighted ||
		a.Stretch.BestLambda != b.Stretch.BestLambda {
		t.Fatalf("worker count changed results: %+v vs %+v", a.Stretch, b.Stretch)
	}
}

// TestSimulateFacade: the online simulator is reachable from the root
// package and its policy registry is populated.
func TestSimulateFacade(t *testing.T) {
	in := smallInstance(t, true)
	res, err := Simulate(context.Background(), in, SimOptions{Policy: "las"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "las" || res.Makespan <= 0 || len(res.Completions) != len(in.Coflows) {
		t.Fatalf("bad result %+v", res)
	}
	names := SimPolicies()
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"fifo", "las", "fair", "sincronia-online", "epoch:stretch"} {
		if !seen[want] {
			t.Fatalf("SimPolicies() = %v missing %q", names, want)
		}
	}
}

// TestSimulateVsOfflineUnits: online and offline results share units —
// on a zero-release instance the epoch adapter must land within 2× of
// the clairvoyant engine run (the ISSUE acceptance bound).
func TestSimulateVsOfflineUnits(t *testing.T) {
	in, err := GenerateWorkload(WorkloadConfig{
		Kind: FB, Graph: NewSWAN(1), NumCoflows: 4, Seed: 3, AssignPaths: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	off, err := ScheduleWith(context.Background(), "stretch", in, SinglePath,
		SchedOptions{MaxSlots: 16, Trials: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Simulate(context.Background(), in, SimOptions{
		Policy: "epoch:stretch", MaxSlots: 16, Trials: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if on.WeightedCCT > 2*off.Weighted {
		t.Fatalf("online %.3f > 2x offline %.3f", on.WeightedCCT, off.Weighted)
	}
}

func TestTopologyFacade(t *testing.T) {
	fams := Topologies()
	if len(fams) < 8 {
		t.Fatalf("Topologies() = %v, want ≥ 8 families", fams)
	}
	top, err := NewTopology("fat-tree:k=4")
	if err != nil {
		t.Fatal(err)
	}
	if top.Graph.NumNodes() != 36 || len(top.Endpoints) != 16 {
		t.Fatalf("fat-tree:k=4 has %d nodes / %d endpoints", top.Graph.NumNodes(), len(top.Endpoints))
	}
	if _, err := NewTopology("moebius:n=4"); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// TestValidateFacade runs a scheduler and an online policy on a
// generated topology and passes both results through the public
// validation facade; then checks tampering is rejected.
func TestValidateFacade(t *testing.T) {
	top, err := NewTopology("leaf-spine:leaves=3,spines=2,hosts=2")
	if err != nil {
		t.Fatal(err)
	}
	in, err := GenerateWorkload(WorkloadConfig{
		Kind: FB, Graph: top.Graph, NumCoflows: 4, Seed: 5,
		MeanInterarrival: 1, AssignPaths: true, Endpoints: top.Endpoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ScheduleWith(context.Background(), "sincronia-greedy", in, SinglePath, SchedOptions{MaxSlots: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(in, res); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	res.Completions[0] = 0.001
	if Validate(in, res) == nil {
		t.Fatal("tampered result accepted")
	}

	opt := SimOptions{Policy: "las", Seed: 1}
	sres, err := Simulate(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSim(in, sres, opt); err != nil {
		t.Fatalf("valid sim result rejected: %v", err)
	}
	sres.WeightedCCT *= 2
	if ValidateSim(in, sres, opt) == nil {
		t.Fatal("tampered sim result accepted")
	}
}
