package repro

// Benchmark harness: one benchmark per figure of the paper's
// evaluation (Figures 6–12) at the quick experiment scale, plus
// micro-benchmarks for the pipeline stages and ablations for the
// design choices called out in DESIGN.md (compaction on/off, grid
// resolution). Regenerating a figure at full scale is cmd/coflowsim's
// job; these benches track the cost of the pipeline end to end.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/baselines"
	"repro/internal/coflow"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/schedule"
	"repro/internal/timegrid"
	"repro/internal/workload"
)

func benchFigure(b *testing.B, fn func(context.Context, experiments.Config) (*experiments.FigureResult, error)) {
	b.Helper()
	cfg := experiments.Small()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6 (free path, SWAN, weighted).
func BenchmarkFigure6(b *testing.B) { benchFigure(b, experiments.Figure6) }

// BenchmarkFigure7 regenerates Figure 7 (free path, G-Scale, weighted).
func BenchmarkFigure7(b *testing.B) { benchFigure(b, experiments.Figure7) }

// BenchmarkFigure8 regenerates Figure 8 (interval ε sweep).
func BenchmarkFigure8(b *testing.B) { benchFigure(b, experiments.Figure8) }

// BenchmarkFigure9 regenerates Figure 9 (single path, SWAN).
func BenchmarkFigure9(b *testing.B) { benchFigure(b, experiments.Figure9) }

// BenchmarkFigure10 regenerates Figure 10 (single path, G-Scale).
func BenchmarkFigure10(b *testing.B) { benchFigure(b, experiments.Figure10) }

// BenchmarkFigure11 regenerates Figure 11 (free path vs Terra, SWAN).
func BenchmarkFigure11(b *testing.B) { benchFigure(b, experiments.Figure11) }

// BenchmarkFigure12 regenerates Figure 12 (free path vs Terra, G-Scale).
func BenchmarkFigure12(b *testing.B) { benchFigure(b, experiments.Figure12) }

func benchInstance(b *testing.B, paths bool, n int) *coflow.Instance {
	b.Helper()
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: NewSWAN(1), NumCoflows: n, Seed: 4,
		MeanInterarrival: 1, AssignPaths: paths,
	})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkLPSinglePath measures the time-indexed single path LP
// build+solve alone.
func BenchmarkLPSinglePath(b *testing.B) {
	in := benchInstance(b, true, 8)
	opt := core.Options{Grid: core.DefaultGrid(in, coflow.SinglePath, 24)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveLP(context.Background(), in, coflow.SinglePath, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPFreePath measures the free path LP build+solve alone.
func BenchmarkLPFreePath(b *testing.B) {
	in := benchInstance(b, false, 4)
	opt := core.Options{Grid: core.DefaultGrid(in, coflow.FreePath, 20)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveLP(context.Background(), in, coflow.FreePath, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStretchRounding measures the Stretch transform + verify,
// excluding the LP solve.
func BenchmarkStretchRounding(b *testing.B) {
	in := benchInstance(b, true, 8)
	opt := core.Options{Grid: core.DefaultGrid(in, coflow.SinglePath, 24)}
	sol, err := core.SolveLP(context.Background(), in, coflow.SinglePath, opt)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.StretchOnce(sol, schedule.SampleLambda(rng), opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStretchTrialsParallel compares Stretch trial throughput at
// 1 worker vs GOMAXPROCS workers on a free-path SWAN instance. The
// trials are embarrassingly parallel, so the speedup tracks the core
// count; results are bit-identical either way (same seed).
func BenchmarkStretchTrialsParallel(b *testing.B) {
	in := benchInstance(b, false, 4)
	grid := core.DefaultGrid(in, coflow.FreePath, 24)
	sol, err := core.SolveLP(context.Background(), in, coflow.FreePath, core.Options{Grid: grid})
	if err != nil {
		b.Fatal(err)
	}
	const trials = 32
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", runtime.GOMAXPROCS(0)}} {
		b.Run(tc.name, func(b *testing.B) {
			opt := core.Options{Grid: grid, Seed: 7, Workers: tc.workers}
			for i := 0; i < b.N; i++ {
				if _, err := core.StretchTrials(context.Background(), sol, trials, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkAblationCompaction compares Stretch with and without the
// Section 6.1 idle-slot compaction.
func BenchmarkAblationCompaction(b *testing.B) {
	in := benchInstance(b, true, 8)
	grid := core.DefaultGrid(in, coflow.SinglePath, 24)
	sol, err := core.SolveLP(context.Background(), in, coflow.SinglePath, core.Options{Grid: grid})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"with", false}, {"without", true}} {
		b.Run(tc.name, func(b *testing.B) {
			opt := core.Options{Grid: grid, DisableCompaction: tc.disable}
			var obj float64
			rng := rand.New(rand.NewSource(2))
			for i := 0; i < b.N; i++ {
				ev, err := core.StretchOnce(sol, 0.5+0.4*rng.Float64(), opt)
				if err != nil {
					b.Fatal(err)
				}
				obj += ev.Weighted
			}
			b.ReportMetric(obj/float64(b.N), "weighted-obj")
		})
	}
}

// BenchmarkAblationGridResolution quantifies the LP quality/cost
// trade-off of the slot length (the paper's "time index" discussion in
// Section 6.1).
func BenchmarkAblationGridResolution(b *testing.B) {
	in := benchInstance(b, true, 6)
	base := core.DefaultGrid(in, coflow.SinglePath, 48).NumSlots()
	for _, scale := range []struct {
		name  string
		slots int
	}{{"coarse", (base + 1) / 2}, {"default", base}, {"fine", base * 2}} {
		b.Run(scale.name, func(b *testing.B) {
			opt := core.Options{Grid: timegrid.Uniform(scale.slots)}
			var bound float64
			for i := 0; i < b.N; i++ {
				sol, err := core.SolveLP(context.Background(), in, coflow.SinglePath, opt)
				if err != nil {
					b.Fatal(err)
				}
				bound = sol.LowerBound
			}
			b.ReportMetric(bound, "lp-bound")
		})
	}
}

// BenchmarkAblationLambdaDistribution compares the paper's f(v)=2v λ
// sampler against a uniform sampler: the 2v density favors large λ
// (mild stretching), which is what makes the expectation bound tight.
// The reported metric is the average weighted objective.
func BenchmarkAblationLambdaDistribution(b *testing.B) {
	in := benchInstance(b, true, 8)
	grid := core.DefaultGrid(in, coflow.SinglePath, 24)
	sol, err := core.SolveLP(context.Background(), in, coflow.SinglePath, core.Options{Grid: grid})
	if err != nil {
		b.Fatal(err)
	}
	samplers := []struct {
		name string
		draw func(*rand.Rand) float64
	}{
		{"pdf2v", schedule.SampleLambda},
		{"uniform", func(r *rand.Rand) float64 { return 1e-3 + (1-1e-3)*r.Float64() }},
	}
	for _, sm := range samplers {
		b.Run(sm.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			opt := core.Options{Grid: grid}
			var obj float64
			for i := 0; i < b.N; i++ {
				ev, err := core.StretchOnce(sol, sm.draw(rng), opt)
				if err != nil {
					b.Fatal(err)
				}
				obj += ev.Weighted
			}
			b.ReportMetric(obj/float64(b.N), "weighted-obj")
		})
	}
}

// BenchmarkTerra measures the Terra baseline end to end.
func BenchmarkTerra(b *testing.B) {
	in, err := workload.Generate(workload.Config{
		Kind: workload.FB, Graph: NewSWAN(1), NumCoflows: 5, Seed: 4,
		MeanInterarrival: 1, WeightMin: 1, WeightMax: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.Terra(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJahanjou measures the Jahanjou et al. baseline end to end.
func BenchmarkJahanjou(b *testing.B) {
	in := benchInstance(b, true, 8)
	horizon := in.HorizonUpperBound(coflow.SinglePath) + 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.Jahanjou(context.Background(), in, horizon, baselines.JahanjouEpsilon, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateFB tracks the online event loop's throughput
// (events/sec) on an FB workload with the LP-free online Sincronia
// policy, so regressions in the simulator's per-event work show up
// independently of LP solver cost. The n=2000 size is the tier the
// benchmark-regression harness (internal/bench) records ref-vs-
// optimized speedups for in BENCH_sim.json.
func BenchmarkSimulateFB(b *testing.B) {
	for _, n := range []int{32, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in, err := workload.Generate(workload.Config{
				Kind: workload.FB, Graph: NewSWAN(1), NumCoflows: n, Seed: 6,
				MeanInterarrival: 0.5, AssignPaths: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			events := 0
			for i := 0; i < b.N; i++ {
				res, err := Simulate(context.Background(), in, SimOptions{Policy: "sincronia-online"})
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkFigureO1 regenerates the online load sweep.
func BenchmarkFigureO1(b *testing.B) { benchFigure(b, experiments.FigureO1) }
