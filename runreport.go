package repro

import (
	"repro/internal/spec"
)

// RunReport is the unified outcome of one Spec run, offline or
// online: objective aggregates, per-coflow completions, the LP bound
// when the algorithm solves one, and the validation outcome. Library
// callers reach the full underlying results through the Engine
// (offline) and Sim (online) fields; the JSON form carries the
// summary only and is byte-identical between coflowsim -spec and
// coflowd POST /v1/run for the same spec.
type RunReport = spec.RunReport

// Registry is the self-describing catalog of everything a Spec can
// name, as served by coflowd GET /v1/registry.
type Registry struct {
	Schedulers []string `json:"schedulers"`
	Policies   []string `json:"policies"`
	Topologies []string `json:"topologies"`
	Workloads  []string `json:"workloads"`
	Models     []string `json:"models"`
	Presets    []string `json:"presets"`
}

// Registries returns the live registry catalog: engine schedulers,
// sim policies (epoch adapters included), topology families plus the
// two hand-coded WANs, workload kinds, transmission models, and sweep
// presets.
func Registries() Registry {
	return Registry{
		Schedulers: spec.SchedulerNames(),
		Policies:   spec.PolicyNames(),
		Topologies: spec.TopologyNames(),
		Workloads:  spec.KindNames(),
		Models:     spec.ModelNames(),
		Presets:    spec.PresetNames(),
	}
}
