// Package repro is a from-scratch Go implementation of "Near Optimal
// Coflow Scheduling in Networks" (Chowdhury, Khuller, Purohit, Yang,
// You — SPAA 2019): the randomized 2-approximation "Stretch" algorithm
// for scheduling coflows over general network topologies, in both the
// single path and the free path transmission models, together with
// everything needed to reproduce the paper's evaluation — a sparse
// revised-simplex LP solver (the Gurobi substitute), the SWAN and
// G-Scale WAN topologies, synthetic BigBench/TPC-DS/TPC-H/Facebook
// workloads, and the Jahanjou et al. and Terra baselines.
//
// The front door is declarative: a Spec names the topology, workload,
// transmission model, and algorithm — an offline engine scheduler or
// an online sim policy — and Run(ctx, Spec) executes it into one
// unified RunReport. SweepSpec crosses Spec axes (schedulers ×
// policies × topologies × workloads × loads × seeds) and Sweep
// streams the cells as they finish, lazily expanded so arbitrarily
// large grids run in O(workers) memory. Specs round-trip through
// JSON; the same document drives this API, cmd/coflowsim -spec, and
// the cmd/coflowd HTTP service to the identical report.
//
// Every algorithm — the Stretch pipeline, the λ=1 heuristic, and the
// baselines (including a Sincronia-style bottleneck greedy) — is
// registered with the scheduler engine (internal/engine) and runs by
// name; Schedulers lists the registry. Stretch roundings run on a
// worker pool with per-trial RNGs derived from the seed, so results
// are reproducible at any worker count.
//
// Online runs use internal/sim: a discrete-event simulator that
// reveals coflows at their release times and re-plans with a named
// policy — non-clairvoyant baselines, online Sincronia, or an epoch
// adapter around any engine scheduler (SimPolicies lists them).
//
// The pre-Spec facades (ScheduleSinglePath/FreePath/MultiPath,
// ScheduleWith, Simulate, RunBenchmarks) remain as deprecated thin
// wrappers over Run — bit-identical on every instance the legacy
// paths could solve (equivalence-tested), with one deliberate change:
// a time horizon that previously failed the LP outright now retries
// adaptively up to 4× MaxSlots instead of erroring.
//
// NewTopology generates datacenter-style and adversarial networks from
// spec strings like "fat-tree:k=4" (internal/topo; Topologies lists
// the families), and Validate/ValidateSim replay any result through
// the independent validity oracle (internal/validate) — the engine of
// the scheduler × topology × model conformance matrix in the test
// suite.
//
// This root package is a thin facade over the internal packages; see
// README.md for the architecture and cmd/coflowsim for the experiment
// driver that regenerates every figure of the paper.
//
//	rep, _ := repro.Run(ctx, repro.Spec{
//	    Topology:  "fat-tree:k=4",
//	    Workload:  &repro.SpecWorkload{Kind: "fb", Coflows: 10, Seed: 1},
//	    Scheduler: "stretch",
//	})
//	fmt.Println(rep.LowerBound, rep.Weighted)
package repro
