// Package repro is a from-scratch Go implementation of "Near Optimal
// Coflow Scheduling in Networks" (Chowdhury, Khuller, Purohit, Yang,
// You — SPAA 2019): the randomized 2-approximation "Stretch" algorithm
// for scheduling coflows over general network topologies, in both the
// single path and the free path transmission models, together with
// everything needed to reproduce the paper's evaluation — a sparse
// revised-simplex LP solver (the Gurobi substitute), the SWAN and
// G-Scale WAN topologies, synthetic BigBench/TPC-DS/TPC-H/Facebook
// workloads, and the Jahanjou et al. and Terra baselines.
//
// Every algorithm — the Stretch pipeline, the λ=1 heuristic, and the
// baselines (including a Sincronia-style bottleneck greedy) — is
// registered with the scheduler engine (internal/engine) and reachable
// by name through ScheduleWith; Schedulers lists the registry. Stretch
// roundings run on a worker pool with per-trial RNGs derived from the
// seed, so results are reproducible at any SchedOptions.Workers.
//
// Simulate runs the online counterpart (internal/sim): a
// discrete-event simulator that reveals coflows at their release times
// and re-plans with a named policy — non-clairvoyant baselines, online
// Sincronia, or an epoch adapter around any engine scheduler
// (SimPolicies lists them).
//
// NewTopology generates datacenter-style and adversarial networks from
// spec strings like "fat-tree:k=4" (internal/topo; Topologies lists
// the families), and Validate/ValidateSim replay any result through
// the independent validity oracle (internal/validate) — the engine of
// the scheduler × topology × model conformance matrix in the test
// suite.
//
// This root package is a thin facade over the internal packages; see
// README.md for the architecture and cmd/coflowsim for the experiment
// driver that regenerates every figure of the paper.
//
//	inst, _ := repro.GenerateWorkload(repro.WorkloadConfig{
//	    Kind: repro.FB, Graph: repro.NewSWAN(1), NumCoflows: 10, Seed: 1,
//	})
//	res, _ := repro.ScheduleFreePath(inst, repro.SchedOptions{})
//	fmt.Println(res.LowerBound, res.Heuristic.Weighted)
package repro
