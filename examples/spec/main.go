// Command spec walks one declarative Spec document through all three
// front doors — the library (repro.Run), the CLI (coflowsim -spec),
// and the HTTP service (coflowd POST /v1/run) — and shows they are
// the same run: the spec.json next to this file is what you would
// POST, and the report printed here is byte-identical to what both
// commands return for it.
//
// Try the other two doors yourself:
//
//	go run ./cmd/coflowsim -spec examples/spec/spec.json
//	go run ./cmd/coflowd &
//	curl -s -X POST localhost:8321/v1/run -d @examples/spec/spec.json
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	repro "repro"
)

func main() {
	// Load the shared document. ParseSpec tells Spec from SweepSpec by
	// shape; this one is a single run.
	data, err := os.ReadFile(filepath.Join("examples", "spec", "spec.json"))
	if err != nil {
		// Allow running from the examples/spec directory too.
		data, err = os.ReadFile("spec.json")
	}
	if err != nil {
		log.Fatal(err)
	}
	spec, _, err := repro.ParseSpec(data)
	if err != nil {
		log.Fatal(err)
	}

	// Door one: the library. One call, one unified report — online
	// here (policy set), but the same call runs offline schedulers.
	rep, err := repro.Run(context.Background(), *spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy %s on %s: ΣwC = %.1f over %d coflows (oracle-validated: %v)\n\n",
		rep.Policy, rep.Spec.Topology, rep.Weighted, rep.Coflows, rep.Validated)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n\n", out)

	// A sweep is the same document with axis lists: cross the base
	// spec over policies × seeds and stream cells as they finish.
	sw := repro.SweepSpec{
		Base:     *spec,
		Policies: []string{"fifo", "las", "sincronia-online", "epoch:sincronia-greedy"},
		Seeds:    []int64{1, 2, 3},
	}
	n, cells, err := repro.Sweep(context.Background(), sw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep: %d cells (policies × seeds), streaming:\n", n)
	for _, cell := range cells {
		if cell.Err != nil {
			log.Fatal(cell.Err)
		}
		fmt.Printf("  cell %2d: %-24s seed=%d  ΣwC = %.1f\n",
			cell.Index, cell.Spec.Policy, cell.Spec.Options.Seed, cell.Report.Weighted)
	}
}
