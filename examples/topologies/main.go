// Command topologies walks through the topology generator subsystem:
// it builds one network per family from a spec string, generates a
// workload restricted to each topology's endpoints, schedules it with
// the LP-free Sincronia-style greedy, and replays every result through
// the independent validity oracle — the same scheduler × topology
// conformance sweep the test suite runs, in miniature.
package main

import (
	"context"
	"fmt"
	"log"

	repro "repro"
)

func main() {
	fmt.Println("topology generator families:", repro.Topologies())
	fmt.Println()

	specs := []string{
		"big-switch:n=6",
		"fat-tree:k=4",
		"leaf-spine:leaves=4,spines=2,hosts=2,up=0.5", // oversubscribed uplinks
		"ring:n=8",
		"erdos-renyi:n=10,p=0.3,seed=7,hetero=1",
	}

	ctx := context.Background()
	fmt.Printf("%-44s %6s %6s %6s %12s %9s\n", "spec", "nodes", "links", "hosts", "ΣwC", "validate")
	for _, spec := range specs {
		// A spec string fully determines its network: same spec, same
		// graph, same capacities — across runs and machines.
		top, err := repro.NewTopology(spec)
		if err != nil {
			log.Fatal(err)
		}

		// Restricting endpoints keeps traffic on hosts: in the fat-tree
		// and leaf-spine fabrics, cores/spines only forward.
		inst, err := repro.GenerateWorkload(repro.WorkloadConfig{
			Kind: repro.FB, Graph: top.Graph, NumCoflows: 8, Seed: 42,
			MeanInterarrival: 1, AssignPaths: true, Endpoints: top.Endpoints,
		})
		if err != nil {
			log.Fatal(err)
		}

		res, err := repro.ScheduleWith(ctx, "sincronia-greedy", inst, repro.SinglePath,
			repro.SchedOptions{MaxSlots: 24})
		if err != nil {
			log.Fatal(err)
		}

		// The oracle replays the schedule slot by slot: capacities,
		// releases, demands, routes, and reported completions.
		verdict := "ok"
		if err := repro.Validate(inst, res); err != nil {
			verdict = err.Error()
		}
		fmt.Printf("%-44s %6d %6d %6d %12.1f %9s\n",
			spec, top.Graph.NumNodes(), top.Graph.NumEdges()/2, len(top.Endpoints),
			res.Weighted, verdict)
	}

	fmt.Println("\nonline trace validation on a generated fabric:")
	top, err := repro.NewTopology("leaf-spine:leaves=4,spines=2,hosts=2")
	if err != nil {
		log.Fatal(err)
	}
	inst, err := repro.GenerateWorkload(repro.WorkloadConfig{
		Kind: repro.FB, Graph: top.Graph, NumCoflows: 10, Seed: 7,
		MeanInterarrival: 1, AssignPaths: true, Endpoints: top.Endpoints,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, policy := range []string{"fifo", "las", "epoch:sincronia-greedy"} {
		opt := repro.SimOptions{Policy: policy, Epoch: 2, Seed: 1}
		res, err := repro.Simulate(ctx, inst, opt)
		if err != nil {
			log.Fatal(err)
		}
		if err := repro.ValidateSim(inst, res, opt); err != nil {
			log.Fatalf("%s: %v", policy, err)
		}
		fmt.Printf("  %-24s ΣwC %8.1f  makespan %6.2f  events %3d  trace valid\n",
			policy, res.WeightedCCT, res.Makespan, res.Events)
	}
}
