// Command schedulers demonstrates the unified scheduler engine: one
// instance, every registered algorithm, one result table. This is the
// comparison loop the figure harnesses run at scale — and the shape a
// new scheduler variant plugs into (implement engine.Scheduler,
// call engine.Register, and it appears here with no other changes).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	repro "repro"
)

func main() {
	// A small FB-like workload on the SWAN WAN, with fixed shortest
	// paths so the single path algorithms can run too.
	inst, err := repro.GenerateWorkload(repro.WorkloadConfig{
		Kind:             repro.FB,
		Graph:            repro.NewSWAN(1),
		NumCoflows:       6,
		Seed:             1,
		MeanInterarrival: 1.5,
		AssignPaths:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	opt := repro.SchedOptions{
		MaxSlots: 32,
		Trials:   10,
		Seed:     2019,
		Workers:  0, // 0 = GOMAXPROCS; results are identical at any count
	}

	for _, mode := range []repro.TransmissionModel{repro.SinglePath, repro.FreePath} {
		fmt.Printf("— %v —\n", mode)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "scheduler\tΣwC\tΣC\tLP bound")
		for _, name := range repro.Schedulers() {
			res, err := repro.ScheduleWith(context.Background(), name, inst, mode, opt)
			if err != nil {
				// Not every algorithm supports every model (Terra is
				// free path only, Jahanjou/Sincronia single path only).
				continue
			}
			bound := "-"
			if res.HasLowerBound {
				bound = fmt.Sprintf("%.2f", res.LowerBound)
			}
			fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%s\n", name, res.Weighted, res.Total, bound)
		}
		if err := tw.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
