// WAN scheduling example: a Facebook-style workload over Google's
// G-Scale topology, scheduled with every algorithm in the repository —
// the paper's LP+Stretch pipeline in both transmission models, the
// Jahanjou et al. single path baseline, the Terra free path baseline,
// and the LP-free weighted-SJF greedy.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	repro "repro"

	"repro/internal/baselines"
	"repro/internal/coflow"
)

func main() {
	inst, err := repro.GenerateWorkload(repro.WorkloadConfig{
		Kind:             repro.FB,
		Graph:            repro.NewGScale(1),
		NumCoflows:       6,
		Seed:             42,
		MeanInterarrival: 1.5,
		AssignPaths:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FB-style workload on G-Scale: %d coflows, %d flows, total demand %.1f\n\n",
		len(inst.Coflows), inst.NumFlows(), inst.TotalDemand())

	// Single path model.
	sp, err := repro.ScheduleSinglePath(inst, repro.SchedOptions{MaxSlots: 32, Trials: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	horizon := inst.HorizonUpperBound(coflow.SinglePath) + 1
	jr, err := baselines.Jahanjou(context.Background(), inst, horizon, baselines.JahanjouEpsilon, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := baselines.GreedyWSJF(inst, int(math.Ceil(horizon))+1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Single path model (weighted completion time, slot units):")
	fmt.Printf("  %-28s %10.1f\n", "LP lower bound", sp.LowerBound)
	fmt.Printf("  %-28s %10.1f\n", "heuristic (λ=1.0)", sp.Heuristic.Weighted)
	fmt.Printf("  %-28s %10.1f\n", "best λ", sp.Stretch.BestWeighted)
	fmt.Printf("  %-28s %10.1f\n", "average λ", sp.Stretch.AvgWeighted)
	fmt.Printf("  %-28s %10.1f\n", "Jahanjou et al. (ε=0.5436)", jr.Weighted)
	fmt.Printf("  %-28s %10.1f\n", "greedy weighted-SJF (no LP)", greedy.WeightedCompletion())
	fmt.Println()

	// Free path model (unweighted comparison against Terra).
	unweighted, err := repro.GenerateWorkload(repro.WorkloadConfig{
		Kind: repro.FB, Graph: repro.NewGScale(1), NumCoflows: 5, Seed: 42,
		MeanInterarrival: 1.5, WeightMin: 1, WeightMax: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fp, err := repro.ScheduleFreePath(unweighted, repro.SchedOptions{MaxSlots: 24, Trials: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := baselines.Terra(context.Background(), unweighted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Free path model, unit weights (total completion time, slot units):")
	lpTotal := 0.0
	for _, c := range fp.CStar {
		lpTotal += c
	}
	fmt.Printf("  %-28s %10.1f\n", "LP lower bound", lpTotal)
	fmt.Printf("  %-28s %10.1f\n", "heuristic (λ=1.0)", fp.Heuristic.Total)
	fmt.Printf("  %-28s %10.1f\n", "best λ", fp.Stretch.BestTotal)
	fmt.Printf("  %-28s %10.1f\n", "average λ", fp.Stretch.AvgTotal)
	fmt.Printf("  %-28s %10.1f  (%d LP solves, continuous time)\n",
		"Terra (SRTF)", tr.Total, tr.LPSolves)
}
