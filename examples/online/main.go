// Command online demonstrates the online discrete-event simulator:
// an FB-like workload arrives over time on the SWAN WAN, and four
// online policies — from the blind FIFO baseline to epoch re-planning
// with the offline Stretch pipeline — are compared against the
// clairvoyant schedule that sees every coflow upfront.
package main

import (
	"context"
	"fmt"
	"log"

	repro "repro"
)

func main() {
	// 10 coflows, Poisson releases at one coflow per slot on average.
	inst, err := repro.GenerateWorkload(repro.WorkloadConfig{
		Kind: repro.FB, Graph: repro.NewSWAN(1), NumCoflows: 10, Seed: 7,
		MeanInterarrival: 1, AssignPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The clairvoyant reference: the same simulator, but with every
	// coflow revealed at t=0 (service still honors releases), so it
	// differs from the online runs only in what the planner knows.
	ctx := context.Background()
	offline, err := repro.Simulate(ctx, inst, repro.SimOptions{
		Policy: "epoch:stretch", Clairvoyant: true, Trials: 5, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clairvoyant epoch:stretch: ΣwC = %.1f\n\n", offline.WeightedCCT)

	// Online: coflows are revealed at their release times. The
	// epoch:stretch policy re-plans with the same pipeline at every
	// arrival and every 2-slot epoch tick, but only ever sees what has
	// arrived so far.
	fmt.Printf("%-18s %12s %9s %9s %8s\n", "policy", "ΣwC", "avg CCT", "makespan", "replans")
	for _, name := range []string{"fifo", "las", "fair", "sincronia-online", "epoch:stretch"} {
		res, err := repro.Simulate(ctx, inst, repro.SimOptions{
			Policy: name, Epoch: 2, Trials: 5, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %12.1f %9.2f %9.2f %8d\n",
			res.Policy, res.WeightedCCT, res.AvgCCT, res.Makespan, res.Replans)
	}
}
