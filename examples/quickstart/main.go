// Quickstart: the paper's Figure 1 example. A 5-node WAN (HK, LA, NY,
// FL, BA) carries one coflow with two flows — NY→BA of demand 18 and
// HK→FL of demand 12. In the single path model (fixed routes) the
// coflow needs 3 time units; in the free path model (data may split
// over many routes) it finishes in 2.
package main

import (
	"fmt"
	"log"

	repro "repro"

	"repro/internal/graph"
)

func main() {
	g := graph.Figure1()
	ny, ba := g.MustNode("NY"), g.MustNode("BA")
	hk, fl, la := g.MustNode("HK"), g.MustNode("FL"), g.MustNode("LA")

	// The single-path routes from the paper: NY→BA direct (capacity 6)
	// and HK→LA→FL (bottleneck 4).
	edge := func(from, to repro.NodeID) repro.EdgeID {
		for _, eid := range g.OutEdges(from) {
			if g.Edge(eid).To == to {
				return eid
			}
		}
		log.Fatalf("no edge %s→%s", g.NodeName(from), g.NodeName(to))
		return 0
	}
	inst := &repro.Instance{Graph: g, Coflows: []repro.Coflow{{
		ID: 0, Weight: 1,
		Flows: []repro.Flow{
			{Source: ny, Sink: ba, Demand: 18, Path: []repro.EdgeID{edge(ny, ba)}},
			{Source: hk, Sink: fl, Demand: 12, Path: []repro.EdgeID{edge(hk, la), edge(la, fl)}},
		},
	}}}

	single, err := repro.ScheduleSinglePath(inst, repro.SchedOptions{MaxSlots: 8, Trials: -1})
	if err != nil {
		log.Fatal(err)
	}
	free, err := repro.ScheduleFreePath(inst, repro.SchedOptions{MaxSlots: 8, Trials: -1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 1 of the paper — one coflow, two flows (NY→BA: 18, HK→FL: 12)")
	fmt.Printf("single path completion: %.0f time units (paper: 3)\n",
		single.Heuristic.Completions[0])
	fmt.Printf("free path completion:   %.0f time units (paper: 2)\n",
		free.Heuristic.Completions[0])
	fmt.Printf("\nThe free path model wins by rerouting around the bottleneck:\n")
	fmt.Printf("LP lower bounds — single: %.2f, free: %.2f\n",
		single.LowerBound, free.LowerBound)
}
