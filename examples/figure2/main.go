// Figure 2 example: the paper's running example from Section 2. Four
// unit-weight coflows on the s/v1/v2/v3/t network: three unit demands
// v_i→t and one demand of 3 from s→t. With the Figure 3 path
// assignment the single path optimum is 7; the free path optimum
// (Figure 4) is 5. This program reproduces both with the LP-based
// pipeline and prints the schedules.
package main

import (
	"fmt"
	"log"

	repro "repro"

	"repro/internal/graph"
)

func main() {
	g := graph.Figure2()
	s, t := g.MustNode("s"), g.MustNode("t")
	edge := func(from, to repro.NodeID) repro.EdgeID {
		for _, eid := range g.OutEdges(from) {
			if g.Edge(eid).To == to {
				return eid
			}
		}
		log.Fatalf("no edge")
		return 0
	}
	v := []repro.NodeID{g.MustNode("v1"), g.MustNode("v2"), g.MustNode("v3")}

	inst := &repro.Instance{Graph: g}
	names := []string{"red (v1→t)", "green (v2→t)", "orange (v3→t)"}
	for i := 0; i < 3; i++ {
		inst.Coflows = append(inst.Coflows, repro.Coflow{
			ID: i, Weight: 1,
			Flows: []repro.Flow{{Source: v[i], Sink: t, Demand: 1,
				Path: []repro.EdgeID{edge(v[i], t)}}},
		})
	}
	// Blue routes s→v2→t, sharing the v2→t edge with green (Figure 3).
	inst.Coflows = append(inst.Coflows, repro.Coflow{
		ID: 3, Weight: 1,
		Flows: []repro.Flow{{Source: s, Sink: t, Demand: 3,
			Path: []repro.EdgeID{edge(s, v[1]), edge(v[1], t)}}},
	})
	names = append(names, "blue (s→t, demand 3)")

	single, err := repro.ScheduleSinglePath(inst, repro.SchedOptions{MaxSlots: 8, Trials: 20, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	free, err := repro.ScheduleFreePath(inst, repro.SchedOptions{MaxSlots: 8, Trials: 20, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Section 2 running example (Figures 2–4)")
	fmt.Println()
	fmt.Println("Single path model (paper optimum: 1+1+1+4 = 7):")
	fmt.Printf("  LP lower bound:    %.3f\n", single.LowerBound)
	fmt.Printf("  heuristic λ=1.0:   %.0f\n", single.Heuristic.Weighted)
	fmt.Printf("  best λ over 20:    %.0f\n", single.Stretch.BestWeighted)
	for j, c := range single.Heuristic.Completions {
		fmt.Printf("    %-22s completes at %.0f\n", names[j], c)
	}
	fmt.Println()
	fmt.Println("Free path model (paper optimum: 1+1+1+2 = 5):")
	fmt.Printf("  LP lower bound:    %.3f\n", free.LowerBound)
	fmt.Printf("  heuristic λ=1.0:   %.0f\n", free.Heuristic.Weighted)
	fmt.Printf("  best λ over 20:    %.0f\n", free.Stretch.BestWeighted)
	for j, c := range free.Heuristic.Completions {
		fmt.Printf("    %-22s completes at %.0f\n", names[j], c)
	}
}
