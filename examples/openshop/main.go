// Open shop example: the Section 5 hardness reduction, run forwards.
// A concurrent open shop instance is reduced to a coflow instance on
// the gadget graph (one isolated unit-bandwidth edge per machine),
// scheduled with the paper's LP pipeline, and mapped back to a
// non-preemptive open shop schedule — which is then compared with the
// exact optimum and the Smith-ratio heuristic.
package main

import (
	"fmt"
	"log"

	repro "repro"

	"repro/internal/openshop"
)

func main() {
	in := &openshop.Instance{
		Machines: 3,
		Jobs: []openshop.Job{
			{ID: 0, Weight: 3, Proc: []float64{2, 0, 1}},
			{ID: 1, Weight: 1, Proc: []float64{0, 4, 2}},
			{ID: 2, Weight: 2, Proc: []float64{1, 1, 0}},
			{ID: 3, Weight: 1, Proc: []float64{3, 0, 3}},
			{ID: 4, Weight: 2, Proc: []float64{0, 2, 2}},
		},
	}
	opt, perm := in.BruteForce()
	smith, _ := in.SmithList()

	ci, err := in.ToCoflow()
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.ScheduleSinglePath(ci, repro.SchedOptions{MaxSlots: 32, Trials: 20, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	mapped, err := in.FromCoflowSchedule(res.Heuristic.Schedule)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Concurrent open shop via the Section 5 coflow reduction")
	fmt.Printf("  machines=%d jobs=%d\n\n", in.Machines, len(in.Jobs))
	fmt.Printf("  exact optimum (brute force):      %.1f  (order %v)\n", opt, perm)
	fmt.Printf("  Smith-ratio list heuristic:       %.1f\n", smith)
	fmt.Printf("  coflow LP lower bound:            %.3f\n", res.LowerBound)
	fmt.Printf("  coflow heuristic (λ=1.0):         %.1f\n", res.Heuristic.Weighted)
	fmt.Printf("  mapped back to open shop:         %.1f\n", mapped)
	fmt.Printf("  empirical approximation factor:   %.3f  (theory: ≤ 2)\n", mapped/opt)
}
