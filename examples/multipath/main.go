// Multi-path example: the intermediate transmission model the paper
// sketches in Section 2 — each flow carries a fixed set of candidate
// paths (k shortest) and the scheduler splits traffic across them.
// This sits between single path (k=1) and free path (all routes): the
// example sweeps k and shows the LP bound and schedule improving
// monotonically toward the free path value.
package main

import (
	"bytes"
	"fmt"
	"log"

	repro "repro"

	"repro/internal/coflow"
)

func main() {
	base, err := repro.GenerateWorkload(repro.WorkloadConfig{
		Kind: repro.TPCDS, Graph: repro.NewSWAN(1), NumCoflows: 5, Seed: 8,
		MeanInterarrival: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-DS-style workload on SWAN: %d coflows, %d flows\n\n",
		len(base.Coflows), base.NumFlows())
	fmt.Printf("%-22s %14s %14s\n", "model", "LP bound", "heuristic λ=1")

	free, err := repro.ScheduleFreePath(base, repro.SchedOptions{MaxSlots: 28, Trials: -1})
	if err != nil {
		log.Fatal(err)
	}

	for _, k := range []int{1, 2, 4} {
		inst := cloneViaJSON(base)
		if err := inst.AssignKShortestPaths(k); err != nil {
			log.Fatal(err)
		}
		res, err := repro.ScheduleMultiPath(inst, repro.SchedOptions{MaxSlots: 28, Trials: -1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %14.1f %14.1f\n",
			fmt.Sprintf("multi-path (k=%d)", k), res.LowerBound, res.Heuristic.Weighted)
	}
	fmt.Printf("%-22s %14.1f %14.1f\n", "free path (k=∞)", free.LowerBound, free.Heuristic.Weighted)
	fmt.Println("\nMore candidate paths → tighter bound and better schedule;")
	fmt.Println("free path is the limit of the sweep.")
}

// cloneViaJSON deep-copies an instance through its serialization so
// each sweep point gets an independent path assignment.
func cloneViaJSON(in *repro.Instance) *repro.Instance {
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	out, err := coflow.ReadJSON(&buf)
	if err != nil {
		log.Fatal(err)
	}
	return out
}
