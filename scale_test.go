package repro_test

// Scale gates for the online simulator: the indexed event queue and
// sparse allocations must hold up at instance sizes the original
// O(n²·flows) loop could not touch. TestSimulateStress is the
// race-detector workhorse (20k coflows with the paranoid sampled
// checking on, replayed through the validity oracle);
// TestSimulate100kBigSwitch is the acceptance bar — a 100k-coflow
// FIFO run on a big-switch fabric in well under a minute. Both skip
// under -short, and the 100k run also skips under the race detector,
// whose constant-factor slowdown would measure the instrumentation
// rather than the simulator.

import (
	"context"
	"testing"
	"time"

	repro "repro"
)

// scaleInstance generates a Poisson-arrival FB workload on a
// generated topology at moderate utilization, so the backlog stays
// bounded and the run exercises steady-state arrival/completion
// interleaving rather than one giant queue.
func scaleInstance(t testing.TB, spec string, coflows int, interarrival float64) *repro.Instance {
	t.Helper()
	top, err := repro.NewTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	in, err := repro.GenerateWorkload(repro.WorkloadConfig{
		Kind: repro.FB, Graph: top.Graph, NumCoflows: coflows, Seed: 20260728,
		MeanInterarrival: interarrival, AssignPaths: true, Endpoints: top.Endpoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestSimulateStress runs a 20k-coflow instance with sampled full
// checking (every 64th event cross-verifies the incremental fast-path
// state from scratch) and replays the result through the independent
// validity oracle. CI runs it under -race.
func TestSimulateStress(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-coflow stress run skipped in -short")
	}
	in := scaleInstance(t, "big-switch:n=64", 20000, 0.3)
	for _, policy := range []string{"fifo", "las"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			opt := repro.SimOptions{Policy: policy, CheckEvery: 64}
			res, err := repro.Simulate(context.Background(), in, opt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Events < 2*len(in.Coflows) {
				t.Fatalf("only %d events for %d coflows", res.Events, len(in.Coflows))
			}
			if err := repro.ValidateSim(in, res, opt); err != nil {
				t.Fatalf("oracle rejected the stress trace: %v", err)
			}
		})
	}
}

// TestSimulate100kBigSwitch is the scale acceptance criterion: a
// 100k-coflow FIFO simulation on a big-switch fabric must complete in
// under 60 seconds (it runs in a small fraction of that; the bound
// only guards against an O(n²) regression sneaking back in).
func TestSimulate100kBigSwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-coflow run skipped in -short")
	}
	if raceEnabled {
		t.Skip("100k-coflow run skipped under -race (the detector's slowdown is not the simulator's)")
	}
	in := scaleInstance(t, "big-switch:n=64", 100000, 0.25)
	start := time.Now()
	res, err := repro.Simulate(context.Background(), in, repro.SimOptions{
		Policy: "fifo", MaxEvents: 1 << 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("100k-coflow FIFO on big-switch: %d events in %v (%.0f events/sec)",
		res.Events, elapsed, float64(res.Events)/elapsed.Seconds())
	if elapsed >= 60*time.Second {
		t.Fatalf("100k-coflow simulation took %v, acceptance bound is 60s", elapsed)
	}
	for j, c := range res.Completions {
		if c < in.Coflows[j].Release {
			t.Fatalf("coflow %d completed at %g before release %g", j, c, in.Coflows[j].Release)
		}
	}
}
