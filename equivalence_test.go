package repro

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/coflow"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/spec"
)

// This file is the equivalence guard of the Spec/Run redesign: every
// legacy facade must produce bit-identical results to one Run call on
// the same seeded instance, at any worker count. The references below
// call internal/core, internal/engine, and internal/sim exactly the
// way the pre-redesign facades did, so a drift in defaults, seeds, or
// dispatch shows up as a float mismatch here before anywhere else.

// legacyPipeline is the pre-redesign api.run: core.Run on DefaultGrid
// with SchedOptions' historical normalization (0 → 48 slots / 20
// trials, negative trials disable).
func legacyPipeline(inst *Instance, mode coflow.Model, opt SchedOptions) (*Result, error) {
	if opt.MaxSlots == 0 {
		opt.MaxSlots = 48
	}
	if opt.Trials == 0 {
		opt.Trials = 20
	}
	if opt.Trials < 0 {
		opt.Trials = 0
	}
	return core.Run(context.Background(), inst, mode, core.Options{
		Grid:              core.DefaultGrid(inst, mode, opt.MaxSlots),
		DisableCompaction: opt.DisableCompaction,
		Trials:            opt.Trials,
		Seed:              opt.Seed,
		Workers:           opt.Workers,
	})
}

func pipelineInstance(t *testing.T, mode coflow.Model, seed int64) *Instance {
	t.Helper()
	in, err := GenerateWorkload(WorkloadConfig{
		Kind: FB, Graph: NewSWAN(1), NumCoflows: 4, Seed: seed,
		MeanInterarrival: 1, AssignPaths: mode == SinglePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mode == MultiPath {
		if err := in.AssignKShortestPaths(3); err != nil {
			t.Fatal(err)
		}
	}
	return in
}

// TestRunMatchesLegacyPipelineFacades: ScheduleSinglePath/FreePath/
// MultiPath (now wrappers over Run) reproduce the direct core.Run
// pipeline bit for bit, in all three models and at several worker
// counts.
func TestRunMatchesLegacyPipelineFacades(t *testing.T) {
	cases := []struct {
		name   string
		mode   coflow.Model
		facade func(*Instance, SchedOptions) (*Result, error)
	}{
		{"single", SinglePath, ScheduleSinglePath},
		{"free", FreePath, ScheduleFreePath},
		{"multi", MultiPath, ScheduleMultiPath},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				opt := SchedOptions{MaxSlots: 24, Trials: 3, Seed: 7, Workers: workers}
				want, err := legacyPipeline(pipelineInstance(t, tc.mode, 11), tc.mode, opt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tc.facade(pipelineInstance(t, tc.mode, 11), opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("facade drifted from the legacy pipeline:\nlegacy: %+v\nfacade: %+v", want, got)
				}
				// And straight through Run, without the facade.
				rep, err := Run(context.Background(), Spec{
					Instance:  pipelineInstance(t, tc.mode, 11),
					Model:     tc.name,
					Scheduler: "stretch",
					Options:   opt.specOptions(),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, rep.Engine.Core) {
					t.Fatalf("Run drifted from the legacy pipeline:\nlegacy: %+v\nrun:    %+v", want, rep.Engine.Core)
				}
			})
		}
	}
}

// TestRunMatchesLegacyScheduleWith: every registered scheduler through
// Run equals a direct engine.Schedule call (the pre-redesign
// ScheduleWith body) on the same instance.
func TestRunMatchesLegacyScheduleWith(t *testing.T) {
	for _, mode := range []coflow.Model{SinglePath, FreePath} {
		in := pipelineInstance(t, mode, 23)
		for _, name := range engine.NamesSupporting(mode) {
			t.Run(fmt.Sprintf("%v/%s", mode, name), func(t *testing.T) {
				opt := SchedOptions{MaxSlots: 20, Trials: 2, Seed: 3}
				want, err := engine.Schedule(context.Background(), name, in, mode, engine.Options{
					MaxSlots: opt.MaxSlots, Trials: opt.Trials, Seed: opt.Seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				got, err := ScheduleWith(context.Background(), name, in, mode, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("ScheduleWith drifted:\nlegacy: %+v\nwrapped: %+v", want, got)
				}
				rep, err := Run(context.Background(), Spec{
					Instance:  in,
					Model:     spec.ModelName(mode),
					Scheduler: name,
					Options:   opt.specOptions(),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, rep.Engine) {
					t.Fatalf("Run drifted:\nlegacy: %+v\nrun:    %+v", want, rep.Engine)
				}
			})
		}
	}
}

// TestRunMatchesLegacySimulate: every sim policy through Run equals a
// direct sim.Simulate call — event trace included.
func TestRunMatchesLegacySimulate(t *testing.T) {
	in := pipelineInstance(t, SinglePath, 31)
	for _, policy := range sim.Names() {
		t.Run(policy, func(t *testing.T) {
			opt := SimOptions{Policy: policy, Epoch: 2, MaxSlots: 20, Trials: 1, Seed: 5}
			want, err := sim.Simulate(context.Background(), in, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Simulate(context.Background(), in, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("Simulate drifted:\nlegacy: %+v\nwrapped: %+v", want, got)
			}
			rep, err := Run(context.Background(), Spec{
				Instance: in,
				Policy:   policy,
				Options:  SpecOptions{Epoch: 2, MaxSlots: 20, Trials: 1, Seed: 5},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, rep.Sim) {
				t.Fatalf("Run drifted:\nlegacy: %+v\nrun:    %+v", want, rep.Sim)
			}
		})
	}
}

// TestSweepCellsMatchIndividualRuns: a sweep's streamed cells are the
// same reports one-off Run calls produce for the same cell specs, at
// any worker count.
func TestSweepCellsMatchIndividualRuns(t *testing.T) {
	sw := SweepSpec{
		Base:       Spec{Workload: &SpecWorkload{Coflows: 3}, Options: SpecOptions{MaxSlots: 16, Trials: 1}},
		Schedulers: []string{"sincronia-greedy", "heuristic"},
		Policies:   []string{"fifo", "las"},
		Topologies: []string{"swan", "line:n=4"},
		Seeds:      []int64{1, 2},
	}
	for _, workers := range []int{1, 4} {
		sw.Workers = workers
		n, cells, err := Sweep(context.Background(), sw)
		if err != nil {
			t.Fatal(err)
		}
		// topologies × seeds × (schedulers + policies)
		if n != 2*2*4 {
			t.Fatalf("count = %d", n)
		}
		got := 0
		for i, cell := range cells {
			if cell.Err != nil {
				t.Fatalf("cell %d: %v", i, cell.Err)
			}
			got++
			solo, err := Run(context.Background(), cell.Spec)
			if err != nil {
				t.Fatalf("cell %d solo: %v", i, err)
			}
			if !reflect.DeepEqual(solo, cell.Report) {
				t.Fatalf("cell %d (workers=%d) differs from its one-off Run:\nsweep: %+v\nsolo:  %+v",
					i, workers, cell.Report, solo)
			}
		}
		if got != n {
			t.Fatalf("streamed %d of %d cells", got, n)
		}
	}
}

// TestRunCancellation: a cancelled context aborts Run before work
// starts.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Spec{Scheduler: "stretch"}); err != context.Canceled {
		t.Fatalf("cancelled Run returned %v", err)
	}
}
